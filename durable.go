package vdbms

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"vdbms/internal/core"
	"vdbms/internal/wal"
)

// Durability configures the durable write path of a DB opened with
// Open. The zero value is the safest configuration: fsync on every
// commit, checkpoints every 30 seconds.
type Durability struct {
	// Fsync is the WAL sync policy: "always" (default — an acknowledged
	// write survives power loss), "interval" (fsync on a timer; survives
	// process crash, exposes up to FsyncInterval of writes to power
	// loss), or "never" (survives process crash only).
	Fsync string
	// FsyncInterval is the fsync period under "interval" (default 50ms).
	FsyncInterval time.Duration
	// CheckpointInterval is the background checkpoint period; 0 means
	// the 30s default, negative disables background checkpoints (a
	// final one is still written on Close).
	CheckpointInterval time.Duration
	// SegmentBytes is the WAL segment rotation threshold (default 64 MiB).
	SegmentBytes int64
}

func (d Durability) options() (core.DurabilityOptions, error) {
	fsync := d.Fsync
	if fsync == "" {
		fsync = "always"
	}
	policy, err := wal.ParseSyncPolicy(fsync)
	if err != nil {
		return core.DurabilityOptions{}, err
	}
	ckpt := d.CheckpointInterval
	if ckpt == 0 {
		ckpt = 30 * time.Second
	} else if ckpt < 0 {
		ckpt = 0 // disabled
	}
	return core.DurabilityOptions{
		Fsync:              policy,
		FsyncInterval:      d.FsyncInterval,
		SegmentBytes:       d.SegmentBytes,
		CheckpointInterval: ckpt,
	}, nil
}

// Open opens (or creates) a durable database rooted at dir. Each
// collection lives in its own subdirectory holding a write-ahead log
// and periodic checkpoints: every mutation is logged before it is
// applied and acknowledged per the Fsync policy, so an acknowledged
// write survives a crash. Collections already present in dir are
// recovered on the spot — newest checkpoint plus WAL replay — and
// collections created later are durable from their first write.
// Call Close on shutdown for a clean final checkpoint (recovery after
// kill -9 works too; it just replays more log).
func Open(dir string, d Durability) (*DB, error) {
	opts, err := d.options()
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	db := New()
	db.dir, db.dur = dir, opts
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	for _, e := range ents {
		if !e.IsDir() {
			continue
		}
		sub := filepath.Join(dir, e.Name())
		populated, err := core.DirHasCollection(sub)
		if err != nil {
			db.Close()
			return nil, err
		}
		if !populated {
			continue
		}
		inner, err := core.Recover(sub, opts)
		if err != nil {
			db.Close()
			return nil, fmt.Errorf("vdbms: recovering %s: %w", sub, err)
		}
		col := wrapCollection(inner)
		if dup := db.collections[col.Name()]; dup != nil {
			inner.Close()
			db.Close()
			return nil, fmt.Errorf("vdbms: two directories recover collection %q", col.Name())
		}
		db.collections[col.Name()] = col
	}
	return db, nil
}

// Close shuts down every durable collection: background checkpointers
// stop, a final checkpoint is written (so the next Open replays no
// log), and the WALs are closed. In-memory databases (New) close as a
// no-op. The DB is not usable afterwards.
func (db *DB) Close() error {
	db.mu.Lock()
	cols := make([]*Collection, 0, len(db.collections))
	for _, c := range db.collections {
		cols = append(cols, c)
	}
	mem := db.mem
	db.mu.Unlock()
	if mem != nil {
		// Stop the budget actor first: its evict pass must not call into
		// collections that are tearing down their mappings.
		mem.Close()
	}
	var errs []error
	for _, c := range cols {
		if err := c.inner.Close(); err != nil {
			errs = append(errs, fmt.Errorf("closing %q: %w", c.Name(), err))
		}
	}
	return errors.Join(errs...)
}

// validCollectionDirName rejects names that would escape the data
// directory or collide with its bookkeeping.
func validCollectionDirName(name string) error {
	if name == "" || name == "." || name == ".." ||
		strings.ContainsAny(name, "/\\") || strings.HasPrefix(name, ".") {
		return fmt.Errorf("vdbms: collection name %q is not usable as a directory", name)
	}
	return nil
}

// Checkpoint forces a checkpoint now: the current snapshot is written
// out and the WAL prefix it covers is retired. Durable collections
// checkpoint in the background anyway; this is for tests and
// operational tooling. Errors on an in-memory collection.
func (c *Collection) Checkpoint() error { return c.inner.Checkpoint() }

// Durability reports whether the collection has a WAL, the sequence
// number of its last logged mutation, and the sequence number covered
// by its latest checkpoint.
func (c *Collection) Durability() (durable bool, lastLSN, checkpointLSN uint64) {
	return c.inner.DurabilityStatus()
}
