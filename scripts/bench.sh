#!/usr/bin/env bash
# Scan/search benchmark runner: runs the scoring-engine benchmarks
# (BenchmarkFlatScan and BenchmarkQuantScan in internal/index,
# BenchmarkScoreBlock in internal/vec) and emits a JSON array of
# {op, ns_per_op, rows_per_s, recall_at_10, compression_x} for the
# acceptance record in BENCH_scan.json — the quantized variants
# (sq8/pq/opq vs float32) carry measured recall@10 and compression
# ratio, so the file records the recall-vs-speed frontier; rows
# without a quantized kernel report null for both. Also runs the mixed
# read/write benchmark (BenchmarkMixedReadWrite in internal/core —
# searches racing inserts/updates/deletes) and emits {op, ns_per_op,
# queries_per_s} to BENCH_concurrent.json, the acceptance record for
# the snapshot engine: search throughput under write load. Finally it
# runs the durable write path benchmark (BenchmarkWALInsert — insert
# throughput at fsync=always/interval/never vs the no-WAL baseline)
# and emits {op, ns_per_op, inserts_per_s} to BENCH_wal.json, the
# acceptance record for the WAL: group commit must keep fsync=always
# within roughly an order of magnitude of the in-memory path. Last it
# runs the observability overhead benchmark (BenchmarkSearchObs —
# the same search loop with the stats tracker and recall auditor on
# vs off) and emits {op, ns_per_op, queries_per_s} to BENCH_obs.json;
# the acceptance bar is "on" within 5% of "off". The memory-tier
# benchmark (BenchmarkMemTierSearch — the same brute-force search
# against a heap column vs the mmap tier) emits {op, ns_per_op,
# queries_per_s, heap_mib, rss_mib} to BENCH_mem.json, the acceptance
# record for memory-tiered serving: the mmap rows must show the
# column's bytes off the Go heap. Set VDBMS_BENCH_LARGE=1 to add the
# 1M×128-d point (512 MiB of vectors; too big for CI smoke). Last of
# all it runs the adaptive-planning benchmark (BenchmarkPlanTuned —
# a 100k×128-d set behind a coarse IVF index, serving with the tuned
# frontier's cheapest parameter vs the static worst-case a caller
# without a frontier must pin) and emits {op, ns_per_op, queries_per_s,
# recall_at_10} to BENCH_plan.json, the acceptance record for the
# recall-SLO tuner: the tuned row must match the static row's recall
# while beating its throughput.
#
#   scripts/bench.sh [scan-output.json] [concurrent-output.json] [wal-output.json] [obs-output.json] [mem-output.json] [plan-output.json]
#
# BENCHTIME overrides the per-benchmark iteration budget (default 20x;
# ci.sh smoke-runs with 1x so a broken harness cannot land unnoticed).
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_scan.json}"
out_concurrent="${2:-BENCH_concurrent.json}"
out_wal="${3:-BENCH_wal.json}"
out_obs="${4:-BENCH_obs.json}"
out_mem="${5:-BENCH_mem.json}"
out_plan="${6:-BENCH_plan.json}"
benchtime="${BENCHTIME:-20x}"

tmp=$(mktemp)
tmp2=$(mktemp)
tmp3=$(mktemp)
tmp4=$(mktemp)
tmp5=$(mktemp)
tmp6=$(mktemp)
trap 'rm -f "$tmp" "$tmp2" "$tmp3" "$tmp4" "$tmp5" "$tmp6"' EXIT

go test -run '^$' -bench BenchmarkFlatScan -benchtime "$benchtime" ./internal/index/ | tee -a "$tmp"
go test -run '^$' -bench BenchmarkQuantScan -benchtime "$benchtime" ./internal/index/ | tee -a "$tmp"
go test -run '^$' -bench BenchmarkScoreBlock -benchtime "$benchtime" ./internal/vec/ | tee -a "$tmp"
go test -run '^$' -bench BenchmarkMixedReadWrite -benchtime "$benchtime" ./internal/core/ | tee -a "$tmp2"
go test -run '^$' -bench BenchmarkWALInsert -benchtime "$benchtime" ./internal/core/ | tee -a "$tmp3"
go test -run '^$' -bench BenchmarkSearchObs -benchtime "$benchtime" ./internal/core/ | tee -a "$tmp4"
go test -run '^$' -bench BenchmarkMemTierSearch -benchtime "$benchtime" ./internal/core/ | tee -a "$tmp5"
go test -run '^$' -bench BenchmarkPlanTuned -benchtime "$benchtime" -timeout 30m ./internal/core/ | tee -a "$tmp6"

# Benchmark lines look like:
#   BenchmarkFlatScan/l2/scorer-8  20  7083267 ns/op  7228.30 MB/s  14118004 rows/s
#   BenchmarkQuantScan/sq8-8  20  7466134 ns/op  1714 MB/s  1.000 recall@10  13395205 rows/s  4.000 x_compression
awk '
/^Benchmark/ {
    op = $1
    sub(/-[0-9]+$/, "", op)
    ns = ""; rows = ""; recall = ""; comp = ""
    for (i = 2; i < NF; i++) {
        if ($(i+1) == "ns/op") ns = $i
        if ($(i+1) == "rows/s") rows = $i
        if ($(i+1) == "recall@10") recall = $i
        if ($(i+1) == "x_compression") comp = $i
    }
    if (ns == "") next
    if (n++) printf ",\n"
    printf "  {\"op\": \"%s\", \"ns_per_op\": %s, \"rows_per_s\": %s, \"recall_at_10\": %s, \"compression_x\": %s}", \
        op, ns, (rows == "" ? "null" : rows), (recall == "" ? "null" : recall), (comp == "" ? "null" : comp)
}
BEGIN { printf "[\n" }
END   { printf "\n]\n" }
' "$tmp" > "$out"

# Mixed read/write lines carry a queries/s custom metric:
#   BenchmarkMixedReadWrite-8  100  727767 ns/op  1374 queries/s
awk '
/^Benchmark/ {
    op = $1
    sub(/-[0-9]+$/, "", op)
    ns = ""; qps = ""
    for (i = 2; i < NF; i++) {
        if ($(i+1) == "ns/op") ns = $i
        if ($(i+1) == "queries/s") qps = $i
    }
    if (ns == "") next
    if (n++) printf ",\n"
    printf "  {\"op\": \"%s\", \"ns_per_op\": %s, \"queries_per_s\": %s}", op, ns, (qps == "" ? "null" : qps)
}
BEGIN { printf "[\n" }
END   { printf "\n]\n" }
' "$tmp2" > "$out_concurrent"

# WAL insert lines carry an inserts/s custom metric:
#   BenchmarkWALInsert/always-8  3088  102483 ns/op  9756 inserts/s
awk '
/^Benchmark/ {
    op = $1
    sub(/-[0-9]+$/, "", op)
    ns = ""; ips = ""
    for (i = 2; i < NF; i++) {
        if ($(i+1) == "ns/op") ns = $i
        if ($(i+1) == "inserts/s") ips = $i
    }
    if (ns == "") next
    if (n++) printf ",\n"
    printf "  {\"op\": \"%s\", \"ns_per_op\": %s, \"inserts_per_s\": %s}", op, ns, (ips == "" ? "null" : ips)
}
BEGIN { printf "[\n" }
END   { printf "\n]\n" }
' "$tmp3" > "$out_wal"

# Observability overhead lines carry a queries/s custom metric:
#   BenchmarkSearchObs/on-8  200  86122 ns/op  11611 queries/s
awk '
/^Benchmark/ {
    op = $1
    sub(/-[0-9]+$/, "", op)
    ns = ""; qps = ""
    for (i = 2; i < NF; i++) {
        if ($(i+1) == "ns/op") ns = $i
        if ($(i+1) == "queries/s") qps = $i
    }
    if (ns == "") next
    if (n++) printf ",\n"
    printf "  {\"op\": \"%s\", \"ns_per_op\": %s, \"queries_per_s\": %s}", op, ns, (qps == "" ? "null" : qps)
}
BEGIN { printf "[\n" }
END   { printf "\n]\n" }
' "$tmp4" > "$out_obs"

# Memory-tier lines carry queries/s plus heap/RSS footprint metrics:
#   BenchmarkMemTierSearch/n=100000/mmap-8  90  12477624 ns/op  49.78 heap_MiB  80.14 queries/s  290.0 rss_MiB
awk '
/^Benchmark/ {
    op = $1
    sub(/-[0-9]+$/, "", op)
    ns = ""; qps = ""; heap = ""; rss = ""
    for (i = 2; i < NF; i++) {
        if ($(i+1) == "ns/op") ns = $i
        if ($(i+1) == "queries/s") qps = $i
        if ($(i+1) == "heap_MiB") heap = $i
        if ($(i+1) == "rss_MiB") rss = $i
    }
    if (ns == "") next
    if (n++) printf ",\n"
    printf "  {\"op\": \"%s\", \"ns_per_op\": %s, \"queries_per_s\": %s, \"heap_mib\": %s, \"rss_mib\": %s}", \
        op, ns, (qps == "" ? "null" : qps), (heap == "" ? "null" : heap), (rss == "" ? "null" : rss)
}
BEGIN { printf "[\n" }
END   { printf "\n]\n" }
' "$tmp5" > "$out_mem"

# Adaptive-planning lines carry queries/s and the measured recall@10:
#   BenchmarkPlanTuned/tuned-8  200  418739 ns/op  2388 queries/s  0.950 recall@10
awk '
/^Benchmark/ {
    op = $1
    sub(/-[0-9]+$/, "", op)
    ns = ""; qps = ""; recall = ""
    for (i = 2; i < NF; i++) {
        if ($(i+1) == "ns/op") ns = $i
        if ($(i+1) == "queries/s") qps = $i
        if ($(i+1) == "recall@10") recall = $i
    }
    if (ns == "") next
    if (n++) printf ",\n"
    printf "  {\"op\": \"%s\", \"ns_per_op\": %s, \"queries_per_s\": %s, \"recall_at_10\": %s}", \
        op, ns, (qps == "" ? "null" : qps), (recall == "" ? "null" : recall)
}
BEGIN { printf "[\n" }
END   { printf "\n]\n" }
' "$tmp6" > "$out_plan"

echo "wrote $out $out_concurrent $out_wal $out_obs $out_mem $out_plan"
