#!/usr/bin/env bash
# Tier-1 CI gate: formatting, vet, build, and the full test suite
# under the race detector. The fault-tolerance path (internal/dist,
# internal/fault) is heavily concurrent — scatter-gather goroutines,
# breaker state, RPC drain — so -race is mandatory here, not optional.
# The final step smoke-runs the observability overhead benchmarks
# (one iteration each) so a compile error or panic in the bench
# harness cannot land unnoticed.
set -euo pipefail
cd "$(dirname "$0")/.."

unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

go vet ./...
go build ./...
go test -race ./...
# Intra-query parallelism must degrade to serial cleanly: the whole
# suite also runs single-threaded, where the worker pool has width 1
# and every fan-out takes the inline path.
GOMAXPROCS=1 go test ./...
# Crash-recovery smoke under the race detector: the kill -9 harness
# (subprocess inserting with fsync=always, SIGKILLed mid-stream, then
# recovered) plus the torn-tail and checkpoint/recover equivalence
# tests — the durable write path's acceptance gate. These already ran
# inside the full suite above; running them again under -race with a
# dedicated -count=1 keeps the gate explicit and cache-proof.
go test -race -count=1 -run 'TestCrashRecoveryKill9|TestRecoverTornTail|TestPropertyCheckpointRecoverEquivalence' ./internal/core/
# Bounded-memory smoke under the race detector: a database held to a
# budget far smaller than its data must walk the degradation ladder
# (evict its float column to the mmap tier, keep answering correctly,
# shed work-carrying requests with 503 past the budget) instead of
# growing without bound. Gates the memory-tiered serving path the same
# way the kill -9 harness gates the WAL.
go test -race -count=1 -run 'TestBoundedMemoryLadderSmoke' .
go test -race -count=1 -run 'TestShedRefusesWork|TestEvictByteEquivalence' ./internal/server/ ./internal/core/
# Adaptive query optimization gates. The tuner must converge on a
# degraded index (coarse IVF, target_recall=0.95 -> a trusted frontier
# resolving a parameter cheaper than the ladder maximum that still
# meets the target), and drift re-selection must swap index recipes
# through the background builder without blocking concurrent searches
# — both pinned under -race because the tuner, builder, and readers
# share the collection.
go test -race -count=1 -run 'TestTunerConvergesDegradedIndex|TestDriftBuildGraphReselect|TestDriftDebounceAndCooldown|TestKnobResolutionPrecedence' ./internal/core/
# Knob propagation end to end: HTTP body -> SearchRequest -> executor
# options -> index params, layered overrides, and the X-Vdbms-Plan
# response header that reports the executed plan + resolved knobs.
go test -race -count=1 -run 'TestPlanHeaderAndKnobPropagation' ./internal/server/
# Adaptive planning overhead: resolving knobs through the tuned
# frontier must cost <= 5% versus pinning the same parameter
# statically. A timing gate, so it runs without -race (the race
# detector's ~10x slowdown would drown the 5% signal).
go test -count=1 -run 'TestAdaptivePlanningOverhead' ./internal/core/
# Fuzz smoke for the top-k split/merge metamorphic oracle (split across
# N collectors + Merge == one collector), so the corpus keeps growing.
go test -run '^$' -fuzz FuzzMergeEquivalence -fuzztime 5s ./internal/topk/
go test -run '^$' -bench BenchmarkSearch -benchtime 1x ./internal/obs/
# Metrics documentation lint: every vdbms_* metric family declared in
# internal/obs/metrics.go must appear in the README metrics reference
# table, so the exported surface can never silently outgrow its docs.
missing=0
for m in $(grep -o '"vdbms_[a-z_]*"' internal/obs/metrics.go | tr -d '"' | sort -u); do
    if ! grep -q "$m" README.md; then
        echo "metric $m is not documented in README.md" >&2
        missing=1
    fi
done
if [ "$missing" -ne 0 ]; then
    echo "add the missing metrics to the README metrics reference table" >&2
    exit 1
fi
# Smoke the scan + mixed read/write + WAL + observability + memory-tier
# + adaptive-planning benchmark harnesses and their JSON emitters the
# same way. The scan and plan outputs are kept: they carry the recall
# floors checked below.
scan_smoke=$(mktemp)
plan_smoke=$(mktemp)
BENCHTIME=1x scripts/bench.sh "$scan_smoke" "$(mktemp)" "$(mktemp)" "$(mktemp)" "$(mktemp)" "$plan_smoke"
# Quantized-scan recall floor: the sq8 compressed scan with exact
# re-rank must keep recall@10 >= 0.95 at the acceptance scale
# (recall is measured outside the timed loop, so a 1x smoke run
# reports the same number as a full run). A codec or re-rank
# regression fails CI here, not in a dashboard later.
awk -F'"recall_at_10": ' '
/"op": "BenchmarkQuantScan\/sq8"/ {
    split($2, a, ","); recall = a[1]; found = 1
    if (recall == "null" || recall + 0 < 0.95) {
        printf "sq8 quantized scan recall@10 = %s, want >= 0.95\n", recall > "/dev/stderr"
        exit 1
    }
}
END { if (!found) { print "BenchmarkQuantScan/sq8 missing from scan bench output" > "/dev/stderr"; exit 1 } }
' "$scan_smoke"
# Tuned-serving recall floor: within the smoke budget the tuner must
# have converged to the 0.95 target — the tuned benchmark variant
# (which carries only a recall target and serves at whatever parameter
# the frontier resolved) must measure recall@10 >= 0.95 against exact
# ground truth. Recall is measured outside the timed loop, so the 1x
# smoke reports the same number as a full run.
awk -F'"recall_at_10": ' '
/"op": "BenchmarkPlanTuned\/tuned"/ {
    split($2, a, "}"); recall = a[1]; found = 1
    if (recall == "null" || recall + 0 < 0.95) {
        printf "tuned serving recall@10 = %s, want >= 0.95\n", recall > "/dev/stderr"
        exit 1
    }
}
END { if (!found) { print "BenchmarkPlanTuned/tuned missing from plan bench output" > "/dev/stderr"; exit 1 } }
' "$plan_smoke"
