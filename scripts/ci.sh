#!/usr/bin/env bash
# Tier-1 CI gate: vet, build, and the full test suite under the race
# detector. The fault-tolerance path (internal/dist, internal/fault)
# is heavily concurrent — scatter-gather goroutines, breaker state,
# RPC drain — so -race is mandatory here, not optional.
set -euo pipefail
cd "$(dirname "$0")/.."

go vet ./...
go build ./...
go test -race ./...
