package vdbms

import (
	"os"
	"path/filepath"
	"testing"

	"vdbms/internal/dataset"
)

func TestSaveRestoreRoundTrip(t *testing.T) {
	col, ds := productCollection(t, 300)
	if err := col.CreateIndex("hnsw", map[string]int{"m": 8}); err != nil {
		t.Fatal(err)
	}
	if err := col.Delete(7); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "products.vdbms")
	if err := col.Save(path); err != nil {
		t.Fatal(err)
	}

	db2 := New()
	re, err := db2.RestoreCollection(path)
	if err != nil {
		t.Fatal(err)
	}
	if re.Name() != "products" || re.Dim() != 16 || re.Len() != 299 {
		t.Fatalf("restored metadata: %s %d %d", re.Name(), re.Dim(), re.Len())
	}
	// Index recipe restored and rebuilt.
	kind, covered, dirty := re.IndexInfo()
	if kind != "hnsw" || covered != 300 || dirty != 0 {
		t.Fatalf("restored index: %s %d %d", kind, covered, dirty)
	}
	// Vector + attrs round trip.
	v, attrs, err := re.Get(5)
	if err != nil {
		t.Fatal(err)
	}
	want := ds.Row(5)
	for j := range want {
		if v[j] != want[j] {
			t.Fatalf("vector mismatch at %d", j)
		}
	}
	if attrs["brand"].(string) != "initech" || attrs["cat"].(int64) != 5 || attrs["price"].(float64) != 5 {
		t.Fatalf("attrs = %v", attrs)
	}
	// Tombstone survived.
	if _, _, err := re.Get(7); err == nil {
		t.Fatal("deleted row visible after restore")
	}
	// Searches behave identically (hybrid query on restored copy).
	res, err := re.Search(SearchRequest{
		Vector:  ds.Row(10),
		K:       5,
		Filters: []Filter{{Column: "cat", Op: "<", Value: 50}},
		Ef:      100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hits) != 5 || res.Hits[0].ID != 10 {
		t.Fatalf("restored search = %v", res.Hits)
	}
	// Restoring again into the same DB collides.
	if _, err := db2.RestoreCollection(path); err == nil {
		t.Fatal("want duplicate-name error")
	}
}

func TestSaveRestoreWithoutIndex(t *testing.T) {
	db := New()
	col, err := db.CreateCollection("plain", Schema{Dim: 4})
	if err != nil {
		t.Fatal(err)
	}
	ds := dataset.Uniform(20, 4, 1)
	for i := 0; i < 20; i++ {
		if _, err := col.Insert(ds.Row(i), nil); err != nil {
			t.Fatal(err)
		}
	}
	path := filepath.Join(t.TempDir(), "plain.vdbms")
	if err := col.Save(path); err != nil {
		t.Fatal(err)
	}
	re, err := New().RestoreCollection(path)
	if err != nil {
		t.Fatal(err)
	}
	if kind, _, _ := re.IndexInfo(); kind != "" {
		t.Fatal("index should not materialize from nothing")
	}
	res, err := re.Search(SearchRequest{Vector: ds.Row(3), K: 1})
	if err != nil || res.Hits[0].ID != 3 {
		t.Fatalf("restored exact search: %v %v", res.Hits, err)
	}
}

func TestRestoreErrors(t *testing.T) {
	db := New()
	if _, err := db.RestoreCollection(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("want missing-file error")
	}
	// Corrupt file.
	bad := filepath.Join(t.TempDir(), "bad")
	if err := os.WriteFile(bad, []byte("not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := db.RestoreCollection(bad); err == nil {
		t.Fatal("want decode error")
	}
}

func TestSaveOverwritesAtomically(t *testing.T) {
	col, _ := productCollection(t, 50)
	path := filepath.Join(t.TempDir(), "c.vdbms")
	if err := col.Save(path); err != nil {
		t.Fatal(err)
	}
	// Save again over the existing file.
	if err := col.Delete(0); err != nil {
		t.Fatal(err)
	}
	if err := col.Save(path); err != nil {
		t.Fatal(err)
	}
	re, err := New().RestoreCollection(path)
	if err != nil {
		t.Fatal(err)
	}
	if re.Len() != 49 {
		t.Fatalf("second save not picked up: %d", re.Len())
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatal("temp file left behind")
	}
}
