// Command vdbms-shard serves one partition of a collection over
// net/rpc for distributed scatter-gather search (Section 2.3(2) of the
// paper). A router process (see examples/distributed) dials any number
// of shards and merges their top-k results.
//
// The shard either loads vectors from a file written by
// storage.WriteDiskStore (-data) or generates a seeded synthetic
// partition (-n/-dim/-seed), builds an HNSW index, and serves.
//
//	vdbms-shard -addr 127.0.0.1:9001 -n 10000 -dim 64 -seed 1 -offset 0
//	vdbms-shard -addr 127.0.0.1:9002 -data part2.vdb -offset 10000
//
// -offset sets the first global id of this partition so results from
// different shards never collide.
//
// Chaos mode injects faults for failover drills against a live
// router: -chaos-error-rate fails searches, -chaos-hang-rate makes
// them hang until the query deadline, -chaos-latency/-chaos-jitter
// add delay. All draws come from -chaos-seed, so a drill replays:
//
//	vdbms-shard -addr 127.0.0.1:9003 -chaos-error-rate 0.2 -chaos-latency 20ms
//
// -metrics-addr serves /metrics (Prometheus text), /debug/stats
// (JSON), and /healthz on a separate HTTP listener, so the shard's
// probe counters are scrapable even though queries arrive over
// net/rpc; -pprof-addr adds net/http/pprof the same way.
//
// On SIGINT/SIGTERM the shard stops accepting, drains in-flight
// queries (bounded by -drain-timeout), and exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on DefaultServeMux, served only on -pprof-addr
	"os"
	"os/signal"
	"syscall"
	"time"

	"vdbms/internal/dataset"
	"vdbms/internal/dist"
	"vdbms/internal/fault"
	"vdbms/internal/index/hnsw"
	"vdbms/internal/obs"
	"vdbms/internal/storage"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:9001", "listen address")
	dataPath := flag.String("data", "", "vector file written by storage.WriteDiskStore")
	n := flag.Int("n", 10000, "synthetic vector count (when -data is unset)")
	dim := flag.Int("dim", 64, "synthetic dimensionality")
	seed := flag.Int64("seed", 1, "synthetic data seed")
	offset := flag.Int64("offset", 0, "first global id of this partition")
	m := flag.Int("m", 16, "HNSW M parameter")
	parallelism := flag.Int("parallelism", 0, "intra-query workers for partitioned scans (0 = GOMAXPROCS, 1 = serial)")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "max wait for in-flight queries on shutdown")
	chaosErr := flag.Float64("chaos-error-rate", 0, "chaos: probability a search fails")
	chaosHang := flag.Float64("chaos-hang-rate", 0, "chaos: probability a search hangs until its deadline")
	chaosLatency := flag.Duration("chaos-latency", 0, "chaos: latency added to every search")
	chaosJitter := flag.Duration("chaos-jitter", 0, "chaos: extra uniform latency on top of -chaos-latency")
	chaosSeed := flag.Int64("chaos-seed", 1, "chaos: fault schedule seed")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics, /debug/stats, /healthz on this address (empty = off)")
	pprofAddr := flag.String("pprof-addr", "", "serve net/http/pprof on this address (empty = off)")
	flag.Parse()

	if *metricsAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("/metrics", obs.MetricsHandler(obs.Default()))
		mux.Handle("/debug/stats", obs.StatsHandler(obs.Default()))
		mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			fmt.Fprintln(w, "ok")
		})
		go func() {
			log.Printf("metrics listening on %s", *metricsAddr)
			log.Print(http.ListenAndServe(*metricsAddr, mux))
		}()
	}
	if *pprofAddr != "" {
		go func() {
			log.Printf("pprof listening on %s", *pprofAddr)
			log.Print(http.ListenAndServe(*pprofAddr, nil))
		}()
	}

	var flat []float32
	var count, d int
	if *dataPath != "" {
		ds, err := storage.OpenDiskStore(*dataPath, 0)
		if err != nil {
			log.Fatalf("open %s: %v", *dataPath, err)
		}
		d = ds.Dim()
		count = ds.Count()
		flat = ds.ReadBlock(0, count, nil)
		ds.Close()
	} else {
		syn := dataset.Clustered(*n, *dim, 16, 0.4, *seed)
		flat, count, d = syn.Data, syn.Count, syn.Dim
	}
	log.Printf("shard: %d vectors of dim %d, building hnsw(m=%d)", count, d, *m)
	idx, err := hnsw.Build(flat, count, d, hnsw.Config{M: *m, Seed: 1})
	if err != nil {
		log.Fatalf("index build: %v", err)
	}
	ids := make([]int64, count)
	for i := range ids {
		ids[i] = *offset + int64(i)
	}

	local := dist.NewLocalShard(idx, ids)
	local.Parallelism = *parallelism
	var shard dist.Shard = local
	if *chaosErr > 0 || *chaosHang > 0 || *chaosLatency > 0 || *chaosJitter > 0 {
		shard = fault.NewChaosShard(shard, fault.ChaosConfig{
			ErrorRate:     *chaosErr,
			HangRate:      *chaosHang,
			Latency:       *chaosLatency,
			LatencyJitter: *chaosJitter,
			Seed:          *chaosSeed,
		})
		log.Printf("CHAOS MODE: error-rate=%.2f hang-rate=%.2f latency=%v jitter=%v seed=%d",
			*chaosErr, *chaosHang, *chaosLatency, *chaosJitter, *chaosSeed)
	}

	srv, err := dist.NewShardServer(shard)
	if err != nil {
		log.Fatal(err)
	}
	l, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	srv.Serve(l)
	log.Printf("shard serving on %s (ids %d..%d)", *addr, *offset, *offset+int64(count)-1)

	// Graceful shutdown: stop accepting, drain in-flight queries with
	// a bounded context, exit 0.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	s := <-sig
	log.Printf("received %v, draining (up to %v)", s, *drainTimeout)
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("drain incomplete: %v (closing anyway)", err)
	}
	log.Print("shard stopped")
}
