// Command vdbms-shard serves one partition of a collection over
// net/rpc for distributed scatter-gather search (Section 2.3(2) of the
// paper). A router process (see examples/distributed) dials any number
// of shards and merges their top-k results.
//
// The shard either loads vectors from a file written by
// storage.WriteDiskStore (-data) or generates a seeded synthetic
// partition (-n/-dim/-seed), builds an HNSW index, and serves.
//
//	vdbms-shard -addr 127.0.0.1:9001 -n 10000 -dim 64 -seed 1 -offset 0
//	vdbms-shard -addr 127.0.0.1:9002 -data part2.vdb -offset 10000
//
// -offset sets the first global id of this partition so results from
// different shards never collide.
package main

import (
	"flag"
	"log"
	"net"

	"vdbms/internal/dataset"
	"vdbms/internal/dist"
	"vdbms/internal/index/hnsw"
	"vdbms/internal/storage"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:9001", "listen address")
	dataPath := flag.String("data", "", "vector file written by storage.WriteDiskStore")
	n := flag.Int("n", 10000, "synthetic vector count (when -data is unset)")
	dim := flag.Int("dim", 64, "synthetic dimensionality")
	seed := flag.Int64("seed", 1, "synthetic data seed")
	offset := flag.Int64("offset", 0, "first global id of this partition")
	m := flag.Int("m", 16, "HNSW M parameter")
	flag.Parse()

	var flat []float32
	var count, d int
	if *dataPath != "" {
		ds, err := storage.OpenDiskStore(*dataPath, 0)
		if err != nil {
			log.Fatalf("open %s: %v", *dataPath, err)
		}
		d = ds.Dim()
		count = ds.Count()
		flat = make([]float32, count*d)
		buf := make([]float32, d)
		for i := 0; i < count; i++ {
			buf = ds.Vector(i, buf)
			copy(flat[i*d:(i+1)*d], buf)
		}
		ds.Close()
	} else {
		syn := dataset.Clustered(*n, *dim, 16, 0.4, *seed)
		flat, count, d = syn.Data, syn.Count, syn.Dim
	}
	log.Printf("shard: %d vectors of dim %d, building hnsw(m=%d)", count, d, *m)
	idx, err := hnsw.Build(flat, count, d, hnsw.Config{M: *m, Seed: 1})
	if err != nil {
		log.Fatalf("index build: %v", err)
	}
	ids := make([]int64, count)
	for i := range ids {
		ids[i] = *offset + int64(i)
	}
	l, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	if err := dist.ServeShard(l, dist.NewLocalShard(idx, ids)); err != nil {
		log.Fatal(err)
	}
	log.Printf("shard serving on %s (ids %d..%d)", *addr, *offset, *offset+int64(count)-1)
	select {} // serve until killed
}
