// Command vdbms-bench runs the experiment suite that reproduces the
// claims of "Vector Database Management Techniques and Systems"
// (SIGMOD 2024). Each experiment prints a table plus the expected
// qualitative shape; see EXPERIMENTS.md for the recorded results.
//
// Usage:
//
//	vdbms-bench              # run everything at scale 1
//	vdbms-bench -exp E8      # one experiment
//	vdbms-bench -scale 2     # double workload sizes
//	vdbms-bench -list        # list experiment ids and claims
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"vdbms/internal/bench"
)

func main() {
	exp := flag.String("exp", "", "experiment id to run (default: all)")
	scale := flag.Int("scale", 1, "workload scale multiplier")
	list := flag.Bool("list", false, "list experiments and exit")
	flag.Parse()

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-5s %s\n", e.ID, e.Claim)
		}
		return
	}
	run := bench.All()
	if *exp != "" {
		e, ok := bench.ByID(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", *exp)
			os.Exit(1)
		}
		run = []bench.Experiment{e}
	}
	for _, e := range run {
		fmt.Printf("\n######## %s — %s\n", e.ID, e.Claim)
		start := time.Now()
		e.Run(os.Stdout, *scale)
		fmt.Printf("[%s completed in %s]\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
}
