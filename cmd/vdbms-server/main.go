// Command vdbms-server serves the VDBMS over HTTP/JSON.
//
//	vdbms-server -addr :8530 -query-timeout 2s
//
// Endpoints:
//
//	GET    /collections                      list collections
//	POST   /collections                      {"name": ..., "schema": {...}}
//	GET    /collections/{name}               collection info
//	DELETE /collections/{name}               drop
//	POST   /collections/{name}/vectors       {"vector": [...], "attrs": {...}}
//	POST   /collections/{name}/index         {"kind": "hnsw", "opts": {"m": 16}}
//	POST   /collections/{name}/search        search request JSON
//	POST   /collections/{name}/batch         {"vectors": [[...], ...]} + shared search knobs
//	POST   /query                            {"query": "SELECT 10 FROM c NEAR [...]"}
//	GET    /healthz                          liveness probe
//	GET    /metrics                          Prometheus text exposition
//	GET    /debug/stats                      metrics + runtime + per-collection stats as JSON
//	GET    /debug/slowlog                    span trees of the slowest traced queries
//
// With -data-dir the server runs the durable write path: every
// mutation is written ahead to a per-collection log and acknowledged
// per -fsync (always/interval/never), checkpoints run in the
// background every -checkpoint-interval, and boot recovers whatever
// the directory holds — newest checkpoint plus WAL replay — so a
// kill -9 loses nothing that was acknowledged under fsync=always.
//
// Searches run under a per-query deadline (-query-timeout; 0
// disables) and a timed-out query returns 504. Sending a search with
// the "X-Vdbms-Trace: 1" header returns the query's span tree;
// -slow-query logs the span tree of any slower search server-side.
// -audit-interval enables online recall auditing on every collection:
// a reservoir of live queries is replayed against an exact scan each
// interval and the observed recall@k exported as vdbms_recall_observed
// (with -recall-floor, passes below the floor are logged as
// regressions).
// -tune-interval enables recall-SLO auto-tuning on every collection:
// each pass replays sampled queries across a ladder of Ef/NProbe
// values to learn the recall-vs-cost frontier, and queries carrying a
// recall target (-target-recall sets the default; "target_recall" in
// the search body overrides per query) run with the cheapest
// parameters the frontier proves meet it. -tune-reselect additionally
// lets the tuner rebuild an index the workload has drifted away from;
// rebuilds run in the background and install atomically. Every search
// response reports the executed plan and resolved parameters in the
// X-Vdbms-Plan header.
// -mem-budget bounds the process's accounted memory (0 inherits
// GOMEMLIMIT, -1 disables management): over the budget the server
// walks a degradation ladder — drop rebuildable caches at 80%, evict
// the coldest collections' float columns to mmap-backed spill files at
// 90% (searches stay byte-identical; the kernel pages vectors in on
// demand), and past 100% shed work-carrying requests with 503 +
// Retry-After instead of dying. /debug/stats reports the ladder stage
// and per-collection tier under "memory".
// -pprof-addr serves net/http/pprof on a second listener (off by
// default so profiling endpoints never ride the public port). On
// SIGINT/SIGTERM the server stops accepting, drains in-flight requests
// with a bounded context (-drain-timeout), and exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on DefaultServeMux, served only on -pprof-addr
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"vdbms"
	"vdbms/internal/server"
)

func main() {
	addr := flag.String("addr", ":8530", "listen address")
	queryTimeout := flag.Duration("query-timeout", 0, "per-search deadline (0 = none)")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "max wait for in-flight requests on shutdown")
	slowQuery := flag.Duration("slow-query", 0, "log searches slower than this with their span tree (0 = off)")
	pprofAddr := flag.String("pprof-addr", "", "serve net/http/pprof on this address (empty = off)")
	parallelism := flag.Int("parallelism", 0, "default intra-query workers for partitioned scans (0 = GOMAXPROCS, 1 = serial)")
	dataDir := flag.String("data-dir", "", "data directory for the durable write path (empty = in-memory, nothing survives restart)")
	fsync := flag.String("fsync", "always", "WAL sync policy: always (acked writes survive power loss), interval, or never")
	checkpointInterval := flag.Duration("checkpoint-interval", 30*time.Second, "background checkpoint period (0 = only checkpoint on shutdown)")
	auditInterval := flag.Duration("audit-interval", 0, "online recall audit period for every collection (0 = off)")
	recallFloor := flag.Float64("recall-floor", 0, "log a regression when an audit observes recall below this (0 = never)")
	tuneInterval := flag.Duration("tune-interval", 0, "recall-SLO auto-tuning period for every collection (0 = off)")
	targetRecall := flag.Float64("target-recall", 0, "default recall target queries are tuned to meet (0 = none; per-query target_recall overrides)")
	tuneReselect := flag.Bool("tune-reselect", false, "allow the auto-tuner to rebuild an index the workload has drifted away from (background, non-blocking)")
	memBudget := flag.Int64("mem-budget", 0, "process memory budget in bytes; over it the server drops caches, evicts cold collections to mmap, then sheds with 503 (0 = inherit GOMEMLIMIT; -1 = off)")
	spillDir := flag.String("spill-dir", "", "directory for mmap-tier spill files (default: <data-dir>/.spill, or the OS temp dir when in-memory)")
	flag.Parse()

	if *pprofAddr != "" {
		go func() {
			log.Printf("pprof listening on %s", *pprofAddr)
			log.Print(http.ListenAndServe(*pprofAddr, nil))
		}()
	}

	var db *vdbms.DB
	if *dataDir == "" {
		db = vdbms.New()
	} else {
		ckpt := *checkpointInterval
		if ckpt <= 0 {
			ckpt = -1 // Durability: negative disables, 0 means default
		}
		start := time.Now()
		var err error
		db, err = vdbms.Open(*dataDir, vdbms.Durability{
			Fsync:              *fsync,
			CheckpointInterval: ckpt,
		})
		if err != nil {
			log.Fatalf("opening %s: %v", *dataDir, err)
		}
		log.Printf("recovered %d collection(s) from %s in %v (fsync=%s)",
			len(db.Collections()), *dataDir, time.Since(start).Round(time.Millisecond), *fsync)
	}
	if *auditInterval > 0 {
		db.EnableRecallAudit(vdbms.AuditOptions{
			Interval:    *auditInterval,
			RecallFloor: *recallFloor,
		})
		log.Printf("recall auditing every %v (floor %.3f)", *auditInterval, *recallFloor)
	}
	if *tuneInterval > 0 || *targetRecall > 0 {
		db.EnableAutoTune(vdbms.TuneOptions{
			Interval:     *tuneInterval,
			TargetRecall: *targetRecall,
			Reselect:     *tuneReselect,
		})
		log.Printf("auto-tuning every %v (target recall %.3f, reselect %v)",
			*tuneInterval, *targetRecall, *tuneReselect)
	}
	opts := []server.Option{
		server.WithQueryTimeout(*queryTimeout),
		server.WithSlowQueryLog(*slowQuery),
		server.WithParallelism(*parallelism),
	}
	if *memBudget >= 0 {
		dir := *spillDir
		if dir == "" {
			if *dataDir != "" {
				dir = filepath.Join(*dataDir, ".spill")
			} else {
				dir = filepath.Join(os.TempDir(), "vdbms-spill")
			}
		}
		mgr, err := db.EnableMemoryBudget(*memBudget, dir)
		if err != nil {
			log.Fatalf("enabling memory budget: %v", err)
		}
		opts = append(opts, server.WithMemoryManager(mgr))
		if b := mgr.Budget(); b >= 1<<20 {
			log.Printf("memory budget %d MiB (spill dir %s)", b>>20, dir)
		} else if b > 0 {
			log.Printf("memory budget %d bytes (spill dir %s)", b, dir)
		} else {
			log.Printf("memory accounting on, no budget (set -mem-budget or GOMEMLIMIT); spill dir %s", dir)
		}
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           server.New(db, opts...),
		ReadHeaderTimeout: 5 * time.Second,
	}

	errCh := make(chan error, 1)
	go func() {
		log.Printf("vdbms-server listening on %s", *addr)
		errCh <- srv.ListenAndServe()
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		log.Fatal(err)
	case s := <-sig:
		log.Printf("received %v, draining (up to %v)", s, *drainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Printf("drain incomplete: %v (closing anyway)", err)
			srv.Close()
		}
		// Final checkpoint + WAL close, so the next boot replays nothing.
		if err := db.Close(); err != nil {
			log.Printf("closing database: %v", err)
		}
		log.Print("server stopped")
	}
}
