// Command vdbms-server serves the VDBMS over HTTP/JSON.
//
//	vdbms-server -addr :8530
//
// Endpoints:
//
//	GET    /collections                      list collections
//	POST   /collections                      {"name": ..., "schema": {...}}
//	GET    /collections/{name}               collection info
//	DELETE /collections/{name}               drop
//	POST   /collections/{name}/vectors       {"vector": [...], "attrs": {...}}
//	POST   /collections/{name}/index         {"kind": "hnsw", "opts": {"m": 16}}
//	POST   /collections/{name}/search        search request JSON
//	POST   /query                            {"query": "SELECT 10 FROM c NEAR [...]"}
//	GET    /healthz                          liveness probe
package main

import (
	"flag"
	"log"
	"net/http"
	"time"

	"vdbms"
	"vdbms/internal/server"
)

func main() {
	addr := flag.String("addr", ":8530", "listen address")
	flag.Parse()

	db := vdbms.New()
	srv := &http.Server{
		Addr:              *addr,
		Handler:           server.New(db),
		ReadHeaderTimeout: 5 * time.Second,
	}
	log.Printf("vdbms-server listening on %s", *addr)
	if err := srv.ListenAndServe(); err != nil {
		log.Fatal(err)
	}
}
