package vdbms_test

import (
	"fmt"

	"vdbms"
)

// The godoc examples double as executable documentation for the main
// workflows: plain search, hybrid search, the query planner, and the
// dynamic (LSM) collection.

func ExampleDB_CreateCollection() {
	db := vdbms.New()
	col, err := db.CreateCollection("docs", vdbms.Schema{Dim: 2})
	if err != nil {
		panic(err)
	}
	fmt.Println(col.Name(), col.Dim())
	// Output: docs 2
}

func ExampleCollection_Search() {
	db := vdbms.New()
	col, _ := db.CreateCollection("points", vdbms.Schema{Dim: 2})
	col.Insert([]float32{0, 0}, nil) // id 0
	col.Insert([]float32{1, 1}, nil) // id 1
	col.Insert([]float32{9, 9}, nil) // id 2

	res, _ := col.Search(vdbms.SearchRequest{Vector: []float32{0.9, 0.9}, K: 2})
	for _, h := range res.Hits {
		fmt.Println(h.ID)
	}
	// Output:
	// 1
	// 0
}

func ExampleCollection_Search_hybrid() {
	db := vdbms.New()
	col, _ := db.CreateCollection("products", vdbms.Schema{
		Dim:        2,
		Attributes: map[string]string{"price": "float"},
	})
	col.Insert([]float32{0, 0}, map[string]any{"price": 5.0})  // id 0
	col.Insert([]float32{0, 1}, map[string]any{"price": 50.0}) // id 1
	col.Insert([]float32{1, 0}, map[string]any{"price": 7.0})  // id 2

	res, _ := col.Search(vdbms.SearchRequest{
		Vector:  []float32{0, 0},
		K:       2,
		Filters: []vdbms.Filter{{Column: "price", Op: "<", Value: 10.0}},
	})
	for _, h := range res.Hits {
		fmt.Println(h.ID)
	}
	// Output:
	// 0
	// 2
}

func ExampleOpenDynamic() {
	dyn, _ := vdbms.OpenDynamic(vdbms.DynamicConfig{Dim: 2, MemtableSize: 4})
	for i := 0; i < 8; i++ {
		dyn.Upsert(int64(i), []float32{float32(i), 0})
	}
	dyn.Delete(3)
	hits, _ := dyn.Search([]float32{3.1, 0}, 1, 16)
	fmt.Println(hits[0].ID, dyn.Len())
	// Output: 4 7
}

func ExampleCollection_OpenIterator() {
	db := vdbms.New()
	col, _ := db.CreateCollection("stream", vdbms.Schema{Dim: 1})
	for i := 0; i < 5; i++ {
		col.Insert([]float32{float32(i)}, nil)
	}
	it, _ := col.OpenIterator([]float32{0}, nil, 0)
	page1, _ := it.Next(2)
	page2, _ := it.Next(2)
	fmt.Println(page1[0].ID, page1[1].ID, page2[0].ID, page2[1].ID)
	// Output: 0 1 2 3
}
