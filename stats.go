package vdbms

// Public surface of the query-quality observability layer: online
// per-collection statistics (Collection.Stats), and the online recall
// auditor (EnableRecallAudit / AuditRecall), which samples live
// queries into a reservoir and periodically replays them against an
// exact scan to measure the recall actually being served. DESIGN.md
// §11 describes the machinery.

import (
	"time"

	"vdbms/internal/core"
	"vdbms/internal/stats"
)

// StatsDistribution summarizes observed integer query knobs (k, ef,
// nprobe). Buckets maps inclusive upper bucket edges to counts; the
// -1 key is the overflow bucket.
type StatsDistribution struct {
	Count   int64           `json:"count"`
	Mean    float64         `json:"mean"`
	Buckets map[int64]int64 `json:"buckets,omitempty"`
}

// StatsSelectivity is the observed-selectivity histogram for one
// attribute column: Buckets[i] counts observations in [i/20, (i+1)/20).
type StatsSelectivity struct {
	Count   int64   `json:"count"`
	Mean    float64 `json:"mean"`
	Buckets []int64 `json:"buckets"`
}

// CollectionStats is a point-in-time snapshot of a collection's online
// statistics: row counts and churn rates, query-shape distributions,
// ANN probe cost, and per-column filter selectivity.
type CollectionStats struct {
	Rows    int `json:"rows"`
	Live    int `json:"live"`
	Deleted int `json:"deleted"`
	Dim     int `json:"dim"`

	Inserts int64 `json:"inserts"`
	Updates int64 `json:"updates"`
	Deletes int64 `json:"deletes"`
	Queries int64 `json:"queries"`

	InsertsPerSec float64 `json:"inserts_per_sec"`
	UpdatesPerSec float64 `json:"updates_per_sec"`
	DeletesPerSec float64 `json:"deletes_per_sec"`
	QueriesPerSec float64 `json:"queries_per_sec"`

	FilteredFraction float64           `json:"filtered_fraction"`
	K                StatsDistribution `json:"k"`
	Ef               StatsDistribution `json:"ef"`
	NProbe           StatsDistribution `json:"nprobe"`

	ANNProbes         int64   `json:"ann_probes"`
	ANNProbeMeanComps float64 `json:"ann_probe_mean_comps"`

	Selectivity map[string]StatsSelectivity `json:"selectivity,omitempty"`
}

func convertStats(s stats.Snapshot) CollectionStats {
	out := CollectionStats{
		Rows: s.Rows, Live: s.Live, Deleted: s.Deleted, Dim: s.Dim,
		Inserts: s.Inserts, Updates: s.Updates, Deletes: s.Deletes,
		Queries:       s.Queries,
		InsertsPerSec: s.InsertsPerSec, UpdatesPerSec: s.UpdatesPerSec,
		DeletesPerSec: s.DeletesPerSec, QueriesPerSec: s.QueriesPerSec,
		FilteredFraction:  s.FilteredFraction,
		K:                 convertDist(s.K),
		Ef:                convertDist(s.Ef),
		NProbe:            convertDist(s.NProbe),
		ANNProbes:         s.ProbeCount,
		ANNProbeMeanComps: s.MeanProbeComps,
	}
	if len(s.Selectivity) > 0 {
		out.Selectivity = make(map[string]StatsSelectivity, len(s.Selectivity))
		for col, h := range s.Selectivity {
			out.Selectivity[col] = StatsSelectivity{Count: h.Count, Mean: h.Mean, Buckets: h.Buckets}
		}
	}
	return out
}

func convertDist(d stats.DistSnapshot) StatsDistribution {
	return StatsDistribution{Count: d.Count, Mean: d.Mean, Buckets: d.Buckets}
}

// Stats returns the collection's online statistics. Lock-free: reading
// it never contends with searches or writers.
func (c *Collection) Stats() CollectionStats {
	return convertStats(c.inner.Stats())
}

// SetStatsEnabled toggles query observation (query-shape recording,
// selectivity and probe-cost sampling). On by default; mutation and
// query counters stay on regardless.
func (c *Collection) SetStatsEnabled(on bool) { c.inner.SetStatsEnabled(on) }

// AuditOptions configures online recall auditing.
type AuditOptions struct {
	// Interval is the cadence of background audit passes. Zero runs no
	// background loop — sampling still starts, and AuditRecall runs
	// passes on demand.
	Interval time.Duration
	// ReservoirSize caps how many live queries are retained for replay
	// (default 256).
	ReservoirSize int
	// RecallFloor, when positive, logs a regression and counts it in
	// vdbms_recall_audit_total{outcome="regression"} whenever a pass
	// observes recall below it.
	RecallFloor float64
	// MinSamples is the minimum sampled queries for a pass to report a
	// recall figure (default 8).
	MinSamples int
}

// RecallAudit reports one audit pass.
type RecallAudit struct {
	Collection string        `json:"collection"`
	Outcome    string        `json:"outcome"` // "ok", "regression", "empty", or "error"
	Samples    int           `json:"samples"`
	Stale      int           `json:"stale"`
	Recall     float64       `json:"recall"`
	Floor      float64       `json:"floor"`
	Elapsed    time.Duration `json:"elapsed_ns"`
}

func auditConfig(opts AuditOptions) core.AuditConfig {
	return core.AuditConfig{
		Interval:      opts.Interval,
		ReservoirSize: opts.ReservoirSize,
		RecallFloor:   opts.RecallFloor,
		MinSamples:    opts.MinSamples,
	}
}

// EnableRecallAudit starts sampling this collection's live queries and
// (when opts.Interval > 0) auditing them in the background: each pass
// replays the sampled queries against an exact scan on a pinned
// snapshot — never blocking serving — and exports the observed
// recall@k as vdbms_recall_observed{collection="..."}.
func (c *Collection) EnableRecallAudit(opts AuditOptions) {
	c.inner.EnableAudit(auditConfig(opts))
}

// DisableRecallAudit stops background auditing and query sampling.
func (c *Collection) DisableRecallAudit() { c.inner.DisableAudit() }

// AuditRecall runs one recall audit pass synchronously and returns its
// report. EnableRecallAudit (even with Interval 0) must have run first
// so there are sampled queries to replay; before that, or before
// MinSamples queries have been sampled, the outcome is "empty".
func (c *Collection) AuditRecall() (RecallAudit, error) {
	rep, err := c.inner.AuditNow()
	return RecallAudit{
		Collection: rep.Collection,
		Outcome:    rep.Outcome,
		Samples:    rep.Samples,
		Stale:      rep.Stale,
		Recall:     rep.Recall,
		Floor:      rep.Floor,
		Elapsed:    rep.Elapsed,
	}, err
}

// EnableRecallAudit turns on recall auditing for every current
// collection and every collection created or restored later.
func (db *DB) EnableRecallAudit(opts AuditOptions) {
	db.mu.Lock()
	o := opts
	db.audit = &o
	cols := make([]*Collection, 0, len(db.collections))
	for _, c := range db.collections {
		cols = append(cols, c)
	}
	db.mu.Unlock()
	for _, c := range cols {
		c.EnableRecallAudit(opts)
	}
}
