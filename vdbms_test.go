package vdbms

import (
	"context"
	"errors"
	"strings"
	"testing"

	"vdbms/internal/dataset"
)

func productCollection(t *testing.T, n int) (*Collection, *dataset.Dataset) {
	t.Helper()
	db := New()
	col, err := db.CreateCollection("products", Schema{
		Dim:    16,
		Metric: "l2",
		Attributes: map[string]string{
			"price": "float",
			"cat":   "int",
			"brand": "string",
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ds := dataset.Clustered(n, 16, 8, 0.4, 1)
	brands := []string{"acme", "globex", "initech"}
	for i := 0; i < n; i++ {
		_, err := col.Insert(ds.Row(i), map[string]any{
			"price": float64(i % 500),
			"cat":   i % 100,
			"brand": brands[i%3],
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	return col, ds
}

func TestDBCollectionLifecycle(t *testing.T) {
	db := New()
	if _, err := db.CreateCollection("a", Schema{Dim: 4}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateCollection("a", Schema{Dim: 4}); err == nil {
		t.Fatal("want duplicate error")
	}
	if _, err := db.Collection("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Collection("zz"); err == nil {
		t.Fatal("want unknown error")
	}
	if got := db.Collections(); len(got) != 1 || got[0] != "a" {
		t.Fatalf("Collections = %v", got)
	}
	if err := db.DropCollection("a"); err != nil {
		t.Fatal(err)
	}
	if err := db.DropCollection("a"); err == nil {
		t.Fatal("want drop error")
	}
}

func TestSchemaValidation(t *testing.T) {
	db := New()
	if _, err := db.CreateCollection("x", Schema{Dim: 0}); err == nil {
		t.Fatal("want dim error")
	}
	if _, err := db.CreateCollection("x", Schema{Dim: 2, Metric: "bogus"}); err == nil {
		t.Fatal("want metric error")
	}
	if _, err := db.CreateCollection("x", Schema{Dim: 2, Attributes: map[string]string{"a": "blob"}}); err == nil {
		t.Fatal("want attribute-type error")
	}
}

func TestInsertGetDelete(t *testing.T) {
	col, ds := productCollection(t, 50)
	if col.Len() != 50 || col.Dim() != 16 || col.Name() != "products" {
		t.Fatal("metadata wrong")
	}
	v, attrs, err := col.Get(3)
	if err != nil {
		t.Fatal(err)
	}
	if v[0] != ds.Row(3)[0] {
		t.Fatal("vector mismatch")
	}
	if attrs["price"].(float64) != 3 || attrs["cat"].(int64) != 3 || attrs["brand"].(string) != "acme" {
		t.Fatalf("attrs = %v", attrs)
	}
	if err := col.Delete(3); err != nil {
		t.Fatal(err)
	}
	if _, _, err := col.Get(3); err == nil {
		t.Fatal("deleted id should error")
	}
	if err := col.Delete(3); err == nil {
		t.Fatal("double delete should error")
	}
	if col.Len() != 49 {
		t.Fatal("Len after delete wrong")
	}
	// Bad inserts.
	if _, err := col.Insert([]float32{1}, nil); err == nil {
		t.Fatal("want dim error")
	}
	if _, err := col.Insert(ds.Row(0), map[string]any{"price": struct{}{}}); err == nil {
		t.Fatal("want type error")
	}
}

func TestExactSearchWithoutIndex(t *testing.T) {
	col, ds := productCollection(t, 300)
	res, err := col.Search(SearchRequest{Vector: ds.Row(7), K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hits) != 3 || res.Hits[0].ID != 7 || res.Hits[0].Dist != 0 {
		t.Fatalf("hits = %v", res.Hits)
	}
	if res.Plan != "brute_force" {
		t.Fatalf("plan = %s", res.Plan)
	}
}

func TestIndexedSearchAndPlans(t *testing.T) {
	col, ds := productCollection(t, 1500)
	if err := col.CreateIndex("hnsw", map[string]int{"m": 8}); err != nil {
		t.Fatal(err)
	}
	kind, covered, dirty := col.IndexInfo()
	if kind != "hnsw" || covered != 1500 || dirty != 0 {
		t.Fatalf("IndexInfo = %s %d %d", kind, covered, dirty)
	}
	q := ds.Queries(1, 0.05, 2)[0]
	for _, policy := range []string{"", "rule", "qdrant", "weaviate", "vearch",
		"plan:pre_filter", "plan:post_filter", "plan:single_stage", "plan:brute_force"} {
		res, err := col.Search(SearchRequest{
			Vector:  q,
			K:       10,
			Filters: []Filter{{Column: "cat", Op: "<", Value: 50}},
			Policy:  policy,
			Ef:      100,
		})
		if err != nil {
			t.Fatalf("policy %q: %v", policy, err)
		}
		if len(res.Hits) == 0 {
			t.Fatalf("policy %q returned nothing", policy)
		}
		for _, h := range res.Hits {
			if h.ID%100 >= 50 {
				t.Fatalf("policy %q violated filter: id %d", policy, h.ID)
			}
		}
	}
	if _, err := col.Search(SearchRequest{Vector: q, K: 5, Policy: "plan:bogus"}); err == nil {
		t.Fatal("want unknown-plan error")
	}
	if _, err := col.Search(SearchRequest{Vector: q, K: 5, Policy: "bogus"}); err == nil {
		t.Fatal("want unknown-policy error")
	}
}

func TestAllIndexKindsBuildAndSearch(t *testing.T) {
	col, ds := productCollection(t, 400)
	q := ds.Queries(1, 0.05, 3)[0]
	for _, kind := range IndexKinds() {
		var opts map[string]int
		switch kind {
		case "ivfadc", "ivfsq":
			opts = map[string]int{"nlist": 8, "m": 4, "ks": 16}
		case "knng":
			opts = map[string]int{"k": 8, "iters": 4}
		}
		if err := col.CreateIndex(kind, opts); err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		res, err := col.Search(SearchRequest{Vector: q, K: 5, Ef: 100, NProbe: 8, Policy: "plan:single_stage"})
		if err != nil {
			t.Fatalf("%s search: %v", kind, err)
		}
		if len(res.Hits) == 0 {
			t.Fatalf("%s returned nothing", kind)
		}
	}
	if err := col.CreateIndex("bogus", nil); err == nil {
		t.Fatal("want unknown-index error")
	}
	col.DropIndex()
	if kind, _, _ := col.IndexInfo(); kind != "" {
		t.Fatal("DropIndex failed")
	}
}

func TestFiltersConversion(t *testing.T) {
	col, ds := productCollection(t, 200)
	res, err := col.Search(SearchRequest{
		Vector: ds.Row(0), K: 10,
		Filters: []Filter{{Column: "brand", Op: "in", Set: []any{"acme", "globex"}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range res.Hits {
		if h.ID%3 == 2 { // initech rows
			t.Fatalf("in-filter violated: %d", h.ID)
		}
	}
	if _, err := col.Search(SearchRequest{Vector: ds.Row(0), K: 1,
		Filters: []Filter{{Column: "price", Op: "~", Value: 1.0}}}); err == nil {
		t.Fatal("want op error")
	}
	if _, err := col.Search(SearchRequest{Vector: ds.Row(0), K: 1,
		Filters: []Filter{{Column: "price", Op: "=", Value: struct{}{}}}}); err == nil {
		t.Fatal("want value error")
	}
}

func TestDeletedRowsInvisible(t *testing.T) {
	col, ds := productCollection(t, 300)
	if err := col.CreateIndex("hnsw", nil); err != nil {
		t.Fatal(err)
	}
	if err := col.Delete(5); err != nil {
		t.Fatal(err)
	}
	res, err := col.Search(SearchRequest{Vector: ds.Row(5), K: 10, Ef: 100})
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range res.Hits {
		if h.ID == 5 {
			t.Fatal("deleted id surfaced")
		}
	}
}

func TestUpdateTriggersRebuild(t *testing.T) {
	col, ds := productCollection(t, 200)
	if err := col.CreateIndex("hnsw", nil); err != nil {
		t.Fatal(err)
	}
	// Mutate 30% of rows: the write crossing the 20% threshold (update
	// #41 of 200 rows) starts a background rebuild. Searches proceed
	// against the old index while it runs.
	far := make([]float32, 16)
	for i := range far {
		far[i] = 99
	}
	for i := 0; i < 60; i++ {
		if err := col.UpdateVector(int64(i), far); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := col.Search(SearchRequest{Vector: ds.Row(100), K: 5}); err != nil {
		t.Fatal(err)
	}
	col.WaitForIndex()
	_, covered, dirty, building := col.IndexStatus()
	if building || covered != 200 {
		t.Fatalf("status after wait: covered=%d building=%v", covered, building)
	}
	// Updates issued after the trigger stay dirty against the new
	// build: at most 60-41 = 19 of them.
	if dirty > 19 {
		t.Fatalf("rebuild did not happen: dirty=%d", dirty)
	}
	// Updated vectors found at the new location.
	res, _ := col.Search(SearchRequest{Vector: far, K: 1, Ef: 100})
	if len(res.Hits) == 0 || res.Hits[0].ID >= 60 {
		t.Fatalf("updated vector not found: %v", res.Hits)
	}
}

func TestInsertAfterIndexBypassesStaleIndex(t *testing.T) {
	col, ds := productCollection(t, 100)
	if err := col.CreateIndex("hnsw", nil); err != nil {
		t.Fatal(err)
	}
	// New insert not covered by the index must still be findable.
	probe := make([]float32, 16)
	for i := range probe {
		probe[i] = -50
	}
	id, err := col.Insert(probe, map[string]any{"price": 1.0, "cat": 1, "brand": "acme"})
	if err != nil {
		t.Fatal(err)
	}
	res, err := col.Search(SearchRequest{Vector: probe, K: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hits) != 1 || res.Hits[0].ID != id {
		t.Fatalf("fresh insert not found: %v", res.Hits)
	}
	_ = ds
}

func TestMultiVectorSearch(t *testing.T) {
	db := New()
	col, err := db.CreateCollection("faces", Schema{
		Dim:        8,
		Attributes: map[string]string{"person": "int"},
	})
	if err != nil {
		t.Fatal(err)
	}
	ds := dataset.Clustered(300, 8, 6, 0.3, 5)
	for i := 0; i < 300; i++ {
		if _, err := col.Insert(ds.Row(i), map[string]any{"person": i / 3}); err != nil {
			t.Fatal(err)
		}
	}
	res, err := col.Search(SearchRequest{
		Vectors:      [][]float32{ds.Row(30), ds.Row(31)},
		K:            3,
		EntityColumn: "person",
		Aggregator:   "min",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hits) != 3 || res.Hits[0].ID != 10 {
		t.Fatalf("multi-vector hits = %v", res.Hits)
	}
	// Errors.
	if _, err := col.Search(SearchRequest{Vectors: [][]float32{ds.Row(0)}, K: 3}); err == nil {
		t.Fatal("want entity-column error")
	}
	if _, err := col.Search(SearchRequest{Vectors: [][]float32{ds.Row(0)}, K: 3, EntityColumn: "person", Aggregator: "zz"}); err == nil {
		t.Fatal("want aggregator error")
	}
}

func TestSearchRangeAndBatchAndIterator(t *testing.T) {
	col, ds := productCollection(t, 400)
	hits, err := col.SearchRange(ds.Row(0), 0.25, nil)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, h := range hits {
		if h.ID == 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("range search missing self")
	}
	qs := ds.Queries(4, 0.05, 7)
	batch, err := col.SearchBatch(qs, SearchRequest{K: 5, Ef: 100})
	if err != nil || len(batch) != 4 {
		t.Fatalf("batch: %v %d", err, len(batch))
	}
	it, err := col.OpenIterator(ds.Row(0), nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	page, err := it.Next(10)
	if err != nil || len(page) != 10 {
		t.Fatalf("iterator page: %v %d", err, len(page))
	}
}

func TestDynamicCollection(t *testing.T) {
	dyn, err := OpenDynamic(DynamicConfig{Dim: 8, MemtableSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	ds := dataset.Clustered(200, 8, 4, 0.4, 9)
	for i := 0; i < 200; i++ {
		if err := dyn.Upsert(int64(i), ds.Row(i)); err != nil {
			t.Fatal(err)
		}
	}
	if dyn.Len() != 200 || dyn.Segments() == 0 {
		t.Fatalf("len=%d segs=%d", dyn.Len(), dyn.Segments())
	}
	hits, err := dyn.Search(ds.Row(42), 1, 100)
	if err != nil || len(hits) != 1 || hits[0].ID != 42 {
		t.Fatalf("dynamic search: %v %v", hits, err)
	}
	if !dyn.Delete(42) {
		t.Fatal("delete failed")
	}
	if _, ok := dyn.Get(42); ok {
		t.Fatal("deleted id visible")
	}
	if err := dyn.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := dyn.Compact(); err != nil {
		t.Fatal(err)
	}
	if dyn.Segments() != 1 {
		t.Fatalf("segments after compact = %d", dyn.Segments())
	}
	// Config validation.
	if _, err := OpenDynamic(DynamicConfig{Dim: 0}); err == nil {
		t.Fatal("want dim error")
	}
	if _, err := OpenDynamic(DynamicConfig{Dim: 4, Metric: "zz"}); err == nil {
		t.Fatal("want metric error")
	}
	if _, err := OpenDynamic(DynamicConfig{Dim: 4, SegmentIndex: "zz"}); err == nil {
		t.Fatal("want segment-index error")
	}
	// ivfflat segments.
	dyn2, err := OpenDynamic(DynamicConfig{Dim: 8, MemtableSize: 64, SegmentIndex: "ivfflat"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 128; i++ {
		dyn2.Upsert(int64(i), ds.Row(i))
	}
	if hits, err := dyn2.Search(ds.Row(3), 1, 64); err != nil || hits[0].ID != 3 {
		t.Fatalf("ivf dynamic search: %v %v", hits, err)
	}
}

func TestSearchContext(t *testing.T) {
	col, ds := productCollection(t, 200)
	// A live context behaves exactly like Search.
	res, err := col.SearchContext(context.Background(), SearchRequest{Vector: ds.Row(3), K: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hits) != 5 || res.Hits[0].ID != 3 {
		t.Fatalf("hits = %v", res.Hits)
	}
	// A dead context aborts before any work happens.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := col.SearchContext(ctx, SearchRequest{Vector: ds.Row(3), K: 5}); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled search = %v", err)
	}
}

func TestSearchBatchPartialFailure(t *testing.T) {
	col, ds := productCollection(t, 300)
	qs := ds.Queries(3, 0.05, 5)
	qs[1] = []float32{1, 2} // wrong dimensionality
	batch, err := col.SearchBatch(qs, SearchRequest{K: 5, Ef: 100})
	if err == nil {
		t.Fatal("want an error for the malformed query")
	}
	if !strings.Contains(err.Error(), "query 1") {
		t.Fatalf("error should name the failing query: %v", err)
	}
	if len(batch) != 3 {
		t.Fatalf("batch length %d, want 3", len(batch))
	}
	if batch[1] != nil {
		t.Fatal("failed query should be a nil slot")
	}
	if len(batch[0]) == 0 || len(batch[2]) == 0 {
		t.Fatal("healthy queries lost their results")
	}
}
