// Package vdbms is a vector database management system in pure Go,
// reproducing the architecture surveyed in "Vector Database Management
// Techniques and Systems" (Pan, Wang, Li — SIGMOD 2024): a query
// processor (similarity scores, k-NN / range / hybrid / batched /
// multi-vector queries, rule- and cost-based plan selection, hybrid
// scan operators) over a storage manager (ten ANN index families,
// quantization, disk-resident indexes, out-of-place updates, and
// distributed scatter-gather).
//
// The entry point is a DB holding named collections:
//
//	db := vdbms.New()
//	col, _ := db.CreateCollection("products", vdbms.Schema{
//		Dim:    128,
//		Metric: "l2",
//		Attributes: map[string]string{"price": "float", "brand": "string"},
//	})
//	id, _ := col.Insert(vec, map[string]any{"price": 9.99, "brand": "acme"})
//	_ = col.CreateIndex("hnsw", map[string]int{"m": 16})
//	hits, _ := col.Search(vdbms.SearchRequest{
//		Vector:  q,
//		K:       10,
//		Filters: []vdbms.Filter{{Column: "price", Op: "<", Value: 20.0}},
//	})
//
// For high-write-rate workloads, OpenDynamic returns an LSM-backed
// collection with out-of-place updates (Section 2.3(3) of the paper).
package vdbms

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"vdbms/internal/core"
	"vdbms/internal/memory"
)

// DB is a registry of named collections. The zero value is not usable;
// construct with New (in-memory) or Open (durable, backed by a data
// directory).
type DB struct {
	mu          sync.RWMutex
	collections map[string]*Collection
	// creating reserves names whose collection is still being built, so
	// two concurrent creators never both touch dir/<name> on disk.
	creating map[string]struct{}

	// dir is the data directory of a durable DB ("" for in-memory);
	// each collection owns the subdirectory dir/<name>.
	dir string
	dur core.DurabilityOptions

	// audit, when set by DB.EnableRecallAudit, is applied to every
	// collection created or restored afterwards; tune likewise for
	// DB.EnableAutoTune.
	audit *AuditOptions
	tune  *TuneOptions

	// mem/memSpill, when set by DB.EnableMemoryBudget, put every current
	// and future collection under the process memory budget.
	mem      *memory.Manager
	memSpill string
}

// New creates an empty in-memory database: fast, but nothing survives
// the process. Use Open for a durable one.
func New() *DB {
	return &DB{
		collections: map[string]*Collection{},
		creating:    map[string]struct{}{},
	}
}

// CreateCollection registers a new collection under name. On a durable
// DB the collection gets its own write-ahead log under the data
// directory, and the name must be usable as a directory name.
func (db *DB) CreateCollection(name string, schema Schema) (*Collection, error) {
	if db.dir != "" {
		if err := validCollectionDirName(name); err != nil {
			return nil, err
		}
	}
	// Reserve the name before any filesystem work: durable creation
	// writes WAL segments under dir/<name>, and two creators racing in
	// that directory could unlink each other's freshly-headered active
	// segment — the registry must arbitrate first, not after.
	db.mu.Lock()
	_, dup := db.collections[name]
	_, busy := db.creating[name]
	if dup || busy {
		db.mu.Unlock()
		return nil, fmt.Errorf("vdbms: collection %q already exists", name)
	}
	db.creating[name] = struct{}{}
	db.mu.Unlock()

	var col *Collection
	var err error
	if db.dir == "" {
		col, err = newCollection(name, schema)
	} else {
		cs, types, perr := parseSchema(schema)
		if perr != nil {
			err = perr
		} else {
			var inner *core.Collection
			inner, err = core.CreateDurable(filepath.Join(db.dir, name), name, cs, db.dur)
			if err == nil {
				col = &Collection{inner: inner, dim: schema.Dim, attrs: types}
			}
		}
	}

	db.mu.Lock()
	delete(db.creating, name)
	audit, tune := db.audit, db.tune
	mem, memSpill := db.mem, db.memSpill
	if err == nil {
		db.collections[name] = col
	}
	db.mu.Unlock()
	if err == nil && audit != nil {
		col.EnableRecallAudit(*audit)
	}
	if err == nil && tune != nil {
		col.EnableAutoTune(*tune)
	}
	if err == nil && mem != nil {
		if aerr := col.inner.AttachMemory(mem, memSpill); aerr != nil {
			// The collection still works, just unmanaged; surface the
			// attach failure rather than dropping a usable collection.
			return col, fmt.Errorf("vdbms: attaching %q to memory budget: %w", name, aerr)
		}
	}
	return col, err
}

// Collection returns a collection by name.
func (db *DB) Collection(name string) (*Collection, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	col, ok := db.collections[name]
	if !ok {
		return nil, fmt.Errorf("vdbms: unknown collection %q", name)
	}
	return col, nil
}

// DropCollection removes a collection. On a durable DB its WAL and
// checkpoints are deleted too — a drop is permanent.
func (db *DB) DropCollection(name string) error {
	db.mu.Lock()
	col, ok := db.collections[name]
	if !ok {
		db.mu.Unlock()
		return fmt.Errorf("vdbms: unknown collection %q", name)
	}
	delete(db.collections, name)
	db.mu.Unlock()
	if db.dir == "" {
		return nil
	}
	// Remove the directory even when Close fails (e.g. a final
	// checkpoint write error): the files are being deleted anyway, and
	// returning early would leave them behind to resurrect the
	// "permanently dropped" collection on the next Open.
	cerr := col.inner.Close()
	rerr := os.RemoveAll(filepath.Join(db.dir, name))
	return errors.Join(cerr, rerr)
}

// Collections lists collection names in sorted order.
func (db *DB) Collections() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.collections))
	for n := range db.collections {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
