package vdbms

import (
	"fmt"

	"vdbms/internal/memory"
)

// EnableMemoryBudget puts the database under a process-wide memory
// budget (DESIGN.md §13). Every current and future collection registers
// an account with the returned manager and push-accounts its resident
// bytes (vectors, index structure, quantized codes, WAL buffers); when
// the accounted total crosses the budget the manager walks a
// graceful-degradation ladder — drop rebuildable caches, evict the
// coldest collections' float columns to mmap-backed storage under
// spillDir, and finally shed load — instead of letting the kernel
// OOM-kill the process.
//
// budgetBytes 0 inherits GOMEMLIMIT when one is set; with neither, the
// ladder stays at Normal and only the accounting/observability runs.
// Call once, before serving traffic; the manager is owned by the DB
// and stopped by Close.
func (db *DB) EnableMemoryBudget(budgetBytes int64, spillDir string) (*memory.Manager, error) {
	if spillDir == "" {
		return nil, fmt.Errorf("vdbms: memory budget needs a spill directory")
	}
	if budgetBytes == 0 {
		budgetBytes = memory.DefaultBudget()
	}
	db.mu.Lock()
	if db.mem != nil {
		m := db.mem
		db.mu.Unlock()
		return m, fmt.Errorf("vdbms: memory budget already enabled")
	}
	m := memory.New(budgetBytes)
	db.mem = m
	db.memSpill = spillDir
	cols := make([]*Collection, 0, len(db.collections))
	for _, c := range db.collections {
		cols = append(cols, c)
	}
	db.mu.Unlock()
	for _, c := range cols {
		if err := c.inner.AttachMemory(m, spillDir); err != nil {
			return m, fmt.Errorf("vdbms: attaching %q to memory budget: %w", c.Name(), err)
		}
	}
	return m, nil
}

// MemoryManager returns the budget manager installed by
// EnableMemoryBudget, or nil.
func (db *DB) MemoryManager() *memory.Manager {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.mem
}

// Tier reports which tier the collection's float column currently
// occupies: "heap" (resident) or "mmap" (kernel-paged, evicted or
// recovered straight from a checkpoint mapping).
func (c *Collection) Tier() string { return c.inner.Tier() }

// EvictToMmap moves the collection's float column to the mmap tier
// now, without waiting for memory pressure. Search results are
// byte-identical; the pages become kernel-reclaimable. Requires the
// collection to be under a memory budget (EnableMemoryBudget).
func (c *Collection) EvictToMmap() error { return c.inner.EvictToMmap() }

// PromoteToHeap copies an evicted column back to the heap tier.
func (c *Collection) PromoteToHeap() error { return c.inner.PromoteToHeap() }
