// Multi-vector search: a facial-recognition-style workload where each
// person is represented by several embeddings (different shots), the
// use case Section 2.1(3) and open problem 2.6(6) of the paper
// describe. Queries supply one or more probe shots; entities are
// ranked by aggregate score.
//
//	go run ./examples/multivector
package main

import (
	"fmt"
	"log"
	"math/rand"

	"vdbms"
)

const (
	numPeople    = 500
	shotsPerFace = 4
	dim          = 32
)

func main() {
	db := vdbms.New()
	col, err := db.CreateCollection("faces", vdbms.Schema{
		Dim: dim,
		Attributes: map[string]string{
			"person": "int", // entity column: groups shots into people
			"camera": "string",
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	// Each person has a "true face" embedding; shots jitter around it.
	rng := rand.New(rand.NewSource(99))
	faces := make([][]float32, numPeople)
	cams := []string{"gate-a", "gate-b", "lobby"}
	for p := 0; p < numPeople; p++ {
		face := make([]float32, dim)
		for j := range face {
			face[j] = rng.Float32() * 10
		}
		faces[p] = face
		for s := 0; s < shotsPerFace; s++ {
			shot := make([]float32, dim)
			for j := range shot {
				shot[j] = face[j] + float32(rng.NormFloat64())*0.3
			}
			if _, err := col.Insert(shot, map[string]any{
				"person": p,
				"camera": cams[s%len(cams)],
			}); err != nil {
				log.Fatal(err)
			}
		}
	}
	if err := col.CreateIndex("hnsw", map[string]int{"m": 12}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("enrolled %d people x %d shots = %d vectors\n\n", numPeople, shotsPerFace, col.Len())

	// Probe: two new shots of person 123.
	target := 123
	probes := make([][]float32, 2)
	for i := range probes {
		p := make([]float32, dim)
		for j := range p {
			p[j] = faces[target][j] + float32(rng.NormFloat64())*0.3
		}
		probes[i] = p
	}

	for _, agg := range []string{"min", "mean", "max"} {
		res, err := col.Search(vdbms.SearchRequest{
			Vectors:      probes,
			K:            3,
			EntityColumn: "person",
			Aggregator:   agg,
			Ef:           100,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("aggregator=%-5s top-3 people: ", agg)
		for _, h := range res.Hits {
			marker := ""
			if h.ID == int64(target) {
				marker = " <- target"
			}
			fmt.Printf("[person %d, score %.3f%s] ", h.ID, h.Dist, marker)
		}
		fmt.Println()
	}

	// Weighted sum: trust the first probe twice as much.
	res, err := col.Search(vdbms.SearchRequest{
		Vectors:      probes,
		K:            1,
		EntityColumn: "person",
		Aggregator:   "weighted_sum",
		Weights:      []float32{2, 1},
		Ef:           100,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nweighted_sum identification: person %d (score %.3f)\n", res.Hits[0].ID, res.Hits[0].Dist)
	if res.Hits[0].ID == int64(target) {
		fmt.Println("identification correct")
	} else {
		fmt.Println("identification MISSED (unexpected at this noise level)")
	}
}
