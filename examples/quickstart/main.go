// Quickstart: create a collection, insert vectors with attributes,
// build an HNSW index, and run plain, hybrid, and range queries.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"vdbms"
)

func main() {
	db := vdbms.New()
	col, err := db.CreateCollection("docs", vdbms.Schema{
		Dim:    64,
		Metric: "l2",
		Attributes: map[string]string{
			"lang":  "string",
			"year":  "int",
			"score": "float",
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Insert 5000 synthetic "document embeddings": three language
	// clusters with per-document jitter.
	rng := rand.New(rand.NewSource(42))
	langs := []string{"en", "de", "fr"}
	centers := make([][]float32, len(langs))
	for i := range centers {
		centers[i] = make([]float32, 64)
		for j := range centers[i] {
			centers[i][j] = rng.Float32() * 10
		}
	}
	for i := 0; i < 5000; i++ {
		li := i % len(langs)
		v := make([]float32, 64)
		for j := range v {
			v[j] = centers[li][j] + float32(rng.NormFloat64())*0.5
		}
		if _, err := col.Insert(v, map[string]any{
			"lang":  langs[li],
			"year":  2015 + i%10,
			"score": rng.Float64(),
		}); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("inserted %d vectors into %q\n", col.Len(), col.Name())

	if err := col.CreateIndex("hnsw", map[string]int{"m": 16}); err != nil {
		log.Fatal(err)
	}
	kind, covered, _ := col.IndexInfo()
	fmt.Printf("index: %s over %d rows (families available: %v)\n", kind, covered, vdbms.IndexKinds())

	// Plain k-NN: perturb a stored vector and look it up.
	q, _, err := col.Get(123)
	if err != nil {
		log.Fatal(err)
	}
	q[0] += 0.01
	res, err := col.Search(vdbms.SearchRequest{Vector: q, K: 5, Ef: 100})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nplain 5-NN (plan=%s):\n", res.Plan)
	for _, h := range res.Hits {
		fmt.Printf("  id=%-5d dist=%.4f\n", h.ID, h.Dist)
	}

	// Hybrid query: same vector, but only German documents after 2020.
	// The optimizer picks the plan; the response reports which one.
	res, err = col.Search(vdbms.SearchRequest{
		Vector: q,
		K:      5,
		Filters: []vdbms.Filter{
			{Column: "lang", Op: "=", Value: "de"},
			{Column: "year", Op: ">=", Value: 2021},
		},
		Ef: 100,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nhybrid 5-NN, lang=de AND year>=2021 (plan=%s):\n", res.Plan)
	for _, h := range res.Hits {
		_, attrs, _ := col.Get(h.ID)
		fmt.Printf("  id=%-5d dist=%.4f lang=%v year=%v\n", h.ID, h.Dist, attrs["lang"], attrs["year"])
	}

	// Range query: everything within a squared-distance threshold.
	hits, err := col.SearchRange(q, 5.0, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrange query (r^2=5.0): %d vectors in range\n", len(hits))

	// Incremental paging (Section 2.6(5) of the paper).
	it, err := col.OpenIterator(q, nil, 0)
	if err != nil {
		log.Fatal(err)
	}
	page1, _ := it.Next(3)
	page2, _ := it.Next(3)
	fmt.Printf("\nincremental pages: %v then %v\n", ids(page1), ids(page2))
}

func ids(hits []vdbms.Hit) []int64 {
	out := make([]int64, len(hits))
	for i, h := range hits {
		out[i] = h.ID
	}
	return out
}
