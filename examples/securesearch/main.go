// Secure k-NN over an untrusted server (open problem 2.6(4) of the
// paper): vectors are encrypted with ASPE before upload; the server
// ranks by encrypted dot products and returns the exact nearest
// neighbors without ever holding a plaintext coordinate or a true
// distance.
//
//	go run ./examples/securesearch
package main

import (
	"fmt"
	"log"

	"vdbms/internal/dataset"
	"vdbms/internal/secure"
	"vdbms/internal/topk"
	"vdbms/internal/vec"
)

const (
	n   = 5000
	dim = 64
)

func main() {
	// Data owner: generate embeddings and a secret key.
	ds := dataset.Clustered(n, dim, 16, 0.4, 1)
	key, err := secure.NewKey(dim, 42)
	if err != nil {
		log.Fatal(err)
	}

	// Upload phase: only ciphertexts leave the owner.
	srv := secure.NewServer(dim)
	for i := 0; i < n; i++ {
		enc, err := key.EncryptVector(ds.Row(i))
		if err != nil {
			log.Fatal(err)
		}
		if err := srv.Add(int64(i), enc); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("uploaded %d encrypted vectors (dim %d -> %d)\n", srv.Len(), dim, dim+1)

	// Query phase: the client issues a fresh token per query.
	qs := ds.Queries(5, 0.05, 7)
	truth := dataset.GroundTruth(vec.SquaredL2, ds, qs, 5)
	for qi, q := range qs {
		tok, err := key.EncryptQuery(q)
		if err != nil {
			log.Fatal(err)
		}
		got, err := srv.TopK(tok, 5)
		if err != nil {
			log.Fatal(err)
		}
		match := true
		for i := range got {
			if got[i].ID != truth[qi][i].ID {
				match = false
			}
		}
		fmt.Printf("query %d: server returned %v — exact match with plaintext k-NN: %v\n",
			qi, ids(got), match)
	}
	fmt.Println("\nthe server saw only encrypted vectors and re-randomized tokens;")
	fmt.Println("its scores are order-preserving but carry no usable distances.")
}

func ids(rs []topk.Result) []int64 {
	out := make([]int64, len(rs))
	for i, r := range rs {
		out[i] = r.ID
	}
	return out
}
