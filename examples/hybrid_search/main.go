// Hybrid search: an e-commerce catalog where every query combines
// vector similarity with attribute predicates, the workload that
// motivates the paper's Section 2.3. The example sweeps predicate
// selectivity and shows how the plan chosen by the cost-based
// optimizer shifts from post-filtering to pre-filtering, and compares
// forced plans at each point.
//
//	go run ./examples/hybrid_search
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"vdbms"
)

const (
	nProducts = 20000
	dim       = 64
)

func main() {
	db := vdbms.New()
	col, err := db.CreateCollection("products", vdbms.Schema{
		Dim: dim,
		Attributes: map[string]string{
			"price":    "float",
			"brand":    "string",
			"in_stock": "int",
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	brands := []string{"acme", "globex", "initech", "umbrella", "stark"}
	// Product embeddings: 50 style clusters.
	centers := make([][]float32, 50)
	for i := range centers {
		centers[i] = make([]float32, dim)
		for j := range centers[i] {
			centers[i][j] = rng.Float32() * 10
		}
	}
	for i := 0; i < nProducts; i++ {
		c := centers[rng.Intn(len(centers))]
		v := make([]float32, dim)
		for j := range v {
			v[j] = c[j] + float32(rng.NormFloat64())*0.4
		}
		if _, err := col.Insert(v, map[string]any{
			"price":    rng.Float64() * 1000,
			"brand":    brands[rng.Intn(len(brands))],
			"in_stock": rng.Intn(2),
		}); err != nil {
			log.Fatal(err)
		}
	}
	if err := col.CreateIndex("hnsw", map[string]int{"m": 16}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("catalog: %d products, hnsw index built\n\n", col.Len())

	query, _, err := col.Get(4242) // "similar products" query
	if err != nil {
		log.Fatal(err)
	}

	scenarios := []struct {
		name    string
		filters []vdbms.Filter
	}{
		{"no filter", nil},
		{"in stock (sel ~0.5)", []vdbms.Filter{
			{Column: "in_stock", Op: "=", Value: 1},
		}},
		{"brand acme (sel ~0.2)", []vdbms.Filter{
			{Column: "brand", Op: "=", Value: "acme"},
		}},
		{"acme under $50 (sel ~0.01)", []vdbms.Filter{
			{Column: "brand", Op: "=", Value: "acme"},
			{Column: "price", Op: "<", Value: 50.0},
		}},
		{"acme under $3 (sel ~0.0006)", []vdbms.Filter{
			{Column: "brand", Op: "=", Value: "acme"},
			{Column: "price", Op: "<", Value: 3.0},
		}},
	}
	for _, sc := range scenarios {
		res, err := col.Search(vdbms.SearchRequest{
			Vector: query, K: 10, Filters: sc.filters, Ef: 100,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s optimizer chose %-12s -> %d results\n", sc.name, res.Plan, len(res.Hits))
		// Compare forced plans on the same query.
		for _, forced := range []string{"plan:pre_filter", "plan:post_filter", "plan:single_stage"} {
			start := time.Now()
			fres, err := col.Search(vdbms.SearchRequest{
				Vector: query, K: 10, Filters: sc.filters, Ef: 100, Policy: forced,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("    %-22s %2d results in %8s\n",
				forced[5:], len(fres.Hits), time.Since(start).Round(time.Microsecond))
		}
	}

	// Show the first result set with attributes, like a storefront.
	res, _ := col.Search(vdbms.SearchRequest{
		Vector: query, K: 5,
		Filters: []vdbms.Filter{{Column: "in_stock", Op: "=", Value: 1}},
		Ef:      100,
	})
	fmt.Println("\ntop-5 in-stock similar products:")
	for _, h := range res.Hits {
		_, attrs, _ := col.Get(h.ID)
		fmt.Printf("  #%-6d %-9s $%-8.2f dist=%.3f\n", h.ID, attrs["brand"], attrs["price"], h.Dist)
	}
}
