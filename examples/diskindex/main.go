// Disk-resident indexes: builds a DiskANN-style graph file and a
// SPANN-style posting-list file over the same collection and reports
// recall against I/Os per query (Section 2.2, disk-resident indexes).
//
//	go run ./examples/diskindex
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"vdbms/internal/dataset"
	"vdbms/internal/index"
	"vdbms/internal/index/diskann"
	"vdbms/internal/index/spann"
	"vdbms/internal/topk"
	"vdbms/internal/vec"
)

const (
	n   = 10000
	dim = 64
)

func main() {
	dir, err := os.MkdirTemp("", "vdbms-diskindex-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	ds := dataset.Clustered(n, dim, 32, 0.4, 1)
	qs := ds.Queries(30, 0.05, 2)
	truth := dataset.GroundTruth(vec.SquaredL2, ds, qs, 10)

	// DiskANN: full vectors + graph on disk, PQ codes in RAM.
	daPath := filepath.Join(dir, "vectors.diskann")
	da, err := diskann.Build(ds.Data, ds.Count, ds.Dim, daPath, diskann.Config{
		R: 24, Beam: 4, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer da.Close()
	if fi, err := os.Stat(daPath); err == nil {
		fmt.Printf("diskann file: %.1f MB for %d vectors (RAM holds only PQ codes)\n",
			float64(fi.Size())/(1<<20), n)
	}
	fmt.Println("\nDiskANN beam search:")
	for _, ef := range []int{20, 40, 80} {
		da.ResetStats()
		got := make([][]topk.Result, len(qs))
		for i, q := range qs {
			got[i], _ = da.Search(q, 10, index.Params{Ef: ef})
		}
		fmt.Printf("  ef=%-3d recall@10=%.3f  record reads/query=%.1f\n",
			ef, dataset.MeanRecall(got, truth), float64(da.IOReads())/float64(len(qs)))
	}

	// SPANN: centroids in RAM, closure-replicated posting lists on disk.
	spPath := filepath.Join(dir, "postings.spann")
	sp, err := spann.Build(ds.Data, ds.Count, ds.Dim, spPath, spann.Config{
		NList: 128, ClosureEps: 0.25, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sp.Close()
	fmt.Printf("\nSPANN posting lists (replication factor %.2f):\n", sp.ReplicationFactor())
	for _, nprobe := range []int{1, 2, 4, 8} {
		sp.ResetStats()
		got := make([][]topk.Result, len(qs))
		for i, q := range qs {
			got[i], _ = sp.Search(q, 10, index.Params{NProbe: nprobe})
		}
		fmt.Printf("  nprobe=%-2d recall@10=%.3f  pages read/query=%.1f\n",
			nprobe, dataset.MeanRecall(got, truth), float64(sp.IOReads())/float64(len(qs)))
	}
	fmt.Println("\nboth indexes answer from disk with a handful of I/Os per query,")
	fmt.Println("the property that lets a single node serve collections larger than RAM.")
}
