// Distributed search: the collection is partitioned across shards
// served over net/rpc on loopback, and a router answers queries by
// scatter-gather (Section 2.3(2)). The example contrasts random
// partitioning (always full fan-out) with index-guided cluster
// partitioning, where routing to the 2 nearest shard centroids
// preserves almost all recall.
//
//	go run ./examples/distributed
package main

import (
	"fmt"
	"log"
	"net"

	"vdbms/internal/dataset"
	"vdbms/internal/dist"
	"vdbms/internal/index/hnsw"
	"vdbms/internal/topk"
	"vdbms/internal/vec"
)

const (
	n      = 20000
	dim    = 64
	shards = 4
)

func main() {
	ds := dataset.Clustered(n, dim, 32, 0.4, 1)
	qs := ds.Queries(50, 0.05, 2)
	truth := dataset.GroundTruth(vec.SquaredL2, ds, qs, 10)

	// Index-guided partitioning: k-means clusters map to shards.
	part, err := dist.PartitionClustered(ds.Data, ds.Count, ds.Dim, shards, 5)
	if err != nil {
		log.Fatal(err)
	}
	partData, partIDs := dist.SplitRows(ds.Data, ds.Count, ds.Dim, part)

	// Launch each shard as an rpc server on loopback (stand-ins for
	// separate shard processes; cmd/vdbms-shard runs the same service
	// standalone).
	var remote []dist.Shard
	for i := 0; i < shards; i++ {
		idx, err := hnsw.Build(partData[i], len(partIDs[i]), dim, hnsw.Config{M: 12, Seed: 1})
		if err != nil {
			log.Fatal(err)
		}
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		if err := dist.ServeShard(l, dist.NewLocalShard(idx, partIDs[i])); err != nil {
			log.Fatal(err)
		}
		client, err := dist.DialShard(l.Addr().String())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("shard %d: %d vectors at %s\n", i, client.Count(), l.Addr())
		remote = append(remote, client)
	}
	router := dist.NewRouter(remote, part.Centroids)

	recall := func(probes int) float64 {
		got := make([][]topk.Result, len(qs))
		for i, q := range qs {
			res, err := router.RoutedSearch(q, 10, 100, probes)
			if err != nil {
				log.Fatal(err)
			}
			got[i] = res
		}
		return dataset.MeanRecall(got, truth)
	}

	fmt.Println("\nrouted search over rpc shards (k=10, ef=100):")
	for _, probes := range []int{1, 2, 4} {
		fmt.Printf("  probe %d/%d shards -> recall@10 = %.3f (fan-out %d)\n",
			probes, shards, recall(probes), router.FanOut(probes))
	}
	fmt.Println("\nindex-guided partitioning lets 2 of 4 shards answer with near-full recall;")
	fmt.Println("random partitioning would need all shards for every query.")
}
