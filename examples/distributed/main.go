// Distributed search: the collection is partitioned across shards
// served over net/rpc on loopback, and a router answers queries by
// scatter-gather (Section 2.3(2)). The example contrasts random
// partitioning (always full fan-out) with index-guided cluster
// partitioning, where routing to the 2 nearest shard centroids
// preserves almost all recall — then demonstrates the fault-tolerance
// layer: a shard at 100% injected error rate degrades queries to
// partial results instead of failing them, a hung shard is bounded by
// the query deadline, and a replica set's circuit breaker trips on a
// failing primary and heals automatically once it recovers.
//
//	go run ./examples/distributed
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"time"

	"vdbms/internal/dataset"
	"vdbms/internal/dist"
	"vdbms/internal/fault"
	"vdbms/internal/index/hnsw"
	"vdbms/internal/topk"
	"vdbms/internal/vec"
)

const (
	n      = 20000
	dim    = 64
	shards = 4
)

func main() {
	ds := dataset.Clustered(n, dim, 32, 0.4, 1)
	qs := ds.Queries(50, 0.05, 2)
	truth := dataset.GroundTruth(vec.SquaredL2, ds, qs, 10)
	ctx := context.Background()

	// Index-guided partitioning: k-means clusters map to shards.
	part, err := dist.PartitionClustered(ds.Data, ds.Count, ds.Dim, shards, 5)
	if err != nil {
		log.Fatal(err)
	}
	partData, partIDs := dist.SplitRows(ds.Data, ds.Count, ds.Dim, part)

	// Launch each shard as an rpc server on loopback (stand-ins for
	// separate shard processes; cmd/vdbms-shard runs the same service
	// standalone).
	var remote []dist.Shard
	for i := 0; i < shards; i++ {
		idx, err := hnsw.Build(partData[i], len(partIDs[i]), dim, hnsw.Config{M: 12, Seed: 1})
		if err != nil {
			log.Fatal(err)
		}
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		if err := dist.ServeShard(l, dist.NewLocalShard(idx, partIDs[i])); err != nil {
			log.Fatal(err)
		}
		client, err := dist.DialShard(l.Addr().String())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("shard %d: %d vectors at %s\n", i, client.Count(), l.Addr())
		remote = append(remote, client)
	}
	router := dist.NewRouter(remote, part.Centroids)

	recall := func(probes int) float64 {
		got := make([][]topk.Result, len(qs))
		for i, q := range qs {
			res, _, err := router.RoutedSearch(ctx, q, 10, 100, probes)
			if err != nil {
				log.Fatal(err)
			}
			got[i] = res
		}
		return dataset.MeanRecall(got, truth)
	}

	fmt.Println("\nrouted search over rpc shards (k=10, ef=100):")
	for _, probes := range []int{1, 2, 4} {
		fmt.Printf("  probe %d/%d shards -> recall@10 = %.3f (fan-out %d)\n",
			probes, shards, recall(probes), router.FanOut(probes))
	}
	fmt.Println("\nindex-guided partitioning lets 2 of 4 shards answer with near-full recall;")
	fmt.Println("random partitioning would need all shards for every query.")

	// ------------------------------------------------------------------
	// Fault tolerance: kill one shard (100% injected errors) and keep
	// answering from the remaining three.
	chaos := fault.NewChaosShard(remote[3], fault.ChaosConfig{ErrorRate: 1, Seed: 7})
	faulty := dist.NewRouter([]dist.Shard{remote[0], remote[1], remote[2], chaos}, nil,
		dist.WithShardTimeout(500*time.Millisecond))
	got := make([][]topk.Result, len(qs))
	var lastPartial dist.Partial
	for i, q := range qs {
		res, p, err := faulty.Search(ctx, q, 10, 100)
		if err != nil {
			log.Fatal(err)
		}
		got[i], lastPartial = res, p
	}
	fmt.Printf("\nwith shard 3 at 100%% error rate, queries degrade instead of failing:\n")
	fmt.Printf("  partial report: answered %v, failed shards %v (targeted %d)\n",
		lastPartial.Answered, lastPartial.FailedShards(), lastPartial.Targeted)
	fmt.Printf("  recall@10 over surviving shards = %.3f\n", dataset.MeanRecall(got, truth))

	// A hung shard (never answers) is bounded by the query deadline.
	hung := fault.NewChaosShard(remote[3], fault.ChaosConfig{HangRate: 1, Seed: 9})
	bounded := dist.NewRouter([]dist.Shard{remote[0], remote[1], remote[2], hung}, nil)
	dctx, cancel := context.WithTimeout(ctx, 200*time.Millisecond)
	start := time.Now()
	_, p, err := bounded.Search(dctx, qs[0], 10, 100)
	cancel()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\na hung shard cannot stall the query past its deadline:\n")
	fmt.Printf("  answered %v in %v, hung shard charged to partial report %v\n",
		p.Answered, time.Since(start).Round(time.Millisecond), p.FailedShards())

	// ------------------------------------------------------------------
	// Replica failover with automatic healing: the primary errors, its
	// breaker trips, traffic fails over; once the primary recovers a
	// half-open probe closes the breaker and traffic returns.
	primary := fault.NewChaosShard(remote[0], fault.ChaosConfig{ErrorRate: 1, Seed: 3})
	rs, err := dist.NewReplicaSetWithBreaker(
		fault.BreakerConfig{FailureThreshold: 1, SuccessThreshold: 1, Cooldown: 50 * time.Millisecond},
		primary, remote[0])
	if err != nil {
		log.Fatal(err)
	}
	q0 := ds.Row(int(partIDs[0][0]))
	if _, err := rs.Search(ctx, q0, 1, 100); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nreplica set: primary erroring -> breaker %v, served by secondary\n", rs.State(0))
	primary.SetErrorRate(0) // the primary comes back
	time.Sleep(60 * time.Millisecond)
	if _, err := rs.Search(ctx, q0, 1, 100); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("primary recovered -> probe admitted after cooldown, breaker %v, traffic back on primary\n", rs.State(0))
}
