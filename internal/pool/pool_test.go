package pool

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestRunExecutesAllTasks(t *testing.T) {
	p := New(4)
	var hits [100]int32
	p.Run(len(hits), func(i int) { atomic.AddInt32(&hits[i], 1) })
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("task %d ran %d times", i, h)
		}
	}
}

func TestRunZeroAndOne(t *testing.T) {
	p := New(2)
	p.Run(0, func(int) { t.Fatal("fn called for n=0") })
	ran := false
	p.Run(1, func(i int) { ran = i == 0 })
	if !ran {
		t.Fatal("single task not run inline")
	}
}

// Nested Run calls from inside pool workers must not deadlock even
// when the nesting demand exceeds the token count many times over.
func TestNestedRunDoesNotDeadlock(t *testing.T) {
	p := New(2)
	var total atomic.Int64
	p.Run(8, func(int) {
		p.Run(8, func(int) {
			p.Run(4, func(int) { total.Add(1) })
		})
	})
	if got := total.Load(); got != 8*8*4 {
		t.Fatalf("nested tasks ran %d times, want %d", got, 8*8*4)
	}
}

func TestConcurrencyBounded(t *testing.T) {
	p := New(3)
	var cur, max atomic.Int64
	var mu sync.Mutex
	p.Run(64, func(int) {
		n := cur.Add(1)
		mu.Lock()
		if n > max.Load() {
			max.Store(n)
		}
		mu.Unlock()
		cur.Add(-1)
	})
	// Pool workers plus the submitting goroutine running inline.
	if m := max.Load(); m > int64(p.Size())+1 {
		t.Fatalf("observed %d concurrent tasks, bound is %d workers + caller", m, p.Size())
	}
}

func TestEffective(t *testing.T) {
	p := New(4)
	cases := []struct{ req, tasks, want int }{
		{0, 100, 4},  // default: pool size
		{1, 100, 1},  // serial
		{8, 100, 8},  // explicit overcommit allowed (pool still bounds concurrency)
		{8, 3, 3},    // clamped to task count
		{0, 2, 2},    // default clamped too
		{-5, 100, 4}, // negative = default
		{3, 0, 1},    // never below 1
	}
	for _, c := range cases {
		if got := p.Effective(c.req, c.tasks); got != c.want {
			t.Fatalf("Effective(%d, %d) = %d, want %d", c.req, c.tasks, got, c.want)
		}
	}
}

func TestSplit(t *testing.T) {
	for _, c := range []struct {
		n, w int
	}{{10, 3}, {1, 4}, {100, 7}, {5, 5}, {17, 1}} {
		offs := Split(c.n, c.w)
		if offs[0] != 0 || offs[len(offs)-1] != c.n {
			t.Fatalf("Split(%d,%d) = %v: bad bounds", c.n, c.w, offs)
		}
		for i := 1; i < len(offs); i++ {
			if offs[i] < offs[i-1] {
				t.Fatalf("Split(%d,%d) = %v: not monotone", c.n, c.w, offs)
			}
		}
	}
	// Partitions must be non-empty when w <= n.
	offs := Split(10, 3)
	for i := 1; i < len(offs); i++ {
		if offs[i] == offs[i-1] {
			t.Fatalf("Split(10,3) = %v has empty range", offs)
		}
	}
}

func TestDefaultShared(t *testing.T) {
	if Default() != Default() {
		t.Fatal("Default must return the same pool")
	}
	if Default().Size() < 1 {
		t.Fatal("default pool must have at least one worker")
	}
}
