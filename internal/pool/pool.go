// Package pool provides the process-wide bounded worker pool behind
// every parallel fan-out in the engine: intra-query partitioned scans
// (flat ranges, IVF list groups, LSM memtable+segments) and the
// cross-query batch executor all draw goroutines from the same token
// bucket, so batch × intra-query nesting composes without
// oversubscribing the machine.
//
// Two properties make the pool safe to call from anywhere:
//
//   - Non-blocking admission: a task that cannot get a token runs
//     inline on the submitting goroutine. Nested Run calls (a batch
//     worker fanning out its own partitions) therefore never deadlock
//     — under saturation they just degrade to serial execution.
//   - Determinism neutrality: the pool only schedules; how work is
//     partitioned is fixed by the caller's parallelism knob, so
//     results never depend on how many tokens happened to be free.
package pool

import (
	"runtime"
	"sync"

	"vdbms/internal/obs"
)

// Pool is a token-bounded goroutine pool.
type Pool struct {
	tokens chan struct{}
}

// New creates a pool running at most size concurrent workers.
// size <= 0 selects GOMAXPROCS.
func New(size int) *Pool {
	if size <= 0 {
		size = runtime.GOMAXPROCS(0)
	}
	return &Pool{tokens: make(chan struct{}, size)}
}

var defaultPool = New(0)

// Default returns the shared process-wide pool, sized to GOMAXPROCS at
// startup.
func Default() *Pool { return defaultPool }

// Size returns the worker bound.
func (p *Pool) Size() int { return cap(p.tokens) }

// Effective resolves a caller's parallelism knob against the task
// count: requested <= 0 selects the pool size (the "use the machine"
// default), and the result is clamped to [1, tasks] so no partition is
// ever empty.
func (p *Pool) Effective(requested, tasks int) int {
	w := requested
	if w <= 0 {
		w = p.Size()
	}
	if w > tasks {
		w = tasks
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Run executes fn(0..n-1), fanning tasks onto pool workers when tokens
// are available and running them inline otherwise. It returns when all
// n tasks have completed. fn must be safe for concurrent invocation;
// task index identity is the only ordering guarantee.
func (p *Pool) Run(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if n == 1 {
		fn(0)
		return
	}
	obs.PoolTasks.Add(int64(n))
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		select {
		case p.tokens <- struct{}{}:
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				defer func() { <-p.tokens }()
				fn(i)
			}(i)
		default:
			// Saturated: contribute the submitting goroutine instead of
			// queueing, which keeps nested fan-out deadlock-free.
			obs.PoolInline.Inc()
			fn(i)
		}
	}
	wg.Wait()
}

// Split partitions n items into w contiguous ranges of near-equal
// size and returns the start offsets (len w+1, offsets[w] == n). The
// partition depends only on (n, w), never on scheduling, so callers
// get identical per-worker inputs for a given parallelism knob.
func Split(n, w int) []int {
	if w < 1 {
		w = 1
	}
	if w > n {
		w = n
	}
	offsets := make([]int, w+1)
	for i := 0; i <= w; i++ {
		offsets[i] = i * n / w
	}
	return offsets
}
