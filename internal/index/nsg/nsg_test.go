package nsg

import (
	"testing"

	"vdbms/internal/dataset"
	"vdbms/internal/index"
	"vdbms/internal/vec"
)

func meanRecall(t *testing.T, g *Graph, ds *dataset.Dataset, ef, k, nq int) float64 {
	t.Helper()
	qs := ds.Queries(nq, 0.05, 2)
	truth := dataset.GroundTruth(vec.SquaredL2, ds, qs, k)
	var s float64
	for i, q := range qs {
		got, err := g.Search(q, k, index.Params{Ef: ef})
		if err != nil {
			t.Fatal(err)
		}
		s += dataset.Recall(got, truth[i])
	}
	return s / float64(nq)
}

func TestNSGRecallAndDegree(t *testing.T) {
	ds := dataset.Clustered(1200, 16, 8, 0.4, 1)
	g, err := Build(ds.Data, ds.Count, ds.Dim, Config{Variant: NSG, R: 12, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r := meanRecall(t, g, ds, 80, 10, 15); r < 0.85 {
		t.Fatalf("nsg recall = %v", r)
	}
	if d := g.AvgDegree(); d > 12 {
		t.Fatalf("avg degree %v exceeds R", d)
	}
	if g.Name() != "nsg" {
		t.Fatal("name wrong")
	}
}

func TestVamanaRecall(t *testing.T) {
	ds := dataset.Clustered(1200, 16, 8, 0.4, 3)
	g, err := Build(ds.Data, ds.Count, ds.Dim, Config{Variant: Vamana, R: 12, Alpha: 1.2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r := meanRecall(t, g, ds, 80, 10, 15); r < 0.85 {
		t.Fatalf("vamana recall = %v", r)
	}
	if g.Name() != "vamana" {
		t.Fatal("name wrong")
	}
}

func TestAllNodesReachable(t *testing.T) {
	ds := dataset.Clustered(500, 8, 20, 0.1, 5) // many tight clusters invite disconnection
	g, err := Build(ds.Data, ds.Count, ds.Dim, Config{Variant: Vamana, R: 6, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	reach := make([]bool, ds.Count)
	stack := []int32{g.Medoid()}
	reach[g.Medoid()] = true
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, nb := range g.Adjacency()[v] {
			if !reach[nb] {
				reach[nb] = true
				count++
				stack = append(stack, nb)
			}
		}
	}
	if count != ds.Count {
		t.Fatalf("only %d of %d nodes reachable from medoid", count, ds.Count)
	}
}

func TestAlphaAblationKeepsMoreEdges(t *testing.T) {
	ds := dataset.Clustered(600, 16, 6, 0.4, 9)
	tight, err := Build(ds.Data, ds.Count, ds.Dim, Config{Variant: Vamana, R: 16, Alpha: 1.0, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	loose, err := Build(ds.Data, ds.Count, ds.Dim, Config{Variant: Vamana, R: 16, Alpha: 1.6, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if loose.AvgDegree() < tight.AvgDegree() {
		t.Fatalf("alpha=1.6 degree %v below alpha=1.0 degree %v", loose.AvgDegree(), tight.AvgDegree())
	}
}

func TestValidationAndStats(t *testing.T) {
	if _, err := Build([]float32{1}, 2, 2, Config{}); err == nil {
		t.Fatal("want shape error")
	}
	if _, err := Build(make([]float32, 8), 4, 2, Config{Variant: Variant(9)}); err == nil {
		t.Fatal("want variant error")
	}
	ds := dataset.Uniform(80, 4, 11)
	g, err := Build(ds.Data, 80, 4, Config{R: 6, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Search(ds.Row(0), 0, index.Params{}); err != index.ErrBadK {
		t.Fatal("want ErrBadK")
	}
	if _, err := g.Search([]float32{1}, 1, index.Params{}); err == nil {
		t.Fatal("want dim error")
	}
	g.ResetStats()
	g.Search(ds.Row(0), 3, index.Params{})
	if g.DistanceComps() == 0 || g.Size() != 80 {
		t.Fatal("stats wrong")
	}
}

func TestRegistry(t *testing.T) {
	ds := dataset.Uniform(60, 4, 13)
	for _, name := range []string{"nsg", "vamana"} {
		idx, err := index.Build(name, ds.Data, 60, 4, vec.L2, map[string]int{"r": 6, "l": 12, "alpha100": 120})
		if err != nil || idx.Name() != name {
			t.Fatalf("%s: %v", name, err)
		}
	}
	if _, err := index.Build("nsg", ds.Data, 60, 4, vec.L2, map[string]int{"zz": 1}); err == nil {
		t.Fatal("want unknown-option error")
	}
}

func TestFANNGRecall(t *testing.T) {
	ds := dataset.Clustered(1000, 16, 6, 0.4, 21)
	g, err := Build(ds.Data, ds.Count, ds.Dim, Config{Variant: FANNG, R: 12, Trials: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if g.Name() != "fanng" {
		t.Fatal("name wrong")
	}
	if r := meanRecall(t, g, ds, 80, 10, 15); r < 0.8 {
		t.Fatalf("fanng recall = %v", r)
	}
	if d := g.AvgDegree(); d > 12 {
		t.Fatalf("avg degree %v exceeds R", d)
	}
}

func TestFANNGRegistry(t *testing.T) {
	ds := dataset.Uniform(60, 4, 23)
	idx, err := index.Build("fanng", ds.Data, 60, 4, vec.L2, map[string]int{"r": 6, "trials": 6})
	if err != nil || idx.Name() != "fanng" {
		t.Fatalf("%v", err)
	}
}
