// Package nsg implements monotonic-search-network construction
// (Section 2.2(2)): both the NSG recipe of Fu et al. (initialize from
// an approximate KNNG, designate the medoid as navigating node, run a
// search trial per node and prune with the MRNG rule) and the Vamana
// recipe of DiskANN (random initial graph, two α passes). The two
// share the navigating-node trial structure; Variant selects the
// initialization and α schedule.
package nsg

import (
	"fmt"
	"math/rand"
	"sync/atomic"

	"vdbms/internal/index"
	"vdbms/internal/index/graph"
	"vdbms/internal/index/knng"
	"vdbms/internal/topk"
	"vdbms/internal/vec"
)

// Variant selects the construction recipe.
type Variant int

const (
	// NSG initializes from an approximate KNNG and prunes with the
	// MRNG rule (alpha = 1).
	NSG Variant = iota
	// Vamana initializes randomly and runs two passes, the second
	// with alpha > 1 to keep long-range edges.
	Vamana
	// FANNG runs a large number of search trials over random
	// (source, target) pairs: whenever greedy traversal stalls before
	// reaching the target, an edge is added from the stall point and
	// the stall point's edges are re-pruned (Harwood & Drummond).
	FANNG
)

// Config controls construction.
type Config struct {
	Variant Variant
	R       int     // max out-degree; default 16
	L       int     // search-trial beam width; default 2*R
	Alpha   float32 // Vamana's second-pass alpha; default 1.2
	Seed    int64
	// KNNGK is the neighbor count of the initial KNNG (NSG variant);
	// default R.
	KNNGK int
	// Trials is the number of FANNG search trials as a multiple of n;
	// default 8.
	Trials int
	// Metric is the distance the graph is built and searched under.
	Metric vec.Metric
	// Quant optionally stores a compressed copy of the vectors for
	// traversal scoring with exact re-rank (see index.QuantSpec). The
	// graph is always constructed at full precision.
	Quant index.QuantSpec
}

// Graph is the built index.
type Graph struct {
	cfg Config
	dim int
	n   int
	s   *graph.Searcher
	adj graph.Adjacency // construction-time mutable adjacency
	// frozen is the serving adjacency, slab-packed after construction
	// so per-node slice headers stop dominating GC work at scale.
	frozen graph.Neighborhoods
	medoid int32
	comps  atomic.Int64
}

// Build constructs the graph.
func Build(data []float32, n, d int, cfg Config) (*Graph, error) {
	if d <= 0 || n <= 0 || len(data) < n*d {
		return nil, fmt.Errorf("nsg: bad data shape n=%d d=%d len=%d", n, d, len(data))
	}
	if cfg.R <= 0 {
		cfg.R = 16
	}
	if cfg.L <= 0 {
		cfg.L = 2 * cfg.R
	}
	if cfg.Alpha <= 0 {
		cfg.Alpha = 1.2
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.KNNGK <= 0 {
		cfg.KNNGK = cfg.R
	}
	if cfg.Trials <= 0 {
		cfg.Trials = 8
	}
	sc, err := vec.NewScorer(cfg.Metric, data, n, d)
	if err != nil {
		return nil, fmt.Errorf("nsg: %w", err)
	}
	g := &Graph{cfg: cfg, dim: d, n: n,
		s: &graph.Searcher{Data: data, Dim: d, Fn: vec.Distance(cfg.Metric), Scorer: sc}}
	g.medoid = g.findMedoid()

	switch cfg.Variant {
	case NSG:
		kg, err := knng.Build(data, n, d, knng.Config{K: cfg.KNNGK, Seed: cfg.Seed, MaxIter: 8, Metric: cfg.Metric})
		if err != nil {
			return nil, fmt.Errorf("nsg: knng init: %w", err)
		}
		g.adj = cloneAdj(kg.Adjacency())
		g.pass(1.0)
	case Vamana:
		g.adj = randomAdj(n, cfg.R, cfg.Seed)
		g.pass(1.0)
		g.pass(cfg.Alpha)
	case FANNG:
		g.adj = make(graph.Adjacency, n)
		g.buildFANNG()
	default:
		return nil, fmt.Errorf("nsg: unknown variant %d", cfg.Variant)
	}
	g.connectOrphans()
	g.frozen = graph.Freeze(g.adj)
	g.adj = nil // construction slices die here; serving uses the slab
	if cfg.Quant.Enabled() {
		qsc, err := index.BuildQuantKernel(cfg.Quant, cfg.Metric, data, n, d)
		if err != nil {
			return nil, fmt.Errorf("nsg: %w", err)
		}
		g.s.Quant = qsc
	}
	return g, nil
}

func cloneAdj(a graph.Adjacency) graph.Adjacency {
	out := make(graph.Adjacency, len(a))
	for i, nbrs := range a {
		out[i] = append([]int32(nil), nbrs...)
	}
	return out
}

func randomAdj(n, r int, seed int64) graph.Adjacency {
	rng := rand.New(rand.NewSource(seed))
	adj := make(graph.Adjacency, n)
	for v := 0; v < n; v++ {
		seen := map[int32]struct{}{int32(v): {}}
		for len(adj[v]) < r && len(adj[v]) < n-1 {
			c := int32(rng.Intn(n))
			if _, dup := seen[c]; dup {
				continue
			}
			seen[c] = struct{}{}
			adj[v] = append(adj[v], c)
		}
	}
	return adj
}

// findMedoid returns the point closest to the dataset centroid — the
// navigating node both NSG and Vamana route every trial through.
func (g *Graph) findMedoid() int32 {
	d := g.dim
	cent := make([]float32, d)
	for i := 0; i < g.n; i++ {
		row := g.s.Row(int32(i))
		for j := range cent {
			cent[j] += row[j]
		}
	}
	inv := 1 / float32(g.n)
	for j := range cent {
		cent[j] *= inv
	}
	bq := g.s.Bind(cent)
	best, bestD := int32(0), float32(0)
	for i := 0; i < g.n; i++ {
		dd := bq.Dist(int32(i))
		if i == 0 || dd < bestD {
			best, bestD = int32(i), dd
		}
	}
	return best
}

// pass runs one construction sweep: for every node, a search trial
// from the medoid gathers candidates (the visited set approximates
// nodes on the search path), then RobustPrune selects edges and
// reverse edges are inserted with degree capping.
func (g *Graph) pass(alpha float32) {
	for v := 0; v < g.n; v++ {
		q := g.s.Row(int32(v))
		visited := graph.BeamSearch(g.s, g.adj, q, []int32{g.medoid}, g.cfg.L, g.cfg.L, index.Params{})
		// Include current neighbors so established edges compete.
		cands := visited
		for _, nb := range g.adj[v] {
			cands = append(cands, topk.Result{ID: int64(nb), Dist: g.s.DistRows(int32(v), nb)})
		}
		sortResults(cands)
		cands = dedupe(cands)
		g.adj[v] = graph.RobustPrune(g.s, int32(v), cands, g.cfg.R, alpha)
		for _, nb := range g.adj[v] {
			g.addReverse(nb, int32(v), alpha)
		}
	}
}

// addReverse inserts edge nb -> v, re-pruning if the degree cap is
// exceeded.
func (g *Graph) addReverse(nb, v int32, alpha float32) {
	for _, e := range g.adj[nb] {
		if e == v {
			return
		}
	}
	g.adj[nb] = append(g.adj[nb], v)
	if len(g.adj[nb]) <= g.cfg.R {
		return
	}
	cands := make([]topk.Result, 0, len(g.adj[nb]))
	for _, e := range g.adj[nb] {
		cands = append(cands, topk.Result{ID: int64(e), Dist: g.s.DistRows(nb, e)})
	}
	sortResults(cands)
	g.adj[nb] = graph.RobustPrune(g.s, nb, cands, g.cfg.R, alpha)
}

// buildFANNG grows the graph with occlusion-pruned edges discovered by
// random search trials: pick random (source, target); greedily walk
// from source toward target; where the walk stalls short of the
// target, add an edge stall -> target and re-prune the stall node.
// Early trials on an empty graph stall immediately at the source,
// seeding first edges; later trials only patch genuine gaps, so the
// update rate decays as the graph approaches monotonicity.
func (g *Graph) buildFANNG() {
	rng := rand.New(rand.NewSource(g.cfg.Seed + 101))
	trials := g.cfg.Trials * g.n
	for trial := 0; trial < trials; trial++ {
		src := int32(rng.Intn(g.n))
		tgt := int32(rng.Intn(g.n))
		if src == tgt {
			continue
		}
		q := g.s.Row(tgt)
		stall, stallD := graph.GreedyWalk(g.s, g.adj, q, src)
		if stallD == 0 || stall == tgt {
			continue // reached the target (distance 0 at tgt itself)
		}
		g.addReverse(stall, tgt, 1.0)
	}
}

// connectOrphans guarantees reachability from the medoid by attaching
// any unreachable node to its nearest reachable neighbor — NSG's tree
// spanning step, simplified.
func (g *Graph) connectOrphans() {
	reach := make([]bool, g.n)
	stack := []int32{g.medoid}
	reach[g.medoid] = true
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, nb := range g.adj[v] {
			if !reach[nb] {
				reach[nb] = true
				stack = append(stack, nb)
			}
		}
	}
	for v := 0; v < g.n; v++ {
		if reach[v] {
			continue
		}
		// Attach from the closest reachable node found by beam search.
		res := graph.BeamSearch(g.s, g.adj, g.s.Row(int32(v)), []int32{g.medoid}, 1, g.cfg.L, index.Params{})
		if len(res) == 0 {
			res = []topk.Result{{ID: int64(g.medoid)}}
		}
		src := int32(res[0].ID)
		g.adj[src] = append(g.adj[src], int32(v))
		// Mark the newly attached subtree reachable.
		stack = append(stack, int32(v))
		reach[v] = true
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, nb := range g.adj[x] {
				if !reach[nb] {
					reach[nb] = true
					stack = append(stack, nb)
				}
			}
		}
	}
}

func sortResults(rs []topk.Result) {
	for i := 1; i < len(rs); i++ {
		for j := i; j > 0 && rs[j].Dist < rs[j-1].Dist; j-- {
			rs[j], rs[j-1] = rs[j-1], rs[j]
		}
	}
}

func dedupe(rs []topk.Result) []topk.Result {
	seen := make(map[int64]struct{}, len(rs))
	out := rs[:0]
	for _, r := range rs {
		if _, dup := seen[r.ID]; dup {
			continue
		}
		seen[r.ID] = struct{}{}
		out = append(out, r)
	}
	return out
}

// Name implements index.Index.
func (g *Graph) Name() string {
	switch g.cfg.Variant {
	case Vamana:
		return "vamana"
	case FANNG:
		return "fanng"
	default:
		return "nsg"
	}
}

// Size implements index.Index.
func (g *Graph) Size() int { return g.n }

// Medoid returns the navigating node.
func (g *Graph) Medoid() int32 { return g.medoid }

// Adjacency exposes the out-neighbor lists (the DiskANN layout writer
// consumes them). After construction the graph lives in a slab, so
// this materializes a mutable copy — export paths only.
func (g *Graph) Adjacency() graph.Adjacency {
	if g.adj != nil {
		return g.adj
	}
	if s, ok := g.frozen.(*graph.Slab); ok {
		return s.Unfreeze()
	}
	return g.frozen.(graph.Adjacency)
}

// AvgDegree reports the mean out-degree.
func (g *Graph) AvgDegree() float64 { return graph.AvgDegree(g.frozen) }

// MemoryBytes implements index.MemoryFootprint.
func (g *Graph) MemoryBytes() (structure, codes int64) {
	structure = int64(graph.NeighborhoodBytes(g.frozen))
	if g.s.Quant != nil {
		codes = int64(g.s.Quant.BytesPerRow()) * int64(g.n)
	}
	return structure, codes
}

// Remap implements index.Remappable: a shallow clone searching data
// instead of the column the index was built over. The frozen graph
// and quantized codes are shared; only the Searcher is fresh.
func (g *Graph) Remap(data []float32) (index.Index, bool) {
	if len(data) < g.n*g.dim {
		return nil, false
	}
	sc := g.s.Scorer.View()
	sc.Extend(data, g.n)
	g2 := &Graph{
		cfg: g.cfg, dim: g.dim, n: g.n,
		s:      &graph.Searcher{Data: data, Dim: g.dim, Fn: g.s.Fn, Scorer: sc, Quant: g.s.Quant},
		frozen: g.frozen,
		medoid: g.medoid,
	}
	return g2, true
}

// QuantizedScan implements index.Quantized.
func (g *Graph) QuantizedScan() bool { return g.s.Quant != nil }

// ScoringBytes reports the resident bytes the traversal scoring path
// keeps hot (codes when quantized, float32 rows otherwise).
func (g *Graph) ScoringBytes() int { return g.s.ScoringBytes(g.n) }

// DistanceComps implements index.Stats.
func (g *Graph) DistanceComps() int64 { return g.comps.Load() + g.s.Comps.Load() }

// ResetStats implements index.Stats.
func (g *Graph) ResetStats() { g.comps.Store(0); g.s.Comps.Store(0) }

// Search implements index.Index: beam search from the medoid.
func (g *Graph) Search(q []float32, k int, p index.Params) ([]topk.Result, error) {
	if k <= 0 {
		return nil, index.ErrBadK
	}
	if len(q) != g.dim {
		return nil, fmt.Errorf("%w: query %d, index %d", index.ErrDim, len(q), g.dim)
	}
	ef := p.Ef
	if ef <= 0 {
		ef = 4 * k
		if ef < 32 {
			ef = 32
		}
	}
	kk := k
	if g.s.Quant != nil {
		kk = g.cfg.Quant.ResolveRerankK(p, k, g.n)
		if ef < kk {
			ef = kk
		}
	}
	res := graph.BeamSearch(g.s, g.frozen, q, []int32{g.medoid}, kk, ef, p)
	if g.s.Quant != nil {
		g.s.Comps.Add(int64(len(res)))
		if p.Stats != nil {
			p.Stats.DistanceComps += int64(len(res))
		}
		res = index.RerankExact(g.s.Scorer, q, res, k)
	}
	return res, nil
}

func init() {
	for name, v := range map[string]Variant{"nsg": NSG, "vamana": Vamana, "fanng": FANNG} {
		variant := v
		index.Register(name, func(data []float32, n, d int, metric vec.Metric, opts map[string]int) (index.Index, error) {
			cfg := Config{Variant: variant, Metric: metric}
			for k, val := range opts {
				if used, err := cfg.Quant.ParseOpt(k, val); err != nil {
					return nil, err
				} else if used {
					continue
				}
				switch k {
				case "r":
					cfg.R = val
				case "l":
					cfg.L = val
				case "seed":
					cfg.Seed = int64(val)
				case "alpha100":
					cfg.Alpha = float32(val) / 100
				case "trials":
					cfg.Trials = val
				default:
					return nil, fmt.Errorf("nsg: unknown option %q", k)
				}
			}
			return Build(data, n, d, cfg)
		})
		index.MarkQuantCapable(name)
	}
}
