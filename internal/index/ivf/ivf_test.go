package ivf

import (
	"testing"

	"vdbms/internal/bitset"
	"vdbms/internal/dataset"
	"vdbms/internal/index"
	"vdbms/internal/vec"
)

func buildClustered(t *testing.T, v Variant, residual bool) (*IVF, *dataset.Dataset) {
	t.Helper()
	ds := dataset.Clustered(2000, 16, 16, 0.3, 1)
	iv, err := Build(ds.Data, ds.Count, ds.Dim, Config{
		NList: 16, Variant: v, PQM: 4, PQKs: 64, Residual: residual, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	return iv, ds
}

func meanRecall(t *testing.T, iv *IVF, ds *dataset.Dataset, nprobe, k, nq int) float64 {
	t.Helper()
	qs := ds.Queries(nq, 0.05, 2)
	truth := dataset.GroundTruth(vec.SquaredL2, ds, qs, k)
	var s float64
	for i, q := range qs {
		got, err := iv.Search(q, k, index.Params{NProbe: nprobe})
		if err != nil {
			t.Fatal(err)
		}
		s += dataset.Recall(got, truth[i])
	}
	return s / float64(nq)
}

func TestIVFFlatNprobeSweep(t *testing.T) {
	iv, ds := buildClustered(t, Flat, false)
	r1 := meanRecall(t, iv, ds, 1, 10, 20)
	rAll := meanRecall(t, iv, ds, 16, 10, 20)
	if rAll != 1 {
		t.Fatalf("nprobe=nlist must be exact, got %v", rAll)
	}
	if r1 > rAll {
		t.Fatalf("recall must not decrease with nprobe: %v vs %v", r1, rAll)
	}
	if r1 < 0.5 {
		t.Fatalf("clustered data nprobe=1 recall too low: %v", r1)
	}
}

func TestIVFScannedFractionGrows(t *testing.T) {
	iv, ds := buildClustered(t, Flat, false)
	q := ds.Queries(1, 0.05, 7)[0]
	f1 := iv.ScannedFraction(q, 1)
	f8 := iv.ScannedFraction(q, 8)
	fAll := iv.ScannedFraction(q, 16)
	if !(f1 <= f8 && f8 <= fAll) {
		t.Fatalf("scanned fraction must grow: %v %v %v", f1, f8, fAll)
	}
	if fAll < 0.999 {
		t.Fatalf("probing all lists must scan everything: %v", fAll)
	}
	if iv.ScannedFraction(q, 0) != f1 {
		t.Fatal("nprobe=0 should default to 1")
	}
}

func TestIVFSQRecallCloseToFlat(t *testing.T) {
	ivf, ds := buildClustered(t, Flat, false)
	ivsq, _ := buildClustered(t, SQ, false)
	rf := meanRecall(t, ivf, ds, 4, 10, 15)
	rq := meanRecall(t, ivsq, ds, 4, 10, 15)
	if rq < rf-0.15 {
		t.Fatalf("SQ recall %v too far below flat %v", rq, rf)
	}
	if ivsq.Name() != "ivfsq" {
		t.Fatal("name wrong")
	}
}

func TestIVFADCVariants(t *testing.T) {
	plain, ds := buildClustered(t, ADC, false)
	resid, _ := buildClustered(t, ADC, true)
	rp := meanRecall(t, plain, ds, 4, 10, 15)
	rr := meanRecall(t, resid, ds, 4, 10, 15)
	if rp < 0.3 {
		t.Fatalf("IVFADC recall too low: %v", rp)
	}
	// Residual encoding is the canonical IVFADC; it should be at least
	// comparable on clustered data.
	if rr < rp-0.2 {
		t.Fatalf("residual ADC recall %v far below plain %v", rr, rp)
	}
	if plain.Name() != "ivfadc" {
		t.Fatal("name wrong")
	}
}

func TestIVFPredicates(t *testing.T) {
	iv, ds := buildClustered(t, Flat, false)
	allow := bitset.New(ds.Count)
	allow.Set(5)
	allow.Set(6)
	got, err := iv.Search(ds.Row(5), 10, index.Params{NProbe: 16, Allow: allow})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("allowlist results = %d", len(got))
	}
	got, _ = iv.Search(ds.Row(0), 10, index.Params{NProbe: 16, Filter: func(id int64) bool { return id < 100 }})
	for _, r := range got {
		if r.ID >= 100 {
			t.Fatalf("filter violated: %d", r.ID)
		}
	}
}

func TestIVFValidation(t *testing.T) {
	if _, err := Build([]float32{1}, 2, 2, Config{}); err == nil {
		t.Fatal("want shape error")
	}
	ds := dataset.Uniform(50, 4, 3)
	iv, err := Build(ds.Data, 50, 4, Config{NList: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := iv.Search(ds.Row(0), 0, index.Params{}); err != index.ErrBadK {
		t.Fatal("want ErrBadK")
	}
	if _, err := iv.Search([]float32{1}, 1, index.Params{}); err == nil {
		t.Fatal("want dim error")
	}
	if _, err := Build(ds.Data, 50, 4, Config{Variant: Variant(99)}); err == nil {
		t.Fatal("want unknown-variant error")
	}
}

func TestIVFStatsAndMembers(t *testing.T) {
	iv, ds := buildClustered(t, Flat, false)
	iv.ResetStats()
	iv.Search(ds.Row(0), 5, index.Params{NProbe: 2})
	if iv.DistanceComps() == 0 {
		t.Fatal("comps not counted")
	}
	total := 0
	for l := 0; l < iv.NList(); l++ {
		total += len(iv.ListMembers(l))
	}
	if total != ds.Count {
		t.Fatalf("bucket membership covers %d of %d", total, ds.Count)
	}
}

func TestIVFDefaultNList(t *testing.T) {
	ds := dataset.Uniform(100, 4, 5)
	iv, err := Build(ds.Data, 100, 4, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if iv.NList() < 4 {
		t.Fatalf("default nlist = %d", iv.NList())
	}
}

func TestIVFRegistry(t *testing.T) {
	ds := dataset.Uniform(64, 8, 7)
	for _, name := range []string{"ivfflat", "ivfsq", "ivfadc"} {
		idx, err := index.Build(name, ds.Data, 64, 8, vec.L2, map[string]int{"nlist": 4, "m": 2, "ks": 16})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if idx.Name() != name {
			t.Fatalf("name = %s, want %s", idx.Name(), name)
		}
		if _, err := idx.Search(ds.Row(0), 3, index.Params{NProbe: 4}); err != nil {
			t.Fatalf("%s search: %v", name, err)
		}
	}
	if _, err := index.Build("ivfflat", ds.Data, 64, 8, vec.L2, map[string]int{"zz": 1}); err == nil {
		t.Fatal("want unknown-option error")
	}
}

func TestSearchBatchMatchesSingles(t *testing.T) {
	iv, ds := buildClustered(t, Flat, false)
	qs := ds.Queries(12, 0.05, 21)
	batch, err := iv.SearchBatch(qs, 10, index.Params{NProbe: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range qs {
		single, err := iv.Search(q, 10, index.Params{NProbe: 4})
		if err != nil {
			t.Fatal(err)
		}
		if len(single) != len(batch[i]) {
			t.Fatalf("query %d: %d vs %d results", i, len(batch[i]), len(single))
		}
		for j := range single {
			if single[j].ID != batch[i][j].ID || single[j].Dist != batch[i][j].Dist {
				t.Fatalf("query %d result %d differs: %v vs %v", i, j, batch[i][j], single[j])
			}
		}
	}
	if iv.BucketOverlap(qs, 4) < 1 {
		t.Fatal("overlap must be >= 1")
	}
}

func TestSearchBatchValidation(t *testing.T) {
	iv, ds := buildClustered(t, Flat, false)
	if _, err := iv.SearchBatch(ds.Queries(2, 0.05, 23), 0, index.Params{}); err != index.ErrBadK {
		t.Fatal("want ErrBadK")
	}
	if _, err := iv.SearchBatch([][]float32{{1}}, 5, index.Params{}); err == nil {
		t.Fatal("want dim error")
	}
	adc, _ := buildClustered(t, ADC, false)
	if _, err := adc.SearchBatch(ds.Queries(1, 0.05, 25), 5, index.Params{}); err == nil {
		t.Fatal("want variant error")
	}
}

func TestSearchBatchRespectsPredicates(t *testing.T) {
	iv, ds := buildClustered(t, Flat, false)
	qs := ds.Queries(4, 0.05, 27)
	batch, err := iv.SearchBatch(qs, 10, index.Params{NProbe: 16, Filter: func(id int64) bool { return id%2 == 0 }})
	if err != nil {
		t.Fatal(err)
	}
	for _, rs := range batch {
		for _, r := range rs {
			if r.ID%2 != 0 {
				t.Fatalf("filter violated: %d", r.ID)
			}
		}
	}
}
