// Package ivf implements the inverted-file family of Section 2.2:
// vectors are bucketed by k-means ("learning to hash" style learned
// partitioning) and queries scan the nprobe closest buckets.
// Three storage variants mirror the paper's taxonomy:
//
//   - IVFFlat: buckets hold raw vectors (exact re-ranking).
//   - IVFSQ: buckets hold 8-bit scalar-quantized codes.
//   - IVFADC: buckets hold product-quantization codes scanned with a
//     per-query asymmetric distance table (Jégou et al.).
package ivf

import (
	"fmt"
	"sync/atomic"

	"vdbms/internal/index"
	"vdbms/internal/kmeans"
	"vdbms/internal/obs"
	"vdbms/internal/pool"
	"vdbms/internal/quant"
	"vdbms/internal/topk"
	"vdbms/internal/vec"
)

// Variant selects bucket storage.
type Variant int

const (
	// Flat stores raw vectors in each bucket.
	Flat Variant = iota
	// SQ stores 8-bit scalar-quantized codes.
	SQ
	// ADC stores product-quantization codes and scans with ADC tables.
	ADC
)

// Config controls construction.
type Config struct {
	NList   int     // number of buckets; default sqrt-ish heuristic
	Variant Variant // default Flat
	// PQ settings for the ADC variant.
	PQM  int // subquantizers; default 8 (must divide dim)
	PQKs int // centroids per subquantizer; default 256
	// Residual, when true, encodes vectors relative to their bucket
	// centroid (the IVFADC formulation); ignored for Flat.
	Residual bool
	Seed     int64
	MaxIter  int
	// Metric is the distance candidates are scored under. The Flat
	// variant honors any Scorer metric; SQ and ADC codes/LUTs
	// decompose squared L2 only, so those variants reject any other
	// metric at build time instead of silently L2-ranking (the bug
	// this field fixes: Build used to hardcode vec.L2 for everything).
	Metric vec.Metric
	// RerankK is how many quantized candidates (SQ/ADC variants) get
	// exact re-scoring on the retained raw vectors before the top-k
	// cut; 0 selects the per-query default max(4k, 32).
	RerankK int
}

// IVF is the built index.
type IVF struct {
	cfg     Config
	dim     int
	n       int
	data    []float32   // raw vectors, retained for Flat scan and re-ranking
	sc      *vec.Scorer // block-scores the raw vectors (Flat variant scan)
	cents   *kmeans.Result
	lists   [][]int32 // bucket -> member ids
	sq      *quant.SQ
	sqCodes []byte          // n * dim, SQ variant
	sqk     vec.QuantScorer // decode-free LUT kernel over sqCodes
	pq      *quant.PQ
	pqCodes []byte // n * M, ADC variant
	comps   atomic.Int64
}

// Build trains the coarse quantizer and populates buckets.
func Build(data []float32, n, d int, cfg Config) (*IVF, error) {
	if d <= 0 || n <= 0 || len(data) < n*d {
		return nil, fmt.Errorf("ivf: bad data shape n=%d d=%d len=%d", n, d, len(data))
	}
	if cfg.NList <= 0 {
		cfg.NList = defaultNList(n)
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.MaxIter <= 0 {
		cfg.MaxIter = 20
	}
	if cfg.Variant != Flat && cfg.Metric != vec.L2 {
		return nil, fmt.Errorf("ivf: %s requires l2 (codes and ADC tables decompose squared L2 only), got metric %v",
			variantName(cfg.Variant), cfg.Metric)
	}
	cents, err := kmeans.Train(data, n, d, kmeans.Config{K: cfg.NList, Seed: cfg.Seed, MaxIter: cfg.MaxIter})
	if err != nil {
		return nil, fmt.Errorf("ivf: coarse quantizer: %w", err)
	}
	sc, err := vec.NewScorer(cfg.Metric, data, n, d)
	if err != nil {
		return nil, fmt.Errorf("ivf: %w", err)
	}
	iv := &IVF{cfg: cfg, dim: d, n: n, data: data, sc: sc, cents: cents, lists: make([][]int32, cents.K)}
	for id, c := range cents.Assign {
		iv.lists[c] = append(iv.lists[c], int32(id))
	}
	switch cfg.Variant {
	case Flat:
	case SQ:
		sq, err := quant.TrainSQ(data, n, d)
		if err != nil {
			return nil, err
		}
		iv.sq = sq
		iv.sqCodes = make([]byte, n*d)
		for id := 0; id < n; id++ {
			if _, err := sq.Encode(data[id*d:(id+1)*d], iv.sqCodes[id*d:(id+1)*d]); err != nil {
				return nil, err
			}
		}
		if iv.sqk, err = vec.NewSQ8Scorer(vec.L2, sq.Min, sq.Step, iv.sqCodes, n, d); err != nil {
			return nil, err
		}
	case ADC:
		if cfg.PQM <= 0 {
			cfg.PQM = 8
		}
		if cfg.PQKs <= 0 {
			cfg.PQKs = 256
		}
		iv.cfg = cfg
		train := data
		if cfg.Residual {
			train = make([]float32, n*d)
			for id := 0; id < n; id++ {
				cent := cents.Centroid(cents.Assign[id])
				row := data[id*d : (id+1)*d]
				out := train[id*d : (id+1)*d]
				for j := range out {
					out[j] = row[j] - cent[j]
				}
			}
		}
		pq, err := quant.TrainPQ(train, n, d, quant.PQConfig{M: cfg.PQM, Ks: cfg.PQKs, Seed: cfg.Seed, MaxIter: cfg.MaxIter})
		if err != nil {
			return nil, err
		}
		iv.pq = pq
		iv.pqCodes = make([]byte, n*pq.M)
		for id := 0; id < n; id++ {
			pq.Encode(train[id*d:(id+1)*d], iv.pqCodes[id*pq.M:(id+1)*pq.M])
		}
	default:
		return nil, fmt.Errorf("ivf: unknown variant %d", cfg.Variant)
	}
	return iv, nil
}

func defaultNList(n int) int {
	nl := 1
	for nl*nl < n {
		nl++
	}
	if nl < 4 {
		nl = 4
	}
	return nl
}

// Name implements index.Index.
func (iv *IVF) Name() string { return variantName(iv.cfg.Variant) }

func variantName(v Variant) string {
	switch v {
	case SQ:
		return "ivfsq"
	case ADC:
		return "ivfadc"
	default:
		return "ivfflat"
	}
}

// QuantizedScan implements index.Quantized: the SQ and ADC variants
// scan codes and re-rank.
func (iv *IVF) QuantizedScan() bool { return iv.cfg.Variant != Flat }

// Size implements index.Index.
func (iv *IVF) Size() int { return iv.n }

// NList returns the number of buckets.
func (iv *IVF) NList() int { return iv.cents.K }

// ListMembers exposes bucket membership for index-guided sharding
// (Section 2.3(2)) and offline-blocking experiments.
func (iv *IVF) ListMembers(list int) []int32 { return iv.lists[list] }

// DistanceComps implements index.Stats.
func (iv *IVF) DistanceComps() int64 { return iv.comps.Load() }

// ResetStats implements index.Stats.
func (iv *IVF) ResetStats() { iv.comps.Store(0) }

// ScannedFraction returns the fraction of the collection scanned for
// a given nprobe, the cost proxy E3 reports.
func (iv *IVF) ScannedFraction(q []float32, nprobe int) float64 {
	if nprobe <= 0 {
		nprobe = 1
	}
	total := 0
	for _, l := range iv.cents.NearestN(q, nprobe) {
		total += len(iv.lists[l])
	}
	return float64(total) / float64(iv.n)
}

// Search implements index.Index. p.NProbe selects how many buckets to
// scan (default 1).
//
// The selected inverted lists are partitioned into p.Parallelism
// contiguous groups scanned concurrently, each into its own collector,
// merged at the end. Per-list work (including the per-list residual
// ADC table) is computed identically in every schedule, so results are
// byte-identical at every worker count.
func (iv *IVF) Search(q []float32, k int, p index.Params) ([]topk.Result, error) {
	if k <= 0 {
		return nil, index.ErrBadK
	}
	if len(q) != iv.dim {
		return nil, fmt.Errorf("%w: query %d, index %d", index.ErrDim, len(q), iv.dim)
	}
	nprobe := p.NProbe
	if nprobe <= 0 {
		nprobe = 1
	}
	var sharedADC *quant.ADCTable
	if iv.cfg.Variant == ADC && !iv.cfg.Residual {
		// One query-relative table serves every list; workers only read it.
		sharedADC = iv.pq.ADC(q)
	}
	// Quantized variants widen the candidate cut to rerank_k and
	// re-score it exactly on the retained raw vectors after the merge.
	kk := k
	if iv.cfg.Variant != Flat {
		kk = (index.QuantSpec{RerankK: iv.cfg.RerankK}).ResolveRerankK(p, k, iv.n)
	}
	lists := iv.cents.NearestN(q, nprobe)
	w := pool.Default().Effective(p.Parallelism, len(lists))
	var merged *topk.Collector
	var comps int64
	if w <= 1 {
		merged = topk.NewCollector(kk)
		comps = iv.scanLists(q, merged, lists, &p, sharedADC)
	} else {
		obs.ParallelSearches.With(iv.Name()).Inc()
		offs := pool.Split(len(lists), w)
		collectors := make([]*topk.Collector, w)
		compsBy := make([]int64, w)
		pool.Default().Run(w, func(i int) {
			c := topk.NewCollector(kk)
			compsBy[i] = iv.scanLists(q, c, lists[offs[i]:offs[i+1]], &p, sharedADC)
			collectors[i] = c
		})
		merged = collectors[0]
		comps = compsBy[0]
		for i := 1; i < w; i++ {
			merged.Merge(collectors[i])
			comps += compsBy[i]
		}
	}
	res := merged.Results()
	if iv.cfg.Variant != Flat {
		comps += int64(len(res))
		res = index.RerankExact(iv.sc, q, res, k)
	}
	iv.comps.Add(comps)
	if p.Stats != nil {
		p.Stats.DistanceComps += comps
		p.Stats.BucketsProbed += int64(len(lists))
		if w < 1 {
			w = 1
		}
		p.Stats.Partitions += int64(w)
	}
	return res, nil
}

// listScanBlock is the gather-buffer size for Flat-variant list
// scanning: admitted member ids accumulate until a block is full, then
// one kernel call scores them all. A package variable so tests can
// sweep it.
var listScanBlock = 256

// scanLists scores every admitted member of the given inverted lists
// into c and returns the distance computations performed. sharedADC is
// the query-relative table for the non-residual ADC variant (nil
// otherwise); the residual variant builds a per-list table locally so
// concurrent workers never share mutable state.
func (iv *IVF) scanLists(q []float32, c *topk.Collector, lists []int, p *index.Params, sharedADC *quant.ADCTable) int64 {
	switch iv.cfg.Variant {
	case Flat:
		return iv.scanListsBlocked(iv.sc.Bind(q), c, lists, p)
	case SQ:
		// The decode-free LUT kernel shares the gather-block shape of
		// the Flat scan: build the d×256 table once per worker, then
		// every admitted member costs d byte-indexed lookups.
		return iv.scanListsBlocked(iv.sqk.Bind(q), c, lists, p)
	}
	comps := int64(0)
	adc := sharedADC
	var resid []float32
	if iv.cfg.Residual {
		resid = make([]float32, iv.dim)
	}
	for _, list := range lists {
		if iv.cfg.Residual {
			cent := iv.cents.Centroid(list)
			for j := range resid {
				resid[j] = q[j] - cent[j]
			}
			adc = iv.pq.ADC(resid)
		}
		for _, id := range iv.lists[list] {
			if !p.Admits(int64(id)) {
				continue
			}
			d := adc.Distance(iv.pqCodes[int(id)*iv.pq.M : (int(id)+1)*iv.pq.M])
			comps++
			c.Push(int64(id), d)
		}
	}
	return comps
}

// blockScorer is the shared slice of the Bind contract (float Bound
// and vec.QuantBound both satisfy it), so the gather-block list scan
// below serves the Flat and SQ variants with the same code.
type blockScorer interface {
	ScoreIDs(ids []int32, out []float32)
}

// scanListsBlocked gathers admitted member ids across the lists and
// scores them in blocks through b. Only admitted rows are scored (and
// counted), exactly like the per-row path.
func (iv *IVF) scanListsBlocked(b blockScorer, c *topk.Collector, lists []int, p *index.Params) int64 {
	ids := make([]int32, 0, listScanBlock)
	dist := make([]float32, listScanBlock)
	comps := int64(0)
	flush := func() {
		b.ScoreIDs(ids, dist)
		for o, id := range ids {
			c.Push(int64(id), dist[o])
		}
		comps += int64(len(ids))
		ids = ids[:0]
	}
	for _, list := range lists {
		for _, id := range iv.lists[list] {
			if !p.Admits(int64(id)) {
				continue
			}
			ids = append(ids, id)
			if len(ids) == listScanBlock {
				flush()
			}
		}
	}
	flush()
	return comps
}

func init() {
	index.Register("ivfflat", buildFunc(Flat))
	index.Register("ivfsq", buildFunc(SQ))
	index.Register("ivfadc", buildFunc(ADC))
	index.MarkRerankCapable("ivfsq")
	index.MarkRerankCapable("ivfadc")
}

func buildFunc(v Variant) index.BuildFunc {
	return func(data []float32, n, d int, metric vec.Metric, opts map[string]int) (index.Index, error) {
		cfg := Config{Variant: v, Metric: metric}
		for k, val := range opts {
			switch k {
			case "nlist":
				cfg.NList = val
			case "m":
				cfg.PQM = val
			case "ks":
				cfg.PQKs = val
			case "residual":
				cfg.Residual = val != 0
			case "seed":
				cfg.Seed = int64(val)
			case "rerank_k":
				cfg.RerankK = val
			default:
				return nil, fmt.Errorf("ivf: unknown option %q", k)
			}
		}
		return Build(data, n, d, cfg)
	}
}
