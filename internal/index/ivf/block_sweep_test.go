package ivf

import (
	"math"
	"testing"

	"vdbms/internal/dataset"
	"vdbms/internal/index"
	"vdbms/internal/topk"
)

func setListScanBlock(t *testing.T, bs int) {
	t.Helper()
	old := listScanBlock
	listScanBlock = bs
	t.Cleanup(func() { listScanBlock = old })
}

func identicalResults(t *testing.T, label string, want, got []topk.Result) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: length %d vs reference %d", label, len(got), len(want))
	}
	for i := range want {
		if want[i].ID != got[i].ID ||
			math.Float32bits(want[i].Dist) != math.Float32bits(got[i].Dist) {
			t.Fatalf("%s: result %d = %+v, reference %+v", label, i, got[i], want[i])
		}
	}
}

// TestIVFFlatBlockSweep: the Flat-variant list scan gathers admitted
// ids into blocks; results must be byte-identical at every gather-block
// size and worker count, with and without a predicate. Probing all
// lists makes the scan exhaustive, so the reference is the brute-force
// flat index — same L2 kernels, so the match is exact.
func TestIVFFlatBlockSweep(t *testing.T) {
	ds := dataset.Clustered(3000, 16, 8, 0.2, 3)
	iv, err := Build(ds.Data, ds.Count, ds.Dim, Config{NList: 16, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	exact, err := index.NewFlat(ds.Data, ds.Count, ds.Dim, nil)
	if err != nil {
		t.Fatal(err)
	}
	pred := func(id int64) bool { return id%3 != 0 }
	for _, q := range ds.Queries(4, 0.05, 7) {
		want, err := exact.Search(q, 10, index.Params{Parallelism: 1})
		if err != nil {
			t.Fatal(err)
		}
		wantPred, err := exact.Search(q, 10, index.Params{Parallelism: 1, Filter: pred})
		if err != nil {
			t.Fatal(err)
		}
		for _, bs := range []int{1, 7, 64, 1024} {
			setListScanBlock(t, bs)
			for _, w := range []int{1, 4} {
				p := index.Params{NProbe: iv.NList(), Parallelism: w}
				got, err := iv.Search(q, 10, p)
				if err != nil {
					t.Fatal(err)
				}
				identicalResults(t, "ivf-flat", want, got)
				p.Filter = pred
				got, err = iv.Search(q, 10, p)
				if err != nil {
					t.Fatal(err)
				}
				identicalResults(t, "ivf-flat/pred", wantPred, got)
			}
		}
	}
}
