package ivf

import (
	"math"
	"runtime"
	"testing"

	"vdbms/internal/dataset"
	"vdbms/internal/index"
	"vdbms/internal/topk"
)

func sameResults(t *testing.T, label string, want, got []topk.Result) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: length %d vs serial %d", label, len(got), len(want))
	}
	for i := range want {
		if want[i].ID != got[i].ID ||
			math.Float32bits(want[i].Dist) != math.Float32bits(got[i].Dist) {
			t.Fatalf("%s: result %d = %+v, serial %+v", label, i, got[i], want[i])
		}
	}
}

// TestIVFParallelDeterminism: scanning the selected inverted lists
// concurrently must return byte-identical results to the serial scan
// at every worker count, for all three storage variants (the residual
// ADC variant exercises the per-worker ADC table path).
func TestIVFParallelDeterminism(t *testing.T) {
	ds := dataset.Clustered(3000, 16, 8, 0.3, 5)
	variants := []struct {
		name string
		cfg  Config
	}{
		{"flat", Config{NList: 24}},
		{"sq", Config{NList: 24, Variant: SQ}},
		{"adc", Config{NList: 24, Variant: ADC, PQM: 4}},
		{"adc-residual", Config{NList: 24, Variant: ADC, PQM: 4, Residual: true}},
	}
	qs := ds.Queries(5, 0.1, 9)
	counts := []int{1, 2, runtime.NumCPU(), runtime.NumCPU() + 3}
	for _, v := range variants {
		iv, err := Build(ds.Data, ds.Count, ds.Dim, v.cfg)
		if err != nil {
			t.Fatalf("%s: %v", v.name, err)
		}
		for _, q := range qs {
			serial, err := iv.Search(q, 10, index.Params{NProbe: 8, Parallelism: 1})
			if err != nil {
				t.Fatal(err)
			}
			for _, w := range counts {
				got, err := iv.Search(q, 10, index.Params{NProbe: 8, Parallelism: w})
				if err != nil {
					t.Fatal(err)
				}
				sameResults(t, v.name, serial, got)
			}
		}
	}
}

// TestIVFParallelStats: work counters must not depend on the worker
// count.
func TestIVFParallelStats(t *testing.T) {
	ds := dataset.Clustered(2000, 8, 6, 0.3, 6)
	iv, err := Build(ds.Data, ds.Count, ds.Dim, Config{NList: 16})
	if err != nil {
		t.Fatal(err)
	}
	q := ds.Row(0)
	var serial, par index.SearchStats
	if _, err := iv.Search(q, 5, index.Params{NProbe: 6, Parallelism: 1, Stats: &serial}); err != nil {
		t.Fatal(err)
	}
	if _, err := iv.Search(q, 5, index.Params{NProbe: 6, Parallelism: 3, Stats: &par}); err != nil {
		t.Fatal(err)
	}
	if par.DistanceComps != serial.DistanceComps || par.BucketsProbed != serial.BucketsProbed {
		t.Fatalf("parallel stats %+v != serial %+v", par, serial)
	}
	if serial.Partitions != 1 || par.Partitions != 3 {
		t.Fatalf("partitions serial=%d par=%d, want 1 and 3", serial.Partitions, par.Partitions)
	}
}
