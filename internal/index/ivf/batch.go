package ivf

import (
	"fmt"

	"vdbms/internal/index"
	"vdbms/internal/topk"
	"vdbms/internal/vec"
)

// SearchBatch answers a batch of queries together, exploiting the
// commonality the paper highlights for batched workloads (Section
// 2.1(3), [50, 79]): instead of probing buckets query-by-query, the
// batch is inverted into bucket -> interested-queries lists so each
// bucket's vectors stream through the cache once while every query
// that probes the bucket consumes them. Results are identical to
// issuing the queries one at a time with the same nprobe.
//
// Only the Flat variant is supported (the quantized variants need a
// per-query ADC table anyway, which removes the shared work).
func (iv *IVF) SearchBatch(qs [][]float32, k int, p index.Params) ([][]topk.Result, error) {
	if iv.cfg.Variant != Flat {
		return nil, fmt.Errorf("ivf: SearchBatch supports the Flat variant only")
	}
	if k <= 0 {
		return nil, index.ErrBadK
	}
	for i, q := range qs {
		if len(q) != iv.dim {
			return nil, fmt.Errorf("%w: query %d has dim %d, index %d", index.ErrDim, i, len(q), iv.dim)
		}
	}
	nprobe := p.NProbe
	if nprobe <= 0 {
		nprobe = 1
	}
	// Invert: bucket -> queries probing it.
	interested := make([][]int32, iv.cents.K)
	for qi, q := range qs {
		for _, list := range iv.cents.NearestN(q, nprobe) {
			interested[list] = append(interested[list], int32(qi))
		}
	}
	collectors := make([]*topk.Collector, len(qs))
	for i := range collectors {
		collectors[i] = topk.NewCollector(k)
	}
	comps := int64(0)
	// Scan buckets in order; each member vector is read once per
	// bucket and scored against every interested query.
	for list, queries := range interested {
		if len(queries) == 0 {
			continue
		}
		for _, id := range iv.lists[list] {
			if !p.Admits(int64(id)) {
				continue
			}
			row := iv.data[int(id)*iv.dim : (int(id)+1)*iv.dim]
			for _, qi := range queries {
				d := vec.SquaredL2(qs[qi], row)
				comps++
				collectors[qi].Push(int64(id), d)
			}
		}
	}
	iv.comps.Add(comps)
	out := make([][]topk.Result, len(qs))
	for i, c := range collectors {
		out[i] = c.Results()
	}
	return out, nil
}

// BucketOverlap reports how many (bucket, query) probe pairs the batch
// shares: pairs / distinct buckets probed. Higher overlap means more
// shared scanning for SearchBatch to exploit.
func (iv *IVF) BucketOverlap(qs [][]float32, nprobe int) float64 {
	if nprobe <= 0 {
		nprobe = 1
	}
	counts := map[int]int{}
	pairs := 0
	for _, q := range qs {
		for _, list := range iv.cents.NearestN(q, nprobe) {
			counts[list]++
			pairs++
		}
	}
	if len(counts) == 0 {
		return 0
	}
	return float64(pairs) / float64(len(counts))
}
