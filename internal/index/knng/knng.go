// Package knng implements k-nearest-neighbor graphs (Section 2.2(1)):
// exact O(N^2) construction for small collections, and the NN-Descent
// iterative refinement of KGraph (Dong et al.) that starts from a
// random graph and repeatedly examines neighbors-of-neighbors. An
// EFANNA-style mode seeds NN-Descent from a randomized KD-tree forest
// instead of a random graph, cutting the iterations needed.
package knng

import (
	"fmt"
	"math/rand"
	"sort"
	"sync/atomic"

	"vdbms/internal/index"
	"vdbms/internal/index/graph"
	"vdbms/internal/index/kdtree"
	"vdbms/internal/topk"
	"vdbms/internal/vec"
)

// Init selects how the graph is initialized.
type Init int

const (
	// RandomInit starts NN-Descent from a random K-regular graph.
	RandomInit Init = iota
	// TreeInit seeds neighbor lists from a randomized KD forest
	// (EFANNA).
	TreeInit
	// Exact builds the true KNNG by brute force (O(N^2)); no descent.
	Exact
)

// Config controls construction.
type Config struct {
	K        int // neighbors per node; default 10
	Init     Init
	MaxIter  int     // NN-Descent rounds; default 10
	SampleR  int     // reverse-neighbor sample size per node; default K
	Delta    float64 // early-stop threshold on update rate; default 0.001
	Seed     int64
	NumEntry int // random entry points for Search; default 8
	// Metric is the distance the graph is built and searched under.
	Metric vec.Metric
}

// Graph is the built index.
type Graph struct {
	cfg   Config
	dim   int
	n     int
	s     *graph.Searcher
	adj   graph.Adjacency
	comps atomic.Int64
	// Iters is how many NN-Descent rounds ran (0 for Exact).
	Iters int
}

type nbr struct {
	id   int32
	dist float32
	nw   bool // "new" flag of NN-Descent incremental search
}

// Build constructs the graph.
func Build(data []float32, n, d int, cfg Config) (*Graph, error) {
	if d <= 0 || n <= 0 || len(data) < n*d {
		return nil, fmt.Errorf("knng: bad data shape n=%d d=%d len=%d", n, d, len(data))
	}
	if cfg.K <= 0 {
		cfg.K = 10
	}
	if cfg.K >= n {
		cfg.K = n - 1
	}
	if cfg.MaxIter <= 0 {
		cfg.MaxIter = 10
	}
	if cfg.SampleR <= 0 {
		cfg.SampleR = cfg.K
	}
	if cfg.Delta <= 0 {
		cfg.Delta = 0.001
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.NumEntry <= 0 {
		cfg.NumEntry = 8
	}
	sc, err := vec.NewScorer(cfg.Metric, data, n, d)
	if err != nil {
		return nil, fmt.Errorf("knng: %w", err)
	}
	g := &Graph{cfg: cfg, dim: d, n: n,
		s: &graph.Searcher{Data: data, Dim: d, Fn: vec.Distance(cfg.Metric), Scorer: sc}}
	switch cfg.Init {
	case Exact:
		g.buildExact()
	default:
		g.buildDescent()
	}
	return g, nil
}

func (g *Graph) buildExact() {
	g.adj = make(graph.Adjacency, g.n)
	for i := 0; i < g.n; i++ {
		c := topk.NewCollector(g.cfg.K)
		for j := 0; j < g.n; j++ {
			if j == i {
				continue
			}
			c.Push(int64(j), g.s.DistRows(int32(i), int32(j)))
		}
		res := c.Results()
		nbrs := make([]int32, len(res))
		for x, r := range res {
			nbrs[x] = int32(r.ID)
		}
		g.adj[i] = nbrs
	}
}

func (g *Graph) buildDescent() {
	n, k := g.n, g.cfg.K
	rng := rand.New(rand.NewSource(g.cfg.Seed))
	lists := make([][]nbr, n)
	insert := func(v int32, cand int32, d float32) bool {
		l := lists[v]
		// Reject duplicates and worse-than-worst when full.
		for _, e := range l {
			if e.id == cand {
				return false
			}
		}
		if len(l) < k {
			lists[v] = append(l, nbr{cand, d, true})
			sortNbrs(lists[v])
			return true
		}
		if d >= l[k-1].dist {
			return false
		}
		l[k-1] = nbr{cand, d, true}
		sortNbrs(l)
		return true
	}

	// Initialization.
	switch g.cfg.Init {
	case TreeInit:
		forest, err := kdtree.Build(g.s.Data, n, g.dim, kdtree.Config{
			Mode: kdtree.RandomDim, Trees: 4, LeafSize: 16, Seed: g.cfg.Seed,
		})
		if err == nil {
			for v := 0; v < n; v++ {
				res, _ := forest.Search(g.s.Row(int32(v)), k+1, index.Params{Ef: 4 * k})
				for _, r := range res {
					if int32(r.ID) != int32(v) {
						insert(int32(v), int32(r.ID), r.Dist)
					}
				}
			}
		}
		fallthrough // fill any shortfall randomly
	default:
		for v := 0; v < n; v++ {
			for len(lists[v]) < k {
				cand := int32(rng.Intn(n))
				if cand == int32(v) {
					continue
				}
				insert(int32(v), cand, g.s.DistRows(int32(v), cand))
			}
		}
	}

	// NN-Descent rounds.
	for iter := 0; iter < g.cfg.MaxIter; iter++ {
		g.Iters = iter + 1
		// Collect forward "new" samples and reverse samples.
		fwd := make([][]int32, n)
		rev := make([][]int32, n)
		for v := 0; v < n; v++ {
			for li := range lists[v] {
				e := &lists[v][li]
				if e.nw {
					fwd[v] = append(fwd[v], e.id)
					e.nw = false
				}
				if len(rev[e.id]) < g.cfg.SampleR {
					rev[e.id] = append(rev[e.id], int32(v))
				}
			}
		}
		updates := 0
		join := func(a, b int32) {
			if a == b {
				return
			}
			d := g.s.DistRows(a, b)
			if insert(a, b, d) {
				updates++
			}
			if insert(b, a, d) {
				updates++
			}
		}
		for v := 0; v < n; v++ {
			local := append(append([]int32{}, fwd[v]...), rev[v]...)
			for i := 0; i < len(local); i++ {
				for j := i + 1; j < len(local); j++ {
					join(local[i], local[j])
				}
			}
		}
		if float64(updates) < g.cfg.Delta*float64(n*k) {
			break
		}
	}
	g.adj = make(graph.Adjacency, n)
	for v := 0; v < n; v++ {
		nbrs := make([]int32, len(lists[v]))
		for i, e := range lists[v] {
			nbrs[i] = e.id
		}
		g.adj[v] = nbrs
	}
}

func sortNbrs(l []nbr) {
	sort.Slice(l, func(i, j int) bool { return l[i].dist < l[j].dist })
}

// Accuracy measures the fraction of true k-NN edges present in the
// graph against an exact reference graph; KGraph's quality metric.
func (g *Graph) Accuracy(exact *Graph) float64 {
	hits, total := 0, 0
	for v := 0; v < g.n; v++ {
		truth := map[int32]struct{}{}
		for _, id := range exact.adj[v] {
			truth[id] = struct{}{}
		}
		for _, id := range g.adj[v] {
			if _, ok := truth[id]; ok {
				hits++
			}
		}
		total += len(exact.adj[v])
	}
	if total == 0 {
		return 1
	}
	return float64(hits) / float64(total)
}

// Adjacency exposes the neighbor lists (NSG builds on an approximate
// KNNG).
func (g *Graph) Adjacency() graph.Adjacency { return g.adj }

// Name implements index.Index.
func (g *Graph) Name() string { return "knng" }

// Size implements index.Index.
func (g *Graph) Size() int { return g.n }

// DistanceComps implements index.Stats.
func (g *Graph) DistanceComps() int64 { return g.comps.Load() + g.s.Comps.Load() }

// ResetStats implements index.Stats.
func (g *Graph) ResetStats() { g.comps.Store(0); g.s.Comps.Store(0) }

// Search implements index.Index via beam search from NumEntry random
// (but deterministic) entry points; a KNNG has no navigating node, so
// multiple entries compensate for its weak long-range connectivity.
func (g *Graph) Search(q []float32, k int, p index.Params) ([]topk.Result, error) {
	if k <= 0 {
		return nil, index.ErrBadK
	}
	if len(q) != g.dim {
		return nil, fmt.Errorf("%w: query %d, index %d", index.ErrDim, len(q), g.dim)
	}
	ef := p.Ef
	if ef <= 0 {
		ef = 4 * k
		if ef < 32 {
			ef = 32
		}
	}
	entries := make([]int32, 0, g.cfg.NumEntry)
	stride := g.n / g.cfg.NumEntry
	if stride == 0 {
		stride = 1
	}
	for e := 0; e < g.n && len(entries) < g.cfg.NumEntry; e += stride {
		entries = append(entries, int32(e))
	}
	return graph.BeamSearch(g.s, g.adj, q, entries, k, ef, p), nil
}

func init() {
	index.Register("knng", func(data []float32, n, d int, metric vec.Metric, opts map[string]int) (index.Index, error) {
		cfg := Config{Metric: metric}
		for k, v := range opts {
			switch k {
			case "k":
				cfg.K = v
			case "iters":
				cfg.MaxIter = v
			case "seed":
				cfg.Seed = int64(v)
			case "exact":
				if v != 0 {
					cfg.Init = Exact
				}
			case "treeinit":
				if v != 0 {
					cfg.Init = TreeInit
				}
			default:
				return nil, fmt.Errorf("knng: unknown option %q", k)
			}
		}
		return Build(data, n, d, cfg)
	})
}
