package knng

import (
	"testing"

	"vdbms/internal/dataset"
	"vdbms/internal/index"
	"vdbms/internal/vec"
)

func TestExactGraphIsTrueKNN(t *testing.T) {
	ds := dataset.Clustered(200, 8, 4, 0.5, 1)
	g, err := Build(ds.Data, ds.Count, ds.Dim, Config{K: 5, Init: Exact})
	if err != nil {
		t.Fatal(err)
	}
	// Spot-check node 0 against brute force.
	truth := dataset.GroundTruth(vec.SquaredL2, ds, [][]float32{ds.Row(0)}, 6)[0]
	want := map[int64]bool{}
	for _, r := range truth {
		if r.ID != 0 {
			want[r.ID] = true
		}
	}
	for _, nb := range g.Adjacency()[0] {
		if !want[int64(nb)] {
			t.Fatalf("exact KNNG edge 0->%d not in true 5-NN %v", nb, truth)
		}
	}
	if g.Accuracy(g) != 1 {
		t.Fatal("self accuracy must be 1")
	}
}

func TestNNDescentConverges(t *testing.T) {
	ds := dataset.Clustered(600, 16, 6, 0.4, 3)
	exact, err := Build(ds.Data, ds.Count, ds.Dim, Config{K: 8, Init: Exact})
	if err != nil {
		t.Fatal(err)
	}
	approx, err := Build(ds.Data, ds.Count, ds.Dim, Config{K: 8, Init: RandomInit, MaxIter: 12, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if acc := approx.Accuracy(exact); acc < 0.85 {
		t.Fatalf("NN-Descent accuracy = %v, want >= 0.85", acc)
	}
	if approx.Iters == 0 {
		t.Fatal("descent did not run")
	}
}

func TestTreeInitAccuracy(t *testing.T) {
	ds := dataset.Clustered(600, 16, 6, 0.4, 7)
	exact, err := Build(ds.Data, ds.Count, ds.Dim, Config{K: 8, Init: Exact})
	if err != nil {
		t.Fatal(err)
	}
	tree, err := Build(ds.Data, ds.Count, ds.Dim, Config{K: 8, Init: TreeInit, MaxIter: 12, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if acc := tree.Accuracy(exact); acc < 0.85 {
		t.Fatalf("tree-init accuracy = %v", acc)
	}
}

func TestSearchRecall(t *testing.T) {
	ds := dataset.Clustered(1500, 16, 8, 0.4, 9)
	// A KNNG over clustered data splits into per-cluster components;
	// scatter enough entry points that every component is probed.
	g, err := Build(ds.Data, ds.Count, ds.Dim, Config{K: 10, MaxIter: 10, Seed: 1, NumEntry: 64})
	if err != nil {
		t.Fatal(err)
	}
	qs := ds.Queries(15, 0.05, 2)
	truth := dataset.GroundTruth(vec.SquaredL2, ds, qs, 10)
	var s float64
	for i, q := range qs {
		// A raw KNNG is weakly navigable (the motivation for MSNs),
		// so give it a generous beam.
		got, err := g.Search(q, 10, index.Params{Ef: 300})
		if err != nil {
			t.Fatal(err)
		}
		s += dataset.Recall(got, truth[i])
	}
	if mean := s / 15; mean < 0.7 {
		t.Fatalf("knng search recall = %v", mean)
	}
}

func TestValidationAndKClamp(t *testing.T) {
	if _, err := Build([]float32{1}, 2, 2, Config{}); err == nil {
		t.Fatal("want shape error")
	}
	ds := dataset.Uniform(5, 2, 1)
	g, err := Build(ds.Data, 5, 2, Config{K: 10, Init: Exact})
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Adjacency()[0]) != 4 {
		t.Fatalf("K should clamp to n-1: %d", len(g.Adjacency()[0]))
	}
	if _, err := g.Search(ds.Row(0), 0, index.Params{}); err != index.ErrBadK {
		t.Fatal("want ErrBadK")
	}
	if _, err := g.Search([]float32{1}, 1, index.Params{}); err == nil {
		t.Fatal("want dim error")
	}
	g.ResetStats()
	g.Search(ds.Row(0), 2, index.Params{})
	if g.DistanceComps() == 0 || g.Size() != 5 || g.Name() != "knng" {
		t.Fatal("metadata wrong")
	}
}

func TestRegistry(t *testing.T) {
	ds := dataset.Uniform(80, 4, 11)
	idx, err := index.Build("knng", ds.Data, 80, 4, vec.L2, map[string]int{"k": 5, "iters": 5, "treeinit": 1})
	if err != nil {
		t.Fatal(err)
	}
	if idx.Name() != "knng" {
		t.Fatal("name wrong")
	}
	if _, err := index.Build("knng", ds.Data, 80, 4, vec.L2, map[string]int{"zz": 1}); err == nil {
		t.Fatal("want unknown-option error")
	}
}
