package index

import (
	"errors"
	"testing"

	"vdbms/internal/bitset"
	"vdbms/internal/dataset"
	"vdbms/internal/vec"
)

func TestFlatExactness(t *testing.T) {
	ds := dataset.Clustered(300, 8, 4, 0.5, 1)
	f, err := NewFlat(ds.Data, ds.Count, ds.Dim, nil)
	if err != nil {
		t.Fatal(err)
	}
	qs := ds.Queries(5, 0.1, 2)
	truth := dataset.GroundTruth(vec.SquaredL2, ds, qs, 10)
	for i, q := range qs {
		got, err := f.Search(q, 10, Params{})
		if err != nil {
			t.Fatal(err)
		}
		if r := dataset.Recall(got, truth[i]); r != 1 {
			t.Fatalf("flat recall = %v, want exact", r)
		}
	}
}

func TestFlatValidation(t *testing.T) {
	ds := dataset.Uniform(10, 4, 3)
	f, _ := NewFlat(ds.Data, 10, 4, nil)
	if _, err := f.Search(ds.Row(0), 0, Params{}); !errors.Is(err, ErrBadK) {
		t.Fatalf("k=0 error = %v", err)
	}
	if _, err := f.Search([]float32{1}, 1, Params{}); !errors.Is(err, ErrDim) {
		t.Fatalf("dim error = %v", err)
	}
	if _, err := NewFlat([]float32{1}, 2, 4, nil); err == nil {
		t.Fatal("want shape error")
	}
}

func TestFlatAllowBitset(t *testing.T) {
	ds := dataset.Uniform(50, 4, 5)
	f, _ := NewFlat(ds.Data, 50, 4, nil)
	allow := bitset.New(50)
	allow.Set(7)
	allow.Set(9)
	got, err := f.Search(ds.Row(0), 10, Params{Allow: allow})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("allowlist of 2 returned %d results", len(got))
	}
	for _, r := range got {
		if r.ID != 7 && r.ID != 9 {
			t.Fatalf("blocked id %d returned", r.ID)
		}
	}
}

func TestFlatVisitFilter(t *testing.T) {
	ds := dataset.Uniform(50, 4, 7)
	f, _ := NewFlat(ds.Data, 50, 4, nil)
	got, err := f.Search(ds.Row(0), 5, Params{Filter: func(id int64) bool { return id%2 == 0 }})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range got {
		if r.ID%2 != 0 {
			t.Fatalf("filter violated: id %d", r.ID)
		}
	}
}

func TestFlatStats(t *testing.T) {
	ds := dataset.Uniform(20, 4, 9)
	f, _ := NewFlat(ds.Data, 20, 4, nil)
	f.Search(ds.Row(0), 3, Params{})
	if f.DistanceComps() != 20 {
		t.Fatalf("comps = %d, want 20", f.DistanceComps())
	}
	f.ResetStats()
	if f.DistanceComps() != 0 {
		t.Fatal("ResetStats failed")
	}
}

func TestFlatSearchRange(t *testing.T) {
	data := []float32{0, 1, 2, 10}
	f, _ := NewFlat(data, 4, 1, nil)
	got, err := f.SearchRange([]float32{0}, 4.5, Params{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 { // 0,1,2 within sqrt? squared L2 <= 4.5 means |x| <= ~2.1
		t.Fatalf("range hits = %v", got)
	}
	if _, err := f.SearchRange([]float32{0, 0}, 1, Params{}); !errors.Is(err, ErrDim) {
		t.Fatal("want dim error")
	}
}

func TestRegistry(t *testing.T) {
	names := Names()
	found := false
	for _, n := range names {
		if n == "flat" {
			found = true
		}
	}
	if !found {
		t.Fatalf("flat not registered: %v", names)
	}
	ds := dataset.Uniform(10, 2, 1)
	idx, err := Build("flat", ds.Data, 10, 2, vec.L2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if idx.Name() != "flat" || idx.Size() != 10 {
		t.Fatal("registry build wrong")
	}
	if _, err := Build("nope", ds.Data, 10, 2, vec.L2, nil); err == nil {
		t.Fatal("want unknown-index error")
	}
	if _, err := Build("flat", ds.Data, 10, 2, vec.L2, map[string]int{"x": 1}); err == nil {
		t.Fatal("want options error")
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	Register("flat", nil)
}

func TestParamsAdmits(t *testing.T) {
	var p Params
	if !p.Admits(5) || p.Constrained() {
		t.Fatal("unconstrained params must admit everything")
	}
	b := bitset.New(10)
	b.Set(3)
	p = Params{Allow: b, Filter: func(id int64) bool { return id > 2 }}
	if !p.Constrained() {
		t.Fatal("Constrained wrong")
	}
	if !p.Admits(3) {
		t.Fatal("3 passes both")
	}
	if p.Admits(4) { // filter passes but bitset blocks
		t.Fatal("4 must be blocked")
	}
}
