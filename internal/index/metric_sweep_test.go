// Metric-correctness sweep: every registered index family is built
// under every practical metric and either (a) returns rankings
// consistent with a brute-force scan under that same metric, or (b)
// refuses to build. Option (c) — building happily and ranking under
// L2 regardless — is the bug this file exists to keep dead: the ivf
// segment builder shipped that way, and any family whose registry
// drops the metric parameter would regress the same way.
package index_test

import (
	"fmt"
	"math"
	"testing"

	"vdbms/internal/dataset"
	"vdbms/internal/index"
	"vdbms/internal/topk"
	"vdbms/internal/vec"

	_ "vdbms/internal/index/hnsw"
	_ "vdbms/internal/index/ivf"
	_ "vdbms/internal/index/kdtree"
	_ "vdbms/internal/index/knng"
	_ "vdbms/internal/index/lsh"
	_ "vdbms/internal/index/nsg"
	_ "vdbms/internal/index/nsw"
	_ "vdbms/internal/index/rptree"
	_ "vdbms/internal/index/spectral"
)

// sweepCase describes one family's contract with the sweep.
type sweepCase struct {
	opts map[string]int
	// supports lists the metrics the family must honor; every other
	// swept metric must fail at build time.
	supports []vec.Metric
	// params returns search knobs generous enough that the family's
	// approximation error vanishes (or nearly so) on a small dataset.
	params func(n, k int) index.Params
	// recallFloor is the minimum top-k recall against brute force
	// under exhaustive params; 1.0 unless the family is inherently
	// probabilistic even at full budget.
	recallFloor float64
}

func exhaustiveGraph(n, k int) index.Params  { return index.Params{Ef: n} }
func exhaustiveBucket(n, k int) index.Params { return index.Params{NProbe: 64, RerankK: n} }

func sweepCases() map[string]sweepCase {
	anyMetric := []vec.Metric{vec.L2, vec.InnerProduct, vec.Cosine}
	l2Only := []vec.Metric{vec.L2}
	graph := func(opts map[string]int, floor float64) sweepCase {
		return sweepCase{opts: opts, supports: anyMetric, params: exhaustiveGraph, recallFloor: floor}
	}
	tree := func(opts map[string]int) sweepCase {
		return sweepCase{opts: opts, supports: l2Only, params: exhaustiveGraph, recallFloor: 1.0}
	}
	return map[string]sweepCase{
		"flat": {opts: nil, supports: anyMetric, params: exhaustiveGraph, recallFloor: 1.0},
		// Graph families: ef = n visits the whole connected component,
		// and construction connects orphans, so recall is exact. KNNG
		// has no navigating entry point, so it keeps a small slack.
		"hnsw":   graph(map[string]int{"m": 8}, 1.0),
		"nsw":    graph(map[string]int{"m": 8}, 1.0),
		"nsg":    graph(map[string]int{"r": 8, "l": 16}, 1.0),
		"vamana": graph(map[string]int{"r": 8, "l": 16}, 1.0),
		"fanng":  graph(map[string]int{"r": 8, "trials": 8}, 1.0),
		"knng":   graph(map[string]int{"k": 12, "iters": 10}, 0.9),
		// IVF-Flat scans whole lists under the configured metric —
		// nprobe >= nlist is a partitioned exact scan. The compressed
		// variants are L2-only and recover exactness through the
		// full-precision re-rank once rerank_k covers the collection.
		"ivfflat": {opts: map[string]int{"nlist": 4}, supports: anyMetric, params: exhaustiveBucket, recallFloor: 1.0},
		"ivfsq":   {opts: map[string]int{"nlist": 4}, supports: l2Only, params: exhaustiveBucket, recallFloor: 1.0},
		"ivfadc":  {opts: map[string]int{"nlist": 4, "m": 2, "ks": 16}, supports: l2Only, params: exhaustiveBucket, recallFloor: 1.0},
		// Tree families bound subtrees by squared L2; with a leaf
		// budget of n the best-first descent is exact.
		"kdtree":   tree(nil),
		"kdforest": tree(map[string]int{"trees": 2}),
		"pkdtree":  tree(nil),
		"pcatree":  tree(nil),
		"rptree":   tree(map[string]int{"trees": 2}),
		"annoy":    tree(map[string]int{"trees": 2}),
		// Spectral hashing with 2 bits: radius-2 multi-probe reaches
		// every bucket, so the candidate set is the whole collection.
		"spectral": {opts: map[string]int{"bits": 2, "pcadims": 4}, supports: l2Only, params: exhaustiveGraph, recallFloor: 1.0},
		// LSH buckets lose candidates even at full width; the sweep
		// pins metric-correct distances and a loose floor.
		"lsh": {opts: map[string]int{"l": 8, "k": 2}, supports: []vec.Metric{vec.L2, vec.Cosine},
			params: exhaustiveGraph, recallFloor: 0.3},
	}
}

// bruteTopK is the reference ranking: score every row with the
// canonical metric function and keep k by (dist, id).
func bruteTopK(m vec.Metric, ds *dataset.Dataset, q []float32, k int) []topk.Result {
	fn := vec.Distance(m)
	c := topk.NewCollector(k)
	for i := 0; i < ds.Count; i++ {
		c.Push(int64(i), fn(q, ds.Row(i)))
	}
	return c.Results()
}

func recallOf(got, truth []topk.Result) float64 {
	want := map[int64]struct{}{}
	for _, r := range truth {
		want[r.ID] = struct{}{}
	}
	hit := 0
	for _, r := range got {
		if _, ok := want[r.ID]; ok {
			hit++
		}
	}
	return float64(hit) / float64(len(truth))
}

// TestMetricSweepAllFamilies is the family x metric matrix.
func TestMetricSweepAllFamilies(t *testing.T) {
	const (
		n, dim = 200, 8
		k, nq  = 10, 5
	)
	ds := dataset.Clustered(n, dim, 4, 0.4, 7)
	qs := ds.Queries(nq, 0.05, 11)
	cases := sweepCases()
	for _, name := range index.Names() {
		if name == "testhold" {
			continue // registered by another package's test binary
		}
		tc, ok := cases[name]
		if !ok {
			t.Errorf("family %q is registered but missing from the metric sweep — add it", name)
			continue
		}
		for _, m := range []vec.Metric{vec.L2, vec.InnerProduct, vec.Cosine} {
			t.Run(fmt.Sprintf("%s/%s", name, m), func(t *testing.T) {
				supported := false
				for _, s := range tc.supports {
					if s == m {
						supported = true
					}
				}
				idx, err := index.Build(name, ds.Data, n, dim, m, tc.opts)
				if !supported {
					if err == nil {
						t.Fatalf("%s built under %s; must refuse rather than rank under the wrong metric", name, m)
					}
					return
				}
				if err != nil {
					t.Fatal(err)
				}
				fn := vec.Distance(m)
				for qi, q := range qs {
					got, err := idx.Search(q, k, tc.params(n, k))
					if err != nil {
						t.Fatal(err)
					}
					truth := bruteTopK(m, ds, q, k)
					// Every reported distance must be the configured
					// metric's value for that row — an index that ranked
					// under L2 fails here on ip/cosine immediately.
					for _, r := range got {
						want := fn(q, ds.Row(int(r.ID)))
						if math.Abs(float64(r.Dist-want)) > 1e-4 {
							t.Fatalf("query %d id %d: dist %v, %s(q,row) = %v", qi, r.ID, r.Dist, m, want)
						}
					}
					if rec := recallOf(got, truth); rec < tc.recallFloor {
						t.Fatalf("query %d: recall %.2f < %.2f under %s", qi, rec, tc.recallFloor, m)
					}
				}
			})
		}
	}
}
