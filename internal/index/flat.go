package index

import (
	"fmt"
	"sync/atomic"

	"vdbms/internal/obs"
	"vdbms/internal/pool"
	"vdbms/internal/topk"
	"vdbms/internal/vec"
)

// Flat is the exact brute-force index: similarity projection over the
// whole collection followed by top-k (the Table Scan operator of
// Figure 1). It is the ground-truth baseline every ANN index is
// measured against and the fallback plan for tiny collections or very
// selective predicates.
//
// Scanning goes through a vec.Scorer in blocks of scanBlock rows:
// per-row state (cosine norms, the Mahalanobis pre-transform) is
// cached at construction and the inner loop is one block kernel call
// instead of scanBlock indirect function calls.
type Flat struct {
	dim   int
	n     int
	sc    *vec.Scorer
	comps atomic.Int64
	// qsc, when non-nil, is the compressed-scan kernel: Search scans
	// codes instead of floats, keeps the top rerank_k approximate
	// candidates, and re-scores them exactly with sc before the final
	// top-k cut. SearchRange always scans full precision (a radius
	// compare on approximate distances would drop boundary rows).
	qsc  vec.QuantScorer
	spec QuantSpec
}

// scanBlock is the rows scored per kernel call: large enough to
// amortize dispatch, small enough that the distance buffer stays in
// L1. A package variable so tests can sweep it.
var scanBlock = 256

// NewFlat wraps row-major data (not copied) with the given distance.
// Canonical vec distance functions are recognized and served by the
// metric-specialized kernels; anything else scores row-at-a-time.
func NewFlat(data []float32, n, d int, fn vec.DistanceFunc) (*Flat, error) {
	if d <= 0 || len(data) < n*d {
		return nil, fmt.Errorf("index: flat data %d shorter than n*d %d", len(data), n*d)
	}
	if fn == nil {
		fn = vec.SquaredL2
	}
	return &Flat{dim: d, n: n, sc: vec.ScorerFor(fn, data, n, d)}, nil
}

// NewFlatScorer wraps a prebuilt scorer, sharing its cached per-row
// state with the caller (the executor and LSM paths maintain one
// scorer per dataset across searches).
func NewFlatScorer(sc *vec.Scorer) (*Flat, error) {
	if sc == nil {
		return nil, fmt.Errorf("index: nil scorer")
	}
	return &Flat{dim: sc.Dim(), n: sc.Rows(), sc: sc}, nil
}

// NewFlatQuant builds a flat index scoring with the collection metric
// and, when spec selects a codec, a fused quantized scan with exact
// re-rank (trained on data at construction).
func NewFlatQuant(data []float32, n, d int, metric vec.Metric, spec QuantSpec) (*Flat, error) {
	if d <= 0 || len(data) < n*d {
		return nil, fmt.Errorf("index: flat data %d shorter than n*d %d", len(data), n*d)
	}
	sc, err := vec.NewScorer(metric, data, n, d)
	if err != nil {
		return nil, err
	}
	f := &Flat{dim: d, n: n, sc: sc, spec: spec}
	if spec.Enabled() {
		if f.qsc, err = BuildQuantKernel(spec, metric, data, n, d); err != nil {
			return nil, err
		}
	}
	return f, nil
}

// QuantizedScan implements Quantized.
func (f *Flat) QuantizedScan() bool { return f.qsc != nil }

func init() {
	Register("flat", func(data []float32, n, d int, metric vec.Metric, opts map[string]int) (Index, error) {
		var spec QuantSpec
		for key, v := range opts {
			ok, err := spec.ParseOpt(key, v)
			if err != nil {
				return nil, err
			}
			if !ok {
				return nil, fmt.Errorf("index: flat does not take option %q", key)
			}
		}
		return NewFlatQuant(data, n, d, metric, spec)
	})
	MarkQuantCapable("flat")
}

// RerankExact re-scores approximate candidates with a full-precision
// scorer and returns the exact top k in (dist, id) collector order —
// the second stage of every compressed scan.
func RerankExact(sc *vec.Scorer, q []float32, res []topk.Result, k int) []topk.Result {
	if len(res) == 0 {
		return res
	}
	b := sc.Bind(q)
	ids := make([]int32, len(res))
	for i, r := range res {
		ids[i] = int32(r.ID)
	}
	dist := make([]float32, len(res))
	b.ScoreIDs(ids, dist)
	c := topk.NewCollector(k)
	for i, r := range res {
		c.Push(r.ID, dist[i])
	}
	return c.Results()
}

// Name implements Index.
func (f *Flat) Name() string { return "flat" }

// Size implements Index.
func (f *Flat) Size() int { return f.n }

// DistanceComps implements Stats.
func (f *Flat) DistanceComps() int64 { return f.comps.Load() }

// ResetStats implements Stats.
func (f *Flat) ResetStats() { f.comps.Store(0) }

// minRowsPerPartition keeps tiny scans serial: below this many rows
// per worker the goroutine hand-off costs more than the scan itself.
const minRowsPerPartition = 1024

// workers picks the partition count for an n-row scan, backing off
// defaulted parallelism when partitions would be tiny.
func (f *Flat) workers(requested int) int {
	w := pool.Default().Effective(requested, f.n)
	if requested <= 0 && w > 1 {
		// Defaulted parallelism backs off when partitions would be tiny;
		// an explicit knob is honored as given.
		if byWork := (f.n + minRowsPerPartition - 1) / minRowsPerPartition; byWork < w {
			w = byWork
		}
	}
	return w
}

// Search implements Index by exhaustive scan. With a predicate it
// degenerates to the "single-stage brute-force scan" plan the paper
// attributes to Qdrant/Vespa rule-based selection.
//
// The scan is partitioned into p.Parallelism contiguous row ranges,
// each feeding its own collector, merged at the end. Because both the
// per-range collectors and the merge resolve ties by (dist, id), and
// the block kernels preserve the scalar accumulation order, the result
// is byte-identical at every worker count and block size.
func (f *Flat) Search(q []float32, k int, p Params) ([]topk.Result, error) {
	if k <= 0 {
		return nil, ErrBadK
	}
	if len(q) != f.dim {
		return nil, fmt.Errorf("%w: query %d, index %d", ErrDim, len(q), f.dim)
	}
	// A quantized scan collects rerank_k approximate candidates and
	// re-scores them exactly after the merge; a full-precision scan
	// collects k finals directly.
	kk := k
	if f.qsc != nil {
		kk = f.spec.ResolveRerankK(p, k, f.n)
	}
	w := f.workers(p.Parallelism)
	var merged *topk.Collector
	var comps int64
	if w <= 1 {
		merged = topk.NewCollector(kk)
		comps = f.scanRange(q, merged, 0, f.n, &p)
	} else {
		obs.ParallelSearches.With("flat").Inc()
		offs := pool.Split(f.n, w)
		collectors := make([]*topk.Collector, w)
		compsBy := make([]int64, w)
		pool.Default().Run(w, func(i int) {
			c := topk.NewCollector(kk)
			compsBy[i] = f.scanRange(q, c, offs[i], offs[i+1], &p)
			collectors[i] = c
		})
		merged = collectors[0]
		comps = compsBy[0]
		for i := 1; i < w; i++ {
			merged.Merge(collectors[i])
			comps += compsBy[i]
		}
	}
	res := merged.Results()
	if f.qsc != nil {
		comps += int64(len(res))
		res = RerankExact(f.sc, q, res, k)
	}
	f.comps.Add(comps)
	if p.Stats != nil {
		p.Stats.DistanceComps += comps
		if w < 1 {
			w = 1
		}
		p.Stats.Partitions += int64(w)
	}
	return res, nil
}

// scanRange scores rows [lo, hi) into c and returns the distance
// computations performed. It reads only shared immutable state, so
// disjoint ranges run concurrently. Unconstrained scans score whole
// contiguous blocks; predicated scans gather admitted ids and flush
// them through the same kernels, so only admitted rows are scored (and
// counted) — identical accounting to the per-row path.
func (f *Flat) scanRange(q []float32, c *topk.Collector, lo, hi int, p *Params) int64 {
	// blockScorer is the slice of the Bind contract both the float and
	// the quantized kernels share; picking the binding here is what
	// lets every call site below switch by configuration, not code.
	type blockScorer interface {
		ScoreBlock(lo, hi int, out []float32)
		ScoreIDs(ids []int32, out []float32)
	}
	var b blockScorer
	if f.qsc != nil {
		b = f.qsc.Bind(q)
	} else {
		b = f.sc.Bind(q)
	}
	dist := make([]float32, scanBlock)
	comps := int64(0)
	if !p.Constrained() {
		for blo := lo; blo < hi; blo += scanBlock {
			bhi := blo + scanBlock
			if bhi > hi {
				bhi = hi
			}
			b.ScoreBlock(blo, bhi, dist)
			for i := blo; i < bhi; i++ {
				c.Push(int64(i), dist[i-blo])
			}
			comps += int64(bhi - blo)
		}
		return comps
	}
	ids := make([]int32, 0, scanBlock)
	flush := func() {
		b.ScoreIDs(ids, dist)
		for o, id := range ids {
			c.Push(int64(id), dist[o])
		}
		comps += int64(len(ids))
		ids = ids[:0]
	}
	for i := lo; i < hi; i++ {
		if !p.Admits(int64(i)) {
			continue
		}
		ids = append(ids, int32(i))
		if len(ids) == scanBlock {
			flush()
		}
	}
	flush()
	return comps
}

// SearchRange returns all ids within the distance threshold, the range
// query of Section 2.1(2). Like Search it partitions the scan across
// the worker pool; per-partition hit lists are concatenated in
// partition order, so the output stays sorted by ascending id at every
// worker count.
func (f *Flat) SearchRange(q []float32, radius float32, p Params) ([]topk.Result, error) {
	if len(q) != f.dim {
		return nil, fmt.Errorf("%w: query %d, index %d", ErrDim, len(q), f.dim)
	}
	w := f.workers(p.Parallelism)
	if w <= 1 {
		out, comps := f.rangeScan(q, radius, 0, f.n, &p)
		f.comps.Add(comps)
		if p.Stats != nil {
			p.Stats.DistanceComps += comps
			p.Stats.Partitions++
		}
		return out, nil
	}
	obs.ParallelSearches.With("flat").Inc()
	offs := pool.Split(f.n, w)
	hitsBy := make([][]topk.Result, w)
	compsBy := make([]int64, w)
	pool.Default().Run(w, func(i int) {
		hitsBy[i], compsBy[i] = f.rangeScan(q, radius, offs[i], offs[i+1], &p)
	})
	var out []topk.Result
	comps := int64(0)
	for i := 0; i < w; i++ {
		out = append(out, hitsBy[i]...)
		comps += compsBy[i]
	}
	f.comps.Add(comps)
	if p.Stats != nil {
		p.Stats.DistanceComps += comps
		p.Stats.Partitions += int64(w)
	}
	return out, nil
}

// rangeScan is the per-partition body of SearchRange: block-score
// [lo, hi) and keep rows within the radius, in ascending id order.
func (f *Flat) rangeScan(q []float32, radius float32, lo, hi int, p *Params) ([]topk.Result, int64) {
	b := f.sc.Bind(q)
	dist := make([]float32, scanBlock)
	var out []topk.Result
	comps := int64(0)
	if !p.Constrained() {
		for blo := lo; blo < hi; blo += scanBlock {
			bhi := blo + scanBlock
			if bhi > hi {
				bhi = hi
			}
			b.ScoreBlock(blo, bhi, dist)
			for i := blo; i < bhi; i++ {
				if d := dist[i-blo]; d <= radius {
					out = append(out, topk.Result{ID: int64(i), Dist: d})
				}
			}
			comps += int64(bhi - blo)
		}
		return out, comps
	}
	ids := make([]int32, 0, scanBlock)
	flush := func() {
		b.ScoreIDs(ids, dist)
		for o, id := range ids {
			if d := dist[o]; d <= radius {
				out = append(out, topk.Result{ID: int64(id), Dist: d})
			}
		}
		comps += int64(len(ids))
		ids = ids[:0]
	}
	for i := lo; i < hi; i++ {
		if !p.Admits(int64(i)) {
			continue
		}
		ids = append(ids, int32(i))
		if len(ids) == scanBlock {
			flush()
		}
	}
	flush()
	return out, comps
}
