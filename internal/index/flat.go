package index

import (
	"fmt"
	"sync/atomic"

	"vdbms/internal/obs"
	"vdbms/internal/pool"
	"vdbms/internal/topk"
	"vdbms/internal/vec"
)

// Flat is the exact brute-force index: similarity projection over the
// whole collection followed by top-k (the Table Scan operator of
// Figure 1). It is the ground-truth baseline every ANN index is
// measured against and the fallback plan for tiny collections or very
// selective predicates.
type Flat struct {
	dim   int
	data  []float32 // row-major, not owned
	n     int
	fn    vec.DistanceFunc
	comps atomic.Int64
}

// NewFlat wraps row-major data (not copied) with the given distance.
func NewFlat(data []float32, n, d int, fn vec.DistanceFunc) (*Flat, error) {
	if d <= 0 || len(data) < n*d {
		return nil, fmt.Errorf("index: flat data %d shorter than n*d %d", len(data), n*d)
	}
	if fn == nil {
		fn = vec.SquaredL2
	}
	return &Flat{dim: d, data: data, n: n, fn: fn}, nil
}

func init() {
	Register("flat", func(data []float32, n, d int, opts map[string]int) (Index, error) {
		if len(opts) != 0 {
			return nil, fmt.Errorf("index: flat takes no options, got %v", opts)
		}
		return NewFlat(data, n, d, nil)
	})
}

// Name implements Index.
func (f *Flat) Name() string { return "flat" }

// Size implements Index.
func (f *Flat) Size() int { return f.n }

// DistanceComps implements Stats.
func (f *Flat) DistanceComps() int64 { return f.comps.Load() }

// ResetStats implements Stats.
func (f *Flat) ResetStats() { f.comps.Store(0) }

// minRowsPerPartition keeps tiny scans serial: below this many rows
// per worker the goroutine hand-off costs more than the scan itself.
const minRowsPerPartition = 1024

// Search implements Index by exhaustive scan. With a predicate it
// degenerates to the "single-stage brute-force scan" plan the paper
// attributes to Qdrant/Vespa rule-based selection.
//
// The scan is partitioned into p.Parallelism contiguous row ranges,
// each feeding its own collector, merged at the end. Because both the
// per-range collectors and the merge resolve ties by (dist, id), the
// result is byte-identical at every worker count.
func (f *Flat) Search(q []float32, k int, p Params) ([]topk.Result, error) {
	if k <= 0 {
		return nil, ErrBadK
	}
	if len(q) != f.dim {
		return nil, fmt.Errorf("%w: query %d, index %d", ErrDim, len(q), f.dim)
	}
	w := pool.Default().Effective(p.Parallelism, f.n)
	if p.Parallelism <= 0 && w > 1 {
		// Defaulted parallelism backs off when partitions would be tiny;
		// an explicit knob is honored as given.
		if byWork := (f.n + minRowsPerPartition - 1) / minRowsPerPartition; byWork < w {
			w = byWork
		}
	}
	if w <= 1 {
		c := topk.NewCollector(k)
		comps := f.scanRange(q, c, 0, f.n, &p)
		f.comps.Add(comps)
		if p.Stats != nil {
			p.Stats.DistanceComps += comps
			p.Stats.Partitions++
		}
		return c.Results(), nil
	}
	obs.ParallelSearches.With("flat").Inc()
	offs := pool.Split(f.n, w)
	collectors := make([]*topk.Collector, w)
	compsBy := make([]int64, w)
	pool.Default().Run(w, func(i int) {
		c := topk.NewCollector(k)
		compsBy[i] = f.scanRange(q, c, offs[i], offs[i+1], &p)
		collectors[i] = c
	})
	merged := collectors[0]
	comps := compsBy[0]
	for i := 1; i < w; i++ {
		merged.Merge(collectors[i])
		comps += compsBy[i]
	}
	f.comps.Add(comps)
	if p.Stats != nil {
		p.Stats.DistanceComps += comps
		p.Stats.Partitions += int64(w)
	}
	return merged.Results(), nil
}

// scanRange scores rows [lo, hi) into c and returns the distance
// computations performed. It reads only shared immutable state, so
// disjoint ranges run concurrently.
func (f *Flat) scanRange(q []float32, c *topk.Collector, lo, hi int, p *Params) int64 {
	comps := int64(0)
	for i := lo; i < hi; i++ {
		if !p.Admits(int64(i)) {
			continue
		}
		d := f.fn(q, f.data[i*f.dim:(i+1)*f.dim])
		comps++
		c.Push(int64(i), d)
	}
	return comps
}

// SearchRange returns all ids within the distance threshold, the range
// query of Section 2.1(2).
func (f *Flat) SearchRange(q []float32, radius float32, p Params) ([]topk.Result, error) {
	if len(q) != f.dim {
		return nil, fmt.Errorf("%w: query %d, index %d", ErrDim, len(q), f.dim)
	}
	var out []topk.Result
	comps := int64(0)
	for i := 0; i < f.n; i++ {
		if !p.Admits(int64(i)) {
			continue
		}
		d := f.fn(q, f.data[i*f.dim:(i+1)*f.dim])
		comps++
		if d <= radius {
			out = append(out, topk.Result{ID: int64(i), Dist: d})
		}
	}
	f.comps.Add(comps)
	if p.Stats != nil {
		p.Stats.DistanceComps += comps
	}
	return out, nil
}
