package index

import (
	"fmt"
	"sync/atomic"

	"vdbms/internal/topk"
	"vdbms/internal/vec"
)

// Flat is the exact brute-force index: similarity projection over the
// whole collection followed by top-k (the Table Scan operator of
// Figure 1). It is the ground-truth baseline every ANN index is
// measured against and the fallback plan for tiny collections or very
// selective predicates.
type Flat struct {
	dim   int
	data  []float32 // row-major, not owned
	n     int
	fn    vec.DistanceFunc
	comps atomic.Int64
}

// NewFlat wraps row-major data (not copied) with the given distance.
func NewFlat(data []float32, n, d int, fn vec.DistanceFunc) (*Flat, error) {
	if d <= 0 || len(data) < n*d {
		return nil, fmt.Errorf("index: flat data %d shorter than n*d %d", len(data), n*d)
	}
	if fn == nil {
		fn = vec.SquaredL2
	}
	return &Flat{dim: d, data: data, n: n, fn: fn}, nil
}

func init() {
	Register("flat", func(data []float32, n, d int, opts map[string]int) (Index, error) {
		if len(opts) != 0 {
			return nil, fmt.Errorf("index: flat takes no options, got %v", opts)
		}
		return NewFlat(data, n, d, nil)
	})
}

// Name implements Index.
func (f *Flat) Name() string { return "flat" }

// Size implements Index.
func (f *Flat) Size() int { return f.n }

// DistanceComps implements Stats.
func (f *Flat) DistanceComps() int64 { return f.comps.Load() }

// ResetStats implements Stats.
func (f *Flat) ResetStats() { f.comps.Store(0) }

// Search implements Index by exhaustive scan. With a predicate it
// degenerates to the "single-stage brute-force scan" plan the paper
// attributes to Qdrant/Vespa rule-based selection.
func (f *Flat) Search(q []float32, k int, p Params) ([]topk.Result, error) {
	if k <= 0 {
		return nil, ErrBadK
	}
	if len(q) != f.dim {
		return nil, fmt.Errorf("%w: query %d, index %d", ErrDim, len(q), f.dim)
	}
	c := topk.NewCollector(k)
	comps := int64(0)
	for i := 0; i < f.n; i++ {
		if !p.Admits(int64(i)) {
			continue
		}
		d := f.fn(q, f.data[i*f.dim:(i+1)*f.dim])
		comps++
		c.Push(int64(i), d)
	}
	f.comps.Add(comps)
	if p.Stats != nil {
		p.Stats.DistanceComps += comps
	}
	return c.Results(), nil
}

// SearchRange returns all ids within the distance threshold, the range
// query of Section 2.1(2).
func (f *Flat) SearchRange(q []float32, radius float32, p Params) ([]topk.Result, error) {
	if len(q) != f.dim {
		return nil, fmt.Errorf("%w: query %d, index %d", ErrDim, len(q), f.dim)
	}
	var out []topk.Result
	comps := int64(0)
	for i := 0; i < f.n; i++ {
		if !p.Admits(int64(i)) {
			continue
		}
		d := f.fn(q, f.data[i*f.dim:(i+1)*f.dim])
		comps++
		if d <= radius {
			out = append(out, topk.Result{ID: int64(i), Dist: d})
		}
	}
	f.comps.Add(comps)
	if p.Stats != nil {
		p.Stats.DistanceComps += comps
	}
	return out, nil
}
