package index

import (
	"math"
	"runtime"
	"testing"

	"vdbms/internal/dataset"
	"vdbms/internal/topk"
)

// workerCounts is the sweep the acceptance criteria name: serial, two
// partitions, and one per CPU (plus an overcommit point so partition
// count > pool width is covered even on small machines).
func workerCounts() []int {
	return []int{1, 2, runtime.NumCPU(), runtime.NumCPU() + 3}
}

func sameResults(t *testing.T, label string, want, got []topk.Result) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: length %d vs serial %d", label, len(got), len(want))
	}
	for i := range want {
		if want[i].ID != got[i].ID ||
			math.Float32bits(want[i].Dist) != math.Float32bits(got[i].Dist) {
			t.Fatalf("%s: result %d = %+v, serial %+v", label, i, got[i], want[i])
		}
	}
}

// TestFlatParallelDeterminism: the partitioned flat scan must return
// byte-identical results to the serial scan at every worker count,
// with and without predicates.
func TestFlatParallelDeterminism(t *testing.T) {
	// Clustered data with a small sigma produces duplicate-ish rows and
	// distance ties — the boundary regime that exposes merge bugs.
	ds := dataset.Clustered(6000, 16, 5, 0.05, 3)
	f, err := NewFlat(ds.Data, ds.Count, ds.Dim, nil)
	if err != nil {
		t.Fatal(err)
	}
	qs := ds.Queries(8, 0.05, 7)
	pred := func(id int64) bool { return id%3 != 0 }
	for _, q := range qs {
		serial, err := f.Search(q, 10, Params{Parallelism: 1})
		if err != nil {
			t.Fatal(err)
		}
		serialPred, err := f.Search(q, 10, Params{Parallelism: 1, Filter: pred})
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range workerCounts() {
			got, err := f.Search(q, 10, Params{Parallelism: w})
			if err != nil {
				t.Fatal(err)
			}
			sameResults(t, "flat", serial, got)
			got, err = f.Search(q, 10, Params{Parallelism: w, Filter: pred})
			if err != nil {
				t.Fatal(err)
			}
			sameResults(t, "flat+filter", serialPred, got)
		}
	}
}

// TestFlatParallelStats: the partitioned scan must report the same
// distance-computation total as the serial scan, plus its partition
// count.
func TestFlatParallelStats(t *testing.T) {
	ds := dataset.Uniform(4096, 8, 11)
	f, _ := NewFlat(ds.Data, ds.Count, ds.Dim, nil)
	q := ds.Row(0)
	var serial SearchStats
	if _, err := f.Search(q, 5, Params{Parallelism: 1, Stats: &serial}); err != nil {
		t.Fatal(err)
	}
	if serial.Partitions != 1 {
		t.Fatalf("serial partitions = %d, want 1", serial.Partitions)
	}
	var par SearchStats
	if _, err := f.Search(q, 5, Params{Parallelism: 4, Stats: &par}); err != nil {
		t.Fatal(err)
	}
	if par.DistanceComps != serial.DistanceComps {
		t.Fatalf("parallel comps %d != serial %d", par.DistanceComps, serial.DistanceComps)
	}
	if par.Partitions != 4 {
		t.Fatalf("parallel partitions = %d, want 4", par.Partitions)
	}
}

// BenchmarkFlatSearch compares the serial and parallel exhaustive scan
// at the acceptance scale (100k x 128-d). On a machine with
// GOMAXPROCS >= 4 the parallel variant is expected to be >= 2x faster.
func BenchmarkFlatSearch(b *testing.B) {
	ds := dataset.Uniform(100_000, 128, 1)
	f, err := NewFlat(ds.Data, ds.Count, ds.Dim, nil)
	if err != nil {
		b.Fatal(err)
	}
	q := ds.Queries(1, 0.1, 2)[0]
	b.Run("serial", func(b *testing.B) {
		b.SetBytes(int64(ds.Count) * int64(ds.Dim) * 4)
		for i := 0; i < b.N; i++ {
			if _, err := f.Search(q, 10, Params{Parallelism: 1}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("parallel", func(b *testing.B) {
		b.SetBytes(int64(ds.Count) * int64(ds.Dim) * 4)
		for i := 0; i < b.N; i++ {
			if _, err := f.Search(q, 10, Params{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}
