// Package kdtree implements the tree-based indexes of Section 2.2:
// the deterministic k-d tree with median splits, the principal
// component tree (split along top PCA axes), the PKD-tree that rotates
// through principal axes by depth, and FLANN-style randomized trees
// that pick a random dimension among the highest-variance ones. A
// forest of randomized trees searched with a shared best-first queue
// is the standard recall remedy the paper describes.
package kdtree

import (
	"fmt"
	"math/rand"
	"sort"
	"sync/atomic"

	"vdbms/internal/index"
	"vdbms/internal/matrix"
	"vdbms/internal/topk"
	"vdbms/internal/vec"
)

// Mode selects the split rule.
type Mode int

const (
	// Median splits on the widest-spread dimension at the median
	// (the classic deterministic k-d tree).
	Median Mode = iota
	// PCA splits along the top principal axis of each node's points.
	PCA
	// PKD rotates through the dataset's global principal axes by
	// depth (Silpa-Anan & Hartley).
	PKD
	// RandomDim picks a random dimension among the top-5 variance
	// dimensions of the node (FLANN's randomized k-d forest).
	RandomDim
)

// Config controls construction.
type Config struct {
	Mode     Mode
	Trees    int // forest size; default 1 (Median/PCA/PKD), 8 (RandomDim)
	LeafSize int // max points per leaf; default 16
	Seed     int64
	// PCAAxes bounds how many global principal axes PKD rotates
	// through; default 8.
	PCAAxes int
}

type node struct {
	axis        int       // split dimension (Median/RandomDim)
	proj        []float32 // split direction (PCA/PKD); nil for axis split
	thresh      float32
	left, right *node
	ids         []int32 // leaf payload
}

// Tree is a forest-of-kd-trees index.
type Tree struct {
	cfg   Config
	dim   int
	n     int
	data  []float32
	roots []*node
	comps atomic.Int64
	// global principal axes for PKD mode, row-major axes x dim
	axes *matrix.Dense
}

// Build constructs the forest.
func Build(data []float32, n, d int, cfg Config) (*Tree, error) {
	if d <= 0 || n <= 0 || len(data) < n*d {
		return nil, fmt.Errorf("kdtree: bad data shape n=%d d=%d len=%d", n, d, len(data))
	}
	if cfg.LeafSize <= 0 {
		cfg.LeafSize = 16
	}
	if cfg.Trees <= 0 {
		if cfg.Mode == RandomDim {
			cfg.Trees = 8
		} else {
			cfg.Trees = 1
		}
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.PCAAxes <= 0 {
		cfg.PCAAxes = 8
	}
	t := &Tree{cfg: cfg, dim: d, n: n, data: data}
	if cfg.Mode == PKD {
		k := cfg.PCAAxes
		if k > d {
			k = d
		}
		axes, _ := matrix.PCA(data, n, d, k)
		t.axes = axes
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	ids := make([]int32, n)
	for i := range ids {
		ids[i] = int32(i)
	}
	for ti := 0; ti < cfg.Trees; ti++ {
		own := make([]int32, n)
		copy(own, ids)
		t.roots = append(t.roots, t.build(own, 0, rng))
	}
	return t, nil
}

// projValue computes the coordinate of vector id along a node's split
// direction.
func (t *Tree) value(nd *node, v []float32) float32 {
	if nd.proj == nil {
		return v[nd.axis]
	}
	return vec.Dot(v, nd.proj)
}

func (t *Tree) build(ids []int32, depth int, rng *rand.Rand) *node {
	if len(ids) <= t.cfg.LeafSize {
		return &node{ids: ids}
	}
	nd := &node{}
	switch t.cfg.Mode {
	case Median:
		nd.axis = t.widestDim(ids, 0)
	case RandomDim:
		nd.axis = t.widestDim(ids, rng.Intn(5))
	case PKD:
		row := t.axes.Row(depth % t.axes.Rows)
		p := make([]float32, t.dim)
		for j, x := range row {
			p[j] = float32(x)
		}
		nd.proj = p
	case PCA:
		nd.proj = t.nodePCA(ids)
	}
	// Split at the median projection.
	vals := make([]float32, len(ids))
	for i, id := range ids {
		vals[i] = t.value(nd, t.row(id))
	}
	sorted := append([]float32(nil), vals...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	nd.thresh = sorted[len(sorted)/2]
	var left, right []int32
	for i, id := range ids {
		if vals[i] < nd.thresh {
			left = append(left, id)
		} else {
			right = append(right, id)
		}
	}
	// Degenerate split (many duplicates): fall back to a leaf.
	if len(left) == 0 || len(right) == 0 {
		return &node{ids: ids}
	}
	nd.left = t.build(left, depth+1, rng)
	nd.right = t.build(right, depth+1, rng)
	return nd
}

func (t *Tree) row(id int32) []float32 {
	return t.data[int(id)*t.dim : (int(id)+1)*t.dim]
}

// widestDim returns the rank-th widest-variance dimension of the
// subset (rank 0 = widest).
func (t *Tree) widestDim(ids []int32, rank int) int {
	d := t.dim
	mean := make([]float64, d)
	for _, id := range ids {
		row := t.row(id)
		for j, x := range row {
			mean[j] += float64(x)
		}
	}
	for j := range mean {
		mean[j] /= float64(len(ids))
	}
	vars := make([]float64, d)
	for _, id := range ids {
		row := t.row(id)
		for j, x := range row {
			dv := float64(x) - mean[j]
			vars[j] += dv * dv
		}
	}
	if rank >= d {
		rank = d - 1
	}
	order := make([]int, d)
	for j := range order {
		order[j] = j
	}
	sort.Slice(order, func(a, b int) bool { return vars[order[a]] > vars[order[b]] })
	return order[rank]
}

// nodePCA finds the dominant principal axis of a subset via a few
// power iterations on the subset covariance (cheaper than full Jacobi
// at every node).
func (t *Tree) nodePCA(ids []int32) []float32 {
	d := t.dim
	mean := make([]float64, d)
	for _, id := range ids {
		for j, x := range t.row(id) {
			mean[j] += float64(x)
		}
	}
	for j := range mean {
		mean[j] /= float64(len(ids))
	}
	v := make([]float64, d)
	for j := range v {
		v[j] = 1 / float64(d)
	}
	tmp := make([]float64, d)
	for iter := 0; iter < 8; iter++ {
		for j := range tmp {
			tmp[j] = 0
		}
		// tmp = Cov * v computed as sum over points of (x-mu)((x-mu)·v)
		for _, id := range ids {
			row := t.row(id)
			var dot float64
			for j, x := range row {
				dot += (float64(x) - mean[j]) * v[j]
			}
			for j, x := range row {
				tmp[j] += (float64(x) - mean[j]) * dot
			}
		}
		var norm float64
		for _, x := range tmp {
			norm += x * x
		}
		if norm == 0 {
			break
		}
		inv := 1 / sqrt64(norm)
		for j := range v {
			v[j] = tmp[j] * inv
		}
	}
	out := make([]float32, d)
	for j, x := range v {
		out[j] = float32(x)
	}
	return out
}

func sqrt64(x float64) float64 {
	// Newton's method is fine here, but math.Sqrt is simpler; kept as
	// a helper to avoid importing math twice in hot files.
	if x <= 0 {
		return 0
	}
	z := x
	for i := 0; i < 20; i++ {
		z = 0.5 * (z + x/z)
	}
	return z
}

// Name implements index.Index.
func (t *Tree) Name() string {
	switch t.cfg.Mode {
	case PCA:
		return "pcatree"
	case PKD:
		return "pkdtree"
	case RandomDim:
		return "kdforest"
	default:
		return "kdtree"
	}
}

// Size implements index.Index.
func (t *Tree) Size() int { return t.n }

// DistanceComps implements index.Stats.
func (t *Tree) DistanceComps() int64 { return t.comps.Load() }

// ResetStats implements index.Stats.
func (t *Tree) ResetStats() { t.comps.Store(0) }

type frontierEntry struct {
	nd    *node
	bound float32
}

// Search implements index.Index with FLANN-style shared best-first
// traversal over all trees: a priority queue orders unexplored
// branches by their lower-bound distance, and search stops after
// examining p.Ef candidate points (default max(64, 8k)).
func (t *Tree) Search(q []float32, k int, p index.Params) ([]topk.Result, error) {
	if k <= 0 {
		return nil, index.ErrBadK
	}
	if len(q) != t.dim {
		return nil, fmt.Errorf("%w: query %d, index %d", index.ErrDim, len(q), t.dim)
	}
	budget := p.Ef
	if budget <= 0 {
		budget = 8 * k
		if budget < 64 {
			budget = 64
		}
	}
	var pq topk.MinQueue
	entries := []frontierEntry{}
	push := func(nd *node, bound float32) {
		entries = append(entries, frontierEntry{nd, bound})
		pq.Push(int64(len(entries)-1), bound)
	}
	for _, root := range t.roots {
		push(root, 0)
	}
	c := topk.NewCollector(k)
	examined := 0
	comps := int64(0)
	for pq.Len() > 0 && examined < budget {
		item := pq.Pop()
		e := entries[item.ID]
		if c.Full() && e.bound > c.Worst() {
			// Admissible bound exceeds current worst: with an exact
			// bound we could stop; bounds here are per-branch so we
			// just skip this branch.
			continue
		}
		nd := e.nd
		for nd.ids == nil {
			val := t.value(nd, q)
			margin := val - nd.thresh
			var near, far *node
			if margin < 0 {
				near, far = nd.left, nd.right
			} else {
				near, far = nd.right, nd.left
			}
			farBound := e.bound + margin*margin
			push(far, farBound)
			nd = near
		}
		for _, id := range nd.ids {
			if !p.Admits(int64(id)) {
				continue
			}
			d := vec.SquaredL2(q, t.row(id))
			comps++
			examined++
			c.Push(int64(id), d)
		}
	}
	t.comps.Add(comps)
	return c.Results(), nil
}

func init() {
	for name, mode := range map[string]Mode{
		"kdtree": Median, "pcatree": PCA, "pkdtree": PKD, "kdforest": RandomDim,
	} {
		m := mode
		index.Register(name, func(data []float32, n, d int, metric vec.Metric, opts map[string]int) (index.Index, error) {
			if metric != vec.L2 {
				// Axis/projection splits bound squared L2 only; any other
				// metric would silently rank by the wrong distance.
				return nil, fmt.Errorf("kdtree: metric %v not supported (l2 only)", metric)
			}
			cfg := Config{Mode: m}
			for k, v := range opts {
				switch k {
				case "trees":
					cfg.Trees = v
				case "leaf":
					cfg.LeafSize = v
				case "seed":
					cfg.Seed = int64(v)
				default:
					return nil, fmt.Errorf("kdtree: unknown option %q", k)
				}
			}
			return Build(data, n, d, cfg)
		})
	}
}
