package kdtree

import (
	"testing"

	"vdbms/internal/bitset"
	"vdbms/internal/dataset"
	"vdbms/internal/index"
	"vdbms/internal/vec"
)

func recallOf(t *testing.T, idx index.Index, ds *dataset.Dataset, ef, k, nq int) float64 {
	t.Helper()
	qs := ds.Queries(nq, 0.05, 2)
	truth := dataset.GroundTruth(vec.SquaredL2, ds, qs, k)
	var s float64
	for i, q := range qs {
		got, err := idx.Search(q, k, index.Params{Ef: ef})
		if err != nil {
			t.Fatal(err)
		}
		s += dataset.Recall(got, truth[i])
	}
	return s / float64(nq)
}

func TestMedianTreeLowDimExact(t *testing.T) {
	// In low dimension a deterministic k-d tree with a generous budget
	// reaches high recall.
	ds := dataset.Clustered(1000, 4, 5, 0.4, 1)
	tr, err := Build(ds.Data, ds.Count, ds.Dim, Config{Mode: Median, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r := recallOf(t, tr, ds, 400, 10, 15); r < 0.9 {
		t.Fatalf("low-dim kdtree recall = %v", r)
	}
	if tr.Name() != "kdtree" {
		t.Fatal("name wrong")
	}
}

func TestBudgetImprovesRecall(t *testing.T) {
	ds := dataset.Clustered(2000, 16, 8, 0.4, 3)
	tr, err := Build(ds.Data, ds.Count, ds.Dim, Config{Mode: RandomDim, Trees: 8, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	lo := recallOf(t, tr, ds, 50, 10, 15)
	hi := recallOf(t, tr, ds, 1000, 10, 15)
	if hi < lo {
		t.Fatalf("recall must grow with budget: %v -> %v", lo, hi)
	}
	if hi < 0.7 {
		t.Fatalf("forest recall at big budget = %v", hi)
	}
}

func TestForestBeatsSingleTreeHighDim(t *testing.T) {
	ds := dataset.LowRank(2000, 32, 4, 0.05, 7)
	single, err := Build(ds.Data, ds.Count, ds.Dim, Config{Mode: Median, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	forest, err := Build(ds.Data, ds.Count, ds.Dim, Config{Mode: RandomDim, Trees: 8, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	rs := recallOf(t, single, ds, 300, 10, 20)
	rf := recallOf(t, forest, ds, 300, 10, 20)
	if rf < rs-0.05 {
		t.Fatalf("randomized forest (%v) should not trail single tree (%v) on low-rank data", rf, rs)
	}
}

func TestPCAModes(t *testing.T) {
	ds := dataset.LowRank(1500, 16, 3, 0.05, 11)
	for _, cfg := range []Config{
		{Mode: PCA, Seed: 1},
		{Mode: PKD, Seed: 1, PCAAxes: 4},
	} {
		tr, err := Build(ds.Data, ds.Count, ds.Dim, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if r := recallOf(t, tr, ds, 500, 10, 10); r < 0.5 {
			t.Fatalf("%s recall = %v", tr.Name(), r)
		}
	}
}

func TestPredicatesRespected(t *testing.T) {
	ds := dataset.Uniform(300, 8, 13)
	tr, err := Build(ds.Data, ds.Count, ds.Dim, Config{Mode: Median, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	allow := bitset.New(300)
	for i := 0; i < 300; i += 3 {
		allow.Set(i)
	}
	got, err := tr.Search(ds.Row(0), 10, index.Params{Ef: 300, Allow: allow})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range got {
		if r.ID%3 != 0 {
			t.Fatalf("blocked id %d returned", r.ID)
		}
	}
	got, _ = tr.Search(ds.Row(0), 10, index.Params{Ef: 300, Filter: func(id int64) bool { return id > 150 }})
	for _, r := range got {
		if r.ID <= 150 {
			t.Fatalf("filtered id %d returned", r.ID)
		}
	}
}

func TestValidationAndStats(t *testing.T) {
	if _, err := Build([]float32{1}, 2, 2, Config{}); err == nil {
		t.Fatal("want shape error")
	}
	ds := dataset.Uniform(100, 4, 15)
	tr, _ := Build(ds.Data, 100, 4, Config{Seed: 1})
	if _, err := tr.Search(ds.Row(0), 0, index.Params{}); err != index.ErrBadK {
		t.Fatal("want ErrBadK")
	}
	if _, err := tr.Search([]float32{1}, 1, index.Params{}); err == nil {
		t.Fatal("want dim error")
	}
	tr.ResetStats()
	tr.Search(ds.Row(0), 5, index.Params{})
	if tr.DistanceComps() == 0 {
		t.Fatal("comps not counted")
	}
	if tr.Size() != 100 {
		t.Fatal("size wrong")
	}
}

func TestDuplicatePointsDegenerate(t *testing.T) {
	// All-identical points force degenerate splits; the tree must
	// still build (single leaf) and search.
	data := make([]float32, 100*4)
	tr, err := Build(data, 100, 4, Config{LeafSize: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	got, err := tr.Search(make([]float32, 4), 5, index.Params{})
	if err != nil || len(got) != 5 {
		t.Fatalf("degenerate search: %v %v", got, err)
	}
}

func TestRegistryNames(t *testing.T) {
	ds := dataset.Uniform(60, 4, 17)
	for _, name := range []string{"kdtree", "pcatree", "pkdtree", "kdforest"} {
		idx, err := index.Build(name, ds.Data, 60, 4, vec.L2, map[string]int{"trees": 2, "leaf": 8})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if idx.Name() != name {
			t.Fatalf("name = %s want %s", idx.Name(), name)
		}
	}
	if _, err := index.Build("kdtree", ds.Data, 60, 4, vec.L2, map[string]int{"zz": 1}); err == nil {
		t.Fatal("want unknown-option error")
	}
}
