package index

import (
	"math"
	"testing"

	"vdbms/internal/bitset"
	"vdbms/internal/dataset"
	"vdbms/internal/topk"
	"vdbms/internal/vec"
)

// TestFlatQuantExactWithFullRerank: rerank_k = n makes the compressed
// scan a candidate-generation no-op — every row survives to the exact
// re-rank, so results must be byte-identical to the full-precision
// flat scan, for every codec and metric the codec supports.
func TestFlatQuantExactWithFullRerank(t *testing.T) {
	const n, k = 400, 10
	ds := dataset.Clustered(n, 16, 4, 0.4, 21)
	cases := []struct {
		spec    QuantSpec
		metrics []vec.Metric
	}{
		{QuantSpec{Kind: QuantSQ8}, []vec.Metric{vec.L2, vec.InnerProduct, vec.Cosine}},
		{QuantSpec{Kind: QuantPQ}, []vec.Metric{vec.L2}},
		{QuantSpec{Kind: QuantOPQ}, []vec.Metric{vec.L2}},
	}
	for _, tc := range cases {
		for _, m := range tc.metrics {
			exact, err := NewFlatQuant(ds.Data, n, ds.Dim, m, QuantSpec{})
			if err != nil {
				t.Fatal(err)
			}
			qf, err := NewFlatQuant(ds.Data, n, ds.Dim, m, tc.spec)
			if err != nil {
				t.Fatalf("%v/%v: %v", tc.spec.Kind, m, err)
			}
			if !qf.QuantizedScan() {
				t.Fatalf("%v/%v: QuantizedScan() = false", tc.spec.Kind, m)
			}
			for qi, q := range ds.Queries(5, 0.05, 22) {
				want, err := exact.Search(q, k, Params{})
				if err != nil {
					t.Fatal(err)
				}
				got, err := qf.Search(q, k, Params{RerankK: n})
				if err != nil {
					t.Fatal(err)
				}
				if len(got) != len(want) {
					t.Fatalf("%v/%v query %d: %d hits, want %d", tc.spec.Kind, m, qi, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("%v/%v query %d hit %d: %+v, want %+v", tc.spec.Kind, m, qi, i, got[i], want[i])
					}
				}
			}
		}
	}
}

// TestFlatQuantDefaultRerankRecall: with the default re-rank width the
// compressed scan is approximate but must stay near-exact on a small
// collection, and every reported distance is full precision.
func TestFlatQuantDefaultRerankRecall(t *testing.T) {
	const n, k = 1000, 10
	ds := dataset.Clustered(n, 16, 8, 0.4, 23)
	qf, err := NewFlatQuant(ds.Data, n, ds.Dim, vec.L2, QuantSpec{Kind: QuantSQ8})
	if err != nil {
		t.Fatal(err)
	}
	qs := ds.Queries(10, 0.05, 24)
	truth := dataset.GroundTruth(vec.SquaredL2, ds, qs, k)
	var recall float64
	for i, q := range qs {
		got, err := qf.Search(q, k, Params{})
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range got {
			exact := vec.SquaredL2(q, ds.Row(int(r.ID)))
			if math.Abs(float64(r.Dist-exact)) > 1e-4 {
				t.Fatalf("query %d id %d: dist %v is approximate, want exact %v", i, r.ID, r.Dist, exact)
			}
		}
		recall += dataset.Recall(got, truth[i])
	}
	if recall/float64(len(qs)) < 0.95 {
		t.Fatalf("sq8 default-rerank recall = %.3f, want >= 0.95", recall/float64(len(qs)))
	}
}

// TestFlatQuantPredicated: the gathered (ScoreIDs) quantized path must
// honor block-first predicates — only admitted ids, exact distances.
func TestFlatQuantPredicated(t *testing.T) {
	const n, k = 500, 5
	ds := dataset.Clustered(n, 8, 4, 0.4, 25)
	qf, err := NewFlatQuant(ds.Data, n, ds.Dim, vec.L2, QuantSpec{Kind: QuantSQ8})
	if err != nil {
		t.Fatal(err)
	}
	allow := bitset.New(n)
	for i := 0; i < n; i += 3 {
		allow.Set(i)
	}
	q := ds.Queries(1, 0.05, 26)[0]
	got, err := qf.Search(q, k, Params{Allow: allow, RerankK: n})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != k {
		t.Fatalf("%d hits, want %d", len(got), k)
	}
	// Reference: exact scan over admitted rows only.
	c := topk.NewCollector(k)
	for i := 0; i < n; i += 3 {
		c.Push(int64(i), vec.SquaredL2(q, ds.Row(i)))
	}
	want := c.Results()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("hit %d: %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestResolveRerankK(t *testing.T) {
	s := QuantSpec{RerankK: 100}
	if got := s.ResolveRerankK(Params{}, 10, 1000); got != 100 {
		t.Fatalf("configured width: %d", got)
	}
	if got := s.ResolveRerankK(Params{RerankK: 7}, 10, 1000); got != 10 {
		t.Fatalf("per-query override clamps to k: %d", got)
	}
	if got := s.ResolveRerankK(Params{RerankK: 5000}, 10, 1000); got != 1000 {
		t.Fatalf("clamp to n: %d", got)
	}
	if got := (QuantSpec{}).ResolveRerankK(Params{}, 10, 1000); got != 40 {
		t.Fatalf("default max(4k,32): %d", got)
	}
	if got := (QuantSpec{}).ResolveRerankK(Params{}, 3, 1000); got != 32 {
		t.Fatalf("default floor 32: %d", got)
	}
}

func TestMergeQuantDefaults(t *testing.T) {
	// Schema default lands on a quant-capable family.
	got, err := MergeQuantDefaults("flat", nil, "sq8", 64)
	if err != nil {
		t.Fatal(err)
	}
	if got["quant"] != int(QuantSQ8) || got["rerank_k"] != 64 {
		t.Fatalf("merged = %v", got)
	}
	// Explicit opts win over the schema default.
	got, err = MergeQuantDefaults("flat", map[string]int{"quant": int(QuantNone), "rerank_k": 8}, "sq8", 64)
	if err != nil {
		t.Fatal(err)
	}
	if got["quant"] != int(QuantNone) || got["rerank_k"] != 8 {
		t.Fatalf("explicit opts overridden: %v", got)
	}
	// Families that cannot scan codes are left untouched, so a
	// schema-wide default cannot break CreateIndex("kdtree").
	got, err = MergeQuantDefaults("kdtree", map[string]int{"trees": 2}, "sq8", 64)
	if err != nil {
		t.Fatal(err)
	}
	if _, has := got["quant"]; has || len(got) != 1 {
		t.Fatalf("kdtree opts polluted: %v", got)
	}
	// Rerank-capable families (codes built-in) get only rerank_k.
	got, err = MergeQuantDefaults("ivfsq", map[string]int{"nlist": 4}, "sq8", 64)
	if err != nil {
		t.Fatal(err)
	}
	if _, has := got["quant"]; has || got["rerank_k"] != 64 {
		t.Fatalf("ivfsq merge = %v", got)
	}
	if _, err := MergeQuantDefaults("flat", nil, "bogus", 0); err == nil {
		t.Fatal("unknown quantization; want error")
	}
}
