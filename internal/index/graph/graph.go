// Package graph provides the shared machinery of the graph-based
// indexes of Section 2.2: adjacency storage, greedy/beam best-first
// search, and the robust-prune edge selection rule (the α-RNG rule of
// Vamana, also used as HNSW's neighbor-selection heuristic).
package graph

import (
	"sync/atomic"

	"vdbms/internal/index"
	"vdbms/internal/topk"
	"vdbms/internal/vec"
)

// Adjacency is a mutable out-neighbor list per node.
type Adjacency [][]int32

// Neighbors implements the read side of Neighborhoods.
func (a Adjacency) Neighbors(id int32) []int32 { return a[id] }

// Len implements Neighborhoods.
func (a Adjacency) Len() int { return len(a) }

// Neighborhoods is read-only access to a graph's out-edges, satisfied
// by both the mutable Adjacency (construction) and the frozen Slab
// (serving). Traversals take this interface so a built index can swap
// its per-node slices for one flat allocation without touching the
// search code.
type Neighborhoods interface {
	Neighbors(id int32) []int32
	Len() int
}

// Searcher bundles what beam search needs: the vectors and distance.
type Searcher struct {
	Data []float32
	Dim  int
	Fn   vec.DistanceFunc
	// Scorer, when set, serves all distance computations with cached
	// per-row state (inverse norms for cosine, the Mahalanobis
	// pre-transform); Fn is the fallback for callers that only have a
	// bare function. Traversals bind the query once per search, so the
	// query-side state is also resolved once instead of per edge.
	Scorer *vec.Scorer
	// Comps counts distance computations (incremented by searches and
	// build helpers; the caller owns reset). Atomic because concurrent
	// searches share one Searcher per index.
	Comps atomic.Int64
	// Quant, when set, scores traversal candidates on quantized codes
	// instead of float32 rows: Bind returns a Query backed by the
	// compressed kernel, so neighbor expansion touches BytesPerRow()
	// bytes per node instead of 4*Dim. Owners re-rank the final
	// candidates with Scorer — traversal distances are approximate.
	// Build-time helpers (DistRows, RobustPrune) keep full precision:
	// graphs are constructed before codes are attached.
	Quant vec.QuantScorer
}

// ScoringBytes reports the resident bytes the traversal scoring path
// touches per node times n — the numerator of the compression claim
// (adjacency is identical either way and excluded).
func (s *Searcher) ScoringBytes(n int) int {
	if s.Quant != nil {
		return n * s.Quant.BytesPerRow()
	}
	return n * s.Dim * 4
}

// Row returns vector id.
func (s *Searcher) Row(id int32) []float32 {
	return s.Data[int(id)*s.Dim : (int(id)+1)*s.Dim]
}

// Dist computes the distance from q to node id, counting the work.
// One-shot; traversal loops should Bind the query instead.
func (s *Searcher) Dist(q []float32, id int32) float32 {
	s.Comps.Add(1)
	if s.Scorer != nil {
		return s.Scorer.ScoreAt(q, int(id))
	}
	return s.Fn(q, s.Row(id))
}

// DistRows computes the distance between two stored rows, using cached
// state on both sides when a Scorer is present (edge pruning compares
// node pairs, so cosine norms would otherwise be recomputed per edge).
func (s *Searcher) DistRows(i, j int32) float32 {
	s.Comps.Add(1)
	if s.Scorer != nil {
		return s.Scorer.ScoreRows(int(i), int(j))
	}
	return s.Fn(s.Row(i), s.Row(j))
}

// Query is a query bound to a Searcher: per-query scoring state is
// resolved once and every Dist is one kernel call plus the Comps
// increment. It is a value; copying is cheap.
type Query struct {
	s  *Searcher
	b  vec.Bound
	qb vec.QuantBound   // set when the Searcher scans quantized codes
	fn vec.DistanceFunc // set when no Scorer: scalar fallback
	q  []float32
}

// Bind prepares per-query scoring state for q. When the Searcher
// carries a quantized kernel the bound query scores codes (building
// the per-query LUT here, once per search).
func (s *Searcher) Bind(q []float32) Query {
	if s.Quant != nil {
		return Query{s: s, qb: s.Quant.Bind(q)}
	}
	if s.Scorer != nil {
		return Query{s: s, b: s.Scorer.Bind(q)}
	}
	return Query{s: s, fn: s.Fn, q: q}
}

// Dist returns the distance from the bound query to node id.
func (bq Query) Dist(id int32) float32 {
	bq.s.Comps.Add(1)
	if bq.qb != nil {
		return bq.qb.ScoreAt(int(id))
	}
	if bq.fn != nil {
		return bq.fn(bq.q, bq.s.Row(id))
	}
	return bq.b.ScoreAt(int(id))
}

// BeamSearch runs best-first search from the entry points with beam
// width ef, returning up to k admitted results. It is the canonical
// procedure of NSW/HNSW/NSG/Vamana: maintain a candidate min-heap and
// a bounded result set; stop when the closest unexpanded candidate is
// worse than the worst kept result.
//
// Predicate handling implements visit-first scan (Section 2.3(2)):
// blocked nodes are still *traversed* (otherwise a selective filter
// disconnects the graph) but never enter the result set.
func BeamSearch(s *Searcher, adj Neighborhoods, q []float32, entries []int32, k, ef int, p index.Params) []topk.Result {
	if ef < k {
		ef = k
	}
	bq := s.Bind(q)
	visited := make(map[int32]struct{}, 4*ef)
	var frontier topk.MinQueue
	// results keeps the ef best admitted nodes; admitted tracks how
	// the beam bound evolves regardless of predicate admission so a
	// selective filter cannot stall expansion.
	results := topk.NewCollector(ef)
	beam := topk.NewCollector(ef)
	for _, e := range entries {
		if _, dup := visited[e]; dup {
			continue
		}
		visited[e] = struct{}{}
		d := bq.Dist(e)
		frontier.Push(int64(e), d)
		beam.Push(int64(e), d)
		if p.Admits(int64(e)) {
			results.Push(int64(e), d)
		}
	}
	for frontier.Len() > 0 {
		cur := frontier.Pop()
		if beam.Full() && cur.Dist > beam.Worst() {
			break
		}
		for _, nb := range adj.Neighbors(int32(cur.ID)) {
			if _, dup := visited[nb]; dup {
				continue
			}
			visited[nb] = struct{}{}
			d := bq.Dist(nb)
			if beam.Full() && d >= beam.Worst() && results.Full() && d >= results.Worst() {
				continue
			}
			frontier.Push(int64(nb), d)
			beam.Push(int64(nb), d)
			if p.Admits(int64(nb)) {
				results.Push(int64(nb), d)
			}
		}
	}
	if p.Stats != nil {
		// Every visited node cost exactly one distance computation.
		p.Stats.NodesVisited += int64(len(visited))
		p.Stats.DistanceComps += int64(len(visited))
	}
	res := results.Results()
	if len(res) > k {
		res = res[:k]
	}
	return res
}

// GreedyWalk performs pure greedy descent (beam width 1) from entry,
// returning the local minimum reached. Used by HNSW's upper layers and
// by monotonic-path probing during MSN construction.
func GreedyWalk(s *Searcher, adj Neighborhoods, q []float32, entry int32) (int32, float32) {
	bq := s.Bind(q)
	cur := entry
	curD := bq.Dist(cur)
	for {
		improved := false
		for _, nb := range adj.Neighbors(cur) {
			if d := bq.Dist(nb); d < curD {
				cur, curD = nb, d
				improved = true
			}
		}
		if !improved {
			return cur, curD
		}
	}
}

// RobustPrune selects up to degree out-neighbors for node p from the
// candidate pool using the α-RNG rule (Vamana; α=1 gives the classic
// relative-neighborhood-graph rule, α>1 keeps longer "highway" edges):
// a candidate c is kept only if no already-kept neighbor b satisfies
// α·dist(b,c) <= dist(p,c).
func RobustPrune(s *Searcher, pid int32, cands []topk.Result, degree int, alpha float32) []int32 {
	// Candidates must be in ascending distance from pid.
	kept := make([]int32, 0, degree)
	for _, c := range cands {
		if int32(c.ID) == pid {
			continue
		}
		ok := true
		for _, b := range kept {
			db := s.DistRows(b, int32(c.ID))
			if alpha*db <= c.Dist {
				ok = false
				break
			}
		}
		if ok {
			kept = append(kept, int32(c.ID))
			if len(kept) == degree {
				break
			}
		}
	}
	return kept
}

// TopKClosest selects the k nearest candidates without pruning — the
// naive neighbor-selection rule ablated against RobustPrune in E6.
func TopKClosest(cands []topk.Result, k int, skip int32) []int32 {
	out := make([]int32, 0, k)
	for _, c := range cands {
		if int32(c.ID) == skip {
			continue
		}
		out = append(out, int32(c.ID))
		if len(out) == k {
			break
		}
	}
	return out
}

// AvgDegree reports the mean out-degree, an index-size proxy for E6.
func AvgDegree(adj Neighborhoods) float64 {
	if adj == nil {
		return 0
	}
	n := adj.Len()
	if n == 0 {
		return 0
	}
	total := 0
	if s, ok := adj.(*Slab); ok {
		total = s.Edges()
	} else {
		for i := 0; i < n; i++ {
			total += len(adj.Neighbors(int32(i)))
		}
	}
	return float64(total) / float64(n)
}
