package graph

// Slab is frozen adjacency: every neighbor list packed into one flat
// []int32 with a prefix-sum offset table. A 10M-node graph stored as
// Adjacency carries 10M slice headers (240 MB of pointers the GC must
// scan every cycle, plus per-list allocator slack); the slab is two
// pointerless allocations the GC skips entirely. Offsets are uint32 —
// enough for 4B edges — with a guard in Freeze for the absurd case.
type Slab struct {
	flat []int32
	off  []uint32 // len n+1; neighbors of id are flat[off[id]:off[id+1]]
}

// Freeze packs adj into a Slab. If the edge count overflows uint32
// offsets it returns the original Adjacency unchanged (still a valid
// Neighborhoods) — correctness never depends on the packing.
func Freeze(adj Adjacency) Neighborhoods {
	total := 0
	for _, nbrs := range adj {
		total += len(nbrs)
	}
	if uint64(total) > uint64(^uint32(0)) {
		return adj
	}
	s := &Slab{
		flat: make([]int32, 0, total),
		off:  make([]uint32, len(adj)+1),
	}
	for i, nbrs := range adj {
		s.flat = append(s.flat, nbrs...)
		s.off[i+1] = uint32(len(s.flat))
	}
	return s
}

// Neighbors implements Neighborhoods.
func (s *Slab) Neighbors(id int32) []int32 {
	return s.flat[s.off[id]:s.off[id+1]]
}

// Len implements Neighborhoods.
func (s *Slab) Len() int { return len(s.off) - 1 }

// Edges returns the total edge count.
func (s *Slab) Edges() int { return len(s.flat) }

// Bytes is the resident size of the slab (memory accounting).
func (s *Slab) Bytes() int { return len(s.flat)*4 + len(s.off)*4 }

// Unfreeze materializes a mutable Adjacency copy (export paths that
// predate the slab, e.g. the DiskANN layout writer).
func (s *Slab) Unfreeze() Adjacency {
	adj := make(Adjacency, s.Len())
	for i := range adj {
		nbrs := s.Neighbors(int32(i))
		adj[i] = append([]int32(nil), nbrs...)
	}
	return adj
}

// NeighborhoodBytes estimates the resident bytes of any Neighborhoods
// implementation: exact for slabs, header+payload for slice-of-slice.
func NeighborhoodBytes(nh Neighborhoods) int {
	switch g := nh.(type) {
	case *Slab:
		return g.Bytes()
	case Adjacency:
		total := len(g) * 24 // slice headers
		for _, nbrs := range g {
			total += cap(nbrs) * 4
		}
		return total
	case nil:
		return 0
	default:
		total := 0
		for i := 0; i < nh.Len(); i++ {
			total += 24 + len(nh.Neighbors(int32(i)))*4
		}
		return total
	}
}
