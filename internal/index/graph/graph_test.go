package graph

import (
	"testing"

	"vdbms/internal/bitset"
	"vdbms/internal/index"
	"vdbms/internal/topk"
	"vdbms/internal/vec"
)

// lineGraph builds 1-D points 0..n-1 chained bidirectionally.
func lineGraph(n int) (*Searcher, Adjacency) {
	data := make([]float32, n)
	for i := range data {
		data[i] = float32(i)
	}
	adj := make(Adjacency, n)
	for i := 0; i < n; i++ {
		if i > 0 {
			adj[i] = append(adj[i], int32(i-1))
		}
		if i < n-1 {
			adj[i] = append(adj[i], int32(i+1))
		}
	}
	return &Searcher{Data: data, Dim: 1, Fn: vec.SquaredL2}, adj
}

func TestBeamSearchFindsNearest(t *testing.T) {
	s, adj := lineGraph(100)
	res := BeamSearch(s, adj, []float32{42.3}, []int32{0}, 3, 16, index.Params{})
	if len(res) != 3 || res[0].ID != 42 {
		t.Fatalf("res = %v", res)
	}
	// Next two are 43 and 41 in some order by distance.
	if res[1].ID != 42-0 && res[1].ID != 43 {
		t.Fatalf("res = %v", res)
	}
}

func TestBeamSearchTraversesBlockedNodes(t *testing.T) {
	// Block everything except the far end: visit-first search must
	// still walk through blocked territory to reach it.
	s, adj := lineGraph(50)
	allow := bitset.New(50)
	allow.Set(49)
	res := BeamSearch(s, adj, []float32{0}, []int32{0}, 1, 64, index.Params{Allow: allow})
	if len(res) != 1 || res[0].ID != 49 {
		t.Fatalf("blocked traversal failed: %v", res)
	}
}

func TestBeamSearchFilterFunc(t *testing.T) {
	s, adj := lineGraph(30)
	res := BeamSearch(s, adj, []float32{10}, []int32{0}, 5, 64, index.Params{
		Filter: func(id int64) bool { return id%2 == 0 },
	})
	for _, r := range res {
		if r.ID%2 != 0 {
			t.Fatalf("filter violated: %v", res)
		}
	}
	if len(res) != 5 {
		t.Fatalf("want 5 results, got %d", len(res))
	}
}

func TestBeamSearchDuplicateEntries(t *testing.T) {
	s, adj := lineGraph(10)
	res := BeamSearch(s, adj, []float32{5}, []int32{0, 0, 9}, 2, 8, index.Params{})
	if len(res) != 2 {
		t.Fatalf("res = %v", res)
	}
}

func TestGreedyWalkDescends(t *testing.T) {
	s, adj := lineGraph(100)
	id, d := GreedyWalk(s, adj, []float32{77.2}, 0)
	if id != 77 {
		t.Fatalf("greedy reached %d (d=%v)", id, d)
	}
}

func TestRobustPruneRNGRule(t *testing.T) {
	// Points: p at 0; candidates at 1, 1.9, -5. With alpha=1 the point
	// at 1.9 is pruned because it is closer to the kept point at 1
	// than to p (d2(1,1.9)=0.81 <= d2(p,1.9)=3.61); the point at -5
	// lies on the other side and survives (d2(1,-5)=36 > 25).
	data := []float32{0, 1, 1.9, -5}
	s := &Searcher{Data: data, Dim: 1, Fn: vec.SquaredL2}
	cands := []topk.Result{
		{ID: 1, Dist: 1},
		{ID: 2, Dist: 1.9 * 1.9},
		{ID: 3, Dist: 25},
	}
	kept := RobustPrune(s, 0, cands, 8, 1.0)
	if len(kept) != 2 || kept[0] != 1 || kept[1] != 3 {
		t.Fatalf("kept = %v", kept)
	}
	// Degree cap respected.
	kept = RobustPrune(s, 0, cands, 1, 1.0)
	if len(kept) != 1 || kept[0] != 1 {
		t.Fatalf("capped kept = %v", kept)
	}
	// Larger alpha makes the prune condition alpha*d(b,c) <= d(p,c)
	// harder to satisfy, keeping more (longer) edges: pruning id 2
	// needs alpha*0.81 <= 3.61, so alpha=5 keeps it.
	kept = RobustPrune(s, 0, cands, 8, 5)
	if len(kept) != 3 {
		t.Fatalf("alpha=5 kept = %v", kept)
	}
}

func TestRobustPruneSkipsSelf(t *testing.T) {
	data := []float32{0, 1}
	s := &Searcher{Data: data, Dim: 1, Fn: vec.SquaredL2}
	kept := RobustPrune(s, 0, []topk.Result{{ID: 0, Dist: 0}, {ID: 1, Dist: 1}}, 4, 1)
	if len(kept) != 1 || kept[0] != 1 {
		t.Fatalf("kept = %v", kept)
	}
}

func TestTopKClosest(t *testing.T) {
	cands := []topk.Result{{ID: 5, Dist: 1}, {ID: 7, Dist: 2}, {ID: 9, Dist: 3}}
	got := TopKClosest(cands, 2, 7)
	if len(got) != 2 || got[0] != 5 || got[1] != 9 {
		t.Fatalf("got = %v", got)
	}
}

func TestAvgDegree(t *testing.T) {
	_, adj := lineGraph(3) // degrees 1,2,1
	if d := AvgDegree(adj); d != 4.0/3.0 {
		t.Fatalf("AvgDegree = %v", d)
	}
	if AvgDegree(nil) != 0 {
		t.Fatal("empty graph degree should be 0")
	}
}
