package diskann

import (
	"path/filepath"
	"testing"

	"vdbms/internal/dataset"
	"vdbms/internal/index"
	"vdbms/internal/vec"
)

func buildSmall(t *testing.T, cfg Config) (*DiskANN, *dataset.Dataset) {
	t.Helper()
	ds := dataset.Clustered(1200, 16, 6, 0.4, 1)
	path := filepath.Join(t.TempDir(), "g.diskann")
	da, err := Build(ds.Data, ds.Count, ds.Dim, path, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { da.Close() })
	return da, ds
}

func TestDiskANNRecall(t *testing.T) {
	da, ds := buildSmall(t, Config{R: 16, Beam: 4, Seed: 1})
	qs := ds.Queries(15, 0.05, 2)
	truth := dataset.GroundTruth(vec.SquaredL2, ds, qs, 10)
	var s float64
	for i, q := range qs {
		got, err := da.Search(q, 10, index.Params{Ef: 60})
		if err != nil {
			t.Fatal(err)
		}
		s += dataset.Recall(got, truth[i])
	}
	if mean := s / 15; mean < 0.8 {
		t.Fatalf("diskann recall = %v", mean)
	}
	if da.IOReads() == 0 {
		t.Fatal("no I/O counted")
	}
}

func TestIOsPerQueryBounded(t *testing.T) {
	da, ds := buildSmall(t, Config{R: 16, Beam: 4, Seed: 1})
	da.ResetStats()
	q := ds.Queries(1, 0.05, 3)[0]
	if _, err := da.Search(q, 10, index.Params{Ef: 40}); err != nil {
		t.Fatal(err)
	}
	ios := da.IOReads()
	// PQ-guided beam search reads roughly the expanded nodes, far
	// fewer than the collection size.
	if ios <= 0 || ios > 400 {
		t.Fatalf("I/Os per query = %d", ios)
	}
}

func TestNoPQAblationCostsMoreIO(t *testing.T) {
	guided, ds := buildSmall(t, Config{R: 16, Beam: 4, Seed: 1})
	naive, _ := buildSmall(t, Config{R: 16, Beam: 4, Seed: 1, NoPQ: true})
	q := ds.Queries(1, 0.05, 5)[0]
	guided.ResetStats()
	naive.ResetStats()
	if _, err := guided.Search(q, 10, index.Params{Ef: 40}); err != nil {
		t.Fatal(err)
	}
	if _, err := naive.Search(q, 10, index.Params{Ef: 40}); err != nil {
		t.Fatal(err)
	}
	if naive.IOReads() <= guided.IOReads() {
		t.Fatalf("NoPQ should cost more I/O: %d vs %d", naive.IOReads(), guided.IOReads())
	}
}

func TestCacheReducesIOs(t *testing.T) {
	da, ds := buildSmall(t, Config{R: 16, Beam: 4, Seed: 1, CachePages: 4096})
	q := ds.Queries(1, 0.05, 7)[0]
	da.ResetStats()
	da.Search(q, 10, index.Params{Ef: 40})
	first := da.IOReads()
	da.Search(q, 10, index.Params{Ef: 40})
	second := da.IOReads() - first
	if second >= first {
		t.Fatalf("warm cache should cut I/Os: cold=%d warm=%d", first, second)
	}
	if da.CacheHits() == 0 {
		t.Fatal("no cache hits recorded")
	}
}

func TestPredicates(t *testing.T) {
	da, ds := buildSmall(t, Config{R: 16, Beam: 4, Seed: 1})
	got, err := da.Search(ds.Row(0), 5, index.Params{Ef: 60, Filter: func(id int64) bool { return id%2 == 0 }})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range got {
		if r.ID%2 != 0 {
			t.Fatalf("filter violated: %d", r.ID)
		}
	}
}

func TestValidationAndReopen(t *testing.T) {
	ds := dataset.Clustered(300, 8, 3, 0.4, 9)
	dir := t.TempDir()
	path := filepath.Join(dir, "x.diskann")
	da, err := Build(ds.Data, ds.Count, ds.Dim, path, Config{R: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := da.Search(ds.Row(0), 0, index.Params{}); err != index.ErrBadK {
		t.Fatal("want ErrBadK")
	}
	if _, err := da.Search([]float32{1}, 1, index.Params{}); err == nil {
		t.Fatal("want dim error")
	}
	if da.Name() != "diskann" || da.Size() != 300 {
		t.Fatal("metadata wrong")
	}
	da.Close()
	// Re-open from file only.
	re, err := Open(path, Config{Beam: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	got, err := re.Search(ds.Row(5), 1, index.Params{Ef: 40})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].ID != 5 {
		t.Fatalf("reopened search = %v", got)
	}
	if _, err := Open(filepath.Join(dir, "missing"), Config{}); err == nil {
		t.Fatal("want error for missing file")
	}
}
