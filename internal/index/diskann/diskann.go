// Package diskann implements a disk-resident Vamana graph in the style
// of DiskANN (Subramanya et al., Section 2.2(2)). The file holds one
// fixed-size record per node (full vector + adjacency list); RAM holds
// only the PQ codes of all vectors plus the codebooks. Search is the
// DiskANN beam search: PQ asymmetric distances steer the frontier, and
// every expanded node costs one record read (counted, LRU-cached)
// that yields both its exact vector for re-ranking and its neighbors.
package diskann

import (
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"sync"
	"sync/atomic"

	"vdbms/internal/index"
	"vdbms/internal/index/nsg"
	"vdbms/internal/quant"
	"vdbms/internal/topk"
	"vdbms/internal/vec"
)

// Config controls Build.
type Config struct {
	R     int     // graph degree; default 16
	L     int     // construction beam; default 2R
	Alpha float32 // Vamana alpha; default 1.2
	Beam  int     // search beam width (records read per hop); default 4
	PQM   int     // PQ subquantizers for the in-RAM codes; default d/2 capped at 16
	PQKs  int     // centroids per subquantizer; default 256 (1 byte/sub-code)
	Seed  int64
	// CachePages sizes the record LRU cache (0 disables).
	CachePages int
	// NoPQ disables PQ guidance (ablation): neighbor distances then
	// require reading each neighbor's record, multiplying I/Os.
	NoPQ bool
}

const magic = uint32(0x4441564d) // "MVAD"

// DiskANN is the opened index.
type DiskANN struct {
	cfg     Config
	f       *os.File
	dim     int
	n       int
	r       int
	medoid  int32
	recSize int
	dataOff int64
	pq      *quant.PQ
	codes   []byte // n * M, in RAM
	mu      sync.Mutex
	cache   *recordCache
	ios     atomic.Int64
	hits    atomic.Int64
	comps   atomic.Int64
}

// Build constructs the Vamana graph in memory, trains the PQ codes,
// writes the disk layout to path, and returns the opened index.
func Build(data []float32, n, d int, path string, cfg Config) (*DiskANN, error) {
	if cfg.R <= 0 {
		cfg.R = 16
	}
	if cfg.L <= 0 {
		cfg.L = 2 * cfg.R
	}
	if cfg.Alpha <= 0 {
		cfg.Alpha = 1.2
	}
	if cfg.Beam <= 0 {
		cfg.Beam = 4
	}
	if cfg.PQKs <= 0 {
		cfg.PQKs = 256
	}
	if cfg.PQM <= 0 {
		cfg.PQM = pickPQM(d)
	}
	g, err := nsg.Build(data, n, d, nsg.Config{
		Variant: nsg.Vamana, R: cfg.R, L: cfg.L, Alpha: cfg.Alpha, Seed: cfg.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("diskann: graph build: %w", err)
	}
	pq, err := quant.TrainPQ(data, n, d, quant.PQConfig{M: cfg.PQM, Ks: cfg.PQKs, Seed: cfg.Seed + 7, MaxIter: 15})
	if err != nil {
		return nil, fmt.Errorf("diskann: pq train: %w", err)
	}
	if err := writeLayout(path, data, n, d, cfg.R, g, pq); err != nil {
		return nil, err
	}
	return Open(path, cfg)
}

func pickPQM(d int) int {
	m := d / 2
	if m > 16 {
		m = 16
	}
	for m > 1 && d%m != 0 {
		m--
	}
	if m < 1 {
		m = 1
	}
	return m
}

// writeLayout serializes header, PQ codebooks, PQ codes, and the
// per-node records (vector + padded adjacency).
func writeLayout(path string, data []float32, n, d, r int, g *nsg.Graph, pq *quant.PQ) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := func(vals ...uint32) error {
		buf := make([]byte, 4*len(vals))
		for i, v := range vals {
			binary.LittleEndian.PutUint32(buf[i*4:], v)
		}
		_, err := f.Write(buf)
		return err
	}
	if err := w(magic, uint32(n), uint32(d), uint32(r), uint32(g.Medoid()), uint32(pq.M), uint32(pq.Ks), uint32(pq.Dsub)); err != nil {
		return err
	}
	// Codebooks.
	cb := make([]byte, 4)
	for m := 0; m < pq.M; m++ {
		for _, x := range pq.Codebooks[m] {
			binary.LittleEndian.PutUint32(cb, math.Float32bits(x))
			if _, err := f.Write(cb); err != nil {
				return err
			}
		}
	}
	// Codes.
	codes := make([]byte, n*pq.M)
	for id := 0; id < n; id++ {
		pq.Encode(data[id*d:(id+1)*d], codes[id*pq.M:(id+1)*pq.M])
	}
	if _, err := f.Write(codes); err != nil {
		return err
	}
	// Records: vector (d float32) + degree (uint32) + R neighbor ids.
	adj := g.Adjacency()
	rec := make([]byte, recordSize(d, r))
	for id := 0; id < n; id++ {
		for i := range rec {
			rec[i] = 0
		}
		row := data[id*d : (id+1)*d]
		for j, x := range row {
			binary.LittleEndian.PutUint32(rec[j*4:], math.Float32bits(x))
		}
		nbrs := adj[id]
		if len(nbrs) > r {
			nbrs = nbrs[:r]
		}
		binary.LittleEndian.PutUint32(rec[d*4:], uint32(len(nbrs)))
		for j, nb := range nbrs {
			binary.LittleEndian.PutUint32(rec[d*4+4+j*4:], uint32(nb))
		}
		if _, err := f.Write(rec); err != nil {
			return err
		}
	}
	return f.Sync()
}

func recordSize(d, r int) int { return d*4 + 4 + r*4 }

// Open loads the header, codebooks and codes into RAM and prepares the
// record reader.
func Open(path string, cfg Config) (*DiskANN, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	hdr := make([]byte, 32)
	if _, err := f.ReadAt(hdr, 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("diskann: header: %w", err)
	}
	if binary.LittleEndian.Uint32(hdr) != magic {
		f.Close()
		return nil, fmt.Errorf("diskann: %s is not a diskann file", path)
	}
	da := &DiskANN{
		cfg:    cfg,
		f:      f,
		n:      int(binary.LittleEndian.Uint32(hdr[4:])),
		dim:    int(binary.LittleEndian.Uint32(hdr[8:])),
		r:      int(binary.LittleEndian.Uint32(hdr[12:])),
		medoid: int32(binary.LittleEndian.Uint32(hdr[16:])),
	}
	m := int(binary.LittleEndian.Uint32(hdr[20:]))
	ks := int(binary.LittleEndian.Uint32(hdr[24:]))
	dsub := int(binary.LittleEndian.Uint32(hdr[28:]))
	pq := &quant.PQ{Dim: da.dim, M: m, Ks: ks, Dsub: dsub, Codebooks: make([][]float32, m)}
	off := int64(32)
	cbBytes := make([]byte, ks*dsub*4)
	for mi := 0; mi < m; mi++ {
		if _, err := f.ReadAt(cbBytes, off); err != nil {
			f.Close()
			return nil, err
		}
		cb := make([]float32, ks*dsub)
		for i := range cb {
			cb[i] = math.Float32frombits(binary.LittleEndian.Uint32(cbBytes[i*4:]))
		}
		pq.Codebooks[mi] = cb
		off += int64(len(cbBytes))
	}
	da.pq = pq
	da.codes = make([]byte, da.n*m)
	if _, err := f.ReadAt(da.codes, off); err != nil {
		f.Close()
		return nil, err
	}
	off += int64(len(da.codes))
	da.dataOff = off
	da.recSize = recordSize(da.dim, da.r)
	if cfg.CachePages > 0 {
		da.cache = newRecordCache(cfg.CachePages)
	}
	if cfg.Beam <= 0 {
		da.cfg.Beam = 4
	}
	return da, nil
}

// Close releases the file.
func (da *DiskANN) Close() error { return da.f.Close() }

// Name implements index.Index.
func (da *DiskANN) Name() string { return "diskann" }

// Size implements index.Index.
func (da *DiskANN) Size() int { return da.n }

// IOReads returns record reads that went to disk.
func (da *DiskANN) IOReads() int64 { return da.ios.Load() }

// CacheHits returns record reads served by the cache.
func (da *DiskANN) CacheHits() int64 { return da.hits.Load() }

// DistanceComps implements index.Stats (exact re-ranking distances
// only; PQ table lookups are counted separately by profiling).
func (da *DiskANN) DistanceComps() int64 { return da.comps.Load() }

// ResetStats zeroes all counters.
func (da *DiskANN) ResetStats() { da.ios.Store(0); da.hits.Store(0); da.comps.Store(0) }

// readRecord fetches node id's vector and neighbors (one I/O on cache
// miss).
func (da *DiskANN) readRecord(id int32) ([]float32, []int32) {
	da.mu.Lock()
	defer da.mu.Unlock()
	if da.cache != nil {
		if r, ok := da.cache.get(id); ok {
			da.hits.Add(1)
			return r.vec, r.nbrs
		}
	}
	buf := make([]byte, da.recSize)
	if _, err := da.f.ReadAt(buf, da.dataOff+int64(id)*int64(da.recSize)); err != nil {
		panic(fmt.Sprintf("diskann: record %d: %v", id, err))
	}
	da.ios.Add(1)
	v := make([]float32, da.dim)
	for j := range v {
		v[j] = math.Float32frombits(binary.LittleEndian.Uint32(buf[j*4:]))
	}
	deg := int(binary.LittleEndian.Uint32(buf[da.dim*4:]))
	if deg > da.r {
		deg = da.r
	}
	nbrs := make([]int32, deg)
	for j := 0; j < deg; j++ {
		nbrs[j] = int32(binary.LittleEndian.Uint32(buf[da.dim*4+4+j*4:]))
	}
	if da.cache != nil {
		da.cache.put(id, record{v, nbrs})
	}
	return v, nbrs
}

// Search implements index.Index with DiskANN beam search: the frontier
// is ordered by PQ approximate distance; each hop expands up to Beam
// best unvisited candidates with one record read each, re-ranking them
// exactly from the on-disk vector.
func (da *DiskANN) Search(q []float32, k int, p index.Params) ([]topk.Result, error) {
	if k <= 0 {
		return nil, index.ErrBadK
	}
	if len(q) != da.dim {
		return nil, fmt.Errorf("%w: query %d, index %d", index.ErrDim, len(q), da.dim)
	}
	ef := p.Ef
	if ef < k {
		ef = 4 * k
		if ef < 32 {
			ef = 32
		}
	}
	// Exact re-ranking scores streamed record vectors through the
	// query-bound kernel (bit-identical to the scalar L2).
	kern := vec.BindQuery(vec.L2, q)
	var approx func(id int32) float32
	if da.cfg.NoPQ {
		// Ablation: approximate distance requires reading the record.
		approx = func(id int32) float32 {
			v, _ := da.readRecord(id)
			da.comps.Add(1)
			return kern.Score(v)
		}
	} else {
		tab := da.pq.ADC(q)
		approx = func(id int32) float32 {
			return tab.Distance(da.codes[int(id)*da.pq.M : (int(id)+1)*da.pq.M])
		}
	}
	// Per-query stats: comps are counted locally; IO/cache deltas come
	// from the cumulative counters, so they are approximate when
	// searches run concurrently.
	iosBefore, hitsBefore := da.ios.Load(), da.hits.Load()
	compsBefore := da.comps.Load()
	visited := map[int32]struct{}{da.medoid: {}}
	var frontier topk.MinQueue
	frontier.Push(int64(da.medoid), approx(da.medoid))
	exact := topk.NewCollector(ef)
	// beamBound tracks the ef best APPROXIMATE distances of expanded
	// nodes. Pruning must compare like with like: mixing PQ-space and
	// exact-space distances makes biased PQ estimates look prunable
	// and collapses recall.
	beamBound := topk.NewCollector(ef)
	for frontier.Len() > 0 {
		// Expand up to Beam best candidates this hop.
		expanded := 0
		stop := true
		for frontier.Len() > 0 && expanded < da.cfg.Beam {
			cand := frontier.Pop()
			if beamBound.Full() && cand.Dist > beamBound.Worst() {
				continue
			}
			stop = false
			v, nbrs := da.readRecord(int32(cand.ID))
			d := kern.Score(v)
			da.comps.Add(1)
			beamBound.Push(cand.ID, cand.Dist)
			if p.Admits(cand.ID) {
				exact.Push(cand.ID, d)
			}
			for _, nb := range nbrs {
				if _, dup := visited[nb]; dup {
					continue
				}
				visited[nb] = struct{}{}
				frontier.Push(int64(nb), approx(nb))
			}
			expanded++
		}
		if stop {
			break
		}
	}
	if p.Stats != nil {
		p.Stats.NodesVisited += int64(len(visited))
		p.Stats.DistanceComps += da.comps.Load() - compsBefore
		p.Stats.IOReads += da.ios.Load() - iosBefore
		p.Stats.CacheHits += da.hits.Load() - hitsBefore
	}
	res := exact.Results()
	if len(res) > k {
		res = res[:k]
	}
	return res, nil
}

type record struct {
	vec  []float32
	nbrs []int32
}

type recordCache struct {
	cap   int
	m     map[int32]*rcNode
	head  *rcNode
	tail  *rcNode
	count int
}

type rcNode struct {
	key        int32
	rec        record
	prev, next *rcNode
}

func newRecordCache(capacity int) *recordCache {
	return &recordCache{cap: capacity, m: make(map[int32]*rcNode, capacity)}
}

func (c *recordCache) get(key int32) (record, bool) {
	n, ok := c.m[key]
	if !ok {
		return record{}, false
	}
	c.front(n)
	return n.rec, true
}

func (c *recordCache) put(key int32, rec record) {
	if n, ok := c.m[key]; ok {
		n.rec = rec
		c.front(n)
		return
	}
	n := &rcNode{key: key, rec: rec, next: c.head}
	if c.head != nil {
		c.head.prev = n
	}
	c.head = n
	if c.tail == nil {
		c.tail = n
	}
	c.m[key] = n
	c.count++
	if c.count > c.cap {
		ev := c.tail
		c.tail = ev.prev
		if c.tail != nil {
			c.tail.next = nil
		} else {
			c.head = nil
		}
		delete(c.m, ev.key)
		c.count--
	}
}

func (c *recordCache) front(n *rcNode) {
	if c.head == n {
		return
	}
	if n.prev != nil {
		n.prev.next = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	}
	if c.tail == n {
		c.tail = n.prev
	}
	n.prev = nil
	n.next = c.head
	if c.head != nil {
		c.head.prev = n
	}
	c.head = n
}
