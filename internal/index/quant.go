package index

import (
	"fmt"
	"sync"

	"vdbms/internal/quant"
	"vdbms/internal/vec"
)

// QuantKind selects the compressed-scan codec an index stores beside
// (or instead of) full-precision rows for candidate generation.
type QuantKind int

const (
	// QuantNone scans full-precision float32 rows.
	QuantNone QuantKind = iota
	// QuantSQ8 stores one byte per dimension (scalar quantization)
	// and scans with a per-query d×256 LUT. Supports l2/ip/cosine.
	QuantSQ8
	// QuantPQ stores product-quantization codes and scans with a
	// per-query ADC table (4-bit fast-scan when ks ≤ 16). L2 only.
	QuantPQ
	// QuantOPQ is QuantPQ behind a learned rotation. L2 only.
	QuantOPQ
)

// String returns the schema-level name ("none", "sq8", "pq", "opq").
func (k QuantKind) String() string {
	switch k {
	case QuantNone:
		return "none"
	case QuantSQ8:
		return "sq8"
	case QuantPQ:
		return "pq"
	case QuantOPQ:
		return "opq"
	default:
		return fmt.Sprintf("quant(%d)", int(k))
	}
}

// ParseQuantKind converts a schema-level quantization name. The empty
// string means none.
func ParseQuantKind(s string) (QuantKind, error) {
	switch s {
	case "", "none":
		return QuantNone, nil
	case "sq8":
		return QuantSQ8, nil
	case "pq":
		return QuantPQ, nil
	case "opq":
		return QuantOPQ, nil
	}
	return 0, fmt.Errorf("index: unknown quantization %q (want none|sq8|pq|opq)", s)
}

// QuantSpec is the per-index quantization recipe carried through the
// integer opts map (so it persists in WAL/checkpoint index records
// exactly like every other build knob). Opt keys: "quant" (QuantKind),
// "rerank_k", "pqm", "pqks".
type QuantSpec struct {
	Kind QuantKind
	// RerankK is how many approximate candidates get exact
	// full-precision re-scoring before the top-k cut. 0 selects the
	// per-query default max(4k, 32).
	RerankK int
	// PQM / PQKs configure the product quantizer (subquantizer count
	// and centroids per subquantizer). Zero selects defaults: M=8
	// (clamped to a divisor of d), Ks=16 (the 4-bit fast-scan path).
	PQM, PQKs int
}

// ParseOpt consumes one opts entry if it is a quantization knob,
// reporting whether it did. Family opt parsers call this first so the
// quant keys never collide with their own.
func (s *QuantSpec) ParseOpt(key string, v int) (bool, error) {
	switch key {
	case "quant":
		if v < int(QuantNone) || v > int(QuantOPQ) {
			return true, fmt.Errorf("index: quant=%d out of range", v)
		}
		s.Kind = QuantKind(v)
	case "rerank_k":
		if v < 0 {
			return true, fmt.Errorf("index: rerank_k=%d must be >= 0", v)
		}
		s.RerankK = v
	case "pqm":
		s.PQM = v
	case "pqks":
		s.PQKs = v
	default:
		return false, nil
	}
	return true, nil
}

// Enabled reports whether the spec selects any codec.
func (s QuantSpec) Enabled() bool { return s.Kind != QuantNone }

// ResolveRerankK returns the effective re-rank width for one query:
// the per-query override, else the configured width, else max(4k, 32),
// never below k and never above n.
func (s QuantSpec) ResolveRerankK(p Params, k, n int) int {
	rk := p.RerankK
	if rk <= 0 {
		rk = s.RerankK
	}
	if rk <= 0 {
		rk = 4 * k
		if rk < 32 {
			rk = 32
		}
	}
	if rk < k {
		rk = k
	}
	if rk > n {
		rk = n
	}
	return rk
}

// BuildQuantKernel trains the codec named by spec on the n row-major
// vectors and returns the decode-free scan kernel. SQ8 supports
// l2/ip/cosine; PQ and OPQ decompose squared L2 only and reject other
// metrics at build time rather than return plausible-but-wrong
// rankings.
func BuildQuantKernel(spec QuantSpec, metric vec.Metric, data []float32, n, d int) (vec.QuantScorer, error) {
	switch spec.Kind {
	case QuantNone:
		return nil, nil
	case QuantSQ8:
		sq, err := quant.TrainSQ(data, n, d)
		if err != nil {
			return nil, err
		}
		codes := make([]byte, n*d)
		for i := 0; i < n; i++ {
			if _, err := sq.Encode(data[i*d:(i+1)*d], codes[i*d:(i+1)*d]); err != nil {
				return nil, err
			}
		}
		return vec.NewSQ8Scorer(metric, sq.Min, sq.Step, codes, n, d)
	case QuantPQ, QuantOPQ:
		if metric != vec.L2 {
			return nil, fmt.Errorf("index: %v quantization supports l2 only (ADC tables decompose squared L2), got %v", spec.Kind, metric)
		}
		cfg := quant.PQConfig{M: spec.PQM, Ks: spec.PQKs, Seed: 1, MaxIter: 15}
		if cfg.M == 0 {
			cfg.M = 8
			for cfg.M > 1 && d%cfg.M != 0 {
				cfg.M /= 2
			}
		}
		if cfg.Ks == 0 {
			cfg.Ks = 16
		}
		if spec.Kind == QuantOPQ {
			o, err := quant.TrainOPQ(data, n, d, quant.OPQConfig{PQConfig: cfg, Iters: 5})
			if err != nil {
				return nil, err
			}
			return quant.NewOPQScorer(o, data, n)
		}
		pq, err := quant.TrainPQ(data, n, d, cfg)
		if err != nil {
			return nil, err
		}
		return quant.NewPQScorer(pq, data, n)
	default:
		return nil, fmt.Errorf("index: unknown quantization kind %v", spec.Kind)
	}
}

// Quantized is implemented by indexes whose candidate generation
// scans quantized codes; the planner uses it to discount index scan
// cost and attribute the re-rank stage.
type Quantized interface {
	// QuantizedScan reports whether this instance actually scans
	// codes (an index family may support quantization but have it
	// disabled).
	QuantizedScan() bool
}

var (
	quantCapMu sync.RWMutex
	// quantCapable families accept the full quant opt set; rerankCapable
	// families accept only rerank_k (their codes are built-in, e.g.
	// ivfsq/ivfadc).
	quantCapable  = map[string]bool{}
	rerankCapable = map[string]bool{}
)

// MarkQuantCapable registers (in family init) that kind accepts the
// "quant"/"rerank_k"/"pqm"/"pqks" opts.
func MarkQuantCapable(kind string) {
	quantCapMu.Lock()
	defer quantCapMu.Unlock()
	quantCapable[kind] = true
}

// MarkRerankCapable registers that kind accepts "rerank_k" (it scans
// codes by construction) but not the codec-selection opts.
func MarkRerankCapable(kind string) {
	quantCapMu.Lock()
	defer quantCapMu.Unlock()
	rerankCapable[kind] = true
}

// MergeQuantDefaults folds a collection-level quantization default
// ("none"|"sq8"|"pq"|"opq" + rerank width) into an explicit opts map
// for one CreateIndex call, returning the map that should be built
// from AND recorded in the WAL/checkpoint recipe (so the materialized
// recipe survives recovery even if the schema default changes).
// Explicit opts win over schema defaults. Families that cannot scan
// the requested codec are left untouched — a schema-wide default must
// not break CreateIndex for, say, a kd-tree.
func MergeQuantDefaults(kind string, opts map[string]int, quantization string, rerankK int) (map[string]int, error) {
	qk, err := ParseQuantKind(quantization)
	if err != nil {
		return nil, err
	}
	quantCapMu.RLock()
	qCap, rCap := quantCapable[kind], rerankCapable[kind]
	quantCapMu.RUnlock()
	if (!qCap && !rCap) || (qk == QuantNone && rerankK == 0) {
		return opts, nil
	}
	merged := make(map[string]int, len(opts)+2)
	for k, v := range opts {
		merged[k] = v
	}
	if qCap && qk != QuantNone {
		if _, explicit := merged["quant"]; !explicit {
			merged["quant"] = int(qk)
		}
	}
	if rerankK > 0 {
		if _, explicit := merged["rerank_k"]; !explicit {
			merged["rerank_k"] = rerankK
		}
	}
	return merged, nil
}
