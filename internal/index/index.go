// Package index defines the common contract implemented by every
// search index in Figure 1's Storage Manager (LSH, IVF, trees, graphs,
// disk indexes) plus the brute-force flat index, and a registry that
// maps index names to constructors for the CLI and query language.
package index

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"vdbms/internal/bitset"
	"vdbms/internal/topk"
	"vdbms/internal/vec"
)

// Params carries per-query search knobs. Zero values select each
// index's defaults. The two predicate fields implement the hybrid
// operators of Section 2.3: Allow is the bitmask of a block-first
// scan (built by attribute filtering before the index scan), while
// Filter is consulted during traversal for visit-first scans.
type Params struct {
	// NProbe is how many buckets/partitions to inspect (IVF, LSH
	// multi-probe, SPANN posting lists).
	NProbe int
	// Ef is the beam width for graph best-first search and the leaf
	// budget for tree indexes.
	Ef int
	// Allow, when non-nil, restricts results to ids whose bit is set
	// (block-first semantics). Indexes must never return a blocked id.
	Allow *bitset.Bitset
	// Filter, when non-nil, restricts results to ids it accepts
	// (visit-first semantics; evaluated during traversal).
	Filter func(id int64) bool
	// Stats, when non-nil, receives per-query work counters from the
	// backend. Unlike the cumulative Stats interface this attributes
	// work to one query, so the executor can annotate trace spans and
	// per-index metrics without cross-query races. Each query must
	// pass its own struct.
	Stats *SearchStats
	// Parallelism is the intra-query worker count for indexes that
	// partition their scan (flat ranges, IVF inverted lists). 0 selects
	// the shared pool's width (GOMAXPROCS), 1 forces a serial scan.
	// Results are identical at every setting: partitions merge through
	// the id-deterministic top-k collector.
	Parallelism int
	// RerankK, for indexes that scan quantized codes, overrides how
	// many approximate candidates are re-scored with full-precision
	// distances before the final top-k cut. 0 keeps the index's
	// configured (or default) re-rank width; it is ignored by
	// full-precision indexes.
	RerankK int
}

// SearchStats collects the work one Search call performed. Backends
// fill only the fields that apply to them (e.g. BucketsProbed for
// IVF/LSH, NodesVisited for graphs, IOReads for disk indexes).
type SearchStats struct {
	// DistanceComps counts full-vector (or ADC-table) distance
	// computations.
	DistanceComps int64
	// NodesVisited counts graph nodes expanded or visited.
	NodesVisited int64
	// GreedyHops counts upper-layer greedy descents (HNSW).
	GreedyHops int64
	// BucketsProbed counts inverted lists / hash buckets scanned.
	BucketsProbed int64
	// IOReads counts disk record reads (DiskANN).
	IOReads int64
	// CacheHits counts record reads served from cache (DiskANN).
	CacheHits int64
	// Partitions counts the parallel scan partitions this query was
	// split into (1 for a serial scan).
	Partitions int64
}

// Admits reports whether id passes both predicate mechanisms.
func (p *Params) Admits(id int64) bool {
	if p.Allow != nil && !p.Allow.Test(int(id)) {
		return false
	}
	if p.Filter != nil && !p.Filter(id) {
		return false
	}
	return true
}

// Constrained reports whether any predicate is attached.
func (p *Params) Constrained() bool { return p.Allow != nil || p.Filter != nil }

// Index is a built approximate (or exact) nearest-neighbor structure
// over vectors identified by dense int64 ids.
type Index interface {
	// Name returns the index family name ("flat", "hnsw", ...).
	Name() string
	// Size returns the number of indexed vectors.
	Size() int
	// Search returns up to k results ordered by ascending distance.
	Search(q []float32, k int, p Params) ([]topk.Result, error)
}

// Remappable is implemented by indexes that can rebind themselves to
// a different backing column holding byte-identical vector content —
// the memory tier uses it to move a collection's float column between
// heap and mmap without rebuilding the index. Remap returns a shallow
// clone sharing the (immutable) graph structure and quantized codes
// but scoring against data; ok is false when the index cannot rebind
// (the caller then keeps the original, which pins the old column).
// Implementations must not mutate the receiver: published snapshots
// may still be searching it.
type Remappable interface {
	Remap(data []float32) (idx Index, ok bool)
}

// MemoryFootprint is implemented by indexes that can report their
// resident heap bytes for budget accounting: structure covers the
// graph/tree/bucket machinery, codes covers quantized code blocks
// (accounted separately because the eviction rung keeps codes hot
// while float columns move to the mmap tier).
type MemoryFootprint interface {
	MemoryBytes() (structure, codes int64)
}

// Stats is implemented by indexes that track per-search work counters
// used by the cost model and the experiments.
type Stats interface {
	// DistanceComps returns the cumulative number of full-vector
	// distance computations performed by Search calls.
	DistanceComps() int64
	// ResetStats zeroes the counters.
	ResetStats()
}

// ErrBadK is returned when a non-positive k is requested.
var ErrBadK = errors.New("index: k must be positive")

// ErrDim is returned when a query's dimensionality differs from the
// index's.
var ErrDim = errors.New("index: query dimension mismatch")

// BuildFunc constructs an index over n row-major vectors of dimension
// d. metric is the collection's distance metric: families that can
// honor it must score candidates with it, and families whose
// structure is inherently tied to one metric must return an error for
// any other — silently falling back to L2 is the bug class this
// parameter exists to kill (every registry-built index used to be
// L2-ranked regardless of the collection metric). opts carries
// index-specific knobs (parsed from the CLI or query language);
// unknown keys are an error.
type BuildFunc func(data []float32, n, d int, metric vec.Metric, opts map[string]int) (Index, error)

var (
	regMu    sync.RWMutex
	registry = map[string]BuildFunc{}
)

// Register adds an index family to the registry. It panics on
// duplicate names (registration happens in package init only).
func Register(name string, fn BuildFunc) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		panic("index: duplicate registration of " + name)
	}
	registry[name] = fn
}

// Build constructs a registered index by name, scoring with metric.
func Build(name string, data []float32, n, d int, metric vec.Metric, opts map[string]int) (Index, error) {
	regMu.RLock()
	fn, ok := registry[name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("index: unknown index %q (known: %v)", name, Names())
	}
	return fn(data, n, d, metric, opts)
}

// Registered reports whether an index family is known, letting
// restore paths reject a recorded recipe before paying for anything.
func Registered(name string) bool {
	regMu.RLock()
	defer regMu.RUnlock()
	_, ok := registry[name]
	return ok
}

// Names lists registered families in sorted order.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
