package hnsw

import (
	"testing"

	"vdbms/internal/bitset"
	"vdbms/internal/dataset"
	"vdbms/internal/index"
	"vdbms/internal/vec"
)

func meanRecall(t *testing.T, h *HNSW, ds *dataset.Dataset, ef, k, nq int, seed int64) float64 {
	t.Helper()
	qs := ds.Queries(nq, 0.05, seed)
	truth := dataset.GroundTruth(vec.SquaredL2, ds, qs, k)
	var s float64
	for i, q := range qs {
		got, err := h.Search(q, k, index.Params{Ef: ef})
		if err != nil {
			t.Fatal(err)
		}
		s += dataset.Recall(got, truth[i])
	}
	return s / float64(nq)
}

func TestHNSWHighRecall(t *testing.T) {
	ds := dataset.Clustered(2000, 16, 8, 0.4, 1)
	h, err := Build(ds.Data, ds.Count, ds.Dim, Config{M: 12, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r := meanRecall(t, h, ds, 100, 10, 20, 2); r < 0.9 {
		t.Fatalf("hnsw recall = %v", r)
	}
}

func TestEfSweepMonotone(t *testing.T) {
	ds := dataset.Clustered(1500, 16, 8, 0.4, 3)
	h, err := Build(ds.Data, ds.Count, ds.Dim, Config{M: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	lo := meanRecall(t, h, ds, 10, 10, 20, 4)
	hi := meanRecall(t, h, ds, 200, 10, 20, 4)
	if hi < lo {
		t.Fatalf("recall should grow with ef: %v -> %v", lo, hi)
	}
	if hi < 0.9 {
		t.Fatalf("ef=200 recall = %v", hi)
	}
}

func TestHierarchyExists(t *testing.T) {
	ds := dataset.Uniform(2000, 8, 5)
	h, err := Build(ds.Data, ds.Count, ds.Dim, Config{M: 8, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if h.MaxLayer() < 1 {
		t.Fatalf("expected multiple layers, got max layer %d", h.MaxLayer())
	}
	// Degree cap: base layer average degree bounded by 2M (plus slack
	// for re-pruning under-full nodes).
	if d := h.AvgBaseDegree(); d > float64(2*8)+1 {
		t.Fatalf("base degree %v exceeds 2M", d)
	}
}

func TestHeuristicVsNaiveSelection(t *testing.T) {
	// E6 ablation: heuristic selection should not lose to naive at the
	// same ef on clustered data.
	ds := dataset.Clustered(1500, 16, 10, 0.5, 7)
	heur, err := Build(ds.Data, ds.Count, ds.Dim, Config{M: 8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	naive, err := Build(ds.Data, ds.Count, ds.Dim, Config{M: 8, Seed: 3, NaiveSelection: true})
	if err != nil {
		t.Fatal(err)
	}
	rh := meanRecall(t, heur, ds, 50, 10, 20, 8)
	rn := meanRecall(t, naive, ds, 50, 10, 20, 8)
	if rh < rn-0.1 {
		t.Fatalf("heuristic recall %v far below naive %v", rh, rn)
	}
}

func TestPredicates(t *testing.T) {
	ds := dataset.Clustered(800, 8, 4, 0.4, 9)
	h, err := Build(ds.Data, ds.Count, ds.Dim, Config{M: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	allow := bitset.New(ds.Count)
	for i := 0; i < ds.Count; i += 5 {
		allow.Set(i)
	}
	got, err := h.Search(ds.Row(0), 10, index.Params{Ef: 100, Allow: allow})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 {
		t.Fatal("filtered search returned nothing")
	}
	for _, r := range got {
		if r.ID%5 != 0 {
			t.Fatalf("blocked id %d returned", r.ID)
		}
	}
	got, _ = h.Search(ds.Row(0), 10, index.Params{Ef: 100, Filter: func(id int64) bool { return id < 50 }})
	for _, r := range got {
		if r.ID >= 50 {
			t.Fatalf("filter violated: %d", r.ID)
		}
	}
}

func TestMetricVariants(t *testing.T) {
	ds := dataset.Clustered(600, 8, 4, 0.3, 11)
	for i := 0; i < ds.Count; i++ {
		vec.Normalize(ds.Row(i))
	}
	h, err := Build(ds.Data, ds.Count, ds.Dim, Config{M: 8, Seed: 1, Metric: vec.Cosine})
	if err != nil {
		t.Fatal(err)
	}
	qs := ds.Queries(10, 0.02, 12)
	truth := dataset.GroundTruth(vec.CosineDistance, ds, qs, 10)
	var s float64
	for i, q := range qs {
		got, _ := h.Search(q, 10, index.Params{Ef: 80})
		s += dataset.Recall(got, truth[i])
	}
	if mean := s / 10; mean < 0.8 {
		t.Fatalf("cosine hnsw recall = %v", mean)
	}
}

func TestValidationAndStats(t *testing.T) {
	if _, err := Build([]float32{1}, 2, 2, Config{}); err == nil {
		t.Fatal("want shape error")
	}
	ds := dataset.Uniform(60, 4, 13)
	h, _ := Build(ds.Data, 60, 4, Config{M: 4, Seed: 1})
	if _, err := h.Search(ds.Row(0), 0, index.Params{}); err != index.ErrBadK {
		t.Fatal("want ErrBadK")
	}
	if _, err := h.Search([]float32{1}, 1, index.Params{}); err == nil {
		t.Fatal("want dim error")
	}
	h.ResetStats()
	h.Search(ds.Row(0), 3, index.Params{})
	if h.DistanceComps() == 0 || h.Size() != 60 || h.Name() != "hnsw" {
		t.Fatal("metadata wrong")
	}
}

func TestRegistry(t *testing.T) {
	ds := dataset.Uniform(50, 4, 15)
	idx, err := index.Build("hnsw", ds.Data, 50, 4, vec.L2, map[string]int{"m": 4, "efc": 16, "naive": 1})
	if err != nil || idx.Name() != "hnsw" {
		t.Fatalf("%v", err)
	}
	if _, err := index.Build("hnsw", ds.Data, 50, 4, vec.L2, map[string]int{"zz": 1}); err == nil {
		t.Fatal("want unknown-option error")
	}
}

// TestHNSWQuantizedTraversal: sq8-backed neighbor expansion with exact
// re-rank must shrink the scoring payload >= 4x and keep high recall,
// and every returned distance is full precision (the re-rank ran).
func TestHNSWQuantizedTraversal(t *testing.T) {
	const n, k = 2000, 10
	ds := dataset.Clustered(n, 16, 8, 0.4, 31)
	h, err := Build(ds.Data, ds.Count, ds.Dim, Config{
		M: 12, Seed: 1, Quant: index.QuantSpec{Kind: index.QuantSQ8},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !h.QuantizedScan() {
		t.Fatal("QuantizedScan() = false")
	}
	if ratio := float64(n*ds.Dim*4) / float64(h.ScoringBytes()); ratio < 4 {
		t.Fatalf("scoring payload compression %.1fx, want >= 4x", ratio)
	}
	qs := ds.Queries(20, 0.05, 32)
	truth := dataset.GroundTruth(vec.SquaredL2, ds, qs, k)
	var recall float64
	for i, q := range qs {
		got, err := h.Search(q, k, index.Params{Ef: 100})
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range got {
			exact := vec.SquaredL2(q, ds.Row(int(r.ID)))
			if d := float64(r.Dist - exact); d > 1e-4 || d < -1e-4 {
				t.Fatalf("query %d id %d: dist %v not re-ranked to exact %v", i, r.ID, r.Dist, exact)
			}
		}
		recall += dataset.Recall(got, truth[i])
	}
	if recall/float64(len(qs)) < 0.9 {
		t.Fatalf("quantized hnsw recall = %.3f", recall/float64(len(qs)))
	}
}

// TestHNSWQuantRegistryOpts: the registry accepts the quant opt set
// for hnsw and records honest config errors for bad values.
func TestHNSWQuantRegistryOpts(t *testing.T) {
	ds := dataset.Clustered(300, 8, 4, 0.4, 33)
	idx, err := index.Build("hnsw", ds.Data, 300, 8, vec.L2,
		map[string]int{"m": 6, "quant": int(index.QuantSQ8), "rerank_k": 50})
	if err != nil {
		t.Fatal(err)
	}
	if !idx.(*HNSW).QuantizedScan() {
		t.Fatal("quant opt ignored")
	}
	if _, err := index.Build("hnsw", ds.Data, 300, 8, vec.L2, map[string]int{"quant": 99}); err == nil {
		t.Fatal("quant=99 should be rejected")
	}
	if _, err := index.Build("hnsw", ds.Data, 300, 8, vec.Cosine, map[string]int{"quant": int(index.QuantPQ)}); err == nil {
		t.Fatal("pq under cosine should be rejected (ADC decomposes L2 only)")
	}
}
