// Package hnsw implements the hierarchical navigable small world graph
// of Malkov & Yashunin (Section 2.2(3)). Each node draws a maximum
// layer from an exponentially decaying distribution; upper layers form
// progressively sparser graphs traversed greedily to find a good entry
// point, and the bottom layer is beam-searched. Neighbor selection
// uses either the paper's pruning heuristic (RobustPrune with α=1) or
// naive k-closest, ablated in E6.
package hnsw

import (
	"fmt"
	"math"
	"math/rand"
	"sync/atomic"

	"vdbms/internal/index"
	"vdbms/internal/index/graph"
	"vdbms/internal/topk"
	"vdbms/internal/vec"
)

// Config controls construction.
type Config struct {
	M           int // max neighbors per node per layer; default 12
	EfConstruct int // construction beam width; default 4*M
	// NaiveSelection replaces the pruning heuristic (RobustPrune α=1)
	// with plain k-closest selection (E6 ablation).
	NaiveSelection bool
	Seed           int64
	Metric         vec.Metric
	// Quant, when enabled, stores a compressed copy of the vectors and
	// scores beam-search candidates on codes; the top rerank_k results
	// are re-scored with exact float32 distances (see index.QuantSpec).
	// The graph itself is always built at full precision.
	Quant index.QuantSpec
}

// HNSW is the built index.
type HNSW struct {
	cfg    Config
	dim    int
	n      int
	s      *graph.Searcher
	layers []graph.Adjacency // construction-time mutable adjacency
	// frozen is the serving adjacency: after Build the per-node slices
	// of every layer are packed into slabs (two pointerless allocations
	// per layer), so a 10M-node graph stops carrying 10M slice headers
	// the GC rescans every cycle.
	frozen []graph.Neighborhoods
	nodeLv []int8 // top layer of each node
	entry  int32
	maxLv  int
	ml     float64
	comps  atomic.Int64
}

// Build inserts all vectors.
func Build(data []float32, n, d int, cfg Config) (*HNSW, error) {
	if d <= 0 || n <= 0 || len(data) < n*d {
		return nil, fmt.Errorf("hnsw: bad data shape n=%d d=%d len=%d", n, d, len(data))
	}
	if cfg.M <= 0 {
		cfg.M = 12
	}
	if cfg.EfConstruct <= 0 {
		cfg.EfConstruct = 4 * cfg.M
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	sc, err := vec.NewScorer(cfg.Metric, data, n, d)
	if err != nil {
		return nil, fmt.Errorf("hnsw: %w", err)
	}
	h := &HNSW{
		cfg: cfg, dim: d, n: n,
		s:      &graph.Searcher{Data: data, Dim: d, Fn: vec.Distance(cfg.Metric), Scorer: sc},
		nodeLv: make([]int8, n),
		ml:     1 / math.Log(float64(cfg.M)),
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	for id := 0; id < n; id++ {
		h.insert(int32(id), rng)
	}
	h.frozen = make([]graph.Neighborhoods, len(h.layers))
	for l, adj := range h.layers {
		h.frozen[l] = graph.Freeze(adj)
	}
	h.layers = nil // construction slices die here; serving uses slabs
	if cfg.Quant.Enabled() {
		// Attach the quantized kernel only after construction: insertion
		// quality depends on exact distances, and RobustPrune compares
		// stored rows pairwise, which codes cannot serve.
		qsc, err := index.BuildQuantKernel(cfg.Quant, cfg.Metric, data, n, d)
		if err != nil {
			return nil, fmt.Errorf("hnsw: %w", err)
		}
		h.s.Quant = qsc
	}
	return h, nil
}

func (h *HNSW) randomLevel(rng *rand.Rand) int {
	lv := int(-math.Log(rng.Float64()+1e-12) * h.ml)
	if lv > 30 {
		lv = 30
	}
	return lv
}

func (h *HNSW) ensureLayers(lv int) {
	for len(h.layers) <= lv {
		h.layers = append(h.layers, make(graph.Adjacency, h.n))
	}
}

func (h *HNSW) insert(id int32, rng *rand.Rand) {
	lv := h.randomLevel(rng)
	h.nodeLv[id] = int8(lv)
	h.ensureLayers(lv)
	if id == 0 {
		h.entry = 0
		h.maxLv = lv
		return
	}
	q := h.s.Row(id)
	ep := h.entry
	// Greedy descent through layers above the node's top layer.
	for l := h.maxLv; l > lv; l-- {
		ep, _ = graph.GreedyWalk(h.s, h.layers[l], q, ep)
	}
	// Beam search and connect on each layer from min(lv, maxLv) down.
	top := lv
	if top > h.maxLv {
		top = h.maxLv
	}
	entries := []int32{ep}
	for l := top; l >= 0; l-- {
		found := graph.BeamSearch(h.s, h.layers[l], q, entries, h.cfg.EfConstruct, h.cfg.EfConstruct, index.Params{})
		m := h.cfg.M
		if l == 0 {
			m = 2 * h.cfg.M // standard HNSW allows 2M at the base layer
		}
		var nbrs []int32
		if h.cfg.NaiveSelection {
			nbrs = graph.TopKClosest(found, m, id)
		} else {
			nbrs = graph.RobustPrune(h.s, id, found, m, 1.0)
		}
		h.layers[l][id] = nbrs
		for _, nb := range nbrs {
			h.layers[l][nb] = append(h.layers[l][nb], id)
			if len(h.layers[l][nb]) > m {
				h.shrink(l, nb, m)
			}
		}
		// Next layer starts from this layer's results.
		entries = entries[:0]
		for _, r := range found {
			entries = append(entries, int32(r.ID))
		}
		if len(entries) == 0 {
			entries = []int32{ep}
		}
	}
	if lv > h.maxLv {
		h.maxLv = lv
		h.entry = id
	}
}

// shrink re-selects neighbors for an over-full node.
func (h *HNSW) shrink(l int, id int32, m int) {
	nbrs := h.layers[l][id]
	cands := make([]topk.Result, 0, len(nbrs))
	for _, nb := range nbrs {
		cands = append(cands, topk.Result{ID: int64(nb), Dist: h.s.DistRows(id, nb)})
	}
	sortResults(cands)
	if h.cfg.NaiveSelection {
		h.layers[l][id] = graph.TopKClosest(cands, m, id)
	} else {
		h.layers[l][id] = graph.RobustPrune(h.s, id, cands, m, 1.0)
	}
}

func sortResults(rs []topk.Result) {
	for i := 1; i < len(rs); i++ {
		for j := i; j > 0 && rs[j].Dist < rs[j-1].Dist; j-- {
			rs[j], rs[j-1] = rs[j-1], rs[j]
		}
	}
}

// Name implements index.Index.
func (h *HNSW) Name() string { return "hnsw" }

// Size implements index.Index.
func (h *HNSW) Size() int { return h.n }

// DistanceComps implements index.Stats.
func (h *HNSW) DistanceComps() int64 { return h.comps.Load() + h.s.Comps.Load() }

// ResetStats implements index.Stats.
func (h *HNSW) ResetStats() { h.comps.Store(0); h.s.Comps.Store(0) }

// MaxLayer returns the top layer index.
func (h *HNSW) MaxLayer() int { return h.maxLv }

// QuantizedScan implements index.Quantized.
func (h *HNSW) QuantizedScan() bool { return h.s.Quant != nil }

// ScoringBytes reports the resident bytes the traversal scoring path
// keeps hot (codes when quantized, float32 rows otherwise).
func (h *HNSW) ScoringBytes() int { return h.s.ScoringBytes(h.n) }

// AvgBaseDegree reports mean degree of the bottom layer.
func (h *HNSW) AvgBaseDegree() float64 { return graph.AvgDegree(h.frozen[0]) }

// MemoryBytes implements index.MemoryFootprint: the slab-packed layer
// adjacency plus per-node levels, and the quantized code block.
func (h *HNSW) MemoryBytes() (structure, codes int64) {
	for _, l := range h.frozen {
		structure += int64(graph.NeighborhoodBytes(l))
	}
	structure += int64(len(h.nodeLv))
	if h.s.Quant != nil {
		codes = int64(h.s.Quant.BytesPerRow()) * int64(h.n)
	}
	return structure, codes
}

// Remap implements index.Remappable: a shallow clone searching data
// instead of the column the index was built over. The frozen layers,
// node levels, and quantized codes are immutable and shared; only the
// Searcher (and its scorer's data pointer) is fresh.
func (h *HNSW) Remap(data []float32) (index.Index, bool) {
	if len(data) < h.n*h.dim {
		return nil, false
	}
	sc := h.s.Scorer.View()
	sc.Extend(data, h.n)
	h2 := &HNSW{
		cfg: h.cfg, dim: h.dim, n: h.n,
		s:      &graph.Searcher{Data: data, Dim: h.dim, Fn: h.s.Fn, Scorer: sc, Quant: h.s.Quant},
		frozen: h.frozen,
		nodeLv: h.nodeLv,
		entry:  h.entry,
		maxLv:  h.maxLv,
		ml:     h.ml,
	}
	return h2, true
}

// Search implements index.Index: greedy descent through the upper
// layers, then beam search with width p.Ef on layer 0.
func (h *HNSW) Search(q []float32, k int, p index.Params) ([]topk.Result, error) {
	if k <= 0 {
		return nil, index.ErrBadK
	}
	if len(q) != h.dim {
		return nil, fmt.Errorf("%w: query %d, index %d", index.ErrDim, len(q), h.dim)
	}
	ef := p.Ef
	if ef <= 0 {
		ef = 4 * k
		if ef < 32 {
			ef = 32
		}
	}
	kk := k
	if h.s.Quant != nil {
		// Quantized traversal: widen the candidate set to rerank_k and
		// re-score it exactly below.
		kk = h.cfg.Quant.ResolveRerankK(p, k, h.n)
		if ef < kk {
			ef = kk
		}
	}
	ep := h.entry
	for l := h.maxLv; l >= 1; l-- {
		ep, _ = graph.GreedyWalk(h.s, h.frozen[l], q, ep)
		if p.Stats != nil {
			p.Stats.GreedyHops++
		}
	}
	res := graph.BeamSearch(h.s, h.frozen[0], q, []int32{ep}, kk, ef, p)
	if h.s.Quant != nil {
		h.s.Comps.Add(int64(len(res)))
		if p.Stats != nil {
			p.Stats.DistanceComps += int64(len(res))
		}
		res = index.RerankExact(h.s.Scorer, q, res, k)
	}
	return res, nil
}

func init() {
	index.Register("hnsw", func(data []float32, n, d int, metric vec.Metric, opts map[string]int) (index.Index, error) {
		cfg := Config{Metric: metric}
		for k, v := range opts {
			if used, err := cfg.Quant.ParseOpt(k, v); err != nil {
				return nil, err
			} else if used {
				continue
			}
			switch k {
			case "m":
				cfg.M = v
			case "efc":
				cfg.EfConstruct = v
			case "seed":
				cfg.Seed = int64(v)
			case "naive":
				cfg.NaiveSelection = v != 0
			default:
				return nil, fmt.Errorf("hnsw: unknown option %q", k)
			}
		}
		return Build(data, n, d, cfg)
	})
	index.MarkQuantCapable("hnsw")
}
