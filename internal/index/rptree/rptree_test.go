package rptree

import (
	"testing"

	"vdbms/internal/bitset"
	"vdbms/internal/dataset"
	"vdbms/internal/index"
	"vdbms/internal/vec"
)

func recallOf(t *testing.T, idx index.Index, ds *dataset.Dataset, ef, k, nq int) float64 {
	t.Helper()
	qs := ds.Queries(nq, 0.05, 2)
	truth := dataset.GroundTruth(vec.SquaredL2, ds, qs, k)
	var s float64
	for i, q := range qs {
		got, err := idx.Search(q, k, index.Params{Ef: ef})
		if err != nil {
			t.Fatal(err)
		}
		s += dataset.Recall(got, truth[i])
	}
	return s / float64(nq)
}

func TestRPForestRecall(t *testing.T) {
	ds := dataset.Clustered(2000, 16, 8, 0.4, 1)
	f, err := Build(ds.Data, ds.Count, ds.Dim, Config{Mode: RP, Trees: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r := recallOf(t, f, ds, 600, 10, 15); r < 0.7 {
		t.Fatalf("rptree recall = %v", r)
	}
	if f.Name() != "rptree" {
		t.Fatal("name wrong")
	}
}

func TestAnnoyRecallAndName(t *testing.T) {
	ds := dataset.Clustered(2000, 16, 8, 0.4, 3)
	f, err := Build(ds.Data, ds.Count, ds.Dim, Config{Mode: Annoy, Trees: 8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if r := recallOf(t, f, ds, 600, 10, 15); r < 0.7 {
		t.Fatalf("annoy recall = %v", r)
	}
	if f.Name() != "annoy" {
		t.Fatal("name wrong")
	}
}

func TestMoreTreesImproveRecall(t *testing.T) {
	ds := dataset.LowRank(1500, 32, 4, 0.05, 5)
	small, err := Build(ds.Data, ds.Count, ds.Dim, Config{Mode: Annoy, Trees: 1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	big, err := Build(ds.Data, ds.Count, ds.Dim, Config{Mode: Annoy, Trees: 16, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	rs := recallOf(t, small, ds, 300, 10, 20)
	rb := recallOf(t, big, ds, 300, 10, 20)
	if rb < rs-0.02 {
		t.Fatalf("16 trees (%v) should not trail 1 tree (%v)", rb, rs)
	}
}

func TestDegenerateData(t *testing.T) {
	data := make([]float32, 64*4) // identical points
	f, err := Build(data, 64, 4, Config{Trees: 2, LeafSize: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	got, err := f.Search(make([]float32, 4), 3, index.Params{})
	if err != nil || len(got) != 3 {
		t.Fatalf("degenerate: %v %v", got, err)
	}
}

func TestPredicatesAndValidation(t *testing.T) {
	ds := dataset.Uniform(200, 8, 9)
	f, err := Build(ds.Data, 200, 8, Config{Trees: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Search(ds.Row(0), 0, index.Params{}); err != index.ErrBadK {
		t.Fatal("want ErrBadK")
	}
	if _, err := f.Search([]float32{1}, 1, index.Params{}); err == nil {
		t.Fatal("want dim error")
	}
	if _, err := Build([]float32{1}, 2, 2, Config{}); err == nil {
		t.Fatal("want shape error")
	}
	allow := bitset.New(200)
	allow.Set(1)
	got, _ := f.Search(ds.Row(1), 5, index.Params{Ef: 200, Allow: allow})
	for _, r := range got {
		if r.ID != 1 {
			t.Fatalf("blocked id %d", r.ID)
		}
	}
	f.ResetStats()
	f.Search(ds.Row(0), 5, index.Params{})
	if f.DistanceComps() == 0 || f.Size() != 200 {
		t.Fatal("stats wrong")
	}
}

func TestRegistry(t *testing.T) {
	ds := dataset.Uniform(60, 4, 11)
	for _, name := range []string{"rptree", "annoy"} {
		idx, err := index.Build(name, ds.Data, 60, 4, vec.L2, map[string]int{"trees": 2})
		if err != nil || idx.Name() != name {
			t.Fatalf("%s: %v", name, err)
		}
	}
	if _, err := index.Build("annoy", ds.Data, 60, 4, vec.L2, map[string]int{"zz": 1}); err == nil {
		t.Fatal("want unknown-option error")
	}
}
