// Package rptree implements random projection trees (Section 2.2):
// RPTree (Dasgupta & Freund) splits on random Gaussian directions at
// a randomly perturbed median, avoiding the PCA preprocessing cost of
// principal-axis trees while still adapting to intrinsic
// dimensionality; the ANNOY variant (Spotify) chooses the hyperplane
// between two random points and splits at the midpoint of projections
// of sampled points (a randomized median). Both are used as forests,
// mirroring LSH's multiple tables.
package rptree

import (
	"fmt"
	"math/rand"
	"sort"
	"sync/atomic"

	"vdbms/internal/index"
	"vdbms/internal/topk"
	"vdbms/internal/vec"
)

// Mode selects the split rule.
type Mode int

const (
	// RP uses random Gaussian directions with a perturbed-median
	// threshold (RPTree).
	RP Mode = iota
	// Annoy uses two-point hyperplanes with median thresholds.
	Annoy
)

// Config controls construction.
type Config struct {
	Mode     Mode
	Trees    int // forest size; default 8
	LeafSize int // default 16
	Seed     int64
}

type node struct {
	proj        []float32
	thresh      float32
	left, right *node
	ids         []int32
}

// Forest is the built index.
type Forest struct {
	cfg   Config
	dim   int
	n     int
	data  []float32
	roots []*node
	comps atomic.Int64
}

// Build constructs the forest.
func Build(data []float32, n, d int, cfg Config) (*Forest, error) {
	if d <= 0 || n <= 0 || len(data) < n*d {
		return nil, fmt.Errorf("rptree: bad data shape n=%d d=%d len=%d", n, d, len(data))
	}
	if cfg.Trees <= 0 {
		cfg.Trees = 8
	}
	if cfg.LeafSize <= 0 {
		cfg.LeafSize = 16
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	f := &Forest{cfg: cfg, dim: d, n: n, data: data}
	rng := rand.New(rand.NewSource(cfg.Seed))
	for t := 0; t < cfg.Trees; t++ {
		ids := make([]int32, n)
		for i := range ids {
			ids[i] = int32(i)
		}
		f.roots = append(f.roots, f.build(ids, rng, 0))
	}
	return f, nil
}

func (f *Forest) row(id int32) []float32 {
	return f.data[int(id)*f.dim : (int(id)+1)*f.dim]
}

func (f *Forest) build(ids []int32, rng *rand.Rand, depth int) *node {
	if len(ids) <= f.cfg.LeafSize || depth > 48 {
		return &node{ids: ids}
	}
	nd := &node{}
	switch f.cfg.Mode {
	case RP:
		nd.proj = gaussianDir(f.dim, rng)
	case Annoy:
		// Normal between two distinct random member points.
		a := f.row(ids[rng.Intn(len(ids))])
		var b []float32
		for try := 0; try < 8; try++ {
			b = f.row(ids[rng.Intn(len(ids))])
			if vec.SquaredL2(a, b) > 0 {
				break
			}
		}
		p := make([]float32, f.dim)
		for j := range p {
			p[j] = a[j] - b[j]
		}
		if vec.Norm(p) == 0 {
			return &node{ids: ids}
		}
		vec.Normalize(p)
		nd.proj = p
	}
	vals := make([]float32, len(ids))
	for i, id := range ids {
		vals[i] = vec.Dot(f.row(id), nd.proj)
	}
	sorted := append([]float32(nil), vals...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	switch f.cfg.Mode {
	case RP:
		// Perturbed median: a uniform quantile in [0.25, 0.75], the
		// randomized-threshold rule that gives RPTree its guarantees.
		qt := 0.25 + 0.5*rng.Float64()
		nd.thresh = sorted[int(qt*float64(len(sorted)-1))]
	case Annoy:
		nd.thresh = sorted[len(sorted)/2]
	}
	var left, right []int32
	for i, id := range ids {
		if vals[i] < nd.thresh {
			left = append(left, id)
		} else {
			right = append(right, id)
		}
	}
	if len(left) == 0 || len(right) == 0 {
		return &node{ids: ids}
	}
	nd.left = f.build(left, rng, depth+1)
	nd.right = f.build(right, rng, depth+1)
	return nd
}

func gaussianDir(d int, rng *rand.Rand) []float32 {
	p := make([]float32, d)
	for j := range p {
		p[j] = float32(rng.NormFloat64())
	}
	vec.Normalize(p)
	return p
}

// Name implements index.Index.
func (f *Forest) Name() string {
	if f.cfg.Mode == Annoy {
		return "annoy"
	}
	return "rptree"
}

// Size implements index.Index.
func (f *Forest) Size() int { return f.n }

// DistanceComps implements index.Stats.
func (f *Forest) DistanceComps() int64 { return f.comps.Load() }

// ResetStats implements index.Stats.
func (f *Forest) ResetStats() { f.comps.Store(0) }

type frontierEntry struct {
	nd    *node
	bound float32
}

// Search implements index.Index with a shared best-first frontier over
// the forest, examining up to p.Ef candidates (default max(64, 8k)) —
// the same search ANNOY performs across its trees.
func (f *Forest) Search(q []float32, k int, p index.Params) ([]topk.Result, error) {
	if k <= 0 {
		return nil, index.ErrBadK
	}
	if len(q) != f.dim {
		return nil, fmt.Errorf("%w: query %d, index %d", index.ErrDim, len(q), f.dim)
	}
	budget := p.Ef
	if budget <= 0 {
		budget = 8 * k
		if budget < 64 {
			budget = 64
		}
	}
	var pq topk.MinQueue
	var entries []frontierEntry
	push := func(nd *node, bound float32) {
		entries = append(entries, frontierEntry{nd, bound})
		pq.Push(int64(len(entries)-1), bound)
	}
	for _, root := range f.roots {
		push(root, 0)
	}
	c := topk.NewCollector(k)
	seen := make(map[int32]struct{}, budget)
	examined := 0
	comps := int64(0)
	for pq.Len() > 0 && examined < budget {
		e := entries[pq.Pop().ID]
		if c.Full() && e.bound > c.Worst() {
			continue
		}
		nd := e.nd
		for nd.ids == nil {
			margin := vec.Dot(q, nd.proj) - nd.thresh
			var near, far *node
			if margin < 0 {
				near, far = nd.left, nd.right
			} else {
				near, far = nd.right, nd.left
			}
			push(far, e.bound+margin*margin)
			nd = near
		}
		for _, id := range nd.ids {
			if _, dup := seen[id]; dup {
				continue
			}
			seen[id] = struct{}{}
			if !p.Admits(int64(id)) {
				continue
			}
			d := vec.SquaredL2(q, f.row(id))
			comps++
			examined++
			c.Push(int64(id), d)
		}
	}
	f.comps.Add(comps)
	return c.Results(), nil
}

func init() {
	for name, mode := range map[string]Mode{"rptree": RP, "annoy": Annoy} {
		m := mode
		index.Register(name, func(data []float32, n, d int, metric vec.Metric, opts map[string]int) (index.Index, error) {
			if metric != vec.L2 {
				// Hyperplane-margin bounds hold for squared L2 only.
				return nil, fmt.Errorf("rptree: metric %v not supported (l2 only)", metric)
			}
			cfg := Config{Mode: m}
			for k, v := range opts {
				switch k {
				case "trees":
					cfg.Trees = v
				case "leaf":
					cfg.LeafSize = v
				case "seed":
					cfg.Seed = int64(v)
				default:
					return nil, fmt.Errorf("rptree: unknown option %q", k)
				}
			}
			return Build(data, n, d, cfg)
		})
	}
}
