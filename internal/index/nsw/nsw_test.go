package nsw

import (
	"testing"

	"vdbms/internal/dataset"
	"vdbms/internal/index"
	"vdbms/internal/vec"
)

func TestNSWRecall(t *testing.T) {
	ds := dataset.Clustered(1500, 16, 8, 0.4, 1)
	g, err := Build(ds.Data, ds.Count, ds.Dim, Config{M: 10})
	if err != nil {
		t.Fatal(err)
	}
	qs := ds.Queries(20, 0.05, 2)
	truth := dataset.GroundTruth(vec.SquaredL2, ds, qs, 10)
	var s float64
	for i, q := range qs {
		got, err := g.Search(q, 10, index.Params{Ef: 80})
		if err != nil {
			t.Fatal(err)
		}
		s += dataset.Recall(got, truth[i])
	}
	if mean := s / 20; mean < 0.8 {
		t.Fatalf("nsw recall = %v", mean)
	}
}

func TestEfImprovesRecall(t *testing.T) {
	ds := dataset.Clustered(1500, 16, 8, 0.4, 3)
	g, err := Build(ds.Data, ds.Count, ds.Dim, Config{M: 8})
	if err != nil {
		t.Fatal(err)
	}
	qs := ds.Queries(20, 0.05, 4)
	truth := dataset.GroundTruth(vec.SquaredL2, ds, qs, 10)
	rec := func(ef int) float64 {
		var s float64
		for i, q := range qs {
			got, _ := g.Search(q, 10, index.Params{Ef: ef})
			s += dataset.Recall(got, truth[i])
		}
		return s / float64(len(qs))
	}
	lo, hi := rec(10), rec(200)
	if hi < lo {
		t.Fatalf("recall should grow with ef: %v -> %v", lo, hi)
	}
}

func TestDegreeGrowsUnbounded(t *testing.T) {
	// Flat NSW has no degree cap; mean degree ≈ 2M.
	ds := dataset.Uniform(500, 8, 5)
	g, err := Build(ds.Data, 500, 8, Config{M: 6})
	if err != nil {
		t.Fatal(err)
	}
	if d := g.AvgDegree(); d < 6 {
		t.Fatalf("avg degree = %v, want >= M", d)
	}
}

func TestValidationAndStats(t *testing.T) {
	if _, err := Build([]float32{1}, 2, 2, Config{}); err == nil {
		t.Fatal("want shape error")
	}
	ds := dataset.Uniform(60, 4, 7)
	g, _ := Build(ds.Data, 60, 4, Config{M: 4})
	if _, err := g.Search(ds.Row(0), 0, index.Params{}); err != index.ErrBadK {
		t.Fatal("want ErrBadK")
	}
	if _, err := g.Search([]float32{1}, 1, index.Params{}); err == nil {
		t.Fatal("want dim error")
	}
	g.ResetStats()
	g.Search(ds.Row(0), 3, index.Params{})
	if g.DistanceComps() == 0 || g.Size() != 60 || g.Name() != "nsw" {
		t.Fatal("metadata wrong")
	}
}

func TestSingleNode(t *testing.T) {
	g, err := Build([]float32{1, 2}, 1, 2, Config{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := g.Search([]float32{0, 0}, 3, index.Params{})
	if err != nil || len(got) != 1 || got[0].ID != 0 {
		t.Fatalf("single node search: %v %v", got, err)
	}
}

func TestRegistry(t *testing.T) {
	ds := dataset.Uniform(50, 4, 9)
	idx, err := index.Build("nsw", ds.Data, 50, 4, vec.L2, map[string]int{"m": 4, "efc": 16})
	if err != nil || idx.Name() != "nsw" {
		t.Fatalf("%v", err)
	}
	if _, err := index.Build("nsw", ds.Data, 50, 4, vec.L2, map[string]int{"zz": 1}); err == nil {
		t.Fatal("want unknown-option error")
	}
}
