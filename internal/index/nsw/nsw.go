// Package nsw implements the navigable small world graph of Malkov et
// al. (Section 2.2(3)): nodes are inserted one at a time and connected
// to their k nearest neighbors among previously inserted nodes.
// Early-inserted long-range edges make the flat graph navigable; the
// hierarchical refinement lives in the sibling hnsw package.
package nsw

import (
	"fmt"
	"sync/atomic"

	"vdbms/internal/index"
	"vdbms/internal/index/graph"
	"vdbms/internal/topk"
	"vdbms/internal/vec"
)

// Config controls construction.
type Config struct {
	M           int // edges added per insertion; default 12
	EfConstruct int // beam width during insertion; default 4*M
	Seed        int64
	// Metric is the distance the graph is built and searched under.
	Metric vec.Metric
}

// NSW is the built index.
type NSW struct {
	cfg Config
	dim int
	n   int
	s   *graph.Searcher
	adj graph.Adjacency // construction-time mutable adjacency
	// frozen is the serving adjacency, slab-packed after construction.
	frozen graph.Neighborhoods
	comps  atomic.Int64
}

// Build inserts all vectors in order.
func Build(data []float32, n, d int, cfg Config) (*NSW, error) {
	if d <= 0 || n <= 0 || len(data) < n*d {
		return nil, fmt.Errorf("nsw: bad data shape n=%d d=%d len=%d", n, d, len(data))
	}
	if cfg.M <= 0 {
		cfg.M = 12
	}
	if cfg.EfConstruct <= 0 {
		cfg.EfConstruct = 4 * cfg.M
	}
	sc, err := vec.NewScorer(cfg.Metric, data, n, d)
	if err != nil {
		return nil, fmt.Errorf("nsw: %w", err)
	}
	g := &NSW{cfg: cfg, dim: d, n: n,
		s:   &graph.Searcher{Data: data, Dim: d, Fn: vec.Distance(cfg.Metric), Scorer: sc},
		adj: make(graph.Adjacency, n),
	}
	for id := 1; id < n; id++ {
		q := g.s.Row(int32(id))
		found := graph.BeamSearch(g.s, g.adj[:id], q, []int32{0}, cfg.M, cfg.EfConstruct, index.Params{})
		for _, r := range found {
			nb := int32(r.ID)
			g.adj[id] = append(g.adj[id], nb)
			g.adj[nb] = append(g.adj[nb], int32(id)) // undirected
		}
	}
	g.frozen = graph.Freeze(g.adj)
	g.adj = nil // construction slices die here; serving uses the slab
	return g, nil
}

// Name implements index.Index.
func (g *NSW) Name() string { return "nsw" }

// Size implements index.Index.
func (g *NSW) Size() int { return g.n }

// DistanceComps implements index.Stats.
func (g *NSW) DistanceComps() int64 { return g.comps.Load() + g.s.Comps.Load() }

// ResetStats implements index.Stats.
func (g *NSW) ResetStats() { g.comps.Store(0); g.s.Comps.Store(0) }

// AvgDegree reports mean degree (flat NSW exhibits the degree
// explosion HNSW's layering avoids; E6 reports it).
func (g *NSW) AvgDegree() float64 { return graph.AvgDegree(g.frozen) }

// MemoryBytes implements index.MemoryFootprint.
func (g *NSW) MemoryBytes() (structure, codes int64) {
	return int64(graph.NeighborhoodBytes(g.frozen)), 0
}

// Remap implements index.Remappable: a shallow clone searching data
// instead of the column the index was built over.
func (g *NSW) Remap(data []float32) (index.Index, bool) {
	if len(data) < g.n*g.dim {
		return nil, false
	}
	sc := g.s.Scorer.View()
	sc.Extend(data, g.n)
	g2 := &NSW{
		cfg: g.cfg, dim: g.dim, n: g.n,
		s:      &graph.Searcher{Data: data, Dim: g.dim, Fn: g.s.Fn, Scorer: sc},
		frozen: g.frozen,
	}
	return g2, true
}

// Search implements index.Index: beam search from node 0 (the oldest
// node, whose early long-range edges serve as the entry hub).
func (g *NSW) Search(q []float32, k int, p index.Params) ([]topk.Result, error) {
	if k <= 0 {
		return nil, index.ErrBadK
	}
	if len(q) != g.dim {
		return nil, fmt.Errorf("%w: query %d, index %d", index.ErrDim, len(q), g.dim)
	}
	ef := p.Ef
	if ef <= 0 {
		ef = 4 * k
		if ef < 32 {
			ef = 32
		}
	}
	return graph.BeamSearch(g.s, g.frozen, q, []int32{0}, k, ef, p), nil
}

func init() {
	index.Register("nsw", func(data []float32, n, d int, metric vec.Metric, opts map[string]int) (index.Index, error) {
		cfg := Config{Metric: metric}
		for k, v := range opts {
			switch k {
			case "m":
				cfg.M = v
			case "efc":
				cfg.EfConstruct = v
			case "seed":
				cfg.Seed = int64(v)
			default:
				return nil, fmt.Errorf("nsw: unknown option %q", k)
			}
		}
		return Build(data, n, d, cfg)
	})
}
