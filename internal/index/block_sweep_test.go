package index

import (
	"math"
	"testing"

	"vdbms/internal/dataset"
	"vdbms/internal/topk"
	"vdbms/internal/vec"
)

// blockSizes is the sweep the acceptance criteria name: a degenerate
// one-row block, a prime that misaligns every boundary, the typical
// cache-sized block, and one larger than most partitions.
var blockSizes = []int{1, 7, 64, 1024}

func setScanBlock(t *testing.T, bs int) {
	t.Helper()
	old := scanBlock
	scanBlock = bs
	t.Cleanup(func() { scanBlock = old })
}

// TestFlatBlockSweep: for metrics whose kernels reproduce the scalar
// accumulation order (L2, inner product, Hamming), the block-scored
// flat scan must return byte-identical results to a per-row scalar
// baseline at every block size and worker count, with and without a
// predicate. The baseline wraps the canonical function in a closure so
// MetricOf cannot recognize it and Flat falls back to row-at-a-time
// scoring.
func TestFlatBlockSweep(t *testing.T) {
	ds := dataset.Clustered(3000, 16, 5, 0.05, 3)
	metrics := []struct {
		name string
		fn   vec.DistanceFunc
	}{
		{"l2", vec.SquaredL2},
		{"ip", vec.NegInnerProduct},
		{"hamming", vec.HammingDistance},
	}
	qs := ds.Queries(4, 0.05, 7)
	pred := func(id int64) bool { return id%3 != 0 }
	for _, m := range metrics {
		m := m
		t.Run(m.name, func(t *testing.T) {
			scalar := m.fn
			baseline, err := NewFlat(ds.Data, ds.Count, ds.Dim,
				func(a, b []float32) float32 { return scalar(a, b) })
			if err != nil {
				t.Fatal(err)
			}
			fast, err := NewFlat(ds.Data, ds.Count, ds.Dim, m.fn)
			if err != nil {
				t.Fatal(err)
			}
			for _, q := range qs {
				want, err := baseline.Search(q, 10, Params{Parallelism: 1})
				if err != nil {
					t.Fatal(err)
				}
				wantPred, err := baseline.Search(q, 10, Params{Parallelism: 1, Filter: pred})
				if err != nil {
					t.Fatal(err)
				}
				for _, bs := range blockSizes {
					setScanBlock(t, bs)
					for _, w := range []int{1, 4} {
						got, err := fast.Search(q, 10, Params{Parallelism: w})
						if err != nil {
							t.Fatal(err)
						}
						sameResults(t, m.name, want, got)
						got, err = fast.Search(q, 10, Params{Parallelism: w, Filter: pred})
						if err != nil {
							t.Fatal(err)
						}
						sameResults(t, m.name+"/pred", wantPred, got)
					}
				}
			}
		})
	}
}

// TestFlatCosineBlockSweep: cosine scores through cached inverse norms,
// a reformulation of the scalar 1 - dot/(na*nb), so the contract is
// 1e-5 relative agreement with the scalar baseline — but across block
// sizes and worker counts the scorer path must agree with itself
// byte-for-byte.
func TestFlatCosineBlockSweep(t *testing.T) {
	ds := dataset.Clustered(3000, 16, 5, 0.3, 5)
	baseline, err := NewFlat(ds.Data, ds.Count, ds.Dim,
		func(a, b []float32) float32 { return vec.CosineDistance(a, b) })
	if err != nil {
		t.Fatal(err)
	}
	fast, err := NewFlat(ds.Data, ds.Count, ds.Dim, vec.CosineDistance)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range ds.Queries(4, 0.05, 9) {
		// All rows returned, so near-tie rank swaps cannot change the
		// result set; distances are compared by id.
		want, err := baseline.Search(q, ds.Count, Params{Parallelism: 1})
		if err != nil {
			t.Fatal(err)
		}
		byID := make(map[int64]float32, len(want))
		for _, r := range want {
			byID[r.ID] = r.Dist
		}
		var ref []topk.Result
		for _, bs := range blockSizes {
			setScanBlock(t, bs)
			for _, w := range []int{1, 4} {
				got, err := fast.Search(q, ds.Count, Params{Parallelism: w})
				if err != nil {
					t.Fatal(err)
				}
				if ref == nil {
					ref = got
					if len(got) != len(want) {
						t.Fatalf("cosine: %d results, scalar %d", len(got), len(want))
					}
					for _, r := range got {
						wd := float64(byID[r.ID])
						gd := float64(r.Dist)
						tol := 1e-5 * math.Max(1, math.Max(math.Abs(wd), math.Abs(gd)))
						if math.Abs(wd-gd) > tol {
							t.Fatalf("cosine id %d: scorer %v scalar %v", r.ID, gd, wd)
						}
					}
					continue
				}
				sameResults(t, "cosine/self", ref, got)
			}
		}
	}
}

// TestFlatSearchRangeParallel: the partitioned range scan must return
// the same hits as the serial scan, in ascending id order, at every
// worker count and block size.
func TestFlatSearchRangeParallel(t *testing.T) {
	ds := dataset.Clustered(5000, 12, 4, 0.2, 11)
	f, err := NewFlat(ds.Data, ds.Count, ds.Dim, nil)
	if err != nil {
		t.Fatal(err)
	}
	pred := func(id int64) bool { return id%2 == 0 }
	for _, q := range ds.Queries(4, 0.1, 13) {
		// Pick a radius that admits a few percent of rows.
		probe, err := f.Search(q, 50, Params{Parallelism: 1})
		if err != nil {
			t.Fatal(err)
		}
		radius := probe[len(probe)-1].Dist
		serial, err := f.SearchRange(q, radius, Params{Parallelism: 1})
		if err != nil {
			t.Fatal(err)
		}
		serialPred, err := f.SearchRange(q, radius, Params{Parallelism: 1, Filter: pred})
		if err != nil {
			t.Fatal(err)
		}
		if len(serial) == 0 {
			t.Fatal("radius admitted no rows; bad test setup")
		}
		for i := 1; i < len(serial); i++ {
			if serial[i].ID <= serial[i-1].ID {
				t.Fatalf("serial range results not ascending at %d", i)
			}
		}
		for _, bs := range blockSizes {
			setScanBlock(t, bs)
			for _, w := range workerCounts() {
				got, err := f.SearchRange(q, radius, Params{Parallelism: w})
				if err != nil {
					t.Fatal(err)
				}
				sameResults(t, "range", serial, got)
				got, err = f.SearchRange(q, radius, Params{Parallelism: w, Filter: pred})
				if err != nil {
					t.Fatal(err)
				}
				sameResults(t, "range/pred", serialPred, got)
			}
		}
	}
}
