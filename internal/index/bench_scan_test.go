package index

import (
	"testing"

	"vdbms/internal/dataset"
	"vdbms/internal/vec"
)

// BenchmarkFlatScan compares the per-row DistanceFunc scan against the
// block-kernel scorer scan at the acceptance scale (100k x 128-d),
// serial, for each metric with a specialized kernel. The perrow
// baseline wraps the canonical function in a closure so MetricOf
// cannot recognize it and Flat falls back to row-at-a-time scoring —
// exactly the dispatch every scan paid before the scoring engine.
func BenchmarkFlatScan(b *testing.B) {
	ds := dataset.Uniform(100_000, 128, 1)
	q := ds.Queries(1, 0.1, 2)[0]
	rows := float64(ds.Count)
	metrics := []struct {
		name string
		fn   vec.DistanceFunc
	}{
		{"l2", vec.SquaredL2},
		{"ip", vec.NegInnerProduct},
		{"cosine", vec.CosineDistance},
	}
	for _, m := range metrics {
		scalar := m.fn
		perrow, err := NewFlat(ds.Data, ds.Count, ds.Dim,
			func(a, c []float32) float32 { return scalar(a, c) })
		if err != nil {
			b.Fatal(err)
		}
		scorer, err := NewFlat(ds.Data, ds.Count, ds.Dim, m.fn)
		if err != nil {
			b.Fatal(err)
		}
		for _, v := range []struct {
			name string
			f    *Flat
		}{{"perrow", perrow}, {"scorer", scorer}} {
			b.Run(m.name+"/"+v.name, func(b *testing.B) {
				b.SetBytes(int64(ds.Count) * int64(ds.Dim) * 4)
				for i := 0; i < b.N; i++ {
					if _, err := v.f.Search(q, 10, Params{Parallelism: 1}); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(rows*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
			})
		}
	}
}
