package index

import (
	"testing"

	"vdbms/internal/dataset"
	"vdbms/internal/quant"
	"vdbms/internal/vec"
)

// BenchmarkFlatScan compares the per-row DistanceFunc scan against the
// block-kernel scorer scan at the acceptance scale (100k x 128-d),
// serial, for each metric with a specialized kernel. The perrow
// baseline wraps the canonical function in a closure so MetricOf
// cannot recognize it and Flat falls back to row-at-a-time scoring —
// exactly the dispatch every scan paid before the scoring engine.
func BenchmarkFlatScan(b *testing.B) {
	ds := dataset.Uniform(100_000, 128, 1)
	q := ds.Queries(1, 0.1, 2)[0]
	rows := float64(ds.Count)
	metrics := []struct {
		name string
		fn   vec.DistanceFunc
	}{
		{"l2", vec.SquaredL2},
		{"ip", vec.NegInnerProduct},
		{"cosine", vec.CosineDistance},
	}
	for _, m := range metrics {
		scalar := m.fn
		perrow, err := NewFlat(ds.Data, ds.Count, ds.Dim,
			func(a, c []float32) float32 { return scalar(a, c) })
		if err != nil {
			b.Fatal(err)
		}
		scorer, err := NewFlat(ds.Data, ds.Count, ds.Dim, m.fn)
		if err != nil {
			b.Fatal(err)
		}
		for _, v := range []struct {
			name string
			f    *Flat
		}{{"perrow", perrow}, {"scorer", scorer}} {
			b.Run(m.name+"/"+v.name, func(b *testing.B) {
				b.SetBytes(int64(ds.Count) * int64(ds.Dim) * 4)
				for i := 0; i < b.N; i++ {
					if _, err := v.f.Search(q, 10, Params{Parallelism: 1}); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(rows*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
			})
		}
	}
}

// BenchmarkQuantScan is the quantization-fused counterpart of
// BenchmarkFlatScan at the same acceptance scale (100k x 128-d,
// serial): the float32 block scan vs the sq8 LUT scan and the pq/opq
// 4-bit fast-scan ADC kernels, each with exact re-rank of the top 100
// candidates. Alongside rows/s every variant reports its measured
// recall@10 against the float32 ground truth and its scoring-payload
// compression ratio, so BENCH_scan.json carries the recall-vs-speed
// frontier, not just throughput. PQ/OPQ codebooks train on a 20k
// subsample to keep the setup cost bounded; encoding covers all rows.
func BenchmarkQuantScan(b *testing.B) {
	const (
		k       = 10
		rerankK = 100
		train   = 20_000
	)
	ds := dataset.Uniform(100_000, 128, 1)
	qs := ds.Queries(8, 0.1, 3)
	truth := dataset.GroundTruth(vec.SquaredL2, ds, qs, k)
	rows := float64(ds.Count)

	sc, err := vec.NewScorer(vec.L2, ds.Data, ds.Count, ds.Dim)
	if err != nil {
		b.Fatal(err)
	}
	newQuantFlat := func(qsc vec.QuantScorer, spec QuantSpec) *Flat {
		return &Flat{dim: ds.Dim, n: ds.Count, sc: sc, qsc: qsc, spec: spec}
	}
	spec := QuantSpec{RerankK: rerankK}
	pqCfg := quant.PQConfig{M: 8, Ks: 16, Seed: 1, MaxIter: 10}
	sub := ds.Data[:train*ds.Dim]

	variants := make([]struct {
		name string
		f    *Flat
	}, 0, 4)
	float32Flat, err := NewFlatQuant(ds.Data, ds.Count, ds.Dim, vec.L2, QuantSpec{})
	if err != nil {
		b.Fatal(err)
	}
	variants = append(variants, struct {
		name string
		f    *Flat
	}{"float32", float32Flat})

	sq8Spec := spec
	sq8Spec.Kind = QuantSQ8
	sq8Kernel, err := BuildQuantKernel(sq8Spec, vec.L2, ds.Data, ds.Count, ds.Dim)
	if err != nil {
		b.Fatal(err)
	}
	variants = append(variants, struct {
		name string
		f    *Flat
	}{"sq8", newQuantFlat(sq8Kernel, sq8Spec)})

	pq, err := quant.TrainPQ(sub, train, ds.Dim, pqCfg)
	if err != nil {
		b.Fatal(err)
	}
	pqKernel, err := quant.NewPQScorer(pq, ds.Data, ds.Count)
	if err != nil {
		b.Fatal(err)
	}
	pqSpec := spec
	pqSpec.Kind = QuantPQ
	variants = append(variants, struct {
		name string
		f    *Flat
	}{"pq", newQuantFlat(pqKernel, pqSpec)})

	o, err := quant.TrainOPQ(sub, train, ds.Dim, quant.OPQConfig{PQConfig: pqCfg, Iters: 3})
	if err != nil {
		b.Fatal(err)
	}
	opqKernel, err := quant.NewOPQScorer(o, ds.Data, ds.Count)
	if err != nil {
		b.Fatal(err)
	}
	opqSpec := spec
	opqSpec.Kind = QuantOPQ
	variants = append(variants, struct {
		name string
		f    *Flat
	}{"opq", newQuantFlat(opqKernel, opqSpec)})

	for _, v := range variants {
		// Recall and compression are properties of the variant, not the
		// iteration count: measure once outside the timed loop.
		var recall float64
		for i, q := range qs {
			res, err := v.f.Search(q, k, Params{Parallelism: 1})
			if err != nil {
				b.Fatal(err)
			}
			recall += dataset.Recall(res, truth[i])
		}
		recall /= float64(len(qs))
		ratio := 1.0
		if v.f.qsc != nil {
			ratio = float64(ds.Dim*4) / float64(v.f.qsc.BytesPerRow())
		}
		b.Run(v.name, func(b *testing.B) {
			bytesPerRow := ds.Dim * 4
			if v.f.qsc != nil {
				bytesPerRow = v.f.qsc.BytesPerRow()
			}
			b.SetBytes(int64(ds.Count) * int64(bytesPerRow))
			q := qs[0]
			for i := 0; i < b.N; i++ {
				if _, err := v.f.Search(q, k, Params{Parallelism: 1}); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(rows*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
			b.ReportMetric(recall, "recall@10")
			b.ReportMetric(ratio, "x_compression")
		})
	}
}
