// Package spectral implements spectral hashing (Weiss, Torralba &
// Fergus), the learning-to-hash technique of Section 2.2(2): bits are
// the thresholded eigenfunctions of the data's graph Laplacian, which
// for a uniform-on-a-box approximation reduce to sinusoids along the
// principal axes. Unlike LSH's random projections, the partitioning
// is *learned* from the data's PCA structure — and therefore, as the
// paper notes for all L2H methods, data dependent and weak on
// out-of-distribution updates (exercised in the tests).
package spectral

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"

	"vdbms/internal/index"
	"vdbms/internal/matrix"
	"vdbms/internal/topk"
	"vdbms/internal/vec"
)

// Config controls construction.
type Config struct {
	// Bits is the hash width (and bucket-key size); default 12,
	// maximum 30.
	Bits int
	// PCADims bounds how many principal axes are considered; default
	// min(d, Bits).
	PCADims int
}

// Index is the built table.
type Index struct {
	cfg    Config
	dim    int
	n      int
	data   []float32
	axes   *matrix.Dense // PCADims x dim principal axes
	mean   []float64
	mins   []float64 // per-axis projection min
	ranges []float64 // per-axis projection range
	// funcs lists the selected (axis, mode) eigenfunction pairs, one
	// per bit, ordered by analytic eigenvalue.
	funcs []eigenFn
	table map[uint32][]int32
	comps atomic.Int64
}

type eigenFn struct {
	axis int
	mode int // sinusoid frequency k >= 1
}

// Build learns the hash from the data and populates the table.
func Build(data []float32, n, d int, cfg Config) (*Index, error) {
	if d <= 0 || n <= 0 || len(data) < n*d {
		return nil, fmt.Errorf("spectral: bad data shape n=%d d=%d len=%d", n, d, len(data))
	}
	if cfg.Bits <= 0 {
		cfg.Bits = 12
	}
	if cfg.Bits > 30 {
		return nil, fmt.Errorf("spectral: Bits=%d exceeds 30", cfg.Bits)
	}
	if cfg.PCADims <= 0 || cfg.PCADims > d {
		cfg.PCADims = d
	}
	if cfg.PCADims > cfg.Bits {
		cfg.PCADims = cfg.Bits
	}
	s := &Index{cfg: cfg, dim: d, n: n, data: data}
	s.axes, s.mean = matrix.PCA(data, n, d, cfg.PCADims)

	// Project all points to find per-axis extents.
	s.mins = make([]float64, cfg.PCADims)
	s.ranges = make([]float64, cfg.PCADims)
	maxs := make([]float64, cfg.PCADims)
	for i := range s.mins {
		s.mins[i] = math.Inf(1)
		maxs[i] = math.Inf(-1)
	}
	proj := make([]float64, cfg.PCADims)
	for i := 0; i < n; i++ {
		s.project(data[i*d:(i+1)*d], proj)
		for a, p := range proj {
			if p < s.mins[a] {
				s.mins[a] = p
			}
			if p > maxs[a] {
				maxs[a] = p
			}
		}
	}
	for a := range s.ranges {
		s.ranges[a] = maxs[a] - s.mins[a]
		if s.ranges[a] <= 0 {
			s.ranges[a] = 1 // constant axis: bit will be constant too
		}
	}

	// Enumerate candidate eigenfunctions and keep the Bits smallest
	// analytic eigenvalues lambda = (k*pi/range)^2.
	type cand struct {
		fn     eigenFn
		lambda float64
	}
	var cands []cand
	maxMode := cfg.Bits // enough modes per axis to fill the budget
	for a := 0; a < cfg.PCADims; a++ {
		for k := 1; k <= maxMode; k++ {
			lam := math.Pow(float64(k)*math.Pi/s.ranges[a], 2)
			cands = append(cands, cand{eigenFn{axis: a, mode: k}, lam})
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].lambda < cands[j].lambda })
	s.funcs = make([]eigenFn, cfg.Bits)
	for b := 0; b < cfg.Bits; b++ {
		s.funcs[b] = cands[b].fn
	}

	// Populate buckets.
	s.table = make(map[uint32][]int32)
	for i := 0; i < n; i++ {
		key := s.hash(data[i*d : (i+1)*d])
		s.table[key] = append(s.table[key], int32(i))
	}
	return s, nil
}

// project computes centered PCA coordinates of v into out.
func (s *Index) project(v []float32, out []float64) {
	for a := 0; a < s.cfg.PCADims; a++ {
		row := s.axes.Row(a)
		var p float64
		for j, x := range v {
			p += row[j] * (float64(x) - s.mean[j])
		}
		out[a] = p
	}
}

// hash evaluates the eigenfunction signs.
func (s *Index) hash(v []float32) uint32 {
	proj := make([]float64, s.cfg.PCADims)
	s.project(v, proj)
	var key uint32
	for b, fn := range s.funcs {
		t := (proj[fn.axis] - s.mins[fn.axis]) / s.ranges[fn.axis] // [0,1] on train data
		val := math.Sin(math.Pi/2 + float64(fn.mode)*math.Pi*t)
		if val >= 0 {
			key |= 1 << uint(b)
		}
	}
	return key
}

// Name implements index.Index.
func (s *Index) Name() string { return "spectral" }

// Size implements index.Index.
func (s *Index) Size() int { return s.n }

// DistanceComps implements index.Stats.
func (s *Index) DistanceComps() int64 { return s.comps.Load() }

// ResetStats implements index.Stats.
func (s *Index) ResetStats() { s.comps.Store(0) }

// Buckets returns the number of non-empty buckets (diagnostic).
func (s *Index) Buckets() int { return len(s.table) }

// Search implements index.Index with multi-probe lookup: buckets are
// visited in increasing Hamming distance from the query's hash until
// at least p.Ef candidates (default 8k, floor 64) are re-ranked.
func (s *Index) Search(q []float32, k int, p index.Params) ([]topk.Result, error) {
	if k <= 0 {
		return nil, index.ErrBadK
	}
	if len(q) != s.dim {
		return nil, fmt.Errorf("%w: query %d, index %d", index.ErrDim, len(q), s.dim)
	}
	budget := p.Ef
	if budget <= 0 {
		budget = 8 * k
		if budget < 64 {
			budget = 64
		}
	}
	key := s.hash(q)
	c := topk.NewCollector(k)
	examined := 0
	comps := int64(0)
	scan := func(bucket uint32) {
		for _, id := range s.table[bucket] {
			if !p.Admits(int64(id)) {
				continue
			}
			d := vec.SquaredL2(q, s.data[int(id)*s.dim:(int(id)+1)*s.dim])
			comps++
			examined++
			c.Push(int64(id), d)
		}
	}
	// Radius 0, then 1, then 2 (pairs of flipped bits).
	scan(key)
	bits := s.cfg.Bits
	if examined < budget {
		for b := 0; b < bits && examined < budget; b++ {
			scan(key ^ (1 << uint(b)))
		}
	}
	if examined < budget {
		for b1 := 0; b1 < bits && examined < budget; b1++ {
			for b2 := b1 + 1; b2 < bits && examined < budget; b2++ {
				scan(key ^ (1 << uint(b1)) ^ (1 << uint(b2)))
			}
		}
	}
	s.comps.Add(comps)
	return c.Results(), nil
}

func init() {
	index.Register("spectral", func(data []float32, n, d int, metric vec.Metric, opts map[string]int) (index.Index, error) {
		if metric != vec.L2 {
			// PCA-threshold buckets and the re-rank scan assume squared L2.
			return nil, fmt.Errorf("spectral: metric %v not supported (l2 only)", metric)
		}
		cfg := Config{}
		for k, v := range opts {
			switch k {
			case "bits":
				cfg.Bits = v
			case "pcadims":
				cfg.PCADims = v
			default:
				return nil, fmt.Errorf("spectral: unknown option %q", k)
			}
		}
		return Build(data, n, d, cfg)
	})
}
