package spectral

import (
	"testing"

	"vdbms/internal/dataset"
	"vdbms/internal/index"
	"vdbms/internal/vec"
)

func meanRecall(t *testing.T, s *Index, ds *dataset.Dataset, ef, k, nq int) float64 {
	t.Helper()
	qs := ds.Queries(nq, 0.05, 2)
	truth := dataset.GroundTruth(vec.SquaredL2, ds, qs, k)
	var sum float64
	for i, q := range qs {
		got, err := s.Search(q, k, index.Params{Ef: ef})
		if err != nil {
			t.Fatal(err)
		}
		sum += dataset.Recall(got, truth[i])
	}
	return sum / float64(nq)
}

func TestSpectralRecallOnStructuredData(t *testing.T) {
	ds := dataset.LowRank(2000, 32, 4, 0.05, 1)
	s, err := Build(ds.Data, ds.Count, ds.Dim, Config{Bits: 12})
	if err != nil {
		t.Fatal(err)
	}
	if s.Buckets() < 8 {
		t.Fatalf("degenerate hash: %d buckets", s.Buckets())
	}
	if r := meanRecall(t, s, ds, 600, 10, 20); r < 0.7 {
		t.Fatalf("spectral recall = %v", r)
	}
}

func TestBudgetImprovesRecall(t *testing.T) {
	ds := dataset.Clustered(2000, 16, 8, 0.4, 3)
	s, err := Build(ds.Data, ds.Count, ds.Dim, Config{Bits: 14})
	if err != nil {
		t.Fatal(err)
	}
	lo := meanRecall(t, s, ds, 64, 10, 15)
	hi := meanRecall(t, s, ds, 1000, 10, 15)
	if hi < lo {
		t.Fatalf("recall should grow with probe budget: %v -> %v", lo, hi)
	}
}

func TestDataDependenceOnOutOfDistribution(t *testing.T) {
	// The paper's caveat for L2H: learned partitions degrade on
	// out-of-distribution points. A query far outside the training
	// box hashes to an arbitrary bucket, but multi-probe still finds
	// its true nearest neighbors only with a big budget. We assert the
	// weaker, always-true property: in-distribution recall exceeds
	// out-of-distribution recall at the same tight budget.
	ds := dataset.Clustered(2000, 16, 8, 0.4, 5)
	s, err := Build(ds.Data, ds.Count, ds.Dim, Config{Bits: 14})
	if err != nil {
		t.Fatal(err)
	}
	inQ := ds.Queries(15, 0.05, 6)
	outQ := make([][]float32, 15)
	for i := range outQ {
		q := append([]float32(nil), inQ[i]...)
		for j := range q {
			q[j] += 50 // far outside the training distribution
		}
		outQ[i] = q
	}
	inTruth := dataset.GroundTruth(vec.SquaredL2, ds, inQ, 10)
	outTruth := dataset.GroundTruth(vec.SquaredL2, ds, outQ, 10)
	var inRec, outRec float64
	for i := range inQ {
		got, _ := s.Search(inQ[i], 10, index.Params{Ef: 128})
		inRec += dataset.Recall(got, inTruth[i])
		got, _ = s.Search(outQ[i], 10, index.Params{Ef: 128})
		outRec += dataset.Recall(got, outTruth[i])
	}
	if inRec < outRec {
		t.Fatalf("in-distribution recall %v should not trail OOD %v", inRec/15, outRec/15)
	}
}

func TestValidationAndRegistry(t *testing.T) {
	if _, err := Build([]float32{1}, 2, 2, Config{}); err == nil {
		t.Fatal("want shape error")
	}
	if _, err := Build(make([]float32, 8), 4, 2, Config{Bits: 31}); err == nil {
		t.Fatal("want bits error")
	}
	ds := dataset.Uniform(100, 4, 7)
	s, err := Build(ds.Data, 100, 4, Config{Bits: 8})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Search(ds.Row(0), 0, index.Params{}); err != index.ErrBadK {
		t.Fatal("want ErrBadK")
	}
	if _, err := s.Search([]float32{1}, 1, index.Params{}); err == nil {
		t.Fatal("want dim error")
	}
	s.ResetStats()
	s.Search(ds.Row(0), 3, index.Params{})
	if s.DistanceComps() == 0 || s.Size() != 100 || s.Name() != "spectral" {
		t.Fatal("metadata wrong")
	}
	idx, err := index.Build("spectral", ds.Data, 100, 4, vec.L2, map[string]int{"bits": 8, "pcadims": 4})
	if err != nil || idx.Name() != "spectral" {
		t.Fatalf("registry: %v", err)
	}
	if _, err := index.Build("spectral", ds.Data, 100, 4, vec.L2, map[string]int{"zz": 1}); err == nil {
		t.Fatal("want unknown-option error")
	}
}

func TestPredicates(t *testing.T) {
	ds := dataset.Uniform(300, 8, 9)
	s, err := Build(ds.Data, 300, 8, Config{Bits: 10})
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Search(ds.Row(0), 10, index.Params{Ef: 300, Filter: func(id int64) bool { return id%2 == 0 }})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range got {
		if r.ID%2 != 0 {
			t.Fatalf("filter violated: %d", r.ID)
		}
	}
}

func TestConstantDataDegenerate(t *testing.T) {
	data := make([]float32, 64*4)
	s, err := Build(data, 64, 4, Config{Bits: 6})
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Search(make([]float32, 4), 3, index.Params{})
	if err != nil || len(got) != 3 {
		t.Fatalf("degenerate: %v %v", got, err)
	}
}
