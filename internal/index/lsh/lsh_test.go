package lsh

import (
	"testing"

	"vdbms/internal/bitset"
	"vdbms/internal/dataset"
	"vdbms/internal/index"
	"vdbms/internal/vec"
)

func TestBuildValidation(t *testing.T) {
	if _, err := Build([]float32{1}, 2, 2, Config{}); err == nil {
		t.Fatal("want shape error")
	}
}

func TestPStableRecallBeatsRandom(t *testing.T) {
	ds := dataset.Clustered(2000, 16, 8, 0.3, 1)
	l, err := Build(ds.Data, ds.Count, ds.Dim, Config{L: 12, K: 6, Family: PStable, W: 8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	qs := ds.Queries(20, 0.05, 2)
	truth := dataset.GroundTruth(vec.SquaredL2, ds, qs, 10)
	var rsum float64
	for i, q := range qs {
		got, err := l.Search(q, 10, index.Params{})
		if err != nil {
			t.Fatal(err)
		}
		rsum += dataset.Recall(got, truth[i])
	}
	if mean := rsum / 20; mean < 0.5 {
		t.Fatalf("p-stable recall = %v, want >= 0.5", mean)
	}
	if l.DistanceComps() == 0 {
		t.Fatal("stats not counted")
	}
}

func TestMoreTablesImproveRecall(t *testing.T) {
	ds := dataset.Clustered(2000, 16, 8, 0.3, 5)
	l, err := Build(ds.Data, ds.Count, ds.Dim, Config{L: 16, K: 8, Family: PStable, W: 6, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	qs := ds.Queries(25, 0.05, 6)
	truth := dataset.GroundTruth(vec.SquaredL2, ds, qs, 10)
	recallAt := func(tables int) float64 {
		var s float64
		for i, q := range qs {
			got, _ := l.Search(q, 10, index.Params{NProbe: tables})
			s += dataset.Recall(got, truth[i])
		}
		return s / float64(len(qs))
	}
	lo, hi := recallAt(1), recallAt(16)
	if hi < lo {
		t.Fatalf("more tables should not hurt recall: L=1 %v, L=16 %v", lo, hi)
	}
	// Candidate cost must grow with tables.
	q := qs[0]
	if l.CandidateCount(q, 16) < l.CandidateCount(q, 1) {
		t.Fatal("candidates must grow with probed tables")
	}
}

func TestLargerKShrinksBuckets(t *testing.T) {
	ds := dataset.Clustered(1500, 16, 6, 0.4, 9)
	loose, err := Build(ds.Data, ds.Count, ds.Dim, Config{L: 4, K: 2, Family: PStable, W: 6, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	sharp, err := Build(ds.Data, ds.Count, ds.Dim, Config{L: 4, K: 16, Family: PStable, W: 6, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	qs := ds.Queries(10, 0.05, 12)
	var looseCands, sharpCands int
	for _, q := range qs {
		looseCands += loose.CandidateCount(q, 0)
		sharpCands += sharp.CandidateCount(q, 0)
	}
	if sharpCands >= looseCands {
		t.Fatalf("K=16 should produce fewer candidates than K=2: %d vs %d", sharpCands, looseCands)
	}
}

func TestHyperplaneAngularSearch(t *testing.T) {
	// Unit-norm data; hyperplane LSH targets angular similarity.
	ds := dataset.Clustered(1000, 8, 5, 0.2, 13)
	for i := 0; i < ds.Count; i++ {
		vec.Normalize(ds.Row(i))
	}
	l, err := Build(ds.Data, ds.Count, ds.Dim, Config{L: 10, K: 6, Family: Hyperplane, Seed: 15})
	if err != nil {
		t.Fatal(err)
	}
	qs := ds.Queries(15, 0.02, 14)
	truth := dataset.GroundTruth(vec.CosineDistance, ds, qs, 10)
	var rsum float64
	for i, q := range qs {
		got, _ := l.Search(q, 10, index.Params{})
		rsum += dataset.Recall(got, truth[i])
	}
	if mean := rsum / 15; mean < 0.5 {
		t.Fatalf("hyperplane recall = %v", mean)
	}
}

func TestSearchValidationAndPredicates(t *testing.T) {
	ds := dataset.Uniform(100, 4, 17)
	l, err := Build(ds.Data, 100, 4, Config{L: 4, K: 2, Family: PStable, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Search(ds.Row(0), 0, index.Params{}); err != index.ErrBadK {
		t.Fatal("want ErrBadK")
	}
	if _, err := l.Search([]float32{1}, 1, index.Params{}); err == nil {
		t.Fatal("want dim error")
	}
	allow := bitset.New(100)
	allow.Set(3)
	got, err := l.Search(ds.Row(3), 5, index.Params{Allow: allow})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range got {
		if r.ID != 3 {
			t.Fatalf("blocked id %d returned", r.ID)
		}
	}
	got, _ = l.Search(ds.Row(0), 5, index.Params{Filter: func(id int64) bool { return false }})
	if len(got) != 0 {
		t.Fatal("filter rejecting everything must yield no results")
	}
	l.ResetStats()
	if l.DistanceComps() != 0 {
		t.Fatal("ResetStats failed")
	}
}

func TestRegistryBuild(t *testing.T) {
	ds := dataset.Uniform(50, 4, 19)
	idx, err := index.Build("lsh", ds.Data, 50, 4, vec.L2, map[string]int{"l": 4, "k": 2, "pstable": 1, "w": 4})
	if err != nil {
		t.Fatal(err)
	}
	if idx.Name() != "lsh" || idx.Size() != 50 {
		t.Fatal("registry metadata wrong")
	}
	if _, err := index.Build("lsh", ds.Data, 50, 4, vec.L2, map[string]int{"bogus": 1}); err == nil {
		t.Fatal("want unknown-option error")
	}
}
