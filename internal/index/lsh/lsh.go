// Package lsh implements locality sensitive hashing (Section 2.2(1)):
// L hash tables, each keyed by a concatenation of K hash functions
// drawn from a hash family. Two families are provided:
//
//   - "hyperplane": sign random projections (the random-hyperplane
//     family of EZLSH / IndexLSH binary projections), suited to
//     angular similarity.
//   - "pstable": the p-stable (Gaussian) family of Datar et al. used
//     by E2LSH for Euclidean distance, h(v) = floor((a·v + b) / w).
//
// Larger K sharpens each table (fewer false positives, more false
// negatives); larger L compensates by giving more chances to collide.
// E2 sweeps both to reproduce the recall/probe-cost trade-off.
package lsh

import (
	"fmt"
	"math/rand"
	"sync/atomic"

	"vdbms/internal/index"
	"vdbms/internal/topk"
	"vdbms/internal/vec"
)

// Family selects the hash family.
type Family int

const (
	// Hyperplane hashes by the sign of a random projection.
	Hyperplane Family = iota
	// PStable hashes by a quantized random projection.
	PStable
)

// Config controls index construction.
type Config struct {
	L      int     // number of tables; default 8
	K      int     // hash functions concatenated per table; default 8
	Family Family  // default Hyperplane
	W      float32 // p-stable bucket width; default 4
	Seed   int64   // default 1
	Metric vec.Metric
}

// LSH is the built index.
type LSH struct {
	cfg    Config
	dim    int
	n      int
	data   []float32
	sc     *vec.Scorer // re-ranks colliding candidates with cached row state
	tables []map[uint64][]int32
	// projections: per table, K vectors of dim floats (+ offset for
	// p-stable).
	proj    [][]float32 // [L][K*dim]
	offsets [][]float32 // [L][K], p-stable only
	comps   atomic.Int64
}

// Build constructs the index over n row-major vectors.
func Build(data []float32, n, d int, cfg Config) (*LSH, error) {
	if cfg.L <= 0 {
		cfg.L = 8
	}
	if cfg.K <= 0 {
		cfg.K = 8
	}
	if cfg.W <= 0 {
		cfg.W = 4
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if d <= 0 || len(data) < n*d {
		return nil, fmt.Errorf("lsh: bad data shape n=%d d=%d len=%d", n, d, len(data))
	}
	metric := metricOrL2(cfg)
	sc, err := vec.NewScorer(metric, data, n, d)
	if err != nil {
		return nil, fmt.Errorf("lsh: %w", err)
	}
	l := &LSH{
		cfg:     cfg,
		dim:     d,
		n:       n,
		data:    data,
		sc:      sc,
		tables:  make([]map[uint64][]int32, cfg.L),
		proj:    make([][]float32, cfg.L),
		offsets: make([][]float32, cfg.L),
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	for t := 0; t < cfg.L; t++ {
		p := make([]float32, cfg.K*d)
		for i := range p {
			p[i] = float32(rng.NormFloat64())
		}
		l.proj[t] = p
		if cfg.Family == PStable {
			off := make([]float32, cfg.K)
			for i := range off {
				off[i] = rng.Float32() * cfg.W
			}
			l.offsets[t] = off
		}
		l.tables[t] = make(map[uint64][]int32)
	}
	for id := 0; id < n; id++ {
		v := data[id*d : (id+1)*d]
		for t := 0; t < cfg.L; t++ {
			key := l.hash(t, v)
			l.tables[t][key] = append(l.tables[t][key], int32(id))
		}
	}
	return l, nil
}

func metricOrL2(cfg Config) vec.Metric {
	if cfg.Family == Hyperplane && cfg.Metric == vec.L2 {
		// Hyperplane LSH approximates angular similarity; default the
		// re-ranking metric to cosine unless the caller overrode it.
		return vec.Cosine
	}
	return cfg.Metric
}

// hash computes the table key: K sub-hashes mixed FNV-style.
func (l *LSH) hash(t int, v []float32) uint64 {
	const (
		fnvOffset = 14695981039346656037
		fnvPrime  = 1099511628211
	)
	h := uint64(fnvOffset)
	p := l.proj[t]
	for k := 0; k < l.cfg.K; k++ {
		dot := vec.Dot(v, p[k*l.dim:(k+1)*l.dim])
		var sub uint64
		if l.cfg.Family == Hyperplane {
			if dot >= 0 {
				sub = 1
			}
		} else {
			sub = uint64(int64((dot + l.offsets[t][k]) / l.cfg.W))
		}
		h = (h ^ sub) * fnvPrime
	}
	return h
}

// Name implements index.Index.
func (l *LSH) Name() string { return "lsh" }

// Size implements index.Index.
func (l *LSH) Size() int { return l.n }

// DistanceComps implements index.Stats.
func (l *LSH) DistanceComps() int64 { return l.comps.Load() }

// ResetStats implements index.Stats.
func (l *LSH) ResetStats() { l.comps.Store(0) }

// CandidateCount returns how many distinct candidates the query would
// collide with; E2 reports it as the probe cost.
func (l *LSH) CandidateCount(q []float32, tables int) int {
	seen := map[int32]struct{}{}
	if tables <= 0 || tables > l.cfg.L {
		tables = l.cfg.L
	}
	for t := 0; t < tables; t++ {
		for _, id := range l.tables[t][l.hash(t, q)] {
			seen[id] = struct{}{}
		}
	}
	return len(seen)
}

// Search implements index.Index: hash the query into each table, take
// colliding vectors as candidates, then re-rank exactly. p.NProbe caps
// the number of tables consulted (defaults to all L).
func (l *LSH) Search(q []float32, k int, p index.Params) ([]topk.Result, error) {
	if k <= 0 {
		return nil, index.ErrBadK
	}
	if len(q) != l.dim {
		return nil, fmt.Errorf("%w: query %d, index %d", index.ErrDim, len(q), l.dim)
	}
	tables := p.NProbe
	if tables <= 0 || tables > l.cfg.L {
		tables = l.cfg.L
	}
	c := topk.NewCollector(k)
	seen := make(map[int32]struct{}, 64)
	comps := int64(0)
	b := l.sc.Bind(q)
	for t := 0; t < tables; t++ {
		for _, id := range l.tables[t][l.hash(t, q)] {
			if _, dup := seen[id]; dup {
				continue
			}
			seen[id] = struct{}{}
			if !p.Admits(int64(id)) {
				continue
			}
			d := b.ScoreAt(int(id))
			comps++
			c.Push(int64(id), d)
		}
	}
	l.comps.Add(comps)
	if p.Stats != nil {
		p.Stats.DistanceComps += comps
		p.Stats.BucketsProbed += int64(tables)
	}
	return c.Results(), nil
}

func init() {
	index.Register("lsh", func(data []float32, n, d int, metric vec.Metric, opts map[string]int) (index.Index, error) {
		switch metric {
		case vec.L2, vec.Cosine:
		default:
			// Hyperplane LSH hashes angles and p-stable LSH hashes L2
			// offsets; candidates re-ranked under any other metric would
			// be drawn from the wrong buckets, so refuse instead of
			// returning plausible-but-wrong rankings.
			return nil, fmt.Errorf("lsh: metric %v not supported (want l2 or cosine)", metric)
		}
		cfg := Config{Metric: metric}
		if metric == vec.L2 {
			// Direct Build callers who pick Hyperplane under L2 get the
			// historical cosine re-rank (metricOrL2); an index built from
			// a collection recipe must honor the collection metric, so L2
			// defaults to the p-stable family, which hashes L2 offsets.
			cfg.Family = PStable
		}
		for k, v := range opts {
			switch k {
			case "l":
				cfg.L = v
			case "k":
				cfg.K = v
			case "seed":
				cfg.Seed = int64(v)
			case "pstable":
				if v != 0 {
					cfg.Family = PStable
				}
			case "w":
				cfg.W = float32(v)
			default:
				return nil, fmt.Errorf("lsh: unknown option %q", k)
			}
		}
		return Build(data, n, d, cfg)
	})
}
