package spann

import (
	"path/filepath"
	"testing"

	"vdbms/internal/dataset"
	"vdbms/internal/index"
	"vdbms/internal/vec"
)

func buildSmall(t *testing.T, cfg Config) (*SPANN, *dataset.Dataset) {
	t.Helper()
	ds := dataset.Clustered(2000, 16, 10, 0.4, 1)
	path := filepath.Join(t.TempDir(), "p.spann")
	sp, err := Build(ds.Data, ds.Count, ds.Dim, path, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sp.Close() })
	return sp, ds
}

func meanRecall(t *testing.T, sp *SPANN, ds *dataset.Dataset, nprobe int) float64 {
	t.Helper()
	qs := ds.Queries(15, 0.05, 2)
	truth := dataset.GroundTruth(vec.SquaredL2, ds, qs, 10)
	var s float64
	for i, q := range qs {
		got, err := sp.Search(q, 10, index.Params{NProbe: nprobe})
		if err != nil {
			t.Fatal(err)
		}
		s += dataset.Recall(got, truth[i])
	}
	return s / 15
}

func TestSPANNRecallAndIO(t *testing.T) {
	sp, ds := buildSmall(t, Config{NList: 32, Seed: 1})
	if r := meanRecall(t, sp, ds, 8); r < 0.8 {
		t.Fatalf("spann recall = %v", r)
	}
	sp.ResetStats()
	q := ds.Queries(1, 0.05, 3)[0]
	sp.Search(q, 10, index.Params{NProbe: 4})
	if sp.IOReads() == 0 {
		t.Fatal("no I/O counted")
	}
	ioAt4 := sp.IOReads()
	sp.ResetStats()
	sp.Search(q, 10, index.Params{NProbe: 16})
	if sp.IOReads() <= ioAt4 {
		t.Fatalf("more probes should read more pages: %d vs %d", sp.IOReads(), ioAt4)
	}
}

func TestClosureImprovesRecallAtSameProbes(t *testing.T) {
	plain, ds := buildSmall(t, Config{NList: 32, Seed: 1})
	closure, _ := buildSmall(t, Config{NList: 32, Seed: 1, ClosureEps: 0.25})
	rp := meanRecall(t, plain, ds, 2)
	rc := meanRecall(t, closure, ds, 2)
	if rc < rp-0.02 {
		t.Fatalf("closure recall %v should not trail plain %v", rc, rp)
	}
	if f := closure.ReplicationFactor(); f <= 1 {
		t.Fatalf("closure replication factor = %v, want > 1", f)
	}
	if f := plain.ReplicationFactor(); f != 1 {
		t.Fatalf("plain replication factor = %v, want 1", f)
	}
}

func TestDedupedResults(t *testing.T) {
	sp, ds := buildSmall(t, Config{NList: 32, Seed: 1, ClosureEps: 0.5, MaxReplicas: 4})
	got, err := sp.Search(ds.Row(0), 20, index.Params{NProbe: 16})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int64]bool{}
	for _, r := range got {
		if seen[r.ID] {
			t.Fatalf("duplicate id %d in results", r.ID)
		}
		seen[r.ID] = true
	}
}

func TestPredicates(t *testing.T) {
	sp, ds := buildSmall(t, Config{NList: 32, Seed: 1})
	got, err := sp.Search(ds.Row(0), 10, index.Params{NProbe: 32, Filter: func(id int64) bool { return id < 200 }})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range got {
		if r.ID >= 200 {
			t.Fatalf("filter violated: %d", r.ID)
		}
	}
}

func TestValidationAndReopen(t *testing.T) {
	ds := dataset.Clustered(300, 8, 3, 0.4, 5)
	dir := t.TempDir()
	path := filepath.Join(dir, "x.spann")
	sp, err := Build(ds.Data, ds.Count, ds.Dim, path, Config{NList: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sp.Search(ds.Row(0), 0, index.Params{}); err != index.ErrBadK {
		t.Fatal("want ErrBadK")
	}
	if _, err := sp.Search([]float32{1}, 1, index.Params{}); err == nil {
		t.Fatal("want dim error")
	}
	cents := sp.Centroids()
	sp.Close()
	re, err := Open(path, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if _, err := re.Search(ds.Row(0), 1, index.Params{}); err == nil {
		t.Fatal("want error before SetCentroids")
	}
	re.SetCentroids(cents)
	got, err := re.Search(ds.Row(5), 1, index.Params{NProbe: 8})
	if err != nil || len(got) != 1 || got[0].ID != 5 {
		t.Fatalf("reopened search = %v err=%v", got, err)
	}
	if _, err := Build([]float32{1}, 2, 2, path, Config{}); err == nil {
		t.Fatal("want shape error")
	}
	if _, err := Open(filepath.Join(dir, "missing"), Config{}); err == nil {
		t.Fatal("want open error")
	}
	if re.Name() != "spann" {
		t.Fatal("name wrong")
	}
}
