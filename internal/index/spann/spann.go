// Package spann implements a SPANN-style disk index (Chen et al.,
// Section 2.2(2), "learning to hash" with k-means): centroids stay in
// RAM while each cluster's members live in an on-disk posting list.
// Two SPANN signatures are reproduced:
//
//   - closure multi-assignment: a vector near several cluster
//     boundaries is replicated into every cluster whose centroid is
//     within (1+eps) of its nearest, cutting boundary misses without
//     extra probes;
//   - posting-list I/O accounting: a query reads nprobe lists, each a
//     sequential run of pages, so E7 can report I/Os per query.
package spann

import (
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"sync"
	"sync/atomic"

	"vdbms/internal/index"
	"vdbms/internal/kmeans"
	"vdbms/internal/topk"
	"vdbms/internal/vec"
)

// Config controls Build.
type Config struct {
	NList int // clusters; default sqrt(n)
	// ClosureEps is the multi-assignment slack: a vector joins every
	// cluster with dist <= (1+eps)^2 * bestDist. 0 disables closure.
	ClosureEps float64
	// MaxReplicas caps how many clusters one vector may join; default 4.
	MaxReplicas int
	PageSize    int // bytes per I/O unit; default 4096
	Seed        int64
	MaxIter     int
}

const magic = uint32(0x4e415053) // "SPAN"

// SPANN is the opened index.
type SPANN struct {
	cfg    Config
	f      *os.File
	dim    int
	n      int
	cents  *kmeans.Result
	starts []int64 // byte offset of each posting list
	counts []int32 // entries per posting list
	mu     sync.Mutex
	ios    atomic.Int64
	comps  atomic.Int64
}

// Build clusters the data, writes posting lists to path, and opens the
// index. Posting entries are (id, vector) pairs so a list read needs
// no further seeks.
func Build(data []float32, n, d int, path string, cfg Config) (*SPANN, error) {
	if d <= 0 || n <= 0 || len(data) < n*d {
		return nil, fmt.Errorf("spann: bad data shape n=%d d=%d len=%d", n, d, len(data))
	}
	if cfg.NList <= 0 {
		cfg.NList = int(math.Sqrt(float64(n))) + 1
	}
	if cfg.MaxReplicas <= 0 {
		cfg.MaxReplicas = 4
	}
	if cfg.PageSize <= 0 {
		cfg.PageSize = 4096
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.MaxIter <= 0 {
		cfg.MaxIter = 20
	}
	cents, err := kmeans.Train(data, n, d, kmeans.Config{K: cfg.NList, Seed: cfg.Seed, MaxIter: cfg.MaxIter})
	if err != nil {
		return nil, fmt.Errorf("spann: kmeans: %w", err)
	}
	// Assign with closure.
	lists := make([][]int32, cents.K)
	slack := (1 + cfg.ClosureEps) * (1 + cfg.ClosureEps)
	for id := 0; id < n; id++ {
		row := data[id*d : (id+1)*d]
		order := cents.NearestN(row, cfg.MaxReplicas)
		best := vec.SquaredL2(row, cents.Centroid(order[0]))
		lists[order[0]] = append(lists[order[0]], int32(id))
		if cfg.ClosureEps > 0 {
			for _, c := range order[1:] {
				dd := vec.SquaredL2(row, cents.Centroid(c))
				if float64(dd) <= slack*float64(best) {
					lists[c] = append(lists[c], int32(id))
				}
			}
		}
	}
	if err := writeLists(path, data, d, lists); err != nil {
		return nil, err
	}
	sp, err := Open(path, cfg)
	if err != nil {
		return nil, err
	}
	sp.cents = cents
	return sp, nil
}

// entrySize is the bytes per posting entry for dimension d.
func entrySize(d int) int { return 4 + d*4 }

func writeLists(path string, data []float32, d int, lists [][]int32) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	// Header: magic, dim, nlists, then per-list (start, count) table,
	// then the lists.
	nl := len(lists)
	hdr := make([]byte, 12+nl*12)
	binary.LittleEndian.PutUint32(hdr[0:], magic)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(d))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(nl))
	off := int64(len(hdr))
	for li, l := range lists {
		binary.LittleEndian.PutUint64(hdr[12+li*12:], uint64(off))
		binary.LittleEndian.PutUint32(hdr[12+li*12+8:], uint32(len(l)))
		off += int64(len(l) * entrySize(d))
	}
	if _, err := f.Write(hdr); err != nil {
		return err
	}
	buf := make([]byte, entrySize(d))
	for _, l := range lists {
		for _, id := range l {
			binary.LittleEndian.PutUint32(buf[0:], uint32(id))
			row := data[int(id)*d : (int(id)+1)*d]
			for j, x := range row {
				binary.LittleEndian.PutUint32(buf[4+j*4:], math.Float32bits(x))
			}
			if _, err := f.Write(buf); err != nil {
				return err
			}
		}
	}
	return f.Sync()
}

// Open maps the posting-list table. The caller must either come
// through Build (which injects centroids) or call SetCentroids.
func Open(path string, cfg Config) (*SPANN, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	hdr := make([]byte, 12)
	if _, err := f.ReadAt(hdr, 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("spann: header: %w", err)
	}
	if binary.LittleEndian.Uint32(hdr) != magic {
		f.Close()
		return nil, fmt.Errorf("spann: %s is not a spann file", path)
	}
	d := int(binary.LittleEndian.Uint32(hdr[4:]))
	nl := int(binary.LittleEndian.Uint32(hdr[8:]))
	table := make([]byte, nl*12)
	if _, err := f.ReadAt(table, 12); err != nil {
		f.Close()
		return nil, err
	}
	sp := &SPANN{cfg: cfg, f: f, dim: d, starts: make([]int64, nl), counts: make([]int32, nl)}
	if sp.cfg.PageSize <= 0 {
		sp.cfg.PageSize = 4096
	}
	total := 0
	for li := 0; li < nl; li++ {
		sp.starts[li] = int64(binary.LittleEndian.Uint64(table[li*12:]))
		sp.counts[li] = int32(binary.LittleEndian.Uint32(table[li*12+8:]))
		total += int(sp.counts[li])
	}
	sp.n = total // includes replicas
	return sp, nil
}

// SetCentroids installs the in-memory navigation structure after Open.
func (sp *SPANN) SetCentroids(c *kmeans.Result) { sp.cents = c }

// Centroids returns the navigation structure (for persistence by the
// caller).
func (sp *SPANN) Centroids() *kmeans.Result { return sp.cents }

// Close releases the file.
func (sp *SPANN) Close() error { return sp.f.Close() }

// Name implements index.Index.
func (sp *SPANN) Name() string { return "spann" }

// Size implements index.Index (posting entries incl. replicas).
func (sp *SPANN) Size() int { return sp.n }

// IOReads returns page-granular reads so far.
func (sp *SPANN) IOReads() int64 { return sp.ios.Load() }

// DistanceComps implements index.Stats.
func (sp *SPANN) DistanceComps() int64 { return sp.comps.Load() }

// ResetStats zeroes counters.
func (sp *SPANN) ResetStats() { sp.ios.Store(0); sp.comps.Store(0) }

// ReplicationFactor reports posting entries per distinct vector id.
func (sp *SPANN) ReplicationFactor() float64 {
	seen := map[int32]struct{}{}
	for li := range sp.starts {
		for _, e := range sp.readList(li) {
			seen[e.id] = struct{}{}
		}
	}
	if len(seen) == 0 {
		return 0
	}
	return float64(sp.n) / float64(len(seen))
}

type entry struct {
	id  int32
	vec []float32
}

// readList reads one posting list, counting ceil(bytes/PageSize) I/Os.
func (sp *SPANN) readList(li int) []entry {
	cnt := int(sp.counts[li])
	if cnt == 0 {
		return nil
	}
	es := entrySize(sp.dim)
	buf := make([]byte, cnt*es)
	sp.mu.Lock()
	if _, err := sp.f.ReadAt(buf, sp.starts[li]); err != nil {
		sp.mu.Unlock()
		panic(fmt.Sprintf("spann: list %d: %v", li, err))
	}
	pages := (len(buf) + sp.cfg.PageSize - 1) / sp.cfg.PageSize
	sp.ios.Add(int64(pages))
	sp.mu.Unlock()
	out := make([]entry, cnt)
	for i := 0; i < cnt; i++ {
		rec := buf[i*es : (i+1)*es]
		v := make([]float32, sp.dim)
		for j := range v {
			v[j] = math.Float32frombits(binary.LittleEndian.Uint32(rec[4+j*4:]))
		}
		out[i] = entry{id: int32(binary.LittleEndian.Uint32(rec)), vec: v}
	}
	return out
}

// Search implements index.Index: probe the p.NProbe nearest centroids
// (default 4), read their posting lists, re-rank exactly, dedupe
// replicas.
func (sp *SPANN) Search(q []float32, k int, p index.Params) ([]topk.Result, error) {
	if k <= 0 {
		return nil, index.ErrBadK
	}
	if len(q) != sp.dim {
		return nil, fmt.Errorf("%w: query %d, index %d", index.ErrDim, len(q), sp.dim)
	}
	if sp.cents == nil {
		return nil, fmt.Errorf("spann: centroids not loaded; call SetCentroids")
	}
	nprobe := p.NProbe
	if nprobe <= 0 {
		nprobe = 4
	}
	c := topk.NewCollector(k)
	seen := map[int32]struct{}{}
	comps := int64(0)
	// Posting entries stream from disk, so they are scored through the
	// query-bound kernel (bit-identical to the scalar L2).
	kern := vec.BindQuery(vec.L2, q)
	for _, li := range sp.cents.NearestN(q, nprobe) {
		for _, e := range sp.readList(li) {
			if _, dup := seen[e.id]; dup {
				continue
			}
			seen[e.id] = struct{}{}
			if !p.Admits(int64(e.id)) {
				continue
			}
			comps++
			c.Push(int64(e.id), kern.Score(e.vec))
		}
	}
	sp.comps.Add(comps)
	return c.Results(), nil
}
