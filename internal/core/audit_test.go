package core

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"vdbms/internal/dataset"
	"vdbms/internal/filter"
	"vdbms/internal/stats"
	"vdbms/internal/vec"
)

// TestAuditObservedRecallMatchesTruth is the acceptance check for the
// online recall auditor: on a 50k-vector collection served by a
// deliberately degraded IVF index (nprobe=1 of 64 lists), the recall
// the auditor reports from its sampled replays must match the
// brute-force true recall of the very same served queries to within
// ±0.02.
func TestAuditObservedRecallMatchesTruth(t *testing.T) {
	if testing.Short() {
		t.Skip("50k-row dataset")
	}
	const (
		n  = 50_000
		d  = 8
		k  = 10
		nq = 100
	)
	ds := dataset.Uniform(n, d, 23)
	c, err := NewCollection("audit", Schema{Dim: d})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if _, err := c.Insert(ds.Row(i), nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.CreateIndex("ivfflat", map[string]int{"nlist": 64}); err != nil {
		t.Fatal(err)
	}

	// Sampling on, reservoir big enough to retain every query, no
	// background loop — the test drives passes itself.
	c.EnableAudit(AuditConfig{ReservoirSize: 2 * nq})
	defer c.DisableAudit()

	queries := ds.Queries(nq, 0.1, 29)
	truth := dataset.GroundTruth(vec.Distance(vec.L2), ds, queries, k)
	var trueSum float64
	for i, q := range queries {
		res, _, err := c.Search(Request{Vector: q, K: k, NProbe: 1, Policy: "plan:single_stage"})
		if err != nil {
			t.Fatal(err)
		}
		if len(res) != k {
			t.Fatalf("query %d returned %d hits, want %d", i, len(res), k)
		}
		inTruth := map[int64]bool{}
		for _, r := range truth[i] {
			inTruth[r.ID] = true
		}
		hits := 0
		for _, r := range res {
			if inTruth[r.ID] {
				hits++
			}
		}
		trueSum += float64(hits) / float64(k)
	}
	trueRecall := trueSum / nq

	rep, err := c.AuditNow()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Samples != nq {
		t.Fatalf("audited %d samples, want %d (stale=%d)", rep.Samples, nq, rep.Stale)
	}
	if rep.Outcome != "ok" {
		t.Fatalf("outcome = %q, want ok (recall=%.4f)", rep.Outcome, rep.Recall)
	}
	// The index must actually be degraded, or the audit proves nothing.
	if trueRecall >= 0.95 {
		t.Fatalf("true recall %.4f: nprobe=1 index not degraded enough to test against", trueRecall)
	}
	if diff := math.Abs(rep.Recall - trueRecall); diff > 0.02 {
		t.Fatalf("observed recall %.4f vs true recall %.4f: |diff| %.4f > 0.02",
			rep.Recall, trueRecall, diff)
	}
}

// TestAuditRegressionAndEmptyOutcomes covers the floor and the
// not-enough-samples path.
func TestAuditRegressionAndEmptyOutcomes(t *testing.T) {
	ds := dataset.Uniform(2000, 8, 31)
	c, err := NewCollection("reg", Schema{Dim: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < ds.Count; i++ {
		if _, err := c.Insert(ds.Row(i), nil); err != nil {
			t.Fatal(err)
		}
	}

	// Before sampling starts the reservoir is empty: outcome "empty".
	rep, err := c.AuditNow()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Outcome != "empty" || rep.Samples != 0 {
		t.Fatalf("pre-sampling audit = %+v, want empty/0", rep)
	}

	var logged []string
	c.EnableAudit(AuditConfig{
		RecallFloor: 1.1, // every pass regresses: recall can never exceed 1
		MinSamples:  4,
		Logf: func(format string, args ...any) {
			logged = append(logged, format)
		},
	})
	defer c.DisableAudit()
	for i := 0; i < 16; i++ {
		if _, _, err := c.Search(Request{Vector: ds.Row(i), K: 5}); err != nil {
			t.Fatal(err)
		}
	}
	rep, err = c.AuditNow()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Outcome != "regression" {
		t.Fatalf("outcome = %q, want regression (recall=%.4f)", rep.Outcome, rep.Recall)
	}
	if len(logged) != 1 {
		t.Fatalf("regression log lines = %d, want 1", len(logged))
	}
	// Exact serving (no index) replayed exactly must audit at recall 1.
	if rep.Recall != 1 {
		t.Fatalf("flat-scan recall = %.4f, want 1", rep.Recall)
	}
}

// TestAuditSkipsStaleSamples: a sample whose served rows have since
// been deleted is skipped as stale rather than biasing recall down.
func TestAuditSkipsStaleSamples(t *testing.T) {
	ds := dataset.Uniform(500, 4, 37)
	c, err := NewCollection("stale", Schema{Dim: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < ds.Count; i++ {
		if _, err := c.Insert(ds.Row(i), nil); err != nil {
			t.Fatal(err)
		}
	}
	c.EnableAudit(AuditConfig{MinSamples: 1})
	defer c.DisableAudit()
	res, _, err := c.Search(Request{Vector: ds.Row(0), K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Delete(res[0].ID); err != nil {
		t.Fatal(err)
	}
	rep, err := c.AuditNow()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stale != 1 || rep.Samples != 0 {
		t.Fatalf("stale=%d samples=%d, want 1/0", rep.Stale, rep.Samples)
	}
	if rep.Outcome != "empty" {
		t.Fatalf("outcome = %q, want empty", rep.Outcome)
	}
}

// TestAuditSkipsUpdatedSamples: a sample served before an in-place
// vector update is skipped as stale (the data it was ranked against
// has changed), and samples served after the update replay normally.
func TestAuditSkipsUpdatedSamples(t *testing.T) {
	ds := dataset.Uniform(400, 4, 43)
	c, err := NewCollection("upd", Schema{Dim: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < ds.Count; i++ {
		if _, err := c.Insert(ds.Row(i), nil); err != nil {
			t.Fatal(err)
		}
	}
	c.EnableAudit(AuditConfig{MinSamples: 1})
	defer c.DisableAudit()
	if _, _, err := c.Search(Request{Vector: ds.Row(0), K: 3}); err != nil {
		t.Fatal(err)
	}
	// Overwrite a row the sample may not even contain: any in-place
	// update invalidates earlier samples wholesale.
	if err := c.UpdateVector(7, ds.Row(8)); err != nil {
		t.Fatal(err)
	}
	rep, err := c.AuditNow()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stale != 1 || rep.Samples != 0 || rep.Outcome != "empty" {
		t.Fatalf("post-update audit = %+v, want stale=1 samples=0 empty", rep)
	}
	// A query served after the update carries the new epoch and replays.
	if _, _, err := c.Search(Request{Vector: ds.Row(1), K: 3}); err != nil {
		t.Fatal(err)
	}
	rep, err = c.AuditNow()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stale != 1 || rep.Samples != 1 || rep.Outcome != "ok" {
		t.Fatalf("post-update audit #2 = %+v, want stale=1 samples=1 ok", rep)
	}
}

// TestAuditErrorOutcome: a pass that fails mid-replay reports the
// "error" outcome (counted in vdbms_recall_audit_total) instead of
// silently producing nothing, and the background loop logs the cause.
func TestAuditErrorOutcome(t *testing.T) {
	ds := dataset.Uniform(100, 4, 47)
	c, err := NewCollection("err", Schema{Dim: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < ds.Count; i++ {
		if _, err := c.Insert(ds.Row(i), nil); err != nil {
			t.Fatal(err)
		}
	}
	// Inject a sample whose predicate references a column the
	// collection does not have: replay must fail.
	r := stats.NewReservoirRand(4, func(n int64) int64 { return 0 })
	r.Offer(stats.Sample{
		Vector: ds.Row(0),
		K:      1,
		Preds:  []filter.Predicate{{Column: "no_such", Op: filter.Eq, Value: filter.IntV(1)}},
		Served: []int64{0},
	})
	c.sampler.Store(r)

	rep, err := c.AuditNow()
	if err == nil {
		t.Fatal("audit over a broken sample reported no error")
	}
	if rep.Outcome != "error" {
		t.Fatalf("outcome = %q, want error", rep.Outcome)
	}

	// The background loop logs failed passes rather than dropping them.
	var mu sync.Mutex
	var lines []string
	c.EnableAudit(AuditConfig{
		Interval: time.Millisecond,
		Logf: func(format string, args ...any) {
			mu.Lock()
			lines = append(lines, fmt.Sprintf(format, args...))
			mu.Unlock()
		},
	})
	defer c.DisableAudit()
	c.sampler.Store(r) // EnableAudit keeps the injected reservoir; re-store for clarity
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		mu.Lock()
		n := len(lines)
		mu.Unlock()
		if n > 0 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(lines) == 0 {
		t.Fatal("background loop never logged the failing pass")
	}
	if !strings.Contains(lines[0], "failed") {
		t.Fatalf("log line %q does not mention the failure", lines[0])
	}
}

// TestAuditDisableNeverDeadlocks: DisableAudit (and reconfiguring
// EnableAudit) must not deadlock against a background pass in flight.
// The historical hazard: stopping the loop while holding auditMu when
// a tick was about to read the config through the same mutex.
func TestAuditDisableNeverDeadlocks(t *testing.T) {
	ds := dataset.Uniform(500, 4, 53)
	c, err := NewCollection("dead", Schema{Dim: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < ds.Count; i++ {
		if _, err := c.Insert(ds.Row(i), nil); err != nil {
			t.Fatal(err)
		}
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		c.EnableAudit(AuditConfig{Interval: time.Millisecond, MinSamples: 1})
		for i := 0; i < 8; i++ {
			if _, _, err := c.Search(Request{Vector: ds.Row(i), K: 2}); err != nil {
				return
			}
		}
		// Stop/start repeatedly with ticks firing in between so a pass
		// is regularly in flight when the loop is torn down.
		for i := 0; i < 30; i++ {
			time.Sleep(time.Millisecond)
			c.EnableAudit(AuditConfig{Interval: time.Millisecond, MinSamples: 1})
		}
		c.DisableAudit()
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("EnableAudit/DisableAudit deadlocked against the audit loop")
	}
}

// TestAuditBackgroundLoop: a configured interval runs passes without
// explicit AuditNow calls, and DisableAudit stops the loop.
func TestAuditBackgroundLoop(t *testing.T) {
	ds := dataset.Uniform(300, 4, 41)
	c, err := NewCollection("bg", Schema{Dim: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < ds.Count; i++ {
		if _, err := c.Insert(ds.Row(i), nil); err != nil {
			t.Fatal(err)
		}
	}
	c.EnableAudit(AuditConfig{Interval: time.Millisecond, MinSamples: 1})
	for i := 0; i < 8; i++ {
		if _, _, err := c.Search(Request{Vector: ds.Row(i), K: 2}); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for c.sampler.Load().Len() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	// Wait for at least one background pass to land in the metrics by
	// watching the per-collection gauge the loop sets.
	for time.Now().Before(deadline) {
		if rep, _ := c.AuditNow(); rep.Outcome == "ok" {
			break
		}
		time.Sleep(time.Millisecond)
	}
	c.DisableAudit()
	if c.auditStop != nil {
		t.Fatal("DisableAudit left the loop running")
	}
	// Disabled sampling: new queries are not offered.
	seen := c.sampler.Load().Seen()
	if _, _, err := c.Search(Request{Vector: ds.Row(0), K: 2}); err != nil {
		t.Fatal(err)
	}
	if got := c.sampler.Load().Seen(); got != seen {
		t.Fatalf("reservoir saw %d offers after DisableAudit, want %d", got, seen)
	}
}

// TestSamplerSwappable: tests can install a deterministic reservoir.
func TestSamplerSwappable(t *testing.T) {
	c, err := NewCollection("swap", Schema{Dim: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Insert([]float32{1, 2}, nil); err != nil {
		t.Fatal(err)
	}
	r := stats.NewReservoirRand(4, func(n int64) int64 { return 0 })
	c.sampler.Store(r)
	c.sampling.Store(true)
	if _, _, err := c.Search(Request{Vector: []float32{1, 2}, K: 1}); err != nil {
		t.Fatal(err)
	}
	if r.Len() != 1 {
		t.Fatalf("injected reservoir holds %d samples, want 1", r.Len())
	}
}
