package core

import (
	"testing"

	"vdbms/internal/dataset"
	"vdbms/internal/filter"
	"vdbms/internal/planner"
	"vdbms/internal/vec"
)

func newCol(t *testing.T, n int) (*Collection, *dataset.Dataset) {
	t.Helper()
	c, err := NewCollection("t", Schema{
		Dim:    8,
		Metric: vec.L2,
		Attributes: map[string]filter.Kind{
			"g": filter.Int64,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ds := dataset.Clustered(n, 8, 4, 0.4, 1)
	for i := 0; i < n; i++ {
		if _, err := c.Insert(ds.Row(i), map[string]filter.Value{"g": filter.IntV(int64(i % 10))}); err != nil {
			t.Fatal(err)
		}
	}
	return c, ds
}

func TestSchemaValidation(t *testing.T) {
	if _, err := NewCollection("x", Schema{Dim: 0}); err == nil {
		t.Fatal("want dim error")
	}
	if _, err := NewCollection("x", Schema{Dim: 2, Metric: vec.Mahalanobis}); err == nil {
		t.Fatal("want metric error")
	}
	if _, err := NewCollection("x", Schema{Dim: 2, Attributes: map[string]filter.Kind{"": filter.Int64}}); err != nil {
		// empty name is allowed by filter.Table; just ensure no panic
		t.Logf("empty column name: %v", err)
	}
}

func TestInsertValidation(t *testing.T) {
	c, _ := newCol(t, 10)
	if _, err := c.Insert([]float32{1}, nil); err == nil {
		t.Fatal("want dim error")
	}
	// Wrong attribute arity.
	if _, err := c.Insert(make([]float32, 8), map[string]filter.Value{}); err == nil {
		t.Fatal("want arity error")
	}
	if c.Rows() != 10 || c.Len() != 10 || c.Dim() != 8 || c.Name() != "t" {
		t.Fatal("metadata wrong")
	}
}

func TestGetUpdateDeleteLifecycle(t *testing.T) {
	c, ds := newCol(t, 20)
	v, attrs, err := c.Get(3)
	if err != nil {
		t.Fatal(err)
	}
	if v[0] != ds.Row(3)[0] || attrs["g"].I != 3 {
		t.Fatal("Get wrong")
	}
	if err := c.UpdateVector(3, make([]float32, 8)); err != nil {
		t.Fatal(err)
	}
	v, _, _ = c.Get(3)
	if v[0] != 0 {
		t.Fatal("update not visible")
	}
	if err := c.UpdateVector(3, []float32{1}); err == nil {
		t.Fatal("want dim error")
	}
	if err := c.Delete(3); err != nil {
		t.Fatal(err)
	}
	if err := c.Delete(3); err == nil {
		t.Fatal("double delete should error")
	}
	if err := c.Delete(99); err == nil {
		t.Fatal("out of range delete should error")
	}
	if _, _, err := c.Get(3); err == nil {
		t.Fatal("deleted Get should error")
	}
	if c.Len() != 19 {
		t.Fatal("live count wrong")
	}
}

func TestCreateIndexEmptyCollection(t *testing.T) {
	c, err := NewCollection("e", Schema{Dim: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.CreateIndex("hnsw", nil); err == nil {
		t.Fatal("want empty-collection error")
	}
	if _, _, err := c.Search(Request{Vector: make([]float32, 4), K: 1}); err == nil {
		t.Fatal("want empty-collection search error")
	}
}

func TestSearchPlansAndPolicy(t *testing.T) {
	c, ds := newCol(t, 500)
	if err := c.CreateIndex("hnsw", map[string]int{"m": 8}); err != nil {
		t.Fatal(err)
	}
	preds := []filter.Predicate{{Column: "g", Op: filter.Lt, Value: filter.IntV(5)}}
	for _, policy := range []string{"", "rule", "plan:pre_filter", "plan:post_filter", "plan:single_stage", "plan:brute_force"} {
		res, plan, err := c.Search(Request{Vector: ds.Row(0), K: 5, Preds: preds, Policy: policy, Ef: 100})
		if err != nil {
			t.Fatalf("%q: %v", policy, err)
		}
		if len(res) == 0 {
			t.Fatalf("%q (plan %v): empty", policy, plan.Plan.Kind)
		}
		for _, r := range res {
			if r.ID%10 >= 5 {
				t.Fatalf("%q violated predicate", policy)
			}
		}
	}
	if _, err := parsePlan("zz", 0); err == nil {
		t.Fatal("want plan parse error")
	}
	if p, _ := parsePlan("post_filter", 0); p.Alpha != 4 {
		t.Fatal("default alpha wrong")
	}
}

func TestRebuildPolicy(t *testing.T) {
	c, _ := newCol(t, 100)
	if err := c.CreateIndex("hnsw", nil); err != nil {
		t.Fatal(err)
	}
	// Below threshold: no background rebuild starts.
	for i := 0; i < 10; i++ {
		c.UpdateVector(int64(i), make([]float32, 8)) //nolint:errcheck
	}
	c.WaitForIndex()
	if _, _, dirty := c.IndexInfo(); dirty != 10 {
		t.Fatalf("dirty = %d, rebuild should not have run", dirty)
	}
	// Cross threshold (default 0.2 of 100 rows): the write that makes
	// dirty exceed 20 triggers a background rebuild. Updates issued
	// while the build runs stay dirty against the new index, so after
	// quiescing, dirty is the (small) post-trigger tail, not 25.
	for i := 10; i < 25; i++ {
		c.UpdateVector(int64(i), make([]float32, 8)) //nolint:errcheck
	}
	if _, _, err := c.Search(Request{Vector: make([]float32, 8), K: 1}); err != nil {
		t.Fatal(err)
	}
	c.WaitForIndex()
	kind, covered, dirty, building := c.IndexStatus()
	if building || kind != "hnsw" {
		t.Fatalf("status after wait: kind=%q building=%v", kind, building)
	}
	if covered != c.Rows() {
		t.Fatalf("covered = %d, rows = %d", covered, c.Rows())
	}
	if dirty > 4 {
		t.Fatalf("dirty = %d after background rebuild (trigger fired at 21, tail is at most 4)", dirty)
	}
	c.DropIndex()
	if kind, _, _ := c.IndexInfo(); kind != "" {
		t.Fatal("drop failed")
	}
}

func TestMultiVectorEntityColumnValidation(t *testing.T) {
	c, ds := newCol(t, 60)
	// Missing entity column name.
	if _, _, err := c.Search(Request{Vectors: [][]float32{ds.Row(0)}, K: 2}); err == nil {
		t.Fatal("want entity-column error")
	}
	// Unknown column.
	if _, _, err := c.Search(Request{Vectors: [][]float32{ds.Row(0)}, K: 2, EntityColumn: "zz"}); err == nil {
		t.Fatal("want unknown-column error")
	}
	// Works with the int column.
	res, _, err := c.Search(Request{Vectors: [][]float32{ds.Row(0)}, K: 2, EntityColumn: "g", Aggregator: vec.AggMin})
	if err != nil || len(res) != 2 {
		t.Fatalf("multi-vector: %v %v", res, err)
	}
	// Non-int entity column rejected.
	c2, err := NewCollection("s", Schema{Dim: 4, Attributes: map[string]filter.Kind{"name": filter.String}})
	if err != nil {
		t.Fatal(err)
	}
	c2.Insert(make([]float32, 4), map[string]filter.Value{"name": filter.StringV("x")}) //nolint:errcheck
	if _, _, err := c2.Search(Request{Vectors: [][]float32{make([]float32, 4)}, K: 1, EntityColumn: "name"}); err == nil {
		t.Fatal("want type error")
	}
}

func TestSearchRangeRespectsDeletes(t *testing.T) {
	c, ds := newCol(t, 50)
	c.Delete(7) //nolint:errcheck
	res, err := c.SearchRange(ds.Row(7), 0.01, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		if r.ID == 7 {
			t.Fatal("deleted id in range result")
		}
	}
}

func TestBatchAndIterator(t *testing.T) {
	c, ds := newCol(t, 200)
	if err := c.CreateIndex("hnsw", nil); err != nil {
		t.Fatal(err)
	}
	qs := ds.Queries(3, 0.05, 5)
	batch, err := c.SearchBatch(qs, Request{K: 4, Ef: 64})
	if err != nil || len(batch) != 3 || len(batch[0]) != 4 {
		t.Fatalf("batch: %v %v", batch, err)
	}
	it, err := c.OpenIterator(ds.Row(0), nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	page, err := it.Next(5)
	if err != nil || len(page) != 5 {
		t.Fatalf("iterator: %v %v", page, err)
	}
}

func TestPlanForcedBruteForceMatchesExact(t *testing.T) {
	c, ds := newCol(t, 300)
	if err := c.CreateIndex("ivfflat", map[string]int{"nlist": 8}); err != nil {
		t.Fatal(err)
	}
	res, plan, err := c.Search(Request{Vector: ds.Row(42), K: 1, Policy: "plan:brute_force"})
	if err != nil || plan.Plan.Kind != planner.BruteForce {
		t.Fatalf("%v %v", plan, err)
	}
	if res[0].ID != 42 || res[0].Dist != 0 {
		t.Fatalf("res = %v", res)
	}
}
