package core

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"vdbms/internal/dataset"
	"vdbms/internal/fault"
	"vdbms/internal/filter"
	"vdbms/internal/vec"
	"vdbms/internal/wal"
)

func durableSchema() Schema {
	return Schema{
		Dim:    8,
		Metric: vec.L2,
		Attributes: map[string]filter.Kind{
			"g": filter.Int64,
			"w": filter.Float64,
			"s": filter.String,
		},
	}
}

func durableRowAttrs(i int) map[string]filter.Value {
	return map[string]filter.Value{
		"g": filter.IntV(int64(i % 10)),
		"w": filter.FloatV(float64(i) / 3),
		"s": filter.StringV(fmt.Sprintf("s%d", i%7)),
	}
}

func newDurable(t *testing.T, dir string, n int, opts DurabilityOptions) (*Collection, *dataset.Dataset) {
	t.Helper()
	c, err := CreateDurable(dir, "t", durableSchema(), opts)
	if err != nil {
		t.Fatal(err)
	}
	ds := dataset.Clustered(n, 8, 4, 0.4, 1)
	for i := 0; i < n; i++ {
		if _, err := c.Insert(ds.Row(i), durableRowAttrs(i)); err != nil {
			t.Fatal(err)
		}
	}
	return c, ds
}

// requireSameAnswers compares the two collections row by row and
// query by query (exact scan, so index build nondeterminism cannot
// hide divergence).
func requireSameAnswers(t *testing.T, want, got *Collection, ds *dataset.Dataset, queries int) {
	t.Helper()
	if want.Rows() != got.Rows() || want.Len() != got.Len() {
		t.Fatalf("shape: want rows=%d live=%d, got rows=%d live=%d",
			want.Rows(), want.Len(), got.Rows(), got.Len())
	}
	for id := 0; id < want.Rows(); id++ {
		wv, wa, werr := want.Get(int64(id))
		gv, ga, gerr := got.Get(int64(id))
		if (werr == nil) != (gerr == nil) {
			t.Fatalf("row %d: liveness differs: %v vs %v", id, werr, gerr)
		}
		if werr != nil {
			continue
		}
		for j := range wv {
			if wv[j] != gv[j] {
				t.Fatalf("row %d float %d: %v vs %v", id, j, wv[j], gv[j])
			}
		}
		for k, v := range wa {
			if ga[k] != v {
				t.Fatalf("row %d attr %q: %+v vs %+v", id, k, v, ga[k])
			}
		}
	}
	for qi := 0; qi < queries; qi++ {
		q := ds.Row(qi * 7 % ds.Count)
		w, _, err := want.Search(Request{Vector: q, K: 10, Policy: "plan:brute_force"})
		if err != nil {
			t.Fatal(err)
		}
		g, _, err := got.Search(Request{Vector: q, K: 10, Policy: "plan:brute_force"})
		if err != nil {
			t.Fatal(err)
		}
		if len(w) != len(g) {
			t.Fatalf("query %d: %d vs %d hits", qi, len(w), len(g))
		}
		for i := range w {
			if w[i] != g[i] {
				t.Fatalf("query %d hit %d: %+v vs %+v", qi, i, w[i], g[i])
			}
		}
	}
}

func TestDurableCloseRecoverRoundTrip(t *testing.T) {
	dir := t.TempDir()
	c, ds := newDurable(t, dir, 120, DurabilityOptions{})
	if err := c.CreateIndex("ivfflat", map[string]int{"nlist": 4}); err != nil {
		t.Fatal(err)
	}
	if err := c.Delete(3); err != nil {
		t.Fatal(err)
	}
	if err := c.UpdateVector(5, make([]float32, 8)); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := Recover(dir, DurabilityOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	requireSameAnswers(t, c, re, ds, 8)
	kind, covered, _ := re.IndexInfo()
	if kind != "ivfflat" || covered != re.Rows() {
		t.Fatalf("index after recovery: %s covering %d of %d", kind, covered, re.Rows())
	}
	// Clean shutdown wrote a final checkpoint: reopening replayed nothing.
	durable, lastLSN, ckptLSN := re.DurabilityStatus()
	if !durable || ckptLSN != lastLSN {
		t.Fatalf("status after clean recovery: durable=%v last=%d ckpt=%d", durable, lastLSN, ckptLSN)
	}
	// And the recovered collection accepts new durable writes.
	if _, err := re.Insert(ds.Row(0), durableRowAttrs(0)); err != nil {
		t.Fatal(err)
	}
}

func TestRecoverFromLogOnly(t *testing.T) {
	dir := t.TempDir()
	c, ds := newDurable(t, dir, 60, DurabilityOptions{})
	if err := c.Delete(7); err != nil {
		t.Fatal(err)
	}
	// Crash without Close: no checkpoint exists, recovery replays the
	// whole log starting from the schema birth record.
	if err := c.wal.log.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := Recover(dir, DurabilityOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	requireSameAnswers(t, c, re, ds, 5)
	if re.Name() != "t" {
		t.Fatalf("name from birth record: %q", re.Name())
	}
	if re.Len() != 59 {
		t.Fatalf("live rows %d, want 59", re.Len())
	}
}

func TestCheckpointRetiresWAL(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments so the log rotates constantly.
	c, ds := newDurable(t, dir, 150, DurabilityOptions{SegmentBytes: 512})
	if err := c.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	segs, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var nSeg, nCkpt int
	for _, e := range segs {
		if strings.HasSuffix(e.Name(), ".log") {
			nSeg++
		}
		if strings.HasSuffix(e.Name(), ".ckpt") {
			nCkpt++
		}
	}
	// Everything the checkpoint covers is gone; only the fresh active
	// segment (and possibly one sealed successor) remains.
	if nSeg > 2 || nCkpt != 1 {
		t.Fatalf("after checkpoint: %d segments, %d checkpoints", nSeg, nCkpt)
	}
	// A second checkpoint with no new writes is a clean skip.
	if err := c.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// More writes, another checkpoint: the old checkpoint is replaced.
	for i := 0; i < 20; i++ {
		if _, err := c.Insert(ds.Row(i), durableRowAttrs(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	re, err := Recover(dir, DurabilityOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	requireSameAnswers(t, c, re, ds, 5)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestRecoverTornTail(t *testing.T) {
	dir := t.TempDir()
	c, err := CreateDurable(dir, "t", durableSchema(), DurabilityOptions{
		// SyncNever + TornWriter models power loss: acknowledgments lie,
		// the tail of the log evaporates.
		Fsync:      wal.SyncNever,
		WrapWriter: func(w io.Writer) io.Writer { return fault.NewTornWriter(w, 4096, 7) },
	})
	if err != nil {
		t.Fatal(err)
	}
	ds := dataset.Clustered(100, 8, 4, 0.4, 1)
	for i := 0; i < 100; i++ {
		if _, err := c.Insert(ds.Row(i), durableRowAttrs(i)); err != nil {
			t.Fatal(err)
		}
	}
	c.wal.log.Close() // abandon without checkpoint

	re, err := Recover(dir, DurabilityOptions{})
	if err != nil {
		t.Fatalf("torn tail must recover cleanly: %v", err)
	}
	defer re.Close()
	n := re.Rows()
	if n == 0 || n >= 100 {
		t.Fatalf("want a proper prefix of 100 rows, got %d", n)
	}
	// The surviving prefix is exact: row i is row i of the original.
	for i := 0; i < n; i++ {
		v, attrs, err := re.Get(int64(i))
		if err != nil {
			t.Fatalf("row %d: %v", i, err)
		}
		for j := range v {
			if v[j] != ds.Row(i)[j] {
				t.Fatalf("row %d float %d differs after torn recovery", i, j)
			}
		}
		if attrs["g"].I != int64(i%10) {
			t.Fatalf("row %d attrs differ", i)
		}
	}
}

func TestRecoverCorruptionMidLogFails(t *testing.T) {
	dir := t.TempDir()
	c, _ := newDurable(t, dir, 80, DurabilityOptions{SegmentBytes: 512})
	c.wal.log.Close()
	// Damage a payload byte in the FIRST segment — not the tail.
	ents, _ := os.ReadDir(dir)
	var first string
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".log") {
			first = filepath.Join(dir, e.Name())
			break // ReadDir sorts; wal names sort by LSN
		}
	}
	data, err := os.ReadFile(first)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(first, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Recover(dir, DurabilityOptions{}); err == nil {
		t.Fatal("mid-log corruption must fail recovery, not silently drop records")
	}
}

func TestCreateDurableRefusesPopulatedDir(t *testing.T) {
	dir := t.TempDir()
	c, _ := newDurable(t, dir, 5, DurabilityOptions{})
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := CreateDurable(dir, "t2", durableSchema(), DurabilityOptions{}); err == nil {
		t.Fatal("want already-holds-a-collection error")
	}
}

func TestRecoverEmptyDirFails(t *testing.T) {
	if _, err := Recover(t.TempDir(), DurabilityOptions{}); err == nil {
		t.Fatal("want nothing-to-recover error")
	}
}

func TestDropIndexSurvivesRecovery(t *testing.T) {
	dir := t.TempDir()
	c, _ := newDurable(t, dir, 40, DurabilityOptions{})
	if err := c.CreateIndex("ivfflat", map[string]int{"nlist": 2}); err != nil {
		t.Fatal(err)
	}
	c.DropIndex()
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := Recover(dir, DurabilityOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if kind, _, _ := re.IndexInfo(); kind != "" {
		t.Fatalf("dropped index resurrected as %q", kind)
	}
}

func TestCloseIsIdempotentAndFinal(t *testing.T) {
	dir := t.TempDir()
	c, ds := newDurable(t, dir, 10, DurabilityOptions{})
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Insert(ds.Row(0), durableRowAttrs(0)); err == nil {
		t.Fatal("want error inserting into a closed collection")
	}
}

func TestBackgroundCheckpointer(t *testing.T) {
	dir := t.TempDir()
	c, ds := newDurable(t, dir, 30, DurabilityOptions{CheckpointInterval: 20 * time.Millisecond})
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, lastLSN, ckptLSN := c.DurabilityStatus()
		if ckptLSN >= lastLSN && ckptLSN > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("background checkpointer never caught up: last=%d ckpt=%d", lastLSN, ckptLSN)
		}
		time.Sleep(10 * time.Millisecond)
	}
	// Writes keep flowing while checkpoints run.
	for i := 0; i < 30; i++ {
		if _, err := c.Insert(ds.Row(i), durableRowAttrs(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := Recover(dir, DurabilityOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	requireSameAnswers(t, c, re, ds, 3)
}

func TestSaveIsDurableAndAtomic(t *testing.T) {
	// Satellite regression: Save must survive its parent-dir rename and
	// leave no temp file behind.
	c, _ := newCol(t, 20)
	dir := t.TempDir()
	path := filepath.Join(dir, "c.snap")
	if err := c.Save(path); err != nil {
		t.Fatal(err)
	}
	// Overwrite in place (the rename path over an existing file).
	if err := c.Save(path); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 || ents[0].Name() != "c.snap" {
		t.Fatalf("stray files after Save: %v", ents)
	}
	if _, err := Load(path); err != nil {
		t.Fatal(err)
	}
}

func TestSaveDoesNotBlockWriters(t *testing.T) {
	// Satellite regression: Save reads a pinned snapshot; a concurrent
	// writer must make progress while Save runs (serialization off the
	// epoch snapshot takes no collection lock at all).
	c, ds := newCol(t, 500)
	done := make(chan error, 1)
	go func() {
		done <- c.Save(filepath.Join(t.TempDir(), "bg.snap"))
	}()
	for i := 0; i < 50; i++ {
		if _, err := c.Insert(ds.Row(i%ds.Count), map[string]filter.Value{"g": filter.IntV(0)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestRecoverTwiceAfterTearBelowCheckpoint(t *testing.T) {
	// Review regression: a checkpoint can cover LSNs whose WAL frames
	// never reached disk (rows are applied and published before their
	// group commit fsyncs, and the checkpointer pins the published
	// snapshot). If a crash then tears the log below the checkpoint
	// LSN, the first recovery truncates the tear and reopens the log at
	// the checkpoint LSN — and every later recovery must tolerate the
	// resulting inter-segment gap instead of failing forever with
	// "missing records mid-log".
	dir := t.TempDir()
	c, ds := newDurable(t, dir, 40, DurabilityOptions{})
	// Hand-write a checkpoint at the current LSN without rotating or
	// retiring the log: exactly the on-disk state a pinned-snapshot
	// checkpoint leaves while the tail frames it covers are still in
	// the page cache.
	s := c.snap.Load()
	if err := writeSnapshotFile(filepath.Join(dir, checkpointName(s.lsn)), c.fileSnapshotAt(s)); err != nil {
		t.Fatal(err)
	}
	c.wal.log.Close()
	// Power loss: the segment loses its final frame, so the log now
	// ends below the checkpoint LSN.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var seg string
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".log") {
			seg = filepath.Join(dir, e.Name())
		}
	}
	info, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(seg, info.Size()-1); err != nil {
		t.Fatal(err)
	}

	re, err := Recover(dir, DurabilityOptions{})
	if err != nil {
		t.Fatalf("first recovery: %v", err)
	}
	requireSameAnswers(t, c, re, ds, 5)
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}

	re2, err := Recover(dir, DurabilityOptions{})
	if err != nil {
		t.Fatalf("second recovery after covered tear: %v", err)
	}
	defer re2.Close()
	requireSameAnswers(t, c, re2, ds, 5)
	// The twice-recovered collection still takes durable writes.
	if _, err := re2.Insert(ds.Row(0), durableRowAttrs(0)); err != nil {
		t.Fatal(err)
	}
}
