package core

import (
	"testing"

	"vdbms/internal/dataset"
	"vdbms/internal/index"
)

// quantizedAnn reports whether the installed index scans codes.
func quantizedAnn(c *Collection) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	qi, ok := c.ann.(index.Quantized)
	return ok && qi.QuantizedScan()
}

// TestQuantizedRecipeSurvivesRecovery: a schema-level quantization
// default is materialized into the index opts at CreateIndex, logged
// in the WAL index record, and must come back as a quantized index
// after crash recovery — from the log alone and from a checkpoint.
func TestQuantizedRecipeSurvivesRecovery(t *testing.T) {
	for _, checkpoint := range []bool{false, true} {
		dir := t.TempDir()
		schema := Schema{Dim: 8, Quantization: "sq8", RerankK: 48}
		c, err := CreateDurable(dir, "t", schema, DurabilityOptions{})
		if err != nil {
			t.Fatal(err)
		}
		ds := dataset.Clustered(300, 8, 4, 0.4, 17)
		for i := 0; i < 300; i++ {
			if _, err := c.Insert(ds.Row(i), nil); err != nil {
				t.Fatal(err)
			}
		}
		if err := c.CreateIndex("hnsw", map[string]int{"m": 6}); err != nil {
			t.Fatal(err)
		}
		if !quantizedAnn(c) {
			t.Fatal("schema default did not produce a quantized index")
		}
		if checkpoint {
			if err := c.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
		c.WaitForIndex()
		// Crash, not Close: recovery rebuilds from the recorded recipe.
		if err := c.wal.log.Close(); err != nil {
			t.Fatal(err)
		}
		re, err := Recover(dir, DurabilityOptions{})
		if err != nil {
			t.Fatal(err)
		}
		re.WaitForIndex()
		if re.schema.Quantization != "sq8" || re.schema.RerankK != 48 {
			t.Fatalf("checkpoint=%v: schema came back as %q/%d", checkpoint, re.schema.Quantization, re.schema.RerankK)
		}
		if kind, covered, _ := re.IndexInfo(); kind != "hnsw" || covered != 300 {
			t.Fatalf("checkpoint=%v: index %q covering %d", checkpoint, kind, covered)
		}
		if !quantizedAnn(re) {
			t.Fatalf("checkpoint=%v: recovered index lost its quantized scan", checkpoint)
		}
		// The recovered collection answers queries with exact re-ranked
		// distances, same as the original.
		q := ds.Row(3)
		want, _, err := c.Search(Request{Vector: q, K: 5, Ef: 64})
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := re.Search(Request{Vector: q, K: 5, Ef: 64})
		if err != nil {
			t.Fatal(err)
		}
		if len(want) != len(got) {
			t.Fatalf("checkpoint=%v: %d vs %d hits", checkpoint, len(want), len(got))
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("checkpoint=%v hit %d: %+v vs %+v", checkpoint, i, want[i], got[i])
			}
		}
		re.Close()
	}
}
