package core

import (
	"sync"
	"testing"

	"vdbms/internal/dataset"
	"vdbms/internal/filter"
)

// BenchmarkMixedReadWrite measures search throughput while a writer
// goroutine mutates the collection: the workload the snapshot engine
// exists for. Readers run one search per iteration (b.RunParallel
// spreads them over GOMAXPROCS goroutines); one background writer
// cycles updates, inserts, and deletes fast enough to keep crossing
// the index staleness threshold, so the benchmark also pays for every
// triggered ANN rebuild. The reported queries/s is the acceptance
// metric in BENCH_concurrent.json: under the seed lock-per-operation
// engine each rebuild stalls every reader; under snapshot isolation
// readers never wait on a build.
func BenchmarkMixedReadWrite(b *testing.B) {
	const (
		rows = 8192
		dim  = 32
	)
	c, err := NewCollection("bench", Schema{
		Dim:        dim,
		Attributes: map[string]filter.Kind{"g": filter.Int64},
	})
	if err != nil {
		b.Fatal(err)
	}
	ds := dataset.Clustered(rows, dim, 8, 0.3, 7)
	for i := 0; i < rows; i++ {
		if _, err := c.Insert(ds.Row(i), map[string]filter.Value{"g": filter.IntV(int64(i % 16))}); err != nil {
			b.Fatal(err)
		}
	}
	if err := c.CreateIndex("hnsw", map[string]int{"m": 8}); err != nil {
		b.Fatal(err)
	}
	qs := ds.Queries(64, 0.1, 8)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			switch i % 16 {
			case 0:
				c.Insert(ds.Row(i%rows), map[string]filter.Value{"g": filter.IntV(int64(i % 16))}) //nolint:errcheck
			case 1:
				c.Delete(int64(i % rows)) //nolint:errcheck
			default:
				c.UpdateVector(int64(i%rows), ds.Row((i*7)%rows)) //nolint:errcheck
			}
			i++
		}
	}()

	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if _, _, err := c.Search(Request{Vector: qs[i%len(qs)], K: 10, Ef: 64}); err != nil {
				b.Fatal(err)
			}
			i++
		}
	})
	b.StopTimer()
	close(stop)
	wg.Wait()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "queries/s")
}
