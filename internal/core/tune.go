// Recall-SLO auto-tuning and drift-driven index re-selection: the
// feedback loop that turns the observability built by the stats layer
// and the recall auditor into an optimizer. A background tuner
// periodically replays the collection's query reservoir — the same
// samples the auditor uses — against exact ground truth AND against
// the ANN index at every rung of a parameter ladder (ef for
// graph/tree families, nprobe for partition families), maintaining a
// per-(index kind, k-bucket) recall-vs-cost frontier
// (internal/tuner). A query carrying a target recall then resolves to
// the cheapest parameter the frontier proves meets it
// (Collection.resolveKnobs), with the ladder maximum as the safe
// default while the frontier is cold and hysteresis against
// oscillation.
//
// The same pass watches for drift no parameter can fix: a collection
// grown past the exact-scan/graph crossover with no index at all, a
// frontier whose best rung cannot reach the target (the index itself
// is too weak), or a workload turned highly-filtered-and-selective
// where a partition index beats a graph. Each condition proposes a
// new index recipe; after the decision repeats on consecutive passes
// (debounce) and outside the post-fire cooldown, the recipe is handed
// to the single-flight background builder for an epoch-guarded,
// non-blocking swap — exactly the CreateIndex install path, so
// queries never wait and a superseding CreateIndex/DropIndex
// invalidates the swap.
//
// Everything here runs off the query path: passes pin a snapshot like
// any reader, the frontier publishes through an atomic pointer, and
// the only locks taken are tuneMu (tuner state) and briefly mu (to
// hand a reselect build to the builder). Lock order: never hold
// tuneMu and mu together.
package core

import (
	"fmt"
	"log"
	"math"
	"time"

	"vdbms/internal/index"
	"vdbms/internal/obs"
	"vdbms/internal/stats"
	"vdbms/internal/tuner"
)

// TuneConfig configures a collection's recall-SLO auto-tuner.
type TuneConfig struct {
	// Interval is the cadence of background tuning passes; zero or
	// negative runs no background loop (TuneNow still works).
	Interval time.Duration
	// TargetRecall, in (0,1], becomes the collection's default recall
	// target: queries without an explicit target or explicit Ef/NProbe
	// resolve against it. Zero leaves the collection default unset
	// (per-query targets still work).
	TargetRecall float64
	// ReservoirSize caps the query reservoir; 0 keeps the current
	// size. The reservoir is shared with the recall auditor.
	ReservoirSize int
	// PassSamples caps how many reservoir samples one pass replays
	// (each sample costs one exact scan plus one ANN probe per ladder
	// rung). Default 16.
	PassSamples int
	// MinSamples is the per-rung replay count before the frontier
	// trusts a rung (tuner.Config.MinSamples). Default 8.
	MinSamples int
	// Margin is the recall headroom required to move to a cheaper rung
	// (tuner.Config.Margin). Default 0.01.
	Margin float64
	// Reselect allows drift-triggered index re-selection: when on, a
	// pass may hand the background builder a new index recipe. Off by
	// default — parameter tuning alone never rebuilds anything.
	Reselect bool
	// Logf receives tuner log lines; log.Printf when nil.
	Logf func(format string, args ...any)
}

func (cfg TuneConfig) normalized() TuneConfig {
	if cfg.PassSamples <= 0 {
		cfg.PassSamples = 16
	}
	if cfg.MinSamples <= 0 {
		cfg.MinSamples = tuner.DefaultMinSamples
	}
	if cfg.Margin <= 0 {
		cfg.Margin = tuner.DefaultMargin
	}
	return cfg
}

// TuneReport is the result of one tuning pass.
type TuneReport struct {
	Collection string  `json:"collection"`
	Outcome    string  `json:"outcome"` // ok, empty, no_index, error
	Samples    int     `json:"samples"` // replayed (non-stale) samples
	Stale      int     `json:"stale"`   // skipped as unreplayable
	Kind       string  `json:"kind"`    // index kind the pass tuned
	Knob       string  `json:"knob"`    // "ef" or "nprobe"
	Target     float64 `json:"target"`  // effective target recall (0 = none)
	// Resolved is the parameter the frontier resolves for the pass's
	// dominant k at the target (only meaningful when Target > 0).
	Resolved int  `json:"resolved"`
	Trusted  bool `json:"trusted"` // Resolved came from a trusted rung
	// BestRecall is the best trusted recall on the frontier at the
	// dominant k — the "tuning exhausted" signal when below Target.
	BestRecall float64 `json:"best_recall"`
	// Drift is the re-selection decision this pass proposed or fired
	// ("" when none): build_graph, strengthen, partition.
	Drift      string        `json:"drift,omitempty"`
	DriftFired bool          `json:"drift_fired,omitempty"`
	Elapsed    time.Duration `json:"elapsed_ns"`
}

// refreshSampling recomputes the hot-path sampling gate from who
// currently wants reservoir samples.
func (c *Collection) refreshSampling() {
	c.sampling.Store(c.samplingAudit.Load() || c.samplingTune.Load())
}

// SetTargetRecall sets (or, with 0, clears) the collection's default
// recall target. Safe while searches run; takes effect on the next
// query.
func (c *Collection) SetTargetRecall(target float64) {
	if target < 0 || target > 1 {
		target = 0
	}
	c.targetRecall.Store(math.Float64bits(target))
}

// TargetRecall reports the collection's default recall target (0 =
// none).
func (c *Collection) TargetRecall() float64 {
	return math.Float64frombits(c.targetRecall.Load())
}

// SetSearchDefaults sets the collection-level Ef/NProbe defaults used
// when a query carries neither explicit knobs nor a recall target.
// Zeros clear them (the index's built-in defaults then apply).
func (c *Collection) SetSearchDefaults(ef, nprobe int) {
	if ef < 0 {
		ef = 0
	}
	if nprobe < 0 {
		nprobe = 0
	}
	c.defEf.Store(int64(ef))
	c.defNProbe.Store(int64(nprobe))
}

// SearchDefaults reports the collection-level Ef/NProbe defaults.
func (c *Collection) SearchDefaults() (ef, nprobe int) {
	return int(c.defEf.Load()), int(c.defNProbe.Load())
}

// EnableTune turns on query sampling and (when cfg.Interval > 0) the
// background tuning loop. Calling it again reconfigures: the old loop
// is stopped before the new one starts. Safe while searches run.
func (c *Collection) EnableTune(cfg TuneConfig) {
	cfg = cfg.normalized()
	c.tuneMu.Lock()
	defer c.tuneMu.Unlock()
	if cfg.ReservoirSize > 0 && cfg.ReservoirSize != c.sampler.Load().Cap() {
		c.sampler.Store(stats.NewReservoir(cfg.ReservoirSize))
	}
	c.tuneCfg = cfg
	c.stopTuneLoopLocked()
	c.samplingTune.Store(true)
	c.refreshSampling()
	if cfg.TargetRecall > 0 {
		c.SetTargetRecall(cfg.TargetRecall)
	}
	if cfg.Interval > 0 {
		stop, done := make(chan struct{}), make(chan struct{})
		c.tuneStop, c.tuneDone = stop, done
		go c.tuneLoop(cfg, stop, done)
	}
}

// DisableTune stops the background loop and the tuner's interest in
// query sampling (the auditor's interest, if any, keeps sampling on).
// The frontier keeps its contents: queries with a target keep
// resolving against the last published state, and TuneNow still works.
func (c *Collection) DisableTune() {
	c.tuneMu.Lock()
	defer c.tuneMu.Unlock()
	c.samplingTune.Store(false)
	c.refreshSampling()
	c.stopTuneLoopLocked()
}

// stopTuneLoopLocked stops the background loop and waits for it to
// exit. Waiting under tuneMu is safe for the same reason as the audit
// loop: the loop body runs on the config captured at start and never
// takes tuneMu itself (tunePass touches tuneMu only through
// frontierFor and driftGate, both of which run between, not during,
// the stop check).
func (c *Collection) stopTuneLoopLocked() {
	if c.tuneStop != nil {
		close(c.tuneStop)
		<-c.tuneDone
		c.tuneStop, c.tuneDone = nil, nil
	}
}

func (c *Collection) tuneLoop(cfg TuneConfig, stop, done chan struct{}) {
	defer close(done)
	tick := time.NewTicker(cfg.Interval)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			if _, err := c.tunePass(cfg); err != nil {
				logf := cfg.Logf
				if logf == nil {
					logf = log.Printf
				}
				logf("vdbms: tune pass on %q failed: %v", c.name, err)
			}
		case <-stop:
			return
		}
	}
}

// TuneNow runs one tuning pass synchronously with the current
// configuration and returns its report. Like the audit, it never
// blocks writers or searches: replays run on a snapshot pinned at
// entry.
func (c *Collection) TuneNow() (TuneReport, error) {
	c.tuneMu.Lock()
	cfg := c.tuneCfg
	c.tuneMu.Unlock()
	return c.tunePass(cfg.normalized())
}

// frontierFor returns (creating if needed) the frontier for an index
// kind and publishes it as the current one for lock-free resolution.
func (c *Collection) frontierFor(kind string, cfg TuneConfig) *tuner.Frontier {
	c.tuneMu.Lock()
	defer c.tuneMu.Unlock()
	if c.frontiers == nil {
		c.frontiers = map[string]*tuner.Frontier{}
	}
	fr := c.frontiers[kind]
	if fr == nil {
		fr = tuner.New(kind, tuner.Config{MinSamples: cfg.MinSamples, Margin: cfg.Margin})
		c.frontiers[kind] = fr
	}
	c.curFrontier.Store(fr)
	return fr
}

// resetFrontier discards the accumulated frontier for an index kind —
// called after an install changes the index under that kind (a
// re-selection or CreateIndex), since recall estimates measured
// against the old structure no longer describe the new one. Must not
// be called while holding mu (lock order: tuneMu and mu are never
// held together).
func (c *Collection) resetFrontier(kind string) {
	c.tuneMu.Lock()
	defer c.tuneMu.Unlock()
	if c.frontiers != nil {
		delete(c.frontiers, kind)
	}
	if fr := c.curFrontier.Load(); fr != nil && fr.Kind() == kind {
		c.curFrontier.Store(nil)
	}
}

// rungAgg accumulates one pass's replays at a single ladder rung.
type rungAgg struct {
	recallSum float64
	compsSum  float64
	n         int
}

func (c *Collection) tunePass(cfg TuneConfig) (TuneReport, error) {
	start := time.Now()
	rep := TuneReport{Collection: c.name, Target: c.TargetRecall()}
	samples := c.sampler.Load().Snapshot()
	// Pin as a reader for the whole pass: exact replays scan the
	// snapshot's column (same fencing as the recall audit).
	c.beginRead()
	defer c.endRead()
	s := c.snap.Load()
	epoch := c.updateEpoch.Load()
	exclude := s.exclude()

	if s.env.ANN == nil {
		// Serving is exact (no index, or one bypassed as stale):
		// recall is 1 by construction, there is nothing to tune — but
		// a large collection with no index at all is itself drift.
		rep.Outcome = "no_index"
		obs.TunePasses.With("no_index").Inc()
		rep.Elapsed = time.Since(start)
		obs.TuneSeconds.Observe(rep.Elapsed.Seconds())
		c.maybeReselect(cfg, &rep, s, nil, 0)
		return rep, nil
	}

	kind := s.annKind
	fr := c.frontierFor(kind, cfg)
	knob := fr.Knob()
	rep.Kind, rep.Knob = kind, knob.String()
	ladder := tuner.Ladder(knob)

	// Replay each usable sample once against exact ground truth, then
	// once per ladder rung against the ANN index, aggregating recall
	// and probe cost per (k, rung).
	aggs := map[int][]rungAgg{} // k -> per-rung aggregates
	kCount := map[int]int{}     // k -> replayed samples (dominant-k vote)
	for _, sm := range samples {
		if rep.Samples >= cfg.PassSamples {
			break
		}
		if sm.K <= 0 || len(sm.Vector) == 0 {
			continue
		}
		// Staleness rules shared with the audit: a sample served
		// before the last in-place update, or whose served rows have
		// since been deleted, would measure churn, not the index.
		if sm.Epoch < epoch {
			rep.Stale++
			continue
		}
		stale := false
		for _, id := range sm.Served {
			if id < 0 || id >= int64(s.rows) || (exclude != nil && exclude(id)) {
				stale = true
				break
			}
		}
		if stale {
			rep.Stale++
			continue
		}
		truth, err := s.env.ExactGroundTruth(sm.Vector, sm.K, sm.Preds, exclude)
		if err != nil {
			rep.Outcome = "error"
			obs.TunePasses.With("error").Inc()
			return rep, fmt.Errorf("core: tune ground truth: %w", err)
		}
		if len(truth) == 0 {
			continue // predicate admits nothing now; recall undefined
		}
		truthSet := make(map[int64]struct{}, len(truth))
		for _, r := range truth {
			truthSet[r.ID] = struct{}{}
		}
		denom := sm.K
		if len(truth) < denom {
			denom = len(truth)
		}
		agg := aggs[sm.K]
		if agg == nil {
			agg = make([]rungAgg, len(ladder))
			aggs[sm.K] = agg
		}
		for ri, param := range ladder {
			ef, nprobe := 0, 0
			if knob == tuner.KnobNProbe {
				nprobe = param
			} else {
				ef = param
			}
			res, st, err := s.env.ReplayANN(sm.Vector, sm.K, ef, nprobe, sm.Preds, exclude)
			if err != nil {
				rep.Outcome = "error"
				obs.TunePasses.With("error").Inc()
				return rep, fmt.Errorf("core: tune replay %s=%d: %w", knob, param, err)
			}
			hits := 0
			for _, r := range res {
				if _, ok := truthSet[r.ID]; ok {
					hits++
				}
			}
			agg[ri].recallSum += float64(hits) / float64(denom)
			agg[ri].compsSum += float64(st.DistanceComps)
			agg[ri].n++
		}
		rep.Samples++
		kCount[sm.K]++
	}

	rep.Elapsed = time.Since(start)
	obs.TuneSeconds.Observe(rep.Elapsed.Seconds())
	obs.TuneSamples.Add(int64(rep.Samples))
	if rep.Samples == 0 {
		rep.Outcome = "empty"
		obs.TunePasses.With("empty").Inc()
		return rep, nil
	}

	// Fold the aggregates into the frontier (one Observe per distinct
	// k; buckets merge internally) and publish.
	for k, agg := range aggs {
		observations := make([]tuner.Observation, 0, len(agg))
		for ri, a := range agg {
			if a.n == 0 {
				continue
			}
			observations = append(observations, tuner.Observation{
				Param:   ladder[ri],
				Recall:  a.recallSum / float64(a.n),
				Comps:   a.compsSum / float64(a.n),
				Samples: a.n,
			})
		}
		fr.Observe(k, observations)
	}

	// Report + export against the dominant k of this pass.
	domK, domN := 0, 0
	for k, n := range kCount {
		if n > domN || (n == domN && k < domK) {
			domK, domN = k, n
		}
	}
	rep.BestRecall, _ = fr.BestRecall(domK)
	obs.TuneFrontierRecall.With(c.name).Set(rep.BestRecall)
	if rep.Target > 0 {
		rep.Resolved, rep.Trusted = fr.Resolve(rep.Target, domK)
		obs.TuneResolvedParam.With(c.name).Set(float64(rep.Resolved))
	}
	rep.Outcome = "ok"
	obs.TunePasses.With("ok").Inc()

	c.maybeReselect(cfg, &rep, s, fr, domK)
	return rep, nil
}

// graphCrossover is the live-row count past which a graph index is
// worth building on an unindexed collection: well above the executor's
// small-survivor exact-scan cutoff, and roughly where one brute-force
// scan costs more than an hnsw probe at the ladder maximum.
const graphCrossover = 4096

// Reselect debouncing: a drift decision must repeat on driftHold
// consecutive passes to fire, and after firing no decision is
// considered for driftCooldownPasses passes (the rebuilt index needs
// fresh frontier data before it can be judged).
const (
	driftHold           = 2
	driftCooldownPasses = 5
)

// driftDecision derives this pass's re-selection proposal (decision
// name + recipe), or "" when the current index fits the observed
// workload. Pure observation — debouncing and execution happen in
// maybeReselect.
func (c *Collection) driftDecision(s *snapshot, fr *tuner.Frontier, domK int, target float64) (string, string, map[string]int) {
	live := s.rows - s.nDel
	// No index at all on a collection past the crossover: exact scans
	// are paying N comps per query where a graph would pay a few
	// hundred.
	if s.annKind == "" {
		if live >= graphCrossover {
			return "build_graph", "hnsw", nil
		}
		return "", "", nil
	}
	if fr == nil {
		return "", "", nil
	}
	// Tuning exhausted: even the most expensive trusted rung cannot
	// reach the target, so no parameter change will — the index itself
	// is too weak (built too small, or the wrong family for the data).
	if target > 0 {
		if best, ok := fr.BestRecall(domK); ok && best < target {
			if kind, opts := strengthenRecipe(s.annKind, s.annOpts); kind != "" {
				return "strengthen", kind, opts
			}
		}
	}
	// Workload shift: nearly every query filters, and the predicates
	// are highly selective — the regime where partition-first indexes
	// (bitmap-driven IVF probes) beat graph traversal, which degrades
	// under heavy blocking (Section 2.3(1)).
	if tuner.KnobFor(s.annKind) == tuner.KnobEf && live >= graphCrossover {
		st := c.stats.Snapshot(s.rows, live, c.schema.Dim)
		if st.FilteredFraction >= 0.75 && st.Queries >= 64 {
			var selSum float64
			var selN int
			for _, h := range st.Selectivity {
				if h.Count >= 16 {
					selSum += h.Mean
					selN++
				}
			}
			if selN > 0 && selSum/float64(selN) <= 0.05 {
				return "partition", "ivfflat", nil
			}
		}
	}
	return "", "", nil
}

// strengthenRecipe proposes a stronger index for a recall ceiling:
// graph families double their construction budget (capped); anything
// else moves to a default hnsw, the highest-recall family here.
// Returns "" when the current recipe is already at the cap (rebuilding
// the same thing would loop).
func strengthenRecipe(kind string, opts map[string]int) (string, map[string]int) {
	if kind != "hnsw" {
		return "hnsw", nil
	}
	m, efc := 16, 200 // hnsw construction defaults
	if v, ok := opts["m"]; ok && v > 0 {
		m = v
	}
	if v, ok := opts["efc"]; ok && v > 0 {
		efc = v
	}
	if m >= 64 && efc >= 1024 {
		return "", nil
	}
	next := map[string]int{}
	for k, v := range opts {
		next[k] = v
	}
	if m < 64 {
		m *= 2
		if m > 64 {
			m = 64
		}
	}
	if efc < 1024 {
		efc *= 2
		if efc > 1024 {
			efc = 1024
		}
	}
	next["m"], next["efc"] = m, efc
	return "hnsw", next
}

// maybeReselect runs the drift detector and, when a decision survives
// the debounce and cooldown, hands the recipe to the background
// builder. Takes tuneMu (debounce state) and then mu (builder
// handoff) strictly in sequence, never nested.
func (c *Collection) maybeReselect(cfg TuneConfig, rep *TuneReport, s *snapshot, fr *tuner.Frontier, domK int) {
	if !cfg.Reselect {
		return
	}
	decision, kind, opts := c.driftDecision(s, fr, domK, rep.Target)
	rep.Drift = decision

	c.tuneMu.Lock()
	if c.driftCooldown > 0 {
		c.driftCooldown--
		c.tuneMu.Unlock()
		return
	}
	if decision == "" || decision != c.lastDrift {
		c.lastDrift, c.driftStreak = decision, 0
		if decision != "" {
			c.driftStreak = 1
		}
		c.tuneMu.Unlock()
		return
	}
	c.driftStreak++
	if c.driftStreak < driftHold {
		c.tuneMu.Unlock()
		return
	}
	// Fires: reset the debounce and start the cooldown before
	// releasing tuneMu, so a racing pass cannot double-fire.
	c.lastDrift, c.driftStreak = "", 0
	c.driftCooldown = driftCooldownPasses
	c.tuneMu.Unlock()

	if c.requestReselect(decision, kind, opts, cfg.Logf) {
		rep.DriftFired = true
	}
}

// requestReselect hands a drift-proposed recipe to the background
// builder: the same pin/build/epoch-guarded-install/revert protocol as
// CreateIndex, minus the synchronous wait. Returns false when the
// build could not start (builder busy, recipe unchanged, empty or
// closed collection).
func (c *Collection) requestReselect(decision, kind string, opts map[string]int, logf func(string, ...any)) bool {
	opts, err := index.MergeQuantDefaults(kind, opts, c.schema.Quantization, c.schema.RerankK)
	if err != nil {
		return false
	}
	c.mu.Lock()
	if c.closed || c.replaying || c.building || c.n == 0 {
		c.mu.Unlock()
		return false
	}
	if kind == c.annKind && sameOpts(opts, c.annOpts) {
		c.mu.Unlock()
		return false
	}
	c.buildEpoch++
	epoch := c.buildEpoch
	prevKind, prevOpts := c.annKind, c.annOpts
	c.annKind, c.annOpts = kind, opts
	data, n, dirty := c.data[:c.n*c.schema.Dim], c.n, c.dirty
	// Pin the column by reference for the off-lock build, and mark the
	// builder busy so staleness-triggered rebuilds stay single-flight
	// with the swap.
	c.dataPins++
	c.building = true
	c.buildDone = make(chan struct{})
	obs.IndexBuildState.With(c.name).Set(1)
	c.mu.Unlock()

	obs.PlanReselects.With(decision).Inc()
	if logf == nil {
		logf = log.Printf
	}
	logf("vdbms: index re-selection on %q: %s -> %s %v (was %s)", c.name, decision, kind, opts, prevKind)
	go c.runReselect(epoch, kind, opts, prevKind, prevOpts, data, n, dirty)
	return true
}

func sameOpts(a, b map[string]int) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if bv, ok := b[k]; !ok || bv != v {
			return false
		}
	}
	return true
}

// runReselect is the re-selection builder goroutine: build off-lock,
// install under the epoch guard, log the new recipe to the WAL (so
// recovery rebuilds the reselected index, exactly like CreateIndex),
// and revert the recipe on failure. Queries never wait — they keep
// using the previous snapshot's index until the new one is published.
func (c *Collection) runReselect(epoch uint64, kind string, opts map[string]int, prevKind string, prevOpts map[string]int, data []float32, n, dirty int) {
	idx, err := buildTimed(kind, data, n, c.schema.Dim, c.schema.Metric, opts)

	c.mu.Lock()
	c.dataPins--
	c.building = false
	close(c.buildDone)
	obs.IndexBuildState.With(c.name).Set(0)
	switch {
	case err != nil:
		obs.IndexBuildsTotal.With("failed").Inc()
		if c.buildEpoch == epoch {
			// Nothing superseded the swap: restore the recipe so the
			// next staleness rebuild targets what is actually installed.
			c.annKind, c.annOpts = prevKind, prevOpts
		}
		c.mu.Unlock()
		return
	case epoch != c.buildEpoch:
		// CreateIndex/DropIndex superseded the swap mid-build.
		obs.IndexBuildsTotal.With("stale").Inc()
		c.maybeTriggerBuildLocked()
		c.mu.Unlock()
		return
	}
	c.installLocked(idx, n, dirty)
	obs.IndexBuildsTotal.With("installed").Inc()
	commit, _ := c.logLocked(func() []byte { return encodeCreateIndex(kind, opts) })
	c.publishLocked()
	c.maybeTriggerBuildLocked()
	c.mu.Unlock()
	// The old kind's frontier no longer describes the serving index.
	c.resetFrontier(prevKind)
	c.resetFrontier(kind)
	// A commit failure surfaces on the next mutation (sticky WAL
	// error); the swap itself stands.
	commit.Wait()
}
