package core

import (
	"sync"
	"testing"

	"vdbms/internal/dataset"
	"vdbms/internal/topk"
	"vdbms/internal/tuner"
	"vdbms/internal/vec"
)

// BenchmarkPlanTuned is the acceptance benchmark for adaptive query
// optimization: tuned versus static serving at matched recall on a
// 100k x 128-d set behind a coarse IVF index. The "static_worst"
// variant pins the nprobe ladder maximum — what a caller who needs a
// recall guarantee but has no frontier must run everywhere. The
// "tuned" variant carries only a 0.95 recall@10 target and lets the
// warmed tuner resolve the cheapest nprobe its replays prove meets
// it. Both queries/s figures land in BENCH_plan.json together with
// the recall@10 each variant actually serves (measured against
// brute-force ground truth outside the timed loop); the acceptance
// bar is tuned >= static_worst queries/s with recall@10 still >=
// 0.95.
func BenchmarkPlanTuned(b *testing.B) {
	const (
		rows   = 100_000
		dim    = 128
		k      = 10
		nq     = 64
		target = 0.95
	)
	planBenchOnce.Do(func() {
		ds := dataset.Clustered(rows, dim, 64, 0.35, 11)
		c, err := NewCollection("planbench", Schema{Dim: dim})
		if err != nil {
			panic(err)
		}
		for i := 0; i < rows; i++ {
			if _, err := c.Insert(ds.Row(i), nil); err != nil {
				panic(err)
			}
		}
		if err := c.CreateIndex("ivfflat", map[string]int{"nlist": 128}); err != nil {
			panic(err)
		}
		queries := ds.Queries(nq, 0.1, 13)
		c.EnableTune(TuneConfig{TargetRecall: target, ReservoirSize: nq, PassSamples: nq})
		for _, q := range queries {
			if _, _, err := c.Search(Request{Vector: q, K: k}); err != nil {
				panic(err)
			}
		}
		rep, err := c.TuneNow()
		if err != nil {
			panic(err)
		}
		planBenchCol, planBenchQueries, planBenchReport = c, queries, rep
		planBenchTruth = dataset.GroundTruth(vec.Distance(vec.L2), ds, queries, k)
	})
	c, queries, truth := planBenchCol, planBenchQueries, planBenchTruth
	if !planBenchReport.Trusted {
		b.Fatalf("tuner did not converge: %+v", planBenchReport)
	}

	meanRecall := func(req Request) float64 {
		var sum float64
		for i, q := range queries {
			req.Vector, req.K = q, k
			res, _, err := c.Search(req)
			if err != nil {
				b.Fatal(err)
			}
			inTruth := map[int64]bool{}
			for _, r := range truth[i] {
				inTruth[r.ID] = true
			}
			hits := 0
			for _, r := range res {
				if inTruth[r.ID] {
					hits++
				}
			}
			sum += float64(hits) / float64(k)
		}
		return sum / float64(len(queries))
	}
	run := func(b *testing.B, req Request) {
		recall := meanRecall(req)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			req.Vector, req.K = queries[i%len(queries)], k
			if _, _, err := c.Search(req); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "queries/s")
		b.ReportMetric(recall, "recall@10")
	}

	maxNProbe := tuner.NProbeLadder[len(tuner.NProbeLadder)-1]
	b.Run("static_worst", func(b *testing.B) {
		run(b, Request{NProbe: maxNProbe})
	})
	b.Run("tuned", func(b *testing.B) {
		run(b, Request{}) // collection target resolves via the frontier
	})
}

var (
	planBenchOnce    sync.Once
	planBenchCol     *Collection
	planBenchQueries [][]float32
	planBenchTruth   [][]topk.Result
	planBenchReport  TuneReport
)
