package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"vdbms/internal/dataset"
	"vdbms/internal/filter"
	"vdbms/internal/index"
	"vdbms/internal/vec"
)

// These tests pin the three guarantees of the snapshot engine (run
// them with -race; the detector is half the oracle):
//
//  1. No torn state: a search never observes a half-applied write —
//     results are sorted, duplicate-free, in range, and never contain
//     a row whose Delete completed before the search started.
//  2. No build on the query path: searches complete while a background
//     index build is parked inside its build function.
//  3. Determinism: against a frozen snapshot, results are identical at
//     every Parallelism setting and across Search/SearchBatch.

// TestSnapshotIsolationStress is guarantee (1): concurrent inserts,
// deletes, updates, index create/drop, and searches, with a
// linearizability check on deletes.
func TestSnapshotIsolationStress(t *testing.T) {
	const (
		preload = 300
		dim     = 8
	)
	c, err := NewCollection("stress", Schema{
		Dim:        dim,
		Attributes: map[string]filter.Kind{"g": filter.Int64},
	})
	if err != nil {
		t.Fatal(err)
	}
	ds := dataset.Clustered(preload, dim, 4, 0.4, 3)
	for i := 0; i < preload; i++ {
		if _, err := c.Insert(ds.Row(i), map[string]filter.Value{"g": filter.IntV(int64(i % 10))}); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.CreateIndex("hnsw", map[string]int{"m": 6}); err != nil {
		t.Fatal(err)
	}

	var (
		stop    = make(chan struct{})
		writers sync.WaitGroup
		readers sync.WaitGroup
		deadMu  sync.Mutex
		dead    = map[int64]struct{}{} // ids whose Delete has returned
		deleted atomic.Int64
	)
	copyDead := func() map[int64]struct{} {
		deadMu.Lock()
		defer deadMu.Unlock()
		out := make(map[int64]struct{}, len(dead))
		for id := range dead {
			out[id] = struct{}{}
		}
		return out
	}

	// Writer: cycles inserts, updates, deletes. Deletes are recorded in
	// the shared set only after Delete returns, so any search started
	// afterwards must not surface the id.
	writers.Add(1)
	go func() {
		defer writers.Done()
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			switch i % 8 {
			case 0:
				c.Insert(ds.Row(i%preload), map[string]filter.Value{"g": filter.IntV(int64(i % 10))}) //nolint:errcheck
			case 1:
				if deleted.Load() < preload/3 {
					id := int64((i * 13) % preload)
					if err := c.Delete(id); err == nil {
						deadMu.Lock()
						dead[id] = struct{}{}
						deadMu.Unlock()
						deleted.Add(1)
					}
				}
			default:
				c.UpdateVector(int64(i%preload), ds.Row((i*7)%preload)) //nolint:errcheck
			}
			i++
		}
	}()

	// Index churn: replace and drop the index while searches run.
	writers.Add(1)
	go func() {
		defer writers.Done()
		kinds := []string{"hnsw", "ivfflat"}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if i%5 == 4 {
				c.DropIndex()
			} else {
				c.CreateIndex(kinds[i%2], nil) //nolint:errcheck
			}
		}
	}()

	var searchErr atomic.Value
	record := func(err error) {
		searchErr.CompareAndSwap(nil, err)
	}
	const searchers = 4
	for s := 0; s < searchers; s++ {
		readers.Add(1)
		go func(seed int) {
			defer readers.Done()
			for i := 0; i < 200; i++ {
				pre := copyDead()
				req := Request{Vector: ds.Row((seed*31 + i) % preload), K: 5, Ef: 48, Parallelism: 1 + i%3}
				if i%4 == 3 {
					req.Policy = "plan:brute_force"
				}
				res, _, err := c.Search(req)
				if err != nil {
					record(fmt.Errorf("search %d/%d: %w", seed, i, err))
					return
				}
				seen := map[int64]struct{}{}
				for j, r := range res {
					if r.ID < 0 || r.ID >= int64(c.Rows()) {
						record(fmt.Errorf("id %d out of range", r.ID))
						return
					}
					if _, dup := seen[r.ID]; dup {
						record(fmt.Errorf("duplicate id %d", r.ID))
						return
					}
					seen[r.ID] = struct{}{}
					if j > 0 && res[j-1].Dist > r.Dist {
						record(fmt.Errorf("unsorted results: %v", res))
						return
					}
					if _, gone := pre[r.ID]; gone {
						record(fmt.Errorf("id %d surfaced after its delete completed", r.ID))
						return
					}
				}
			}
		}(s)
	}

	// Range queries ride along under the same oracle.
	readers.Add(1)
	go func() {
		defer readers.Done()
		for i := 0; i < 100; i++ {
			pre := copyDead()
			res, err := c.SearchRange(ds.Row(i%preload), 2.0, nil)
			if err != nil {
				record(fmt.Errorf("range %d: %w", i, err))
				return
			}
			for _, r := range res {
				if _, gone := pre[r.ID]; gone {
					record(fmt.Errorf("range: id %d surfaced after its delete completed", r.ID))
					return
				}
			}
		}
	}()

	// Readers run fixed iteration counts and drive the test duration;
	// writers loop until told to stop.
	readers.Wait()
	close(stop)
	writers.Wait()
	if err, _ := searchErr.Load().(error); err != nil {
		t.Fatal(err)
	}
	c.WaitForIndex()
}

// Gate for the blocking test index: when armed, builds park on the
// channel; the synchronous CreateIndex build runs before arming.
var (
	holdMu      sync.Mutex
	holdCh      chan struct{}
	holdStarted chan struct{}
	holdOnce    sync.Once
)

func registerHoldIndex() {
	holdOnce.Do(func() {
		index.Register("testhold", func(data []float32, n, d int, metric vec.Metric, opts map[string]int) (index.Index, error) {
			holdMu.Lock()
			ch, started := holdCh, holdStarted
			holdMu.Unlock()
			if ch != nil {
				if started != nil {
					select {
					case started <- struct{}{}:
					default:
					}
				}
				<-ch
			}
			return index.NewFlat(data, n, d, nil)
		})
	})
}

// TestSearchDuringBackgroundBuild is guarantee (2): with the builder
// provably parked inside its build function, searches and writes
// complete normally. Under the old engine the search path ran the
// rebuild inline and this test would hang.
func TestSearchDuringBackgroundBuild(t *testing.T) {
	registerHoldIndex()
	const rows = 200
	c, ds := newCol(t, rows)
	if err := c.CreateIndex("testhold", nil); err != nil { // gate disarmed: instant
		t.Fatal(err)
	}

	holdMu.Lock()
	holdCh = make(chan struct{})
	holdStarted = make(chan struct{}, 1)
	holdMu.Unlock()
	defer func() {
		holdMu.Lock()
		ch := holdCh
		holdCh, holdStarted = nil, nil
		holdMu.Unlock()
		if ch != nil {
			close(ch)
		}
	}()

	// 45 updates: the 41st crosses the 0.2*200 threshold and starts the
	// background build, which parks on the gate.
	for i := 0; i < 45; i++ {
		if err := c.UpdateVector(int64(i), ds.Row((i+7)%rows)); err != nil {
			t.Fatal(err)
		}
	}
	<-holdStarted
	if _, _, _, building := c.IndexStatus(); !building {
		t.Fatal("background build should be in flight")
	}

	// Searches must complete while the builder is parked. The installed
	// index still covers every row (updates do not change the row
	// count), so these go through the index path, not just exact scan.
	for i := 0; i < 25; i++ {
		res, _, err := c.Search(Request{Vector: ds.Row(i), K: 3, Ef: 32})
		if err != nil || len(res) != 3 {
			t.Fatalf("search during build: %v %v", res, err)
		}
	}
	// Writes must not block on the build either.
	if _, err := c.Insert(ds.Row(0), map[string]filter.Value{"g": filter.IntV(0)}); err != nil {
		t.Fatal(err)
	}
	if _, _, _, building := c.IndexStatus(); !building {
		t.Fatal("build should still be parked after searches and writes")
	}

	// Release the gate; the build installs (or chains a catch-up for
	// the insert above, which also runs through the now-open gate).
	holdMu.Lock()
	ch := holdCh
	holdCh, holdStarted = nil, nil
	holdMu.Unlock()
	close(ch)
	c.WaitForIndex()
	kind, covered, _, building := c.IndexStatus()
	if building || kind != "testhold" {
		t.Fatalf("after wait: kind=%q building=%v", kind, building)
	}
	if covered != rows {
		// The chained catch-up (if any) covers rows+1; either install
		// is acceptable as long as coverage is not behind the trigger.
		if covered != rows+1 {
			t.Fatalf("covered = %d", covered)
		}
	}
}

// TestFrozenSnapshotDeterminism is guarantee (3): once writes quiesce,
// the same request returns byte-identical results at every worker
// count and through the batch path.
func TestFrozenSnapshotDeterminism(t *testing.T) {
	c, ds := newCol(t, 400)
	if err := c.CreateIndex("hnsw", map[string]int{"m": 8}); err != nil {
		t.Fatal(err)
	}
	// A quick storm, then quiesce.
	for i := 0; i < 120; i++ {
		switch i % 6 {
		case 0:
			c.Delete(int64(i)) //nolint:errcheck
		default:
			c.UpdateVector(int64((i*11)%400), ds.Row((i*3)%400)) //nolint:errcheck
		}
	}
	c.WaitForIndex()

	for _, policy := range []string{"", "plan:brute_force"} {
		var want []Result
		for _, par := range []int{1, 2, 7} {
			res, _, err := c.Search(Request{Vector: ds.Row(5), K: 10, Ef: 64, Parallelism: par, Policy: policy})
			if err != nil {
				t.Fatal(err)
			}
			if want == nil {
				want = res
				continue
			}
			if len(res) != len(want) {
				t.Fatalf("policy %q parallelism %d: %d results, want %d", policy, par, len(res), len(want))
			}
			for i := range res {
				if res[i] != want[i] {
					t.Fatalf("policy %q parallelism %d: result %d = %v, want %v", policy, par, i, res[i], want[i])
				}
			}
		}
		// The batch path shares the same snapshot discipline.
		batch, err := c.SearchBatch([][]float32{ds.Row(5)}, Request{K: 10, Ef: 64, Policy: policy})
		if err != nil {
			t.Fatal(err)
		}
		for i := range batch[0] {
			if batch[0][i] != want[i] {
				t.Fatalf("policy %q batch: result %d = %v, want %v", policy, i, batch[0][i], want[i])
			}
		}
	}
}
