package core

import (
	"fmt"
	"testing"
	"time"

	"vdbms/internal/dataset"
	"vdbms/internal/filter"
	"vdbms/internal/memory"
	"vdbms/internal/storage"
	"vdbms/internal/vec"
)

// attachTestManager puts c under a fresh (unbudgeted) manager so tier
// moves can be driven directly. The manager's actor is stopped — tests
// drive everything synchronously.
func attachTestManager(t *testing.T, c *Collection) *memory.Manager {
	t.Helper()
	m := memory.New(0)
	m.Close()
	if err := c.AttachMemory(m, t.TempDir()); err != nil {
		t.Fatal(err)
	}
	return m
}

func sameResults(t *testing.T, want, got []Result, label string) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d results, want %d", label, len(got), len(want))
	}
	for i := range want {
		if want[i].ID != got[i].ID || want[i].Dist != got[i].Dist {
			t.Fatalf("%s: result %d = (%d, %v), want (%d, %v)",
				label, i, got[i].ID, got[i].Dist, want[i].ID, want[i].Dist)
		}
	}
}

// TestEvictByteEquivalence is the tier-correctness property test: for
// every metric × quantization combination, search / range / batch
// answers from the mmap tier are byte-identical to the heap tier — the
// mapping holds exactly the bytes the heap column held, and scorers
// bind to it through the same zero-copy surface.
func TestEvictByteEquivalence(t *testing.T) {
	if !storage.MmapSupported() {
		t.Skip("no mmap on this platform")
	}
	const n, d, k = 240, 16, 7
	metrics := []vec.Metric{vec.L2, vec.InnerProduct, vec.Cosine}
	quants := []string{"", "sq8", "pq"}
	for _, metric := range metrics {
		for _, quant := range quants {
			if quant == "pq" && metric != vec.L2 {
				continue // pq's ADC tables decompose squared L2 only
			}
			t.Run(fmt.Sprintf("metric=%v/quant=%q", metric, quant), func(t *testing.T) {
				schema := Schema{
					Dim:          d,
					Metric:       metric,
					Attributes:   map[string]filter.Kind{"g": filter.Int64},
					Quantization: quant,
					RerankK:      32,
				}
				c, err := NewCollection("tier", schema)
				if err != nil {
					t.Fatal(err)
				}
				ds := dataset.Clustered(n+8, d, 5, 0.3, 42)
				for i := 0; i < n; i++ {
					if _, err := c.Insert(ds.Row(i), map[string]filter.Value{"g": filter.IntV(int64(i % 4))}); err != nil {
						t.Fatal(err)
					}
				}
				if err := c.CreateIndex("hnsw", map[string]int{"m": 8}); err != nil {
					t.Fatal(err)
				}
				c.WaitForIndex()
				attachTestManager(t, c)

				preds := []filter.Predicate{{Column: "g", Op: filter.Lt, Value: filter.IntV(3)}}
				queries := [][]float32{ds.Row(n), ds.Row(n + 1), ds.Row(n + 2)}
				type answers struct {
					plain, filtered []Result
					rng             []Result
					batch           [][]Result
				}
				collect := func() answers {
					var a answers
					var err error
					if a.plain, _, err = c.Search(Request{Vector: queries[0], K: k, Ef: 64}); err != nil {
						t.Fatal(err)
					}
					if a.filtered, _, err = c.Search(Request{Vector: queries[1], K: k, Ef: 64, Preds: preds}); err != nil {
						t.Fatal(err)
					}
					if a.rng, err = c.SearchRange(queries[2], 8.5, nil); err != nil {
						t.Fatal(err)
					}
					if a.batch, err = c.SearchBatch(queries, Request{K: k, Ef: 64}); err != nil {
						t.Fatal(err)
					}
					return a
				}

				heap := collect()
				if tier := c.Tier(); tier != "heap" {
					t.Fatalf("pre-evict tier %q", tier)
				}
				if err := c.EvictToMmap(); err != nil {
					t.Fatal(err)
				}
				if tier := c.Tier(); tier != "mmap" {
					t.Fatalf("post-evict tier %q", tier)
				}
				mapped := collect()
				sameResults(t, heap.plain, mapped.plain, "plain")
				sameResults(t, heap.filtered, mapped.filtered, "filtered")
				sameResults(t, heap.rng, mapped.rng, "range")
				for i := range heap.batch {
					sameResults(t, heap.batch[i], mapped.batch[i], fmt.Sprintf("batch[%d]", i))
				}

				if err := c.PromoteToHeap(); err != nil {
					t.Fatal(err)
				}
				if tier := c.Tier(); tier != "heap" {
					t.Fatalf("post-promote tier %q", tier)
				}
				promoted := collect()
				sameResults(t, heap.plain, promoted.plain, "promoted plain")
				if err := c.Close(); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestEvictAccounting checks the budget account's view of tier moves:
// vector bytes drop to zero on eviction (the column is kernel-paged,
// not heap), come back on promotion, and the evicted bit follows the
// owner's tier.
func TestEvictAccounting(t *testing.T) {
	if !storage.MmapSupported() {
		t.Skip("no mmap on this platform")
	}
	c, err := NewCollection("acct", Schema{Dim: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if _, err := c.Insert(make([]float32, 8), nil); err != nil {
			t.Fatal(err)
		}
	}
	m := attachTestManager(t, c)
	a := m.Accounts()[0]
	if got := a.Get(memory.CatVectors); got < 100*8*4 {
		t.Fatalf("heap-tier vector bytes %d, want >= %d", got, 100*8*4)
	}
	if err := c.EvictToMmap(); err != nil {
		t.Fatal(err)
	}
	if got := a.Get(memory.CatVectors); got != 0 {
		t.Fatalf("mmap-tier vector bytes %d, want 0", got)
	}
	if !a.Evicted() {
		t.Fatal("account not marked evicted")
	}
	if err := c.PromoteToHeap(); err != nil {
		t.Fatal(err)
	}
	if got := a.Get(memory.CatVectors); got < 100*8*4 {
		t.Fatalf("promoted vector bytes %d, want >= %d", got, 100*8*4)
	}
	if a.Evicted() {
		t.Fatal("account still marked evicted after promote")
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestWritePathPromotion: mutating an evicted collection promotes it
// transparently — an insert reallocates to heap, an update lands on a
// COW heap copy — and the results reflect the write.
func TestWritePathPromotion(t *testing.T) {
	if !storage.MmapSupported() {
		t.Skip("no mmap on this platform")
	}
	const d = 8
	ds := dataset.Clustered(64, d, 3, 0.4, 7)
	t.Run("insert", func(t *testing.T) {
		c, _ := NewCollection("ins", Schema{Dim: d})
		for i := 0; i < 32; i++ {
			c.Insert(ds.Row(i), nil) //nolint:errcheck
		}
		attachTestManager(t, c)
		if err := c.EvictToMmap(); err != nil {
			t.Fatal(err)
		}
		id, err := c.Insert(ds.Row(32), nil)
		if err != nil {
			t.Fatal(err)
		}
		if tier := c.Tier(); tier != "heap" {
			t.Fatalf("tier after insert %q, want heap (write-path promotion)", tier)
		}
		v, _, err := c.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		sameVec(t, ds.Row(32), v)
		if err := c.Close(); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("update", func(t *testing.T) {
		c, _ := NewCollection("upd", Schema{Dim: d})
		for i := 0; i < 32; i++ {
			c.Insert(ds.Row(i), nil) //nolint:errcheck
		}
		attachTestManager(t, c)
		if err := c.EvictToMmap(); err != nil {
			t.Fatal(err)
		}
		if err := c.UpdateVector(3, ds.Row(40)); err != nil {
			t.Fatal(err)
		}
		if tier := c.Tier(); tier != "heap" {
			t.Fatalf("tier after update %q, want heap (write-path promotion)", tier)
		}
		v, _, err := c.Get(3)
		if err != nil {
			t.Fatal(err)
		}
		sameVec(t, ds.Row(40), v)
		if err := c.Close(); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("delete-stays-mapped", func(t *testing.T) {
		// Deletes only touch the tombstone bitset — no reason to leave
		// the mmap tier.
		c, _ := NewCollection("del", Schema{Dim: d})
		for i := 0; i < 32; i++ {
			c.Insert(ds.Row(i), nil) //nolint:errcheck
		}
		attachTestManager(t, c)
		if err := c.EvictToMmap(); err != nil {
			t.Fatal(err)
		}
		if err := c.Delete(5); err != nil {
			t.Fatal(err)
		}
		if tier := c.Tier(); tier != "mmap" {
			t.Fatalf("tier after delete %q, want mmap", tier)
		}
		res, _, err := c.Search(Request{Vector: ds.Row(5), K: 3})
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range res {
			if r.ID == 5 {
				t.Fatal("deleted row served from mmap tier")
			}
		}
		if err := c.Close(); err != nil {
			t.Fatal(err)
		}
	})
}

func sameVec(t *testing.T, want, got []float32) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("len %d, want %d", len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("element %d = %v, want %v", i, got[i], want[i])
		}
	}
}

// TestEvictRefusals covers the cases where eviction must decline and
// leave the heap tier intact.
func TestEvictRefusals(t *testing.T) {
	if !storage.MmapSupported() {
		t.Skip("no mmap on this platform")
	}
	t.Run("unmanaged", func(t *testing.T) {
		c, _ := NewCollection("x", Schema{Dim: 4})
		c.Insert(make([]float32, 4), nil) //nolint:errcheck
		if err := c.EvictToMmap(); err == nil {
			t.Fatal("evicting an unmanaged collection succeeded")
		}
	})
	t.Run("empty", func(t *testing.T) {
		c, _ := NewCollection("x", Schema{Dim: 4})
		attachTestManager(t, c)
		if err := c.EvictToMmap(); err == nil {
			t.Fatal("evicting an empty collection succeeded")
		}
	})
	t.Run("non-remappable-index", func(t *testing.T) {
		ds := dataset.Clustered(64, 8, 3, 0.4, 3)
		c, _ := NewCollection("x", Schema{Dim: 8})
		for i := 0; i < 64; i++ {
			c.Insert(ds.Row(i), nil) //nolint:errcheck
		}
		if err := c.CreateIndex("ivfflat", map[string]int{"nlist": 4}); err != nil {
			t.Fatal(err)
		}
		c.WaitForIndex()
		attachTestManager(t, c)
		if err := c.EvictToMmap(); err == nil {
			t.Fatal("evicting under a non-remappable index succeeded")
		}
		if tier := c.Tier(); tier != "heap" {
			t.Fatalf("tier %q after refused eviction", tier)
		}
	})
	t.Run("double-evict-is-noop", func(t *testing.T) {
		ds := dataset.Clustered(32, 8, 2, 0.4, 3)
		c, _ := NewCollection("x", Schema{Dim: 8})
		for i := 0; i < 32; i++ {
			c.Insert(ds.Row(i), nil) //nolint:errcheck
		}
		attachTestManager(t, c)
		if err := c.EvictToMmap(); err != nil {
			t.Fatal(err)
		}
		if err := c.EvictToMmap(); err != nil {
			t.Fatalf("second eviction: %v", err)
		}
		if err := c.Close(); err != nil {
			t.Fatal(err)
		}
	})
}

// TestRecoverMapsCheckpoint: a checkpoint file doubles as the mmap
// source — recovery starts the collection in the mmap tier, serving
// byte-identical results, and the first write promotes it.
func TestRecoverMapsCheckpoint(t *testing.T) {
	if !storage.MmapSupported() {
		t.Skip("no mmap on this platform")
	}
	dir := t.TempDir()
	const n, d, k = 120, 12, 5
	ds := dataset.Clustered(n+2, d, 4, 0.3, 11)
	opts := DurabilityOptions{CheckpointInterval: 0}
	c, err := CreateDurable(dir, "ckpt", Schema{Dim: d}, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if _, err := c.Insert(ds.Row(i), nil); err != nil {
			t.Fatal(err)
		}
	}
	want, _, err := c.Search(Request{Vector: ds.Row(n), K: k})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil { // writes the final checkpoint
		t.Fatal(err)
	}

	r, err := Recover(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	if tier := r.Tier(); tier != "mmap" {
		t.Fatalf("recovered tier %q, want mmap (checkpoint-backed column)", tier)
	}
	got, _, err := r.Search(Request{Vector: ds.Row(n), K: k})
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, want, got, "recovered")

	// Recovered-mapped collections report their tier to the manager.
	m := memory.New(0)
	m.Close()
	if err := r.AttachMemory(m, t.TempDir()); err != nil {
		t.Fatal(err)
	}
	if !m.Accounts()[0].Evicted() {
		t.Fatal("recovered mmap-tier collection not marked evicted")
	}

	// First write promotes; results reflect it.
	if _, err := r.Insert(ds.Row(n+1), nil); err != nil {
		t.Fatal(err)
	}
	if tier := r.Tier(); tier != "heap" {
		t.Fatalf("tier after post-recovery insert %q, want heap", tier)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestRecoverMappedThenReplay: WAL records past the checkpoint replay
// onto a collection whose column starts mmap-backed; the update path
// promotes to heap via COW and converges to the logged state.
func TestRecoverMappedThenReplay(t *testing.T) {
	if !storage.MmapSupported() {
		t.Skip("no mmap on this platform")
	}
	dir := t.TempDir()
	const n, d = 60, 8
	ds := dataset.Clustered(n+4, d, 3, 0.4, 13)
	opts := DurabilityOptions{CheckpointInterval: 0}
	c, err := CreateDurable(dir, "replay", Schema{Dim: d}, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if _, err := c.Insert(ds.Row(i), nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Mutations past the checkpoint live only in the WAL.
	if err := c.UpdateVector(7, ds.Row(n)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Insert(ds.Row(n+1), nil); err != nil {
		t.Fatal(err)
	}
	if err := c.Delete(3); err != nil {
		t.Fatal(err)
	}
	// Close would write a fresh checkpoint covering everything; kill the
	// WAL binding instead so recovery must replay onto the mapped column.
	c.wal.log.Close() //nolint:errcheck

	r, err := Recover(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close() //nolint:errcheck
	if tier := r.Tier(); tier != "heap" {
		t.Fatalf("tier %q after replaying an update, want heap (COW promotion)", tier)
	}
	v, _, err := r.Get(7)
	if err != nil {
		t.Fatal(err)
	}
	sameVec(t, ds.Row(n), v)
	if _, _, err := r.Get(3); err == nil {
		t.Fatal("deleted row resurrected")
	}
	if got := r.Len(); got != n {
		t.Fatalf("len %d, want %d", got, n)
	}
}

// TestEvictConcurrentWithQueriesAndWrites races tier moves against the
// full query/write surface under -race.
func TestEvictConcurrentWithQueriesAndWrites(t *testing.T) {
	if !storage.MmapSupported() {
		t.Skip("no mmap on this platform")
	}
	const d = 8
	ds := dataset.Clustered(256, d, 4, 0.4, 5)
	c, _ := NewCollection("race", Schema{Dim: d})
	for i := 0; i < 128; i++ {
		c.Insert(ds.Row(i), nil) //nolint:errcheck
	}
	attachTestManager(t, c)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 40; i++ {
			c.EvictToMmap()   //nolint:errcheck
			c.PromoteToHeap() //nolint:errcheck
		}
	}()
	for i := 0; done != nil; i++ {
		select {
		case <-done:
			done = nil
		default:
		}
		switch i % 3 {
		case 0:
			c.Search(Request{Vector: ds.Row(i % 256), K: 3}) //nolint:errcheck
		case 1:
			c.UpdateVector(int64(i%64), ds.Row((i+1)%256)) //nolint:errcheck
		case 2:
			c.Insert(ds.Row(i%256), nil) //nolint:errcheck
		}
	}
	res, _, err := c.Search(Request{Vector: ds.Row(0), K: 5})
	if err != nil || len(res) == 0 {
		t.Fatalf("post-race search: %v (%d results)", err, len(res))
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	_ = time.Now
}

// BenchmarkUpdateInPlace measures the satellite-1 fix: with no pinned
// snapshot reader, an update patches one row in place (O(d)) instead
// of cloning the whole column (O(n·d)).
func BenchmarkUpdateInPlace(b *testing.B) {
	const n, d = 50000, 128
	c, _ := NewCollection("b", Schema{Dim: d})
	ds := dataset.Clustered(n, d, 8, 0.3, 1)
	for i := 0; i < n; i++ {
		c.Insert(ds.Row(i), nil) //nolint:errcheck
	}
	v := ds.Row(1)
	b.SetBytes(int64(d * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.UpdateVector(int64(i%n), v); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkUpdateCOW is the same workload with a reader permanently
// pinned, forcing every update down the O(n·d) copy-on-write path —
// the before picture of the satellite-1 fix.
func BenchmarkUpdateCOW(b *testing.B) {
	const n, d = 50000, 128
	c, _ := NewCollection("b", Schema{Dim: d})
	ds := dataset.Clustered(n, d, 8, 0.3, 1)
	for i := 0; i < n; i++ {
		c.Insert(ds.Row(i), nil) //nolint:errcheck
	}
	c.beginRead() // pinned reader: tryPatchLocked must refuse
	defer c.endRead()
	v := ds.Row(1)
	b.SetBytes(int64(d * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.UpdateVector(int64(i%n), v); err != nil {
			b.Fatal(err)
		}
	}
}
