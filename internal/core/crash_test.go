package core

import (
	"bufio"
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"testing"
	"time"

	"vdbms/internal/filter"
)

// Crash harness: the real thing, not a simulation. The test re-execs
// the test binary as a child process that opens a durable collection
// with fsync=always and streams "ACKED <id>" to stdout after each
// Insert returns (i.e. after its WAL record's group commit). The
// parent kills it with SIGKILL mid-stream, recovers the directory, and
// checks the durability contract: every acknowledged row is present
// and byte-identical, and search over the recovered collection matches
// a never-crashed control built from the same rows.
//
// SIGKILL vs power loss: kill -9 loses user-space buffers but not the
// page cache, so it proves the "no ack before the WAL write reaches
// the kernel" half of the contract; the lost-page-cache half is
// covered by TestRecoverTornTail's fault-injecting writer.

const crashDirEnv = "VDBMS_CRASH_DIR"

// crashVec derives row i's vector deterministically so parent and
// child agree without sharing state.
func crashVec(i int) []float32 {
	v := make([]float32, 8)
	for j := range v {
		v[j] = float32((i*31+j*7)%101) / 10
	}
	return v
}

// TestCrashChildProcess is the subprocess body, not a real test: it
// only runs when the parent sets the env var.
func TestCrashChildProcess(t *testing.T) {
	dir := os.Getenv(crashDirEnv)
	if dir == "" {
		t.Skip("crash-harness child; run via TestCrashRecoveryKill9")
	}
	c, err := CreateDurable(dir, "crash", durableSchema(), DurabilityOptions{})
	if err != nil {
		fmt.Printf("CHILD_ERR %v\n", err)
		os.Exit(1)
	}
	w := bufio.NewWriter(os.Stdout)
	for i := 0; i < 100000; i++ {
		if _, err := c.Insert(crashVec(i), durableRowAttrs(i)); err != nil {
			fmt.Printf("CHILD_ERR insert %d: %v\n", i, err)
			os.Exit(1)
		}
		// The ack line must reach the parent only after the insert is
		// acknowledged — flush per line, no buffering across inserts.
		fmt.Fprintf(w, "ACKED %d\n", i)
		w.Flush()
	}
	os.Exit(0) // never reached; the parent kills us first
}

func TestCrashRecoveryKill9(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess harness")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	cmd := exec.Command(exe, "-test.run", "^TestCrashChildProcess$", "-test.v")
	cmd.Env = append(os.Environ(), crashDirEnv+"="+dir)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}

	// Read acks until enough rows are durable, then kill -9 mid-write.
	lastAcked := -1
	sc := bufio.NewScanner(stdout)
	deadline := time.Now().Add(30 * time.Second)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "CHILD_ERR") {
			t.Fatalf("child failed: %s", line)
		}
		if id, ok := strings.CutPrefix(line, "ACKED "); ok {
			n, err := strconv.Atoi(id)
			if err != nil || n != lastAcked+1 {
				t.Fatalf("bad ack %q after %d", line, lastAcked)
			}
			lastAcked = n
		}
		if lastAcked >= 200 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("child too slow")
		}
	}
	if lastAcked < 0 {
		t.Fatal("no acknowledged inserts before kill")
	}
	if err := cmd.Process.Kill(); err != nil { // SIGKILL: no cleanup, no deferred checkpoint
		t.Fatal(err)
	}
	cmd.Wait() // reaps the child; the kill error is expected

	re, err := Recover(dir, DurabilityOptions{})
	if err != nil {
		t.Fatalf("recovery after kill -9: %v", err)
	}
	defer re.Close()

	// Every acknowledged write survived. Rows past lastAcked may also
	// exist (in flight at kill time, logged but never acked) — allowed.
	if re.Rows() < lastAcked+1 {
		t.Fatalf("recovered %d rows, but %d were acknowledged", re.Rows(), lastAcked+1)
	}
	for i := 0; i <= lastAcked; i++ {
		v, attrs, err := re.Get(int64(i))
		if err != nil {
			t.Fatalf("acked row %d lost: %v", i, err)
		}
		want := crashVec(i)
		for j := range v {
			if v[j] != want[j] {
				t.Fatalf("acked row %d float %d: %v want %v", i, j, v[j], want[j])
			}
		}
		if attrs["g"].I != int64(i%10) || attrs["s"].S != fmt.Sprintf("s%d", i%7) {
			t.Fatalf("acked row %d attrs corrupted: %+v", i, attrs)
		}
	}

	// Post-recovery search must match a never-crashed control holding
	// the same rows.
	control, err := NewCollection("control", durableSchema())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < re.Rows(); i++ {
		if _, err := control.Insert(crashVec(i), durableRowAttrs(i)); err != nil {
			t.Fatal(err)
		}
	}
	for qi := 0; qi < 5; qi++ {
		q := crashVec(qi * 17)
		preds := []filter.Predicate{{Column: "g", Op: filter.Eq, Value: filter.IntV(int64(qi % 10))}}
		w, _, err := control.Search(Request{Vector: q, K: 10, Preds: preds, Policy: "plan:brute_force"})
		if err != nil {
			t.Fatal(err)
		}
		g, _, err := re.Search(Request{Vector: q, K: 10, Preds: preds, Policy: "plan:brute_force"})
		if err != nil {
			t.Fatal(err)
		}
		if len(w) != len(g) {
			t.Fatalf("query %d: control %d hits, recovered %d", qi, len(w), len(g))
		}
		for i := range w {
			if w[i] != g[i] {
				t.Fatalf("query %d hit %d: control %+v, recovered %+v", qi, i, w[i], g[i])
			}
		}
	}
}
