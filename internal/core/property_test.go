package core

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"

	"vdbms/internal/filter"
	"vdbms/internal/vec"
)

// Property test for the two persistence paths: whatever random history
// a collection lives through — any schema, any metric, inserts,
// updates, deletes, index recipes — Save→Load and checkpoint→Recover
// must both reproduce a collection that answers every query
// identically to the original.

type propState struct {
	rng    *rand.Rand
	dim    int
	schema Schema
}

func randomSchema(rng *rand.Rand) (Schema, *propState) {
	metrics := []vec.Metric{vec.L2, vec.InnerProduct, vec.Cosine, vec.L1, vec.Linf, vec.Hamming}
	kinds := []filter.Kind{filter.Int64, filter.Float64, filter.String}
	dim := 2 + rng.Intn(14)
	attrs := map[string]filter.Kind{}
	for i, n := 0, rng.Intn(4); i < n; i++ {
		attrs[fmt.Sprintf("col%d", i)] = kinds[rng.Intn(len(kinds))]
	}
	s := Schema{
		Dim:        dim,
		Metric:     metrics[rng.Intn(len(metrics))],
		Attributes: attrs,
	}
	return s, &propState{rng: rng, dim: dim, schema: s}
}

func (p *propState) vector() []float32 {
	v := make([]float32, p.dim)
	for j := range v {
		v[j] = p.rng.Float32()*2 - 1
	}
	return v
}

func (p *propState) attrs() map[string]filter.Value {
	out := map[string]filter.Value{}
	for name, kind := range p.schema.Attributes {
		switch kind {
		case filter.Int64:
			out[name] = filter.IntV(int64(p.rng.Intn(50)))
		case filter.Float64:
			out[name] = filter.FloatV(p.rng.Float64() * 10)
		default:
			out[name] = filter.StringV(fmt.Sprintf("v%d", p.rng.Intn(20)))
		}
	}
	return out
}

// mutate runs a random history against c, returning query vectors for
// the equivalence check.
func (p *propState) mutate(t *testing.T, c *Collection) [][]float32 {
	t.Helper()
	n := 30 + p.rng.Intn(80)
	for i := 0; i < n; i++ {
		if _, err := c.Insert(p.vector(), p.attrs()); err != nil {
			t.Fatal(err)
		}
	}
	for i, k := 0, p.rng.Intn(n/5+1); i < k; i++ {
		if err := c.UpdateVector(int64(p.rng.Intn(n)), p.vector()); err != nil {
			t.Fatal(err)
		}
	}
	deleted := map[int]bool{}
	for i, k := 0, p.rng.Intn(n/5+1); i < k; i++ {
		id := p.rng.Intn(n)
		if deleted[id] {
			continue
		}
		if err := c.Delete(int64(id)); err != nil {
			t.Fatal(err)
		}
		deleted[id] = true
	}
	if p.rng.Intn(2) == 0 {
		recipes := []struct {
			kind string
			opts map[string]int
		}{
			{"ivfflat", map[string]int{"nlist": 2 + p.rng.Intn(4)}},
			{"hnsw", map[string]int{"m": 4 + p.rng.Intn(4)}},
			{"kdtree", nil},
		}
		// kdtree is L2-only and now says so at build time (it used to
		// rank under squared L2 no matter the schema metric); keep the
		// draw deterministic and substitute a metric-capable family.
		r := recipes[p.rng.Intn(len(recipes))]
		if r.kind == "kdtree" && p.schema.Metric != vec.L2 {
			r = recipes[0]
		}
		if err := c.CreateIndex(r.kind, r.opts); err != nil {
			t.Fatal(err)
		}
		if p.rng.Intn(4) == 0 {
			c.DropIndex()
		}
	}
	c.WaitForIndex()
	qs := make([][]float32, 5)
	for i := range qs {
		qs[i] = p.vector()
	}
	return qs
}

// requireEquivalent checks row-level and query-level equality under an
// exact-scan plan (index nondeterminism cannot mask divergence; index
// equivalence is checked separately by comparing recipes).
func requireEquivalent(t *testing.T, seed int64, want, got *Collection, qs [][]float32) {
	t.Helper()
	if want.Rows() != got.Rows() || want.Len() != got.Len() {
		t.Fatalf("seed %d: shape rows=%d/%d live=%d/%d", seed, want.Rows(), got.Rows(), want.Len(), got.Len())
	}
	wKind, _, _ := want.IndexInfo()
	gKind, _, _ := got.IndexInfo()
	if wKind != gKind {
		t.Fatalf("seed %d: index recipe %q vs %q", seed, wKind, gKind)
	}
	for id := 0; id < want.Rows(); id++ {
		wv, wa, werr := want.Get(int64(id))
		gv, ga, gerr := got.Get(int64(id))
		if (werr == nil) != (gerr == nil) {
			t.Fatalf("seed %d row %d: liveness %v vs %v", seed, id, werr, gerr)
		}
		if werr != nil {
			continue
		}
		for j := range wv {
			if wv[j] != gv[j] {
				t.Fatalf("seed %d row %d float %d: %v vs %v", seed, id, j, wv[j], gv[j])
			}
		}
		for k, v := range wa {
			if ga[k] != v {
				t.Fatalf("seed %d row %d attr %q: %+v vs %+v", seed, id, k, v, ga[k])
			}
		}
	}
	for qi, q := range qs {
		w, _, err := want.Search(Request{Vector: q, K: 10, Policy: "plan:brute_force"})
		if err != nil {
			t.Fatal(err)
		}
		g, _, err := got.Search(Request{Vector: q, K: 10, Policy: "plan:brute_force"})
		if err != nil {
			t.Fatal(err)
		}
		if len(w) != len(g) {
			t.Fatalf("seed %d query %d: %d vs %d hits", seed, qi, len(w), len(g))
		}
		for i := range w {
			if w[i] != g[i] {
				t.Fatalf("seed %d query %d hit %d: %+v vs %+v", seed, qi, i, w[i], g[i])
			}
		}
	}
}

func TestPropertySaveLoadEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		schema, p := randomSchema(rng)
		c, err := NewCollection("prop", schema)
		if err != nil {
			t.Fatal(err)
		}
		qs := p.mutate(t, c)
		path := filepath.Join(t.TempDir(), "c.snap")
		if err := c.Save(path); err != nil {
			t.Fatal(err)
		}
		re, err := Load(path)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		re.WaitForIndex()
		requireEquivalent(t, seed, c, re, qs)
	}
}

func TestPropertyCheckpointRecoverEquivalence(t *testing.T) {
	for seed := int64(101); seed <= 108; seed++ {
		rng := rand.New(rand.NewSource(seed))
		schema, p := randomSchema(rng)
		dir := t.TempDir()
		c, err := CreateDurable(dir, "prop", schema, DurabilityOptions{})
		if err != nil {
			t.Fatal(err)
		}
		qs := p.mutate(t, c)
		// Half the seeds checkpoint mid-history (recovery = checkpoint +
		// replay of the tail); the rest recover from the log alone.
		if seed%2 == 0 {
			if err := c.Checkpoint(); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 10; i++ {
				if _, err := c.Insert(p.vector(), p.attrs()); err != nil {
					t.Fatal(err)
				}
			}
		}
		c.WaitForIndex()
		// Crash, not Close: no final checkpoint, recovery has to work.
		if err := c.wal.log.Close(); err != nil {
			t.Fatal(err)
		}
		re, err := Recover(dir, DurabilityOptions{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		re.WaitForIndex()
		requireEquivalent(t, seed, c, re, qs)
		re.Close()
	}
}
