package core

import (
	"fmt"
	"os"
	"runtime"
	"testing"

	"vdbms/internal/dataset"
	"vdbms/internal/memory"
	"vdbms/internal/storage"
)

// BenchmarkMemTierSearch is the acceptance benchmark for the memory
// tiers: the same brute-force search workload against a heap-resident
// column and against the mmap tier, reporting queries/s plus the Go
// heap and process RSS in MiB. The mmap rows should show the column's
// bytes gone from the heap at a modest qps cost (the kernel serves
// faults from the page cache). 100k×128-d always runs; the 1M×128-d
// point (512 MiB of vectors) is gated behind VDBMS_BENCH_LARGE=1 so CI
// smoke runs stay cheap.
func BenchmarkMemTierSearch(b *testing.B) {
	sizes := []int{100_000}
	if os.Getenv("VDBMS_BENCH_LARGE") != "" {
		sizes = append(sizes, 1_000_000)
	}
	const d, k = 128, 10
	for _, n := range sizes {
		ds := dataset.Clustered(n+16, d, 16, 0.3, 1)
		for _, tier := range []string{"heap", "mmap"} {
			b.Run(fmt.Sprintf("n=%d/%s", n, tier), func(b *testing.B) {
				if tier == "mmap" && !storage.MmapSupported() {
					b.Skip("no mmap on this platform")
				}
				c, err := NewCollection("bench", Schema{Dim: d})
				if err != nil {
					b.Fatal(err)
				}
				for i := 0; i < n; i++ {
					if _, err := c.Insert(ds.Row(i), nil); err != nil {
						b.Fatal(err)
					}
				}
				if tier == "mmap" {
					m := memory.New(0)
					m.Close()
					if err := c.AttachMemory(m, b.TempDir()); err != nil {
						b.Fatal(err)
					}
					if err := c.EvictToMmap(); err != nil {
						b.Fatal(err)
					}
				}
				runtime.GC()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, _, err := c.Search(Request{Vector: ds.Row(n + i%16), K: k}); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				qps := float64(b.N) / b.Elapsed().Seconds()
				b.ReportMetric(qps, "queries/s")
				var ms runtime.MemStats
				runtime.ReadMemStats(&ms)
				b.ReportMetric(float64(ms.HeapAlloc)/(1<<20), "heap_MiB")
				if rss := memory.ReadRSS(); rss > 0 {
					b.ReportMetric(float64(rss)/(1<<20), "rss_MiB")
				}
				if err := c.Close(); err != nil {
					b.Fatal(err)
				}
			})
		}
	}
}
