package core

import (
	"testing"
	"time"

	"vdbms/internal/dataset"
	"vdbms/internal/filter"
	"vdbms/internal/vec"
	"vdbms/internal/wal"
)

// BenchmarkWALInsert measures insert throughput across durability
// configurations — the cost of the write-ahead log at each sync
// policy against the in-memory baseline. Group commit is what keeps
// fsync=always viable: SetParallelism puts several appenders in
// flight so each fsync amortizes over a batch.
func BenchmarkWALInsert(b *testing.B) {
	ds := dataset.Clustered(256, 32, 4, 0.4, 1)
	schema := Schema{
		Dim:        32,
		Metric:     vec.L2,
		Attributes: map[string]filter.Kind{"g": filter.Int64},
	}
	bench := func(b *testing.B, mk func(b *testing.B) *Collection) {
		c := mk(b)
		b.SetParallelism(32)
		b.ResetTimer()
		start := time.Now()
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				attrs := map[string]filter.Value{"g": filter.IntV(int64(i % 10))}
				if _, err := c.Insert(ds.Row(i%ds.Count), attrs); err != nil {
					b.Fatal(err)
				}
				i++
			}
		})
		b.StopTimer()
		if secs := time.Since(start).Seconds(); secs > 0 {
			b.ReportMetric(float64(b.N)/secs, "inserts/s")
		}
		c.Close()
	}

	b.Run("nowal", func(b *testing.B) {
		bench(b, func(b *testing.B) *Collection {
			c, err := NewCollection("bench", schema)
			if err != nil {
				b.Fatal(err)
			}
			return c
		})
	})
	for _, pol := range []wal.SyncPolicy{wal.SyncAlways, wal.SyncInterval, wal.SyncNever} {
		b.Run(pol.String(), func(b *testing.B) {
			bench(b, func(b *testing.B) *Collection {
				c, err := CreateDurable(b.TempDir(), "bench", schema, DurabilityOptions{Fsync: pol})
				if err != nil {
					b.Fatal(err)
				}
				return c
			})
		})
	}
}
