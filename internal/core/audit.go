// Online recall auditing: the operational answer to "what recall is
// this collection actually serving". The serving path feeds a uniform
// reservoir of live queries (vector, predicates, k, and the ids it
// returned); a background auditor periodically replays the reservoir
// against an exact flat scan on a pinned epoch snapshot and compares.
// The replay runs entirely off the query path — it loads the snapshot
// pointer like any reader and never takes the writer lock — so audits
// cost CPU, not latency. Observed recall@k is exported per collection
// as vdbms_recall_observed; passes count into vdbms_recall_audit_total
// by outcome, and a pass below the configured floor logs a regression.
//
// Accuracy caveat (documented in DESIGN.md §11): samples are replayed
// against the snapshot current at audit time, not the one they were
// served from. Rows deleted or updated in between would bias recall
// down through no fault of the index, so samples whose served ids are
// no longer live — and samples stamped before the collection's last
// in-place vector update (the update epoch) — are skipped as stale;
// the reservoir continuously refreshes, so churn costs sample count,
// not correctness.
package core

import (
	"fmt"
	"log"
	"time"

	"vdbms/internal/obs"
	"vdbms/internal/stats"
)

// AuditConfig configures a collection's recall auditor.
type AuditConfig struct {
	// Interval is the cadence of background audit passes; zero or
	// negative runs no background loop (AuditNow still works).
	Interval time.Duration
	// ReservoirSize caps the query reservoir; 0 keeps the current size
	// (default 256).
	ReservoirSize int
	// RecallFloor, when positive, marks a pass whose observed recall
	// falls below it as a regression and logs it.
	RecallFloor float64
	// MinSamples is the minimum replayable samples for a pass to
	// produce a recall figure; below it the pass is recorded as
	// "empty". Default 8.
	MinSamples int
	// Logf receives regression log lines; log.Printf when nil.
	Logf func(format string, args ...any)
}

// AuditReport is the result of one audit pass.
type AuditReport struct {
	Collection string        `json:"collection"`
	Outcome    string        `json:"outcome"` // ok, regression, empty, error
	Samples    int           `json:"samples"` // replayed (non-stale) samples
	Stale      int           `json:"stale"`   // skipped: served rows deleted or updated since
	Recall     float64       `json:"recall"`  // mean recall@k; meaningful when Outcome is ok or regression
	Floor      float64       `json:"floor"`
	Elapsed    time.Duration `json:"elapsed_ns"`
}

// EnableAudit turns on query sampling and (when cfg.Interval > 0) the
// background audit loop. Calling it again reconfigures: the old loop
// is stopped before the new one starts. Safe while searches run.
func (c *Collection) EnableAudit(cfg AuditConfig) {
	if cfg.MinSamples <= 0 {
		cfg.MinSamples = 8
	}
	c.auditMu.Lock()
	defer c.auditMu.Unlock()
	if cfg.ReservoirSize > 0 && cfg.ReservoirSize != c.sampler.Load().Cap() {
		c.sampler.Store(stats.NewReservoir(cfg.ReservoirSize))
	}
	c.auditCfg = cfg
	c.stopAuditLoopLocked()
	c.samplingAudit.Store(true)
	c.refreshSampling()
	if cfg.Interval > 0 {
		stop, done := make(chan struct{}), make(chan struct{})
		c.auditStop, c.auditDone = stop, done
		go c.auditLoop(cfg, stop, done)
	}
}

// DisableAudit stops the background loop and the auditor's interest
// in query sampling (the auto-tuner's interest, if any, keeps sampling
// on). The reservoir keeps its contents so AuditNow can still replay
// them.
func (c *Collection) DisableAudit() {
	c.auditMu.Lock()
	defer c.auditMu.Unlock()
	c.samplingAudit.Store(false)
	c.refreshSampling()
	c.stopAuditLoopLocked()
}

// stopAuditLoopLocked stops the background loop and waits for it to
// exit. Waiting while holding auditMu is safe because the loop never
// touches auditMu: it runs on the config captured at start (auditLoop
// calls audit directly, never AuditNow), so a tick can finish its
// pass and reach the stop channel without needing the mutex the
// caller holds.
func (c *Collection) stopAuditLoopLocked() {
	if c.auditStop != nil {
		close(c.auditStop)
		<-c.auditDone
		c.auditStop, c.auditDone = nil, nil
	}
}

func (c *Collection) auditLoop(cfg AuditConfig, stop, done chan struct{}) {
	defer close(done)
	tick := time.NewTicker(cfg.Interval)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			// audit counts the outcome (including "error") in metrics;
			// log the cause so a persistently failing auditor leaves an
			// operational trail. The next tick retries.
			if _, err := c.audit(cfg); err != nil {
				logf := cfg.Logf
				if logf == nil {
					logf = log.Printf
				}
				logf("vdbms: recall audit on %q failed: %v", c.name, err)
			}
		case <-stop:
			return
		}
	}
}

// AuditNow runs one audit pass synchronously with the current
// configuration and returns its report. It never blocks writers or
// searches: the replay runs on a snapshot pinned at entry.
func (c *Collection) AuditNow() (AuditReport, error) {
	c.auditMu.Lock()
	cfg := c.auditCfg
	c.auditMu.Unlock()
	if cfg.MinSamples <= 0 {
		cfg.MinSamples = 8
	}
	return c.audit(cfg)
}

func (c *Collection) audit(cfg AuditConfig) (AuditReport, error) {
	start := time.Now()
	rep := AuditReport{Collection: c.name, Floor: cfg.RecallFloor}
	samples := c.sampler.Load().Snapshot()
	// Pin as a reader: the exact replays below scan the snapshot's
	// column, so in-place update patching must be fenced out for the
	// whole pass (updates fall back to copy-on-write meanwhile).
	c.beginRead()
	defer c.endRead()
	s := c.snap.Load()
	// The update epoch is read after the snapshot pointer: snapshot
	// publication is monotonic, so every update counted in epoch at
	// this point is either visible in s or newer than every sample —
	// either way a sample stamped < epoch is conservatively stale.
	epoch := c.updateEpoch.Load()
	exclude := s.exclude()

	var sum float64
	for _, sm := range samples {
		if sm.K <= 0 || len(sm.Vector) == 0 {
			continue
		}
		// Served before the last in-place vector update: the rows it
		// was ranked against have changed under it, so replaying would
		// bias recall through no fault of the index.
		if sm.Epoch < epoch {
			rep.Stale++
			continue
		}
		stale := false
		for _, id := range sm.Served {
			if id < 0 || id >= int64(s.rows) || (exclude != nil && exclude(id)) {
				stale = true
				break
			}
		}
		if stale {
			rep.Stale++
			continue
		}
		truth, err := s.env.ExactGroundTruth(sm.Vector, sm.K, sm.Preds, exclude)
		if err != nil {
			rep.Outcome = "error"
			obs.RecallAudits.With("error").Inc()
			return rep, fmt.Errorf("core: audit replay: %w", err)
		}
		if len(truth) == 0 {
			continue // predicate admits nothing now; recall undefined
		}
		truthSet := make(map[int64]struct{}, len(truth))
		for _, r := range truth {
			truthSet[r.ID] = struct{}{}
		}
		hits := 0
		for _, id := range sm.Served {
			if _, ok := truthSet[id]; ok {
				hits++
			}
		}
		denom := sm.K
		if len(truth) < denom {
			denom = len(truth) // fewer than k rows satisfy the query
		}
		sum += float64(hits) / float64(denom)
		rep.Samples++
	}

	rep.Elapsed = time.Since(start)
	obs.RecallAuditSeconds.Observe(rep.Elapsed.Seconds())
	obs.RecallAuditSamples.Add(int64(rep.Samples))
	if rep.Samples < cfg.MinSamples {
		rep.Outcome = "empty"
		obs.RecallAudits.With("empty").Inc()
		return rep, nil
	}
	rep.Recall = sum / float64(rep.Samples)
	obs.RecallObserved.With(c.name).Set(rep.Recall)
	if cfg.RecallFloor > 0 && rep.Recall < cfg.RecallFloor {
		rep.Outcome = "regression"
		obs.RecallAudits.With("regression").Inc()
		logf := cfg.Logf
		if logf == nil {
			logf = log.Printf
		}
		logf("vdbms: recall regression on %q: observed recall@k %.4f below floor %.4f (%d samples)",
			c.name, rep.Recall, cfg.RecallFloor, rep.Samples)
		return rep, nil
	}
	rep.Outcome = "ok"
	obs.RecallAudits.With("ok").Inc()
	return rep, nil
}
