package core

import (
	"sync"
	"testing"

	"vdbms/internal/dataset"
	"vdbms/internal/filter"
)

// TestConcurrentMixedWorkload hammers one collection from several
// goroutines mixing inserts, updates, deletes, searches, and index
// rebuilds. Run with -race to verify the locking discipline.
func TestConcurrentMixedWorkload(t *testing.T) {
	c, err := NewCollection("conc", Schema{
		Dim:        8,
		Attributes: map[string]filter.Kind{"g": filter.Int64},
	})
	if err != nil {
		t.Fatal(err)
	}
	ds := dataset.Clustered(400, 8, 4, 0.4, 1)
	for i := 0; i < 200; i++ {
		if _, err := c.Insert(ds.Row(i), map[string]filter.Value{"g": filter.IntV(int64(i % 10))}); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.CreateIndex("hnsw", map[string]int{"m": 6}); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	const workers = 4
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				switch (w + i) % 4 {
				case 0:
					c.Insert(ds.Row(200+(w*50+i)%200), map[string]filter.Value{"g": filter.IntV(int64(i % 10))}) //nolint:errcheck
				case 1:
					c.UpdateVector(int64(i%100), ds.Row(i%400)) //nolint:errcheck
				case 2:
					c.Search(Request{Vector: ds.Row(i % 400), K: 3, Ef: 32}) //nolint:errcheck
				case 3:
					c.Search(Request{
						Vector: ds.Row(i % 400), K: 3, Ef: 32,
						Preds: []filter.Predicate{{Column: "g", Op: filter.Lt, Value: filter.IntV(5)}},
					}) //nolint:errcheck
				}
			}
		}(w)
	}
	wg.Wait()
	// Collection remains consistent and searchable.
	res, _, err := c.Search(Request{Vector: ds.Row(0), K: 5, Ef: 64})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 5 {
		t.Fatalf("post-stress search returned %d", len(res))
	}
	if c.Rows() != 200+workers*50/4 {
		// workers*50/4 inserts were issued per the modulo schedule
		// (one case in four per worker). Just sanity-check growth.
		if c.Rows() <= 200 {
			t.Fatalf("no inserts landed: %d", c.Rows())
		}
	}
}
