package core

import (
	"testing"

	"vdbms/internal/dataset"
	"vdbms/internal/filter"
)

// TestCollectionStatsWiring checks the serving paths feed the online
// statistics: mutation counters, query shapes, filter selectivity,
// and ANN probe cost all show up in Stats().
func TestCollectionStatsWiring(t *testing.T) {
	ds := dataset.Uniform(2000, 8, 7)
	c, err := NewCollection("s", Schema{
		Dim:        8,
		Attributes: map[string]filter.Kind{"cat": filter.Int64},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < ds.Count; i++ {
		if _, err := c.Insert(ds.Row(i), map[string]filter.Value{"cat": filter.IntV(int64(i % 10))}); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.UpdateVector(3, ds.Row(4)); err != nil {
		t.Fatal(err)
	}
	if err := c.Delete(5); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateIndex("ivfflat", map[string]int{"nlist": 16}); err != nil {
		t.Fatal(err)
	}

	preds := []filter.Predicate{{Column: "cat", Op: filter.Eq, Value: filter.IntV(3)}}
	for i := 0; i < 4; i++ {
		if _, _, err := c.Search(Request{Vector: ds.Row(i), K: 5, NProbe: 4}); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := c.Search(Request{Vector: ds.Row(0), K: 5, Preds: preds}); err != nil {
		t.Fatal(err)
	}

	s := c.Stats()
	if s.Rows != 2000 || s.Live != 1999 || s.Deleted != 1 || s.Dim != 8 {
		t.Fatalf("row section = %+v", s)
	}
	if s.Inserts != 2000 || s.Updates != 1 || s.Deletes != 1 {
		t.Fatalf("mutation counters = ins %d upd %d del %d", s.Inserts, s.Updates, s.Deletes)
	}
	if s.Queries != 5 {
		t.Fatalf("queries = %d, want 5", s.Queries)
	}
	if s.FilteredFraction != 0.2 {
		t.Fatalf("filtered fraction = %v, want 0.2", s.FilteredFraction)
	}
	if s.K.Count != 5 || s.K.Mean != 5 {
		t.Fatalf("k distribution = %+v", s.K)
	}
	if s.ProbeCount == 0 || s.MeanProbeComps <= 0 {
		t.Fatalf("probe stats = %d probes, %.1f comps", s.ProbeCount, s.MeanProbeComps)
	}
	sel, ok := s.Selectivity["cat"]
	if !ok || sel.Count == 0 {
		t.Fatalf("selectivity for cat missing: %+v", s.Selectivity)
	}
	// cat = 3 admits ~10% of rows; the sampled estimate is coarse but
	// must land in a sane band.
	if sel.Mean <= 0 || sel.Mean >= 0.5 {
		t.Fatalf("cat selectivity mean = %v, want (0, 0.5)", sel.Mean)
	}
}

// TestMeasuredSelectivityRecording: the selectivity histograms hold
// survivor fractions measured during execution — exact for pre-filter
// bitmaps and exhaustive scans — and the planner's sampled estimate
// alone never feeds them.
func TestMeasuredSelectivityRecording(t *testing.T) {
	ds := dataset.Uniform(2000, 8, 11)
	c, err := NewCollection("m", Schema{
		Dim:        8,
		Attributes: map[string]filter.Kind{"cat": filter.Int64},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < ds.Count; i++ {
		if _, err := c.Insert(ds.Row(i), map[string]filter.Value{"cat": filter.IntV(int64(i % 10))}); err != nil {
			t.Fatal(err)
		}
	}
	preds := []filter.Predicate{{Column: "cat", Op: filter.Eq, Value: filter.IntV(3)}}
	const trueSel = 0.1 // cat=3 admits exactly 200 of 2000 rows

	// Pre-filter materializes the bitmap: its cardinality over N is the
	// exact selectivity and must be recorded as such.
	if _, _, err := c.Search(Request{Vector: ds.Row(0), K: 5, Preds: preds, Policy: "plan:pre_filter"}); err != nil {
		t.Fatal(err)
	}
	sel := c.Stats().Selectivity["cat"]
	if sel.Count != 1 || sel.Mean != trueSel {
		t.Fatalf("after pre_filter: count=%d mean=%v, want 1/%v", sel.Count, sel.Mean, trueSel)
	}

	// Brute force evaluates the predicate on every live row: the
	// counted pass rate is exact too.
	if _, _, err := c.Search(Request{Vector: ds.Row(1), K: 5, Preds: preds, Policy: "plan:brute_force"}); err != nil {
		t.Fatal(err)
	}
	sel = c.Stats().Selectivity["cat"]
	if sel.Count != 2 || sel.Mean != trueSel {
		t.Fatalf("after brute_force: count=%d mean=%v, want 2/%v", sel.Count, sel.Mean, trueSel)
	}

	// Post-filter with a small over-fetch examines too few rows to be a
	// useful sample and must record nothing.
	if _, _, err := c.Search(Request{Vector: ds.Row(2), K: 5, Preds: preds, Policy: "plan:post_filter", Alpha: 2}); err != nil {
		t.Fatal(err)
	}
	if got := c.Stats().Selectivity["cat"].Count; got != 2 {
		t.Fatalf("post_filter over-fetch of 10 recorded: count=%d, want 2", got)
	}

	// Planning alone computes only the sampled estimate; it must not
	// touch the histograms.
	if _, err := c.snap.Load().env.Plan(5, preds, "cost", nil); err != nil {
		t.Fatal(err)
	}
	if got := c.Stats().Selectivity["cat"].Count; got != 2 {
		t.Fatalf("Plan() recorded into the histograms: count=%d, want 2", got)
	}
}

// TestAdaptivePolicy: once enough probes and selectivity observations
// accumulate, the "adaptive" policy plans with measured statistics and
// still returns correct results.
func TestAdaptivePolicy(t *testing.T) {
	ds := dataset.Uniform(3000, 8, 9)
	c, err := NewCollection("a", Schema{
		Dim:        8,
		Attributes: map[string]filter.Kind{"cat": filter.Int64},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < ds.Count; i++ {
		if _, err := c.Insert(ds.Row(i), map[string]filter.Value{"cat": filter.IntV(int64(i % 4))}); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.CreateIndex("ivfflat", map[string]int{"nlist": 16}); err != nil {
		t.Fatal(err)
	}
	preds := []filter.Predicate{{Column: "cat", Op: filter.Eq, Value: filter.IntV(1)}}
	// Warm the statistics past both observation thresholds.
	for i := 0; i < 40; i++ {
		if _, _, err := c.Search(Request{Vector: ds.Row(i), K: 5, Preds: preds, NProbe: 4}); err != nil {
			t.Fatal(err)
		}
	}
	s := c.Stats()
	if s.ProbeCount < 16 || s.Selectivity["cat"].Count < 32 {
		t.Fatalf("warm-up insufficient: probes=%d selObs=%d", s.ProbeCount, s.Selectivity["cat"].Count)
	}
	res, plan, err := c.Search(Request{Vector: ds.Row(0), K: 5, Preds: preds, Policy: "adaptive"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 5 {
		t.Fatalf("adaptive search returned %d hits, want 5", len(res))
	}
	// Every hit must satisfy the predicate.
	for _, r := range res {
		if r.ID%4 != 1 {
			t.Fatalf("hit %d violates cat=1", r.ID)
		}
	}
	if plan.Plan.Kind.String() == "" {
		t.Fatal("no plan reported")
	}
}
