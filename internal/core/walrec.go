package core

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"vdbms/internal/filter"
	"vdbms/internal/vec"
)

// WAL record payloads. The wal package frames and checksums opaque
// bytes; this file defines what goes inside them — one compact,
// hand-rolled binary record per logical mutation. gob is deliberately
// avoided here: a fresh gob encoder retransmits type metadata per
// record, which would dominate the log for small vectors, and the
// write path pays this cost on every insert.
//
// Layout is little-endian throughout: op byte, then op-specific
// fields. Strings are u32 length + bytes; maps are written in sorted
// key order so identical mutations produce identical bytes.

const (
	opSchema      = byte(1) // collection born: name + schema
	opInsert      = byte(2) // vector + attribute row
	opUpdate      = byte(3) // id + replacement vector
	opDelete      = byte(4) // id
	opCreateIndex = byte(5) // index recipe installed
	opDropIndex   = byte(6) // index recipe cleared
)

// walRecord is the decoded form of any WAL payload; op selects which
// fields are meaningful.
type walRecord struct {
	op        byte
	name      string // opSchema
	schema    Schema // opSchema
	vec       []float32
	attrs     map[string]filter.Value
	id        int64
	indexKind string
	indexOpts map[string]int
}

func appendU32(b []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(b, v) }
func appendU64(b []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(b, v) }
func appendStr(b []byte, s string) []byte {
	b = appendU32(b, uint32(len(s)))
	return append(b, s...)
}
func appendF32s(b []byte, vs []float32) []byte {
	b = appendU32(b, uint32(len(vs)))
	for _, v := range vs {
		b = appendU32(b, math.Float32bits(v))
	}
	return b
}

func encodeSchema(name string, s Schema) []byte {
	b := []byte{opSchema}
	b = appendStr(b, name)
	b = appendU32(b, uint32(s.Dim))
	b = appendU32(b, uint32(s.Metric))
	b = appendU64(b, math.Float64bits(s.RebuildFraction))
	b = appendStr(b, s.Quantization)
	b = appendU32(b, uint32(s.RerankK))
	cols := make([]string, 0, len(s.Attributes))
	for c := range s.Attributes {
		cols = append(cols, c)
	}
	sort.Strings(cols)
	b = appendU32(b, uint32(len(cols)))
	for _, c := range cols {
		b = appendStr(b, c)
		b = append(b, byte(s.Attributes[c]))
	}
	return b
}

func encodeInsert(v []float32, attrs map[string]filter.Value, kinds map[string]filter.Kind) []byte {
	b := []byte{opInsert}
	b = appendF32s(b, v)
	cols := make([]string, 0, len(attrs))
	for c := range attrs {
		cols = append(cols, c)
	}
	sort.Strings(cols)
	b = appendU32(b, uint32(len(cols)))
	for _, c := range cols {
		b = appendStr(b, c)
		kind := kinds[c]
		b = append(b, byte(kind))
		val := attrs[c]
		switch kind {
		case filter.Int64:
			b = appendU64(b, uint64(val.I))
		case filter.Float64:
			b = appendU64(b, math.Float64bits(val.F))
		default:
			b = appendStr(b, val.S)
		}
	}
	return b
}

func encodeUpdate(id int64, v []float32) []byte {
	b := []byte{opUpdate}
	b = appendU64(b, uint64(id))
	return appendF32s(b, v)
}

func encodeDelete(id int64) []byte {
	b := []byte{opDelete}
	return appendU64(b, uint64(id))
}

func encodeCreateIndex(kind string, opts map[string]int) []byte {
	b := []byte{opCreateIndex}
	b = appendStr(b, kind)
	keys := make([]string, 0, len(opts))
	for k := range opts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	b = appendU32(b, uint32(len(keys)))
	for _, k := range keys {
		b = appendStr(b, k)
		b = appendU64(b, uint64(int64(opts[k])))
	}
	return b
}

func encodeDropIndex() []byte { return []byte{opDropIndex} }

// walDecoder is a bounds-checked cursor over one record payload. Any
// overrun flips err and every later read returns zero values, so
// decode paths can read linearly and check once at the end.
type walDecoder struct {
	b   []byte
	off int
	err error
}

func (d *walDecoder) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("core: truncated WAL record at byte %d", d.off)
	}
}

func (d *walDecoder) u8() byte {
	if d.err != nil || d.off+1 > len(d.b) {
		d.fail()
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

func (d *walDecoder) u32() uint32 {
	if d.err != nil || d.off+4 > len(d.b) {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(d.b[d.off:])
	d.off += 4
	return v
}

func (d *walDecoder) u64() uint64 {
	if d.err != nil || d.off+8 > len(d.b) {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b[d.off:])
	d.off += 8
	return v
}

func (d *walDecoder) str() string {
	n := int(d.u32())
	if d.err != nil || n < 0 || d.off+n > len(d.b) {
		d.fail()
		return ""
	}
	s := string(d.b[d.off : d.off+n])
	d.off += n
	return s
}

func (d *walDecoder) f32s() []float32 {
	n := int(d.u32())
	if d.err != nil || n < 0 || d.off+4*n > len(d.b) {
		d.fail()
		return nil
	}
	out := make([]float32, n)
	for i := range out {
		out[i] = math.Float32frombits(d.u32())
	}
	return out
}

// decodeWALRecord parses one payload back into a walRecord.
func decodeWALRecord(payload []byte) (walRecord, error) {
	if len(payload) == 0 {
		return walRecord{}, fmt.Errorf("core: empty WAL record")
	}
	d := &walDecoder{b: payload}
	rec := walRecord{op: d.u8()}
	switch rec.op {
	case opSchema:
		rec.name = d.str()
		rec.schema.Dim = int(d.u32())
		rec.schema.Metric = vec.Metric(d.u32())
		rec.schema.RebuildFraction = math.Float64frombits(d.u64())
		rec.schema.Quantization = d.str()
		rec.schema.RerankK = int(d.u32())
		n := int(d.u32())
		rec.schema.Attributes = make(map[string]filter.Kind, n)
		for i := 0; i < n && d.err == nil; i++ {
			col := d.str()
			rec.schema.Attributes[col] = filter.Kind(d.u8())
		}
	case opInsert:
		rec.vec = d.f32s()
		n := int(d.u32())
		rec.attrs = make(map[string]filter.Value, n)
		for i := 0; i < n && d.err == nil; i++ {
			col := d.str()
			switch filter.Kind(d.u8()) {
			case filter.Int64:
				rec.attrs[col] = filter.IntV(int64(d.u64()))
			case filter.Float64:
				rec.attrs[col] = filter.FloatV(math.Float64frombits(d.u64()))
			default:
				rec.attrs[col] = filter.StringV(d.str())
			}
		}
	case opUpdate:
		rec.id = int64(d.u64())
		rec.vec = d.f32s()
	case opDelete:
		rec.id = int64(d.u64())
	case opCreateIndex:
		rec.indexKind = d.str()
		n := int(d.u32())
		rec.indexOpts = make(map[string]int, n)
		for i := 0; i < n && d.err == nil; i++ {
			k := d.str()
			rec.indexOpts[k] = int(int64(d.u64()))
		}
	case opDropIndex:
	default:
		return walRecord{}, fmt.Errorf("core: unknown WAL op %d", rec.op)
	}
	if d.err != nil {
		return walRecord{}, d.err
	}
	if d.off != len(payload) {
		return walRecord{}, fmt.Errorf("core: %d trailing bytes in WAL record (op %d)", len(payload)-d.off, rec.op)
	}
	return rec, nil
}
