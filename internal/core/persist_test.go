package core

import (
	"bytes"
	"encoding/gob"
	"path/filepath"
	"testing"

	"vdbms/internal/filter"
)

func TestSaveLoadRoundTripCore(t *testing.T) {
	c, ds := newCol(t, 120)
	if err := c.CreateIndex("ivfflat", map[string]int{"nlist": 4}); err != nil {
		t.Fatal(err)
	}
	if err := c.Delete(3); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "c.snap")
	if err := c.Save(path); err != nil {
		t.Fatal(err)
	}
	re, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if re.Len() != 119 || re.Rows() != 120 || re.Name() != "t" {
		t.Fatalf("restored: live=%d rows=%d", re.Len(), re.Rows())
	}
	kind, covered, _ := re.IndexInfo()
	if kind != "ivfflat" || covered != 120 {
		t.Fatalf("index: %s %d", kind, covered)
	}
	kinds := re.AttributeKinds()
	if kinds["g"] != filter.Int64 {
		t.Fatalf("attr kinds: %v", kinds)
	}
	// Same search results pre/post.
	q := ds.Row(10)
	before, _, err := c.Search(Request{Vector: q, K: 5, NProbe: 4, Ef: 64})
	if err != nil {
		t.Fatal(err)
	}
	after, _, err := re.Search(Request{Vector: q, K: 5, NProbe: 4, Ef: 64})
	if err != nil {
		t.Fatal(err)
	}
	if len(before) != len(after) {
		t.Fatalf("result sizes differ: %d vs %d", len(before), len(after))
	}
	for i := range before {
		if before[i].ID != after[i].ID {
			t.Fatalf("result %d differs: %v vs %v", i, before[i], after[i])
		}
	}
}

func TestLoadVersionMismatch(t *testing.T) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&fileSnapshot{FormatVersion: 99}); err != nil {
		t.Fatal(err)
	}
	if _, err := loadFrom(&buf); err == nil {
		t.Fatal("want version error")
	}
}

func TestLoadCorruptTombstone(t *testing.T) {
	var buf bytes.Buffer
	snap := fileSnapshot{
		FormatVersion: snapshotVersion,
		Name:          "x",
		Dim:           2,
		N:             1,
		Data:          []float32{1, 2},
		Deleted:       []int64{7}, // out of range
		AttrKinds:     map[string]int32{},
	}
	if err := gob.NewEncoder(&buf).Encode(&snap); err != nil {
		t.Fatal(err)
	}
	if _, err := loadFrom(&buf); err == nil {
		t.Fatal("want tombstone error")
	}
}

func TestLoadBadIndexKind(t *testing.T) {
	var buf bytes.Buffer
	snap := fileSnapshot{
		FormatVersion: snapshotVersion,
		Name:          "x",
		Dim:           2,
		N:             1,
		Data:          []float32{1, 2},
		AttrKinds:     map[string]int32{},
		IndexKind:     "bogus",
	}
	if err := gob.NewEncoder(&buf).Encode(&snap); err != nil {
		t.Fatal(err)
	}
	if _, err := loadFrom(&buf); err == nil {
		t.Fatal("want index-kind error")
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("want open error")
	}
}

func TestSaveToUnwritablePath(t *testing.T) {
	c, _ := newCol(t, 5)
	if err := c.Save(filepath.Join(t.TempDir(), "no", "such", "dir", "f")); err == nil {
		t.Fatal("want create error")
	}
}
