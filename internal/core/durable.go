package core

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"vdbms/internal/obs"
	"vdbms/internal/wal"
)

// Durable write path. A durable collection owns one directory holding
// its WAL segments and checkpoints:
//
//	wal-<firstLSN>.log       append-only log segments (wal package)
//	checkpoint-<lsn>.ckpt    fileSnapshot covering every record ≤ lsn
//
// Every mutation is logged before it is applied (collection.go), so
// the directory always holds enough redo history to rebuild the
// in-memory state: Recover loads the newest checkpoint and replays the
// log records past its LSN. Checkpoints run in the background off a
// pinned epoch snapshot — they never block writers — and each one
// retires the log prefix it covers, keeping recovery time proportional
// to the checkpoint interval rather than the collection's lifetime.

// DurabilityOptions configures the WAL and checkpointer of a durable
// collection.
type DurabilityOptions struct {
	// Fsync is the WAL sync policy (default wal.SyncAlways).
	Fsync wal.SyncPolicy
	// FsyncInterval is the fsync period under wal.SyncInterval
	// (default 50ms).
	FsyncInterval time.Duration
	// SegmentBytes is the WAL segment rotation threshold (default 64 MiB).
	SegmentBytes int64
	// CheckpointInterval is the background checkpoint period; 0 disables
	// the background checkpointer (Checkpoint can still be called, and
	// Close always writes a final one).
	CheckpointInterval time.Duration
	// WrapWriter is the wal.Options fault-injection hook, exposed for
	// crash tests.
	WrapWriter func(w io.Writer) io.Writer
}

func (o DurabilityOptions) walOptions() wal.Options {
	return wal.Options{
		Policy:       o.Fsync,
		Interval:     o.FsyncInterval,
		SegmentBytes: o.SegmentBytes,
		WrapWriter:   o.WrapWriter,
	}
}

// walBinding ties a collection to its log directory.
type walBinding struct {
	log  *wal.Log
	dir  string
	opts DurabilityOptions
}

const (
	ckptPrefix = "checkpoint-"
	ckptSuffix = ".ckpt"
)

func checkpointName(lsn uint64) string {
	return fmt.Sprintf("%s%016x%s", ckptPrefix, lsn, ckptSuffix)
}

func parseCheckpointName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, ckptPrefix) || !strings.HasSuffix(name, ckptSuffix) {
		return 0, false
	}
	hex := strings.TrimSuffix(strings.TrimPrefix(name, ckptPrefix), ckptSuffix)
	if len(hex) != 16 {
		return 0, false
	}
	v, err := strconv.ParseUint(hex, 16, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// CreateDurable creates a new durable collection rooted at dir. The
// directory must not already hold a collection (use Recover for that).
// The collection's first WAL record is its own schema, so a recovery
// that finds no checkpoint can still rebuild from the log alone.
func CreateDurable(dir, name string, schema Schema, opts DurabilityOptions) (*Collection, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	if populated, err := dirHasCollection(dir); err != nil {
		return nil, err
	} else if populated {
		return nil, fmt.Errorf("core: %s already holds a collection; use Recover", dir)
	}
	c, err := NewCollection(name, schema)
	if err != nil {
		return nil, err
	}
	log, err := wal.Open(dir, 0, opts.walOptions())
	if err != nil {
		return nil, err
	}
	c.wal = &walBinding{log: log, dir: dir, opts: opts}
	// Birth record: replay recreates the collection from this alone.
	lsn, commit, err := log.Append(encodeSchema(name, c.schema))
	if err != nil {
		log.Close()
		return nil, err
	}
	c.mu.Lock()
	c.walLSN = lsn
	c.publishLocked()
	c.mu.Unlock()
	if err := commit.Wait(); err != nil {
		log.Close()
		return nil, err
	}
	c.startCheckpointer()
	return c, nil
}

// DirHasCollection reports whether dir holds a durable collection
// (WAL segments or checkpoints) — the "create or recover?" probe used
// when opening a data directory.
func DirHasCollection(dir string) (bool, error) {
	populated, err := dirHasCollection(dir)
	if err != nil && os.IsNotExist(err) {
		return false, nil
	}
	return populated, err
}

// dirHasCollection reports whether dir holds WAL segments or
// checkpoints from a previous life.
func dirHasCollection(dir string) (bool, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false, err
	}
	for _, e := range ents {
		if _, ok := parseCheckpointName(e.Name()); ok {
			return true, nil
		}
		if strings.HasPrefix(e.Name(), "wal-") && strings.HasSuffix(e.Name(), ".log") {
			return true, nil
		}
	}
	return false, nil
}

// Recover rebuilds the durable collection rooted at dir: load the
// newest checkpoint (if any), redo every WAL record past its LSN, then
// rebuild the recorded ANN index once and reopen the log for new
// writes. A torn tail in the final WAL segment is truncated silently —
// those bytes were never acknowledged — while corruption earlier in
// the log is an error rather than silent data loss (wal.Scan documents
// the contract).
func Recover(dir string, opts DurabilityOptions) (*Collection, error) {
	c, err := recover1(dir, opts)
	if err != nil {
		obs.WALRecoveries.With("failed").Inc()
		return nil, err
	}
	obs.WALRecoveries.With("ok").Inc()
	return c, nil
}

func recover1(dir string, opts DurabilityOptions) (*Collection, error) {
	ckptPath, ckptLSN, err := latestCheckpoint(dir)
	if err != nil {
		return nil, err
	}
	var c *Collection
	if ckptPath != "" {
		// A v3 checkpoint doubles as an mmap source: the column section
		// is mapped in place and the recovered collection starts in the
		// mmap tier — recovery of a large collection costs metadata and
		// WAL replay, not an O(n·d) heap materialization.
		snap, m, err := openSnapshotFile(ckptPath)
		if err != nil {
			return nil, fmt.Errorf("core: reading checkpoint: %w", err)
		}
		if snap.AppliedLSN != ckptLSN {
			if m != nil {
				m.Close()
			}
			return nil, fmt.Errorf("core: checkpoint %s covers LSN %d, name says %d", filepath.Base(ckptPath), snap.AppliedLSN, ckptLSN)
		}
		c, err = collectionFromSnapshot(snap, m)
		if err != nil {
			if m != nil {
				m.Close()
			}
			return nil, err
		}
		c.replaying = true
	}

	from := ckptLSN
	res, err := wal.Scan(dir, from, func(lsn uint64, payload []byte) error {
		rec, err := decodeWALRecord(payload)
		if err != nil {
			return err
		}
		if c == nil {
			if rec.op != opSchema {
				return fmt.Errorf("core: log starts with op %d, want schema record", rec.op)
			}
			cc, err := NewCollection(rec.name, rec.schema)
			if err != nil {
				return err
			}
			cc.replaying = true
			c = cc
			c.walLSN = lsn
			return nil
		}
		if err := c.applyWALRecord(rec); err != nil {
			return err
		}
		c.walLSN = lsn
		return nil
	})
	if err != nil {
		return nil, err
	}
	if c == nil {
		return nil, fmt.Errorf("core: %s holds no checkpoint and no log records", dir)
	}

	// Replay done: publish one snapshot for the whole recovered history,
	// then pay for the recorded index build exactly once. The WAL is not
	// attached yet, so the rebuild logs nothing.
	c.mu.Lock()
	c.replaying = false
	c.publishLocked()
	c.mu.Unlock()
	if err := c.buildRecordedIndex(); err != nil {
		return nil, err
	}
	c.WaitForIndex()

	last := c.walLSN
	if res.LastLSN > last {
		// Records at or below the checkpoint LSN still in the log.
		last = res.LastLSN
	}
	log, err := wal.Open(dir, last, opts.walOptions())
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.wal = &walBinding{log: log, dir: dir, opts: opts}
	c.walLSN = last
	c.publishLocked()
	c.mu.Unlock()
	c.ckptLSN = ckptLSN
	c.startCheckpointer()
	return c, nil
}

// applyWALRecord redoes one decoded record during recovery. Caller is
// the replay loop: single-goroutine, replaying set, mutations validate
// exactly as the original write path did.
func (c *Collection) applyWALRecord(rec walRecord) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	switch rec.op {
	case opSchema:
		return fmt.Errorf("core: unexpected schema record mid-log")
	case opInsert:
		if len(rec.vec) != c.schema.Dim {
			return fmt.Errorf("core: logged vector dim %d, collection dim %d", len(rec.vec), c.schema.Dim)
		}
		if err := c.attrs.ValidateRow(rec.attrs); err != nil {
			return err
		}
		_, err := c.applyInsertLocked(rec.vec, rec.attrs)
		return err
	case opUpdate:
		if len(rec.vec) != c.schema.Dim {
			return fmt.Errorf("core: logged vector dim %d, collection dim %d", len(rec.vec), c.schema.Dim)
		}
		if err := c.validIDLocked(rec.id); err != nil {
			return err
		}
		return c.applyUpdateLocked(rec.id, rec.vec)
	case opDelete:
		if err := c.validIDLocked(rec.id); err != nil {
			return err
		}
		c.applyDeleteLocked(rec.id)
		return nil
	case opCreateIndex:
		// Record the recipe only; recovery builds it once after replay.
		c.annKind, c.annOpts = rec.indexKind, rec.indexOpts
		return nil
	case opDropIndex:
		c.ann, c.annKind, c.annOpts = nil, "", nil
		c.annN, c.dirty = 0, 0
		return nil
	}
	return fmt.Errorf("core: unknown WAL op %d", rec.op)
}

// latestCheckpoint returns the newest checkpoint in dir ("" when none
// exists).
func latestCheckpoint(dir string) (path string, lsn uint64, err error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return "", 0, nil
		}
		return "", 0, err
	}
	for _, e := range ents {
		if l, ok := parseCheckpointName(e.Name()); ok && (path == "" || l > lsn) {
			path, lsn = filepath.Join(dir, e.Name()), l
		}
	}
	return path, lsn, nil
}

// Checkpoint writes the current epoch snapshot to a checkpoint file
// and retires the WAL prefix it covers. Single-flight; concurrent
// callers serialize. It runs entirely off a pinned snapshot, so
// writers are never blocked, and skips cleanly when nothing changed
// since the last checkpoint.
func (c *Collection) Checkpoint() error {
	if c.wal == nil {
		return fmt.Errorf("core: collection %q is not durable", c.name)
	}
	c.ckptMu.Lock()
	defer c.ckptMu.Unlock()

	// Seal the active segment first so the log prefix covered by the
	// snapshot we are about to pin is removable afterwards.
	if err := c.wal.log.Rotate(); err != nil {
		obs.CheckpointsTotal.With("failed").Inc()
		return fmt.Errorf("core: checkpoint rotate: %w", err)
	}
	s := c.snap.Load()
	if s.lsn <= c.ckptLSN {
		obs.CheckpointsTotal.With("skipped").Inc()
		return nil
	}

	start := time.Now()
	path := filepath.Join(c.wal.dir, checkpointName(s.lsn))
	if err := writeSnapshotFile(path, c.fileSnapshotAt(s)); err != nil {
		obs.CheckpointsTotal.With("failed").Inc()
		return fmt.Errorf("core: writing checkpoint: %w", err)
	}
	obs.CheckpointSeconds.Observe(time.Since(start).Seconds())
	obs.CheckpointsTotal.With("written").Inc()
	obs.CheckpointLastLSN.Set(float64(s.lsn))
	if info, err := os.Stat(path); err == nil {
		obs.CheckpointBytes.Set(float64(info.Size()))
	}
	c.ckptLSN = s.lsn

	// The new checkpoint supersedes everything before it: older
	// checkpoints and every sealed segment wholly ≤ its LSN. Failures
	// here cost disk space, not durability — the next checkpoint
	// retries — so they are logged to metrics, not returned.
	if err := removeOldCheckpoints(c.wal.dir, s.lsn); err != nil {
		obs.CheckpointsTotal.With("failed").Inc()
		return nil
	}
	if _, err := c.wal.log.RemoveObsolete(s.lsn); err != nil {
		obs.CheckpointsTotal.With("failed").Inc()
	}
	return nil
}

// removeOldCheckpoints deletes every checkpoint below keep.
func removeOldCheckpoints(dir string, keep uint64) error {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	var removed bool
	var names []string
	for _, e := range ents {
		names = append(names, e.Name())
	}
	sort.Strings(names)
	for _, name := range names {
		if l, ok := parseCheckpointName(name); ok && l < keep {
			if err := os.Remove(filepath.Join(dir, name)); err != nil {
				return err
			}
			removed = true
		}
	}
	if removed {
		return wal.SyncDir(dir)
	}
	return nil
}

// startCheckpointer launches the background checkpoint loop when the
// options ask for one.
func (c *Collection) startCheckpointer() {
	iv := c.wal.opts.CheckpointInterval
	if iv <= 0 {
		return
	}
	c.ckptStop = make(chan struct{})
	c.ckptDone = make(chan struct{})
	go func() {
		defer close(c.ckptDone)
		tick := time.NewTicker(iv)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				c.Checkpoint() // failures surface via metrics; next tick retries
			case <-c.ckptStop:
				return
			}
		}
	}()
}

// Close shuts the durable machinery down cleanly: stop the background
// checkpointer, wait out any index build, write a final checkpoint (so
// the next recovery replays nothing), close the log, and unmap any
// mmap-tier column mappings. Idempotent; a nil-WAL (in-memory)
// collection only releases its mappings. After Close the collection
// must not be used — retired snapshots may reference unmapped memory.
func (c *Collection) Close() error {
	c.DisableAudit() // in-memory collections need this too; idempotent
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	durable := c.wal != nil
	c.mu.Unlock()

	if !durable {
		return c.closeMaps()
	}
	if c.ckptStop != nil {
		close(c.ckptStop)
		<-c.ckptDone
	}
	c.WaitForIndex()
	cerr := c.Checkpoint()
	werr := c.wal.log.Close()
	merr := c.closeMaps()
	if cerr != nil {
		return cerr
	}
	if werr != nil {
		return werr
	}
	return merr
}

// DurabilityStatus reports whether the collection is durable, the LSN
// of its last logged mutation, and the LSN covered by its latest
// checkpoint.
func (c *Collection) DurabilityStatus() (durable bool, lastLSN, ckptLSN uint64) {
	c.mu.Lock()
	durable, lastLSN = c.wal != nil, c.walLSN
	c.mu.Unlock()
	c.ckptMu.Lock()
	ckptLSN = c.ckptLSN
	c.ckptMu.Unlock()
	return durable, lastLSN, ckptLSN
}
