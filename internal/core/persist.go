package core

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"vdbms/internal/bitset"
	"vdbms/internal/filter"
	"vdbms/internal/index"
	"vdbms/internal/storage"
	"vdbms/internal/vec"
	"vdbms/internal/wal"
)

// Persistence: a collection serializes to a single file holding the
// schema, vectors, attribute columns, deletion set, and the index
// *recipe* (family + options). Indexes themselves are rebuilt on load
// — they are derived data, and each family's build is deterministic
// given its seed, so a rebuild reproduces the same structure without
// freezing internal layouts into the file format.
//
// The same serialization is the checkpoint format of the durable
// write path (durable.go): a checkpoint is a fileSnapshot stamped with
// the WAL position (AppliedLSN) it covers, and recovery is load +
// replay of newer log records.
//
// Serialization reads a pinned epoch snapshot, never the writer state:
// Save and checkpoints take no locks, cannot observe torn state, and
// never block writers — the PR 5 snapshot design makes consistent
// backups free by construction.

// fileSnapshot is the gob-encoded on-disk form (distinct from the
// in-memory epoch snapshot in collection.go).
type fileSnapshot struct {
	FormatVersion int
	Name          string
	Dim           int
	Metric        int32
	RebuildFrac   float64
	N             int
	Data          []float32
	Deleted       []int64
	// Attribute columns by name; exactly one slice per column is
	// non-nil, matching Kind.
	AttrKinds  map[string]int32
	IntColumns map[string][]int64
	FltColumns map[string][]float64
	StrColumns map[string][]string
	IndexKind  string
	IndexOpts  map[string]int
	// Quantization/RerankK mirror the schema's compressed-scan
	// defaults (gob decodes them as zero values from older snapshots,
	// i.e. disabled).
	Quantization string
	RerankK      int
	// AppliedLSN is the WAL position this snapshot covers (version ≥ 2;
	// 0 for plain Save files and pre-WAL snapshots).
	AppliedLSN uint64
}

// Snapshot container formats:
//
//	v1/v2  one gob value holding everything, Data inline.
//	v3     a 16-byte preamble (magic, column offset), the gob metadata
//	       with Data omitted, zero padding to a page boundary, then the
//	       float column as a storage column-file image. The column
//	       lands page-aligned, so a checkpoint doubles as an mmap
//	       source: recovery maps it in place instead of materializing
//	       the vectors on the heap (storage.OpenColumnSection).
//
// Readers accept all three; writers emit v3.
const (
	snapshotVersion = 3
	snapshotMagic   = uint32(0x56534e33) // "3NSV"
	preambleSize    = 16
)

// fileSnapshotAt serializes one pinned epoch snapshot. The data copy
// happens inside a reader pin so an in-place update patch cannot land
// mid-copy; everything else it reads is immutable (the deletion mask
// is copy-on-write, the attribute view pins its row count).
func (c *Collection) fileSnapshotAt(s *snapshot) *fileSnapshot {
	c.beginRead()
	defer c.endRead()
	d := c.schema.Dim
	snap := &fileSnapshot{
		FormatVersion: snapshotVersion,
		Name:          c.name,
		Dim:           d,
		Metric:        int32(c.schema.Metric),
		RebuildFrac:   c.schema.RebuildFraction,
		N:             s.rows,
		Data:          append([]float32(nil), s.env.Data[:s.rows*d]...),
		AttrKinds:     map[string]int32{},
		IntColumns:    map[string][]int64{},
		FltColumns:    map[string][]float64{},
		StrColumns:    map[string][]string{},
		IndexKind:     s.annKind,
		IndexOpts:     s.annOpts,
		Quantization:  c.schema.Quantization,
		RerankK:       c.schema.RerankK,
		AppliedLSN:    s.lsn,
	}
	if s.del != nil {
		s.del.ForEach(func(i int) bool {
			snap.Deleted = append(snap.Deleted, int64(i))
			return true
		})
	}
	for _, name := range s.env.Attrs.Columns() {
		col, _ := s.env.Attrs.Column(name)
		snap.AttrKinds[name] = int32(col.Kind())
		switch col.Kind() {
		case filter.Int64:
			snap.IntColumns[name] = col.Int64s(s.rows)
		case filter.Float64:
			snap.FltColumns[name] = col.Float64s(s.rows)
		case filter.String:
			snap.StrColumns[name] = col.Strings(s.rows)
		}
	}
	return snap
}

// Save writes the collection to path atomically. It serializes the
// current epoch snapshot, so it never blocks writers and cannot
// observe a torn state; rows inserted after the call starts are simply
// not in the file.
func (c *Collection) Save(path string) error {
	snap := c.fileSnapshotAt(c.snap.Load())
	return writeSnapshotFile(path, snap)
}

// writeSnapshotFile is the shared atomic write-rename-sync sequence
// for Save files and checkpoints, emitting the v3 container: metadata
// gob first, the float column page-aligned at the tail.
func writeSnapshotFile(path string, snap *fileSnapshot) error {
	column := snap.Data
	snap.Data = nil // the column travels in its own section
	defer func() { snap.Data = column }()
	var meta bytes.Buffer
	if err := gob.NewEncoder(&meta).Encode(snap); err != nil {
		return fmt.Errorf("core: encoding snapshot: %w", err)
	}
	columnOff := int64(preambleSize + meta.Len())
	if rem := columnOff % storage.ColumnHeaderSize; rem != 0 {
		columnOff += storage.ColumnHeaderSize - rem
	}
	return atomicWriteFile(path, func(w io.Writer) error {
		var pre [preambleSize]byte
		binary.LittleEndian.PutUint32(pre[0:], snapshotMagic)
		binary.LittleEndian.PutUint64(pre[8:], uint64(columnOff))
		if _, err := w.Write(pre[:]); err != nil {
			return err
		}
		if _, err := w.Write(meta.Bytes()); err != nil {
			return err
		}
		pad := make([]byte, columnOff-int64(preambleSize+meta.Len()))
		if _, err := w.Write(pad); err != nil {
			return err
		}
		return storage.WriteColumnSection(w, column, snap.N, snap.Dim)
	})
}

// atomicWriteFile writes path so a crash at any point leaves either
// the old file or the new one, never a mix: write a temp file, fsync
// it, rename over the target, then fsync the parent directory — the
// last step is what makes the rename itself durable; without it a
// power failure can resurface the old file (or nothing) even though
// the rename "succeeded".
func atomicWriteFile(path string, write func(w io.Writer) error) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	if err := write(w); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := w.Flush(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return wal.SyncDir(filepath.Dir(path))
}

// Load reads a collection saved by Save and rebuilds its index (if
// one was configured).
func Load(path string) (*Collection, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	c, err := loadFrom(f)
	if err != nil {
		return nil, err
	}
	if err := c.buildRecordedIndex(); err != nil {
		return nil, err
	}
	return c, nil
}

func loadFrom(r io.Reader) (*Collection, error) {
	snap, err := decodeSnapshot(r)
	if err != nil {
		return nil, err
	}
	return collectionFromSnapshot(snap, nil)
}

// decodeSnapshot reads and version-checks one serialized snapshot from
// a stream, materializing the v3 column section on the heap. Legacy
// v1/v2 files (a bare gob value) are detected by the missing magic.
func decodeSnapshot(r io.Reader) (*fileSnapshot, error) {
	br := bufio.NewReader(r)
	head, err := br.Peek(4)
	if err != nil || binary.LittleEndian.Uint32(head) != snapshotMagic {
		return decodeLegacySnapshot(br)
	}
	var pre [preambleSize]byte
	if _, err := io.ReadFull(br, pre[:]); err != nil {
		return nil, fmt.Errorf("core: snapshot preamble: %w", err)
	}
	columnOff := int64(binary.LittleEndian.Uint64(pre[8:]))
	if columnOff < preambleSize {
		return nil, fmt.Errorf("core: snapshot column offset %d corrupt", columnOff)
	}
	snap, consumed, err := decodeSnapshotMeta(br)
	if err != nil {
		return nil, err
	}
	if skip := columnOff - preambleSize - consumed; skip > 0 {
		if _, err := io.CopyN(io.Discard, br, skip); err != nil {
			return nil, fmt.Errorf("core: snapshot padding: %w", err)
		}
	}
	flat, n, dim, err := storage.ReadColumnSection(br)
	if err != nil {
		return nil, fmt.Errorf("core: snapshot column: %w", err)
	}
	if n != snap.N || dim != snap.Dim {
		return nil, fmt.Errorf("core: snapshot column is %d×%d, metadata says %d×%d", n, dim, snap.N, snap.Dim)
	}
	snap.Data = flat
	return snap, nil
}

// decodeLegacySnapshot decodes a v1/v2 file: one gob value, Data
// inline.
func decodeLegacySnapshot(r io.Reader) (*fileSnapshot, error) {
	var snap fileSnapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("core: decoding snapshot: %w", err)
	}
	if snap.FormatVersion < 1 || snap.FormatVersion > snapshotVersion {
		return nil, fmt.Errorf("core: snapshot version %d, supported ≤ %d", snap.FormatVersion, snapshotVersion)
	}
	return &snap, nil
}

// countingReader counts consumed bytes and exposes ReadByte so gob
// reads exactly the encoded messages (a gob.Decoder wraps readers
// without ReadByte in its own bufio, over-reading past the value).
type countingReader struct {
	br *bufio.Reader
	n  int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.br.Read(p)
	c.n += int64(n)
	return n, err
}

func (c *countingReader) ReadByte() (byte, error) {
	b, err := c.br.ReadByte()
	if err == nil {
		c.n++
	}
	return b, err
}

// decodeSnapshotMeta decodes the v3 metadata gob, reporting how many
// bytes of the stream it consumed (needed to skip the alignment pad).
func decodeSnapshotMeta(br *bufio.Reader) (*fileSnapshot, int64, error) {
	cr := &countingReader{br: br}
	var snap fileSnapshot
	if err := gob.NewDecoder(cr).Decode(&snap); err != nil {
		return nil, 0, fmt.Errorf("core: decoding snapshot metadata: %w", err)
	}
	if snap.FormatVersion < 3 || snap.FormatVersion > snapshotVersion {
		return nil, 0, fmt.Errorf("core: snapshot version %d in v3 container, supported ≤ %d", snap.FormatVersion, snapshotVersion)
	}
	return &snap, cr.n, nil
}

// openSnapshotFile loads one checkpoint or Save file from disk. For a
// v3 file on an mmap-capable platform it returns the metadata plus a
// live mapping of the column section (snap.Data stays nil); otherwise
// the column is materialized on the heap and the mapping is nil.
func openSnapshotFile(path string) (*fileSnapshot, *storage.MmapStore, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	var pre [preambleSize]byte
	if _, err := io.ReadFull(f, pre[:]); err != nil || binary.LittleEndian.Uint32(pre[0:]) != snapshotMagic || !storage.MmapSupported() {
		// Legacy container, tiny file, or no mmap: stream the whole file.
		if _, err := f.Seek(0, io.SeekStart); err != nil {
			return nil, nil, err
		}
		snap, err := decodeSnapshot(f)
		return snap, nil, err
	}
	columnOff := int64(binary.LittleEndian.Uint64(pre[8:]))
	snap, _, err := decodeSnapshotMeta(bufio.NewReader(io.NewSectionReader(f, preambleSize, columnOff-preambleSize)))
	if err != nil {
		return nil, nil, err
	}
	m, err := storage.OpenColumnSection(path, columnOff)
	if err != nil {
		return nil, nil, fmt.Errorf("core: mapping snapshot column: %w", err)
	}
	if m.Count() != snap.N || m.Dim() != snap.Dim {
		m.Close()
		return nil, nil, fmt.Errorf("core: snapshot column is %d×%d, metadata says %d×%d", m.Count(), m.Dim(), snap.N, snap.Dim)
	}
	return snap, m, nil
}

// collectionFromSnapshot restores a collection in bulk: columns are
// adopted wholesale after length validation instead of replaying one
// Insert (and one map allocation) per row, vectors get a single scorer
// build over the full array, and the deletion set is validated and
// installed as one bitset. Invariants the per-row path re-established
// incrementally are checked once up front. The recorded index recipe
// is installed but NOT built — callers decide when (Load builds
// immediately; Recover defers until after WAL replay).
//
// When m is non-nil the collection adopts the mapped column as its
// float store (snap.Data is ignored) and starts life in the mmap tier:
// the checkpoint file itself serves the vectors, the heap never holds
// a copy, and the first write-path mutation promotes transparently.
// The collection takes ownership of m — it is closed with the
// collection — and on any restore error the caller keeps ownership.
func collectionFromSnapshot(snap *fileSnapshot, m *storage.MmapStore) (*Collection, error) {
	column := snap.Data
	if m != nil {
		column = m.Raw()
	}
	if snap.N < 0 || len(column) != snap.N*snap.Dim {
		return nil, fmt.Errorf("core: snapshot has %d vector floats, want %d rows × %d dim", len(column), snap.N, snap.Dim)
	}
	attrs := map[string]filter.Kind{}
	for name, k := range snap.AttrKinds {
		attrs[name] = filter.Kind(k)
	}
	c, err := NewCollection(snap.Name, Schema{
		Dim:             snap.Dim,
		Metric:          vec.Metric(snap.Metric),
		Attributes:      attrs,
		RebuildFraction: snap.RebuildFrac,
		Quantization:    snap.Quantization,
		RerankK:         snap.RerankK,
	})
	if err != nil {
		return nil, err
	}
	if err := c.attrs.BulkRestore(snap.N, snap.IntColumns, snap.FltColumns, snap.StrColumns); err != nil {
		return nil, fmt.Errorf("core: restoring attributes: %w", err)
	}
	sc, err := vec.NewScorer(c.schema.Metric, column, snap.N, snap.Dim)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	c.data, c.n, c.scorer = column, snap.N, sc
	if m != nil {
		c.mapped = m
		c.maps = append(c.maps, m)
	}
	if len(snap.Deleted) > 0 {
		del := bitset.New(c.n)
		for _, id := range snap.Deleted {
			if id < 0 || id >= int64(c.n) {
				return nil, fmt.Errorf("core: restoring tombstone %d: id out of range [0,%d)", id, c.n)
			}
			if del.Test(int(id)) {
				return nil, fmt.Errorf("core: restoring tombstone %d: duplicate", id)
			}
			del.Set(int(id))
			c.nDel++
		}
		c.del = del
	}
	if snap.IndexKind != "" && !index.Registered(snap.IndexKind) {
		return nil, fmt.Errorf("core: snapshot records unknown index %q (known: %v)", snap.IndexKind, index.Names())
	}
	c.annKind, c.annOpts = snap.IndexKind, snap.IndexOpts
	c.walLSN = snap.AppliedLSN
	c.publishLocked() // no concurrency before the restorer returns
	return c, nil
}

// buildRecordedIndex builds and installs the index recipe recorded by
// collectionFromSnapshot (a no-op without one). Split from restore so
// recovery replays the whole log before paying for a single build.
func (c *Collection) buildRecordedIndex() error {
	c.mu.Lock()
	kind, opts := c.annKind, c.annOpts
	c.mu.Unlock()
	if kind == "" {
		return nil
	}
	if err := c.CreateIndex(kind, opts); err != nil {
		return fmt.Errorf("core: rebuilding %s index: %w", kind, err)
	}
	return nil
}
