package core

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"vdbms/internal/bitset"
	"vdbms/internal/filter"
	"vdbms/internal/index"
	"vdbms/internal/vec"
	"vdbms/internal/wal"
)

// Persistence: a collection serializes to a single file holding the
// schema, vectors, attribute columns, deletion set, and the index
// *recipe* (family + options). Indexes themselves are rebuilt on load
// — they are derived data, and each family's build is deterministic
// given its seed, so a rebuild reproduces the same structure without
// freezing internal layouts into the file format.
//
// The same serialization is the checkpoint format of the durable
// write path (durable.go): a checkpoint is a fileSnapshot stamped with
// the WAL position (AppliedLSN) it covers, and recovery is load +
// replay of newer log records.
//
// Serialization reads a pinned epoch snapshot, never the writer state:
// Save and checkpoints take no locks, cannot observe torn state, and
// never block writers — the PR 5 snapshot design makes consistent
// backups free by construction.

// fileSnapshot is the gob-encoded on-disk form (distinct from the
// in-memory epoch snapshot in collection.go).
type fileSnapshot struct {
	FormatVersion int
	Name          string
	Dim           int
	Metric        int32
	RebuildFrac   float64
	N             int
	Data          []float32
	Deleted       []int64
	// Attribute columns by name; exactly one slice per column is
	// non-nil, matching Kind.
	AttrKinds  map[string]int32
	IntColumns map[string][]int64
	FltColumns map[string][]float64
	StrColumns map[string][]string
	IndexKind  string
	IndexOpts  map[string]int
	// Quantization/RerankK mirror the schema's compressed-scan
	// defaults (gob decodes them as zero values from older snapshots,
	// i.e. disabled).
	Quantization string
	RerankK      int
	// AppliedLSN is the WAL position this snapshot covers (version ≥ 2;
	// 0 for plain Save files and pre-WAL snapshots).
	AppliedLSN uint64
}

const snapshotVersion = 2

// fileSnapshotAt serializes one pinned epoch snapshot. Everything it
// reads is immutable: the data prefix (inserts append, updates copy),
// the deletion mask (copy-on-write), and the attribute view (append-
// only columns behind a pinned row count).
func (c *Collection) fileSnapshotAt(s *snapshot) *fileSnapshot {
	d := c.schema.Dim
	snap := &fileSnapshot{
		FormatVersion: snapshotVersion,
		Name:          c.name,
		Dim:           d,
		Metric:        int32(c.schema.Metric),
		RebuildFrac:   c.schema.RebuildFraction,
		N:             s.rows,
		Data:          append([]float32(nil), s.env.Data[:s.rows*d]...),
		AttrKinds:     map[string]int32{},
		IntColumns:    map[string][]int64{},
		FltColumns:    map[string][]float64{},
		StrColumns:    map[string][]string{},
		IndexKind:     s.annKind,
		IndexOpts:     s.annOpts,
		Quantization:  c.schema.Quantization,
		RerankK:       c.schema.RerankK,
		AppliedLSN:    s.lsn,
	}
	if s.del != nil {
		s.del.ForEach(func(i int) bool {
			snap.Deleted = append(snap.Deleted, int64(i))
			return true
		})
	}
	for _, name := range s.env.Attrs.Columns() {
		col, _ := s.env.Attrs.Column(name)
		snap.AttrKinds[name] = int32(col.Kind())
		switch col.Kind() {
		case filter.Int64:
			snap.IntColumns[name] = col.Int64s(s.rows)
		case filter.Float64:
			snap.FltColumns[name] = col.Float64s(s.rows)
		case filter.String:
			snap.StrColumns[name] = col.Strings(s.rows)
		}
	}
	return snap
}

// Save writes the collection to path atomically. It serializes the
// current epoch snapshot, so it never blocks writers and cannot
// observe a torn state; rows inserted after the call starts are simply
// not in the file.
func (c *Collection) Save(path string) error {
	snap := c.fileSnapshotAt(c.snap.Load())
	return writeSnapshotFile(path, snap)
}

// writeSnapshotFile is the shared atomic write-rename-sync sequence
// for Save files and checkpoints.
func writeSnapshotFile(path string, snap *fileSnapshot) error {
	return atomicWriteFile(path, func(w io.Writer) error {
		if err := gob.NewEncoder(w).Encode(snap); err != nil {
			return fmt.Errorf("core: encoding snapshot: %w", err)
		}
		return nil
	})
}

// atomicWriteFile writes path so a crash at any point leaves either
// the old file or the new one, never a mix: write a temp file, fsync
// it, rename over the target, then fsync the parent directory — the
// last step is what makes the rename itself durable; without it a
// power failure can resurface the old file (or nothing) even though
// the rename "succeeded".
func atomicWriteFile(path string, write func(w io.Writer) error) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	if err := write(w); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := w.Flush(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return wal.SyncDir(filepath.Dir(path))
}

// Load reads a collection saved by Save and rebuilds its index (if
// one was configured).
func Load(path string) (*Collection, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	c, err := loadFrom(bufio.NewReader(f))
	if err != nil {
		return nil, err
	}
	if err := c.buildRecordedIndex(); err != nil {
		return nil, err
	}
	return c, nil
}

func loadFrom(r io.Reader) (*Collection, error) {
	snap, err := decodeSnapshot(r)
	if err != nil {
		return nil, err
	}
	return collectionFromSnapshot(snap)
}

// decodeSnapshot reads and version-checks one serialized snapshot.
func decodeSnapshot(r io.Reader) (*fileSnapshot, error) {
	var snap fileSnapshot
	if err := gob.NewDecoder(bufio.NewReader(r)).Decode(&snap); err != nil {
		return nil, fmt.Errorf("core: decoding snapshot: %w", err)
	}
	if snap.FormatVersion < 1 || snap.FormatVersion > snapshotVersion {
		return nil, fmt.Errorf("core: snapshot version %d, supported ≤ %d", snap.FormatVersion, snapshotVersion)
	}
	return &snap, nil
}

// collectionFromSnapshot restores a collection in bulk: columns are
// adopted wholesale after length validation instead of replaying one
// Insert (and one map allocation) per row, vectors get a single scorer
// build over the full array, and the deletion set is validated and
// installed as one bitset. Invariants the per-row path re-established
// incrementally are checked once up front. The recorded index recipe
// is installed but NOT built — callers decide when (Load builds
// immediately; Recover defers until after WAL replay).
func collectionFromSnapshot(snap *fileSnapshot) (*Collection, error) {
	if snap.N < 0 || len(snap.Data) != snap.N*snap.Dim {
		return nil, fmt.Errorf("core: snapshot has %d vector floats, want %d rows × %d dim", len(snap.Data), snap.N, snap.Dim)
	}
	attrs := map[string]filter.Kind{}
	for name, k := range snap.AttrKinds {
		attrs[name] = filter.Kind(k)
	}
	c, err := NewCollection(snap.Name, Schema{
		Dim:             snap.Dim,
		Metric:          vec.Metric(snap.Metric),
		Attributes:      attrs,
		RebuildFraction: snap.RebuildFrac,
		Quantization:    snap.Quantization,
		RerankK:         snap.RerankK,
	})
	if err != nil {
		return nil, err
	}
	if err := c.attrs.BulkRestore(snap.N, snap.IntColumns, snap.FltColumns, snap.StrColumns); err != nil {
		return nil, fmt.Errorf("core: restoring attributes: %w", err)
	}
	sc, err := vec.NewScorer(c.schema.Metric, snap.Data, snap.N, snap.Dim)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	c.data, c.n, c.scorer = snap.Data, snap.N, sc
	if len(snap.Deleted) > 0 {
		del := bitset.New(c.n)
		for _, id := range snap.Deleted {
			if id < 0 || id >= int64(c.n) {
				return nil, fmt.Errorf("core: restoring tombstone %d: id out of range [0,%d)", id, c.n)
			}
			if del.Test(int(id)) {
				return nil, fmt.Errorf("core: restoring tombstone %d: duplicate", id)
			}
			del.Set(int(id))
			c.nDel++
		}
		c.del = del
	}
	if snap.IndexKind != "" && !index.Registered(snap.IndexKind) {
		return nil, fmt.Errorf("core: snapshot records unknown index %q (known: %v)", snap.IndexKind, index.Names())
	}
	c.annKind, c.annOpts = snap.IndexKind, snap.IndexOpts
	c.walLSN = snap.AppliedLSN
	c.publishLocked() // no concurrency before the restorer returns
	return c, nil
}

// buildRecordedIndex builds and installs the index recipe recorded by
// collectionFromSnapshot (a no-op without one). Split from restore so
// recovery replays the whole log before paying for a single build.
func (c *Collection) buildRecordedIndex() error {
	c.mu.Lock()
	kind, opts := c.annKind, c.annOpts
	c.mu.Unlock()
	if kind == "" {
		return nil
	}
	if err := c.CreateIndex(kind, opts); err != nil {
		return fmt.Errorf("core: rebuilding %s index: %w", kind, err)
	}
	return nil
}
