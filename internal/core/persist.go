package core

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"vdbms/internal/filter"
	"vdbms/internal/vec"
)

// Persistence: a collection serializes to a single file holding the
// schema, vectors, attribute columns, deletion set, and the index
// *recipe* (family + options). Indexes themselves are rebuilt on load
// — they are derived data, and each family's build is deterministic
// given its seed, so a rebuild reproduces the same structure without
// freezing internal layouts into the file format.

// fileSnapshot is the gob-encoded on-disk form (distinct from the
// in-memory epoch snapshot in collection.go).
type fileSnapshot struct {
	FormatVersion int
	Name          string
	Dim           int
	Metric        int32
	RebuildFrac   float64
	N             int
	Data          []float32
	Deleted       []int64
	// Attribute columns by name; exactly one slice per column is
	// non-nil, matching Kind.
	AttrKinds  map[string]int32
	IntColumns map[string][]int64
	FltColumns map[string][]float64
	StrColumns map[string][]string
	IndexKind  string
	IndexOpts  map[string]int
}

const snapshotVersion = 1

// Save writes the collection to path atomically (write temp + rename).
func (c *Collection) Save(path string) error {
	c.mu.Lock()
	snap := fileSnapshot{
		FormatVersion: snapshotVersion,
		Name:          c.name,
		Dim:           c.schema.Dim,
		Metric:        int32(c.schema.Metric),
		RebuildFrac:   c.schema.RebuildFraction,
		N:             c.n,
		Data:          append([]float32(nil), c.data[:c.n*c.schema.Dim]...),
		AttrKinds:     map[string]int32{},
		IntColumns:    map[string][]int64{},
		FltColumns:    map[string][]float64{},
		StrColumns:    map[string][]string{},
		IndexKind:     c.annKind,
		IndexOpts:     c.annOpts,
	}
	if c.del != nil {
		c.del.ForEach(func(i int) bool {
			snap.Deleted = append(snap.Deleted, int64(i))
			return true
		})
	}
	for _, name := range c.attrs.Columns() {
		col, _ := c.attrs.Column(name)
		snap.AttrKinds[name] = int32(col.Kind())
		switch col.Kind() {
		case filter.Int64:
			vals := make([]int64, c.n)
			for i := 0; i < c.n; i++ {
				vals[i] = col.Get(i).I
			}
			snap.IntColumns[name] = vals
		case filter.Float64:
			vals := make([]float64, c.n)
			for i := 0; i < c.n; i++ {
				vals[i] = col.Get(i).F
			}
			snap.FltColumns[name] = vals
		case filter.String:
			vals := make([]string, c.n)
			for i := 0; i < c.n; i++ {
				vals[i] = col.Get(i).S
			}
			snap.StrColumns[name] = vals
		}
	}
	c.mu.Unlock()

	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	if err := gob.NewEncoder(w).Encode(&snap); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("core: encoding snapshot: %w", err)
	}
	if err := w.Flush(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// Load reads a collection saved by Save and rebuilds its index (if
// one was configured).
func Load(path string) (*Collection, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return loadFrom(bufio.NewReader(f))
}

func loadFrom(r io.Reader) (*Collection, error) {
	var snap fileSnapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("core: decoding snapshot: %w", err)
	}
	if snap.FormatVersion != snapshotVersion {
		return nil, fmt.Errorf("core: snapshot version %d, supported %d", snap.FormatVersion, snapshotVersion)
	}
	attrs := map[string]filter.Kind{}
	for name, k := range snap.AttrKinds {
		attrs[name] = filter.Kind(k)
	}
	c, err := NewCollection(snap.Name, Schema{
		Dim:             snap.Dim,
		Metric:          vec.Metric(snap.Metric),
		Attributes:      attrs,
		RebuildFraction: snap.RebuildFrac,
	})
	if err != nil {
		return nil, err
	}
	// Restore rows through the regular insert path so every invariant
	// (column alignment, counters) is re-established.
	row := make(map[string]filter.Value, len(attrs))
	for i := 0; i < snap.N; i++ {
		for name, k := range attrs {
			switch k {
			case filter.Int64:
				row[name] = filter.IntV(snap.IntColumns[name][i])
			case filter.Float64:
				row[name] = filter.FloatV(snap.FltColumns[name][i])
			case filter.String:
				row[name] = filter.StringV(snap.StrColumns[name][i])
			}
		}
		if _, err := c.Insert(snap.Data[i*snap.Dim:(i+1)*snap.Dim], row); err != nil {
			return nil, fmt.Errorf("core: restoring row %d: %w", i, err)
		}
	}
	for _, id := range snap.Deleted {
		if err := c.Delete(id); err != nil {
			return nil, fmt.Errorf("core: restoring tombstone %d: %w", id, err)
		}
	}
	if snap.IndexKind != "" {
		if err := c.CreateIndex(snap.IndexKind, snap.IndexOpts); err != nil {
			return nil, fmt.Errorf("core: rebuilding %s index: %w", snap.IndexKind, err)
		}
	}
	return c, nil
}
