package core

import (
	"fmt"
	"os"
	"path/filepath"

	"vdbms/internal/executor"
	"vdbms/internal/index"
	"vdbms/internal/memory"
	"vdbms/internal/storage"
)

// Memory-tiered serving (DESIGN.md §13). A collection attached to the
// process budget manager push-accounts its resident bytes after every
// published epoch and exposes three remediation hooks:
//
//   - drop caches: release the entity-map cache (rung 1),
//   - evict: move the float32 column to an mmap-backed spill file and
//     rebind the scorer and (Remappable) index onto the mapping, so
//     the heap copy becomes garbage and the kernel pages vectors in on
//     demand (rung 2; quantized codes stay heap-hot),
//   - promote: copy the column back to heap when pressure clears.
//
// The eviction protocol never mutates anything a published snapshot
// can see: the column is written out from a pinned reader window,
// the swap happens under mu with a staleness re-check, and retired
// mappings are kept alive until Close because old epochs may still
// score through them. Spill files are unlinked immediately after
// mapping — the mapping keeps the inode alive, the namespace stays
// clean, and a crashed process leaks no disk space. Each eviction
// writes a fresh uniquely-named file: reusing a path would truncate an
// inode an older mapping still reads.

// AttachMemory registers the collection with the budget manager and
// enables tier management. spillDir hosts the (transient, unlinked)
// eviction column files; it is created if missing.
func (c *Collection) AttachMemory(m *memory.Manager, spillDir string) error {
	if spillDir == "" {
		return fmt.Errorf("core: AttachMemory needs a spill directory")
	}
	if err := os.MkdirAll(spillDir, 0o755); err != nil {
		return err
	}
	a := m.Register(c.name)
	a.OnDropCaches(c.dropCaches)
	a.OnEvict(c.EvictToMmap)
	a.OnPromote(c.PromoteToHeap)
	c.mu.Lock()
	c.spillDir = spillDir
	c.acct.Store(a)
	if c.mapped != nil {
		// Recovered straight into the mmap tier (checkpoint-backed
		// column): tell the manager so it skips the eviction rung.
		a.SetEvicted(true)
	}
	c.accountLocked()
	c.mu.Unlock()
	return nil
}

// DetachMemory unregisters the collection from its budget manager.
// The column stays in whatever tier it currently occupies.
func (c *Collection) DetachMemory(m *memory.Manager) {
	c.mu.Lock()
	c.acct.Store(nil)
	c.mu.Unlock()
	m.Unregister(c.name)
}

// touchAccount stamps the account's logical clock — the coldness
// signal the eviction rung sorts by. Called from query paths, off-mu.
func (c *Collection) touchAccount() {
	if a := c.acct.Load(); a != nil {
		a.Touch()
	}
}

// accountLocked pushes the collection's resident bytes to its account.
// Called with mu held from publishLocked, so accounting tracks every
// epoch transition (insert growth, COW clones, evictions, index
// installs) without a sampling loop.
func (c *Collection) accountLocked() {
	a := c.acct.Load()
	if a == nil {
		return
	}
	var vecBytes int64
	if c.mapped == nil {
		vecBytes = int64(cap(c.data)) * 4
	}
	a.Set(memory.CatVectors, vecBytes)
	structure, codes := indexMemoryBytes(c.ann)
	a.Set(memory.CatIndex, structure)
	a.Set(memory.CatQuantCodes, codes)
	if c.wal != nil {
		a.Set(memory.CatWALBuffers, c.wal.log.BufferedBytes())
	}
}

// indexMemoryBytes reports an index's accountable heap bytes; families
// that do not implement index.MemoryFootprint account as zero (their
// data references are still covered by the vectors category).
func indexMemoryBytes(idx index.Index) (structure, codes int64) {
	if idx == nil {
		return 0, 0
	}
	if f, ok := idx.(index.MemoryFootprint); ok {
		return f.MemoryBytes()
	}
	return 0, 0
}

// adviseHook builds the executor's access-pattern hook for one mapped
// column: the planner's chosen plan tells the kernel whether the query
// will stream the whole column (enlarge readahead, drop behind) or
// probe random rows (fault only the touched pages). Repeated hints
// dedupe on lastAdvise, so the syscall is paid only when the workload's
// plan mix actually changes.
func (c *Collection) adviseHook(m *storage.MmapStore) func(executor.AccessPattern) {
	return func(p executor.AccessPattern) {
		want := int32(p) + 1 // 0 means "no hint issued yet"
		if c.lastAdvise.Load() == want || c.lastAdvise.Swap(want) == want {
			return
		}
		if p == executor.AdviseSequential {
			m.AdviseSequential()
		} else {
			m.AdviseRandom()
		}
	}
}

// dropCaches is the DropCaches-rung hook: release per-collection
// derived caches that can be rebuilt on demand.
func (c *Collection) dropCaches() {
	c.entMu.Lock()
	c.entCache = map[string]entityEntry{}
	c.entMu.Unlock()
}

// Tier reports which tier the float column currently occupies.
func (c *Collection) Tier() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.mapped != nil {
		return "mmap"
	}
	return "heap"
}

// EvictToMmap moves the float32 column to an mmap-backed spill file:
// search results are byte-identical (the mapping holds exactly the
// bytes the heap column held) but the pages are reclaimable by the
// kernel, so the collection's accounted vector bytes drop to zero.
// Quantized codes, the graph structure, and attribute columns stay on
// heap. Fails (leaving the heap tier intact) when the platform lacks
// mmap, when the installed index cannot rebind to a new column, or
// when a concurrent write lands mid-protocol.
func (c *Collection) EvictToMmap() error {
	if !storage.MmapSupported() {
		return fmt.Errorf("core: mmap tier unsupported on this platform")
	}

	// Phase 1 (under mu): pin the column and capture the staleness
	// witnesses. dataPins disables in-place patching so the pinned
	// prefix cannot change underneath the file write; COW updates and
	// inserts are caught by the epoch/row re-check in phase 3.
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return fmt.Errorf("core: collection %q is closed", c.name)
	}
	if c.acct.Load() == nil || c.spillDir == "" {
		c.mu.Unlock()
		return fmt.Errorf("core: collection %q is not memory-managed", c.name)
	}
	if c.mapped != nil {
		c.mu.Unlock()
		return nil // already in the mmap tier
	}
	if c.n == 0 {
		c.mu.Unlock()
		return fmt.Errorf("core: nothing to evict")
	}
	if c.building {
		c.mu.Unlock()
		return fmt.Errorf("core: index build in flight; retry")
	}
	if c.ann != nil {
		if _, ok := c.ann.(index.Remappable); !ok {
			// A non-remappable index keeps scoring the heap column, so
			// eviction would free nothing. Refuse; the manager moves on.
			c.mu.Unlock()
			return fmt.Errorf("core: index %q pins the heap column", c.ann.Name())
		}
	}
	n, d := c.n, c.schema.Dim
	epoch0 := c.updateEpoch.Load()
	data := c.data[:n*d]
	c.evictSeq++
	path := filepath.Join(c.spillDir, fmt.Sprintf("%s-%08d.col", c.name, c.evictSeq))
	c.dataPins++
	c.mu.Unlock()

	// Phase 2 (off-lock): write and map the column, then unlink. The
	// write is O(n·d) disk I/O and must not stall writers — they only
	// lose the in-place-patch fast path while the pin is held.
	m, err := func() (*storage.MmapStore, error) {
		if err := storage.WriteColumnFile(path, data, n, d); err != nil {
			return nil, err
		}
		m, err := storage.OpenColumn(path)
		// Unlink immediately: the mapping keeps the inode alive, and a
		// crash leaks no spill files.
		os.Remove(path)
		if err != nil {
			return nil, err
		}
		m.AdviseRandom()
		return m, nil
	}()
	c.mu.Lock()
	c.dataPins--
	if err != nil {
		c.mu.Unlock()
		return fmt.Errorf("core: evicting %q: %w", c.name, err)
	}

	// Phase 3 (under mu): re-check that the column we spilled is still
	// the current one, then swap every pointer in one epoch.
	if c.closed || c.n != n || c.updateEpoch.Load() != epoch0 || c.mapped != nil || c.building {
		c.mu.Unlock()
		m.Close() // never published; unmapping is safe
		return fmt.Errorf("core: eviction raced a write; retry")
	}
	c.mapped = m
	c.maps = append(c.maps, m)
	c.data = m.Raw()
	c.lastAdvise.Store(0) // fresh mapping, no hint issued yet
	// Same row count: the scorer just repoints its data pointer; cached
	// per-row state (norms) is content-derived and stays valid.
	c.scorer.Extend(c.data, c.n)
	if c.ann != nil {
		if r, ok := c.ann.(index.Remappable); ok {
			if idx2, ok2 := r.Remap(c.data); ok2 {
				c.ann = idx2
			}
		}
	}
	if a := c.acct.Load(); a != nil {
		a.SetEvicted(true)
	}
	c.publishLocked()
	c.mu.Unlock()
	return nil
}

// PromoteToHeap copies an evicted column back to heap and rebinds the
// scorer and index onto the copy. The retired mapping stays alive (in
// c.maps) for snapshots already holding it and is advised away.
func (c *Collection) PromoteToHeap() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.mapped == nil || c.closed {
		return nil
	}
	n, d := c.n, c.schema.Dim
	heapCol := make([]float32, n*d)
	copy(heapCol, c.data[:n*d])
	c.data = heapCol
	c.retireMappingLocked()
	c.scorer.Extend(c.data, c.n)
	if c.ann != nil {
		if r, ok := c.ann.(index.Remappable); ok {
			if idx2, ok2 := r.Remap(c.data); ok2 {
				c.ann = idx2
			}
		}
	}
	c.publishLocked()
	return nil
}

// promotedLocked finalizes a write-path promotion: the caller already
// replaced c.data with a heap copy (a reallocating append, or a COW
// clone), so only the tier bookkeeping and index rebind remain.
func (c *Collection) promotedLocked(reason string) {
	_ = reason
	c.retireMappingLocked()
	if c.ann != nil {
		if r, ok := c.ann.(index.Remappable); ok {
			if idx2, ok2 := r.Remap(c.data); ok2 {
				c.ann = idx2
			}
		}
	}
	if a := c.acct.Load(); a != nil {
		a.CountPromotion()
	}
	// The caller's mutation path publishes; accounting rides along.
}

// retireMappingLocked detaches the active mapping without unmapping it
// (published snapshots may still read through it until Close) and
// hints the kernel its pages are reclaimable.
func (c *Collection) retireMappingLocked() {
	if c.mapped == nil {
		return
	}
	c.mapped.AdviseDontNeed()
	c.mapped = nil
	c.lastAdvise.Store(0)
	if a := c.acct.Load(); a != nil {
		a.SetEvicted(false)
	}
}

// closeMaps unmaps every column mapping the collection ever served
// from. Only safe once no reader can hold a snapshot — Close calls it
// after the WAL and checkpointer are down.
func (c *Collection) closeMaps() error {
	c.mu.Lock()
	maps := c.maps
	c.maps, c.mapped = nil, nil
	if len(maps) > 0 {
		// c.data may alias the last mapping; leave the collection with
		// no column rather than a faulting one.
		c.data = nil
	}
	c.mu.Unlock()
	var first error
	for _, m := range maps {
		if err := m.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
