package core

import (
	"time"

	"vdbms/internal/index"
	"vdbms/internal/obs"
	"vdbms/internal/vec"
)

// Background index maintenance. The engine used to rebuild a stale
// index inline on the next search, stalling that query — and, under
// the old collection-wide lock, every other one — for the full build.
// Builds now run on a single-flight background goroutine per
// collection: a write that pushes staleness over the schema threshold
// starts the builder, the builder pins the current data prefix (safe
// off-lock: inserts append and updates copy-on-write), builds without
// holding any lock, and installs the result atomically. An install is
// discarded when CreateIndex or DropIndex changed the recipe mid-build
// (the epoch check below); writes that landed during the build keep
// their staleness, so the builder immediately re-evaluates the
// threshold and chains a catch-up build when needed. Nothing on the
// query path ever waits: a search that arrives mid-build simply uses
// the snapshot's previous index (or an exact scan).

// buildTimed runs one index build with duration metrics.
func buildTimed(kind string, data []float32, n, dim int, metric vec.Metric, opts map[string]int) (index.Index, error) {
	start := time.Now()
	idx, err := index.Build(kind, data, n, dim, metric, opts)
	secs := time.Since(start).Seconds()
	obs.IndexBuildSeconds.Observe(secs)
	obs.IndexBuildLastSecs.Set(secs)
	return idx, err
}

// maybeTriggerBuildLocked starts a background rebuild when the
// mutation fraction exceeds the schema threshold. Called with mu held
// from every write path and from build completion (catch-up).
// Single-flight: at most one builder goroutine per collection.
func (c *Collection) maybeTriggerBuildLocked() {
	// During WAL replay the index is built once at the end of
	// recovery; kicking builders per replayed record would race the
	// replay loop for no benefit.
	if c.replaying || c.annKind == "" || c.annN == 0 || c.building {
		return
	}
	grown := c.n - c.annN
	if float64(c.dirty+grown) <= c.schema.RebuildFraction*float64(c.annN) {
		return
	}
	c.building = true
	c.buildDone = make(chan struct{})
	obs.IndexBuildState.With(c.name).Set(1)
	go c.runBuild(c.buildEpoch, c.annKind, c.annOpts, c.data[:c.n*c.schema.Dim], c.n, c.dirty)
}

// runBuild is the builder goroutine body. Its inputs were pinned under
// mu by maybeTriggerBuildLocked; the data prefix stays immutable while
// the build runs because inserts only append past it and updates fall
// back to copy-on-write whenever a build is in flight (tryPatchLocked
// refuses to patch while c.building is set).
func (c *Collection) runBuild(epoch uint64, kind string, opts map[string]int, data []float32, n, dirty int) {
	idx, err := buildTimed(kind, data, n, c.schema.Dim, c.schema.Metric, opts)

	c.mu.Lock()
	defer c.mu.Unlock()
	c.building = false
	close(c.buildDone)
	obs.IndexBuildState.With(c.name).Set(0)
	switch {
	case err != nil:
		// Leave the old index standing. Deliberately not re-triggered
		// here — a deterministic failure would spin hot; the next write
		// re-evaluates the threshold and retries instead.
		obs.IndexBuildsTotal.With("failed").Inc()
	case epoch != c.buildEpoch:
		// CreateIndex/DropIndex changed the recipe mid-build; discard
		// the result but re-check staleness against the new recipe.
		obs.IndexBuildsTotal.With("stale").Inc()
		c.maybeTriggerBuildLocked()
	default:
		c.installLocked(idx, n, dirty)
		obs.IndexBuildsTotal.With("installed").Inc()
		c.publishLocked()
		// Writes that landed during the build may already exceed the
		// threshold again; chain the next build without waiting for
		// another write.
		c.maybeTriggerBuildLocked()
	}
}

// WaitForIndex blocks until no background index build is in flight,
// including catch-up builds chained by the builder itself. It is a
// convenience for tests, benchmarks, and shutdown paths; queries never
// need it.
func (c *Collection) WaitForIndex() {
	for {
		c.mu.Lock()
		if !c.building {
			c.mu.Unlock()
			return
		}
		done := c.buildDone
		c.mu.Unlock()
		<-done
	}
}

// IndexStatus reports the index family, coverage, staleness, and
// whether a background build is currently running — IndexInfo plus the
// builder state, for operational surfaces (/debug/stats, healthz).
func (c *Collection) IndexStatus() (kind string, covered, dirty int, building bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.annKind, c.annN, c.dirty, c.building
}
