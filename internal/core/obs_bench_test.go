package core

import (
	"testing"
	"time"

	"vdbms/internal/dataset"
	"vdbms/internal/filter"
)

// BenchmarkSearchObs measures the observability tax on the search
// path: the same single-threaded query loop with the statistics
// tracker and recall auditor fully on versus fully off. The auditor
// replays samples on its own goroutine off the query path, and its
// CPU is bounded by the audit interval (production cadence is
// minutes; 1s here is already aggressive), so the per-query cost
// this benchmark isolates is shape/selectivity recording, the
// reservoir admission check, and the occasional sample copy. The two
// queries/s figures land in BENCH_obs.json; the acceptance bar is
// that "on" stays within 5% of "off".
func BenchmarkSearchObs(b *testing.B) {
	const (
		rows = 8192
		dim  = 32
	)
	build := func(b *testing.B) *Collection {
		c, err := NewCollection("bench", Schema{
			Dim:        dim,
			Attributes: map[string]filter.Kind{"g": filter.Int64},
		})
		if err != nil {
			b.Fatal(err)
		}
		ds := dataset.Clustered(rows, dim, 8, 0.3, 7)
		for i := 0; i < rows; i++ {
			if _, err := c.Insert(ds.Row(i), map[string]filter.Value{"g": filter.IntV(int64(i % 16))}); err != nil {
				b.Fatal(err)
			}
		}
		if err := c.CreateIndex("hnsw", map[string]int{"m": 8}); err != nil {
			b.Fatal(err)
		}
		return c
	}
	run := func(b *testing.B, c *Collection) {
		ds := dataset.Clustered(rows, dim, 8, 0.3, 7)
		qs := ds.Queries(64, 0.1, 8)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := c.Search(Request{Vector: qs[i%len(qs)], K: 10, Ef: 64}); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "queries/s")
	}

	b.Run("off", func(b *testing.B) {
		c := build(b)
		c.SetStatsEnabled(false)
		run(b, c)
	})
	b.Run("on", func(b *testing.B) {
		c := build(b)
		c.SetStatsEnabled(true)
		c.EnableAudit(AuditConfig{
			Interval:      time.Second,
			ReservoirSize: 64,
		})
		defer c.DisableAudit()
		run(b, c)
	})
}
