// Package core is the engine behind the public vdbms API: it owns a
// collection's vectors, attribute table, deletion mask, and ANN index,
// wires them into an executor environment, and decides when the index
// is stale enough to rebuild. It is the glue layer of Figure 1 between
// the query processor and the storage manager.
//
// Concurrency follows a single-node version of the multi-version
// designs surveyed in Section 2.4: every mutation publishes a fresh
// immutable snapshot through one atomic pointer, queries run entirely
// against the snapshot they load (no locks, no torn state), and ANN
// index rebuilds happen on a background goroutine over a pinned
// snapshot so they never appear on the query's critical path. The
// reader-visible contract is written down in DESIGN.md §9.
package core

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"vdbms/internal/bitset"
	"vdbms/internal/executor"
	"vdbms/internal/filter"
	"vdbms/internal/index"
	"vdbms/internal/memory"
	"vdbms/internal/obs"
	"vdbms/internal/planner"
	"vdbms/internal/stats"
	"vdbms/internal/storage"
	"vdbms/internal/topk"
	"vdbms/internal/tuner"
	"vdbms/internal/vec"
	"vdbms/internal/wal"

	// Register every index family with the registry.
	_ "vdbms/internal/index/hnsw"
	_ "vdbms/internal/index/ivf"
	_ "vdbms/internal/index/kdtree"
	_ "vdbms/internal/index/knng"
	_ "vdbms/internal/index/lsh"
	_ "vdbms/internal/index/nsg"
	_ "vdbms/internal/index/nsw"
	_ "vdbms/internal/index/rptree"
	_ "vdbms/internal/index/spectral"
)

// Schema describes a collection at creation time.
type Schema struct {
	Dim    int
	Metric vec.Metric
	// Attributes maps column name to type.
	Attributes map[string]filter.Kind
	// RebuildFraction triggers an automatic background index rebuild
	// when the fraction of rows mutated since the last build exceeds
	// it; default 0.2. Rebuilds never run on the query path — see
	// builder.go.
	RebuildFraction float64
	// Quantization, when set to "sq8"/"pq"/"opq", is the default
	// compressed-scan codec folded into every CreateIndex call on a
	// quant-capable family (explicit per-index opts win). ""/"none"
	// disables it. The merged opts are what get recorded in the
	// WAL/checkpoint recipe, so quantized indexes survive recovery
	// unchanged even if the schema default later changes.
	Quantization string
	// RerankK is the default exact re-rank width for quantized scans;
	// 0 selects the per-query default max(4k, 32).
	RerankK int
}

// snapshot is one immutable epoch of the collection. Writers build a
// new snapshot under the writer mutex after every mutation and publish
// it with a single atomic pointer store; readers load the pointer once
// and run their whole query against that epoch without taking any
// lock. Nothing reachable from a published snapshot is ever mutated:
//
//   - env wraps a scorer view pinned at rows (inserts only append, and
//     vector updates either copy the array first or patch a row only
//     while the reader/patcher handshake proves no query is scanning —
//     so a reader never observes a torn row; a patched row is simply
//     the documented read-committed visibility of updates) and an
//     attribute-table view pinned at the same row count (columns are
//     append-only).
//   - del is a copy-on-write deletion mask; Delete clones the bitset
//     before setting a bit, so a reader's mask never changes mid-scan.
//   - ann/annN describe the installed ANN index and the rows it was
//     built over. env.ANN is non-nil only when annN == rows: an index
//     that misses recent inserts is bypassed for exact scans, while an
//     index stale only through in-place updates stays live (DESIGN.md
//     §9 spells out the visibility contract).
type snapshot struct {
	rows int // total rows in this epoch (live + deleted)
	nDel int // deleted rows
	env  *executor.Env
	del  *bitset.Bitset // nil until the first delete
	ann  index.Index    // installed index; may trail rows
	annN int            // rows covered by ann
	// annKind/annOpts record the index recipe at this epoch so saves
	// and checkpoints can serialize it from the pinned snapshot alone.
	annKind string
	annOpts map[string]int
	// lsn is the WAL sequence number of the last mutation in this
	// epoch (0 for non-durable collections): a checkpoint of this
	// snapshot covers exactly the log prefix ≤ lsn.
	lsn uint64
}

// stageWALWait is the pre-bound wal_commit_wait stage handle: commit
// waits are on every durable mutation, so the labeled lookup is paid
// once at init, not per write.
var stageWALWait = obs.SearchStageSeconds.With("wal_commit_wait")

// exclude adapts the epoch's deletion mask to the executor's exclusion
// callback. Bitset.Test reads out-of-range bits as false, so a mask
// frozen at an older epoch is still correct if consulted against ids
// appended later.
func (s *snapshot) exclude() func(id int64) bool {
	if s.del == nil || s.nDel == 0 {
		return nil
	}
	del := s.del
	return func(id int64) bool { return del.Test(int(id)) }
}

// Collection is a mutable vector collection with hybrid search.
//
// The query path is lock-free: Search, SearchRange, SearchBatch, Get,
// and OpenIterator load the current snapshot with one atomic pointer
// read and never contend with writers or index builds. Writers
// (Insert, UpdateVector, Delete) serialize on a short mutex covering
// only the mutation plus publication of the next snapshot; CreateIndex
// and the automatic rebuilds run their builds off-lock and install
// atomically, so no query or write ever waits for an index build.
type Collection struct {
	name   string
	schema Schema
	fn     vec.DistanceFunc

	// stats is the collection's online statistics tracker (row churn,
	// query shapes, selectivity histograms, probe cost); sampler is
	// the query reservoir the recall auditor replays (an atomic pointer
	// so EnableAudit can resize it while searches run). Both are
	// concurrency-safe and shared across epochs. latency is the
	// per-collection handle into vdbms_search_latency_seconds, bound
	// once so the hot path never does a labeled lookup.
	stats   *stats.Collection
	sampler atomic.Pointer[stats.Reservoir]
	latency *obs.Histogram

	// sampling gates reservoir admission: queries are offered to the
	// sampler only while a recall auditor or the auto-tuner wants
	// them, so collections without either never pay the sample-copy
	// cost. samplingAudit/samplingTune record who wants samples;
	// sampling is their OR, the single hot-path gate.
	sampling      atomic.Bool
	samplingAudit atomic.Bool
	samplingTune  atomic.Bool

	// updateEpoch counts in-place vector updates. Audit samples are
	// stamped with it at serve time so the auditor can skip samples
	// served against vector data that has since been overwritten
	// (audit.go's staleness rule for updates, mirroring the deletion
	// check).
	updateEpoch atomic.Uint64

	// Recall auditor state (audit.go), guarded by auditMu.
	auditMu   sync.Mutex
	auditStop chan struct{}
	auditDone chan struct{}
	auditCfg  AuditConfig

	// Auto-tuner state (tune.go), guarded by tuneMu. frontiers holds
	// one recall-vs-cost frontier per index kind ever tuned on this
	// collection; curFrontier publishes the frontier for the currently
	// installed kind so knob resolution on the query path is one
	// atomic load (resolution re-validates the kind against the
	// snapshot before trusting it). targetRecall is the collection
	// default recall SLO (float64 bits; 0 = none); defEf/defNProbe are
	// the collection-level search-parameter defaults (SetSearchDefaults).
	tuneMu    sync.Mutex
	tuneStop  chan struct{}
	tuneDone  chan struct{}
	tuneCfg   TuneConfig
	frontiers map[string]*tuner.Frontier
	// reselect decision debouncing (tune.go): a drift decision must
	// repeat on consecutive passes before it fires, and passes after a
	// fire are cooled down. Guarded by tuneMu.
	lastDrift     string
	driftStreak   int
	driftCooldown int

	curFrontier  atomic.Pointer[tuner.Frontier]
	targetRecall atomic.Uint64
	defEf        atomic.Int64
	defNProbe    atomic.Int64

	// snap is the published epoch every query reads.
	snap atomic.Pointer[snapshot]

	// mu serializes writers. It is held for the mutation itself plus
	// snapshot publication — never across an index build.
	mu sync.Mutex
	// scorer block-scores exact scans with cached per-row state. It is
	// extended in place on insert (published views pin their own row
	// count, so appends are invisible to them) and replaced wholesale
	// on in-place update (copy-on-write keeps old epochs intact).
	scorer *vec.Scorer
	data   []float32
	n      int
	del    *bitset.Bitset
	nDel   int
	attrs  *filter.Table

	annKind string
	annOpts map[string]int
	ann     index.Index
	annN    int // rows covered by the current index build
	dirty   int // in-place mutations since that build

	// Background builder state (builder.go). buildEpoch invalidates
	// in-flight builds when CreateIndex/DropIndex changes the recipe.
	building   bool
	buildDone  chan struct{}
	buildEpoch uint64

	// Entity-map cache for multi-vector queries, keyed by column and
	// validated against the snapshot row count (columns are append-only
	// and rows never change owner, so the row count is the attribute
	// version).
	entMu    sync.Mutex
	entCache map[string]entityEntry

	// Durable write path (durable.go). wal is nil for in-memory
	// collections; when set, every mutation is logged (and assigned
	// walLSN) under mu before it is applied, and acknowledged to the
	// caller only after its group commit. replaying suppresses
	// logging, per-record publication, and build triggers while
	// Recover re-applies history.
	wal       *walBinding
	walLSN    uint64
	replaying bool
	closed    bool

	// Checkpoint state (single-flight under ckptMu).
	ckptMu   sync.Mutex
	ckptLSN  uint64 // LSN covered by the latest checkpoint
	ckptStop chan struct{}
	ckptDone chan struct{}

	// Reader/patcher handshake for in-place vector updates. Queries pin
	// the epoch they read by incrementing active around the snapshot
	// load; an updater that finds no active reader patches the row in
	// place instead of cloning the whole column (applyUpdateLocked). The
	// two counters form a store-load protocol: the writer publishes
	// patching=1 then checks active, the reader publishes active+1 then
	// checks patching. Sequential consistency of sync/atomic guarantees
	// one of the two observes the other, so either the writer falls back
	// to copy-on-write or the reader waits out the short patch — a torn
	// read is impossible (DESIGN.md §13).
	active   atomic.Int64
	patching atomic.Int64
	// dataPins counts off-lock readers of c.data that bypass the
	// active/patching handshake (CreateIndex builds pin the column by
	// reference). Guarded by mu; while non-zero, updates must copy.
	dataPins int

	// Memory tier (memtier.go). acct is the budget-manager account, nil
	// for unmanaged collections. mapped is non-nil while c.data aliases
	// an mmap-backed column file; maps retains every mapping ever handed
	// to a snapshot so retired epochs stay valid until Close unmaps
	// them. spillDir hosts the (unlinked) column spill files; evictSeq
	// makes each spill file name unique — reusing a path would truncate
	// an inode that old mappings still read.
	acct     atomic.Pointer[memory.Account]
	mapped   *storage.MmapStore
	maps     []*storage.MmapStore
	spillDir string
	evictSeq int
	// lastAdvise dedupes executor access-pattern hints so steady-state
	// queries against a mapped column pay an atomic load, not a madvise
	// syscall, per query. 0 = unset; otherwise 1+AccessPattern.
	lastAdvise atomic.Int32
}

// beginRead pins the caller as an active reader: until the matching
// endRead, no in-place vector patch can start, and one already started
// is waited out. Pairs with endRead; the window must cover the snapshot
// load and every read through it.
func (c *Collection) beginRead() {
	c.active.Add(1)
	for c.patching.Load() != 0 {
		// A patch is in flight; it is a single row copy plus one cached-
		// state refresh, so spin-yield rather than park.
		runtime.Gosched()
	}
}

// endRead releases the reader pin taken by beginRead.
func (c *Collection) endRead() {
	c.active.Add(-1)
}

// NewCollection creates an empty collection.
func NewCollection(name string, schema Schema) (*Collection, error) {
	if schema.Dim <= 0 {
		return nil, fmt.Errorf("core: dimension must be positive")
	}
	if schema.Metric == vec.Mahalanobis {
		return nil, fmt.Errorf("core: Mahalanobis needs a learned matrix; use a custom executor")
	}
	if schema.RebuildFraction <= 0 {
		schema.RebuildFraction = 0.2
	}
	if _, err := index.ParseQuantKind(schema.Quantization); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if schema.RerankK < 0 {
		return nil, fmt.Errorf("core: rerank_k must be >= 0, got %d", schema.RerankK)
	}
	attrs := filter.NewTable()
	for name, kind := range schema.Attributes {
		if _, err := attrs.AddColumn(name, kind); err != nil {
			return nil, err
		}
	}
	scorer, err := vec.NewScorer(schema.Metric, nil, 0, schema.Dim)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	c := &Collection{
		name:     name,
		schema:   schema,
		fn:       vec.Distance(schema.Metric),
		stats:    stats.New(name),
		latency:  obs.SearchLatency.With(name),
		scorer:   scorer,
		attrs:    attrs,
		entCache: map[string]entityEntry{},
	}
	c.sampler.Store(stats.NewReservoir(0))
	c.publishLocked() // no concurrency before the constructor returns
	return c, nil
}

// publishLocked freezes the current writer state into a fresh epoch
// and stores it for readers. Called with mu held after every mutation.
// During WAL replay publication is deferred to the end of recovery —
// building an executor env per replayed record would make recovery
// quadratic for no reader's benefit.
func (c *Collection) publishLocked() {
	if c.replaying {
		return
	}
	var live index.Index
	if c.ann != nil && c.annN == c.n {
		live = c.ann
	}
	env, err := executor.NewEnvScorer(c.scorer.View(), c.fn, live, c.attrs.View(c.n))
	if err != nil {
		// Unreachable (the scorer is never nil); keep serving the
		// previous epoch rather than poisoning the pointer.
		return
	}
	// Hand the executor the shared stats tracker before the env becomes
	// visible to readers — after the Store it is immutable by contract.
	env.Stats = c.stats
	if c.mapped != nil {
		env.Advise = c.adviseHook(c.mapped)
	}
	c.accountLocked()
	c.snap.Store(&snapshot{
		rows:    c.n,
		nDel:    c.nDel,
		env:     env,
		del:     c.del,
		ann:     c.ann,
		annN:    c.annN,
		annKind: c.annKind,
		annOpts: c.annOpts,
		lsn:     c.walLSN,
	})
}

// logLocked appends one mutation record to the WAL, assigning its LSN.
// Called with mu held so log order always matches apply order; the
// returned commit is waited on after mu is released. encode runs only
// when a WAL is attached, keeping the non-durable write path free of
// serialization cost. A zero Commit waits as a no-op.
func (c *Collection) logLocked(encode func() []byte) (wal.Commit, error) {
	if c.wal == nil || c.replaying {
		return wal.Commit{}, nil
	}
	lsn, commit, err := c.wal.log.Append(encode())
	if err != nil {
		return wal.Commit{}, fmt.Errorf("core: wal append: %w", err)
	}
	c.walLSN = lsn
	return commit, nil
}

// Name returns the collection name.
func (c *Collection) Name() string { return c.name }

// Dim returns the vector dimensionality.
func (c *Collection) Dim() int { return c.schema.Dim }

// Len returns the number of live rows.
func (c *Collection) Len() int {
	s := c.snap.Load()
	return s.rows - s.nDel
}

// Rows returns the total rows ever inserted (live + deleted).
func (c *Collection) Rows() int { return c.snap.Load().rows }

// Insert appends a vector with attribute values and returns its id.
// On a durable collection the row is logged before it is applied and
// the call returns only after its WAL record is committed per the sync
// policy — a nil error is the durability acknowledgment.
//
// The row is applied and published to readers before the group commit
// completes, so a commit error means "durability not achieved", not
// "rolled back": the row stays visible until restart (and a checkpoint
// pinning that snapshot can persist it). The WAL error is sticky, so
// every later mutation fails too — restart to recover exactly what
// reached the log (DESIGN.md §10, apply-before-ack visibility).
func (c *Collection) Insert(v []float32, attrs map[string]filter.Value) (int64, error) {
	if len(v) != c.schema.Dim {
		return 0, fmt.Errorf("core: vector dim %d, collection dim %d", len(v), c.schema.Dim)
	}
	c.mu.Lock()
	if attrs == nil {
		attrs = map[string]filter.Value{}
	}
	// Validate fully before logging: a record in the log must always
	// be applicable on replay.
	if err := c.attrs.ValidateRow(attrs); err != nil {
		c.mu.Unlock()
		return 0, err
	}
	commit, err := c.logLocked(func() []byte { return encodeInsert(v, attrs, c.schema.Attributes) })
	if err != nil {
		c.mu.Unlock()
		return 0, err
	}
	id, err := c.applyInsertLocked(v, attrs)
	c.mu.Unlock()
	if err != nil {
		return 0, err
	}
	c.stats.RecordInsert(1)
	return id, c.waitCommit(commit)
}

// waitCommit waits for a mutation's group commit, timing the wait into
// the wal_commit_wait stage. In-memory collections (zero Commit,
// returns immediately) skip the observation so the stage histogram
// reflects real WAL waits only.
func (c *Collection) waitCommit(commit wal.Commit) error {
	if c.wal == nil {
		return commit.Wait()
	}
	start := time.Now()
	err := commit.Wait()
	stageWALWait.Observe(time.Since(start).Seconds())
	return err
}

// applyInsertLocked is the memory-state half of Insert, shared with
// WAL replay. Caller holds mu and has validated the row.
func (c *Collection) applyInsertLocked(v []float32, attrs map[string]filter.Value) (int64, error) {
	if err := c.attrs.AppendRow(attrs); err != nil {
		return 0, err
	}
	// Appending is snapshot-safe without copying: published views pin
	// their row count, so they never read past the old prefix, and a
	// reallocating append leaves their backing array untouched. When the
	// column lives in the mmap tier the append reallocates to heap
	// (mapped slices have cap == len), which is exactly promotion — the
	// mapping is read-only, so writes must land on the heap copy.
	c.data = append(c.data, v...)
	if c.mapped != nil {
		c.promotedLocked("insert")
	}
	id := int64(c.n)
	c.n++
	c.scorer.Extend(c.data, c.n)
	// Growth is tracked as n - annN; dirty counts only in-place
	// mutations, so inserts are not double counted.
	c.publishLocked()
	c.maybeTriggerBuildLocked()
	return id, nil
}

// UpdateVector overwrites the vector stored at id. The flat scan path
// sees the new values on the very next snapshot; an installed ANN
// index keeps scoring the array it was built over until the staleness
// threshold triggers a background rebuild (DESIGN.md §9). On a durable
// collection a commit error does not roll the update back — see
// Insert's apply-before-ack note.
func (c *Collection) UpdateVector(id int64, v []float32) error {
	if len(v) != c.schema.Dim {
		return fmt.Errorf("core: vector dim %d, collection dim %d", len(v), c.schema.Dim)
	}
	c.mu.Lock()
	if err := c.validIDLocked(id); err != nil {
		c.mu.Unlock()
		return err
	}
	commit, err := c.logLocked(func() []byte { return encodeUpdate(id, v) })
	if err != nil {
		c.mu.Unlock()
		return err
	}
	err = c.applyUpdateLocked(id, v)
	c.mu.Unlock()
	if err != nil {
		return err
	}
	c.stats.RecordUpdate()
	return c.waitCommit(commit)
}

// applyUpdateLocked is the memory-state half of UpdateVector, shared
// with WAL replay. Caller holds mu and has validated id.
//
// Fast path: when no reader is pinned (and nothing else aliases the
// column), the row is patched in place — O(d) instead of the O(n·d)
// full-column clone. Slow path: copy-on-write exactly as before, taken
// whenever a concurrent query, a pinned index build, or the mmap tier
// could observe the mutation. BenchmarkUpdateInPlace measures the gap.
func (c *Collection) applyUpdateLocked(id int64, v []float32) error {
	if !c.tryPatchLocked(id, v) {
		// Copy-on-write: a published snapshot is being read lock-free
		// right now (or the column is pinned/mapped), so an in-place
		// write could tear a concurrent scan. Copy the prefix, patch the
		// row, and stand up a fresh scorer.
		d := c.schema.Dim
		data := make([]float32, c.n*d, c.n*d)
		copy(data, c.data[:c.n*d])
		copy(data[int(id)*d:(int(id)+1)*d], v)
		sc, err := vec.NewScorer(c.schema.Metric, data, c.n, d)
		if err != nil {
			return fmt.Errorf("core: %w", err)
		}
		c.data, c.scorer = data, sc
		if c.mapped != nil {
			c.promotedLocked("update")
		}
	}
	c.updateEpoch.Add(1)
	if c.ann != nil {
		c.dirty++
	}
	c.publishLocked()
	c.maybeTriggerBuildLocked()
	return nil
}

// tryPatchLocked attempts the in-place row patch. Caller holds mu (so
// there is exactly one potential patcher). It refuses when the column
// is mmap-backed (the mapping is read-only), when an off-lock build
// has pinned the column by reference, or when any reader is active;
// otherwise it raises the patching flag, re-checks for readers (the
// store-load handshake with beginRead), writes the row, refreshes the
// scorer's cached per-row state, and lowers the flag.
func (c *Collection) tryPatchLocked(id int64, v []float32) bool {
	if c.mapped != nil || c.building || c.dataPins != 0 {
		return false
	}
	c.patching.Store(1)
	if c.active.Load() != 0 {
		c.patching.Store(0)
		return false
	}
	// No reader holds a pin, and any that arrives now spins on the
	// patching flag until we lower it: the window is exclusively ours.
	d := c.schema.Dim
	copy(c.data[int(id)*d:(int(id)+1)*d], v)
	c.scorer.Refresh(int(id))
	c.patching.Store(0)
	return true
}

// Delete hides a row from all future queries. Snapshots already loaded
// by in-flight searches keep their own mask and may still return the
// row — the documented read-committed behavior. On a durable
// collection a commit error does not undo the delete — see Insert's
// apply-before-ack note.
func (c *Collection) Delete(id int64) error {
	c.mu.Lock()
	if err := c.validIDLocked(id); err != nil {
		c.mu.Unlock()
		return err
	}
	commit, err := c.logLocked(func() []byte { return encodeDelete(id) })
	if err != nil {
		c.mu.Unlock()
		return err
	}
	c.applyDeleteLocked(id)
	c.mu.Unlock()
	c.stats.RecordDelete()
	return c.waitCommit(commit)
}

// applyDeleteLocked is the memory-state half of Delete, shared with
// WAL replay. Caller holds mu and has validated id.
func (c *Collection) applyDeleteLocked(id int64) {
	// Copy-on-write mask, regrown to the current row count so the new
	// epoch's bitset covers every id it can be asked about.
	del := bitset.New(c.n)
	if c.del != nil {
		c.del.ForEach(func(i int) bool {
			del.Set(i)
			return true
		})
	}
	del.Set(int(id))
	c.del = del
	c.nDel++
	if c.ann != nil {
		c.dirty++
	}
	c.publishLocked()
	c.maybeTriggerBuildLocked()
}

// Get returns the vector and attributes for a live id, read from the
// current snapshot without locking.
func (c *Collection) Get(id int64) ([]float32, map[string]filter.Value, error) {
	c.beginRead()
	defer c.endRead()
	s := c.snap.Load()
	if id < 0 || id >= int64(s.rows) {
		return nil, nil, fmt.Errorf("core: id %d out of range [0,%d)", id, s.rows)
	}
	if s.del != nil && s.del.Test(int(id)) {
		return nil, nil, fmt.Errorf("core: id %d is deleted", id)
	}
	d := c.schema.Dim
	v := make([]float32, d)
	copy(v, s.env.Data[int(id)*d:(int(id)+1)*d])
	out := map[string]filter.Value{}
	for _, col := range s.env.Attrs.Columns() {
		cc, _ := s.env.Attrs.Column(col)
		out[col] = cc.Get(int(id))
	}
	return v, out, nil
}

func (c *Collection) validIDLocked(id int64) error {
	if id < 0 || id >= int64(c.n) {
		return fmt.Errorf("core: id %d out of range [0,%d)", id, c.n)
	}
	if c.del != nil && c.del.Test(int(id)) {
		return fmt.Errorf("core: id %d is deleted", id)
	}
	return nil
}

// CreateIndex builds (or replaces) the ANN index using a registered
// family ("hnsw", "ivfflat", "lsh", ...) and its options. The build
// runs without holding the writer lock — inserts, updates, deletes,
// and searches all proceed while it runs — and the finished index
// installs atomically. Writes that land during the build leave it
// trailing (inserts) or stale (updates/deletes); the background
// builder observes the gap and schedules a catch-up rebuild.
func (c *Collection) CreateIndex(kind string, opts map[string]int) error {
	// Fold the collection-level quantization default into the recipe
	// before anything is pinned or logged: the materialized opts map is
	// what builds AND what replays.
	opts, qerr := index.MergeQuantDefaults(kind, opts, c.schema.Quantization, c.schema.RerankK)
	if qerr != nil {
		return qerr
	}
	c.mu.Lock()
	if c.n == 0 {
		c.mu.Unlock()
		return fmt.Errorf("core: cannot index an empty collection")
	}
	// Bumping the epoch invalidates any in-flight background build of
	// the old recipe; recording the new recipe first means rebuilds
	// triggered mid-build already target it.
	c.buildEpoch++
	epoch := c.buildEpoch
	prevKind, prevOpts := c.annKind, c.annOpts
	c.annKind, c.annOpts = kind, opts
	data, n, dirty := c.data[:c.n*c.schema.Dim], c.n, c.dirty
	// Pin the column by reference: the build reads it off-lock, so
	// in-place update patching must stay disabled until it finishes
	// (updates copy-on-write instead; the build's input stays frozen).
	c.dataPins++
	c.mu.Unlock()

	idx, err := buildTimed(kind, data, n, c.schema.Dim, c.schema.Metric, opts)

	c.mu.Lock()
	c.dataPins--
	if err != nil {
		obs.IndexBuildsTotal.With("failed").Inc()
		if c.buildEpoch == epoch {
			c.annKind, c.annOpts = prevKind, prevOpts
		}
		c.mu.Unlock()
		return err
	}
	if c.buildEpoch != epoch {
		// A concurrent CreateIndex/DropIndex superseded this build.
		obs.IndexBuildsTotal.With("stale").Inc()
		c.mu.Unlock()
		return nil
	}
	c.installLocked(idx, n, dirty)
	obs.IndexBuildsTotal.With("installed").Inc()
	// The recipe is logged only after the build succeeded, so replay
	// never re-runs a build that failed the first time.
	commit, lerr := c.logLocked(func() []byte { return encodeCreateIndex(kind, opts) })
	c.publishLocked()
	c.maybeTriggerBuildLocked()
	c.mu.Unlock()
	// Recall measured against whatever previously answered under these
	// kinds no longer describes the new index (mu released first:
	// tuneMu and mu are never held together).
	c.resetFrontier(prevKind)
	c.resetFrontier(kind)
	if lerr != nil {
		return lerr
	}
	return commit.Wait()
}

// installLocked adopts a finished build. dirtyAtStart is the dirty
// counter captured when the build's input was pinned: mutations that
// landed during the build stay counted against the new index.
func (c *Collection) installLocked(idx index.Index, covered, dirtyAtStart int) {
	c.ann, c.annN = idx, covered
	c.dirty -= dirtyAtStart
	if c.dirty < 0 {
		c.dirty = 0
	}
}

// DropIndex removes the ANN index (queries fall back to exact scan).
// Any in-flight build is invalidated and will be discarded.
func (c *Collection) DropIndex() {
	c.mu.Lock()
	commit, _ := c.logLocked(func() []byte { return encodeDropIndex() })
	c.buildEpoch++
	prevKind := c.annKind
	c.ann, c.annKind, c.annOpts = nil, "", nil
	c.annN, c.dirty = 0, 0
	c.publishLocked()
	c.mu.Unlock()
	c.resetFrontier(prevKind)
	// A drop that fails to commit costs at most a spurious rebuild on
	// recovery; the sticky WAL error surfaces on the next mutation.
	commit.Wait()
}

// IndexInfo reports the current index family and staleness.
func (c *Collection) IndexInfo() (kind string, covered, dirty int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.annKind, c.annN, c.dirty
}

// Request is a search request against the collection.
type Request struct {
	Vector  []float32
	Vectors [][]float32 // multi-vector query (with EntityColumn)
	K       int
	Preds   []filter.Predicate
	// Policy selects plan choice: "cost" (default), "rule", a
	// planner profile name, or "plan:<kind>" to force a plan.
	Policy string
	Ef     int
	NProbe int
	Alpha  int
	// TargetRecall, in (0,1], asks the auto-tuner to resolve Ef/NProbe
	// to the cheapest values whose observed recall meets it (tune.go).
	// Zero falls back to the collection's default target (if any).
	// Explicit Ef/NProbe win over any target.
	TargetRecall float64
	// RerankK overrides the exact re-rank width for quantized index
	// scans on this query; 0 uses the index/schema default.
	RerankK int
	// Parallelism is the intra-query worker count for partitioned
	// scans; 0 uses every CPU, 1 scans serially. Results are identical
	// at every setting.
	Parallelism int
	// EntityColumn names an Int64 attribute grouping rows into
	// entities for multi-vector queries.
	EntityColumn string
	Aggregator   vec.Aggregator
	Weights      []float32
	// Trace, when non-nil, receives the query's span tree: the caller
	// allocates it with obs.NewTrace, passes it here, and reads the
	// report with Trace.Finish() after Search returns.
	Trace *obs.Trace
}

// Result is one hit.
type Result struct {
	ID   int64
	Dist float32
}

// Parameter-source labels: where a query's resolved Ef/NProbe came
// from, in resolution priority order. Exported per query in Decision,
// the root trace span, and vdbms_plan_param_source_total.
const (
	// SourceExplicit: the request carried Ef or NProbe itself.
	SourceExplicit = "explicit"
	// SourceTuned: a recall target was resolved against a trusted
	// frontier point.
	SourceTuned = "tuned"
	// SourceSafeDefault: a recall target was requested but the
	// frontier is cold/stale/under-observed — the ladder maximum is
	// used so the SLO is not missed while the tuner warms up.
	SourceSafeDefault = "safe_default"
	// SourceCollectionDefault: no target; the collection-level
	// defaults (SetSearchDefaults) applied.
	SourceCollectionDefault = "collection_default"
	// SourceIndexDefault: nothing set anywhere; the index's own
	// built-in default applies (zeros pass through).
	SourceIndexDefault = "index_default"
)

// Decision describes how one search was resolved: the chosen plan,
// the index search parameters actually used (zero means "the index's
// built-in default"), and which layer supplied them.
type Decision struct {
	Plan        planner.Plan
	Ef          int
	NProbe      int
	ParamSource string
}

// Search executes the request and reports the planning decision. The
// whole query runs against one snapshot loaded at entry — it never
// blocks on writers or index builds. Every call is counted and timed
// in the obs registry; when req.Trace is set the pipeline stages
// (plan, filter, index_probe, ...) additionally record spans under its
// root, and the root span carries the resolved plan and parameters.
func (c *Collection) Search(req Request) ([]Result, Decision, error) {
	start := time.Now()
	// Captured before the query runs: an update racing the search gets
	// a higher epoch, so the sample reads as stale — the conservative
	// direction for the recall auditor.
	epoch := c.updateEpoch.Load()
	c.beginRead()
	res, dec, err := c.search(req)
	c.endRead()
	c.touchAccount()
	obs.SearchTotal.Inc()
	c.latency.Observe(time.Since(start).Seconds())
	if err != nil {
		obs.SearchErrors.Inc()
		return res, dec, err
	}
	obs.SearchPlans.With(dec.Plan.Kind.String()).Inc()
	obs.PlanParamSource.With(dec.ParamSource).Inc()
	c.stats.RecordQuery(req.K, req.Ef, req.NProbe, len(req.Preds) > 0)
	if len(req.Vectors) == 0 && len(req.Vector) > 0 && c.sampling.Load() {
		// Offer the served query to the audit reservoir. The sample copy
		// (vector, predicates, result ids) is built only on admission,
		// which Algorithm R makes vanishingly rare at volume.
		c.sampler.Load().MaybeOffer(func() stats.Sample { return makeSample(req, res, epoch) })
	}
	return res, dec, err
}

// makeSample deep-copies the parts of a served query the recall
// auditor needs to replay it: the vector, predicates, k, and the ids
// the serving path returned, stamped with the update epoch current
// when the query started.
func makeSample(req Request, res []Result, epoch uint64) stats.Sample {
	v := make([]float32, len(req.Vector))
	copy(v, req.Vector)
	var preds []filter.Predicate
	if len(req.Preds) > 0 {
		preds = make([]filter.Predicate, len(req.Preds))
		copy(preds, req.Preds)
	}
	served := make([]int64, len(res))
	for i, r := range res {
		served[i] = r.ID
	}
	return stats.Sample{Vector: v, K: req.K, Preds: preds, Served: served, Epoch: epoch}
}

// resolveKnobs resolves the search parameters for one query against
// the layered precedence: explicit per-query knobs beat a recall
// target (per-query, else collection default) resolved through the
// tuner's frontier, which beats the collection-level defaults, which
// beat the index's built-in defaults (zeros pass through untouched).
// An explicit Ef or NProbe pins BOTH values: mixing an explicit knob
// with tuned values would silently retune the knob the caller set.
func (c *Collection) resolveKnobs(req Request, s *snapshot) (ef, nprobe int, source string) {
	if req.Ef > 0 || req.NProbe > 0 {
		return req.Ef, req.NProbe, SourceExplicit
	}
	target := req.TargetRecall
	if target <= 0 {
		target = math.Float64frombits(c.targetRecall.Load())
	}
	if target > 0 && s.ann != nil {
		knob := tuner.KnobFor(s.annKind)
		param, src := 0, SourceSafeDefault
		if fr := c.curFrontier.Load(); fr != nil && fr.Kind() == s.annKind {
			p, trusted := fr.Resolve(target, req.K)
			param = p
			if trusted {
				src = SourceTuned
			}
		} else {
			// Target requested but no frontier for this kind yet: the
			// ladder maximum is the not-yet-warmed-up safe default.
			l := tuner.Ladder(knob)
			param = l[len(l)-1]
		}
		if knob == tuner.KnobNProbe {
			return 0, param, src
		}
		return param, 0, src
	}
	if de, dn := c.defEf.Load(), c.defNProbe.Load(); de > 0 || dn > 0 {
		return int(de), int(dn), SourceCollectionDefault
	}
	return 0, 0, SourceIndexDefault
}

func (c *Collection) search(req Request) ([]Result, Decision, error) {
	root := req.Trace.Root()
	s := c.snap.Load()
	if s.rows == 0 {
		return nil, Decision{ParamSource: SourceIndexDefault}, fmt.Errorf("core: collection %q is empty", c.name)
	}
	env := s.env
	ef, nprobe, source := c.resolveKnobs(req, s)
	dec := Decision{Ef: ef, NProbe: nprobe, ParamSource: source}
	opts := executor.Options{Ef: ef, NProbe: nprobe, RerankK: req.RerankK, Parallelism: req.Parallelism, Exclude: s.exclude(), Span: root}

	if len(req.Vectors) > 0 {
		if req.EntityColumn == "" {
			return nil, dec, fmt.Errorf("core: multi-vector query needs EntityColumn")
		}
		msp := root.Start("multi_vector")
		msp.Annotate("query_vectors", int64(len(req.Vectors)))
		mvOpts := opts
		mvOpts.Span = msp
		res, err := c.multiVector(s, req, mvOpts)
		msp.End()
		dec.Plan = planner.Plan{Kind: planner.SingleStage}
		c.tagDecision(root, dec)
		return res, dec, err
	}

	var res []topk.Result
	var err error
	if len(req.Policy) > 5 && req.Policy[:5] == "plan:" {
		dec.Plan, err = parsePlan(req.Policy[5:], req.Alpha)
		if err != nil {
			return nil, dec, err
		}
		res, err = env.Execute(dec.Plan, req.Vector, req.K, req.Preds, opts)
	} else {
		res, dec.Plan, err = env.Search(req.Vector, req.K, req.Preds, opts, req.Policy)
	}
	if err != nil {
		return nil, dec, err
	}
	c.tagDecision(root, dec)
	return convert(res), dec, nil
}

// tagDecision records the resolved plan and parameters on the query's
// root span, so a mis-planned query is debuggable straight from the
// slowlog.
func (c *Collection) tagDecision(root *obs.Span, dec Decision) {
	if root == nil {
		return
	}
	root.Tag("plan", dec.Plan.Kind.String())
	root.Tag("param_source", dec.ParamSource)
	if dec.Ef > 0 {
		root.Annotate("ef", int64(dec.Ef))
	}
	if dec.NProbe > 0 {
		root.Annotate("nprobe", int64(dec.NProbe))
	}
}

func parsePlan(name string, alpha int) (planner.Plan, error) {
	if alpha <= 0 {
		alpha = 4
	}
	switch name {
	case "brute_force":
		return planner.Plan{Kind: planner.BruteForce}, nil
	case "pre_filter":
		return planner.Plan{Kind: planner.PreFilter}, nil
	case "post_filter":
		return planner.Plan{Kind: planner.PostFilter, Alpha: alpha}, nil
	case "single_stage":
		return planner.Plan{Kind: planner.SingleStage}, nil
	}
	return planner.Plan{}, fmt.Errorf("core: unknown plan %q", name)
}

// entityEntry is one cached row→entity grouping.
type entityEntry struct {
	rows int
	m    *executor.EntityMap
}

// entityMap returns the entity grouping for the snapshot, cached per
// column. Columns are append-only and rows never change owner, so a
// map built at row count R is exact for every snapshot with R rows;
// an entry is replaced only when the collection has grown past it.
// Updates and deletes leave ownership intact and need no invalidation
// (deleted rows are masked by the executor, not the map).
func (c *Collection) entityMap(s *snapshot, name string, col *filter.Column) *executor.EntityMap {
	c.entMu.Lock()
	if e, ok := c.entCache[name]; ok && e.rows == s.rows {
		c.entMu.Unlock()
		return e.m
	}
	c.entMu.Unlock()
	owner := make([]int64, s.rows)
	for i := range owner {
		owner[i] = col.Get(i).I
	}
	m := executor.NewEntityMap(owner)
	c.entMu.Lock()
	if e, ok := c.entCache[name]; !ok || e.rows < s.rows {
		c.entCache[name] = entityEntry{rows: s.rows, m: m}
	}
	c.entMu.Unlock()
	return m
}

func (c *Collection) multiVector(s *snapshot, req Request, opts executor.Options) ([]Result, error) {
	env := s.env
	col, ok := env.Attrs.Column(req.EntityColumn)
	if !ok {
		return nil, fmt.Errorf("core: unknown entity column %q", req.EntityColumn)
	}
	if col.Kind() != filter.Int64 {
		return nil, fmt.Errorf("core: entity column %q must be Int64", req.EntityColumn)
	}
	m := c.entityMap(s, req.EntityColumn, col)
	var res []topk.Result
	var err error
	if env.ANN != nil {
		res, err = env.MultiVectorANN(m, req.Aggregator, req.Vectors, req.Weights, req.K, 0, opts)
	} else {
		res, err = env.MultiVectorExact(m, req.Aggregator, req.Vectors, req.Weights, req.K)
	}
	if err != nil {
		return nil, err
	}
	return convert(res), nil
}

// SearchRange returns all live rows within the squared-distance
// radius, subject to predicates. Like Search it runs lock-free on one
// snapshot and is counted and timed in the obs registry; the deletion
// mask is pushed into the scan as an exclusion filter, so dead rows
// are skipped before scoring instead of being filtered afterwards.
func (c *Collection) SearchRange(q []float32, radius float32, preds []filter.Predicate) ([]Result, error) {
	start := time.Now()
	c.beginRead()
	res, err := c.searchRange(q, radius, preds)
	c.endRead()
	c.touchAccount()
	obs.SearchTotal.Inc()
	c.latency.Observe(time.Since(start).Seconds())
	if err != nil {
		obs.SearchErrors.Inc()
	}
	return res, err
}

func (c *Collection) searchRange(q []float32, radius float32, preds []filter.Predicate) ([]Result, error) {
	s := c.snap.Load()
	res, err := s.env.SearchRange(q, radius, preds, executor.Options{Exclude: s.exclude()})
	if err != nil {
		return nil, err
	}
	return convert(res), nil
}

// SearchBatch answers many queries under one shared plan. The request
// supplies the same execution knobs as Search — Policy (including
// "plan:<kind>" forcing), K, Preds, Ef, NProbe, Alpha, Parallelism —
// but the plan is chosen once and reused for the whole batch, so the
// per-query fields (Vector, Vectors, EntityColumn, Trace) are ignored.
// Per-query failures are partial, not fatal: successful slots are
// returned alongside an error naming each failing query's index (a
// failed slot is nil).
func (c *Collection) SearchBatch(qs [][]float32, req Request) ([][]Result, error) {
	c.beginRead()
	defer c.endRead()
	defer c.touchAccount()
	s := c.snap.Load()
	env := s.env
	var plan planner.Plan
	var err error
	if len(req.Policy) > 5 && req.Policy[:5] == "plan:" {
		plan, err = parsePlan(req.Policy[5:], req.Alpha)
	} else {
		plan, err = env.Plan(req.K, req.Preds, req.Policy, nil)
	}
	if err != nil {
		return nil, err
	}
	// Knob resolution is shared with Search: a batch without explicit
	// Ef/NProbe resolves through the recall target and collection
	// defaults exactly once for the whole batch.
	ef, nprobe, _ := c.resolveKnobs(req, s)
	opts := executor.Options{Ef: ef, NProbe: nprobe, RerankK: req.RerankK, Parallelism: req.Parallelism, Exclude: s.exclude()}
	res, err := env.SearchBatch(plan, qs, req.K, req.Preds, opts)
	out := make([][]Result, len(res))
	for i, rs := range res {
		if rs == nil {
			continue
		}
		out[i] = convert(rs)
	}
	return out, err
}

// OpenIterator starts incremental paging over the collection. The
// iterator is pinned to the snapshot current at open time: rows
// inserted, updated, or deleted afterwards do not affect its pages.
// The pin also counts as an active reader until the iterator is
// garbage-collected, so in-place update patching is suppressed (every
// update copies) while pages may still be fetched.
func (c *Collection) OpenIterator(q []float32, preds []filter.Predicate, ef int) (*executor.Iterator, error) {
	c.beginRead()
	s := c.snap.Load()
	it, err := s.env.NewIterator(q, preds, executor.Options{Ef: ef, Exclude: s.exclude()})
	if err != nil {
		c.endRead()
		return nil, err
	}
	// The iterator has no Close; release the reader pin when it dies.
	runtime.SetFinalizer(it, func(*executor.Iterator) { c.endRead() })
	return it, nil
}

func convert(rs []topk.Result) []Result {
	out := make([]Result, len(rs))
	for i, r := range rs {
		out[i] = Result{ID: r.ID, Dist: r.Dist}
	}
	return out
}

// Stats returns a point-in-time snapshot of the collection's online
// statistics joined with the current epoch's row counts.
func (c *Collection) Stats() stats.Snapshot {
	s := c.snap.Load()
	return c.stats.Snapshot(s.rows, s.rows-s.nDel, c.schema.Dim)
}

// SetStatsEnabled toggles query-shape observation and selectivity/
// probe recording (the switch the observability overhead benchmark
// flips). Mutation counters stay on regardless; reservoir sampling is
// governed separately by EnableAudit.
func (c *Collection) SetStatsEnabled(on bool) { c.stats.SetEnabled(on) }

// AttributeKinds exposes the attribute schema (used by the public API
// when wrapping a restored collection). The column set is fixed at
// creation, so no snapshot is needed.
func (c *Collection) AttributeKinds() map[string]filter.Kind {
	out := map[string]filter.Kind{}
	for _, name := range c.attrs.Columns() {
		col, _ := c.attrs.Column(name)
		out[name] = col.Kind()
	}
	return out
}
