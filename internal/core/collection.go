// Package core is the engine behind the public vdbms API: it owns a
// collection's vectors, attribute table, deletion mask, and ANN index,
// wires them into an executor environment, and decides when the index
// is stale enough to rebuild. It is the glue layer of Figure 1 between
// the query processor and the storage manager.
package core

import (
	"fmt"
	"sync"
	"time"

	"vdbms/internal/executor"
	"vdbms/internal/filter"
	"vdbms/internal/index"
	"vdbms/internal/obs"
	"vdbms/internal/planner"
	"vdbms/internal/topk"
	"vdbms/internal/vec"

	// Register every index family with the registry.
	_ "vdbms/internal/index/hnsw"
	_ "vdbms/internal/index/ivf"
	_ "vdbms/internal/index/kdtree"
	_ "vdbms/internal/index/knng"
	_ "vdbms/internal/index/lsh"
	_ "vdbms/internal/index/nsg"
	_ "vdbms/internal/index/nsw"
	_ "vdbms/internal/index/rptree"
	_ "vdbms/internal/index/spectral"
)

// Schema describes a collection at creation time.
type Schema struct {
	Dim    int
	Metric vec.Metric
	// Attributes maps column name to type.
	Attributes map[string]filter.Kind
	// RebuildFraction triggers an automatic index rebuild when the
	// fraction of rows mutated since the last build exceeds it;
	// default 0.2.
	RebuildFraction float64
}

// Collection is a mutable vector collection with hybrid search.
type Collection struct {
	mu     sync.RWMutex
	name   string
	schema Schema
	fn     vec.DistanceFunc
	// scorer block-scores exact scans with cached per-row state; it is
	// kept alive across searches (envLocked rebuilds the Env per query)
	// and maintained incrementally: Extend on insert, Refresh on
	// in-place update.
	scorer  *vec.Scorer
	data    []float32
	n       int
	deleted map[int64]struct{}
	attrs   *filter.Table

	annKind string
	annOpts map[string]int
	ann     index.Index
	annN    int // rows covered by the current index build
	dirty   int // mutations since the build
}

// NewCollection creates an empty collection.
func NewCollection(name string, schema Schema) (*Collection, error) {
	if schema.Dim <= 0 {
		return nil, fmt.Errorf("core: dimension must be positive")
	}
	if schema.Metric == vec.Mahalanobis {
		return nil, fmt.Errorf("core: Mahalanobis needs a learned matrix; use a custom executor")
	}
	if schema.RebuildFraction <= 0 {
		schema.RebuildFraction = 0.2
	}
	attrs := filter.NewTable()
	for name, kind := range schema.Attributes {
		if _, err := attrs.AddColumn(name, kind); err != nil {
			return nil, err
		}
	}
	scorer, err := vec.NewScorer(schema.Metric, nil, 0, schema.Dim)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return &Collection{
		name:    name,
		schema:  schema,
		fn:      vec.Distance(schema.Metric),
		scorer:  scorer,
		deleted: map[int64]struct{}{},
		attrs:   attrs,
	}, nil
}

// Name returns the collection name.
func (c *Collection) Name() string { return c.name }

// Dim returns the vector dimensionality.
func (c *Collection) Dim() int { return c.schema.Dim }

// Len returns the number of live rows.
func (c *Collection) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.n - len(c.deleted)
}

// Rows returns the total rows ever inserted (live + deleted).
func (c *Collection) Rows() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.n
}

// Insert appends a vector with attribute values and returns its id.
func (c *Collection) Insert(v []float32, attrs map[string]filter.Value) (int64, error) {
	if len(v) != c.schema.Dim {
		return 0, fmt.Errorf("core: vector dim %d, collection dim %d", len(v), c.schema.Dim)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if attrs == nil {
		attrs = map[string]filter.Value{}
	}
	if err := c.attrs.AppendRow(attrs); err != nil {
		return 0, err
	}
	c.data = append(c.data, v...)
	id := int64(c.n)
	c.n++
	c.scorer.Extend(c.data, c.n)
	// Growth is tracked as n - annN; dirty counts only in-place
	// mutations, so inserts are not double counted.
	return id, nil
}

// UpdateVector overwrites the vector stored at id in place. The ANN
// index sees the new values immediately (distances are recomputed from
// the shared array) but its graph/partition structure grows stale;
// enough updates trigger a rebuild.
func (c *Collection) UpdateVector(id int64, v []float32) error {
	if len(v) != c.schema.Dim {
		return fmt.Errorf("core: vector dim %d, collection dim %d", len(v), c.schema.Dim)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.validIDLocked(id); err != nil {
		return err
	}
	copy(c.data[int(id)*c.schema.Dim:(int(id)+1)*c.schema.Dim], v)
	c.scorer.Refresh(int(id))
	if c.ann != nil {
		c.dirty++
	}
	return nil
}

// Delete hides a row from all future queries.
func (c *Collection) Delete(id int64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.validIDLocked(id); err != nil {
		return err
	}
	c.deleted[id] = struct{}{}
	if c.ann != nil {
		c.dirty++
	}
	return nil
}

// Get returns the vector and attributes for a live id.
func (c *Collection) Get(id int64) ([]float32, map[string]filter.Value, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if err := c.validIDLocked(id); err != nil {
		return nil, nil, err
	}
	v := make([]float32, c.schema.Dim)
	copy(v, c.data[int(id)*c.schema.Dim:(int(id)+1)*c.schema.Dim])
	out := map[string]filter.Value{}
	for _, col := range c.attrs.Columns() {
		cc, _ := c.attrs.Column(col)
		out[col] = cc.Get(int(id))
	}
	return v, out, nil
}

func (c *Collection) validIDLocked(id int64) error {
	if id < 0 || id >= int64(c.n) {
		return fmt.Errorf("core: id %d out of range [0,%d)", id, c.n)
	}
	if _, dead := c.deleted[id]; dead {
		return fmt.Errorf("core: id %d is deleted", id)
	}
	return nil
}

// CreateIndex builds (or replaces) the ANN index using a registered
// family ("hnsw", "ivfflat", "lsh", ...) and its options.
func (c *Collection) CreateIndex(kind string, opts map[string]int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.buildIndexLocked(kind, opts)
}

func (c *Collection) buildIndexLocked(kind string, opts map[string]int) error {
	if c.n == 0 {
		return fmt.Errorf("core: cannot index an empty collection")
	}
	idx, err := index.Build(kind, c.data, c.n, c.schema.Dim, opts)
	if err != nil {
		return err
	}
	c.annKind, c.annOpts, c.ann = kind, opts, idx
	c.annN = c.n
	c.dirty = 0
	return nil
}

// DropIndex removes the ANN index (queries fall back to exact scan).
func (c *Collection) DropIndex() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ann, c.annKind, c.annOpts = nil, "", nil
	c.annN, c.dirty = 0, 0
}

// IndexInfo reports the current index family and staleness.
func (c *Collection) IndexInfo() (kind string, covered, dirty int) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.annKind, c.annN, c.dirty
}

// maybeRebuild rebuilds the index when the mutation fraction exceeds
// the schema threshold. Called with the write lock held.
func (c *Collection) maybeRebuildLocked() error {
	if c.ann == nil || c.annN == 0 {
		return nil
	}
	grown := c.n - c.annN
	if float64(c.dirty+grown) <= c.schema.RebuildFraction*float64(c.annN) {
		return nil
	}
	return c.buildIndexLocked(c.annKind, c.annOpts)
}

// env materializes the executor environment for the current snapshot.
// Called with at least a read lock held. The persistent scorer is
// shared into each Env so its cached per-row state survives across
// searches instead of being recomputed per query.
func (c *Collection) envLocked() (*executor.Env, error) {
	return executor.NewEnvScorer(c.scorer, c.fn, c.liveIndexLocked(), c.attrs)
}

// liveIndexLocked returns the ANN index only if it covers every row;
// an index built before recent inserts would silently miss them, so
// it is bypassed until rebuilt.
func (c *Collection) liveIndexLocked() index.Index {
	if c.ann != nil && c.annN == c.n {
		return c.ann
	}
	return nil
}

// exclude returns the deletion mask as an executor exclusion.
func (c *Collection) exclude() func(id int64) bool {
	if len(c.deleted) == 0 {
		return nil
	}
	return func(id int64) bool {
		_, dead := c.deleted[id]
		return dead
	}
}

// Request is a search request against the collection.
type Request struct {
	Vector  []float32
	Vectors [][]float32 // multi-vector query (with EntityColumn)
	K       int
	Preds   []filter.Predicate
	// Policy selects plan choice: "cost" (default), "rule", a
	// planner profile name, or "plan:<kind>" to force a plan.
	Policy string
	Ef     int
	NProbe int
	Alpha  int
	// Parallelism is the intra-query worker count for partitioned
	// scans; 0 uses every CPU, 1 scans serially. Results are identical
	// at every setting.
	Parallelism int
	// EntityColumn names an Int64 attribute grouping rows into
	// entities for multi-vector queries.
	EntityColumn string
	Aggregator   vec.Aggregator
	Weights      []float32
	// Trace, when non-nil, receives the query's span tree: the caller
	// allocates it with obs.NewTrace, passes it here, and reads the
	// report with Trace.Finish() after Search returns.
	Trace *obs.Trace
}

// Result is one hit.
type Result struct {
	ID   int64
	Dist float32
}

// Search executes the request and reports the plan used. Every call
// is counted and timed in the obs registry; when req.Trace is set the
// pipeline stages (rebuild_check, plan, filter, index_probe, ...)
// additionally record spans under its root.
func (c *Collection) Search(req Request) ([]Result, planner.Plan, error) {
	start := time.Now()
	res, plan, err := c.search(req)
	obs.SearchTotal.Inc()
	obs.SearchLatency.Observe(time.Since(start).Seconds())
	if err != nil {
		obs.SearchErrors.Inc()
	} else {
		obs.SearchPlans.With(plan.Kind.String()).Inc()
	}
	return res, plan, err
}

func (c *Collection) search(req Request) ([]Result, planner.Plan, error) {
	root := req.Trace.Root()
	rsp := root.Start("rebuild_check")
	c.mu.Lock()
	if err := c.maybeRebuildLocked(); err != nil {
		c.mu.Unlock()
		rsp.End()
		return nil, planner.Plan{}, err
	}
	c.mu.Unlock()
	rsp.End()

	c.mu.RLock()
	defer c.mu.RUnlock()
	if c.n == 0 {
		return nil, planner.Plan{}, fmt.Errorf("core: collection %q is empty", c.name)
	}
	env, err := c.envLocked()
	if err != nil {
		return nil, planner.Plan{}, err
	}
	opts := executor.Options{Ef: req.Ef, NProbe: req.NProbe, Parallelism: req.Parallelism, Exclude: c.exclude(), Span: root}

	if len(req.Vectors) > 0 {
		if req.EntityColumn == "" {
			return nil, planner.Plan{}, fmt.Errorf("core: multi-vector query needs EntityColumn")
		}
		msp := root.Start("multi_vector")
		msp.Annotate("query_vectors", int64(len(req.Vectors)))
		mvOpts := opts
		mvOpts.Span = msp
		res, err := c.multiVectorLocked(env, req, mvOpts)
		msp.End()
		return res, planner.Plan{Kind: planner.SingleStage}, err
	}

	var res []topk.Result
	var plan planner.Plan
	if len(req.Policy) > 5 && req.Policy[:5] == "plan:" {
		plan, err = parsePlan(req.Policy[5:], req.Alpha)
		if err != nil {
			return nil, planner.Plan{}, err
		}
		res, err = env.Execute(plan, req.Vector, req.K, req.Preds, opts)
	} else {
		res, plan, err = env.Search(req.Vector, req.K, req.Preds, opts, req.Policy)
	}
	if err != nil {
		return nil, planner.Plan{}, err
	}
	return convert(res), plan, nil
}

func parsePlan(name string, alpha int) (planner.Plan, error) {
	if alpha <= 0 {
		alpha = 4
	}
	switch name {
	case "brute_force":
		return planner.Plan{Kind: planner.BruteForce}, nil
	case "pre_filter":
		return planner.Plan{Kind: planner.PreFilter}, nil
	case "post_filter":
		return planner.Plan{Kind: planner.PostFilter, Alpha: alpha}, nil
	case "single_stage":
		return planner.Plan{Kind: planner.SingleStage}, nil
	}
	return planner.Plan{}, fmt.Errorf("core: unknown plan %q", name)
}

func (c *Collection) multiVectorLocked(env *executor.Env, req Request, opts executor.Options) ([]Result, error) {
	col, ok := c.attrs.Column(req.EntityColumn)
	if !ok {
		return nil, fmt.Errorf("core: unknown entity column %q", req.EntityColumn)
	}
	if col.Kind() != filter.Int64 {
		return nil, fmt.Errorf("core: entity column %q must be Int64", req.EntityColumn)
	}
	owner := make([]int64, c.n)
	for i := 0; i < c.n; i++ {
		owner[i] = col.Get(i).I
	}
	m := executor.NewEntityMap(owner)
	var res []topk.Result
	var err error
	if env.ANN != nil {
		res, err = env.MultiVectorANN(m, req.Aggregator, req.Vectors, req.Weights, req.K, 0, opts)
	} else {
		res, err = env.MultiVectorExact(m, req.Aggregator, req.Vectors, req.Weights, req.K)
	}
	if err != nil {
		return nil, err
	}
	return convert(res), nil
}

// SearchRange returns all live rows within the squared-distance
// radius, subject to predicates.
func (c *Collection) SearchRange(q []float32, radius float32, preds []filter.Predicate) ([]Result, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	env, err := c.envLocked()
	if err != nil {
		return nil, err
	}
	res, err := env.SearchRange(q, radius, preds)
	if err != nil {
		return nil, err
	}
	// Apply the deletion mask (range path reads the flat scan only).
	out := make([]Result, 0, len(res))
	for _, r := range res {
		if _, dead := c.deleted[r.ID]; dead {
			continue
		}
		out = append(out, Result{ID: r.ID, Dist: r.Dist})
	}
	return out, nil
}

// SearchBatch answers many queries under one plan policy. Per-query
// failures are partial, not fatal: successful slots are returned
// alongside an error naming each failing query's index (a failed
// slot is nil).
func (c *Collection) SearchBatch(qs [][]float32, k int, preds []filter.Predicate, ef int) ([][]Result, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	env, err := c.envLocked()
	if err != nil {
		return nil, err
	}
	plan := planner.Plan{Kind: planner.SingleStage}
	res, err := env.SearchBatch(plan, qs, k, preds, executor.Options{Ef: ef, Exclude: c.exclude()})
	out := make([][]Result, len(res))
	for i, rs := range res {
		if rs == nil {
			continue
		}
		out[i] = convert(rs)
	}
	return out, err
}

// OpenIterator starts incremental paging over the collection.
func (c *Collection) OpenIterator(q []float32, preds []filter.Predicate, ef int) (*executor.Iterator, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	env, err := c.envLocked()
	if err != nil {
		return nil, err
	}
	return env.NewIterator(q, preds, executor.Options{Ef: ef, Exclude: c.exclude()})
}

func convert(rs []topk.Result) []Result {
	out := make([]Result, len(rs))
	for i, r := range rs {
		out[i] = Result{ID: r.ID, Dist: r.Dist}
	}
	return out
}

// AttributeKinds exposes the attribute schema (used by the public API
// when wrapping a restored collection).
func (c *Collection) AttributeKinds() map[string]filter.Kind {
	out := map[string]filter.Kind{}
	for _, name := range c.attrs.Columns() {
		col, _ := c.attrs.Column(name)
		out[name] = col.Kind()
	}
	return out
}
