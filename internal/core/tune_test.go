package core

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"vdbms/internal/dataset"
	"vdbms/internal/obs"
	"vdbms/internal/tuner"
	"vdbms/internal/vec"
)

// TestKnobResolutionPrecedence pins the layered parameter-resolution
// contract end to end on a real collection: explicit knobs beat a
// recall target, a target resolves through the frontier (safe default
// while cold), collection defaults come next, and the index's
// built-in defaults last — with zeros passing through unset at every
// layer, never silently dropped.
func TestKnobResolutionPrecedence(t *testing.T) {
	const n = 1000
	ds := dataset.Uniform(n, 8, 7)
	c, err := NewCollection("knobs", Schema{Dim: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if _, err := c.Insert(ds.Row(i), nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.CreateIndex("hnsw", nil); err != nil {
		t.Fatal(err)
	}
	q := ds.Row(0)

	search := func(req Request) Decision {
		t.Helper()
		req.Vector, req.K = q, 5
		_, dec, err := c.Search(req)
		if err != nil {
			t.Fatal(err)
		}
		return dec
	}

	// Explicit Ef wins over everything, including a target.
	dec := search(Request{Ef: 77, TargetRecall: 0.95})
	if dec.Ef != 77 || dec.ParamSource != SourceExplicit {
		t.Fatalf("explicit ef: got %+v", dec)
	}
	// An explicit NProbe alone also pins the pair: Ef stays unset (0)
	// rather than being filled from another layer.
	dec = search(Request{NProbe: 3})
	if dec.NProbe != 3 || dec.Ef != 0 || dec.ParamSource != SourceExplicit {
		t.Fatalf("explicit nprobe: got %+v", dec)
	}
	// A per-query target with a cold frontier resolves to the safe
	// default: the ladder maximum for the index's knob (ef for hnsw).
	maxEf := tuner.EfLadder[len(tuner.EfLadder)-1]
	dec = search(Request{TargetRecall: 0.9})
	if dec.Ef != maxEf || dec.ParamSource != SourceSafeDefault {
		t.Fatalf("cold target: got %+v, want ef=%d source=%s", dec, maxEf, SourceSafeDefault)
	}
	// The collection-level target behaves identically.
	c.SetTargetRecall(0.9)
	dec = search(Request{})
	if dec.Ef != maxEf || dec.ParamSource != SourceSafeDefault {
		t.Fatalf("collection target: got %+v", dec)
	}
	c.SetTargetRecall(0)
	// Collection defaults apply when no target is in play.
	c.SetSearchDefaults(40, 0)
	dec = search(Request{})
	if dec.Ef != 40 || dec.ParamSource != SourceCollectionDefault {
		t.Fatalf("collection default: got %+v", dec)
	}
	// ...but a target still outranks them.
	dec = search(Request{TargetRecall: 0.9})
	if dec.Ef != maxEf || dec.ParamSource != SourceSafeDefault {
		t.Fatalf("target over defaults: got %+v", dec)
	}
	c.SetSearchDefaults(0, 0)
	// Nothing set anywhere: zeros pass through to the index defaults.
	dec = search(Request{})
	if dec.Ef != 0 || dec.NProbe != 0 || dec.ParamSource != SourceIndexDefault {
		t.Fatalf("index default: got %+v", dec)
	}
}

// TestTunerConvergesDegradedIndex is the acceptance test for the
// recall-SLO tuner: a 50k-vector collection served by a deliberately
// coarse IVF index (64 lists) and a 0.95 recall@10 target. Before any
// tuning pass, queries run at the safe default (the nprobe ladder
// maximum). After passes replay the sampled workload across the
// ladder, the tuner must resolve a trusted nprobe that (a) actually
// serves recall@10 >= 0.95 against brute-force ground truth and (b)
// is measurably cheaper than the static worst-case it replaces.
func TestTunerConvergesDegradedIndex(t *testing.T) {
	if testing.Short() {
		t.Skip("50k-row dataset")
	}
	const (
		n      = 50_000
		d      = 8
		k      = 10
		nq     = 64
		target = 0.95
	)
	ds := dataset.Uniform(n, d, 31)
	c, err := NewCollection("tune", Schema{Dim: d})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if _, err := c.Insert(ds.Row(i), nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.CreateIndex("ivfflat", map[string]int{"nlist": 64}); err != nil {
		t.Fatal(err)
	}
	c.EnableTune(TuneConfig{TargetRecall: target, ReservoirSize: 2 * nq, PassSamples: nq})
	defer c.DisableTune()

	queries := ds.Queries(nq, 0.1, 37)
	truth := dataset.GroundTruth(vec.Distance(vec.L2), ds, queries, k)
	recallOf := func(i int, res []Result) float64 {
		inTruth := map[int64]bool{}
		for _, r := range truth[i] {
			inTruth[r.ID] = true
		}
		hits := 0
		for _, r := range res {
			if inTruth[r.ID] {
				hits++
			}
		}
		return float64(hits) / float64(k)
	}

	// Cold: the target resolves to the safe default (ladder max) and
	// fills the reservoir with the live workload.
	maxNProbe := tuner.NProbeLadder[len(tuner.NProbeLadder)-1]
	for i, q := range queries {
		res, dec, err := c.Search(Request{Vector: q, K: k})
		if err != nil {
			t.Fatal(err)
		}
		if dec.ParamSource != SourceSafeDefault || dec.NProbe != maxNProbe {
			t.Fatalf("cold query %d: got %+v, want safe default nprobe=%d", i, dec, maxNProbe)
		}
		_ = res
	}

	rep, err := c.TuneNow()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Outcome != "ok" || rep.Samples == 0 {
		t.Fatalf("pass: %+v", rep)
	}
	if rep.Kind != "ivfflat" || rep.Knob != "nprobe" {
		t.Fatalf("pass tuned %s/%s, want ivfflat/nprobe", rep.Kind, rep.Knob)
	}
	if !rep.Trusted {
		t.Fatalf("frontier not trusted after a full pass: %+v", rep)
	}
	if rep.Resolved >= maxNProbe {
		t.Fatalf("resolved nprobe %d is not cheaper than the static worst-case %d", rep.Resolved, maxNProbe)
	}
	if rep.BestRecall < target {
		t.Fatalf("best frontier recall %.4f below target %.2f", rep.BestRecall, target)
	}

	// Warm: the same workload must now serve from the tuned parameter
	// and still meet the target against ground truth.
	var sum float64
	for i, q := range queries {
		res, dec, err := c.Search(Request{Vector: q, K: k})
		if err != nil {
			t.Fatal(err)
		}
		if dec.ParamSource != SourceTuned {
			t.Fatalf("warm query %d: source %q, want %q (dec %+v)", i, dec.ParamSource, SourceTuned, dec)
		}
		if dec.NProbe != rep.Resolved {
			t.Fatalf("warm query %d ran nprobe=%d, tuner resolved %d", i, dec.NProbe, rep.Resolved)
		}
		sum += recallOf(i, res)
	}
	if got := sum / nq; got < target-0.01 {
		t.Fatalf("tuned serving recall@10 = %.4f, want >= %.2f", got, target)
	}
}

// TestTuneHysteresisAcrossPasses: repeated passes over the same
// workload must settle on one parameter, not oscillate between
// adjacent rungs — the frontier's margin holds the resolved value
// steady when a cheaper rung only grazes the target.
func TestTuneHysteresisAcrossPasses(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-pass replay")
	}
	const n, d, k, nq = 20_000, 8, 10, 32
	ds := dataset.Uniform(n, d, 41)
	c, err := NewCollection("hyst", Schema{Dim: d})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if _, err := c.Insert(ds.Row(i), nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.CreateIndex("ivfflat", map[string]int{"nlist": 32}); err != nil {
		t.Fatal(err)
	}
	c.EnableTune(TuneConfig{TargetRecall: 0.9, ReservoirSize: nq, PassSamples: nq})
	defer c.DisableTune()
	for _, q := range ds.Queries(nq, 0.1, 43) {
		if _, _, err := c.Search(Request{Vector: q, K: k}); err != nil {
			t.Fatal(err)
		}
	}
	resolved := map[int]bool{}
	for pass := 0; pass < 4; pass++ {
		rep, err := c.TuneNow()
		if err != nil {
			t.Fatal(err)
		}
		if rep.Outcome != "ok" || !rep.Trusted {
			t.Fatalf("pass %d: %+v", pass, rep)
		}
		resolved[rep.Resolved] = true
	}
	if len(resolved) > 2 {
		t.Fatalf("resolved parameter oscillated across %d values: %v", len(resolved), resolved)
	}
}

// TestDriftBuildGraphReselect is the acceptance test for
// drift-triggered index re-selection: an unindexed collection past
// the scan/graph crossover must get a graph index built in the
// background — after the decision repeats on consecutive passes —
// while concurrent searches keep answering without blocking or
// erroring. CI pins this under -race.
func TestDriftBuildGraphReselect(t *testing.T) {
	const n, d, k = 6000, 8, 5
	ds := dataset.Uniform(n, d, 53)
	c, err := NewCollection("drift", Schema{Dim: d})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if _, err := c.Insert(ds.Row(i), nil); err != nil {
			t.Fatal(err)
		}
	}
	c.EnableTune(TuneConfig{Reselect: true, PassSamples: 4})
	defer c.DisableTune()
	for _, q := range ds.Queries(8, 0.1, 59) {
		if _, _, err := c.Search(Request{Vector: q, K: k}); err != nil {
			t.Fatal(err)
		}
	}

	// Concurrent query load for the whole re-selection: searches must
	// never error, before, during, or after the background swap.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	errc := make(chan error, 4)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			qs := ds.Queries(16, 0.2, seed)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if _, _, err := c.Search(Request{Vector: qs[i%len(qs)], K: k}); err != nil {
					errc <- err
					return
				}
			}
		}(int64(100 + w))
	}

	// Pass 1 observes the drift; pass 2 confirms and fires the build.
	rep1, err := c.TuneNow()
	if err != nil {
		t.Fatal(err)
	}
	if rep1.Outcome != "no_index" || rep1.Drift != "build_graph" || rep1.DriftFired {
		t.Fatalf("pass 1: %+v, want observed-but-unfired build_graph", rep1)
	}
	rep2, err := c.TuneNow()
	if err != nil {
		t.Fatal(err)
	}
	if !rep2.DriftFired {
		t.Fatalf("pass 2: %+v, want build_graph fired", rep2)
	}

	c.WaitForIndex()
	close(stop)
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatalf("concurrent search failed during re-selection: %v", err)
	default:
	}
	kind, covered, _ := c.IndexInfo()
	if kind != "hnsw" || covered != n {
		t.Fatalf("after re-selection: kind=%q covered=%d, want hnsw over %d rows", kind, covered, n)
	}
	// The swapped-in index must actually serve.
	res, dec, err := c.Search(Request{Vector: ds.Row(0), K: k})
	if err != nil || len(res) != k {
		t.Fatalf("post-swap search: %v (%d hits)", err, len(res))
	}
	_ = dec
}

// TestDriftDebounceAndCooldown pins the oscillation guards: one
// sighting never fires, and after a fire the detector stays quiet for
// the cooldown window even when the condition persists.
func TestDriftDebounceAndCooldown(t *testing.T) {
	const n, d = 5000, 8
	ds := dataset.Uniform(n, d, 61)
	c, err := NewCollection("cool", Schema{Dim: d})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if _, err := c.Insert(ds.Row(i), nil); err != nil {
			t.Fatal(err)
		}
	}
	c.EnableTune(TuneConfig{Reselect: true, PassSamples: 2})
	defer c.DisableTune()

	pass := func() TuneReport {
		t.Helper()
		rep, err := c.TuneNow()
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	if rep := pass(); rep.DriftFired {
		t.Fatalf("first sighting fired immediately: %+v", rep)
	}
	if rep := pass(); !rep.DriftFired {
		t.Fatalf("second consecutive sighting did not fire: %+v", rep)
	}
	c.WaitForIndex()
	// Re-create the same drift condition and verify the cooldown
	// absorbs it: driftCooldownPasses passes decrement the window, and
	// only after it clears does the debounce cycle (observe, confirm)
	// run again.
	c.DropIndex()
	for i := 0; i < driftCooldownPasses; i++ {
		if rep := pass(); rep.DriftFired {
			t.Fatalf("pass %d fired during cooldown: %+v", i, rep)
		}
	}
	if rep := pass(); rep.DriftFired {
		t.Fatalf("first post-cooldown sighting fired without debounce: %+v", rep)
	}
	if rep := pass(); !rep.DriftFired {
		t.Fatalf("second post-cooldown sighting did not fire: %+v", rep)
	}
	c.WaitForIndex()
	if kind, _, _ := c.IndexInfo(); kind != "hnsw" {
		t.Fatalf("kind %q after cooldown refire, want hnsw", kind)
	}
}

// TestStrengthenRecipe pins the recall-exhausted escalation ladder.
func TestStrengthenRecipe(t *testing.T) {
	kind, opts := strengthenRecipe("hnsw", map[string]int{"m": 4, "efc": 16})
	if kind != "hnsw" || opts["m"] != 8 || opts["efc"] != 32 {
		t.Fatalf("got %s %v, want doubled hnsw", kind, opts)
	}
	// Defaults (absent opts) double from the family defaults.
	kind, opts = strengthenRecipe("hnsw", nil)
	if kind != "hnsw" || opts["m"] != 32 || opts["efc"] != 400 {
		t.Fatalf("got %s %v, want m=32 efc=400", kind, opts)
	}
	// Capped: nothing stronger to propose.
	if kind, _ = strengthenRecipe("hnsw", map[string]int{"m": 64, "efc": 1024}); kind != "" {
		t.Fatalf("at-cap recipe proposed %q, want none", kind)
	}
	// Doubling clamps to the cap rather than overshooting.
	_, opts = strengthenRecipe("hnsw", map[string]int{"m": 48, "efc": 800})
	if opts["m"] != 64 || opts["efc"] != 1024 {
		t.Fatalf("got %v, want clamped m=64 efc=1024", opts)
	}
	// A non-graph family escalates to the graph default.
	if kind, opts = strengthenRecipe("lsh", map[string]int{"tables": 4}); kind != "hnsw" || opts != nil {
		t.Fatalf("got %s %v, want default hnsw", kind, opts)
	}
}

// TestTuneSamplingSharedWithAudit: the reservoir gate must stay on
// while EITHER the auditor or the tuner wants samples, and turn off
// only when both are done.
func TestTuneSamplingSharedWithAudit(t *testing.T) {
	c, _ := newCol(t, 50)
	if c.sampling.Load() {
		t.Fatal("sampling on before anyone asked")
	}
	c.EnableAudit(AuditConfig{})
	c.EnableTune(TuneConfig{})
	if !c.sampling.Load() {
		t.Fatal("sampling off with audit+tune enabled")
	}
	c.DisableAudit()
	if !c.sampling.Load() {
		t.Fatal("disabling the audit turned off the tuner's sampling")
	}
	c.DisableTune()
	if c.sampling.Load() {
		t.Fatal("sampling still on after both disabled")
	}
}

// TestTuneLoopLifecycle: the background loop starts, runs passes, and
// stops cleanly on Disable — reconfiguration mid-flight included.
func TestTuneLoopLifecycle(t *testing.T) {
	const n = 2000
	ds := dataset.Uniform(n, 8, 67)
	c, err := NewCollection("loop", Schema{Dim: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if _, err := c.Insert(ds.Row(i), nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.CreateIndex("ivfflat", map[string]int{"nlist": 16}); err != nil {
		t.Fatal(err)
	}
	c.EnableTune(TuneConfig{Interval: time.Millisecond, TargetRecall: 0.9, PassSamples: 4})
	for _, q := range ds.Queries(8, 0.1, 71) {
		if _, _, err := c.Search(Request{Vector: q, K: 5}); err != nil {
			t.Fatal(err)
		}
	}
	// Let the loop take a few passes, reconfigure it live, then stop.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if fr := c.curFrontier.Load(); fr != nil {
			if _, ok := fr.BestRecall(5); ok {
				break
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	fr := c.curFrontier.Load()
	if fr == nil {
		t.Fatal("background loop never published a frontier")
	}
	if _, ok := fr.BestRecall(5); !ok {
		t.Fatal("background loop never produced a trusted measurement")
	}
	c.EnableTune(TuneConfig{Interval: time.Millisecond, TargetRecall: 0.8, PassSamples: 4})
	c.DisableTune()
	// After Disable the loop is gone: TuneNow still works on demand.
	if _, err := c.TuneNow(); err != nil {
		t.Fatal(err)
	}
	if got := c.TargetRecall(); got != 0.8 {
		t.Fatalf("target recall %v after reconfigure, want 0.8", got)
	}
}

// TestAdaptivePlanningOverhead gates the cost of the feedback loop on
// the hot path: a search resolving its parameters through the tuned
// frontier (one atomic load + a ladder walk over a published table)
// must stay within 5% of the same search with explicit static
// parameters. Measured as interleaved medians to cancel machine
// drift; the measured work is identical by construction (the tuned
// frontier resolves to the same ef the static run pins).
func TestAdaptivePlanningOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("timing measurement")
	}
	const n, d, k, nq = 10_000, 32, 10, 64
	ds := dataset.Uniform(n, d, 73)
	c, err := NewCollection("ovh", Schema{Dim: d})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if _, err := c.Insert(ds.Row(i), nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.CreateIndex("hnsw", nil); err != nil {
		t.Fatal(err)
	}
	c.EnableTune(TuneConfig{TargetRecall: 0.9, ReservoirSize: nq, PassSamples: nq})
	defer c.DisableTune()
	queries := ds.Queries(nq, 0.1, 79)
	for _, q := range queries {
		if _, _, err := c.Search(Request{Vector: q, K: k}); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := c.TuneNow()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Trusted {
		t.Fatalf("frontier not trusted: %+v", rep)
	}
	staticEf := rep.Resolved // identical search work on both sides

	measure := func(req Request) time.Duration {
		start := time.Now()
		for _, q := range queries {
			req.Vector, req.K = q, k
			if _, _, err := c.Search(req); err != nil {
				t.Fatal(err)
			}
		}
		return time.Since(start)
	}
	median := func(xs []time.Duration) time.Duration {
		for i := 1; i < len(xs); i++ {
			for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
				xs[j], xs[j-1] = xs[j-1], xs[j]
			}
		}
		return xs[len(xs)/2]
	}
	// A timing ratio on a shared host is noisy; the gate retries so a
	// scheduler hiccup cannot fail CI, but a real regression (which
	// reproduces every attempt) still does.
	const attempts = 3
	var lastRatio float64
	for a := 0; a < attempts; a++ {
		var sTimes, aTimes []time.Duration
		for r := 0; r < 5; r++ {
			sTimes = append(sTimes, measure(Request{Ef: staticEf}))
			aTimes = append(aTimes, measure(Request{})) // resolves via frontier
		}
		s, ad := median(sTimes), median(aTimes)
		lastRatio = float64(ad) / float64(s)
		if lastRatio <= 1.05 {
			return
		}
	}
	t.Fatalf("adaptive planning overhead %.1f%% > 5%% across %d attempts",
		(lastRatio-1)*100, attempts)
}

// TestTuneReportJSONShape keeps the report marshalable for the HTTP
// debug surfaces.
func TestTuneReportJSONShape(t *testing.T) {
	rep := TuneReport{Collection: "x", Outcome: "ok", Kind: "hnsw", Knob: "ef"}
	if s := fmt.Sprintf("%+v", rep); s == "" {
		t.Fatal("unprintable report")
	}
}

// TestRootSpanCarriesDecision: a traced query's root span must carry
// the executed plan and the parameter source as tags, and the
// resolved knobs as annotations — satellite of the plan-visibility
// work (X-Vdbms-Plan is the HTTP half; this is the trace half).
func TestRootSpanCarriesDecision(t *testing.T) {
	c, ds := newCol(t, 200)
	if err := c.CreateIndex("hnsw", nil); err != nil {
		t.Fatal(err)
	}
	tr := obs.NewTrace("search")
	_, dec, err := c.Search(Request{Vector: ds.Row(0), K: 5, Ef: 48, Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	rep := tr.Finish()
	if rep == nil {
		t.Fatal("no trace")
	}
	if rep.Tags["plan"] != dec.Plan.Kind.String() {
		t.Fatalf("root span plan tag %q, want %q", rep.Tags["plan"], dec.Plan.Kind.String())
	}
	if rep.Tags["param_source"] != SourceExplicit {
		t.Fatalf("root span param_source %q, want %q", rep.Tags["param_source"], SourceExplicit)
	}
	if rep.Annotations["ef"] != 48 {
		t.Fatalf("root span ef annotation %d, want 48", rep.Annotations["ef"])
	}
}
