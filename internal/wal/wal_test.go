package wal

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"vdbms/internal/fault"
)

func openT(t *testing.T, dir string, lastLSN uint64, opts Options) *Log {
	t.Helper()
	l, err := Open(dir, lastLSN, opts)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func appendWait(t *testing.T, l *Log, payload []byte) uint64 {
	t.Helper()
	lsn, c, err := l.Append(payload)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Wait(); err != nil {
		t.Fatal(err)
	}
	return lsn
}

func scanAll(t *testing.T, dir string, from uint64) ([]string, ScanResult) {
	t.Helper()
	var got []string
	res, err := Scan(dir, from, func(lsn uint64, payload []byte) error {
		got = append(got, fmt.Sprintf("%d:%s", lsn, payload))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return got, res
}

func TestAppendScanRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, 0, Options{})
	for i := 0; i < 10; i++ {
		if got := appendWait(t, l, []byte(fmt.Sprintf("r%d", i))); got != uint64(i+1) {
			t.Fatalf("lsn %d, want %d", got, i+1)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got, res := scanAll(t, dir, 0)
	if len(got) != 10 || res.LastLSN != 10 || res.TornTail {
		t.Fatalf("scan: %v %+v", got, res)
	}
	if got[0] != "1:r0" || got[9] != "10:r9" {
		t.Fatalf("payloads: %v", got)
	}
	// from skips the prefix.
	got, res = scanAll(t, dir, 7)
	if len(got) != 3 || got[0] != "8:r7" || res.LastLSN != 10 {
		t.Fatalf("scan from 7: %v %+v", got, res)
	}
}

func TestGroupCommitConcurrentAppends(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, 0, Options{})
	const n = 200
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, c, err := l.Append([]byte(fmt.Sprintf("g%03d", i)))
			if err != nil {
				errs[i] = err
				return
			}
			errs[i] = c.Wait()
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if l.LastLSN() != n {
		t.Fatalf("last LSN %d, want %d", l.LastLSN(), n)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got, _ := scanAll(t, dir, 0)
	if len(got) != n {
		t.Fatalf("scanned %d records, want %d", len(got), n)
	}
}

func TestSegmentRotationAndRemoveObsolete(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force rotation every few records.
	l := openT(t, dir, 0, Options{SegmentBytes: 64})
	for i := 0; i < 30; i++ {
		appendWait(t, l, []byte(fmt.Sprintf("row-%02d-aaaaaaaaaa", i)))
	}
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("want ≥3 segments, got %d", len(segs))
	}
	got, res := scanAll(t, dir, 0)
	if len(got) != 30 || res.LastLSN != 30 {
		t.Fatalf("scan across segments: %d records, last %d", len(got), res.LastLSN)
	}
	// Rotate seals the active segment; then everything ≤ 30 is removable.
	if err := l.Rotate(); err != nil {
		t.Fatal(err)
	}
	removed, err := l.RemoveObsolete(30)
	if err != nil {
		t.Fatal(err)
	}
	if removed == 0 {
		t.Fatal("expected to remove sealed segments")
	}
	got, _ = scanAll(t, dir, 30)
	if len(got) != 0 {
		t.Fatalf("records after truncation point: %v", got)
	}
	// New appends continue the sequence.
	if lsn := appendWait(t, l, []byte("after")); lsn != 31 {
		t.Fatalf("post-truncation LSN %d, want 31", lsn)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got, _ = scanAll(t, dir, 0)
	if len(got) != 1 || got[0] != "31:after" {
		t.Fatalf("after remove: %v", got)
	}
}

func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, 0, Options{})
	for i := 0; i < 5; i++ {
		appendWait(t, l, []byte(fmt.Sprintf("ok%d", i)))
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Append garbage half-frame to the single segment: a torn tail.
	segs, _ := listSegments(dir)
	path := filepath.Join(dir, segs[len(segs)-1].name)
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	var hdr [frameHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:], 1000) // length overruns the file
	if _, err := f.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	f.Close()

	got, res := scanAll(t, dir, 0)
	if len(got) != 5 || !res.TornTail || res.LastLSN != 5 {
		t.Fatalf("torn scan: %d records, %+v", len(got), res)
	}
	// The tail was truncated: a second scan is clean.
	got, res = scanAll(t, dir, 0)
	if len(got) != 5 || res.TornTail {
		t.Fatalf("post-truncation scan: %d records, %+v", len(got), res)
	}
}

// TestTornWriterTailDiscarded models power loss with fault.TornWriter:
// the writer reports success while silently tearing the byte stream at
// a budget, exactly what a lost page cache does. Everything before the
// tear replays; everything after is discarded without error.
func TestTornWriterTailDiscarded(t *testing.T) {
	dir := t.TempDir()
	var tw *fault.TornWriter
	l := openT(t, dir, 0, Options{
		Policy: SyncNever, // acks carry no durability promise here
		WrapWriter: func(w io.Writer) io.Writer {
			tw = fault.NewTornWriter(w, 200, 42)
			return tw
		},
	})
	for i := 0; i < 50; i++ {
		// Don't Wait: past the tear, commits would still "succeed" —
		// the torn writer lies like lost power does.
		if _, _, err := l.Append([]byte(fmt.Sprintf("torn-%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	if !tw.Torn() {
		t.Fatal("budget never crossed; test is vacuous")
	}
	got, res := scanAll(t, dir, 0)
	// A tear mid-frame sets TornTail; a tear that happens to land on a
	// frame boundary scans as a clean-but-short log. Both are legal — the
	// invariant is that what survives is a clean prefix.
	if len(got) == 0 || len(got) >= 50 {
		t.Fatalf("want a proper prefix of 50 records, got %d (res %+v)", len(got), res)
	}
	// Prefix property: records 1..k survived, in order.
	for i, g := range got {
		if want := fmt.Sprintf("%d:torn-%02d", i+1, i); g != want {
			t.Fatalf("record %d: %q want %q", i, g, want)
		}
	}
}

func TestCorruptionMidLogRefused(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, 0, Options{SegmentBytes: 64})
	for i := 0; i < 30; i++ {
		appendWait(t, l, []byte(fmt.Sprintf("row-%02d-aaaaaaaaaa", i)))
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := listSegments(dir)
	if len(segs) < 3 {
		t.Fatalf("want ≥3 segments, got %d", len(segs))
	}
	// Flip a payload byte in the FIRST segment: damage mid-log.
	path := filepath.Join(dir, segs[0].name)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Scan(dir, 0, func(uint64, []byte) error { return nil }); err == nil {
		t.Fatal("want corruption error for damaged non-final segment")
	}
}

func TestMissingSegmentRefused(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, 0, Options{SegmentBytes: 64})
	for i := 0; i < 30; i++ {
		appendWait(t, l, []byte(fmt.Sprintf("row-%02d-aaaaaaaaaa", i)))
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := listSegments(dir)
	if len(segs) < 3 {
		t.Fatalf("want ≥3 segments, got %d", len(segs))
	}
	// Delete a middle segment: an LSN gap, not a torn tail.
	if err := os.Remove(filepath.Join(dir, segs[1].name)); err != nil {
		t.Fatal(err)
	}
	if _, err := Scan(dir, 0, func(uint64, []byte) error { return nil }); err == nil {
		t.Fatal("want missing-records error for LSN gap")
	}
}

func TestSyncPolicies(t *testing.T) {
	for _, pol := range []SyncPolicy{SyncAlways, SyncInterval, SyncNever} {
		dir := t.TempDir()
		l := openT(t, dir, 0, Options{Policy: pol, Interval: time.Millisecond})
		for i := 0; i < 20; i++ {
			appendWait(t, l, []byte(fmt.Sprintf("p%d", i)))
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		got, _ := scanAll(t, dir, 0)
		if len(got) != 20 {
			t.Fatalf("%v: %d records", pol, len(got))
		}
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for s, want := range map[string]SyncPolicy{"always": SyncAlways, "interval": SyncInterval, "never": SyncNever} {
		got, err := ParseSyncPolicy(s)
		if err != nil || got != want {
			t.Fatalf("%q: %v %v", s, got, err)
		}
		if got.String() != s {
			t.Fatalf("round trip: %q -> %q", s, got.String())
		}
	}
	if _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Fatal("want parse error")
	}
}

func TestAppendAfterCloseFails(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, 0, Options{})
	appendWait(t, l, []byte("x"))
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := l.Append([]byte("y")); err == nil {
		t.Fatal("want closed error")
	}
}

func TestOpenResumesLSN(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, 0, Options{})
	appendWait(t, l, []byte("a"))
	appendWait(t, l, []byte("b"))
	l.Close()
	// Reopen as recovery would: next record continues the sequence in a
	// fresh segment.
	l = openT(t, dir, 2, Options{})
	if lsn := appendWait(t, l, []byte("c")); lsn != 3 {
		t.Fatalf("resumed LSN %d, want 3", lsn)
	}
	l.Close()
	got, _ := scanAll(t, dir, 0)
	if len(got) != 3 || got[2] != "3:c" {
		t.Fatalf("after resume: %v", got)
	}
}

func TestEmptyDirScan(t *testing.T) {
	got, res := scanAll(t, t.TempDir(), 0)
	if len(got) != 0 || res.LastLSN != 0 || res.TornTail {
		t.Fatalf("empty dir: %v %+v", got, res)
	}
	// Nonexistent dir is also fine (nothing to replay).
	got, res = scanAll(t, filepath.Join(t.TempDir(), "nope"), 0)
	if len(got) != 0 || res.LastLSN != 0 {
		t.Fatalf("missing dir: %v %+v", got, res)
	}
}

func TestScanToleratesGapCoveredByCheckpoint(t *testing.T) {
	// A tear can truncate the final segment below a checkpoint's LSN
	// (records publish before their group commit fsyncs); the recovery
	// that truncated it reopens the log at the checkpoint LSN, leaving
	// an inter-segment gap behind. Later scans must accept the gap when
	// every missing LSN is ≤ from — those records live in the
	// checkpoint — and keep rejecting it otherwise.
	dir := t.TempDir()
	l := openT(t, dir, 0, Options{})
	for i := 0; i < 5; i++ {
		appendWait(t, l, []byte(fmt.Sprintf("r%d", i)))
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Power loss: the last frame (LSN 5) loses its final byte.
	seg := filepath.Join(dir, segmentName(1))
	info, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(seg, info.Size()-1); err != nil {
		t.Fatal(err)
	}
	// Recovery with a checkpoint at LSN 5: the scan truncates the tear
	// back to LSN 4, then the log reopens past the checkpoint.
	got, res := scanAll(t, dir, 5)
	if len(got) != 0 || res.LastLSN != 4 || !res.TornTail {
		t.Fatalf("scan after tear: %v %+v", got, res)
	}
	l = openT(t, dir, 5, Options{})
	appendWait(t, l, []byte("r5"))
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// The gap {5} sits inside the checkpoint: tolerated, on every scan.
	for i := 0; i < 2; i++ {
		got, res = scanAll(t, dir, 5)
		if len(got) != 1 || got[0] != "6:r5" || res.LastLSN != 6 || res.TornTail {
			t.Fatalf("scan %d over covered gap: %v %+v", i, got, res)
		}
	}
	// A gap above from is still missing acknowledged records.
	if _, err := Scan(dir, 4, func(uint64, []byte) error { return nil }); err == nil {
		t.Fatal("gap above from must stay an error")
	}
}
