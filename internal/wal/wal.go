// Package wal is a write-ahead log for the durable write path: the
// classic "log before you apply" discipline (ARIES-style, minus undo —
// the engine's epoch snapshots make every applied state consistent, so
// recovery is pure redo). Callers append opaque payloads; the log
// frames each one with a length and CRC32, hands the bytes to a single
// committer goroutine that batches every appender waiting at that
// moment into one write (+fsync under SyncAlways) — group commit — and
// releases all of them together. Records get dense sequence numbers
// (LSNs); segments rotate at a size threshold and carry their first
// LSN in a header, so a checkpoint at LSN k can drop every segment
// whose records are all ≤ k without rewriting anything.
//
// Crash behavior is asymmetric by design (see Scan): a torn tail in
// the final segment is the expected signature of a crash mid-write and
// is truncated silently; a bad frame anywhere else means the log was
// damaged after it was written, and recovery refuses to guess.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"vdbms/internal/obs"
)

// SyncPolicy controls when appended records become durable.
type SyncPolicy int

const (
	// SyncAlways fsyncs every commit batch before acknowledging the
	// appenders in it: an acknowledged write survives power loss. Group
	// commit amortizes the fsync across every appender in the batch.
	SyncAlways SyncPolicy = iota
	// SyncInterval acknowledges after the write reaches the OS and
	// fsyncs on a timer: an acknowledged write survives a process
	// crash, and at most one interval of writes is exposed to power
	// loss.
	SyncInterval
	// SyncNever acknowledges after the write reaches the OS and never
	// fsyncs: an acknowledged write survives a process crash only.
	SyncNever
)

// ParseSyncPolicy maps the -fsync flag values onto policies.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "never":
		return SyncNever, nil
	}
	return 0, fmt.Errorf("wal: unknown sync policy %q (want always/interval/never)", s)
}

// String renders the policy as its flag value.
func (p SyncPolicy) String() string {
	switch p {
	case SyncInterval:
		return "interval"
	case SyncNever:
		return "never"
	default:
		return "always"
	}
}

// Options configures a Log.
type Options struct {
	// Policy is the sync policy (default SyncAlways).
	Policy SyncPolicy
	// Interval is the fsync period under SyncInterval (default 50ms).
	Interval time.Duration
	// SegmentBytes rotates to a new segment file once the active one
	// exceeds this size (default 64 MiB).
	SegmentBytes int64
	// WrapWriter, when non-nil, interposes on the active segment's
	// writer — the fault-injection hook the crash tests use to tear or
	// drop the tail of the log (fault.TornWriter). Sync still goes to
	// the real file.
	WrapWriter func(w io.Writer) io.Writer
}

func (o Options) withDefaults() Options {
	if o.Interval <= 0 {
		o.Interval = 50 * time.Millisecond
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 64 << 20
	}
	return o
}

const (
	segMagic   = uint32(0x5657414c) // "VWAL"
	segVersion = uint32(1)
	// segHeaderSize is magic + version + firstLSN.
	segHeaderSize = 4 + 4 + 8
	// frameHeaderSize is payload length + CRC32 (payload only).
	frameHeaderSize = 4 + 4
	segPrefix       = "wal-"
	segSuffix       = ".log"
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

func segmentName(firstLSN uint64) string {
	return fmt.Sprintf("%s%016x%s", segPrefix, firstLSN, segSuffix)
}

// parseSegmentName extracts the first LSN from a segment filename.
func parseSegmentName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
		return 0, false
	}
	hex := strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix)
	if len(hex) != 16 {
		return 0, false
	}
	v, err := strconv.ParseUint(hex, 16, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// batch is one group commit: every appender buffered between two
// committer wake-ups shares a done channel and an error.
type batch struct {
	done chan struct{}
	err  error
	n    int
}

// Commit is an appender's handle on its group commit.
type Commit struct{ b *batch }

// Wait blocks until the record's batch is durable per the log's sync
// policy and returns the batch outcome. A zero Commit (no WAL) returns
// nil immediately.
func (c Commit) Wait() error {
	if c.b == nil {
		return nil
	}
	<-c.b.done
	return c.b.err
}

// Log is an append-only write-ahead log over segment files in one
// directory. Append is safe for concurrent use; the committer
// goroutine owns all file writes.
type Log struct {
	dir  string
	opts Options

	// ioMu serializes all file I/O: the committer's writes, interval
	// syncs, and rotations triggered from the checkpointer via Rotate.
	// Lock order is always ioMu before mu.
	ioMu sync.Mutex

	mu      sync.Mutex
	f       *os.File  // active segment
	w       io.Writer // f, possibly wrapped by opts.WrapWriter
	size    int64     // bytes written to the active segment
	lsn     uint64    // last assigned LSN
	written uint64    // last LSN flushed to the active segment
	pending []byte    // framed records awaiting the committer
	cur     *batch    // batch collecting current appenders
	err     error     // sticky failure: the log is dead once set
	closed  bool

	kick chan struct{}
	quit chan struct{}
	done chan struct{}
}

// Open creates (or reuses) dir and starts a log whose next record gets
// LSN lastLSN+1. It always begins a fresh segment — after recovery the
// previous segment may have been truncated mid-frame, and appending to
// it would put the new records' durability at the mercy of old bytes.
func Open(dir string, lastLSN uint64, opts Options) (*Log, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	l := &Log{
		dir:     dir,
		opts:    opts,
		lsn:     lastLSN,
		written: lastLSN,
		kick:    make(chan struct{}, 1),
		quit:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	if err := l.openSegmentLocked(lastLSN + 1); err != nil {
		return nil, err
	}
	go l.commitLoop()
	return l, nil
}

// openSegmentLocked starts the segment whose first record will be
// firstLSN. The header is written and synced eagerly (with the
// directory) so a crash right after rotation cannot leave a segment
// whose very existence is in doubt.
func (l *Log) openSegmentLocked(firstLSN uint64) error {
	path := filepath.Join(l.dir, segmentName(firstLSN))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if os.IsExist(err) {
		// A previous life rotated to this segment and wrote nothing (a
		// clean shutdown's final rotation leaves exactly this): if the
		// file holds no records it is safe to replace. A bigger file
		// here means records past the LSN the caller recovered to —
		// refuse rather than overwrite them.
		if info, serr := os.Stat(path); serr == nil && info.Size() <= segHeaderSize {
			if rerr := os.Remove(path); rerr != nil {
				return rerr
			}
			f, err = os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
		}
	}
	if err != nil {
		return err
	}
	var hdr [segHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:], segMagic)
	binary.LittleEndian.PutUint32(hdr[4:], segVersion)
	binary.LittleEndian.PutUint64(hdr[8:], firstLSN)
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := syncDir(l.dir); err != nil {
		f.Close()
		return err
	}
	l.f = f
	l.w = io.Writer(f)
	if l.opts.WrapWriter != nil {
		l.w = l.opts.WrapWriter(f)
	}
	l.size = segHeaderSize
	return nil
}

// Append frames payload, assigns it the next LSN, and enqueues it for
// the committer. It returns immediately; call Commit.Wait for the
// durability acknowledgment. Appends are durable in LSN order: if LSN
// k is acknowledged, every record ≤ k is too.
func (l *Log) Append(payload []byte) (uint64, Commit, error) {
	l.mu.Lock()
	if l.err != nil {
		err := l.err
		l.mu.Unlock()
		return 0, Commit{}, err
	}
	if l.closed {
		l.mu.Unlock()
		return 0, Commit{}, fmt.Errorf("wal: log is closed")
	}
	l.lsn++
	lsn := l.lsn
	var hdr [frameHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.Checksum(payload, crcTable))
	l.pending = append(l.pending, hdr[:]...)
	l.pending = append(l.pending, payload...)
	if l.cur == nil {
		l.cur = &batch{done: make(chan struct{})}
	}
	l.cur.n++
	c := Commit{b: l.cur}
	l.mu.Unlock()

	obs.WALAppends.Inc()
	obs.WALAppendBytes.Add(int64(frameHeaderSize + len(payload)))
	select {
	case l.kick <- struct{}{}:
	default:
	}
	return lsn, c, nil
}

// LastLSN returns the most recently assigned LSN.
func (l *Log) LastLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lsn
}

// commitLoop is the committer goroutine: it drains the pending buffer
// into one write per wake-up, applies the sync policy, and releases
// that batch's appenders together.
func (l *Log) commitLoop() {
	defer close(l.done)
	var tick *time.Ticker
	var tickC <-chan time.Time
	if l.opts.Policy == SyncInterval {
		tick = time.NewTicker(l.opts.Interval)
		tickC = tick.C
		defer tick.Stop()
	}
	for {
		select {
		case <-l.kick:
			l.flushOnce()
		case <-tickC:
			l.syncActive()
		case <-l.quit:
			// Drain whatever arrived before Close flipped closed.
			l.flushOnce()
			return
		}
	}
}

// flushOnce swaps out the pending buffer and batch, writes the bytes,
// syncs under SyncAlways, and releases the batch. Callers must not
// hold ioMu or mu.
func (l *Log) flushOnce() {
	l.ioMu.Lock()
	l.mu.Lock()
	buf, b := l.pending, l.cur
	l.pending, l.cur = nil, nil
	last := l.lsn
	needRotate := l.size >= l.opts.SegmentBytes
	l.mu.Unlock()
	if b == nil {
		l.ioMu.Unlock()
		return
	}

	var err error
	if needRotate {
		err = l.rotate()
	}
	if err == nil {
		err = l.writeAndSync(buf)
	}

	l.mu.Lock()
	if err == nil {
		l.written = last
		l.size += int64(len(buf))
	} else if l.err == nil {
		l.err = err
	}
	l.mu.Unlock()
	l.ioMu.Unlock()

	obs.WALBatchRecords.Observe(float64(b.n))
	b.err = err
	close(b.done)
}

// writeAndSync writes one commit batch and applies the sync policy.
func (l *Log) writeAndSync(buf []byte) error {
	if _, err := l.w.Write(buf); err != nil {
		return err
	}
	if l.opts.Policy != SyncAlways {
		return nil
	}
	return l.syncFile()
}

func (l *Log) syncFile() error {
	start := time.Now()
	err := l.f.Sync()
	obs.WALFsyncs.Inc()
	obs.WALFsyncSeconds.Observe(time.Since(start).Seconds())
	return err
}

// syncActive is the SyncInterval timer body.
func (l *Log) syncActive() {
	l.ioMu.Lock()
	defer l.ioMu.Unlock()
	l.mu.Lock()
	dead := l.err != nil
	l.mu.Unlock()
	if dead {
		return
	}
	if err := l.syncFile(); err != nil {
		l.mu.Lock()
		if l.err == nil {
			l.err = err
		}
		l.mu.Unlock()
	}
}

// rotate seals the active segment (sync + close) and opens the next
// one, first record = written+1. Caller holds ioMu.
func (l *Log) rotate() error {
	if err := l.f.Sync(); err != nil {
		return err
	}
	if err := l.f.Close(); err != nil {
		return err
	}
	l.mu.Lock()
	next := l.written + 1
	err := l.openSegmentLocked(next)
	l.mu.Unlock()
	if err == nil {
		obs.WALRotations.Inc()
	}
	return err
}

// Rotate seals the active segment and starts a new one, so a
// checkpoint can later remove every segment at or below its LSN. It
// flushes pending appends first (running the committer's path inline
// is safe: flushOnce owns the buffer it swapped out, and all file I/O
// serializes on ioMu).
func (l *Log) Rotate() error {
	l.flushOnce()
	l.ioMu.Lock()
	defer l.ioMu.Unlock()
	l.mu.Lock()
	if l.err != nil {
		err := l.err
		l.mu.Unlock()
		return err
	}
	onlyHeader := l.size == segHeaderSize
	l.mu.Unlock()
	if onlyHeader {
		return nil // nothing in the active segment; rotation is a no-op
	}
	err := l.rotate()
	if err != nil {
		l.mu.Lock()
		if l.err == nil {
			l.err = err
		}
		l.mu.Unlock()
	}
	return err
}

// RemoveObsolete deletes sealed segments every record of which has LSN
// ≤ upTo — the WAL truncation step after a checkpoint at upTo. The
// active segment is never removed.
func (l *Log) RemoveObsolete(upTo uint64) (removed int, err error) {
	l.mu.Lock()
	active := l.f.Name()
	l.mu.Unlock()

	segs, err := listSegments(l.dir)
	if err != nil {
		return 0, err
	}
	for i, s := range segs {
		if filepath.Join(l.dir, s.name) == active {
			continue
		}
		// A sealed segment's records end where the next segment begins.
		if i+1 >= len(segs) {
			continue
		}
		if lastLSN := segs[i+1].firstLSN - 1; lastLSN > upTo {
			continue
		}
		if err := os.Remove(filepath.Join(l.dir, s.name)); err != nil {
			return removed, err
		}
		removed++
	}
	if removed > 0 {
		obs.WALSegmentsRemoved.Add(int64(removed))
		if err := syncDir(l.dir); err != nil {
			return removed, err
		}
	}
	return removed, nil
}

// Close flushes pending appends, syncs, and closes the active segment.
// Further appends fail.
// BufferedBytes reports the capacity of the framed-record buffer
// sitting between appenders and the committer goroutine — the WAL's
// heap-resident write buffer, accounted by the memory budget manager.
func (l *Log) BufferedBytes() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return int64(cap(l.pending))
}

func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		<-l.done
		return l.err
	}
	l.closed = true
	l.mu.Unlock()

	close(l.quit)
	<-l.done

	l.ioMu.Lock()
	defer l.ioMu.Unlock()
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.f.Sync(); err != nil && l.err == nil {
		l.err = err
	}
	if err := l.f.Close(); err != nil && l.err == nil {
		l.err = err
	}
	return l.err
}

// syncDir fsyncs a directory so renames and creates within it are
// durable — without it a power failure can forget the rename itself.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// SyncDir is syncDir for callers outside the package (the checkpoint
// writer shares the atomic write-rename-sync sequence).
func SyncDir(dir string) error { return syncDir(dir) }

type segmentInfo struct {
	name     string
	firstLSN uint64
}

// listSegments returns dir's WAL segments sorted by first LSN.
func listSegments(dir string) ([]segmentInfo, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []segmentInfo
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		if first, ok := parseSegmentName(e.Name()); ok {
			segs = append(segs, segmentInfo{name: e.Name(), firstLSN: first})
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].firstLSN < segs[j].firstLSN })
	return segs, nil
}
