package wal

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"vdbms/internal/obs"
)

// ScanResult reports what a Scan found.
type ScanResult struct {
	// LastLSN is the LSN of the last valid record in the log (0 when
	// the log is empty).
	LastLSN uint64
	// Replayed counts the records delivered to the callback.
	Replayed int
	// TornTail is true when the final segment ended in a bad frame and
	// was truncated back to its last valid record — the expected
	// signature of a crash mid-write, not an error.
	TornTail bool
}

// Scan replays every record in dir's WAL in LSN order, delivering
// payloads with LSN > from to fn. The torn-tail contract:
//
//   - A bad frame (short header, short payload, or CRC mismatch) in
//     the FINAL segment is a torn tail: the file is truncated at the
//     first bad frame, the scan stops cleanly, and TornTail is set.
//     Records past the tear were never acknowledged under SyncAlways.
//   - A bad frame in any earlier segment — or a gap in the LSN
//     sequence between segments — is corruption mid-log: the log was
//     damaged after it was written, replay would silently lose
//     acknowledged writes, so Scan refuses with an error. The one
//     exception is a gap whose missing LSNs all lie at or below from:
//     that is the footprint of a previous recovery that truncated a
//     torn tail below the checkpoint LSN and reopened the log past it
//     (the "missing" records are inside the checkpoint, not lost), so
//     Scan tolerates it.
//
// An error from fn aborts the scan.
func Scan(dir string, from uint64, fn func(lsn uint64, payload []byte) error) (ScanResult, error) {
	var res ScanResult
	segs, err := listSegments(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return res, nil
		}
		return res, err
	}
	for i, s := range segs {
		final := i == len(segs)-1
		path := filepath.Join(dir, s.name)
		last, err := scanSegment(path, s.firstLSN, final, from, fn, &res)
		if err != nil {
			return res, err
		}
		if !final && last != segs[i+1].firstLSN-1 {
			// A gap is tolerable only when every missing LSN is ≤ from:
			// a crash can tear the tail of a segment below the
			// checkpoint LSN (records are applied and published before
			// their group commit fsyncs), and the recovery that
			// truncated the tear reopened the log at the checkpoint
			// LSN, leaving this hole behind. Those records live in the
			// checkpoint; nothing acknowledged is lost. Any other
			// discontinuity (overlap, or missing LSNs above from) is
			// real corruption.
			if last > segs[i+1].firstLSN-1 || segs[i+1].firstLSN-1 > from {
				return res, fmt.Errorf("wal: segment %s ends at LSN %d but %s starts at %d: missing records mid-log",
					s.name, last, segs[i+1].name, segs[i+1].firstLSN)
			}
		}
		res.LastLSN = last
	}
	if res.TornTail {
		obs.WALTornTails.Inc()
	}
	return res, nil
}

// scanSegment replays one segment file; final selects the torn-tail
// rule. It returns the LSN of the last valid record (firstLSN-1 when
// the segment holds none).
func scanSegment(path string, firstLSN uint64, final bool, from uint64, fn func(uint64, []byte) error, res *ScanResult) (uint64, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		return 0, err
	}
	size := info.Size()

	bad := func(offset int64, why string) (uint64, error) {
		return 0, fmt.Errorf("wal: %s at %s+%d: corruption mid-log", why, filepath.Base(path), offset)
	}

	var hdr [segHeaderSize]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		if final {
			// A crash between segment create and header sync; the
			// segment never held an acknowledged record.
			return firstLSN - 1, truncateAt(f, path, 0, res)
		}
		return bad(0, "short segment header")
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != segMagic {
		if final {
			return firstLSN - 1, truncateAt(f, path, 0, res)
		}
		return bad(0, "bad segment magic")
	}
	if v := binary.LittleEndian.Uint32(hdr[4:]); v != segVersion {
		return 0, fmt.Errorf("wal: segment %s has version %d, supported %d", filepath.Base(path), v, segVersion)
	}
	if got := binary.LittleEndian.Uint64(hdr[8:]); got != firstLSN {
		return 0, fmt.Errorf("wal: segment %s header LSN %d does not match its name", filepath.Base(path), got)
	}

	r := bufio.NewReaderSize(f, 1<<20)
	lsn := firstLSN - 1
	offset := int64(segHeaderSize)
	for offset < size {
		var fh [frameHeaderSize]byte
		if _, err := io.ReadFull(r, fh[:]); err != nil {
			if final {
				return lsn, truncateAt(f, path, offset, res)
			}
			return bad(offset, "short frame header")
		}
		n := int64(binary.LittleEndian.Uint32(fh[0:]))
		want := binary.LittleEndian.Uint32(fh[4:])
		if offset+frameHeaderSize+n > size {
			if final {
				return lsn, truncateAt(f, path, offset, res)
			}
			return bad(offset, "frame overruns segment")
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			if final {
				return lsn, truncateAt(f, path, offset, res)
			}
			return bad(offset, "short frame payload")
		}
		if crc32.Checksum(payload, crcTable) != want {
			if final {
				return lsn, truncateAt(f, path, offset, res)
			}
			return bad(offset, "frame CRC mismatch")
		}
		lsn++
		offset += frameHeaderSize + n
		if lsn > from {
			if err := fn(lsn, payload); err != nil {
				return 0, fmt.Errorf("wal: replaying LSN %d: %w", lsn, err)
			}
			res.Replayed++
			obs.WALReplayedRecords.Inc()
		}
	}
	return lsn, nil
}

// truncateAt cuts the torn tail off the final segment so later scans
// (and the next recovery) see a clean log, and records the tear.
// Truncating at offset 0 removes the segment entirely — its header
// never made it to disk intact.
func truncateAt(f *os.File, path string, offset int64, res *ScanResult) error {
	f.Close()
	res.TornTail = true
	if offset == 0 {
		if err := os.Remove(path); err != nil {
			return err
		}
		return syncDir(filepath.Dir(path))
	}
	if err := os.Truncate(path, offset); err != nil {
		return err
	}
	// Make the truncation itself durable before replay proceeds.
	t, err := os.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		return err
	}
	defer t.Close()
	return t.Sync()
}
