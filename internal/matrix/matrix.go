// Package matrix implements the small dense linear algebra kernel the
// indexing layer needs: matrix products, Gram-Schmidt orthonormal
// bases, Jacobi eigendecomposition of symmetric matrices, PCA, and the
// orthogonal Procrustes solution used by OPQ rotation learning.
//
// Matrices are float64 for numerical stability of the training-time
// routines; vectors in the query path stay float32.
package matrix

import (
	"fmt"
	"math"
	"math/rand"
)

// Dense is a row-major dense matrix.
type Dense struct {
	Rows, Cols int
	Data       []float64 // len Rows*Cols
}

// NewDense allocates a zero matrix.
func NewDense(rows, cols int) *Dense {
	return &Dense{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// Identity returns the n x n identity matrix.
func Identity(n int) *Dense {
	m := NewDense(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// At returns element (i, j).
func (m *Dense) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Dense) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view of row i.
func (m *Dense) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Dense) Clone() *Dense {
	c := NewDense(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// T returns the transpose as a new matrix.
func (m *Dense) T() *Dense {
	t := NewDense(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// Mul returns a*b.
func Mul(a, b *Dense) *Dense {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("matrix: Mul %dx%d by %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	c := NewDense(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		crow := c.Row(i)
		for k := 0; k < a.Cols; k++ {
			aik := arow[k]
			if aik == 0 {
				continue
			}
			brow := b.Row(k)
			for j := range crow {
				crow[j] += aik * brow[j]
			}
		}
	}
	return c
}

// MulVec32 computes m * v for a float32 vector, returning float32.
// Used in the query path (rotations, projections).
func (m *Dense) MulVec32(v []float32) []float32 {
	if len(v) != m.Cols {
		panic(fmt.Sprintf("matrix: MulVec32 %dx%d by vec %d", m.Rows, m.Cols, len(v)))
	}
	out := make([]float32, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		var s float64
		for j, x := range v {
			s += row[j] * float64(x)
		}
		out[i] = float32(s)
	}
	return out
}

// Covariance computes the d x d covariance matrix of n row vectors
// (float32 data, row-major) after centering; it also returns the mean.
func Covariance(data []float32, n, d int) (*Dense, []float64) {
	mean := make([]float64, d)
	for i := 0; i < n; i++ {
		row := data[i*d : (i+1)*d]
		for j, x := range row {
			mean[j] += float64(x)
		}
	}
	if n > 0 {
		for j := range mean {
			mean[j] /= float64(n)
		}
	}
	cov := NewDense(d, d)
	if n < 2 {
		return cov, mean
	}
	for i := 0; i < n; i++ {
		row := data[i*d : (i+1)*d]
		for a := 0; a < d; a++ {
			da := float64(row[a]) - mean[a]
			crow := cov.Row(a)
			for b := a; b < d; b++ {
				crow[b] += da * (float64(row[b]) - mean[b])
			}
		}
	}
	inv := 1 / float64(n-1)
	for a := 0; a < d; a++ {
		for b := a; b < d; b++ {
			v := cov.At(a, b) * inv
			cov.Set(a, b, v)
			cov.Set(b, a, v)
		}
	}
	return cov, mean
}

// JacobiEigen diagonalizes a symmetric matrix with cyclic Jacobi
// rotations. It returns the eigenvalues in descending order and the
// matrix whose rows are the corresponding orthonormal eigenvectors.
func JacobiEigen(sym *Dense, maxSweeps int) ([]float64, *Dense) {
	n := sym.Rows
	if sym.Cols != n {
		panic("matrix: JacobiEigen requires a square matrix")
	}
	a := sym.Clone()
	v := Identity(n)
	if maxSweeps <= 0 {
		maxSweeps = 50
	}
	for sweep := 0; sweep < maxSweeps; sweep++ {
		var off float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += a.At(i, j) * a.At(i, j)
			}
		}
		if off < 1e-20 {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := a.At(p, q)
				if math.Abs(apq) < 1e-300 {
					continue
				}
				app := a.At(p, p)
				aqq := a.At(q, q)
				theta := (aqq - app) / (2 * apq)
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				// Rotate rows/cols p and q of a.
				for k := 0; k < n; k++ {
					akp := a.At(k, p)
					akq := a.At(k, q)
					a.Set(k, p, c*akp-s*akq)
					a.Set(k, q, s*akp+c*akq)
				}
				for k := 0; k < n; k++ {
					apk := a.At(p, k)
					aqk := a.At(q, k)
					a.Set(p, k, c*apk-s*aqk)
					a.Set(q, k, s*apk+c*aqk)
				}
				// Accumulate eigenvectors (rows of v).
				for k := 0; k < n; k++ {
					vpk := v.At(p, k)
					vqk := v.At(q, k)
					v.Set(p, k, c*vpk-s*vqk)
					v.Set(q, k, s*vpk+c*vqk)
				}
			}
		}
	}
	vals := make([]float64, n)
	for i := 0; i < n; i++ {
		vals[i] = a.At(i, i)
	}
	// Sort eigenpairs descending by eigenvalue (selection sort; n small).
	for i := 0; i < n-1; i++ {
		best := i
		for j := i + 1; j < n; j++ {
			if vals[j] > vals[best] {
				best = j
			}
		}
		if best != i {
			vals[i], vals[best] = vals[best], vals[i]
			for k := 0; k < n; k++ {
				vi, vb := v.At(i, k), v.At(best, k)
				v.Set(i, k, vb)
				v.Set(best, k, vi)
			}
		}
	}
	return vals, v
}

// PCA computes the top-k principal axes of n row vectors. The returned
// matrix has k rows of d columns (each row a principal axis, largest
// variance first) plus the data mean.
func PCA(data []float32, n, d, k int) (*Dense, []float64) {
	cov, mean := Covariance(data, n, d)
	_, vecs := JacobiEigen(cov, 50)
	if k > d {
		k = d
	}
	axes := NewDense(k, d)
	copy(axes.Data, vecs.Data[:k*d])
	return axes, mean
}

// RandomOrthonormal generates a random d x d orthonormal matrix by
// Gram-Schmidt on Gaussian rows. Used to initialize OPQ and for the
// rotated k-d trees of Silpa-Anan & Hartley.
func RandomOrthonormal(d int, rng *rand.Rand) *Dense {
	m := NewDense(d, d)
	for i := 0; i < d; i++ {
		row := m.Row(i)
		for {
			for j := range row {
				row[j] = rng.NormFloat64()
			}
			// Orthogonalize against previous rows.
			for p := 0; p < i; p++ {
				prev := m.Row(p)
				var dot float64
				for j := range row {
					dot += row[j] * prev[j]
				}
				for j := range row {
					row[j] -= dot * prev[j]
				}
			}
			var norm float64
			for _, x := range row {
				norm += x * x
			}
			norm = math.Sqrt(norm)
			if norm > 1e-8 {
				for j := range row {
					row[j] /= norm
				}
				break
			}
			// Degenerate draw; retry this row.
		}
	}
	return m
}

// Procrustes solves min_R ||A - B R^T||_F over orthogonal R given the
// d x d correlation matrix C = B^T A (accumulated by the caller).
// Expanding the norm, the minimizer maximizes tr(R C), which for the
// SVD C = U S V^T is R = V U^T. The SVD of C is obtained from Jacobi
// eigendecompositions of C^T C and C C^T.
//
// It is the core step of OPQ's alternating optimization: B holds the
// quantized reconstructions, A the original (centered) vectors.
func Procrustes(c *Dense) *Dense {
	d := c.Rows
	if c.Cols != d {
		panic("matrix: Procrustes requires square input")
	}
	// Eigen of C^T C gives V; eigen of C C^T gives U (rows of the
	// returned matrices are eigenvectors).
	ctc := Mul(c.T(), c)
	_, vRows := JacobiEigen(ctc, 60)
	cct := Mul(c, c.T())
	_, uRows := JacobiEigen(cct, 60)
	// Align signs: u_i should satisfy C v_i = s_i u_i with s_i >= 0.
	u := uRows.T() // columns are eigenvectors
	v := vRows.T()
	for i := 0; i < d; i++ {
		// cv = C * v_i
		var dot float64
		for r := 0; r < d; r++ {
			var cv float64
			for k := 0; k < d; k++ {
				cv += c.At(r, k) * v.At(k, i)
			}
			dot += cv * u.At(r, i)
		}
		if dot < 0 {
			for r := 0; r < d; r++ {
				u.Set(r, i, -u.At(r, i))
			}
		}
	}
	return Mul(v, u.T())
}

// Inverse computes the inverse of a square matrix by Gauss-Jordan
// elimination with partial pivoting. It returns an error when the
// matrix is singular (pivot below tol).
func Inverse(m *Dense) (*Dense, error) {
	n := m.Rows
	if m.Cols != n {
		return nil, fmt.Errorf("matrix: Inverse requires square input, got %dx%d", m.Rows, m.Cols)
	}
	a := m.Clone()
	inv := Identity(n)
	const tol = 1e-12
	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot := col
		best := math.Abs(a.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(a.At(r, col)); v > best {
				pivot, best = r, v
			}
		}
		if best < tol {
			return nil, fmt.Errorf("matrix: singular at column %d", col)
		}
		if pivot != col {
			swapRows(a, pivot, col)
			swapRows(inv, pivot, col)
		}
		// Normalize the pivot row.
		p := a.At(col, col)
		for j := 0; j < n; j++ {
			a.Set(col, j, a.At(col, j)/p)
			inv.Set(col, j, inv.At(col, j)/p)
		}
		// Eliminate the column elsewhere.
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := a.At(r, col)
			if f == 0 {
				continue
			}
			for j := 0; j < n; j++ {
				a.Set(r, j, a.At(r, j)-f*a.At(col, j))
				inv.Set(r, j, inv.At(r, j)-f*inv.At(col, j))
			}
		}
	}
	return inv, nil
}

func swapRows(m *Dense, a, b int) {
	ra, rb := m.Row(a), m.Row(b)
	for j := range ra {
		ra[j], rb[j] = rb[j], ra[j]
	}
}

// RandomInvertible draws a random matrix with entries ~N(0,1) and
// retries until it is comfortably invertible, returning both the
// matrix and its inverse.
func RandomInvertible(n int, rng *rand.Rand) (*Dense, *Dense) {
	for {
		m := NewDense(n, n)
		for i := range m.Data {
			m.Data[i] = rng.NormFloat64()
		}
		inv, err := Inverse(m)
		if err == nil {
			return m, inv
		}
	}
}
