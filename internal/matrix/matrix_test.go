package matrix

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMulIdentity(t *testing.T) {
	a := NewDense(2, 3)
	copy(a.Data, []float64{1, 2, 3, 4, 5, 6})
	c := Mul(Identity(2), a)
	for i, v := range a.Data {
		if c.Data[i] != v {
			t.Fatalf("identity mul changed data at %d: %v vs %v", i, c.Data[i], v)
		}
	}
}

func TestMulKnown(t *testing.T) {
	a := NewDense(2, 2)
	copy(a.Data, []float64{1, 2, 3, 4})
	b := NewDense(2, 2)
	copy(b.Data, []float64{5, 6, 7, 8})
	c := Mul(a, b)
	want := []float64{19, 22, 43, 50}
	for i := range want {
		if c.Data[i] != want[i] {
			t.Fatalf("Mul = %v, want %v", c.Data, want)
		}
	}
}

func TestMulPanicsOnShapeMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Mul(NewDense(2, 3), NewDense(2, 3))
}

func TestTranspose(t *testing.T) {
	a := NewDense(2, 3)
	copy(a.Data, []float64{1, 2, 3, 4, 5, 6})
	at := a.T()
	if at.Rows != 3 || at.Cols != 2 {
		t.Fatalf("T shape %dx%d", at.Rows, at.Cols)
	}
	if at.At(2, 1) != 6 || at.At(0, 1) != 4 {
		t.Fatalf("T content wrong: %v", at.Data)
	}
}

func TestMulVec32(t *testing.T) {
	a := NewDense(2, 3)
	copy(a.Data, []float64{1, 0, 2, 0, 3, 0})
	got := a.MulVec32([]float32{1, 2, 3})
	if got[0] != 7 || got[1] != 6 {
		t.Fatalf("MulVec32 = %v", got)
	}
}

func TestCovarianceDiagonal(t *testing.T) {
	// Two independent dimensions with known variances.
	data := []float32{
		0, 10,
		2, 10,
		4, 10,
	}
	cov, mean := Covariance(data, 3, 2)
	if mean[0] != 2 || mean[1] != 10 {
		t.Fatalf("mean = %v", mean)
	}
	if cov.At(0, 0) != 4 { // var{0,2,4} with n-1 = 4
		t.Fatalf("var0 = %v, want 4", cov.At(0, 0))
	}
	if cov.At(1, 1) != 0 || cov.At(0, 1) != 0 {
		t.Fatalf("constant dim must have zero (co)variance: %v", cov.Data)
	}
}

func TestJacobiEigenKnown(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 3 and 1.
	a := NewDense(2, 2)
	copy(a.Data, []float64{2, 1, 1, 2})
	vals, vecs := JacobiEigen(a, 50)
	if math.Abs(vals[0]-3) > 1e-10 || math.Abs(vals[1]-1) > 1e-10 {
		t.Fatalf("eigenvalues = %v", vals)
	}
	// Eigenvector for 3 is (1,1)/sqrt2 up to sign.
	v0 := vecs.Row(0)
	if math.Abs(math.Abs(v0[0])-math.Sqrt2/2) > 1e-8 || math.Abs(v0[0]-v0[1]) > 1e-8 {
		t.Fatalf("top eigenvector = %v", v0)
	}
}

func TestJacobiEigenReconstructs(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 6
	// Random symmetric matrix.
	a := NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := rng.NormFloat64()
			a.Set(i, j, v)
			a.Set(j, i, v)
		}
	}
	vals, vecs := JacobiEigen(a, 100)
	// Check A v_i = lambda_i v_i.
	for i := 0; i < n; i++ {
		vi := vecs.Row(i)
		for r := 0; r < n; r++ {
			var av float64
			for k := 0; k < n; k++ {
				av += a.At(r, k) * vi[k]
			}
			if math.Abs(av-vals[i]*vi[r]) > 1e-8 {
				t.Fatalf("eigenpair %d violated at row %d: %v vs %v", i, r, av, vals[i]*vi[r])
			}
		}
	}
	// Descending order.
	for i := 1; i < n; i++ {
		if vals[i] > vals[i-1]+1e-12 {
			t.Fatalf("eigenvalues not sorted: %v", vals)
		}
	}
}

func TestPCAFindsDominantAxis(t *testing.T) {
	// Points spread along (1,1) with small noise orthogonal.
	rng := rand.New(rand.NewSource(2))
	n := 200
	data := make([]float32, n*2)
	for i := 0; i < n; i++ {
		tt := rng.NormFloat64() * 10
		noise := rng.NormFloat64() * 0.1
		data[i*2] = float32(tt + noise)
		data[i*2+1] = float32(tt - noise)
	}
	axes, _ := PCA(data, n, 2, 1)
	ax := axes.Row(0)
	// Dominant axis is ±(1,1)/sqrt2.
	if math.Abs(math.Abs(ax[0])-math.Sqrt2/2) > 0.02 || math.Abs(ax[0]-ax[1]) > 0.02 {
		t.Fatalf("principal axis = %v", ax)
	}
}

func TestRandomOrthonormalIsOrthonormal(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, d := range []int{1, 2, 8, 16} {
		m := RandomOrthonormal(d, rng)
		prod := Mul(m, m.T())
		for i := 0; i < d; i++ {
			for j := 0; j < d; j++ {
				want := 0.0
				if i == j {
					want = 1
				}
				if math.Abs(prod.At(i, j)-want) > 1e-9 {
					t.Fatalf("d=%d: M M^T[%d,%d] = %v", d, i, j, prod.At(i, j))
				}
			}
		}
	}
}

func TestProcrustesRecoversRotation(t *testing.T) {
	// Build a known rotation R, data A, B = A R. Then C = B^T A and
	// Procrustes(C) should recover a rotation Rhat with B Rhat ≈ A...
	// i.e. Rhat ≈ R^T (the minimizer of ||A - B R'^T||).
	rng := rand.New(rand.NewSource(7))
	d, n := 5, 60
	r := RandomOrthonormal(d, rng)
	a := NewDense(n, d)
	for i := range a.Data {
		a.Data[i] = rng.NormFloat64()
	}
	b := Mul(a, r)
	c := Mul(b.T(), a)
	rhat := Procrustes(c)
	// Check ||A - B rhat^T||_F is tiny.
	recon := Mul(b, rhat.T())
	var err float64
	for i := range a.Data {
		dlt := recon.Data[i] - a.Data[i]
		err += dlt * dlt
	}
	if err > 1e-12 {
		t.Fatalf("Procrustes reconstruction error = %v", err)
	}
	// And rhat is orthogonal.
	prod := Mul(rhat, rhat.T())
	for i := 0; i < d; i++ {
		if math.Abs(prod.At(i, i)-1) > 1e-9 {
			t.Fatalf("rhat not orthogonal: %v", prod.At(i, i))
		}
	}
}

// Property: Mul is associative for random small matrices.
func TestMulAssociativity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := NewDense(3, 4)
		b := NewDense(4, 2)
		c := NewDense(2, 5)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
		}
		for i := range b.Data {
			b.Data[i] = rng.NormFloat64()
		}
		for i := range c.Data {
			c.Data[i] = rng.NormFloat64()
		}
		left := Mul(Mul(a, b), c)
		right := Mul(a, Mul(b, c))
		for i := range left.Data {
			if math.Abs(left.Data[i]-right.Data[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestInverseKnown(t *testing.T) {
	a := NewDense(2, 2)
	copy(a.Data, []float64{4, 7, 2, 6})
	inv, err := Inverse(a)
	if err != nil {
		t.Fatal(err)
	}
	prod := Mul(a, inv)
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(prod.At(i, j)-want) > 1e-12 {
				t.Fatalf("A*inv(A)[%d,%d] = %v", i, j, prod.At(i, j))
			}
		}
	}
}

func TestInverseSingular(t *testing.T) {
	a := NewDense(2, 2)
	copy(a.Data, []float64{1, 2, 2, 4})
	if _, err := Inverse(a); err == nil {
		t.Fatal("want singular error")
	}
	if _, err := Inverse(NewDense(2, 3)); err == nil {
		t.Fatal("want shape error")
	}
}

func TestRandomInvertible(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m, inv := RandomInvertible(6, rng)
	prod := Mul(m, inv)
	for i := 0; i < 6; i++ {
		if math.Abs(prod.At(i, i)-1) > 1e-9 {
			t.Fatalf("diag %d = %v", i, prod.At(i, i))
		}
	}
}

func TestInverseWithPivoting(t *testing.T) {
	// Leading zero forces a row swap.
	a := NewDense(2, 2)
	copy(a.Data, []float64{0, 1, 1, 0})
	inv, err := Inverse(a)
	if err != nil {
		t.Fatal(err)
	}
	if inv.At(0, 1) != 1 || inv.At(1, 0) != 1 {
		t.Fatalf("permutation inverse wrong: %v", inv.Data)
	}
}
