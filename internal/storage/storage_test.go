package storage

import (
	"path/filepath"
	"testing"

	"vdbms/internal/dataset"
)

func TestMemStoreAppendAndRead(t *testing.T) {
	s := NewMemStore(3)
	id, err := s.Append([]float32{1, 2, 3})
	if err != nil || id != 0 {
		t.Fatalf("Append: id=%d err=%v", id, err)
	}
	id2, _ := s.Append([]float32{4, 5, 6})
	if id2 != 1 || s.Count() != 2 {
		t.Fatalf("second append: id=%d count=%d", id2, s.Count())
	}
	v := s.Vector(1, nil)
	if v[0] != 4 || v[2] != 6 {
		t.Fatalf("Vector = %v", v)
	}
	// Reuse a dst buffer.
	buf := make([]float32, 3)
	got := s.Vector(0, buf)
	if &got[0] != &buf[0] || got[1] != 2 {
		t.Fatal("dst buffer not reused")
	}
}

func TestMemStoreDimCheck(t *testing.T) {
	s := NewMemStore(2)
	if _, err := s.Append([]float32{1}); err == nil {
		t.Fatal("want dim error")
	}
}

func TestMemStorePanicsOutOfRange(t *testing.T) {
	s := NewMemStore(1)
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	s.Vector(0, nil)
}

func TestFromRowsAndFlat(t *testing.T) {
	s, err := FromRows(2, [][]float32{{1, 2}, {3, 4}})
	if err != nil || s.Count() != 2 {
		t.Fatalf("FromRows: %v %d", err, s.Count())
	}
	if _, err := FromRows(2, [][]float32{{1}}); err == nil {
		t.Fatal("want error for short row")
	}
	f := FromFlat(2, []float32{1, 2, 3, 4, 5, 6})
	if f.Count() != 3 || f.RowView(2)[1] != 6 {
		t.Fatal("FromFlat wrong")
	}
	raw := f.Raw()
	if len(raw) != 6 {
		t.Fatalf("Raw len %d", len(raw))
	}
}

func TestDiskStoreRoundTrip(t *testing.T) {
	ds := dataset.Uniform(97, 5, 3) // 97 vectors: exercises partial last page
	mem := FromFlat(5, ds.Data)
	path := filepath.Join(t.TempDir(), "vecs.vdb")
	if err := WriteDiskStore(path, mem, 64); err != nil { // 64B page = 3 vectors/page
		t.Fatal(err)
	}
	disk, err := OpenDiskStore(path, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer disk.Close()
	if disk.Dim() != 5 || disk.Count() != 97 {
		t.Fatalf("header: dim=%d count=%d", disk.Dim(), disk.Count())
	}
	for id := 0; id < 97; id++ {
		got := disk.Vector(id, nil)
		want := mem.RowView(id)
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("id %d dim %d: %v != %v", id, j, got[j], want[j])
			}
		}
	}
}

func TestDiskStoreIOStats(t *testing.T) {
	mem := FromFlat(2, dataset.Uniform(40, 2, 1).Data)
	path := filepath.Join(t.TempDir(), "v.vdb")
	if err := WriteDiskStore(path, mem, 16); err != nil { // 2 vectors per page
		t.Fatal(err)
	}
	disk, err := OpenDiskStore(path, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer disk.Close()

	disk.Vector(0, nil) // miss
	disk.Vector(1, nil) // hit (same page)
	disk.Vector(2, nil) // miss
	disk.Vector(0, nil) // hit (page 0 still cached, cap 2)
	st := disk.Stats()
	if st.Reads != 2 || st.CacheHits != 2 {
		t.Fatalf("stats = %+v", st)
	}
	// Evict: touch pages 2 and 3, then page 0 must miss again.
	disk.Vector(4, nil)
	disk.Vector(6, nil)
	disk.Vector(0, nil)
	if got := disk.Stats().Reads; got != 5 {
		t.Fatalf("after eviction reads = %d, want 5", got)
	}
	disk.ResetStats()
	if disk.Stats().Reads != 0 {
		t.Fatal("ResetStats failed")
	}
}

func TestDiskStoreNoCache(t *testing.T) {
	mem := FromFlat(2, []float32{1, 2, 3, 4})
	path := filepath.Join(t.TempDir(), "v.vdb")
	if err := WriteDiskStore(path, mem, 16); err != nil {
		t.Fatal(err)
	}
	disk, err := OpenDiskStore(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer disk.Close()
	disk.Vector(0, nil)
	disk.Vector(0, nil)
	if st := disk.Stats(); st.Reads != 2 || st.CacheHits != 0 {
		t.Fatalf("uncached stats = %+v", st)
	}
}

func TestDiskStoreErrors(t *testing.T) {
	mem := FromFlat(4, []float32{1, 2, 3, 4})
	dir := t.TempDir()
	if err := WriteDiskStore(filepath.Join(dir, "x"), mem, 8); err == nil {
		t.Fatal("want error: page smaller than vector")
	}
	if _, err := OpenDiskStore(filepath.Join(dir, "missing"), 0); err == nil {
		t.Fatal("want error for missing file")
	}
	// Corrupt magic.
	bad := filepath.Join(dir, "bad")
	if err := writeFile(bad, make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDiskStore(bad, 0); err == nil {
		t.Fatal("want error for bad magic")
	}
}

func TestPageOf(t *testing.T) {
	mem := FromFlat(2, dataset.Uniform(10, 2, 1).Data)
	path := filepath.Join(t.TempDir(), "v.vdb")
	if err := WriteDiskStore(path, mem, 24); err != nil { // 3 per page
		t.Fatal(err)
	}
	disk, err := OpenDiskStore(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer disk.Close()
	if disk.PageOf(0) != 0 || disk.PageOf(2) != 0 || disk.PageOf(3) != 1 {
		t.Fatal("PageOf wrong")
	}
}

func writeFile(path string, data []byte) error {
	return osWriteFile(path, data)
}
