// Package storage implements the Vector Storage box of Figure 1: a
// growable in-memory column of float32 vectors and a paged disk store
// with an LRU page cache. The disk store counts page reads so the
// disk-index experiments (E7) and the planner cost model can reason
// about I/O, which the paper identifies as the dominant cost for
// large vectors ("each vector may be large, possibly spanning multiple
// disk pages").
package storage

import (
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"sync"
	"sync/atomic"
)

// VectorStore is the read interface shared by the memory and disk
// stores. Ids are dense row numbers in [0, Count).
type VectorStore interface {
	Dim() int
	Count() int
	// Vector materializes row id into dst (allocating when dst is nil
	// or too small) and returns the slice.
	Vector(id int, dst []float32) []float32
}

// MemStore is an append-only in-memory vector column.
type MemStore struct {
	mu   sync.RWMutex
	dim  int
	data []float32
	n    int
}

// NewMemStore creates an empty store for vectors of dimension dim.
func NewMemStore(dim int) *MemStore {
	if dim <= 0 {
		panic("storage: dimension must be positive")
	}
	return &MemStore{dim: dim}
}

// FromRows builds a MemStore holding copies of the given rows.
func FromRows(dim int, rows [][]float32) (*MemStore, error) {
	s := NewMemStore(dim)
	for i, r := range rows {
		if _, err := s.Append(r); err != nil {
			return nil, fmt.Errorf("row %d: %w", i, err)
		}
	}
	return s, nil
}

// FromFlat wraps an existing row-major matrix without copying.
func FromFlat(dim int, flat []float32) *MemStore {
	if dim <= 0 || len(flat)%dim != 0 {
		panic("storage: flat data not a multiple of dim")
	}
	return &MemStore{dim: dim, data: flat, n: len(flat) / dim}
}

// Dim returns the vector dimensionality.
func (s *MemStore) Dim() int { return s.dim }

// Count returns the number of stored vectors.
func (s *MemStore) Count() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.n
}

// Append copies v into the store and returns its id.
func (s *MemStore) Append(v []float32) (int, error) {
	if len(v) != s.dim {
		return 0, fmt.Errorf("storage: vector dim %d, store dim %d", len(v), s.dim)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.data = append(s.data, v...)
	s.n++
	return s.n - 1, nil
}

// Vector implements VectorStore.
func (s *MemStore) Vector(id int, dst []float32) []float32 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if id < 0 || id >= s.n {
		panic(fmt.Sprintf("storage: id %d out of range [0,%d)", id, s.n))
	}
	if cap(dst) < s.dim {
		dst = make([]float32, s.dim)
	}
	dst = dst[:s.dim]
	copy(dst, s.data[id*s.dim:(id+1)*s.dim])
	return dst
}

// Raw returns the backing row-major data. Callers must not mutate it
// and must not retain it across Appends.
func (s *MemStore) Raw() []float32 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.data[:s.n*s.dim]
}

// RowView returns a zero-copy view of a row. The view is invalidated
// by Append; intended for bulk read-only passes (index builds).
func (s *MemStore) RowView(id int) []float32 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.data[id*s.dim : (id+1)*s.dim]
}

// IOStats counts page-granular disk activity.
type IOStats struct {
	Reads     int64 // pages fetched from disk
	CacheHits int64 // pages served from the LRU cache
	Writes    int64 // pages written
}

// DiskStore is a page-organized read-mostly vector file:
//
//	header: magic, dim, count, pageSize, vectorsPerPage
//	pages:  fixed-size pages each holding vectorsPerPage vectors
//
// Reads go through a sharded LRU page cache; every miss increments
// Stats.Reads so experiments can report I/Os per query. The cache is
// sharded by page number and the counters are atomic, so concurrent
// searches from the worker pool no longer convoy on one mutex: hits
// in different shards proceed in parallel and misses overlap their
// pread (os.File.ReadAt is concurrency-safe) outside any lock.
type DiskStore struct {
	f         *os.File
	dim       int
	count     int
	pageSize  int
	perPage   int
	shards    []cacheShard // nil when caching is disabled
	reads     atomic.Int64
	cacheHits atomic.Int64
	writes    atomic.Int64
}

// cacheShard is one lock-striped slice of the page cache. Padding
// keeps neighboring shard locks off one cache line.
type cacheShard struct {
	mu    sync.Mutex
	cache *pageCache
	_     [40]byte
}

// diskCacheShards is the lock-stripe count (power of two so shard
// selection is a mask).
const diskCacheShards = 8

const diskMagic = uint32(0x5644424d) // "VDBM"

const headerSize = 4 * 5

// WriteDiskStore serializes vectors from src into path using the given
// page size (bytes). pageSize must fit at least one vector.
func WriteDiskStore(path string, src VectorStore, pageSize int) error {
	dim := src.Dim()
	vecBytes := dim * 4
	if pageSize < vecBytes {
		return fmt.Errorf("storage: page size %d smaller than one vector (%d bytes)", pageSize, vecBytes)
	}
	perPage := pageSize / vecBytes
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	hdr := make([]byte, headerSize)
	binary.LittleEndian.PutUint32(hdr[0:], diskMagic)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(dim))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(src.Count()))
	binary.LittleEndian.PutUint32(hdr[12:], uint32(pageSize))
	binary.LittleEndian.PutUint32(hdr[16:], uint32(perPage))
	if _, err := f.Write(hdr); err != nil {
		return err
	}
	page := make([]byte, pageSize)
	buf := make([]float32, dim)
	inPage := 0
	for id := 0; id < src.Count(); id++ {
		buf = src.Vector(id, buf)
		off := inPage * vecBytes
		for j, x := range buf {
			binary.LittleEndian.PutUint32(page[off+j*4:], math.Float32bits(x))
		}
		inPage++
		if inPage == perPage {
			if _, err := f.Write(page); err != nil {
				return err
			}
			inPage = 0
			for i := range page {
				page[i] = 0
			}
		}
	}
	if inPage > 0 {
		if _, err := f.Write(page); err != nil {
			return err
		}
	}
	return f.Sync()
}

// OpenDiskStore opens a file written by WriteDiskStore with an LRU
// cache of cachePages pages (0 disables caching).
func OpenDiskStore(path string, cachePages int) (*DiskStore, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	hdr := make([]byte, headerSize)
	if _, err := f.ReadAt(hdr, 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: reading header: %w", err)
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != diskMagic {
		f.Close()
		return nil, fmt.Errorf("storage: %s is not a vdbms vector file", path)
	}
	ds := &DiskStore{
		f:        f,
		dim:      int(binary.LittleEndian.Uint32(hdr[4:])),
		count:    int(binary.LittleEndian.Uint32(hdr[8:])),
		pageSize: int(binary.LittleEndian.Uint32(hdr[12:])),
		perPage:  int(binary.LittleEndian.Uint32(hdr[16:])),
	}
	if cachePages > 0 {
		nShards := diskCacheShards
		if cachePages < nShards {
			nShards = 1
		}
		perShard := cachePages / nShards
		if perShard < 1 {
			perShard = 1
		}
		ds.shards = make([]cacheShard, nShards)
		for i := range ds.shards {
			ds.shards[i].cache = newPageCache(perShard)
		}
	}
	return ds, nil
}

// Close releases the file handle.
func (ds *DiskStore) Close() error { return ds.f.Close() }

// Dim implements VectorStore.
func (ds *DiskStore) Dim() int { return ds.dim }

// Count implements VectorStore.
func (ds *DiskStore) Count() int { return ds.count }

// Stats returns a snapshot of I/O counters. Lock-free: the counters
// are atomics, so hot readers never block behind a Stats poll.
func (ds *DiskStore) Stats() IOStats {
	return IOStats{
		Reads:     ds.reads.Load(),
		CacheHits: ds.cacheHits.Load(),
		Writes:    ds.writes.Load(),
	}
}

// ResetStats zeroes the I/O counters.
func (ds *DiskStore) ResetStats() {
	ds.reads.Store(0)
	ds.cacheHits.Store(0)
	ds.writes.Store(0)
}

// DropCache empties the page cache, releasing its buffers to the GC —
// the first rung of the memory budget manager's degradation ladder.
func (ds *DiskStore) DropCache() {
	for i := range ds.shards {
		sh := &ds.shards[i]
		sh.mu.Lock()
		sh.cache = newPageCache(sh.cache.cap)
		sh.mu.Unlock()
	}
}

// PageOf returns the page number holding vector id. Exposed so disk
// indexes can co-locate graph neighborhoods with vector pages.
func (ds *DiskStore) PageOf(id int) int { return id / ds.perPage }

// Vector implements VectorStore, fetching (and caching) the page that
// holds id.
func (ds *DiskStore) Vector(id int, dst []float32) []float32 {
	if id < 0 || id >= ds.count {
		panic(fmt.Sprintf("storage: id %d out of range [0,%d)", id, ds.count))
	}
	page := ds.readPage(id / ds.perPage)
	off := (id % ds.perPage) * ds.dim * 4
	if cap(dst) < ds.dim {
		dst = make([]float32, ds.dim)
	}
	dst = dst[:ds.dim]
	for j := 0; j < ds.dim; j++ {
		dst[j] = math.Float32frombits(binary.LittleEndian.Uint32(page[off+j*4:]))
	}
	return dst
}

// ReadBlock materializes the contiguous rows [lo, hi) into dst
// (row-major, allocating when dst is too small) and returns the slice.
// Each page is fetched once and decoded for every row it holds, so
// bulk materialization (scan staging, shard loading) pays one page
// read per page instead of one per vector.
func (ds *DiskStore) ReadBlock(lo, hi int, dst []float32) []float32 {
	if lo < 0 || hi > ds.count || lo > hi {
		panic(fmt.Sprintf("storage: block [%d,%d) out of range [0,%d)", lo, hi, ds.count))
	}
	need := (hi - lo) * ds.dim
	if cap(dst) < need {
		dst = make([]float32, need)
	}
	dst = dst[:need]
	for id := lo; id < hi; {
		pno := id / ds.perPage
		page := ds.readPage(pno)
		// Decode every requested row resident on this page.
		last := (pno + 1) * ds.perPage
		if last > hi {
			last = hi
		}
		for ; id < last; id++ {
			off := (id % ds.perPage) * ds.dim * 4
			out := dst[(id-lo)*ds.dim : (id-lo+1)*ds.dim]
			for j := 0; j < ds.dim; j++ {
				out[j] = math.Float32frombits(binary.LittleEndian.Uint32(page[off+j*4:]))
			}
		}
	}
	return dst
}

func (ds *DiskStore) readPage(pno int) []byte {
	var sh *cacheShard
	if ds.shards != nil {
		sh = &ds.shards[pno&(len(ds.shards)-1)]
		sh.mu.Lock()
		if p, ok := sh.cache.get(pno); ok {
			sh.mu.Unlock()
			ds.cacheHits.Add(1)
			return p
		}
		sh.mu.Unlock()
	}
	// Miss path: pread outside any lock. Two racing readers of the
	// same page may both fetch it; last put wins and both reads count,
	// which matches what the disk actually did.
	buf := make([]byte, ds.pageSize)
	off := int64(headerSize) + int64(pno)*int64(ds.pageSize)
	if _, err := ds.f.ReadAt(buf, off); err != nil {
		panic(fmt.Sprintf("storage: page %d read failed: %v", pno, err))
	}
	ds.reads.Add(1)
	if sh != nil {
		sh.mu.Lock()
		sh.cache.put(pno, buf)
		sh.mu.Unlock()
	}
	return buf
}

// pageCache is a tiny LRU keyed by page number.
type pageCache struct {
	cap   int
	m     map[int]*pageNode
	head  *pageNode // most recent
	tail  *pageNode // least recent
	count int
}

type pageNode struct {
	key        int
	data       []byte
	prev, next *pageNode
}

func newPageCache(capacity int) *pageCache {
	return &pageCache{cap: capacity, m: make(map[int]*pageNode, capacity)}
}

func (c *pageCache) get(key int) ([]byte, bool) {
	n, ok := c.m[key]
	if !ok {
		return nil, false
	}
	c.moveToFront(n)
	return n.data, true
}

func (c *pageCache) put(key int, data []byte) {
	if n, ok := c.m[key]; ok {
		n.data = data
		c.moveToFront(n)
		return
	}
	n := &pageNode{key: key, data: data}
	c.m[key] = n
	n.next = c.head
	if c.head != nil {
		c.head.prev = n
	}
	c.head = n
	if c.tail == nil {
		c.tail = n
	}
	c.count++
	if c.count > c.cap {
		evict := c.tail
		c.tail = evict.prev
		if c.tail != nil {
			c.tail.next = nil
		} else {
			c.head = nil
		}
		delete(c.m, evict.key)
		c.count--
	}
}

func (c *pageCache) moveToFront(n *pageNode) {
	if c.head == n {
		return
	}
	if n.prev != nil {
		n.prev.next = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	}
	if c.tail == n {
		c.tail = n.prev
	}
	n.prev = nil
	n.next = c.head
	if c.head != nil {
		c.head.prev = n
	}
	c.head = n
}
