package storage

import (
	"math/rand"
	"path/filepath"
	"testing"
	"testing/quick"
)

// Property: any random matrix written through WriteDiskStore reads
// back bit-identical through every cache configuration.
func TestDiskStoreRoundTripProperty(t *testing.T) {
	dir := t.TempDir()
	counter := 0
	f := func(seed int64, nRaw, dRaw uint8, pageRaw uint8, cacheRaw uint8) bool {
		counter++
		n := int(nRaw%50) + 1
		d := int(dRaw%16) + 1
		rng := rand.New(rand.NewSource(seed))
		flat := make([]float32, n*d)
		for i := range flat {
			flat[i] = rng.Float32()*2000 - 1000
		}
		mem := FromFlat(d, flat)
		// Page must fit one vector.
		pageSize := d*4 + int(pageRaw%64)*4
		path := filepath.Join(dir, "p"+itoa(counter)+".vdb")
		if err := WriteDiskStore(path, mem, pageSize); err != nil {
			return false
		}
		disk, err := OpenDiskStore(path, int(cacheRaw%8))
		if err != nil {
			return false
		}
		defer disk.Close()
		if disk.Count() != n || disk.Dim() != d {
			return false
		}
		buf := make([]float32, d)
		// Random access order.
		for _, id := range rng.Perm(n) {
			buf = disk.Vector(id, buf)
			for j := 0; j < d; j++ {
				if buf[j] != flat[id*d+j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}
