package storage

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

func randColumn(n, d int, seed int64) []float32 {
	rng := rand.New(rand.NewSource(seed))
	flat := make([]float32, n*d)
	for i := range flat {
		flat[i] = rng.Float32()*2 - 1
	}
	return flat
}

func TestColumnFileRoundTrip(t *testing.T) {
	const n, d = 137, 24
	flat := randColumn(n, d, 1)
	path := filepath.Join(t.TempDir(), "c.col")
	if err := WriteColumnFile(path, flat, n, d); err != nil {
		t.Fatal(err)
	}
	m, err := OpenColumn(path)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if m.Count() != n || m.Dim() != d {
		t.Fatalf("shape (%d, %d), want (%d, %d)", m.Count(), m.Dim(), n, d)
	}
	raw := m.Raw()
	if len(raw) != n*d {
		t.Fatalf("Raw len %d, want %d", len(raw), n*d)
	}
	for i := range flat {
		if raw[i] != flat[i] {
			t.Fatalf("Raw[%d] = %v, want %v", i, raw[i], flat[i])
		}
	}
	// RowView aliases the same backing region.
	row := m.RowView(17)
	for j := 0; j < d; j++ {
		if row[j] != flat[17*d+j] {
			t.Fatalf("RowView(17)[%d] = %v, want %v", j, row[j], flat[17*d+j])
		}
	}
	// Vector copies into dst without aliasing.
	dst := make([]float32, d)
	got := m.Vector(3, dst)
	for j := 0; j < d; j++ {
		if got[j] != flat[3*d+j] {
			t.Fatalf("Vector(3)[%d] = %v, want %v", j, got[j], flat[3*d+j])
		}
	}
}

func TestColumnSectionRoundTrip(t *testing.T) {
	const n, d = 41, 7
	flat := randColumn(n, d, 2)
	var buf bytes.Buffer
	if err := WriteColumnSection(&buf, flat, n, d); err != nil {
		t.Fatal(err)
	}
	got, gn, gd, err := ReadColumnSection(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if gn != n || gd != d {
		t.Fatalf("shape (%d, %d), want (%d, %d)", gn, gd, n, d)
	}
	for i := range flat {
		if got[i] != flat[i] {
			t.Fatalf("element %d = %v, want %v", i, got[i], flat[i])
		}
	}
}

// TestOpenColumnSectionAtOffset maps a column image embedded mid-file —
// the layout the v3 checkpoint container uses (metadata, padding to a
// page boundary, column section).
func TestOpenColumnSectionAtOffset(t *testing.T) {
	if !MmapSupported() {
		t.Skip("no mmap on this platform")
	}
	const n, d = 63, 12
	const offset = 4 * ColumnHeaderSize // page-aligned, as the writer guarantees
	flat := randColumn(n, d, 3)
	var buf bytes.Buffer
	buf.Write(make([]byte, offset))
	if err := WriteColumnSection(&buf, flat, n, d); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "embedded.bin")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := OpenColumnSection(path, offset)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if m.Count() != n || m.Dim() != d {
		t.Fatalf("shape (%d, %d), want (%d, %d)", m.Count(), m.Dim(), n, d)
	}
	raw := m.Raw()
	for i := range flat {
		if raw[i] != flat[i] {
			t.Fatalf("element %d = %v, want %v", i, raw[i], flat[i])
		}
	}
}

func TestOpenColumnCorruption(t *testing.T) {
	const n, d = 10, 4
	flat := randColumn(n, d, 4)
	dir := t.TempDir()

	good := filepath.Join(dir, "good.col")
	if err := WriteColumnFile(good, flat, n, d); err != nil {
		t.Fatal(err)
	}
	img, err := os.ReadFile(good)
	if err != nil {
		t.Fatal(err)
	}

	cases := map[string][]byte{
		"bad-magic":         append(append([]byte{}, 'X', 'X', 'X', 'X'), img[4:]...),
		"truncated-header":  img[:ColumnHeaderSize/2],
		"truncated-payload": img[:len(img)-7],
		"empty":             {},
	}
	for name, corrupt := range cases {
		t.Run(name, func(t *testing.T) {
			p := filepath.Join(dir, name)
			if err := os.WriteFile(p, corrupt, 0o644); err != nil {
				t.Fatal(err)
			}
			if m, err := OpenColumn(p); err == nil {
				m.Close()
				t.Fatal("opened a corrupt column file")
			}
		})
	}
}

// TestColumnSurvivesUnlink: the eviction protocol unlinks the spill
// file immediately after mapping; the mapping must keep serving.
func TestColumnSurvivesUnlink(t *testing.T) {
	if !MmapSupported() {
		t.Skip("no mmap on this platform")
	}
	const n, d = 29, 8
	flat := randColumn(n, d, 5)
	path := filepath.Join(t.TempDir(), "gone.col")
	if err := WriteColumnFile(path, flat, n, d); err != nil {
		t.Fatal(err)
	}
	m, err := OpenColumn(path)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	raw := m.Raw()
	for i := range flat {
		if raw[i] != flat[i] {
			t.Fatalf("post-unlink element %d = %v, want %v", i, raw[i], flat[i])
		}
	}
}

func TestColumnAdvise(t *testing.T) {
	const n, d = 16, 4
	flat := randColumn(n, d, 6)
	path := filepath.Join(t.TempDir(), "a.col")
	if err := WriteColumnFile(path, flat, n, d); err != nil {
		t.Fatal(err)
	}
	m, err := OpenColumn(path)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	for name, f := range map[string]func() error{
		"sequential": m.AdviseSequential,
		"random":     m.AdviseRandom,
		"normal":     m.AdviseNormal,
		"willneed":   m.AdviseWillNeed,
		"dontneed":   m.AdviseDontNeed,
	} {
		if err := f(); err != nil {
			t.Fatalf("Advise%s: %v", name, err)
		}
	}
	// Data still intact after DontNeed (pages fault back in from the file).
	raw := m.Raw()
	for i := range flat {
		if raw[i] != flat[i] {
			t.Fatalf("post-advise element %d = %v, want %v", i, raw[i], flat[i])
		}
	}
}

func TestColumnEmptyAndClose(t *testing.T) {
	path := filepath.Join(t.TempDir(), "z.col")
	if err := WriteColumnFile(path, nil, 0, 4); err != nil {
		t.Fatal(err)
	}
	m, err := OpenColumn(path)
	if err != nil {
		t.Fatal(err)
	}
	if m.Count() != 0 || len(m.Raw()) != 0 {
		t.Fatalf("empty column reports %d rows, Raw len %d", m.Count(), len(m.Raw()))
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}
