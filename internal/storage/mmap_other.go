//go:build !linux

package storage

import (
	"io"
	"os"
)

// mmapSupported is false off Linux: the portable fallback reads the
// column into an anonymous heap buffer, so MmapStore still works (and
// keeps its zero-copy interface) but provides no residency savings.
const mmapSupported = false

func mmapFile(f *os.File, length int) ([]byte, error) {
	buf := make([]byte, length)
	if _, err := io.ReadFull(io.NewSectionReader(f, 0, int64(length)), buf); err != nil {
		return nil, err
	}
	return buf, nil
}

func munmap(b []byte) error { return nil }

const (
	adviseNormal     = 0
	adviseSequential = 1
	adviseRandom     = 2
	adviseWillNeed   = 3
	adviseDontNeed   = 4
)

func madviseRegion(b []byte, advice int) error { return nil }
