// Memory-tiered column storage: a page-aligned float32 column file
// served through mmap. The mapping is PROT_READ, so the kernel page
// cache owns residency — a collection evicted to the mmap tier costs
// ~0 heap, faults pages in on first touch, and can be reclaimed by the
// kernel under global memory pressure without the process noticing.
// Raw()/RowView return zero-copy views with the exact same layout as
// MemStore, so vec.Scorer and vec.QuantScorer bind to a mapped column
// unchanged and scores are bit-identical to the heap tier.
//
// Column files are NATIVE-ENDIAN (the float payload is written by
// reinterpreting the []float32 — that is what makes the read side
// zero-copy). A sentinel in the header rejects files written on a
// foreign-endian machine. The paged little-endian DiskStore remains
// the portable interchange format; column files are a serving-tier
// cache plus the checkpoint column section.
package storage

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"unsafe"
)

const (
	columnMagic   = uint32(0x4c4f4356) // "VCOL"
	columnVersion = uint32(1)
	// ColumnHeaderSize pads the header to one page so the float column
	// starts page-aligned in the mapping (madvise operates on pages,
	// and an aligned column keeps rows from straddling an extra page).
	ColumnHeaderSize = 4096
	// endianSentinel is written through the same unsafe reinterpret as
	// the payload; a reader on a foreign-endian machine sees it
	// byte-swapped and refuses the file.
	endianSentinel = uint32(0x00c0ffee)
)

// f32Bytes reinterprets a float32 slice as bytes without copying.
func f32Bytes(f []float32) []byte {
	if len(f) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&f[0])), len(f)*4)
}

// bytesF32 reinterprets a 4-byte-aligned byte slice as float32s.
func bytesF32(b []byte) []float32 {
	if len(b) < 4 {
		return nil
	}
	if uintptr(unsafe.Pointer(&b[0]))%4 != 0 {
		panic("storage: column data not 4-byte aligned")
	}
	return unsafe.Slice((*float32)(unsafe.Pointer(&b[0])), len(b)/4)
}

// WriteColumnSection writes the column-file image (page-sized header
// plus raw native-endian payload) to w. It is the whole of a column
// file and the tail section of v3 snapshot files — callers embedding
// it must place it at a page-aligned offset so the payload stays
// page-aligned in a mapping.
func WriteColumnSection(w io.Writer, flat []float32, n, dim int) error {
	if dim <= 0 || n < 0 || len(flat) < n*dim {
		return fmt.Errorf("storage: bad column shape n=%d dim=%d len=%d", n, dim, len(flat))
	}
	hdr := make([]byte, ColumnHeaderSize)
	binary.LittleEndian.PutUint32(hdr[0:], columnMagic)
	binary.LittleEndian.PutUint32(hdr[4:], columnVersion)
	binary.LittleEndian.PutUint32(hdr[8:], uint32(dim))
	binary.LittleEndian.PutUint64(hdr[16:], uint64(n))
	*(*uint32)(unsafe.Pointer(&hdr[12])) = endianSentinel // native order
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	_, err := w.Write(f32Bytes(flat[:n*dim]))
	return err
}

// ReadColumnSection reads a column-file image from r onto the heap —
// the portable path for snapshot streams and platforms without mmap.
func ReadColumnSection(r io.Reader) (flat []float32, n, dim int, err error) {
	hdr := make([]byte, ColumnHeaderSize)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, 0, 0, fmt.Errorf("storage: column header: %w", err)
	}
	n, dim, err = parseColumnHeader(hdr, "stream")
	if err != nil {
		return nil, 0, 0, err
	}
	flat = make([]float32, n*dim)
	if _, err := io.ReadFull(r, f32Bytes(flat)); err != nil {
		return nil, 0, 0, fmt.Errorf("storage: column payload: %w", err)
	}
	return flat, n, dim, nil
}

// parseColumnHeader validates the fixed column header fields.
func parseColumnHeader(hdr []byte, name string) (n, dim int, err error) {
	if binary.LittleEndian.Uint32(hdr[0:]) != columnMagic {
		return 0, 0, fmt.Errorf("storage: %s is not a column file", name)
	}
	if v := binary.LittleEndian.Uint32(hdr[4:]); v != columnVersion {
		return 0, 0, fmt.Errorf("storage: column version %d not supported", v)
	}
	if *(*uint32)(unsafe.Pointer(&hdr[12])) != endianSentinel {
		return 0, 0, fmt.Errorf("storage: %s written on a foreign-endian machine", name)
	}
	dim = int(binary.LittleEndian.Uint32(hdr[8:]))
	n = int(binary.LittleEndian.Uint64(hdr[16:]))
	if dim <= 0 || n < 0 {
		return 0, 0, fmt.Errorf("storage: column header corrupt (dim=%d n=%d)", dim, n)
	}
	return n, dim, nil
}

// WriteColumnFile writes rows [0, n) of the row-major matrix flat
// (dim floats per row) as a column file at path. The payload is the
// raw native-endian float bytes, so writing is a single copy.
func WriteColumnFile(path string, flat []float32, n, dim int) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := WriteColumnSection(f, flat, n, dim); err != nil {
		return err
	}
	return f.Sync()
}

// MmapStore serves a float32 column from a read-only file mapping.
// It implements VectorStore and mirrors MemStore's zero-copy surface
// (Raw, RowView). The mapping must stay alive for as long as any
// published snapshot references Raw() — owners call Close only when
// the collection itself is torn down, never on eviction/promotion.
type MmapStore struct {
	raw  []byte    // whole mapping (page-aligned base)
	data []float32 // column view into raw
	dim  int
	n    int
	path string
}

// OpenColumn maps a file written by WriteColumnFile.
func OpenColumn(path string) (*MmapStore, error) {
	return OpenColumnSection(path, 0)
}

// OpenColumnSection validates a column-file image embedded at offset
// within path (offset 0 for standalone column files; a page-aligned
// offset for the column section of v3 snapshot files) and maps its
// payload.
func OpenColumnSection(path string, offset int64) (*MmapStore, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	hdr := make([]byte, 32)
	if _, err := f.ReadAt(hdr, offset); err != nil {
		return nil, fmt.Errorf("storage: column header: %w", err)
	}
	n, dim, err := parseColumnHeader(hdr, path)
	if err != nil {
		return nil, err
	}
	return OpenColumnAt(path, offset+ColumnHeaderSize, n, dim)
}

// OpenColumnAt maps the file at path and exposes the n×dim float32
// column starting at the given byte offset (which must be 4-byte
// aligned). This is how checkpoint files double as mmap sources: the
// checkpoint writer pads its metadata section so the column lands on
// a page boundary, and recovery maps the column in place instead of
// materializing it on the heap.
func OpenColumnAt(path string, offset int64, n, dim int) (*MmapStore, error) {
	if dim <= 0 || n < 0 || offset < 0 || offset%4 != 0 {
		return nil, fmt.Errorf("storage: bad column geometry off=%d n=%d dim=%d", offset, n, dim)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	// The fd can be closed once mapped: the mapping keeps the inode
	// alive even if the file is later unlinked (checkpoint rotation).
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	need := offset + int64(n)*int64(dim)*4
	if fi.Size() < need {
		return nil, fmt.Errorf("storage: column file %s truncated: %d < %d bytes", path, fi.Size(), need)
	}
	raw, err := mmapFile(f, int(fi.Size()))
	if err != nil {
		return nil, fmt.Errorf("storage: mmap %s: %w", path, err)
	}
	m := &MmapStore{
		raw:  raw,
		data: bytesF32(raw[offset:need]),
		dim:  dim,
		n:    n,
		path: path,
	}
	return m, nil
}

// Dim implements VectorStore.
func (m *MmapStore) Dim() int { return m.dim }

// Count implements VectorStore.
func (m *MmapStore) Count() int { return m.n }

// Path returns the backing file path.
func (m *MmapStore) Path() string { return m.path }

// Mapped reports whether the store is a real file mapping (Linux) as
// opposed to the portable heap-buffer fallback.
func (m *MmapStore) Mapped() bool { return mmapSupported }

// MmapSupported reports whether this platform serves column files
// through real memory mappings. When false, OpenColumn materializes
// the column on heap — correct, but an "eviction" to that tier would
// free nothing, so callers should refuse to evict.
func MmapSupported() bool { return mmapSupported }

// SizeBytes is the length of the mapping — the bytes that leave the
// heap when a column is evicted to this tier.
func (m *MmapStore) SizeBytes() int { return len(m.raw) }

// Vector implements VectorStore, copying row id into dst.
func (m *MmapStore) Vector(id int, dst []float32) []float32 {
	if id < 0 || id >= m.n {
		panic(fmt.Sprintf("storage: id %d out of range [0,%d)", id, m.n))
	}
	if cap(dst) < m.dim {
		dst = make([]float32, m.dim)
	}
	dst = dst[:m.dim]
	copy(dst, m.data[id*m.dim:(id+1)*m.dim])
	return dst
}

// Raw returns the whole column as a zero-copy view — the same
// contract as MemStore.Raw, so scorers bind to it directly. Callers
// must not mutate it (the mapping is read-only; writes fault).
func (m *MmapStore) Raw() []float32 { return m.data[:m.n*m.dim] }

// RowView returns a zero-copy view of one row.
func (m *MmapStore) RowView(id int) []float32 {
	return m.data[id*m.dim : (id+1)*m.dim]
}

// columnRegion returns the page-aligned slice of the mapping covering
// the float column, which is what madvise needs.
func (m *MmapStore) columnRegion() []byte {
	if len(m.raw) == 0 || len(m.data) == 0 {
		return nil
	}
	start := uintptr(unsafe.Pointer(&m.data[0])) - uintptr(unsafe.Pointer(&m.raw[0]))
	start &^= 4095 // align down to the page holding the first row
	return m.raw[start:]
}

// AdviseSequential hints an upcoming sequential pass (flat scans):
// the kernel enlarges readahead and drops pages behind the scan.
func (m *MmapStore) AdviseSequential() error {
	return madviseRegion(m.columnRegion(), adviseSequential)
}

// AdviseRandom hints random point accesses (graph traversal probes):
// disables readahead so each probe faults only its own page.
func (m *MmapStore) AdviseRandom() error {
	return madviseRegion(m.columnRegion(), adviseRandom)
}

// AdviseNormal restores default kernel readahead behavior.
func (m *MmapStore) AdviseNormal() error {
	return madviseRegion(m.columnRegion(), adviseNormal)
}

// AdviseWillNeed asynchronously pre-faults the column (promotion
// warm-up before a collection returns to the hot tier).
func (m *MmapStore) AdviseWillNeed() error {
	return madviseRegion(m.columnRegion(), adviseWillNeed)
}

// AdviseDontNeed drops resident pages for the column, returning them
// to the kernel. The mapping stays valid — the next access faults the
// page back in from the file. This is the "cold" lever of the memory
// budget ladder and what the bench harness uses to measure cold-tier
// latency deterministically.
func (m *MmapStore) AdviseDontNeed() error {
	return madviseRegion(m.columnRegion(), adviseDontNeed)
}

// Close unmaps the column. Unsafe while any snapshot still references
// Raw()/RowView results; owners must quiesce readers first.
func (m *MmapStore) Close() error {
	raw := m.raw
	m.raw, m.data = nil, nil
	return munmap(raw)
}
