//go:build linux

package storage

import (
	"os"
	"syscall"
)

// mmapSupported reports whether this platform serves column files
// through real memory mappings. On Linux the column is mapped
// PROT_READ/MAP_SHARED so the page cache owns residency and the Go
// heap (and GC) never sees the vector bytes.
const mmapSupported = true

// mmapFile maps length bytes of f read-only. The mapping survives a
// later unlink of the file (checkpoint rotation deletes old files
// while recovered collections may still serve from them).
func mmapFile(f *os.File, length int) ([]byte, error) {
	return syscall.Mmap(int(f.Fd()), 0, length, syscall.PROT_READ, syscall.MAP_SHARED)
}

func munmap(b []byte) error {
	if b == nil {
		return nil
	}
	return syscall.Munmap(b)
}

// Advice values for madviseRegion.
const (
	adviseNormal     = syscall.MADV_NORMAL
	adviseSequential = syscall.MADV_SEQUENTIAL
	adviseRandom     = syscall.MADV_RANDOM
	adviseWillNeed   = syscall.MADV_WILLNEED
	adviseDontNeed   = syscall.MADV_DONTNEED
)

// madviseRegion hints the kernel about the access pattern for a
// page-aligned region of a mapping. Errors are returned for tests but
// callers treat hints as best-effort.
func madviseRegion(b []byte, advice int) error {
	if len(b) == 0 {
		return nil
	}
	return syscall.Madvise(b, advice)
}
