package lsm

import (
	"math"
	"math/rand"
	"testing"

	"vdbms/internal/topk"
	"vdbms/internal/vec"
)

func setMemScanBlock(t *testing.T, bs int) {
	t.Helper()
	old := memScanBlock
	memScanBlock = bs
	t.Cleanup(func() { memScanBlock = old })
}

func resultsIdentical(t *testing.T, label string, want, got []topk.Result) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: length %d vs reference %d", label, len(got), len(want))
	}
	for i := range want {
		if want[i].ID != got[i].ID ||
			math.Float32bits(want[i].Dist) != math.Float32bits(got[i].Dist) {
			t.Fatalf("%s: result %d = %+v, reference %+v", label, i, got[i], want[i])
		}
	}
}

// TestLSMCosineBlockSweep exercises the gather-block memtable scan on a
// cosine collection with overwrites and deletes (so stale generations
// interleave with live rows): results must be byte-identical at every
// block size, and each returned distance must agree with the scalar
// CosineDistance on the live vector within 1e-5 relative.
func TestLSMCosineBlockSweep(t *testing.T) {
	const dim = 12
	c, err := New(Config{Dim: dim, Metric: vec.Cosine, MemtableSize: 1 << 20, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	mk := func() []float32 {
		v := make([]float32, dim)
		for i := range v {
			v[i] = float32(rng.NormFloat64())
		}
		return v
	}
	live := map[int64][]float32{}
	for id := int64(0); id < 400; id++ {
		v := mk()
		if err := c.Upsert(id, v); err != nil {
			t.Fatal(err)
		}
		live[id] = v
	}
	// Overwrites and deletes leave stale generations in the memtable.
	for id := int64(0); id < 400; id += 5 {
		v := mk()
		if err := c.Upsert(id, v); err != nil {
			t.Fatal(err)
		}
		live[id] = v
	}
	for id := int64(3); id < 400; id += 7 {
		c.Delete(id)
		delete(live, id)
	}

	q := mk()
	k := len(live) // all live rows returned: rank swaps cannot change the set
	var ref []topk.Result
	for _, bs := range []int{1, 7, 64, 1024} {
		setMemScanBlock(t, bs)
		got, err := c.Search(q, k, 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = got
			if len(got) != len(live) {
				t.Fatalf("got %d results, want %d live rows", len(got), len(live))
			}
			for _, r := range got {
				v, ok := live[r.ID]
				if !ok {
					t.Fatalf("result id %d is deleted or unknown", r.ID)
				}
				want := float64(vec.CosineDistance(q, v))
				gd := float64(r.Dist)
				tol := 1e-5 * math.Max(1, math.Max(math.Abs(want), math.Abs(gd)))
				if math.Abs(want-gd) > tol {
					t.Fatalf("id %d: scorer %v scalar %v", r.ID, gd, want)
				}
			}
			continue
		}
		resultsIdentical(t, "memtable", ref, got)
	}

	// Seal the memtable: SearchExact now block-scans the segment scorer
	// (plus the empty memtable) and must stay byte-identical across
	// block sizes too.
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	ref = nil
	for _, bs := range []int{1, 7, 64, 1024} {
		setMemScanBlock(t, bs)
		got, err := c.SearchExact(q, k)
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = got
			if len(got) != len(live) {
				t.Fatalf("exact: got %d results, want %d", len(got), len(live))
			}
			continue
		}
		resultsIdentical(t, "segment", ref, got)
	}
}
