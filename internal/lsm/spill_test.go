package lsm

import (
	"os"
	"testing"

	"vdbms/internal/dataset"
	"vdbms/internal/storage"
)

// TestSpillDirSegmentsMapped: with SpillDir configured, sealed segments
// serve their float columns from mmap-backed spill files — and answers
// match a heap-only collection bit for bit.
func TestSpillDirSegmentsMapped(t *testing.T) {
	if !storage.MmapSupported() {
		t.Skip("no mmap on this platform")
	}
	dir := t.TempDir()
	spilled, err := New(Config{Dim: 8, MemtableSize: 50, MaxSegments: 100, SpillDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer spilled.Close() //nolint:errcheck
	heap := newSmall(t, 50)

	ds := dataset.Clustered(300, 8, 4, 0.4, 9)
	for i := 0; i < 300; i++ {
		if err := spilled.Upsert(int64(i), ds.Row(i)); err != nil {
			t.Fatal(err)
		}
		if err := heap.Upsert(int64(i), ds.Row(i)); err != nil {
			t.Fatal(err)
		}
	}
	if spilled.Segments() == 0 {
		t.Fatal("no segments sealed")
	}
	if got := spilled.MappedSegments(); got != spilled.Segments() {
		t.Fatalf("%d of %d segments mapped, want all", got, spilled.Segments())
	}
	// Spill files are unlinked once mapped: the directory stays empty.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("%d files linger in the spill dir, want 0 (unlink-after-map)", len(ents))
	}

	for qi := 0; qi < 10; qi++ {
		q := ds.Row(qi * 29)
		a, err := spilled.Search(q, 5, 64, nil)
		if err != nil {
			t.Fatal(err)
		}
		b, err := heap.Search(q, 5, 64, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("query %d: %d vs %d results", qi, len(a), len(b))
		}
		for i := range a {
			if a[i].ID != b[i].ID || a[i].Dist != b[i].Dist {
				t.Fatalf("query %d result %d: (%d, %v) vs (%d, %v)",
					qi, i, a[i].ID, a[i].Dist, b[i].ID, b[i].Dist)
			}
		}
		ea, err := spilled.SearchExact(q, 5)
		if err != nil {
			t.Fatal(err)
		}
		eb, err := heap.SearchExact(q, 5)
		if err != nil {
			t.Fatal(err)
		}
		for i := range ea {
			if ea[i].ID != eb[i].ID || ea[i].Dist != eb[i].Dist {
				t.Fatalf("exact query %d result %d differs across tiers", qi, i)
			}
		}
	}
}

// TestSpillSurvivesCompaction: compaction merges mapped segments into a
// new mapped segment; retired mappings are closed; reads stay correct.
func TestSpillSurvivesCompaction(t *testing.T) {
	if !storage.MmapSupported() {
		t.Skip("no mmap on this platform")
	}
	c, err := New(Config{Dim: 8, MemtableSize: 25, MaxSegments: 100, SpillDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close() //nolint:errcheck
	ds := dataset.Clustered(200, 8, 4, 0.4, 21)
	for i := 0; i < 200; i++ {
		if err := c.Upsert(int64(i), ds.Row(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Kill some rows so compaction actually rewrites.
	for i := 0; i < 200; i += 3 {
		c.Delete(int64(i))
	}
	if err := c.Compact(); err != nil {
		t.Fatal(err)
	}
	if c.Segments() != 1 {
		t.Fatalf("segments after compact = %d", c.Segments())
	}
	if got := c.MappedSegments(); got != 1 {
		t.Fatalf("mapped segments after compact = %d, want 1", got)
	}
	for i := 0; i < 200; i++ {
		v, ok := c.Get(int64(i))
		if i%3 == 0 {
			if ok {
				t.Fatalf("deleted id %d visible after compaction", i)
			}
			continue
		}
		if !ok {
			t.Fatalf("id %d lost in compaction", i)
		}
		want := ds.Row(i)
		for j := range want {
			if v[j] != want[j] {
				t.Fatalf("id %d element %d = %v, want %v", i, j, v[j], want[j])
			}
		}
	}
}

// TestSpillAllDeadCompaction: compacting segments down to zero live
// rows must close their mappings and leave no segments.
func TestSpillAllDeadCompaction(t *testing.T) {
	if !storage.MmapSupported() {
		t.Skip("no mmap on this platform")
	}
	c, err := New(Config{Dim: 8, MemtableSize: 10, MaxSegments: 100, SpillDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close() //nolint:errcheck
	ds := dataset.Clustered(40, 8, 2, 0.4, 4)
	for i := 0; i < 40; i++ {
		if err := c.Upsert(int64(i), ds.Row(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 40; i++ {
		c.Delete(int64(i))
	}
	if err := c.Compact(); err != nil {
		t.Fatal(err)
	}
	if c.Segments() != 0 || c.MappedSegments() != 0 {
		t.Fatalf("segments=%d mapped=%d after all-dead compaction", c.Segments(), c.MappedSegments())
	}
	if c.Len() != 0 {
		t.Fatalf("Len = %d", c.Len())
	}
}

// TestSpillDirUnusable: a SpillDir that cannot host files degrades to
// heap segments silently — correctness over tiering.
func TestSpillDirUnusable(t *testing.T) {
	file := t.TempDir() + "/occupied"
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := New(Config{Dim: 8, MemtableSize: 10, SpillDir: file + "/sub"}); err == nil {
		t.Fatal("New accepted a spill dir under a regular file")
	}
}

func TestSpillClose(t *testing.T) {
	if !storage.MmapSupported() {
		t.Skip("no mmap on this platform")
	}
	c, err := New(Config{Dim: 8, MemtableSize: 20, SpillDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	ds := dataset.Clustered(100, 8, 4, 0.4, 2)
	for i := 0; i < 100; i++ {
		if err := c.Upsert(int64(i), ds.Row(i)); err != nil {
			t.Fatal(err)
		}
	}
	if c.MappedSegments() == 0 {
		t.Fatal("nothing mapped before close")
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}
