package lsm

import (
	"sync"
	"testing"

	"vdbms/internal/dataset"
)

// TestConcurrentUpsertSearchDelete verifies the LSM collection under
// parallel writers, readers, and deleters (run with -race).
func TestConcurrentUpsertSearchDelete(t *testing.T) {
	c, err := New(Config{Dim: 8, MemtableSize: 64, MaxSegments: 4})
	if err != nil {
		t.Fatal(err)
	}
	ds := dataset.Clustered(500, 8, 4, 0.4, 1)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 120; i++ {
				id := int64((w*120 + i) % 300)
				switch i % 3 {
				case 0:
					c.Upsert(id, ds.Row(int(id))) //nolint:errcheck
				case 1:
					c.Search(ds.Row(i%500), 5, 32, nil) //nolint:errcheck
				case 2:
					c.Delete(id)
				}
			}
		}(w)
	}
	wg.Wait()
	// Post-stress invariants: search works and returns only live ids.
	res, err := c.Search(ds.Row(0), 10, 64, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		if _, ok := c.Get(r.ID); !ok {
			t.Fatalf("search returned dead id %d", r.ID)
		}
	}
	if err := c.Compact(); err != nil {
		t.Fatal(err)
	}
}
