package lsm

import (
	"math/rand"
	"testing"

	"vdbms/internal/dataset"
	"vdbms/internal/index"
)

func newSmall(t *testing.T, memtable int) *Collection {
	t.Helper()
	c, err := New(Config{Dim: 8, MemtableSize: memtable})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestUpsertGetDelete(t *testing.T) {
	c := newSmall(t, 100)
	if err := c.Upsert(1, []float32{1, 0, 0, 0, 0, 0, 0, 0}); err != nil {
		t.Fatal(err)
	}
	v, ok := c.Get(1)
	if !ok || v[0] != 1 {
		t.Fatalf("Get = %v %v", v, ok)
	}
	// Upsert replaces.
	if err := c.Upsert(1, []float32{2, 0, 0, 0, 0, 0, 0, 0}); err != nil {
		t.Fatal(err)
	}
	v, _ = c.Get(1)
	if v[0] != 2 {
		t.Fatalf("after upsert Get = %v", v)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d", c.Len())
	}
	if !c.Delete(1) {
		t.Fatal("Delete should succeed")
	}
	if c.Delete(1) || c.Delete(99) {
		t.Fatal("double/absent delete should be false")
	}
	if _, ok := c.Get(1); ok {
		t.Fatal("deleted id visible")
	}
	if c.Len() != 0 {
		t.Fatalf("Len after delete = %d", c.Len())
	}
}

func TestValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("want dim error")
	}
	c := newSmall(t, 10)
	if err := c.Upsert(1, []float32{1}); err == nil {
		t.Fatal("want dim error on upsert")
	}
	if _, err := c.Search([]float32{1}, 5, 0, nil); err == nil {
		t.Fatal("want dim error on search")
	}
	if _, err := c.Search(make([]float32, 8), 0, 0, nil); err != index.ErrBadK {
		t.Fatal("want ErrBadK")
	}
	if _, err := c.SearchExact(make([]float32, 8), 0); err != index.ErrBadK {
		t.Fatal("want ErrBadK from exact")
	}
	if _, err := c.SearchExact([]float32{1}, 3); err == nil {
		t.Fatal("want dim error from exact")
	}
}

func TestAutoFlushCreatesSegments(t *testing.T) {
	c := newSmall(t, 50)
	ds := dataset.Clustered(200, 8, 4, 0.4, 1)
	for i := 0; i < 200; i++ {
		if err := c.Upsert(int64(i), ds.Row(i)); err != nil {
			t.Fatal(err)
		}
	}
	if c.Segments() == 0 || c.Flushes() < 4 {
		t.Fatalf("segments=%d flushes=%d", c.Segments(), c.Flushes())
	}
	if c.Len() != 200 {
		t.Fatalf("Len = %d", c.Len())
	}
}

func TestSearchSpansMemtableAndSegments(t *testing.T) {
	c := newSmall(t, 64)
	ds := dataset.Clustered(150, 8, 4, 0.4, 3)
	for i := 0; i < 150; i++ {
		if err := c.Upsert(int64(i), ds.Row(i)); err != nil {
			t.Fatal(err)
		}
	}
	// 150 rows, memtable 64: two segments + 22 in memtable.
	q := ds.Queries(1, 0.02, 4)[0]
	got, err := c.Search(q, 10, 100, nil)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := c.SearchExact(q, 10)
	if err != nil {
		t.Fatal(err)
	}
	want := map[int64]bool{}
	for _, r := range exact {
		want[r.ID] = true
	}
	hits := 0
	for _, r := range got {
		if want[r.ID] {
			hits++
		}
	}
	if hits < 8 {
		t.Fatalf("indexed search found %d/10 of exact", hits)
	}
}

func TestDeletedRowsInvisibleAfterFlush(t *testing.T) {
	c := newSmall(t, 20)
	ds := dataset.Uniform(60, 8, 5)
	for i := 0; i < 60; i++ {
		c.Upsert(int64(i), ds.Row(i))
	}
	c.Flush()
	c.Delete(7)
	got, err := c.Search(ds.Row(7), 60, 500, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range got {
		if r.ID == 7 {
			t.Fatal("deleted id returned from segment search")
		}
	}
}

func TestUpsertShadowsOldVersionAcrossSegments(t *testing.T) {
	c := newSmall(t, 10)
	ds := dataset.Uniform(30, 8, 7)
	for i := 0; i < 30; i++ {
		c.Upsert(int64(i), ds.Row(i))
	}
	c.Flush()
	// Move id 3 far away; old copy lives in a sealed segment.
	far := []float32{100, 100, 100, 100, 100, 100, 100, 100}
	c.Upsert(3, far)
	got, err := c.Search(ds.Row(3), 5, 200, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range got {
		if r.ID == 3 && r.Dist < 1 {
			t.Fatal("stale version of id 3 surfaced")
		}
	}
	// And searching near the new location finds it.
	got, _ = c.Search(far, 1, 200, nil)
	if len(got) == 0 || got[0].ID != 3 {
		t.Fatalf("new version not found: %v", got)
	}
}

func TestCompactionDropsDeadRows(t *testing.T) {
	c, err := New(Config{Dim: 8, MemtableSize: 25, MaxSegments: 100})
	if err != nil {
		t.Fatal(err)
	}
	ds := dataset.Uniform(100, 8, 9)
	for i := 0; i < 100; i++ {
		c.Upsert(int64(i), ds.Row(i))
	}
	c.Flush()
	for i := 0; i < 50; i++ {
		c.Delete(int64(i))
	}
	if err := c.Compact(); err != nil {
		t.Fatal(err)
	}
	if c.Segments() != 1 {
		t.Fatalf("segments after compact = %d", c.Segments())
	}
	if c.Compactions() != 1 {
		t.Fatalf("compactions = %d", c.Compactions())
	}
	if c.Len() != 50 {
		t.Fatalf("live = %d", c.Len())
	}
	got, err := c.Search(ds.Row(75), 50, 500, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 50 {
		t.Fatalf("post-compaction search size = %d", len(got))
	}
	for _, r := range got {
		if r.ID < 50 {
			t.Fatalf("dead id %d visible after compaction", r.ID)
		}
	}
}

func TestAutoCompaction(t *testing.T) {
	c, err := New(Config{Dim: 8, MemtableSize: 10, MaxSegments: 3})
	if err != nil {
		t.Fatal(err)
	}
	ds := dataset.Uniform(100, 8, 11)
	for i := 0; i < 100; i++ {
		c.Upsert(int64(i), ds.Row(i))
	}
	if c.Segments() >= 3 {
		t.Fatalf("auto-compaction did not bound segments: %d", c.Segments())
	}
	if c.Compactions() == 0 {
		t.Fatal("no compaction ran")
	}
}

func TestCompactEmptyAndAllDead(t *testing.T) {
	c := newSmall(t, 10)
	if err := c.Compact(); err != nil {
		t.Fatal(err)
	}
	ds := dataset.Uniform(10, 8, 13)
	for i := 0; i < 10; i++ {
		c.Upsert(int64(i), ds.Row(i))
	}
	c.Flush()
	for i := 0; i < 10; i++ {
		c.Delete(int64(i))
	}
	if err := c.Compact(); err != nil {
		t.Fatal(err)
	}
	if c.Segments() != 0 || c.Len() != 0 {
		t.Fatalf("all-dead compaction: segs=%d live=%d", c.Segments(), c.Len())
	}
}

func TestExtraPredicate(t *testing.T) {
	c := newSmall(t, 16)
	ds := dataset.Uniform(50, 8, 15)
	for i := 0; i < 50; i++ {
		c.Upsert(int64(i), ds.Row(i))
	}
	got, err := c.Search(ds.Row(0), 10, 200, func(id int64) bool { return id%2 == 0 })
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range got {
		if r.ID%2 != 0 {
			t.Fatalf("extra predicate violated: %d", r.ID)
		}
	}
}

// Invariant under a random workload: Search with huge ef matches
// SearchExact, and live count tracks the reference map.
func TestRandomizedWorkloadConsistency(t *testing.T) {
	c, err := New(Config{Dim: 4, MemtableSize: 32, MaxSegments: 4})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	ref := map[int64][]float32{}
	for step := 0; step < 600; step++ {
		id := int64(rng.Intn(80))
		switch rng.Intn(3) {
		case 0, 1:
			v := []float32{rng.Float32(), rng.Float32(), rng.Float32(), rng.Float32()}
			if err := c.Upsert(id, v); err != nil {
				t.Fatal(err)
			}
			ref[id] = v
		case 2:
			got := c.Delete(id)
			_, had := ref[id]
			if got != had {
				t.Fatalf("step %d: delete(%d) = %v, ref had %v", step, id, got, had)
			}
			delete(ref, id)
		}
	}
	if c.Len() != len(ref) {
		t.Fatalf("live = %d, ref = %d", c.Len(), len(ref))
	}
	q := []float32{0.5, 0.5, 0.5, 0.5}
	exact, err := c.SearchExact(q, len(ref))
	if err != nil {
		t.Fatal(err)
	}
	if len(exact) != len(ref) {
		t.Fatalf("exact returned %d of %d live", len(exact), len(ref))
	}
	for _, r := range exact {
		if _, ok := ref[r.ID]; !ok {
			t.Fatalf("ghost id %d", r.ID)
		}
	}
}
