package lsm

import (
	"math"
	"runtime"
	"testing"

	"vdbms/internal/dataset"
	"vdbms/internal/topk"
)

// buildAt creates a collection with the given parallelism and replays
// a deterministic upsert/delete/flush workload so every instance holds
// the same memtable + segment state.
func buildAt(t *testing.T, parallelism int) *Collection {
	t.Helper()
	c, err := New(Config{Dim: 8, MemtableSize: 64, MaxSegments: 16, Parallelism: parallelism})
	if err != nil {
		t.Fatal(err)
	}
	ds := dataset.Clustered(400, 8, 4, 0.3, 2)
	for i := 0; i < 400; i++ {
		if err := c.Upsert(int64(i%300), ds.Row(i)); err != nil {
			t.Fatal(err)
		}
		if i%7 == 0 {
			c.Delete(int64((i * 3) % 300))
		}
	}
	// Leave a non-empty memtable so both the brute-force and the
	// segment paths participate.
	if c.Segments() == 0 {
		t.Fatal("workload built no segments")
	}
	return c
}

// TestLSMParallelDeterminism: fanning the search over memtable +
// segments must return byte-identical results to the serial visit
// order at every worker count.
func TestLSMParallelDeterminism(t *testing.T) {
	serial := buildAt(t, 1)
	ds := dataset.Clustered(400, 8, 4, 0.3, 2)
	qs := ds.Queries(10, 0.1, 4)
	for _, w := range []int{2, runtime.NumCPU(), runtime.NumCPU() + 3} {
		par := buildAt(t, w)
		for _, q := range qs {
			want, err := serial.Search(q, 7, 64, nil)
			if err != nil {
				t.Fatal(err)
			}
			got, err := par.Search(q, 7, 64, nil)
			if err != nil {
				t.Fatal(err)
			}
			compare(t, w, want, got)
			// With an extra predicate too.
			pred := func(id int64) bool { return id%2 == 0 }
			want, err = serial.Search(q, 7, 64, pred)
			if err != nil {
				t.Fatal(err)
			}
			got, err = par.Search(q, 7, 64, pred)
			if err != nil {
				t.Fatal(err)
			}
			compare(t, w, want, got)
		}
	}
}

func compare(t *testing.T, w int, want, got []topk.Result) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("parallelism %d: %d results vs serial %d", w, len(got), len(want))
	}
	for i := range want {
		if want[i].ID != got[i].ID ||
			math.Float32bits(want[i].Dist) != math.Float32bits(got[i].Dist) {
			t.Fatalf("parallelism %d: result %d = %+v, serial %+v", w, i, got[i], want[i])
		}
	}
}
