// Package lsm implements out-of-place updates (Section 2.3(3)): data-
// dependent ANN indexes are expensive to update in place, so writes
// land in an unindexed memtable that is periodically sealed into an
// immutable indexed segment; deletes and upserts are recorded as
// generation bumps and resolved at read time; compaction merges
// segments and drops dead rows. Search fans out over the memtable
// (brute force) and every segment index and merges the top-k — the
// LSM-style structure the paper attributes to Milvus and Manu.
package lsm

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"vdbms/internal/index"
	"vdbms/internal/index/hnsw"
	"vdbms/internal/obs"
	"vdbms/internal/pool"
	"vdbms/internal/storage"
	"vdbms/internal/topk"
	"vdbms/internal/vec"
)

// IndexBuilder builds the per-segment ANN index when a memtable is
// sealed.
type IndexBuilder func(data []float32, n, d int) (index.Index, error)

// Config controls the collection.
type Config struct {
	Dim          int
	MemtableSize int // rows before auto-flush; default 1024
	MaxSegments  int // segments before auto-compaction; default 8
	Metric       vec.Metric
	Builder      IndexBuilder // default: small HNSW
	// Parallelism is the intra-query worker count for Search: the
	// memtable scan and each sealed segment probe are independent tasks
	// fanned over the shared pool. 0 selects the pool width
	// (GOMAXPROCS), 1 forces the serial visit order. Results are
	// identical at every setting.
	Parallelism int
	// SpillDir, when set on an mmap-capable platform, moves sealed
	// segment columns out of the heap: each flush/compaction writes the
	// segment's vectors to a column file there, maps it read-only, and
	// unlinks it (the mapping keeps the inode alive, so a crash leaks no
	// files). The memtable — the only mutable column — stays on heap;
	// sealed vectors become kernel-reclaimable page cache, which is what
	// keeps a write-heavy LSM collection inside a process memory budget.
	// Spill failures fall back to heap segments silently: the tier is an
	// optimization, never a correctness dependency.
	SpillDir string
}

// row identifies one stored (id, generation) version of a vector.
type row struct {
	id  int64
	gen uint64
}

// segment is an immutable run of sealed rows. idx is nil between the
// seal and the completion of its off-lock index build; searches serve
// such segments by exact scan (seg.sc) until the index installs. When
// m is non-nil, data aliases the mapping and the heap copy is garbage.
type segment struct {
	data []float32
	rows []row
	idx  index.Index
	sc   *vec.Scorer // block-scores the sealed rows (exact scans)
	m    *storage.MmapStore
}

// Collection is an updatable vector collection with LSM-style
// out-of-place maintenance. All methods are safe for concurrent use.
//
// Locking: mu protects the row data and is held only for short
// operations — appends, map updates, the read-side of searches, and
// the O(rows) seal/merge copies. Segment index builds, the expensive
// part of maintenance, run under maint alone: maint serializes flush
// and compaction (single-flight) and is always acquired before mu,
// never while holding it, so builds block neither searches nor
// writes. A writer whose Upsert fills the memtable does wait for the
// seal-and-build it triggered (keeping flush accounting deterministic
// for callers); everyone else proceeds.
type Collection struct {
	// maint serializes maintenance (flush, compaction). Lock order:
	// maint before mu; writers that trigger maintenance release mu
	// first.
	maint sync.Mutex

	mu  sync.RWMutex
	cfg Config
	// memSc block-scores the memtable; its cached per-row state (cosine
	// norms) is extended incrementally on every Upsert and reset when
	// the memtable is sealed, so no search pays a norm recompute.
	memSc    *vec.Scorer
	memData  []float32
	memRows  []row
	segments []*segment
	// latest maps id -> current generation; gen 0 means deleted or
	// never present.
	latest  map[int64]uint64
	nextGen uint64
	live    int
	flushes int
	// compactions counts how many compaction runs completed.
	compactions int
	// spillSeq names spill files uniquely (guarded by maint — only
	// flush/compaction spill). Reusing a path would truncate an inode an
	// older mapping still reads.
	spillSeq int
}

// New creates an empty collection.
func New(cfg Config) (*Collection, error) {
	if cfg.Dim <= 0 {
		return nil, fmt.Errorf("lsm: dimension must be positive")
	}
	if cfg.MemtableSize <= 0 {
		cfg.MemtableSize = 1024
	}
	if cfg.MaxSegments <= 0 {
		cfg.MaxSegments = 8
	}
	if cfg.Builder == nil {
		// The default segment index searches under the collection's own
		// metric, matching the memtable scan.
		metric := cfg.Metric
		cfg.Builder = func(data []float32, n, d int) (index.Index, error) {
			return hnsw.Build(data, n, d, hnsw.Config{M: 8, Seed: 1, Metric: metric})
		}
	}
	memSc, err := vec.NewScorer(cfg.Metric, nil, 0, cfg.Dim)
	if err != nil {
		return nil, fmt.Errorf("lsm: %w", err)
	}
	if cfg.SpillDir != "" {
		if err := os.MkdirAll(cfg.SpillDir, 0o755); err != nil {
			return nil, fmt.Errorf("lsm: spill dir: %w", err)
		}
	}
	return &Collection{
		cfg:    cfg,
		memSc:  memSc,
		latest: map[int64]uint64{},
	}, nil
}

// Len returns the number of live (visible) vectors.
func (c *Collection) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.live
}

// Segments returns the sealed segment count.
func (c *Collection) Segments() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.segments)
}

// Flushes returns how many memtable seals have happened.
func (c *Collection) Flushes() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.flushes
}

// Compactions returns how many compaction runs completed.
func (c *Collection) Compactions() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.compactions
}

// Upsert inserts or replaces the vector stored under id.
func (c *Collection) Upsert(id int64, v []float32) error {
	if len(v) != c.cfg.Dim {
		return fmt.Errorf("lsm: vector dim %d, collection dim %d", len(v), c.cfg.Dim)
	}
	c.mu.Lock()
	c.nextGen++
	if c.latest[id] == 0 {
		c.live++
	}
	c.latest[id] = c.nextGen
	c.memData = append(c.memData, v...)
	c.memRows = append(c.memRows, row{id: id, gen: c.nextGen})
	c.memSc.Extend(c.memData, len(c.memRows))
	full := len(c.memRows) >= c.cfg.MemtableSize
	c.mu.Unlock()
	if full {
		// Seal outside mu so the index build never runs under the data
		// lock (lock order: maint then mu).
		return c.Flush()
	}
	return nil
}

// Delete hides id from future searches. Deleting an absent id is a
// no-op returning false.
func (c *Collection) Delete(id int64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.latest[id] == 0 {
		return false
	}
	c.latest[id] = 0
	c.live--
	return true
}

// Get returns the current vector for id.
func (c *Collection) Get(id int64) ([]float32, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	gen := c.latest[id]
	if gen == 0 {
		return nil, false
	}
	// Memtable first (newer), newest rows last.
	for i := len(c.memRows) - 1; i >= 0; i-- {
		if c.memRows[i].id == id && c.memRows[i].gen == gen {
			out := make([]float32, c.cfg.Dim)
			copy(out, c.memData[i*c.cfg.Dim:(i+1)*c.cfg.Dim])
			return out, true
		}
	}
	for si := len(c.segments) - 1; si >= 0; si-- {
		seg := c.segments[si]
		for i, r := range seg.rows {
			if r.id == id && r.gen == gen {
				out := make([]float32, c.cfg.Dim)
				copy(out, seg.data[i*c.cfg.Dim:(i+1)*c.cfg.Dim])
				return out, true
			}
		}
	}
	return nil, false
}

// Flush seals the memtable into a segment. The segment's index is
// built without holding the data lock: the sealed rows stay searchable
// by exact scan in the meantime and switch to the index when it
// installs, so searches and concurrent writers never wait on a build.
func (c *Collection) Flush() error {
	c.maint.Lock()
	defer c.maint.Unlock()
	return c.flushMaint()
}

// flushMaint is Flush's body; the caller holds maint.
func (c *Collection) flushMaint() error {
	// Seal under the data lock: move the memtable into an unindexed
	// segment (exact scans serve it until the build lands).
	c.mu.Lock()
	if len(c.memRows) == 0 {
		c.mu.Unlock()
		return nil
	}
	data := make([]float32, len(c.memData))
	copy(data, c.memData)
	rows := make([]row, len(c.memRows))
	copy(rows, c.memRows)
	segSc, err := vec.NewScorer(c.cfg.Metric, data, len(rows), c.cfg.Dim)
	if err != nil {
		c.mu.Unlock()
		return fmt.Errorf("lsm: segment scorer: %w", err)
	}
	seg := &segment{data: data, rows: rows, sc: segSc}
	c.segments = append(c.segments, seg)
	c.memData = c.memData[:0]
	c.memRows = c.memRows[:0]
	c.memSc.Reset()
	c.flushes++
	segCount := len(c.segments)
	c.mu.Unlock()

	// Spill the sealed column to the mmap tier (if configured) before
	// the index build, so the index binds the mapped bytes and the heap
	// copy becomes garbage as soon as the swap lands. The segment is
	// immutable and maint is held, so no staleness re-check is needed —
	// only readers see it, and they always go through mu.
	if m := c.spillMaint(data, len(rows)); m != nil {
		c.mu.Lock()
		seg.data = m.Raw()
		seg.sc.Extend(seg.data, len(rows)) // same row count: pointer swap
		seg.m = m
		c.mu.Unlock()
		data = seg.data
	}

	// Build off-lock. On failure the segment stays exact-scan only:
	// its rows remain fully searchable, just without index speedup.
	idx, err := c.cfg.Builder(data, len(rows), c.cfg.Dim)
	if err != nil {
		return fmt.Errorf("lsm: segment index build: %w", err)
	}
	c.mu.Lock()
	// Safe to assign directly: every reader of seg.idx holds mu, and
	// maint guarantees no concurrent compaction replaced the slice.
	seg.idx = idx
	c.mu.Unlock()
	if segCount >= c.cfg.MaxSegments {
		return c.compactMaint()
	}
	return nil
}

// Compact merges all segments, dropping dead rows, and rebuilds one
// index.
func (c *Collection) Compact() error {
	c.maint.Lock()
	defer c.maint.Unlock()
	return c.compactMaint()
}

// compactMaint is Compact's body; the caller holds maint (so the
// segment list cannot change underneath) and must not hold mu. The
// live-row merge snapshots under the read lock, the index build runs
// off-lock, and the merged segment installs atomically. Rows that die
// during the build are filtered at read time by the generation check,
// so the swap is always safe.
func (c *Collection) compactMaint() error {
	d := c.cfg.Dim
	var data []float32
	var rows []row
	c.mu.RLock()
	if len(c.segments) == 0 {
		c.mu.RUnlock()
		return nil
	}
	for _, seg := range c.segments {
		for i, r := range seg.rows {
			if c.latest[r.id] != r.gen {
				continue // dead version
			}
			data = append(data, seg.data[i*d:(i+1)*d]...)
			rows = append(rows, r)
		}
	}
	c.mu.RUnlock()
	if len(rows) == 0 {
		c.mu.Lock()
		retired := c.segments
		c.segments = nil
		c.compactions++
		c.mu.Unlock()
		closeSegmentMaps(retired)
		return nil
	}
	var m *storage.MmapStore
	if m = c.spillMaint(data, len(rows)); m != nil {
		data = m.Raw() // the index build below binds the mapping
	}
	idx, err := c.cfg.Builder(data, len(rows), d)
	if err != nil {
		if m != nil {
			m.Close() // never published
		}
		return fmt.Errorf("lsm: compaction index build: %w", err)
	}
	segSc, err := vec.NewScorer(c.cfg.Metric, data, len(rows), d)
	if err != nil {
		if m != nil {
			m.Close()
		}
		return fmt.Errorf("lsm: compaction scorer: %w", err)
	}
	c.mu.Lock()
	retired := c.segments
	c.segments = []*segment{{data: data, rows: rows, idx: idx, sc: segSc, m: m}}
	c.compactions++
	c.mu.Unlock()
	// mu.Lock drained every reader that could hold the old segments, and
	// maint excludes concurrent maintenance, so the retired mappings have
	// no remaining references.
	closeSegmentMaps(retired)
	return nil
}

// spillMaint writes one sealed column to the mmap tier and maps it,
// returning nil (heap fallback) when spilling is off, unsupported, or
// fails. Caller holds maint; the spill file is unlinked immediately —
// the mapping keeps the inode alive and a crash leaks nothing.
func (c *Collection) spillMaint(data []float32, n int) *storage.MmapStore {
	if c.cfg.SpillDir == "" || n == 0 || !storage.MmapSupported() {
		return nil
	}
	c.spillSeq++
	path := filepath.Join(c.cfg.SpillDir, fmt.Sprintf("seg-%08d.col", c.spillSeq))
	if err := storage.WriteColumnFile(path, data, n, c.cfg.Dim); err != nil {
		os.Remove(path)
		return nil
	}
	m, err := storage.OpenColumn(path)
	os.Remove(path)
	if err != nil {
		return nil
	}
	m.AdviseRandom() // segment probes are point lookups
	return m
}

// closeSegmentMaps unmaps the spill mappings of retired segments.
func closeSegmentMaps(segs []*segment) {
	for _, seg := range segs {
		if seg.m != nil {
			seg.m.Close()
		}
	}
}

// MappedSegments reports how many sealed segments currently serve from
// the mmap tier.
func (c *Collection) MappedSegments() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	n := 0
	for _, seg := range c.segments {
		if seg.m != nil {
			n++
		}
	}
	return n
}

// Close unmaps every spilled segment. The collection must not be used
// afterwards — sealed rows are dropped along with their mappings.
func (c *Collection) Close() error {
	c.maint.Lock()
	defer c.maint.Unlock()
	c.mu.Lock()
	retired := c.segments
	c.segments = nil
	c.mu.Unlock()
	closeSegmentMaps(retired)
	return nil
}

// Search returns the k nearest live vectors. extra is an optional
// additional predicate over user ids (nil for none); ef tunes segment
// index beam width.
//
// The memtable scan and each sealed segment probe are independent
// read-only tasks over the locked snapshot; cfg.Parallelism > 1 fans
// them over the shared worker pool. Each task fills its own collector
// and the caller merges them, so results are identical to the serial
// visit order at every worker count.
func (c *Collection) Search(q []float32, k, ef int, extra func(id int64) bool) ([]topk.Result, error) {
	if k <= 0 {
		return nil, index.ErrBadK
	}
	if len(q) != c.cfg.Dim {
		return nil, fmt.Errorf("lsm: query dim %d, collection dim %d", len(q), c.cfg.Dim)
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	tasks := 1 + len(c.segments)
	w := pool.Default().Effective(c.cfg.Parallelism, tasks)
	if w <= 1 {
		col := topk.NewCollector(k)
		c.searchMemtableLocked(q, col, extra)
		for _, seg := range c.segments {
			if err := c.searchSegmentLocked(q, k, ef, seg, col, extra); err != nil {
				return nil, err
			}
		}
		return col.Results(), nil
	}
	obs.ParallelSearches.With("lsm").Inc()
	// Task 0 is the memtable; task i is segment i-1. Workers only read
	// the snapshot (the RLock held here blocks writers), so per-task
	// collectors are the only mutable state.
	collectors := make([]*topk.Collector, tasks)
	errs := make([]error, tasks)
	pool.Default().Run(tasks, func(i int) {
		col := topk.NewCollector(k)
		if i == 0 {
			c.searchMemtableLocked(q, col, extra)
		} else {
			errs[i] = c.searchSegmentLocked(q, k, ef, c.segments[i-1], col, extra)
		}
		collectors[i] = col
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	merged := collectors[0]
	for _, col := range collectors[1:] {
		merged.Merge(col)
	}
	return merged.Results(), nil
}

// memScanBlock is the gather-buffer size for exact memtable/segment
// scans: surviving row indexes accumulate until a block is full, then
// one kernel call scores them all. A package variable so tests can
// sweep it.
var memScanBlock = 256

// scanRows gathers the local row indexes surviving the generation and
// predicate checks and block-scores them into col under their user
// ids. Shared by the memtable scan and the exact segment scan.
func (c *Collection) scanRows(b vec.Bound, rows []row, col *topk.Collector, extra func(id int64) bool) {
	ids := make([]int32, 0, memScanBlock)
	dist := make([]float32, memScanBlock)
	flush := func() {
		b.ScoreIDs(ids, dist)
		for o, li := range ids {
			col.Push(rows[li].id, dist[o])
		}
		ids = ids[:0]
	}
	for i, r := range rows {
		if c.latest[r.id] != r.gen {
			continue
		}
		if extra != nil && !extra(r.id) {
			continue
		}
		ids = append(ids, int32(i))
		if len(ids) == memScanBlock {
			flush()
		}
	}
	flush()
}

// searchMemtableLocked brute-force scans the memtable into col,
// newest version winning via the generation check. Caller holds at
// least a read lock.
func (c *Collection) searchMemtableLocked(q []float32, col *topk.Collector, extra func(id int64) bool) {
	c.scanRows(c.memSc.Bind(q), c.memRows, col, extra)
}

// searchSegmentLocked probes one sealed segment's index with a
// visit-first validity filter and pushes global-id results into col.
// Caller holds at least a read lock. The segment probe runs serial
// (Parallelism 1): the fan-out across segments is this collection's
// parallelism, and nesting another level only adds scheduling churn.
func (c *Collection) searchSegmentLocked(q []float32, k, ef int, seg *segment, col *topk.Collector, extra func(id int64) bool) error {
	if seg.idx == nil {
		// Sealed but not yet indexed (its build is still in flight):
		// exact-scan the segment. Same results, more distance comps.
		c.scanRows(seg.sc.Bind(q), seg.rows, col, extra)
		return nil
	}
	rows := seg.rows
	params := index.Params{
		Ef:          ef,
		NProbe:      ef, // bucket indexes read the same budget knob
		Parallelism: 1,
		Filter: func(local int64) bool {
			r := rows[local]
			if c.latest[r.id] != r.gen {
				return false
			}
			return extra == nil || extra(r.id)
		},
	}
	res, err := seg.idx.Search(q, k, params)
	if err != nil {
		return err
	}
	for _, rr := range res {
		col.Push(rows[rr.ID].id, rr.Dist)
	}
	return nil
}

// SearchExact is the fully accurate (brute force everywhere) variant,
// used as ground truth in tests and experiments.
func (c *Collection) SearchExact(q []float32, k int) ([]topk.Result, error) {
	if k <= 0 {
		return nil, index.ErrBadK
	}
	if len(q) != c.cfg.Dim {
		return nil, fmt.Errorf("lsm: query dim %d, collection dim %d", len(q), c.cfg.Dim)
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	col := topk.NewCollector(k)
	c.scanRows(c.memSc.Bind(q), c.memRows, col, nil)
	for _, seg := range c.segments {
		c.scanRows(seg.sc.Bind(q), seg.rows, col, nil)
	}
	return col.Results(), nil
}
