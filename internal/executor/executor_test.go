package executor

import (
	"strings"
	"testing"

	"vdbms/internal/dataset"
	"vdbms/internal/filter"
	"vdbms/internal/index"
	"vdbms/internal/index/hnsw"
	"vdbms/internal/planner"
	"vdbms/internal/vec"
)

// buildEnv creates a clustered collection with an HNSW index and an
// integer attribute "cat" uniform in [0, 100).
func buildEnv(t *testing.T, n int) (*Env, *dataset.Dataset) {
	t.Helper()
	ds := dataset.Clustered(n, 16, 8, 0.4, 1)
	h, err := hnsw.Build(ds.Data, ds.Count, ds.Dim, hnsw.Config{M: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	attrs := filter.NewTable()
	if _, err := attrs.AddColumn("cat", filter.Int64); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := attrs.AppendRow(map[string]filter.Value{"cat": filter.IntV(int64(i % 100))}); err != nil {
			t.Fatal(err)
		}
	}
	env, err := NewEnv(ds.Data, ds.Count, ds.Dim, nil, h, attrs)
	if err != nil {
		t.Fatal(err)
	}
	return env, ds
}

func catLt(x int64) []filter.Predicate {
	return []filter.Predicate{{Column: "cat", Op: filter.Lt, Value: filter.IntV(x)}}
}

func TestAllPlansRespectPredicate(t *testing.T) {
	env, ds := buildEnv(t, 2000)
	q := ds.Queries(1, 0.05, 2)[0]
	preds := catLt(50) // 50% selectivity
	for _, p := range planner.Enumerate(true, 4) {
		got, err := env.Execute(p, q, 10, preds, Options{Ef: 100})
		if err != nil {
			t.Fatalf("%v: %v", p.Kind, err)
		}
		if len(got) == 0 {
			t.Fatalf("%v returned nothing", p.Kind)
		}
		for _, r := range got {
			if r.ID%100 >= 50 {
				t.Fatalf("%v violated predicate: id %d", p.Kind, r.ID)
			}
		}
	}
}

func TestPlansAgreeAtFullSelectivity(t *testing.T) {
	env, ds := buildEnv(t, 1000)
	q := ds.Queries(1, 0.05, 3)[0]
	truthRes, err := env.Execute(planner.Plan{Kind: planner.BruteForce}, q, 5, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range planner.Enumerate(true, 4)[1:] {
		got, err := env.Execute(p, q, 5, nil, Options{Ef: 200})
		if err != nil {
			t.Fatal(err)
		}
		// ANN plans should find mostly the same ids at generous ef.
		want := map[int64]bool{}
		for _, r := range truthRes {
			want[r.ID] = true
		}
		hits := 0
		for _, r := range got {
			if want[r.ID] {
				hits++
			}
		}
		if hits < 4 {
			t.Fatalf("%v found %d/5 of exact results", p.Kind, hits)
		}
	}
}

func TestPreFilterTinySurvivorSetIsExact(t *testing.T) {
	env, ds := buildEnv(t, 2000)
	q := ds.Queries(1, 0.05, 4)[0]
	preds := catLt(1) // 1% selectivity => 20 survivors
	got, err := env.Execute(planner.Plan{Kind: planner.PreFilter}, q, 10, preds, Options{Ef: 50})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("pre-filter returned %d of 10", len(got))
	}
	// Compare against brute force over the same predicate: identical.
	exact, _ := env.Execute(planner.Plan{Kind: planner.BruteForce}, q, 10, preds, Options{})
	for i := range got {
		if got[i].ID != exact[i].ID {
			t.Fatalf("pre-filter deviates from exact on tiny survivor set: %v vs %v", got, exact)
		}
	}
}

func TestPostFilterShortfall(t *testing.T) {
	env, ds := buildEnv(t, 2000)
	q := ds.Queries(1, 0.05, 5)[0]
	preds := catLt(2) // 2% selectivity
	// alpha=1: expect far fewer than k survivors.
	got, err := env.Execute(planner.Plan{Kind: planner.PostFilter, Alpha: 1}, q, 20, preds, Options{Ef: 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) >= 20 {
		t.Fatalf("expected shortfall, got %d results", len(got))
	}
	// Large alpha fills the result set better.
	more, err := env.Execute(planner.Plan{Kind: planner.PostFilter, Alpha: 50}, q, 20, preds, Options{Ef: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if len(more) <= len(got) {
		t.Fatalf("alpha=50 (%d results) should beat alpha=1 (%d)", len(more), len(got))
	}
}

func TestExecuteValidation(t *testing.T) {
	env, ds := buildEnv(t, 200)
	q := ds.Row(0)
	if _, err := env.Execute(planner.Plan{}, q, 0, nil, Options{}); err != index.ErrBadK {
		t.Fatal("want ErrBadK")
	}
	if _, err := env.Execute(planner.Plan{}, []float32{1}, 5, nil, Options{}); err == nil {
		t.Fatal("want dim error")
	}
	if _, err := env.Execute(planner.Plan{}, q, 5, []filter.Predicate{{Column: "nope"}}, Options{}); err == nil {
		t.Fatal("want unknown-column error")
	}
	if _, err := env.Execute(planner.Plan{Kind: planner.Kind(9)}, q, 5, nil, Options{}); err == nil {
		t.Fatal("want unknown-plan error")
	}
	noAttrs, err := NewEnv(ds.Data, ds.Count, ds.Dim, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := noAttrs.Execute(planner.Plan{}, q, 5, catLt(1), Options{}); err == nil {
		t.Fatal("want no-attribute-table error")
	}
}

func TestSearchPolicies(t *testing.T) {
	env, ds := buildEnv(t, 1500)
	q := ds.Queries(1, 0.05, 6)[0]
	for _, policy := range []string{"", "cost", "rule", "vearch", "weaviate", "qdrant", "analyticdb-v"} {
		res, plan, err := env.Search(q, 5, catLt(50), Options{Ef: 100}, policy)
		if err != nil {
			t.Fatalf("policy %q: %v", policy, err)
		}
		if len(res) == 0 {
			t.Fatalf("policy %q (plan %v) returned nothing", policy, plan.Kind)
		}
	}
	if _, _, err := env.Search(q, 5, nil, Options{}, "bogus"); err == nil {
		t.Fatal("want unknown-policy error")
	}
}

func TestSearchBatchMatchesSingles(t *testing.T) {
	env, ds := buildEnv(t, 1000)
	qs := ds.Queries(16, 0.05, 7)
	plan := planner.Plan{Kind: planner.SingleStage}
	batch, err := env.SearchBatch(plan, qs, 5, nil, Options{Ef: 100})
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range qs {
		single, err := env.Execute(plan, q, 5, nil, Options{Ef: 100})
		if err != nil {
			t.Fatal(err)
		}
		if len(single) != len(batch[i]) {
			t.Fatalf("query %d: batch %d vs single %d", i, len(batch[i]), len(single))
		}
		for j := range single {
			if single[j].ID != batch[i][j].ID {
				t.Fatalf("query %d result %d differs", i, j)
			}
		}
	}
}

func TestSearchBatchPropagatesErrors(t *testing.T) {
	env, _ := buildEnv(t, 100)
	if _, err := env.SearchBatch(planner.Plan{}, [][]float32{{1}}, 5, nil, Options{}); err == nil {
		t.Fatal("want dim error from batch")
	}
}

func TestSearchRange(t *testing.T) {
	env, ds := buildEnv(t, 500)
	q := ds.Row(0)
	got, err := env.SearchRange(q, 0.5, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range got {
		if r.ID == 0 {
			found = true
		}
		if r.Dist > 0.5 {
			t.Fatalf("range violated: %v", r)
		}
	}
	if !found {
		t.Fatal("query point itself not in range result")
	}
	// With predicate.
	got, err = env.SearchRange(q, 10, catLt(10), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range got {
		if r.ID%100 >= 10 {
			t.Fatalf("range predicate violated: %d", r.ID)
		}
	}
}

func TestMultiVectorExactAndANN(t *testing.T) {
	env, ds := buildEnv(t, 900)
	// Group rows into entities of 3 consecutive vectors.
	owner := make([]int64, ds.Count)
	for i := range owner {
		owner[i] = int64(i / 3)
	}
	m := NewEntityMap(owner)
	if len(m.Entities()) != 300 {
		t.Fatalf("entities = %d", len(m.Entities()))
	}
	if m.Owner(5) != 1 || len(m.Members(1)) != 3 {
		t.Fatal("entity map wrong")
	}
	queries := [][]float32{ds.Row(30), ds.Row(31)}
	exact, err := env.MultiVectorExact(m, vec.AggMin, queries, nil, 5)
	if err != nil {
		t.Fatal(err)
	}
	if exact[0].ID != 10 { // rows 30,31 belong to entity 10; min distance 0
		t.Fatalf("exact top entity = %d", exact[0].ID)
	}
	approx, err := env.MultiVectorANN(m, vec.AggMin, queries, nil, 5, 20, Options{Ef: 100})
	if err != nil {
		t.Fatal(err)
	}
	if approx[0].ID != 10 {
		t.Fatalf("ann top entity = %d", approx[0].ID)
	}
	// Overlap between exact and approx top-5 should be high.
	want := map[int64]bool{}
	for _, r := range exact {
		want[r.ID] = true
	}
	hits := 0
	for _, r := range approx {
		if want[r.ID] {
			hits++
		}
	}
	if hits < 3 {
		t.Fatalf("multi-vector ANN overlap = %d/5", hits)
	}
}

func TestMultiVectorValidation(t *testing.T) {
	env, ds := buildEnv(t, 90)
	owner := make([]int64, ds.Count)
	m := NewEntityMap(owner)
	if _, err := env.MultiVectorExact(m, vec.AggMin, [][]float32{{1}}, nil, 5); err == nil {
		t.Fatal("want dim error")
	}
	if _, err := env.MultiVectorExact(m, vec.AggMin, nil, nil, 0); err == nil {
		t.Fatal("want bad-k error")
	}
	if _, err := env.MultiVectorANN(m, vec.AggMin, nil, nil, 0, 0, Options{}); err == nil {
		t.Fatal("want bad-k error")
	}
}

func TestIteratorPagesExact(t *testing.T) {
	ds := dataset.Clustered(400, 8, 4, 0.4, 9)
	env, err := NewEnv(ds.Data, ds.Count, ds.Dim, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	q := ds.Queries(1, 0.05, 10)[0]
	it, err := env.NewIterator(q, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var all []int64
	prev := float32(-1)
	for {
		page, err := it.Next(7)
		if err != nil {
			t.Fatal(err)
		}
		if len(page) == 0 {
			break
		}
		for _, r := range page {
			if r.Dist < prev {
				t.Fatalf("pages regressed: %v after %v", r.Dist, prev)
			}
			prev = r.Dist
			all = append(all, r.ID)
		}
	}
	if len(all) != 400 {
		t.Fatalf("iterator returned %d of 400", len(all))
	}
	seen := map[int64]bool{}
	for _, id := range all {
		if seen[id] {
			t.Fatalf("duplicate id %d", id)
		}
		seen[id] = true
	}
}

func TestIteratorANNPagination(t *testing.T) {
	env, ds := buildEnv(t, 1200)
	q := ds.Queries(1, 0.05, 11)[0]
	it, err := env.NewIterator(q, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	page1, err := it.Next(10)
	if err != nil {
		t.Fatal(err)
	}
	page2, err := it.Next(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(page1) != 10 || len(page2) != 10 {
		t.Fatalf("pages = %d, %d", len(page1), len(page2))
	}
	ids := map[int64]bool{}
	for _, r := range append(page1, page2...) {
		if ids[r.ID] {
			t.Fatalf("duplicate across pages: %d", r.ID)
		}
		ids[r.ID] = true
	}
	// First page should match a direct top-10 search closely.
	direct, _ := env.Execute(planner.Plan{Kind: planner.SingleStage}, q, 10, nil, Options{Ef: 64})
	want := map[int64]bool{}
	for _, r := range direct {
		want[r.ID] = true
	}
	hits := 0
	for _, r := range page1 {
		if want[r.ID] {
			hits++
		}
	}
	if hits < 7 {
		t.Fatalf("first page overlap = %d/10", hits)
	}
}

func TestIteratorValidation(t *testing.T) {
	env, ds := buildEnv(t, 100)
	if _, err := env.NewIterator([]float32{1}, nil, Options{}); err == nil {
		t.Fatal("want dim error")
	}
	if _, err := env.NewIterator(ds.Row(0), []filter.Predicate{{Column: "nope"}}, Options{}); err == nil {
		t.Fatal("want column error")
	}
	it, err := env.NewIterator(ds.Row(0), nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := it.Next(0); err == nil {
		t.Fatal("want page-size error")
	}
}

func TestIteratorWithPredicate(t *testing.T) {
	env, ds := buildEnv(t, 600)
	it, err := env.NewIterator(ds.Row(0), catLt(20), Options{})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for {
		page, err := it.Next(25)
		if err != nil {
			t.Fatal(err)
		}
		if len(page) == 0 {
			break
		}
		for _, r := range page {
			if r.ID%100 >= 20 {
				t.Fatalf("predicate violated: %d", r.ID)
			}
		}
		total += len(page)
	}
	if total == 0 {
		t.Fatal("predicated iterator returned nothing")
	}
}

// TestSearchBatchPartialResults: one bad query must not discard the
// whole batch. Failures come back as nil slots plus an error naming
// the failing index; the other queries' results survive.
func TestSearchBatchPartialResults(t *testing.T) {
	env, ds := buildEnv(t, 500)
	qs := ds.Queries(4, 0.05, 3)
	qs[2] = []float32{1} // wrong dimensionality
	plan := planner.Plan{Kind: planner.SingleStage}
	batch, err := env.SearchBatch(plan, qs, 5, nil, Options{Ef: 100})
	if err == nil {
		t.Fatal("want an error for the bad query")
	}
	if !strings.Contains(err.Error(), "query 2") {
		t.Fatalf("error should name the failing index: %v", err)
	}
	if len(batch) != len(qs) {
		t.Fatalf("batch length %d, want %d", len(batch), len(qs))
	}
	if batch[2] != nil {
		t.Fatal("failed query should have a nil slot")
	}
	for _, i := range []int{0, 1, 3} {
		if len(batch[i]) == 0 {
			t.Fatalf("query %d lost its results", i)
		}
		single, err := env.Execute(plan, qs[i], 5, nil, Options{Ef: 100})
		if err != nil {
			t.Fatal(err)
		}
		for j := range single {
			if single[j].ID != batch[i][j].ID {
				t.Fatalf("query %d result %d differs from single execution", i, j)
			}
		}
	}
}
