// Package executor implements the Query Executor of Figure 1: the
// similarity-projection + top-k operators, the hybrid scan operators
// (block-first via bitmap, visit-first via traversal predicate,
// post-filter with over-fetch), batched execution, multi-vector
// queries via aggregate scores, and the incremental (resumable) k-NN
// iterator from the open problems of Section 2.6.
package executor

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"vdbms/internal/filter"
	"vdbms/internal/index"
	"vdbms/internal/obs"
	"vdbms/internal/planner"
	"vdbms/internal/pool"
	"vdbms/internal/stats"
	"vdbms/internal/topk"
	"vdbms/internal/vec"
)

// Stage-latency handles, bound once so the hot path pays two
// time.Now calls and one histogram observe per stage — never a map
// lookup. Together these decompose vdbms_search_latency_seconds into
// where the time actually goes.
var (
	stagePlan       = obs.SearchStageSeconds.With("plan")
	stageFilter     = obs.SearchStageSeconds.With("filter")
	stageProbe      = obs.SearchStageSeconds.With("index_probe")
	stagePostFilter = obs.SearchStageSeconds.With("post_filter")
	stageRange      = obs.SearchStageSeconds.With("range_scan")
)

// Env is the execution environment for one collection snapshot. An
// Env is immutable once constructed and safe for any number of
// concurrent queries: core builds one per published epoch and every
// search that loads that epoch shares it, so nothing here may be
// mutated after NewEnv/NewEnvScorer returns.
type Env struct {
	Data  []float32 // row-major vectors
	N     int
	Dim   int
	Fn    vec.DistanceFunc // nil defaults to squared L2
	ANN   index.Index      // optional ANN index
	Flat  *index.Flat      // exact scan fallback (required)
	Attrs *filter.Table    // optional attribute table
	// Stats, when non-nil, receives query observations (probe cost,
	// sampled predicate selectivities) for the owning collection's
	// online statistics. The owner sets it before publishing the Env;
	// the stats.Collection itself is concurrency-safe and shared
	// across epochs. Nil costs one pointer check per site.
	Stats *stats.Collection
	// Advise, when non-nil, receives the access pattern the chosen plan
	// is about to drive over Data — AdviseSequential for exhaustive
	// scans (brute force, pre-filter allowlists, range scans),
	// AdviseRandom for index traversals. Collections whose column is
	// mmap-backed forward it to madvise so the kernel sizes readahead to
	// the plan; heap-backed collections leave it nil. Must be safe for
	// concurrent calls and cheap when the pattern is unchanged.
	Advise func(pattern AccessPattern)
}

// AccessPattern is the plan-level access hint fed to Env.Advise.
type AccessPattern int

const (
	// AdviseSequential marks a full-column pass (flat scans).
	AdviseSequential AccessPattern = iota
	// AdviseRandom marks point lookups driven by an index traversal.
	AdviseRandom
)

// advise forwards the plan's access pattern to the owner's hook.
func (e *Env) advise(p AccessPattern) {
	if e.Advise != nil {
		e.Advise(p)
	}
}

// NewEnv wires an environment, building the Flat index. Canonical vec
// distance functions get the metric-specialized block kernels; opaque
// functions scan row-at-a-time.
func NewEnv(data []float32, n, d int, fn vec.DistanceFunc, ann index.Index, attrs *filter.Table) (*Env, error) {
	if fn == nil {
		fn = vec.SquaredL2
	}
	fl, err := index.NewFlat(data, n, d, fn)
	if err != nil {
		return nil, err
	}
	return &Env{Data: data, N: n, Dim: d, Fn: fn, ANN: ann, Flat: fl, Attrs: attrs}, nil
}

// NewEnvScorer wires an environment around a prebuilt scorer, sharing
// its cached per-row state (cosine norms, Mahalanobis pre-transform)
// with the caller — collections that rebuild their Env per search keep
// one scorer alive across searches and extend it on insert instead of
// recomputing state per query. fn is the scalar distance used by
// aggregate (multi-vector) scoring; nil defaults to squared L2.
func NewEnvScorer(sc *vec.Scorer, fn vec.DistanceFunc, ann index.Index, attrs *filter.Table) (*Env, error) {
	if fn == nil {
		fn = vec.SquaredL2
	}
	fl, err := index.NewFlatScorer(sc)
	if err != nil {
		return nil, err
	}
	return &Env{Data: sc.Data(), N: sc.Rows(), Dim: sc.Dim(), Fn: fn, ANN: ann, Flat: fl, Attrs: attrs}, nil
}

// Options carries per-query execution knobs.
type Options struct {
	Ef     int // index beam/leaf budget
	NProbe int // bucket probes
	// Exclude hides rows from every plan (used by the engine for
	// deletion masks); it composes with predicate filters.
	Exclude func(id int64) bool
	// Parallelism is the intra-query worker count for partitioned
	// scans (flat ranges, IVF inverted lists). 0 uses the shared pool
	// width (GOMAXPROCS), 1 forces serial scans. Results are identical
	// at every setting.
	Parallelism int
	// RerankK overrides the exact re-rank width of quantized index
	// scans for this query (0 keeps the index's configured default;
	// ignored by full-precision indexes).
	RerankK int
	// Span, when non-nil, is the parent under which execution stages
	// (filter, index_probe, post_filter) record trace spans. Nil costs
	// only a pointer check per stage. SearchBatch shares one Options
	// across goroutines, so batch callers should leave Span nil and
	// trace the batch as a whole.
	Span *obs.Span
}

func (o Options) params() index.Params {
	p := index.Params{Ef: o.Ef, NProbe: o.NProbe, Parallelism: o.Parallelism, RerankK: o.RerankK}
	if o.Exclude != nil {
		excl := o.Exclude
		p.Filter = func(id int64) bool { return !excl(id) }
	}
	return p
}

// withPred layers a predicate filter on top of any exclusion filter
// already present in params.
func withPred(params index.Params, pred func(id int64) bool) index.Params {
	if prev := params.Filter; prev != nil {
		params.Filter = func(id int64) bool { return prev(id) && pred(id) }
	} else {
		params.Filter = pred
	}
	return params
}

// minSelEvals is the minimum per-row predicate evaluations before a
// scan's measured pass rate is recorded into the selectivity
// histograms — below it one scan is too small a sample to be a
// useful prior. It is deliberately low enough that a typical
// post-filter over-fetch (alpha*k) still records: per-scan noise
// averages out across the many observations the adaptive planner
// requires before trusting the prior. Exact measurements (pre-filter
// bitmap cardinalities) are recorded regardless.
const minSelEvals = 16

// predCount tallies predicate evaluations during one scan so the
// measured pass rate (admitted / evaluated) can feed the selectivity
// histograms afterwards. Counters are atomic because partitioned
// scans evaluate the filter from multiple workers. The predicate runs
// after the exclusion mask (withPred composition), so the measurement
// is over live rows actually examined — exact for exhaustive scans,
// a query-local sample for pushed-down index traversals.
type predCount struct{ evaluated, admitted atomic.Int64 }

func (pc *predCount) wrap(pred func(id int64) bool) func(id int64) bool {
	return func(id int64) bool {
		pc.evaluated.Add(1)
		if pred(id) {
			pc.admitted.Add(1)
			return true
		}
		return false
	}
}

// countedPred compiles the predicate filter, wrapped with evaluation
// counters when stats collection is on. A nil predCount means "do not
// record" (stats absent or disabled).
func (e *Env) countedPred(preds []filter.Predicate) (func(id int64) bool, *predCount) {
	pred := e.Attrs.FilterFunc(preds)
	if e.Stats == nil || !e.Stats.Enabled() {
		return pred, nil
	}
	pc := &predCount{}
	return pc.wrap(pred), pc
}

// recordMeasuredSel feeds one measured selectivity observation
// (admitted survivors / rows examined) into the per-column histograms.
func (e *Env) recordMeasuredSel(preds []filter.Predicate, admitted, evaluated int64) {
	if e.Stats == nil || evaluated <= 0 {
		return
	}
	sel := float64(admitted) / float64(evaluated)
	for _, p := range preds {
		e.Stats.RecordSelectivity(p.Column, sel)
	}
}

// recordCounted records a counting wrapper's measured pass rate when
// the scan examined enough rows to be worth keeping.
func (e *Env) recordCounted(pc *predCount, preds []filter.Predicate) {
	if pc == nil {
		return
	}
	if n := pc.evaluated.Load(); n >= minSelEvals {
		e.recordMeasuredSel(preds, pc.admitted.Load(), n)
	}
}

// Execute runs a (possibly predicated) top-k query under the given
// plan. preds may be empty, in which case every plan degenerates to a
// plain index or flat scan.
func (e *Env) Execute(p planner.Plan, q []float32, k int, preds []filter.Predicate, opts Options) ([]topk.Result, error) {
	if k <= 0 {
		return nil, index.ErrBadK
	}
	if len(q) != e.Dim {
		return nil, fmt.Errorf("%w: query %d, env %d", index.ErrDim, len(q), e.Dim)
	}
	if len(preds) > 0 {
		if e.Attrs == nil {
			return nil, fmt.Errorf("executor: predicates given but no attribute table")
		}
		if err := e.Attrs.Validate(preds); err != nil {
			return nil, err
		}
	}
	switch p.Kind {
	case planner.BruteForce:
		e.advise(AdviseSequential)
		return e.bruteForce(q, k, preds, opts)
	case planner.PreFilter:
		e.advise(AdviseSequential)
		return e.preFilter(q, k, preds, opts)
	case planner.PostFilter:
		e.advise(AdviseRandom)
		return e.postFilter(q, k, preds, p.Alpha, opts)
	case planner.SingleStage:
		e.advise(AdviseRandom)
		return e.singleStage(q, k, preds, opts)
	default:
		return nil, fmt.Errorf("executor: unknown plan %v", p.Kind)
	}
}

// probe runs one index scan with per-query stats collection: the
// backend fills an index.SearchStats, which feeds both the per-index
// obs counters (always on) and the query's trace span (when opts.Span
// is set). Every plan funnels its index/flat scans through here so
// /metrics attributes work to the index family that actually served
// the query.
func (e *Env) probe(idx index.Index, q []float32, k int, params index.Params, span *obs.Span) ([]topk.Result, error) {
	var st index.SearchStats
	params.Stats = &st
	sp := span.Start("index_probe")
	start := time.Now()
	res, err := idx.Search(q, k, params)
	elapsed := time.Since(start)
	stageProbe.Observe(elapsed.Seconds())
	sp.End()
	name := idx.Name()
	if e.Stats != nil {
		if idx == e.ANN {
			// Observed probe cost feeds the adaptive cost model; exact
			// scans are excluded — their cost is already exactly N.
			e.Stats.RecordProbe(st.DistanceComps)
			quant := false
			if qi, ok := idx.(index.Quantized); ok && qi.QuantizedScan() {
				quant = true
			}
			e.Stats.RecordCompCost(elapsed.Nanoseconds(), st.DistanceComps, quant)
		} else {
			// Flat probes are the full-precision ns-per-comp baseline
			// the calibrated cost ratios are measured against.
			e.Stats.RecordCompCost(elapsed.Nanoseconds(), st.DistanceComps, false)
		}
	}
	sp.Tag("index", name)
	sp.Annotate("k", int64(k))
	sp.Annotate("distance_comps", st.DistanceComps)
	if st.NodesVisited > 0 {
		sp.Annotate("nodes_visited", st.NodesVisited)
	}
	if st.GreedyHops > 0 {
		sp.Annotate("greedy_hops", st.GreedyHops)
	}
	if st.BucketsProbed > 0 {
		sp.Annotate("buckets_probed", st.BucketsProbed)
	}
	if st.IOReads > 0 {
		sp.Annotate("io_reads", st.IOReads)
	}
	if st.CacheHits > 0 {
		sp.Annotate("cache_hits", st.CacheHits)
	}
	if st.Partitions > 0 {
		sp.Annotate("partitions", st.Partitions)
	}
	obs.IndexProbes.With(name).Inc()
	obs.IndexDistanceComps.With(name).Add(st.DistanceComps)
	obs.IndexNodesVisited.With(name).Add(st.NodesVisited)
	obs.IndexBucketsProbed.With(name).Add(st.BucketsProbed)
	obs.IndexIOReads.With(name).Add(st.IOReads)
	obs.IndexPartitions.With(name).Add(st.Partitions)
	return res, err
}

// bruteForce fuses the predicate into an exhaustive scan (plan A).
// The scan evaluates the predicate on every live row, so its counted
// pass rate is an exact selectivity measurement.
func (e *Env) bruteForce(q []float32, k int, preds []filter.Predicate, opts Options) ([]topk.Result, error) {
	params := opts.params()
	var pc *predCount
	if len(preds) > 0 {
		var pred func(id int64) bool
		pred, pc = e.countedPred(preds)
		params = withPred(params, pred)
	}
	res, err := e.probe(e.Flat, q, k, params, opts.Span)
	if err == nil {
		e.recordCounted(pc, preds)
	}
	return res, err
}

// preFilter builds the bitmap and hands it to the index as a
// block-first allowlist (plan B). When the survivor set is tiny the
// index scan is skipped for an exact scan over survivors, matching the
// behavior AnalyticDB-V's optimizer picks in that regime.
func (e *Env) preFilter(q []float32, k int, preds []filter.Predicate, opts Options) ([]topk.Result, error) {
	if len(preds) == 0 {
		return e.indexOrFlat(q, k, opts)
	}
	fsp := opts.Span.Start("filter")
	fstart := time.Now()
	bm, err := e.Attrs.Bitmap(preds)
	felapsed := time.Since(fstart)
	stageFilter.Observe(felapsed.Seconds())
	if err != nil {
		fsp.End()
		return nil, err
	}
	if e.Stats != nil {
		// A bitmap build evaluates the predicate on every row: the
		// cleanest per-eval timing for the calibrated attr-cost ratio.
		e.Stats.RecordAttrCost(felapsed.Nanoseconds(), int64(e.N))
	}
	survivors := bm.Count()
	fsp.Annotate("survivors", int64(survivors))
	fsp.End()
	// The bitmap cardinality over the full table is the predicate's
	// exact selectivity — the measured observation the adaptive
	// planner's per-column prior is built from.
	e.recordMeasuredSel(preds, int64(survivors), int64(e.N))
	params := opts.params()
	params.Allow = bm
	// Small survivor sets are scanned exactly: cheaper than a blocked
	// index scan and immune to the graph-disconnection effect of
	// online blocking (Section 2.3(1)).
	exactCutoff := 16 * k
	if exactCutoff < 256 {
		exactCutoff = 256
	}
	if e.ANN == nil || survivors <= exactCutoff {
		return e.probe(e.Flat, q, k, params, opts.Span)
	}
	return e.probe(e.ANN, q, k, params, opts.Span)
}

// postFilter over-fetches alpha*k unfiltered candidates and applies
// the predicate afterwards (plan C). It may return fewer than k
// results — the documented trade-off of this plan.
func (e *Env) postFilter(q []float32, k int, preds []filter.Predicate, alpha int, opts Options) ([]topk.Result, error) {
	if alpha <= 0 {
		alpha = 4
	}
	fetch := alpha * k
	if fetch > e.N {
		fetch = e.N
	}
	cands, err := e.indexOrFlat(q, fetch, opts)
	if err != nil {
		return nil, err
	}
	if len(preds) == 0 {
		if len(cands) > k {
			cands = cands[:k]
		}
		return cands, nil
	}
	psp := opts.Span.Start("post_filter")
	pstart := time.Now()
	psp.Annotate("fetched", int64(len(cands)))
	// Every fetched candidate is evaluated (the cost model already
	// charges alpha*k attribute checks); only the first k admitted are
	// kept. Checking the tail keeps the measured pass rate below a
	// deterministic sample size instead of stopping wherever the k-th
	// admission happened to land.
	out := make([]topk.Result, 0, k)
	var evaluated, admitted int64
	for _, r := range cands {
		ok, err := e.Attrs.Matches(preds, int(r.ID))
		if err != nil {
			psp.End()
			return nil, err
		}
		evaluated++
		if ok {
			admitted++
			if len(out) < k {
				out = append(out, r)
			}
		}
	}
	psp.Annotate("kept", int64(len(out)))
	stagePostFilter.Observe(time.Since(pstart).Seconds())
	psp.End()
	// The candidate set is distance-biased, but its measured pass rate
	// is still a real observation of the predicate on live rows; the
	// minimum-evaluations bar keeps degenerate over-fetches from
	// quantizing the histograms to 0-or-1 observations.
	if evaluated >= minSelEvals {
		e.recordMeasuredSel(preds, admitted, evaluated)
	}
	return out, nil
}

// singleStage pushes the predicate into the traversal (plan D,
// visit-first scan). The counted pass rate over visited rows is a
// query-local selectivity sample (exact when the fallback is the
// exhaustive flat scan).
func (e *Env) singleStage(q []float32, k int, preds []filter.Predicate, opts Options) ([]topk.Result, error) {
	params := opts.params()
	var pc *predCount
	if len(preds) > 0 {
		var pred func(id int64) bool
		pred, pc = e.countedPred(preds)
		params = withPred(params, pred)
	}
	idx := index.Index(e.Flat)
	if e.ANN != nil {
		idx = e.ANN
	}
	res, err := e.probe(idx, q, k, params, opts.Span)
	if err == nil {
		e.recordCounted(pc, preds)
	}
	return res, err
}

func (e *Env) indexOrFlat(q []float32, k int, opts Options) ([]topk.Result, error) {
	if e.ANN != nil {
		return e.probe(e.ANN, q, k, opts.params(), opts.Span)
	}
	return e.probe(e.Flat, q, k, opts.params(), opts.Span)
}

// Plan chooses an execution plan for a (k, preds) query shape under
// the given selection policy ("", "cost", "rule", "adaptive", or a
// planner.Profile name) without executing anything. Search composes
// Plan and Execute; batch callers plan once here and reuse the plan
// for every query in the batch. span, when non-nil, receives the
// "plan" stage span.
//
// The "adaptive" policy is cost-based selection over an environment
// refined with the collection's online statistics (observed ANN probe
// cost, per-column selectivity priors — planner.AdaptiveEnv); with no
// Stats attached it degrades to plain cost-based selection. The
// sampled estimate computed here is used for plan choice only; the
// selectivity histograms are fed measured survivor fractions by the
// execution paths (bitmap cardinalities, per-row filter pass rates),
// so the prior stays independent of the estimator it corrects.
func (e *Env) Plan(k int, preds []filter.Predicate, policy string, span *obs.Span) (planner.Plan, error) {
	psp := span.Start("plan")
	start := time.Now()
	env := planner.Env{
		N: e.N, K: k, HasIndex: e.ANN != nil, Selectivity: 1,
	}
	if qi, ok := e.ANN.(index.Quantized); ok && qi.QuantizedScan() {
		// Quantized candidate generation touches code bytes instead of
		// float32 rows; discount per-probe cost by the SQ8 ratio (the
		// most common codec — PQ is cheaper still) so cost-based
		// selection doesn't abandon a quantized index for a brute-force
		// scan it would beat.
		env.QuantRatio = 0.35
	}
	if len(preds) > 0 && e.Attrs != nil {
		sel, err := e.Attrs.EstimateSelectivity(preds, 256)
		if err != nil {
			psp.End()
			return planner.Plan{}, err
		}
		env.Selectivity = sel
		psp.Annotate("selectivity_ppm", int64(sel*1e6))
	}
	var plan planner.Plan
	switch policy {
	case "", "cost":
		plan = planner.CostBased(env)
	case "rule":
		plan = planner.RuleBased(env)
	case "adaptive":
		plan = planner.CostBased(planner.AdaptiveEnv(env, e.observed(preds)))
	default:
		p, err := planner.Profile(policy).Select(env)
		if err != nil {
			psp.End()
			return planner.Plan{}, err
		}
		plan = p
	}
	psp.Tag("plan", plan.Kind.String())
	stagePlan.Observe(time.Since(start).Seconds())
	psp.End()
	return plan, nil
}

// observed assembles the planner's measured statistics from the
// collection's stats tracker (zero-valued when none is attached —
// AdaptiveEnv then changes nothing).
func (e *Env) observed(preds []filter.Predicate) planner.Observed {
	if e.Stats == nil {
		return planner.Observed{}
	}
	var o planner.Observed
	o.MeanProbeComps, o.ProbeCount = e.Stats.MeanProbeComps()
	if len(preds) > 0 {
		cols := make([]string, len(preds))
		for i, p := range preds {
			cols[i] = p.Column
		}
		if mean, n, ok := e.Stats.SelectivityPrior(cols); ok {
			o.MeanSelectivity, o.SelObservations = mean, n
		}
	}
	// Timing calibration: ratios are only meaningful against a measured
	// full-precision baseline, and trust is gated by the smaller of the
	// two scan counts behind each ratio.
	if cal := e.Stats.Calibration(); cal.NsPerComp > 0 {
		if cal.NsPerAttrEval > 0 {
			o.AttrCostRatio = cal.NsPerAttrEval / cal.NsPerComp
			o.AttrObservations = min64(cal.CompScans, cal.AttrScans)
		}
		if cal.NsPerQuantComp > 0 {
			o.QuantRatio = cal.NsPerQuantComp / cal.NsPerComp
			o.QuantObservations = min64(cal.CompScans, cal.QuantScans)
		}
	}
	return o
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// Search plans and executes in one step using the given selection
// policy ("rule", "cost", or a planner.Profile name).
func (e *Env) Search(q []float32, k int, preds []filter.Predicate, opts Options, policy string) ([]topk.Result, planner.Plan, error) {
	plan, err := e.Plan(k, preds, policy, opts.Span)
	if err != nil {
		return nil, planner.Plan{}, err
	}
	res, err := e.Execute(plan, q, k, preds, opts)
	return res, plan, err
}

// SearchBatch answers a batch of queries (Section 2.1(3), batched
// queries), fanning out over the shared worker pool — the same pool
// intra-query partitioned scans draw from, so batch × intra-query
// nesting cannot oversubscribe the machine. Results align with the
// input order.
//
// A failing query does not discard the others: its slot is nil and the
// returned error (joined across failures) wraps each failing query's
// index, mirroring the partial-results philosophy of the distributed
// read path. Callers that need all-or-nothing can treat any non-nil
// error as fatal.
func (e *Env) SearchBatch(p planner.Plan, qs [][]float32, k int, preds []filter.Predicate, opts Options) ([][]topk.Result, error) {
	out := make([][]topk.Result, len(qs))
	errs := make([]error, len(qs))
	pool.Default().Run(len(qs), func(i int) {
		out[i], errs[i] = e.Execute(p, qs[i], k, preds, opts)
	})
	var failed []error
	for i, err := range errs {
		if err != nil {
			out[i] = nil
			failed = append(failed, fmt.Errorf("query %d: %w", i, err))
		}
	}
	return out, errors.Join(failed...)
}

// SearchRange answers a range query: all (admitted) vectors within the
// given distance threshold. The exclusion mask and parallelism knobs
// in opts apply exactly as in Execute — excluded rows are skipped
// before scoring — and the scan records a "range_scan" span under
// opts.Span and counts against the flat index family.
func (e *Env) SearchRange(q []float32, radius float32, preds []filter.Predicate, opts Options) ([]topk.Result, error) {
	e.advise(AdviseSequential)
	params := opts.params()
	var pc *predCount
	if len(preds) > 0 {
		if e.Attrs == nil {
			return nil, fmt.Errorf("executor: predicates given but no attribute table")
		}
		if err := e.Attrs.Validate(preds); err != nil {
			return nil, err
		}
		var pred func(id int64) bool
		pred, pc = e.countedPred(preds)
		params = withPred(params, pred)
	}
	var st index.SearchStats
	params.Stats = &st
	sp := opts.Span.Start("range_scan")
	start := time.Now()
	res, err := e.Flat.SearchRange(q, radius, params)
	stageRange.Observe(time.Since(start).Seconds())
	sp.Annotate("distance_comps", st.DistanceComps)
	sp.Annotate("hits", int64(len(res)))
	sp.End()
	obs.IndexProbes.With("flat").Inc()
	obs.IndexDistanceComps.With("flat").Add(st.DistanceComps)
	if err == nil {
		e.recordCounted(pc, preds)
	}
	return res, err
}

// ReplayANN answers a (k, preds) query with one ANN index probe at
// explicitly pinned search parameters (ef for graph/tree families,
// nprobe for partition families), bypassing plan selection AND the
// serving-path metrics — no probe counters, no stage histograms, no
// stats observations. The recall tuner uses it to replay sampled
// queries at every candidate parameter value against the exact ground
// truth on a pinned snapshot: the returned SearchStats carries the
// probe's distance-computation cost, which together with the recall
// against ExactGroundTruth forms one point on the recall-vs-cost
// frontier. Predicates are pushed down as a traversal filter (the
// visit-first shape), so the replay measures the index's filtered
// behavior without depending on the plan the serving path happened to
// pick. exclude mirrors Options.Exclude (deletion mask).
func (e *Env) ReplayANN(q []float32, k, ef, nprobe int, preds []filter.Predicate, exclude func(id int64) bool) ([]topk.Result, index.SearchStats, error) {
	var st index.SearchStats
	if e.ANN == nil {
		return nil, st, fmt.Errorf("executor: replay requires an ANN index")
	}
	params := Options{Exclude: exclude, Ef: ef, NProbe: nprobe}.params()
	if len(preds) > 0 {
		if e.Attrs == nil {
			return nil, st, fmt.Errorf("executor: predicates given but no attribute table")
		}
		if err := e.Attrs.Validate(preds); err != nil {
			return nil, st, err
		}
		params = withPred(params, e.Attrs.FilterFunc(preds))
	}
	params.Stats = &st
	res, err := e.ANN.Search(q, k, params)
	return res, st, err
}

// ExactGroundTruth answers a (k, preds) query with the exhaustive
// exact scan, bypassing plan selection AND the serving-path metrics:
// no probe counters, no stage histograms, no stats observations. The
// recall auditor uses it to compute ground truth on a pinned snapshot
// without the audit inflating the very serving statistics it is
// meant to validate. exclude mirrors Options.Exclude (deletion mask).
func (e *Env) ExactGroundTruth(q []float32, k int, preds []filter.Predicate, exclude func(id int64) bool) ([]topk.Result, error) {
	e.advise(AdviseSequential)
	params := Options{Exclude: exclude}.params()
	if len(preds) > 0 {
		if e.Attrs == nil {
			return nil, fmt.Errorf("executor: predicates given but no attribute table")
		}
		if err := e.Attrs.Validate(preds); err != nil {
			return nil, err
		}
		params = withPred(params, e.Attrs.FilterFunc(preds))
	}
	return e.Flat.Search(q, k, params)
}
