package executor

import (
	"fmt"
	"sort"

	"vdbms/internal/filter"
	"vdbms/internal/topk"
)

// Incremental search (open problem 5 of Section 2.6): e-commerce-style
// applications fetch the result set in pages without re-running the
// query. Iterator supports that pattern: it snapshots a ranking and
// serves successive Next(n) pages; when the snapshot is exhausted it
// deepens the underlying search (distance-ordered, so pages never
// regress).
//
// The flat path materializes the full ordering once (exact). The ANN
// path re-queries with growing k, de-duplicating already returned ids
// — the "restart with larger k" strategy the paper notes indexes force
// today.

// Iterator pages through a ranked result stream.
type Iterator struct {
	env      *Env
	q        []float32
	preds    []filter.Predicate
	opts     Options
	useANN   bool
	returned map[int64]struct{}
	buffer   []topk.Result
	pos      int
	depth    int // current ANN fetch depth
	done     bool
}

// NewIterator starts an incremental query. When the environment has an
// ANN index it is used with progressive deepening; otherwise the exact
// ordering is materialized lazily from the flat scan.
func (e *Env) NewIterator(q []float32, preds []filter.Predicate, opts Options) (*Iterator, error) {
	if len(q) != e.Dim {
		return nil, fmt.Errorf("executor: iterator query dim %d, env %d", len(q), e.Dim)
	}
	if len(preds) > 0 {
		if e.Attrs == nil {
			return nil, fmt.Errorf("executor: predicates given but no attribute table")
		}
		if err := e.Attrs.Validate(preds); err != nil {
			return nil, err
		}
	}
	return &Iterator{
		env: e, q: q, preds: preds, opts: opts,
		useANN:   e.ANN != nil,
		returned: map[int64]struct{}{},
		depth:    32,
	}, nil
}

// Next returns up to n further results in ascending distance order.
// An empty slice means the stream is exhausted.
func (it *Iterator) Next(n int) ([]topk.Result, error) {
	if n <= 0 {
		return nil, fmt.Errorf("executor: page size must be positive")
	}
	var out []topk.Result
	for len(out) < n {
		if it.pos >= len(it.buffer) {
			if err := it.refill(); err != nil {
				return nil, err
			}
			if it.pos >= len(it.buffer) {
				break // exhausted
			}
		}
		r := it.buffer[it.pos]
		it.pos++
		if _, dup := it.returned[r.ID]; dup {
			continue
		}
		it.returned[r.ID] = struct{}{}
		out = append(out, r)
	}
	return out, nil
}

func (it *Iterator) refill() error {
	if it.done {
		return nil
	}
	e := it.env
	if !it.useANN {
		// Materialize the full exact ordering once.
		params := it.opts.params()
		if len(it.preds) > 0 {
			params = withPred(params, e.Attrs.FilterFunc(it.preds))
		}
		res, err := e.Flat.Search(it.q, e.N, params)
		if err != nil {
			return err
		}
		sort.Slice(res, func(i, j int) bool { return res[i].Dist < res[j].Dist })
		it.buffer = res
		it.pos = 0
		it.done = true
		return nil
	}
	// Progressive deepening on the ANN index.
	if it.depth > 4*e.N {
		it.done = true
		return nil
	}
	params := it.opts.params()
	if params.Ef < it.depth {
		params.Ef = it.depth
	}
	if len(it.preds) > 0 {
		params = withPred(params, e.Attrs.FilterFunc(it.preds))
	}
	k := it.depth
	if k > e.N {
		k = e.N
	}
	res, err := e.ANN.Search(it.q, k, params)
	if err != nil {
		return err
	}
	it.buffer = res
	it.pos = 0
	prev := it.depth
	it.depth *= 2
	// If deepening returned nothing new and we already cover the
	// collection, stop.
	if len(res) < prev && k == e.N {
		it.done = true
	}
	return nil
}
