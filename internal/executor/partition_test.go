package executor

import (
	"testing"

	"vdbms/internal/dataset"
	"vdbms/internal/filter"
	"vdbms/internal/index"
	"vdbms/internal/index/hnsw"
	"vdbms/internal/planner"
)

func buildPartitioned(t *testing.T, n int) (*Partitioned, *Env, *dataset.Dataset) {
	t.Helper()
	env, ds := buildEnvHelper(t, n)
	p, err := BuildPartitioned(ds.Data, ds.Count, ds.Dim, envAttrs(env), "cat",
		func(data []float32, n, d int) (index.Index, error) {
			if n == 0 {
				return index.NewFlat(nil, 0, d, nil)
			}
			return hnsw.Build(data, n, d, hnsw.Config{M: 8, Seed: 1})
		})
	if err != nil {
		t.Fatal(err)
	}
	return p, env, ds
}

// buildEnvHelper mirrors buildEnv from executor_test.go.
func buildEnvHelper(t *testing.T, n int) (*Env, *dataset.Dataset) {
	t.Helper()
	ds := dataset.Clustered(n, 16, 8, 0.4, 1)
	h, err := hnsw.Build(ds.Data, ds.Count, ds.Dim, hnsw.Config{M: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	attrs := filter.NewTable()
	if _, err := attrs.AddColumn("cat", filter.Int64); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := attrs.AppendRow(map[string]filter.Value{"cat": filter.IntV(int64(i % 10))}); err != nil {
			t.Fatal(err)
		}
	}
	env, err := NewEnv(ds.Data, ds.Count, ds.Dim, nil, h, attrs)
	if err != nil {
		t.Fatal(err)
	}
	return env, ds
}

func envAttrs(e *Env) *filter.Table { return e.Attrs }

func TestPartitionedMatchesOnlineBlocking(t *testing.T) {
	p, env, ds := buildPartitioned(t, 1000)
	if p.Column() != "cat" || len(p.Partitions()) != 10 {
		t.Fatalf("partitions = %v", p.Partitions())
	}
	q := ds.Queries(1, 0.05, 2)[0]
	// Exact reference among cat=3 rows.
	preds := []filter.Predicate{{Column: "cat", Op: filter.Eq, Value: filter.IntV(3)}}
	want, err := env.Execute(planner.Plan{Kind: planner.BruteForce}, q, 10, preds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.SearchEq(q, 10, 3, index.Params{Ef: 200})
	if err != nil {
		t.Fatal(err)
	}
	wantIDs := map[int64]bool{}
	for _, r := range want {
		wantIDs[r.ID] = true
	}
	hits := 0
	for _, r := range got {
		if r.ID%10 != 3 {
			t.Fatalf("partition leak: id %d", r.ID)
		}
		if wantIDs[r.ID] {
			hits++
		}
	}
	if hits < 9 {
		t.Fatalf("offline blocking recall %d/10 vs exact filtered", hits)
	}
}

func TestPartitionedSearchIn(t *testing.T) {
	p, _, ds := buildPartitioned(t, 600)
	q := ds.Queries(1, 0.05, 3)[0]
	got, err := p.SearchIn(q, 10, []int64{1, 4}, index.Params{Ef: 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("got %d results", len(got))
	}
	for _, r := range got {
		if m := r.ID % 10; m != 1 && m != 4 {
			t.Fatalf("IN violated: id %d", r.ID)
		}
	}
}

func TestPartitionedMissingValue(t *testing.T) {
	p, _, ds := buildPartitioned(t, 200)
	got, err := p.SearchEq(ds.Row(0), 5, 999, index.Params{})
	if err != nil || got != nil {
		t.Fatalf("missing partition: %v %v", got, err)
	}
}

func TestPartitionedValidation(t *testing.T) {
	env, ds := buildEnvHelper(t, 100)
	if _, err := BuildPartitioned(ds.Data, ds.Count, ds.Dim, env.Attrs, "nope", nil); err == nil {
		t.Fatal("want unknown-column error")
	}
	if _, err := BuildPartitioned(ds.Data, ds.Count, ds.Dim, env.Attrs, "cat", nil); err == nil {
		t.Fatal("want nil-builder error")
	}
	strAttrs := filter.NewTable()
	strAttrs.AddColumn("s", filter.String) //nolint:errcheck
	if _, err := BuildPartitioned(ds.Data, 0, ds.Dim, strAttrs, "s", func(d []float32, n, dd int) (index.Index, error) { return nil, nil }); err == nil {
		t.Fatal("want type error")
	}
	p, _, _ := buildPartitioned(t, 100)
	if _, err := p.SearchEq([]float32{1}, 5, 0, index.Params{}); err == nil {
		t.Fatal("want dim error")
	}
}
