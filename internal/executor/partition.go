package executor

import (
	"fmt"
	"sort"

	"vdbms/internal/filter"
	"vdbms/internal/index"
	"vdbms/internal/topk"
)

// Offline blocking (Section 2.3(1), [6, 79]): the collection is
// pre-partitioned along an attribute so a query with an equality
// predicate on that attribute searches only the matching partition's
// index — no bitmap, no traversal-time checks, and no recall loss from
// blocking a shared graph. The trade-off is rigidity: only equality
// (or IN) predicates on the partition key benefit, and per-partition
// indexes must be built up front, which is why the paper pairs it
// with online blocking rather than replacing it.

// Partitioned holds one sub-index per distinct value of an Int64
// partition key.
type Partitioned struct {
	column string
	dim    int
	parts  map[int64]*partition
}

type partition struct {
	idx  index.Index
	ids  []int64 // local row -> global id
	data []float32
}

// PartitionBuilder constructs the per-partition ANN index.
type PartitionBuilder func(data []float32, n, d int) (index.Index, error)

// BuildPartitioned splits the rows by the Int64 column and builds one
// index per partition.
func BuildPartitioned(data []float32, n, d int, attrs *filter.Table, column string, build PartitionBuilder) (*Partitioned, error) {
	col, ok := attrs.Column(column)
	if !ok {
		return nil, fmt.Errorf("executor: unknown partition column %q", column)
	}
	if col.Kind() != filter.Int64 {
		return nil, fmt.Errorf("executor: partition column %q must be Int64", column)
	}
	if build == nil {
		return nil, fmt.Errorf("executor: nil partition builder")
	}
	groups := map[int64][]int64{}
	for row := 0; row < n; row++ {
		v := col.Get(row).I
		groups[v] = append(groups[v], int64(row))
	}
	p := &Partitioned{column: column, dim: d, parts: map[int64]*partition{}}
	// Deterministic build order.
	keys := make([]int64, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, key := range keys {
		ids := groups[key]
		sub := make([]float32, 0, len(ids)*d)
		for _, id := range ids {
			sub = append(sub, data[int(id)*d:(int(id)+1)*d]...)
		}
		idx, err := build(sub, len(ids), d)
		if err != nil {
			return nil, fmt.Errorf("executor: partition %s=%d: %w", column, key, err)
		}
		p.parts[key] = &partition{idx: idx, ids: ids, data: sub}
	}
	return p, nil
}

// Column returns the partition key column name.
func (p *Partitioned) Column() string { return p.column }

// Partitions returns the distinct key values, sorted.
func (p *Partitioned) Partitions() []int64 {
	out := make([]int64, 0, len(p.parts))
	for k := range p.parts {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// SearchEq answers a query predicated on column = value by searching
// only that partition. Ids in the results are global row ids. A value
// with no partition returns no results (nothing satisfies the
// predicate).
func (p *Partitioned) SearchEq(q []float32, k int, value int64, params index.Params) ([]topk.Result, error) {
	if len(q) != p.dim {
		return nil, fmt.Errorf("%w: query %d, index %d", index.ErrDim, len(q), p.dim)
	}
	part, ok := p.parts[value]
	if !ok {
		return nil, nil
	}
	res, err := part.idx.Search(q, k, params)
	if err != nil {
		return nil, err
	}
	out := make([]topk.Result, len(res))
	for i, r := range res {
		out[i] = topk.Result{ID: part.ids[r.ID], Dist: r.Dist}
	}
	return out, nil
}

// SearchIn answers column IN (values...) by scatter-gathering over the
// matching partitions.
func (p *Partitioned) SearchIn(q []float32, k int, values []int64, params index.Params) ([]topk.Result, error) {
	c := topk.NewCollector(k)
	for _, v := range values {
		res, err := p.SearchEq(q, k, v, params)
		if err != nil {
			return nil, err
		}
		for _, r := range res {
			c.Push(r.ID, r.Dist)
		}
	}
	return c.Results(), nil
}
