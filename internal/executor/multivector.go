package executor

import (
	"fmt"
	"sort"

	"vdbms/internal/topk"
	"vdbms/internal/vec"
)

// Multi-vector queries (Section 2.1(3)): entities are represented by
// several vectors (faces from different angles, passages of one
// document) and scored with an aggregate function. The paper notes
// generic top-k techniques do not map onto vector indexes, so the
// executor offers two strategies:
//
//   - exact: aggregate-score every entity (correct, O(entities));
//   - candidate generation: run one ANN search per query vector,
//     union the owning entities, aggregate-score only those — the
//     "vector query optimization" strategy of Milvus [79].

// EntityMap maps each vector row id to its owning entity, supporting
// multi-vector entities over a flat vector collection.
type EntityMap struct {
	owner    []int64           // row id -> entity id
	members  map[int64][]int32 // entity id -> row ids
	entities []int64           // stable order
}

// NewEntityMap builds the mapping from a row->entity assignment.
func NewEntityMap(owner []int64) *EntityMap {
	m := &EntityMap{owner: owner, members: map[int64][]int32{}}
	for row, ent := range owner {
		if _, seen := m.members[ent]; !seen {
			m.entities = append(m.entities, ent)
		}
		m.members[ent] = append(m.members[ent], int32(row))
	}
	return m
}

// Entities returns the distinct entity ids in first-seen order.
func (m *EntityMap) Entities() []int64 { return m.entities }

// Members returns the vector rows of an entity.
func (m *EntityMap) Members(ent int64) []int32 { return m.members[ent] }

// Owner returns the entity owning a row.
func (m *EntityMap) Owner(row int64) int64 { return m.owner[row] }

// MultiVectorExact scores every entity by the aggregate of pairwise
// distances between the query vectors and the entity's vectors.
func (e *Env) MultiVectorExact(m *EntityMap, agg vec.Aggregator, queries [][]float32, weights []float32, k int) ([]topk.Result, error) {
	if k <= 0 {
		return nil, fmt.Errorf("executor: k must be positive")
	}
	for _, q := range queries {
		if len(q) != e.Dim {
			return nil, fmt.Errorf("executor: multi-vector query dim %d, env %d", len(q), e.Dim)
		}
	}
	c := topk.NewCollector(k)
	for _, ent := range m.Entities() {
		rows := m.Members(ent)
		entityVecs := make([][]float32, len(rows))
		for i, r := range rows {
			entityVecs[i] = e.Data[int(r)*e.Dim : (int(r)+1)*e.Dim]
		}
		d := vec.AggregateDistance(agg, e.Fn, queries, entityVecs, weights)
		c.Push(ent, d)
	}
	return c.Results(), nil
}

// MultiVectorANN generates candidate entities by running one ANN
// search of width fanout per query vector, then aggregate-scores only
// the union — trading a small recall loss for large speedups when
// entities are many.
func (e *Env) MultiVectorANN(m *EntityMap, agg vec.Aggregator, queries [][]float32, weights []float32, k, fanout int, opts Options) ([]topk.Result, error) {
	if k <= 0 {
		return nil, fmt.Errorf("executor: k must be positive")
	}
	if fanout <= 0 {
		fanout = 4 * k
	}
	cands := map[int64]struct{}{}
	for _, q := range queries {
		res, err := e.indexOrFlat(q, fanout, opts)
		if err != nil {
			return nil, err
		}
		for _, r := range res {
			cands[m.Owner(r.ID)] = struct{}{}
		}
	}
	// Deterministic iteration for reproducible results.
	ids := make([]int64, 0, len(cands))
	for ent := range cands {
		ids = append(ids, ent)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	c := topk.NewCollector(k)
	for _, ent := range ids {
		rows := m.Members(ent)
		entityVecs := make([][]float32, len(rows))
		for i, r := range rows {
			entityVecs[i] = e.Data[int(r)*e.Dim : (int(r)+1)*e.Dim]
		}
		c.Push(ent, vec.AggregateDistance(agg, e.Fn, queries, entityVecs, weights))
	}
	return c.Results(), nil
}
