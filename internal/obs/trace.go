package obs

import (
	"context"
	"sync"
	"time"
)

// Trace is a per-query span tree: each pipeline stage (plan, filter,
// index probe, top-k merge, shard fan-out, ...) opens a child span
// under the root and records its duration plus integer annotations
// (probe counts, visited nodes, retries). All methods are safe on a
// nil receiver and no-op, so instrumented code paths pay only a nil
// check when tracing is off.
type Trace struct {
	root *Span
}

// NewTrace starts a trace whose root span is named stage.
func NewTrace(stage string) *Trace {
	return &Trace{root: newSpan(stage)}
}

// Root returns the root span (nil on a nil trace).
func (t *Trace) Root() *Span {
	if t == nil {
		return nil
	}
	return t.root
}

// Finish ends the root span and returns the report (nil on a nil
// trace).
func (t *Trace) Finish() *SpanReport {
	if t == nil {
		return nil
	}
	t.root.End()
	r := t.root.Report()
	return &r
}

// Span is one timed stage. Child spans record sub-stages; Annotate
// and Tag attach counters and strings. Spans are safe for concurrent
// use (the distributed fan-out opens per-shard children from separate
// goroutines).
type Span struct {
	mu       sync.Mutex
	stage    string
	start    time.Time
	dur      time.Duration
	ended    bool
	annots   map[string]int64
	tags     map[string]string
	children []*Span
}

func newSpan(stage string) *Span {
	return &Span{stage: stage, start: time.Now()}
}

// Start opens a child span. Safe (and free) on a nil receiver.
func (s *Span) Start(stage string) *Span {
	if s == nil {
		return nil
	}
	c := newSpan(stage)
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// End records the span's duration. Later calls are ignored.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.ended {
		s.dur = time.Since(s.start)
		s.ended = true
	}
	s.mu.Unlock()
}

// Annotate adds v to the integer annotation key.
func (s *Span) Annotate(key string, v int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.annots == nil {
		s.annots = map[string]int64{}
	}
	s.annots[key] += v
	s.mu.Unlock()
}

// Tag sets a string attribute.
func (s *Span) Tag(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.tags == nil {
		s.tags = map[string]string{}
	}
	s.tags[key] = value
	s.mu.Unlock()
}

// Duration returns the recorded duration (elapsed-so-far when the
// span has not ended).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return s.dur
	}
	return time.Since(s.start)
}

// SpanReport is the JSON-serializable form of a span tree.
type SpanReport struct {
	Stage         string            `json:"stage"`
	DurationNanos int64             `json:"duration_ns"`
	Annotations   map[string]int64  `json:"annotations,omitempty"`
	Tags          map[string]string `json:"tags,omitempty"`
	Children      []SpanReport      `json:"children,omitempty"`
}

// Report materializes the span tree. Unended spans report elapsed
// time so far.
func (s *Span) Report() SpanReport {
	if s == nil {
		return SpanReport{}
	}
	s.mu.Lock()
	dur := s.dur
	if !s.ended {
		dur = time.Since(s.start)
	}
	r := SpanReport{Stage: s.stage, DurationNanos: int64(dur)}
	if len(s.annots) > 0 {
		r.Annotations = make(map[string]int64, len(s.annots))
		for k, v := range s.annots {
			r.Annotations[k] = v
		}
	}
	if len(s.tags) > 0 {
		r.Tags = make(map[string]string, len(s.tags))
		for k, v := range s.tags {
			r.Tags[k] = v
		}
	}
	children := make([]*Span, len(s.children))
	copy(children, s.children)
	s.mu.Unlock()
	for _, c := range children {
		r.Children = append(r.Children, c.Report())
	}
	return r
}

type spanCtxKey struct{}

// WithSpan attaches a span to ctx for layers whose signatures cannot
// carry one (the distributed router). A nil span returns ctx
// unchanged.
func WithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanCtxKey{}, s)
}

// SpanFrom returns the span attached to ctx, or nil.
func SpanFrom(ctx context.Context) *Span {
	s, _ := ctx.Value(spanCtxKey{}).(*Span)
	return s
}
