package obs

import (
	"encoding/json"
	"net/http"
	"sort"
	"sync"
	"time"
)

// SlowLogEntry is one retained slow-query exemplar: identifying
// context plus the full span tree of the query, kept as an opaque
// JSON-marshalable value so both the single-node and distributed
// servers can store their own trace shapes.
type SlowLogEntry struct {
	Collection    string    `json:"collection"`
	K             int       `json:"k,omitempty"`
	DurationNanos int64     `json:"duration_ns"`
	When          time.Time `json:"when"`
	Trace         any       `json:"trace,omitempty"`
}

// SlowLog retains the span trees of the slowest N queries seen so
// far — bounded exemplar storage for /debug/slowlog. Offers are
// mutex-guarded, which is fine because only traced queries reach it
// (tracing is opt-in per request or forced by the slow-query log),
// and an offer below the current floor returns after one comparison.
type SlowLog struct {
	capacity int
	mu       sync.Mutex
	entries  []SlowLogEntry // sorted by DurationNanos descending
}

// NewSlowLog creates a log retaining the slowest capacity queries
// (16 when capacity <= 0).
func NewSlowLog(capacity int) *SlowLog {
	if capacity <= 0 {
		capacity = 16
	}
	return &SlowLog{capacity: capacity}
}

var defaultSlowLog = NewSlowLog(0)

// DefaultSlowLog returns the process-wide slow-query exemplar log
// both server binaries feed and expose.
func DefaultSlowLog() *SlowLog { return defaultSlowLog }

// Offer inserts the entry if it ranks among the slowest capacity
// queries retained so far, evicting the fastest retained entry.
func (l *SlowLog) Offer(e SlowLogEntry) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.entries) >= l.capacity && e.DurationNanos <= l.entries[len(l.entries)-1].DurationNanos {
		return
	}
	i := sort.Search(len(l.entries), func(i int) bool {
		return l.entries[i].DurationNanos < e.DurationNanos
	})
	l.entries = append(l.entries, SlowLogEntry{})
	copy(l.entries[i+1:], l.entries[i:])
	l.entries[i] = e
	if len(l.entries) > l.capacity {
		l.entries = l.entries[:l.capacity]
	}
}

// Entries returns the retained exemplars, slowest first.
func (l *SlowLog) Entries() []SlowLogEntry {
	l.mu.Lock()
	out := make([]SlowLogEntry, len(l.entries))
	copy(out, l.entries)
	l.mu.Unlock()
	return out
}

// Len returns the number of retained exemplars.
func (l *SlowLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.entries)
}

// Reset drops every retained exemplar (tests).
func (l *SlowLog) Reset() {
	l.mu.Lock()
	l.entries = nil
	l.mu.Unlock()
}

// SlowLogHandler serves the retained exemplars as JSON
// (GET /debug/slowlog).
func SlowLogHandler(l *SlowLog) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(map[string]any{"slowest": l.Entries()}); err != nil {
			HTTPEncodeErrors.Inc()
		}
	})
}
