// Package obs is the observability layer of the reproduction: a
// dependency-free metrics registry (atomic counters, gauges, and
// fixed-bucket latency histograms cheap enough for the search hot
// path) plus a lightweight per-query span tree (trace.go) and the
// HTTP exposition handlers (http.go). Every subsystem — executor,
// index probes, the distributed router, the fault layer, and both
// server binaries — reports into the process-wide Default registry,
// which is exported as Prometheus text on /metrics and as JSON on
// /debug/stats.
//
// Design constraints, in order: (1) hot-path updates are a handful of
// atomic adds with no allocation and no lock contention (vec lookups
// take a read lock only); (2) no third-party dependencies; (3) the
// exposition format is parseable by a real Prometheus scraper.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing value. Negative increments
// are dropped so exposition never violates counter semantics.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (ignored when negative).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a value that can go up and down.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add shifts the value by delta.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// LatencyBuckets are the default histogram bounds (seconds), spanning
// 100µs in-memory probes to 10s disk/RPC worst cases.
var LatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// BatchBuckets are histogram bounds for batch-size distributions
// (records per WAL group commit), powers of two up to 4096.
var BatchBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096}

// BuildBuckets are histogram bounds (seconds) for index builds, which
// run milliseconds to minutes rather than the microseconds of probes.
var BuildBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120,
}

// Histogram is a fixed-bucket histogram: each Observe is one atomic
// bucket increment plus a CAS on the running sum. Bounds are upper
// bucket edges (inclusive, Prometheus `le` semantics); observations
// above the last bound land in the implicit +Inf bucket.
type Histogram struct {
	bounds  []float64
	counts  []atomic.Int64 // len(bounds)+1; last is +Inf
	count   atomic.Int64
	sumBits atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	bs := make([]float64, len(bounds))
	copy(bs, bounds)
	sort.Float64s(bs)
	return &Histogram{bounds: bs, counts: make([]atomic.Int64, len(bs)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Buckets returns (bounds, per-bucket raw counts); the final count is
// the +Inf bucket.
func (h *Histogram) Buckets() ([]float64, []int64) {
	out := make([]int64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return h.bounds, out
}

// Quantile estimates the q-quantile (q in [0,1]) by linear
// interpolation inside the bucket holding the target rank — the same
// estimate Prometheus's histogram_quantile computes server-side. The
// first bucket interpolates from 0; ranks landing in the +Inf bucket
// return the largest finite bound (the estimate cannot exceed the
// histogram's range). Returns NaN on an empty histogram or q outside
// [0,1].
func (h *Histogram) Quantile(q float64) float64 {
	if q < 0 || q > 1 {
		return math.NaN()
	}
	_, counts := h.Buckets()
	var total int64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return math.NaN()
	}
	rank := q * float64(total)
	cum := int64(0)
	for i, c := range counts {
		if c == 0 {
			continue
		}
		if float64(cum+c) >= rank {
			if i == len(h.bounds) {
				// +Inf bucket: clamp to the largest finite edge.
				if len(h.bounds) == 0 {
					return math.NaN()
				}
				return h.bounds[len(h.bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.bounds[i]
			frac := (rank - float64(cum)) / float64(c)
			if frac < 0 {
				frac = 0
			}
			return lo + (hi-lo)*frac
		}
		cum += c
	}
	// Unreachable: the loop always crosses rank <= total.
	return h.bounds[len(h.bounds)-1]
}

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

// entry is one registered time series (family name + label pairs).
type entry struct {
	family string
	pairs  [][2]string
	kind   metricKind
	c      *Counter
	g      *Gauge
	h      *Histogram
}

func (e *entry) key() string { return e.family + renderLabels(e.pairs) }

// Registry owns a set of metrics. Get-or-create registration is
// idempotent: asking twice for the same name (and kind) returns the
// same metric, so package-level handles and tests cannot collide.
type Registry struct {
	mu      sync.Mutex
	entries map[string]*entry
	help    map[string]string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: map[string]*entry{}, help: map[string]string{}}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry every subsystem reports
// into.
func Default() *Registry { return defaultRegistry }

func (r *Registry) lookup(family string, pairs [][2]string, kind metricKind, mk func() *entry) *entry {
	e := &entry{family: family, pairs: pairs, kind: kind}
	key := e.key()
	r.mu.Lock()
	defer r.mu.Unlock()
	if prev, ok := r.entries[key]; ok {
		if prev.kind != kind {
			panic(fmt.Sprintf("obs: metric %s re-registered with a different kind", key))
		}
		return prev
	}
	e = mk()
	r.entries[key] = e
	return e
}

func (r *Registry) setHelp(family, help string) {
	if help == "" {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.help[family]; !ok {
		r.help[family] = help
	}
}

// NewCounter registers (or returns) an unlabeled counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	r.setHelp(name, help)
	e := r.lookup(name, nil, kindCounter, func() *entry {
		return &entry{family: name, kind: kindCounter, c: &Counter{}}
	})
	return e.c
}

// NewGauge registers (or returns) an unlabeled gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	r.setHelp(name, help)
	e := r.lookup(name, nil, kindGauge, func() *entry {
		return &entry{family: name, kind: kindGauge, g: &Gauge{}}
	})
	return e.g
}

// NewHistogram registers (or returns) an unlabeled histogram with the
// given bucket bounds (LatencyBuckets when nil).
func (r *Registry) NewHistogram(name, help string, bounds []float64) *Histogram {
	if bounds == nil {
		bounds = LatencyBuckets
	}
	r.setHelp(name, help)
	e := r.lookup(name, nil, kindHistogram, func() *entry {
		return &entry{family: name, kind: kindHistogram, h: newHistogram(bounds)}
	})
	return e.h
}

// CounterVec is a family of counters split by one label. With is a
// read-locked map hit after the first call for a given value, cheap
// enough for per-query use.
type CounterVec struct {
	r     *Registry
	name  string
	label string
	mu    sync.RWMutex
	m     map[string]*Counter
}

// NewCounterVec registers a counter family keyed by label.
func (r *Registry) NewCounterVec(name, help, label string) *CounterVec {
	r.setHelp(name, help)
	return &CounterVec{r: r, name: name, label: label, m: map[string]*Counter{}}
}

// With returns the counter for the given label value.
func (v *CounterVec) With(value string) *Counter {
	v.mu.RLock()
	c := v.m[value]
	v.mu.RUnlock()
	if c != nil {
		return c
	}
	pairs := [][2]string{{v.label, value}}
	e := v.r.lookup(v.name, pairs, kindCounter, func() *entry {
		return &entry{family: v.name, pairs: pairs, kind: kindCounter, c: &Counter{}}
	})
	v.mu.Lock()
	v.m[value] = e.c
	v.mu.Unlock()
	return e.c
}

// GaugeVec is a family of gauges split by one label.
type GaugeVec struct {
	r     *Registry
	name  string
	label string
	mu    sync.RWMutex
	m     map[string]*Gauge
}

// NewGaugeVec registers a gauge family keyed by label.
func (r *Registry) NewGaugeVec(name, help, label string) *GaugeVec {
	r.setHelp(name, help)
	return &GaugeVec{r: r, name: name, label: label, m: map[string]*Gauge{}}
}

// With returns the gauge for the given label value.
func (v *GaugeVec) With(value string) *Gauge {
	v.mu.RLock()
	g := v.m[value]
	v.mu.RUnlock()
	if g != nil {
		return g
	}
	pairs := [][2]string{{v.label, value}}
	e := v.r.lookup(v.name, pairs, kindGauge, func() *entry {
		return &entry{family: v.name, pairs: pairs, kind: kindGauge, g: &Gauge{}}
	})
	v.mu.Lock()
	v.m[value] = e.g
	v.mu.Unlock()
	return e.g
}

// HistogramVec is a family of histograms split by one label.
type HistogramVec struct {
	r      *Registry
	name   string
	label  string
	bounds []float64
	mu     sync.RWMutex
	m      map[string]*Histogram
}

// NewHistogramVec registers a histogram family keyed by label.
func (r *Registry) NewHistogramVec(name, help, label string, bounds []float64) *HistogramVec {
	if bounds == nil {
		bounds = LatencyBuckets
	}
	r.setHelp(name, help)
	return &HistogramVec{r: r, name: name, label: label, bounds: bounds, m: map[string]*Histogram{}}
}

// With returns the histogram for the given label value.
func (v *HistogramVec) With(value string) *Histogram {
	v.mu.RLock()
	h := v.m[value]
	v.mu.RUnlock()
	if h != nil {
		return h
	}
	pairs := [][2]string{{v.label, value}}
	e := v.r.lookup(v.name, pairs, kindHistogram, func() *entry {
		return &entry{family: v.name, pairs: pairs, kind: kindHistogram, h: newHistogram(v.bounds)}
	})
	v.mu.Lock()
	v.m[value] = e.h
	v.mu.Unlock()
	return e.h
}

func renderLabels(pairs [][2]string) string {
	if len(pairs) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", p[0], escapeLabel(p[1]))
	}
	b.WriteByte('}')
	return b.String()
}

// renderLabelsWith appends one extra pair (used for histogram `le`).
func renderLabelsWith(pairs [][2]string, k, v string) string {
	all := make([][2]string, 0, len(pairs)+1)
	all = append(all, pairs...)
	all = append(all, [2]string{k, v})
	return renderLabels(all)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return s
}

// formatFloat renders values the way Prometheus clients do.
func formatFloat(f float64) string {
	switch {
	case math.IsInf(f, 1):
		return "+Inf"
	case math.IsInf(f, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// snapshot returns the registered entries sorted by family then
// labels, for deterministic exposition.
func (r *Registry) snapshot() ([]*entry, map[string]string) {
	r.mu.Lock()
	out := make([]*entry, 0, len(r.entries))
	for _, e := range r.entries {
		out = append(out, e)
	}
	help := make(map[string]string, len(r.help))
	for k, v := range r.help {
		help[k] = v
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].family != out[j].family {
			return out[i].family < out[j].family
		}
		return renderLabels(out[i].pairs) < renderLabels(out[j].pairs)
	})
	return out, help
}

// WritePrometheus writes the registry in the Prometheus text
// exposition format (version 0.0.4).
func (r *Registry) WritePrometheus(w io.Writer) error {
	entries, help := r.snapshot()
	lastFamily := ""
	for _, e := range entries {
		if e.family != lastFamily {
			lastFamily = e.family
			if h := help[e.family]; h != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", e.family, h); err != nil {
					return err
				}
			}
			typ := "counter"
			switch e.kind {
			case kindGauge:
				typ = "gauge"
			case kindHistogram:
				typ = "histogram"
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", e.family, typ); err != nil {
				return err
			}
		}
		switch e.kind {
		case kindCounter:
			if _, err := fmt.Fprintf(w, "%s%s %d\n", e.family, renderLabels(e.pairs), e.c.Value()); err != nil {
				return err
			}
		case kindGauge:
			if _, err := fmt.Fprintf(w, "%s%s %s\n", e.family, renderLabels(e.pairs), formatFloat(e.g.Value())); err != nil {
				return err
			}
		case kindHistogram:
			bounds, counts := e.h.Buckets()
			cum := int64(0)
			for i, b := range bounds {
				cum += counts[i]
				if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
					e.family, renderLabelsWith(e.pairs, "le", formatFloat(b)), cum); err != nil {
					return err
				}
			}
			cum += counts[len(bounds)]
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
				e.family, renderLabelsWith(e.pairs, "le", "+Inf"), cum); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_sum%s %s\n",
				e.family, renderLabels(e.pairs), formatFloat(e.h.Sum())); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_count%s %d\n",
				e.family, renderLabels(e.pairs), e.h.Count()); err != nil {
				return err
			}
		}
	}
	return nil
}

// Snapshot returns a JSON-friendly view of every registered metric,
// used by the /debug/stats endpoint.
func (r *Registry) Snapshot() map[string]any {
	entries, _ := r.snapshot()
	counters := map[string]int64{}
	gauges := map[string]float64{}
	hists := map[string]map[string]any{}
	for _, e := range entries {
		key := e.key()
		switch e.kind {
		case kindCounter:
			counters[key] = e.c.Value()
		case kindGauge:
			gauges[key] = e.g.Value()
		case kindHistogram:
			bounds, counts := e.h.Buckets()
			buckets := map[string]int64{}
			cum := int64(0)
			for i, b := range bounds {
				cum += counts[i]
				buckets[formatFloat(b)] = cum
			}
			buckets["+Inf"] = cum + counts[len(bounds)]
			hv := map[string]any{
				"count":   e.h.Count(),
				"sum":     e.h.Sum(),
				"buckets": buckets,
			}
			// Interpolated quantiles so /debug/stats answers "what's
			// p99" without a Prometheus server doing the bucket math.
			if e.h.Count() > 0 {
				hv["p50"] = e.h.Quantile(0.50)
				hv["p95"] = e.h.Quantile(0.95)
				hv["p99"] = e.h.Quantile(0.99)
			}
			hists[key] = hv
		}
	}
	return map[string]any{
		"counters":   counters,
		"gauges":     gauges,
		"histograms": hists,
	}
}
