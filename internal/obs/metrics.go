package obs

// Shared metric handles. Every metric name the engine emits is
// declared here, in one place, against the Default registry;
// subsystems import the handle rather than re-registering by name.
var (
	// Search path (internal/core via the public Collection API).
	// Latency is labeled by collection so regressions are attributable
	// to the workload that causes them (same pattern as
	// DistShardLatency); unlabeled sums come from aggregating in the
	// scraper.
	SearchTotal   = Default().NewCounter("vdbms_search_total", "Completed Collection.Search calls.")
	SearchErrors  = Default().NewCounter("vdbms_search_errors_total", "Collection.Search calls that returned an error.")
	SearchLatency = Default().NewHistogramVec("vdbms_search_latency_seconds", "End-to-end Collection.Search latency by collection.", "collection", nil)
	SearchPlans   = Default().NewCounterVec("vdbms_search_plan_total", "Searches by executed plan.", "plan")

	// Stage-level latency decomposition (internal/executor,
	// internal/core, internal/dist): where each millisecond of a query
	// goes, independent of tracing. Stages: plan, filter, index_probe,
	// post_filter, range_scan, topk_merge, shard_fanout,
	// wal_commit_wait.
	SearchStageSeconds = Default().NewHistogramVec("vdbms_search_stage_seconds", "Query latency decomposed by pipeline stage.", "stage", nil)

	// Online recall auditing (internal/core + internal/stats): a
	// reservoir of live queries is periodically replayed against an
	// exact scan on a pinned snapshot; the gauge is the latest audited
	// recall@k per collection, the operational answer to "what recall
	// are we actually serving".
	RecallObserved     = Default().NewGaugeVec("vdbms_recall_observed", "Observed recall@k from the most recent audit, by collection.", "collection")
	RecallAudits       = Default().NewCounterVec("vdbms_recall_audit_total", "Recall audit passes by outcome (ok, regression, empty, error).", "outcome")
	RecallAuditSamples = Default().NewCounter("vdbms_recall_audit_samples_total", "Reservoir samples replayed by recall audits.")
	RecallAuditSeconds = Default().NewHistogram("vdbms_recall_audit_seconds", "Wall-clock duration of recall audit passes.", BuildBuckets)

	// Background index builds (internal/core). The state gauge is 1
	// while a collection's builder goroutine is running, 0 otherwise;
	// scraping it against search latency shows whether queries ride
	// through builds untouched (they must — builds never run on the
	// query path).
	IndexBuildState    = Default().NewGaugeVec("vdbms_index_build_state", "1 while a background index build is running for the collection, else 0.", "collection")
	IndexBuildsTotal   = Default().NewCounterVec("vdbms_index_build_total", "Completed background index builds by outcome (installed, stale, failed).", "outcome")
	IndexBuildSeconds  = Default().NewHistogram("vdbms_index_build_seconds", "Wall-clock duration of ANN index builds (background and CreateIndex).", BuildBuckets)
	IndexBuildLastSecs = Default().NewGauge("vdbms_index_build_last_seconds", "Duration of the most recent completed index build.")

	// Intra-query parallelism (internal/pool and the partitioned scans
	// in flat/IVF/LSM). PoolInline counts tasks that ran on the
	// submitting goroutine because the pool was saturated — the
	// parallel-efficiency signal: inline/tasks near 1 means fan-out is
	// oversubscribed and queries are effectively serial.
	PoolTasks        = Default().NewCounter("vdbms_pool_tasks_total", "Tasks submitted to the shared worker pool.")
	PoolInline       = Default().NewCounter("vdbms_pool_inline_total", "Pool tasks run inline on the caller because all workers were busy.")
	ParallelSearches = Default().NewCounterVec("vdbms_parallel_search_total", "Searches that partitioned work across >1 worker, by site.", "site")

	// Index probes (internal/executor and dist.LocalShard).
	IndexProbes        = Default().NewCounterVec("vdbms_index_probe_total", "Index probe calls by index family.", "index")
	IndexDistanceComps = Default().NewCounterVec("vdbms_index_distance_comps_total", "Full-vector distance computations by index family.", "index")
	IndexNodesVisited  = Default().NewCounterVec("vdbms_index_nodes_visited_total", "Graph nodes visited during probes by index family.", "index")
	IndexBucketsProbed = Default().NewCounterVec("vdbms_index_buckets_probed_total", "IVF/LSH buckets scanned by index family.", "index")
	IndexIOReads       = Default().NewCounterVec("vdbms_index_io_reads_total", "Disk record reads by index family.", "index")
	IndexPartitions    = Default().NewCounterVec("vdbms_index_partitions_total", "Parallel scan partitions executed by index family.", "index")

	// Distributed read path (internal/dist).
	DistSearches      = Default().NewCounter("vdbms_dist_search_total", "Scatter-gather searches started.")
	DistPartial       = Default().NewCounter("vdbms_dist_partial_total", "Scatter-gather searches that returned partial coverage.")
	DistShardFailures = Default().NewCounterVec("vdbms_dist_shard_failures_total", "Per-shard call failures (after retries).", "shard")
	DistShardLatency  = Default().NewHistogramVec("vdbms_dist_shard_latency_seconds", "Per-shard call latency including retries.", "shard", nil)
	DistRetries       = Default().NewCounter("vdbms_dist_retry_total", "Shard call retry attempts beyond the first.")
	ReplicaFailovers  = Default().NewCounter("vdbms_replica_failover_total", "Replica calls that failed and fell through to the next replica.")

	// Fault layer (internal/fault breakers, wired by internal/dist).
	BreakerTransitions = Default().NewCounterVec("vdbms_breaker_transitions_total", "Circuit breaker state transitions by destination state.", "to")
	ShardBreakerState  = Default().NewGaugeVec("vdbms_shard_breaker_state", "Router shard breaker position (0=closed 1=open 2=half-open).", "shard")

	// Durable write path (internal/wal + internal/core). Batch size is
	// the group-commit health signal: mean records per batch near 1
	// under concurrent writers means commits are not being amortized.
	WALAppends         = Default().NewCounter("vdbms_wal_appends_total", "Records appended to the write-ahead log.")
	WALAppendBytes     = Default().NewCounter("vdbms_wal_append_bytes_total", "Framed bytes appended to the write-ahead log.")
	WALFsyncs          = Default().NewCounter("vdbms_wal_fsync_total", "fsync calls issued by the WAL committer.")
	WALFsyncSeconds    = Default().NewHistogram("vdbms_wal_fsync_seconds", "Duration of WAL fsync calls.", nil)
	WALBatchRecords    = Default().NewHistogram("vdbms_wal_batch_records", "Records per group-commit batch.", BatchBuckets)
	WALRotations       = Default().NewCounter("vdbms_wal_rotations_total", "WAL segment rotations.")
	WALSegmentsRemoved = Default().NewCounter("vdbms_wal_segments_removed_total", "Obsolete WAL segments deleted after checkpoints.")
	WALReplayedRecords = Default().NewCounter("vdbms_wal_replayed_records_total", "WAL records replayed during recovery.")
	WALTornTails       = Default().NewCounter("vdbms_wal_torn_tails_total", "Recoveries that truncated a torn tail off the log.")
	WALRecoveries      = Default().NewCounterVec("vdbms_wal_recovery_total", "Crash recoveries by outcome (ok, failed).", "outcome")

	// Incremental checkpoints (internal/core). A checkpoint serializes
	// a pinned epoch snapshot off the write path, then truncates the
	// WAL segments it covers.
	CheckpointsTotal  = Default().NewCounterVec("vdbms_checkpoint_total", "Checkpoint attempts by outcome (written, skipped, failed).", "outcome")
	CheckpointSeconds = Default().NewHistogram("vdbms_checkpoint_seconds", "Wall-clock duration of checkpoint writes.", BuildBuckets)
	CheckpointLastLSN = Default().NewGauge("vdbms_checkpoint_last_lsn", "LSN covered by the most recent checkpoint.")
	CheckpointBytes   = Default().NewGauge("vdbms_checkpoint_last_bytes", "Size of the most recent checkpoint file.")

	// Memory tier (internal/memory + internal/core + internal/server).
	// Resident bytes are push-accounted by owners (vector columns,
	// index structures, quantized codes, WAL buffers, page caches), so
	// the gauges reflect what the engine believes it holds; RSS and
	// major faults are sampled from /proc as the ground-truth check —
	// a page-fault-rate proxy for how hard the mmap tier is working.
	MemBudgetBytes   = Default().NewGauge("vdbms_mem_budget_bytes", "Configured process memory budget in bytes (0 = unlimited).")
	MemResidentBytes = Default().NewGauge("vdbms_mem_resident_bytes", "Accounted resident bytes across all collections.")
	MemCategoryBytes = Default().NewGaugeVec("vdbms_mem_category_bytes", "Accounted resident bytes by category (vectors, index, quant_codes, wal_buffers, page_cache).", "category")
	MemStage         = Default().NewGauge("vdbms_mem_stage", "Degradation ladder position (0=normal 1=drop_caches 2=evict 3=shed).")
	MemStageChanges  = Default().NewCounterVec("vdbms_mem_stage_transitions_total", "Degradation ladder transitions by destination stage.", "to")
	MemEvictions     = Default().NewCounter("vdbms_mem_evictions_total", "Collection float columns evicted to the mmap tier.")
	MemPromotions    = Default().NewCounter("vdbms_mem_promotions_total", "Collection float columns promoted from mmap back to heap.")
	MemCacheDrops    = Default().NewCounter("vdbms_mem_cache_drops_total", "Cache-drop sweeps performed by the budget manager.")
	MemShedTotal     = Default().NewCounter("vdbms_mem_shed_total", "Requests shed with 503 because the ladder reached the shed stage.")
	MemRSSBytes      = Default().NewGauge("vdbms_mem_rss_bytes", "Process resident set size sampled from /proc/self/statm.")
	MemMajorFaults   = Default().NewGauge("vdbms_mem_major_faults_total", "Cumulative process major page faults sampled from /proc/self/stat.")

	// Adaptive query optimization (internal/core tune.go + planner).
	// The param-source counter decomposes every search by where its
	// Ef/NProbe came from (explicit, tuned, safe_default,
	// collection_default, index_default) — the observability spine of
	// the feedback loop: "tuned" rising and "safe_default" falling is
	// the tuner converging. Reselect counts drift-triggered index
	// re-selection decisions handed to the background builder (the
	// build outcome itself lands in vdbms_index_build_total).
	PlanParamSource = Default().NewCounterVec("vdbms_plan_param_source_total", "Searches by the layer that resolved their Ef/NProbe search parameters.", "source")
	PlanReselects   = Default().NewCounterVec("vdbms_plan_reselect_total", "Drift-triggered index re-selection decisions by kind (build_graph, strengthen, partition).", "decision")

	// Recall-SLO tuner passes (internal/core tune.go): each pass
	// replays reservoir samples at every candidate parameter value
	// against exact ground truth and refreshes the recall-vs-cost
	// frontier. The gauges track, per collection, the parameter the
	// dominant k-bucket currently resolves to and the best trusted
	// recall on its frontier (sagging below the target while tuning is
	// exhausted is the drift detector's rebuild signal).
	TunePasses         = Default().NewCounterVec("vdbms_tune_passes_total", "Auto-tune passes by outcome (ok, empty, no_index, error).", "outcome")
	TuneSamples        = Default().NewCounter("vdbms_tune_samples_total", "Reservoir samples replayed by auto-tune passes.")
	TuneSeconds        = Default().NewHistogram("vdbms_tune_pass_seconds", "Wall-clock duration of auto-tune passes.", BuildBuckets)
	TuneResolvedParam  = Default().NewGaugeVec("vdbms_tune_resolved_param", "Search parameter (ef or nprobe) the tuner currently resolves for the collection's dominant k.", "collection")
	TuneFrontierRecall = Default().NewGaugeVec("vdbms_tune_frontier_recall", "Best trusted recall on the collection's recall-vs-cost frontier at the dominant k.", "collection")

	// HTTP layer (internal/server).
	HTTPRequests     = Default().NewCounterVec("vdbms_http_requests_total", "HTTP requests by endpoint.", "path")
	HTTPEncodeErrors = Default().NewCounter("vdbms_http_encode_errors_total", "Response bodies that failed to JSON-encode mid-write.")
	PartialResponses = Default().NewCounter("vdbms_http_partial_responses_total", "HTTP search responses served with partial shard coverage.")
	SlowQueries      = Default().NewCounter("vdbms_slow_query_total", "Queries exceeding the slow-query log threshold.")
)

func init() {
	// Vec series materialize on first With(); pre-seed the breaker
	// transition counters so every /metrics scrape shows the family at
	// zero instead of the series appearing only after the first trip.
	for _, to := range []string{"closed", "open", "half-open"} {
		BreakerTransitions.With(to)
	}
	for _, outcome := range []string{"ok", "regression", "empty", "error"} {
		RecallAudits.With(outcome)
	}
	for _, to := range []string{"normal", "drop_caches", "evict", "shed"} {
		MemStageChanges.With(to)
	}
	for _, cat := range []string{"vectors", "index", "quant_codes", "wal_buffers", "page_cache"} {
		MemCategoryBytes.With(cat)
	}
	for _, src := range []string{"explicit", "tuned", "safe_default", "collection_default", "index_default"} {
		PlanParamSource.With(src)
	}
	for _, d := range []string{"build_graph", "strengthen", "partition"} {
		PlanReselects.With(d)
	}
	for _, outcome := range []string{"ok", "empty", "no_index", "error"} {
		TunePasses.With(outcome)
	}
}
