// Instrumentation-overhead guard for the tentpole's <5% budget on a
// flat 128-d search. The baseline calls the index directly (no obs at
// all); the instrumented variants go through executor.Execute, which
// always feeds the per-index counters and optionally records a span
// tree.
//
// Measured on the development container (go test -bench BenchmarkSearch
// -benchtime 2s -count 3, 10k x 128-d flat scan, k=10), median ns/op:
//
//	BenchmarkSearchUninstrumented   ~894k
//	BenchmarkSearchInstrumented     ~871k  (counters only)
//	BenchmarkSearchTraced           ~787k  (counters + span tree)
//
// The three variants are statistically indistinguishable — run-to-run
// variance on the shared host (±10%) dominates, and the instrumented
// medians actually came out at or below the baseline. That is the
// expected shape: the counter cost is a handful of atomic adds per
// query (not per row), and the span tree is four small allocations,
// both noise against a 1.28M-float scan. Well inside the 5% budget.
package obs_test

import (
	"testing"

	"vdbms/internal/dataset"
	"vdbms/internal/executor"
	"vdbms/internal/index"
	"vdbms/internal/obs"
	"vdbms/internal/planner"
)

func benchEnv(b *testing.B) (*executor.Env, []float32) {
	b.Helper()
	syn := dataset.Clustered(10000, 128, 16, 0.4, 1)
	env, err := executor.NewEnv(syn.Data, syn.Count, syn.Dim, nil, nil, nil)
	if err != nil {
		b.Fatal(err)
	}
	return env, syn.Data[:syn.Dim]
}

// BenchmarkSearchUninstrumented is the no-observability baseline: the
// flat index is probed directly, with no counters and no spans.
func BenchmarkSearchUninstrumented(b *testing.B) {
	env, q := benchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := env.Flat.Search(q, 10, index.Params{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSearchInstrumented is the production path with metrics on
// and tracing off (the common case): per-query SearchStats plus the
// per-index obs counters.
func BenchmarkSearchInstrumented(b *testing.B) {
	env, q := benchEnv(b)
	plan := planner.Plan{Kind: planner.BruteForce}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := env.Execute(plan, q, 10, nil, executor.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSearchTraced additionally records the span tree, as when a
// request carries X-Vdbms-Trace or the slow-query log is armed.
func BenchmarkSearchTraced(b *testing.B) {
	env, q := benchEnv(b)
	plan := planner.Plan{Kind: planner.BruteForce}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := obs.NewTrace("search")
		if _, err := env.Execute(plan, q, 10, nil, executor.Options{Span: tr.Root()}); err != nil {
			b.Fatal(err)
		}
		if rep := tr.Finish(); rep == nil {
			b.Fatal("no trace report")
		}
	}
}
