package obs

import (
	"bufio"
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync"
	"testing"
)

func TestCounterMonotonic(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	c.Add(-7) // dropped: counters never go down
	if got := c.Value(); got != 5 {
		t.Fatalf("Value() = %d, want 5", got)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("Value() = %v, want 1.5", got)
	}
}

func TestHistogramBucketSums(t *testing.T) {
	h := newHistogram([]float64{0.01, 0.1, 1})
	obsd := []float64{0.005, 0.05, 0.05, 0.5, 5}
	for _, v := range obsd {
		h.Observe(v)
	}
	if got := h.Count(); got != int64(len(obsd)) {
		t.Fatalf("Count() = %d, want %d", got, len(obsd))
	}
	wantSum := 0.0
	for _, v := range obsd {
		wantSum += v
	}
	if got := h.Sum(); math.Abs(got-wantSum) > 1e-12 {
		t.Fatalf("Sum() = %v, want %v", got, wantSum)
	}
	_, counts := h.Buckets()
	if want := []int64{1, 2, 1, 1}; len(counts) != len(want) {
		t.Fatalf("bucket count = %d, want %d", len(counts), len(want))
	} else {
		total := int64(0)
		for i, c := range counts {
			if c != want[i] {
				t.Fatalf("bucket[%d] = %d, want %d", i, c, want[i])
			}
			total += c
		}
		// Invariant: raw bucket counts sum to the observation count.
		if total != h.Count() {
			t.Fatalf("bucket sum %d != count %d", total, h.Count())
		}
	}
}

func TestRegistryIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.NewCounter("x_total", "")
	b := r.NewCounter("x_total", "")
	if a != b {
		t.Fatal("re-registering the same counter returned a new instance")
	}
	v := r.NewCounterVec("y_total", "", "kind")
	if v.With("a") != v.With("a") {
		t.Fatal("vec With returned distinct counters for one label value")
	}
	if v.With("a") == v.With("b") {
		t.Fatal("vec With shared a counter across label values")
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("clash", "")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on kind mismatch")
		}
	}()
	r.NewGauge("clash", "")
}

// promMetric is one parsed exposition sample.
type promMetric struct {
	name   string // family + rendered labels
	value  float64
	isInt  bool
	intVal int64
}

// parsePrometheus is a minimal text-format 0.0.4 parser: it validates
// comment structure and returns every sample line.
func parsePrometheus(t *testing.T, text string) (samples map[string]promMetric, types map[string]string) {
	t.Helper()
	samples = map[string]promMetric{}
	types = map[string]string{}
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			if _, dup := types[parts[2]]; dup {
				t.Fatalf("TYPE emitted twice for family %s", parts[2])
			}
			types[parts[2]] = parts[3]
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("unknown comment line: %q", line)
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("malformed sample line: %q", line)
		}
		name, val := line[:sp], line[sp+1:]
		m := promMetric{name: name}
		if iv, err := strconv.ParseInt(val, 10, 64); err == nil {
			m.isInt = true
			m.intVal = iv
			m.value = float64(iv)
		} else {
			fv, err := strconv.ParseFloat(val, 64)
			if err != nil {
				t.Fatalf("unparseable value in %q: %v", line, err)
			}
			m.value = fv
		}
		if _, dup := samples[name]; dup {
			t.Fatalf("sample %s emitted twice", name)
		}
		samples[name] = m
	}
	return samples, types
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("test_ops_total", "operations")
	c.Add(7)
	g := r.NewGauge("test_depth", "queue depth")
	g.Set(3.5)
	v := r.NewCounterVec("test_probe_total", "probes", "index")
	v.With("hnsw").Add(2)
	v.With("ivf").Inc()
	h := r.NewHistogram("test_latency_seconds", "latency", []float64{0.01, 0.1, 1})
	for _, x := range []float64{0.005, 0.05, 0.5, 2} {
		h.Observe(x)
	}

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	samples, types := parsePrometheus(t, b.String())

	for family, want := range map[string]string{
		"test_ops_total":       "counter",
		"test_depth":           "gauge",
		"test_probe_total":     "counter",
		"test_latency_seconds": "histogram",
	} {
		if types[family] != want {
			t.Errorf("TYPE %s = %q, want %q", family, types[family], want)
		}
	}
	if got := samples["test_ops_total"]; got.intVal != 7 {
		t.Errorf("test_ops_total = %d, want 7", got.intVal)
	}
	if got := samples["test_depth"]; got.value != 3.5 {
		t.Errorf("test_depth = %v, want 3.5", got.value)
	}
	if got := samples[`test_probe_total{index="hnsw"}`]; got.intVal != 2 {
		t.Errorf("hnsw probes = %d, want 2", got.intVal)
	}
	if got := samples[`test_probe_total{index="ivf"}`]; got.intVal != 1 {
		t.Errorf("ivf probes = %d, want 1", got.intVal)
	}

	// Histogram: cumulative buckets are non-decreasing, the +Inf bucket
	// equals _count, and _sum matches the observations.
	cum := []int64{
		samples[`test_latency_seconds_bucket{le="0.01"}`].intVal,
		samples[`test_latency_seconds_bucket{le="0.1"}`].intVal,
		samples[`test_latency_seconds_bucket{le="1"}`].intVal,
		samples[`test_latency_seconds_bucket{le="+Inf"}`].intVal,
	}
	for i := 1; i < len(cum); i++ {
		if cum[i] < cum[i-1] {
			t.Fatalf("bucket counts not cumulative: %v", cum)
		}
	}
	if want := []int64{1, 2, 3, 4}; fmt.Sprint(cum) != fmt.Sprint(want) {
		t.Errorf("cumulative buckets = %v, want %v", cum, want)
	}
	if got := samples["test_latency_seconds_count"]; got.intVal != 4 {
		t.Errorf("_count = %d, want 4", got.intVal)
	}
	if cum[len(cum)-1] != samples["test_latency_seconds_count"].intVal {
		t.Error("+Inf bucket != _count")
	}
	if got := samples["test_latency_seconds_sum"]; math.Abs(got.value-2.555) > 1e-9 {
		t.Errorf("_sum = %v, want 2.555", got.value)
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 8000 {
		t.Fatalf("Value() = %d, want 8000", got)
	}
}
