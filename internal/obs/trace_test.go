package obs

import (
	"context"
	"sync"
	"testing"
	"time"
)

func TestNilTraceIsFree(t *testing.T) {
	var tr *Trace
	if tr.Root() != nil {
		t.Fatal("nil trace Root() should be nil")
	}
	if tr.Finish() != nil {
		t.Fatal("nil trace Finish() should be nil")
	}
	var s *Span
	// Every span method must no-op on nil so instrumentation points pay
	// only a nil check when tracing is off.
	if s.Start("x") != nil {
		t.Fatal("nil span Start() should return nil")
	}
	s.End()
	s.Annotate("k", 1)
	s.Tag("k", "v")
	if s.Duration() != 0 {
		t.Fatal("nil span Duration() should be 0")
	}
}

func TestSpanTree(t *testing.T) {
	tr := NewTrace("search")
	root := tr.Root()
	a := root.Start("plan")
	a.Tag("plan", "pre_filter")
	a.End()
	b := root.Start("index_probe")
	b.Annotate("distance_comps", 40)
	b.Annotate("distance_comps", 2) // accumulates
	time.Sleep(time.Millisecond)
	b.End()
	b.End() // idempotent

	rep := tr.Finish()
	if rep == nil {
		t.Fatal("Finish() returned nil on a live trace")
	}
	if rep.Stage != "search" || len(rep.Children) != 2 {
		t.Fatalf("unexpected tree: %+v", rep)
	}
	if rep.Children[0].Tags["plan"] != "pre_filter" {
		t.Errorf("tag lost: %+v", rep.Children[0])
	}
	if rep.Children[1].Annotations["distance_comps"] != 42 {
		t.Errorf("annotation = %d, want 42", rep.Children[1].Annotations["distance_comps"])
	}
	if rep.Children[1].DurationNanos <= 0 {
		t.Error("child span has no duration")
	}
	// Stage durations nest: every child fits inside the root.
	for _, c := range rep.Children {
		if c.DurationNanos > rep.DurationNanos {
			t.Errorf("child %s (%dns) longer than root (%dns)",
				c.Stage, c.DurationNanos, rep.DurationNanos)
		}
	}
}

func TestSpanConcurrentChildren(t *testing.T) {
	// The distributed fan-out opens per-shard children from separate
	// goroutines; run under -race this verifies the locking.
	root := NewTrace("fanout").Root()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sp := root.Start("shard")
			sp.Annotate("results", 3)
			sp.End()
		}()
	}
	wg.Wait()
	if rep := root.Report(); len(rep.Children) != 16 {
		t.Fatalf("children = %d, want 16", len(rep.Children))
	}
}

func TestSpanContext(t *testing.T) {
	if SpanFrom(context.Background()) != nil {
		t.Fatal("SpanFrom on a bare context should be nil")
	}
	s := NewTrace("x").Root()
	ctx := WithSpan(context.Background(), s)
	if SpanFrom(ctx) != s {
		t.Fatal("WithSpan/SpanFrom did not round-trip")
	}
	// Attaching nil leaves the context untouched.
	if got := WithSpan(ctx, nil); SpanFrom(got) != s {
		t.Fatal("WithSpan(nil) should not clobber the attached span")
	}
}
