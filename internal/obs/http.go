package obs

import (
	"encoding/json"
	"net/http"
	"runtime"
	"time"
)

var processStart = time.Now()

// MetricsHandler serves reg in the Prometheus text exposition format
// (GET /metrics).
func MetricsHandler(reg *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
}

// StatsHandler serves a JSON snapshot of reg plus process runtime
// stats (GET /debug/stats).
func StatsHandler(reg *Registry) http.Handler {
	return StatsHandlerExtras(reg, nil)
}

// StatsHandlerExtras is StatsHandler with caller-supplied sections
// merged into the body at request time — the server uses it to fold
// per-collection online statistics into /debug/stats without obs
// knowing about collections.
func StatsHandlerExtras(reg *Registry, extras func() map[string]any) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		var mem runtime.MemStats
		runtime.ReadMemStats(&mem)
		body := reg.Snapshot()
		if extras != nil {
			for k, v := range extras() {
				body[k] = v
			}
		}
		body["runtime"] = map[string]any{
			"goroutines":     runtime.NumGoroutine(),
			"heap_alloc":     mem.HeapAlloc,
			"total_alloc":    mem.TotalAlloc,
			"num_gc":         mem.NumGC,
			"uptime_seconds": time.Since(processStart).Seconds(),
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(body)
	})
}
