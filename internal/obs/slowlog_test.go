package obs

import (
	"encoding/json"
	"math"
	"net/http/httptest"
	"testing"
)

func TestHistogramQuantile(t *testing.T) {
	h := NewRegistry().NewHistogram("q", "", []float64{1, 2, 4})
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Fatal("empty histogram quantile should be NaN")
	}
	// 10 observations in (1,2], 10 in (2,4].
	for i := 0; i < 10; i++ {
		h.Observe(1.5)
		h.Observe(3)
	}
	// p50: rank 10 falls at the top of the (1,2] bucket.
	if got := h.Quantile(0.5); got != 2 {
		t.Fatalf("p50 = %v, want 2", got)
	}
	// p75: rank 15, halfway through the (2,4] bucket -> 3.
	if got := h.Quantile(0.75); got != 3 {
		t.Fatalf("p75 = %v, want 3", got)
	}
	// p100 is the top edge; quantiles in the first bucket interpolate
	// from zero.
	if got := h.Quantile(1); got != 4 {
		t.Fatalf("p100 = %v, want 4", got)
	}
	h.Observe(0.5) // first bucket
	if got := h.Quantile(0.02); got <= 0 || got > 1 {
		t.Fatalf("low quantile = %v, want in (0,1]", got)
	}
	if !math.IsNaN(h.Quantile(-0.1)) || !math.IsNaN(h.Quantile(1.1)) {
		t.Fatal("out-of-range q should be NaN")
	}
}

func TestHistogramQuantileInfBucketClamps(t *testing.T) {
	h := NewRegistry().NewHistogram("q", "", []float64{1, 2})
	h.Observe(50) // lands in +Inf
	if got := h.Quantile(0.99); got != 2 {
		t.Fatalf("quantile in +Inf bucket = %v, want clamp to 2", got)
	}
}

func TestSnapshotRendersQuantiles(t *testing.T) {
	reg := NewRegistry()
	h := reg.NewHistogram("lat", "", []float64{1, 2, 4})
	for i := 0; i < 100; i++ {
		h.Observe(1.5)
	}
	hists := reg.Snapshot()["histograms"].(map[string]map[string]any)
	m := hists["lat"]
	for _, q := range []string{"p50", "p95", "p99"} {
		v, ok := m[q].(float64)
		if !ok || v <= 1 || v > 2 {
			t.Fatalf("%s = %v, want in (1,2]", q, m[q])
		}
	}
}

func TestSlowLogBoundedAndSorted(t *testing.T) {
	l := NewSlowLog(3)
	for _, d := range []int64{50, 10, 90, 30, 70} {
		l.Offer(SlowLogEntry{Collection: "c", DurationNanos: d})
	}
	entries := l.Entries()
	if len(entries) != 3 {
		t.Fatalf("retained %d entries, want 3", len(entries))
	}
	want := []int64{90, 70, 50}
	for i, e := range entries {
		if e.DurationNanos != want[i] {
			t.Fatalf("entry %d duration = %d, want %d (slowest first)", i, e.DurationNanos, want[i])
		}
	}
	// An offer below the retained floor is rejected.
	l.Offer(SlowLogEntry{DurationNanos: 5})
	if got := l.Entries(); got[len(got)-1].DurationNanos != 50 {
		t.Fatalf("floor entry = %d, want 50", got[len(got)-1].DurationNanos)
	}
	l.Reset()
	if l.Len() != 0 {
		t.Fatalf("reset left %d entries", l.Len())
	}
}

func TestSlowLogHandler(t *testing.T) {
	l := NewSlowLog(4)
	l.Offer(SlowLogEntry{
		Collection:    "c",
		K:             5,
		DurationNanos: 123,
		Trace:         map[string]any{"stage": "search"},
	})
	rec := httptest.NewRecorder()
	SlowLogHandler(l).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/slowlog", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type = %q", ct)
	}
	var body struct {
		Slowest []SlowLogEntry `json:"slowest"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if len(body.Slowest) != 1 || body.Slowest[0].Collection != "c" || body.Slowest[0].DurationNanos != 123 {
		t.Fatalf("body = %+v", body.Slowest)
	}
	if body.Slowest[0].Trace == nil {
		t.Fatal("trace dropped from slowlog entry")
	}
}
