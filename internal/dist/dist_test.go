package dist

import (
	"context"
	"net"
	"testing"

	"vdbms/internal/dataset"
	"vdbms/internal/index"
	"vdbms/internal/index/hnsw"
	"vdbms/internal/vec"
)

// buildShards partitions a dataset and builds one HNSW per shard.
func buildShards(t *testing.T, ds *dataset.Dataset, p Partition) []Shard {
	t.Helper()
	partData, partIDs := SplitRows(ds.Data, ds.Count, ds.Dim, p)
	shards := make([]Shard, p.Parts)
	for i := range shards {
		n := len(partIDs[i])
		var idx index.Index
		var err error
		if n == 0 {
			idx, err = index.NewFlat(nil, 0, ds.Dim, nil)
		} else {
			idx, err = hnsw.Build(partData[i], n, ds.Dim, hnsw.Config{M: 8, Seed: 1})
		}
		if err != nil {
			t.Fatal(err)
		}
		shards[i] = NewLocalShard(idx, partIDs[i])
	}
	return shards
}

func TestScatterGatherMatchesSingleIndex(t *testing.T) {
	ds := dataset.Clustered(2000, 16, 8, 0.4, 1)
	p := PartitionRandom(ds.Count, 4, 7)
	router := NewRouter(buildShards(t, ds, p), nil)
	if router.NumShards() != 4 {
		t.Fatal("shard count wrong")
	}
	qs := ds.Queries(15, 0.05, 2)
	truth := dataset.GroundTruth(vec.SquaredL2, ds, qs, 10)
	var rec float64
	for i, q := range qs {
		got, _, err := router.Search(context.Background(), q, 10, 100)
		if err != nil {
			t.Fatal(err)
		}
		rec += dataset.Recall(got, truth[i])
	}
	if mean := rec / 15; mean < 0.85 {
		t.Fatalf("distributed recall = %v", mean)
	}
}

func TestPartitionRandomBalance(t *testing.T) {
	p := PartitionRandom(10000, 5, 1)
	counts := make([]int, 5)
	for _, a := range p.Assign {
		counts[a]++
	}
	for i, c := range counts {
		if c < 1600 || c > 2400 {
			t.Fatalf("part %d holds %d of 10000", i, c)
		}
	}
}

func TestIndexGuidedRoutingReducesFanOut(t *testing.T) {
	ds := dataset.Clustered(2000, 16, 8, 0.3, 3)
	p, err := PartitionClustered(ds.Data, ds.Count, ds.Dim, 8, 5)
	if err != nil {
		t.Fatal(err)
	}
	router := NewRouter(buildShards(t, ds, p), p.Centroids)
	if router.FanOut(2) != 2 || router.FanOut(0) != 8 || router.FanOut(99) != 8 {
		t.Fatal("FanOut accounting wrong")
	}
	qs := ds.Queries(15, 0.05, 6)
	truth := dataset.GroundTruth(vec.SquaredL2, ds, qs, 10)
	var routedRec float64
	for i, q := range qs {
		got, _, err := router.RoutedSearch(context.Background(), q, 10, 100, 2)
		if err != nil {
			t.Fatal(err)
		}
		routedRec += dataset.Recall(got, truth[i])
	}
	// Probing 2 of 8 cluster-aligned shards must retain most recall.
	if mean := routedRec / 15; mean < 0.75 {
		t.Fatalf("routed recall = %v", mean)
	}
}

func TestRoutedSearchFallsBackWithoutCentroids(t *testing.T) {
	ds := dataset.Uniform(300, 8, 7)
	p := PartitionRandom(ds.Count, 3, 9)
	router := NewRouter(buildShards(t, ds, p), nil)
	full, _, err := router.Search(context.Background(), ds.Row(0), 5, 100)
	if err != nil {
		t.Fatal(err)
	}
	routed, _, err := router.RoutedSearch(context.Background(), ds.Row(0), 5, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(full) != len(routed) {
		t.Fatal("fallback should equal full fan-out")
	}
	for i := range full {
		if full[i].ID != routed[i].ID {
			t.Fatal("fallback results differ")
		}
	}
}

func TestGlobalIDsPreserved(t *testing.T) {
	ds := dataset.Uniform(200, 4, 11)
	p := PartitionRandom(ds.Count, 4, 13)
	router := NewRouter(buildShards(t, ds, p), nil)
	// Query exactly at row 123: top-1 must be global id 123.
	got, _, err := router.Search(context.Background(), ds.Row(123), 1, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].ID != 123 {
		t.Fatalf("got %v, want id 123", got)
	}
}

func TestRPCShardEndToEnd(t *testing.T) {
	ds := dataset.Clustered(600, 8, 4, 0.4, 15)
	p := PartitionRandom(ds.Count, 2, 17)
	local := buildShards(t, ds, p)

	var addrs []string
	for _, s := range local {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { l.Close() })
		if err := ServeShard(l, s); err != nil {
			t.Fatal(err)
		}
		addrs = append(addrs, l.Addr().String())
	}
	var remote []Shard
	for _, a := range addrs {
		rs, err := DialShard(a)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { rs.Close() })
		remote = append(remote, rs)
	}
	if remote[0].Count()+remote[1].Count() != ds.Count {
		t.Fatal("remote counts wrong")
	}
	router := NewRouter(remote, nil)
	got, part, err := router.Search(context.Background(), ds.Row(42), 1, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].ID != 42 {
		t.Fatalf("rpc search = %v", got)
	}
	if !part.Complete() || part.Targeted != 2 || len(part.Answered) != 2 {
		t.Fatalf("partial report for a clean query = %+v", part)
	}
}

func TestDialShardErrors(t *testing.T) {
	if _, err := DialShard("127.0.0.1:1"); err == nil {
		t.Fatal("want dial error")
	}
}
