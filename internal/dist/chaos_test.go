package dist

import (
	"context"
	"reflect"
	"sync"
	"testing"
	"time"

	"vdbms/internal/dataset"
	"vdbms/internal/fault"
	"vdbms/internal/topk"
)

// Seeded chaos-injection tests for the fault-tolerant read path:
// partial results under shard loss, breaker lifecycle on a failing
// primary, and deadline enforcement against hung shards.

// countingShard counts how many searches reach the wrapped shard.
type countingShard struct {
	inner Shard
	mu    sync.Mutex
	calls int
}

func (c *countingShard) Count() int { return c.inner.Count() }

func (c *countingShard) Search(ctx context.Context, q []float32, k, ef int) ([]topk.Result, error) {
	c.mu.Lock()
	c.calls++
	c.mu.Unlock()
	return c.inner.Search(ctx, q, k, ef)
}

func (c *countingShard) callCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.calls
}

// fakeClock drives breaker cooldowns without real sleeps.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (f *fakeClock) now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.t
}

func (f *fakeClock) advance(d time.Duration) {
	f.mu.Lock()
	f.t = f.t.Add(d)
	f.mu.Unlock()
}

// Acceptance scenario 1: with 4 shards and one at 100% error rate,
// the router still returns the correct top-k over the remaining 3
// shards, with a Partial report naming the failed shard.
func TestChaosPartialTopKUnderShardOutage(t *testing.T) {
	ds := dataset.Clustered(2000, 16, 8, 0.4, 1)
	p := PartitionRandom(ds.Count, 4, 7)
	good := buildShards(t, ds, p)

	const downShard = 2
	wired := make([]Shard, 4)
	copy(wired, good)
	wired[downShard] = fault.NewChaosShard(good[downShard], fault.ChaosConfig{ErrorRate: 1, Seed: 11})
	router := NewRouter(wired, nil)

	// Reference: the merge over only the three healthy shards.
	reference := NewRouter([]Shard{good[0], good[1], good[3]}, nil)

	for qi, q := range ds.Queries(10, 0.05, 2) {
		got, part, err := router.Search(context.Background(), q, 10, 100)
		if err != nil {
			t.Fatalf("query %d: partial degradation must not error: %v", qi, err)
		}
		want, refPart, err := reference.Search(context.Background(), q, 10, 100)
		if err != nil || !refPart.Complete() {
			t.Fatalf("reference: %v %+v", err, refPart)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("query %d: partial top-k diverges from healthy-shard merge:\n got %v\nwant %v", qi, got, want)
		}
		if part.Complete() || part.Targeted != 4 {
			t.Fatalf("query %d: partial report = %+v", qi, part)
		}
		if !reflect.DeepEqual(part.Answered, []int{0, 1, 3}) {
			t.Fatalf("query %d: answered = %v", qi, part.Answered)
		}
		if !reflect.DeepEqual(part.FailedShards(), []int{downShard}) {
			t.Fatalf("query %d: failed = %+v", qi, part.Failed)
		}
		if part.Failed[0].Err != fault.ErrInjected.Error() {
			t.Fatalf("query %d: failure message = %q", qi, part.Failed[0].Err)
		}
	}
}

// Acceptance scenario 2: a replica set of 3 where the primary errors
// then recovers — the breaker walks closed → open → half-open →
// closed and traffic returns to the primary.
func TestChaosBreakerLifecycleOnReplicaPrimary(t *testing.T) {
	ds := dataset.Uniform(200, 8, 3)
	backend := newLocal(t, ds)
	primary := fault.NewChaosShard(backend, fault.ChaosConfig{ErrorRate: 1, Seed: 5})
	secondary := &countingShard{inner: backend}
	tertiary := &countingShard{inner: backend}

	clk := &fakeClock{t: time.Unix(1000, 0)}
	rs, err := NewReplicaSetWithBreaker(fault.BreakerConfig{
		FailureThreshold: 1,
		SuccessThreshold: 2, // keeps half-open observable for one extra query
		Cooldown:         time.Minute,
		Now:              clk.now,
	}, primary, secondary, tertiary)
	if err != nil {
		t.Fatal(err)
	}
	search := func() {
		t.Helper()
		res, err := rs.Search(context.Background(), ds.Row(7), 1, 50)
		if err != nil {
			t.Fatal(err)
		}
		if res[0].ID != 7 {
			t.Fatalf("result = %v", res)
		}
	}

	if rs.State(0) != fault.Closed {
		t.Fatal("primary must start closed")
	}
	search() // primary errors -> breaker opens -> secondary serves
	if rs.State(0) != fault.Open {
		t.Fatalf("after primary failure: %v, want open", rs.State(0))
	}
	if secondary.callCount() != 1 {
		t.Fatalf("secondary calls = %d", secondary.callCount())
	}

	primary.SetErrorRate(0) // the primary heals
	search()                // cooldown not elapsed: still failed over
	if rs.State(0) != fault.Open || secondary.callCount() != 2 {
		t.Fatalf("within cooldown: state=%v secondary=%d", rs.State(0), secondary.callCount())
	}

	clk.advance(time.Minute)
	search() // half-open probe hits the recovered primary and succeeds
	if rs.State(0) != fault.HalfOpen {
		t.Fatalf("after first probe: %v, want half-open", rs.State(0))
	}
	search() // second probe success closes the breaker
	if rs.State(0) != fault.Closed {
		t.Fatalf("after second probe: %v, want closed", rs.State(0))
	}

	before := secondary.callCount()
	search() // traffic is back on the primary
	if secondary.callCount() != before {
		t.Fatal("closed primary must take traffic back from the secondary")
	}
	if tertiary.callCount() != 0 {
		t.Fatal("tertiary should never have been needed")
	}
}

// Acceptance scenario 3: a hung shard cannot delay a query past its
// context deadline; the hung shard is charged to the Partial report.
func TestChaosDeadlineBoundsHungShard(t *testing.T) {
	ds := dataset.Clustered(800, 8, 4, 0.4, 9)
	p := PartitionRandom(ds.Count, 4, 13)
	good := buildShards(t, ds, p)

	const hungShard = 1
	wired := make([]Shard, 4)
	copy(wired, good)
	wired[hungShard] = fault.NewChaosShard(good[hungShard], fault.ChaosConfig{HangRate: 1, Seed: 2})
	router := NewRouter(wired, nil)

	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	start := time.Now()
	got, part, err := router.Search(ctx, ds.Row(3), 5, 100)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("three healthy shards answered; want partial success, got %v", err)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("query took %v, deadline was 150ms", elapsed)
	}
	if len(got) != 5 {
		t.Fatalf("got %d results", len(got))
	}
	if !reflect.DeepEqual(part.FailedShards(), []int{hungShard}) {
		t.Fatalf("partial = %+v", part)
	}
	if part.Failed[0].Err != context.DeadlineExceeded.Error() {
		t.Fatalf("hung shard charged with %q", part.Failed[0].Err)
	}

	// Every shard hung: the query errors at the deadline instead of
	// blocking forever.
	allHung := make([]Shard, 4)
	for i := range allHung {
		allHung[i] = fault.NewChaosShard(good[i], fault.ChaosConfig{HangRate: 1, Seed: int64(i + 1)})
	}
	ctx2, cancel2 := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel2()
	start = time.Now()
	_, part2, err := NewRouter(allHung, nil).Search(ctx2, ds.Row(3), 5, 100)
	if err == nil || time.Since(start) > 2*time.Second {
		t.Fatalf("all-hung query: err=%v elapsed=%v", err, time.Since(start))
	}
	if len(part2.Failed) != 4 {
		t.Fatalf("all four shards must be charged: %+v", part2)
	}
}

// A per-shard sub-deadline bounds a slow shard even when the caller
// set no deadline of its own.
func TestShardTimeoutWithoutCallerDeadline(t *testing.T) {
	ds := dataset.Uniform(300, 8, 5)
	p := PartitionRandom(ds.Count, 3, 3)
	good := buildShards(t, ds, p)

	wired := make([]Shard, 3)
	copy(wired, good)
	wired[2] = fault.NewChaosShard(good[2], fault.ChaosConfig{HangRate: 1, Seed: 4})
	router := NewRouter(wired, nil, WithShardTimeout(50*time.Millisecond))

	start := time.Now()
	got, part, err := router.Search(context.Background(), ds.Row(0), 3, 100)
	if err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatalf("sub-deadline did not bound the hung shard: %v", time.Since(start))
	}
	if len(got) == 0 || !reflect.DeepEqual(part.FailedShards(), []int{2}) {
		t.Fatalf("got=%v partial=%+v", got, part)
	}
}

// Retries inside the per-shard budget recover transient failures with
// no partial degradation at all.
func TestRetrierMasksTransientShardFailure(t *testing.T) {
	ds := dataset.Uniform(300, 8, 7)
	p := PartitionRandom(ds.Count, 3, 5)
	good := buildShards(t, ds, p)

	wired := make([]Shard, 3)
	copy(wired, good)
	wired[1] = fault.NewChaosShard(good[1], fault.ChaosConfig{FailFirst: 2, Seed: 6})
	rt := fault.NewRetrier(fault.RetryConfig{MaxAttempts: 3, BaseDelay: time.Millisecond, Seed: 1})
	router := NewRouter(wired, nil, WithRetrier(rt))

	got, part, err := router.Search(context.Background(), ds.Row(0), 1, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !part.Complete() {
		t.Fatalf("retries should mask a 2-failure transient: %+v", part)
	}
	if got[0].ID != 0 {
		t.Fatalf("got %v", got)
	}
}

// WithMinAnswered restores all-or-nothing semantics when a workload
// cannot tolerate partial answers.
func TestMinAnsweredFloor(t *testing.T) {
	ds := dataset.Uniform(300, 8, 9)
	p := PartitionRandom(ds.Count, 3, 7)
	good := buildShards(t, ds, p)

	wired := make([]Shard, 3)
	copy(wired, good)
	wired[0] = fault.NewChaosShard(good[0], fault.ChaosConfig{ErrorRate: 1, Seed: 8})
	strict := NewRouter(wired, nil, WithMinAnswered(3))
	if _, _, err := strict.Search(context.Background(), ds.Row(0), 1, 100); err == nil {
		t.Fatal("strict router must fail when a shard is down")
	}
	lenient := NewRouter(wired, nil)
	if _, part, err := lenient.Search(context.Background(), ds.Row(0), 1, 100); err != nil || len(part.Answered) != 2 {
		t.Fatalf("lenient router: err=%v partial=%+v", err, part)
	}
}
