// Package dist implements distributed search (Section 2.3(2)): the
// collection is partitioned into shards, each with its own ANN index,
// and queries are answered by scatter-gather with a top-k merge.
// Partitioning is either random (uniform load) or index-guided
// (k-means cluster per shard), and index-guided routing lets a query
// probe only the shards whose centroids are closest, shrinking
// fan-out. A net/rpc transport (rpc.go) runs shards as separate
// processes.
package dist

import (
	"fmt"
	"math/rand"
	"sync"

	"vdbms/internal/index"
	"vdbms/internal/kmeans"
	"vdbms/internal/topk"
)

// Shard answers top-k queries over its partition, returning global
// vector ids.
type Shard interface {
	Search(q []float32, k int, ef int) ([]topk.Result, error)
	Count() int
}

// LocalShard wraps an index plus the local-to-global id mapping.
type LocalShard struct {
	idx index.Index
	ids []int64 // local row -> global id
}

// NewLocalShard builds a shard from pre-partitioned rows.
func NewLocalShard(idx index.Index, globalIDs []int64) *LocalShard {
	return &LocalShard{idx: idx, ids: globalIDs}
}

// Count implements Shard.
func (s *LocalShard) Count() int { return len(s.ids) }

// Search implements Shard.
func (s *LocalShard) Search(q []float32, k int, ef int) ([]topk.Result, error) {
	res, err := s.idx.Search(q, k, index.Params{Ef: ef, NProbe: ef})
	if err != nil {
		return nil, err
	}
	out := make([]topk.Result, len(res))
	for i, r := range res {
		out[i] = topk.Result{ID: s.ids[r.ID], Dist: r.Dist}
	}
	return out, nil
}

// Partition assigns each of n rows to one of p parts.
type Partition struct {
	Assign []int // row -> part
	Parts  int
	// Centroids is non-nil for index-guided partitioning: row-major
	// Parts x Dim, enabling routed search.
	Centroids *kmeans.Result
}

// PartitionRandom spreads rows uniformly at random.
func PartitionRandom(n, parts int, seed int64) Partition {
	rng := rand.New(rand.NewSource(seed))
	a := make([]int, n)
	for i := range a {
		a[i] = rng.Intn(parts)
	}
	return Partition{Assign: a, Parts: parts}
}

// PartitionClustered groups rows by k-means cluster, the index-guided
// policy ("placing all vectors in the same bucket into the same
// partition").
func PartitionClustered(data []float32, n, d, parts int, seed int64) (Partition, error) {
	res, err := kmeans.Train(data, n, d, kmeans.Config{K: parts, Seed: seed, MaxIter: 15})
	if err != nil {
		return Partition{}, err
	}
	a := make([]int, n)
	copy(a, res.Assign)
	return Partition{Assign: a, Parts: res.K, Centroids: res}, nil
}

// SplitRows materializes per-part row data and global id lists.
func SplitRows(data []float32, n, d int, p Partition) (partData [][]float32, partIDs [][]int64) {
	partData = make([][]float32, p.Parts)
	partIDs = make([][]int64, p.Parts)
	for row := 0; row < n; row++ {
		part := p.Assign[row]
		partData[part] = append(partData[part], data[row*d:(row+1)*d]...)
		partIDs[part] = append(partIDs[part], int64(row))
	}
	return partData, partIDs
}

// Router scatter-gathers across shards.
type Router struct {
	shards    []Shard
	centroids *kmeans.Result // optional, for routed search
}

// NewRouter wires shards; centroids may be nil (always full fan-out).
func NewRouter(shards []Shard, centroids *kmeans.Result) *Router {
	return &Router{shards: shards, centroids: centroids}
}

// NumShards returns the shard count.
func (r *Router) NumShards() int { return len(r.shards) }

// Search fans the query out to every shard and merges the top-k.
func (r *Router) Search(q []float32, k, ef int) ([]topk.Result, error) {
	return r.searchShards(q, k, ef, nil)
}

// RoutedSearch probes only the `probes` shards whose centroids are
// closest to the query; requires index-guided partitioning. probes <=
// 0 or missing centroids degrade to full fan-out.
func (r *Router) RoutedSearch(q []float32, k, ef, probes int) ([]topk.Result, error) {
	if r.centroids == nil || probes <= 0 || probes >= len(r.shards) {
		return r.Search(q, k, ef)
	}
	return r.searchShards(q, k, ef, r.centroids.NearestN(q, probes))
}

func (r *Router) searchShards(q []float32, k, ef int, subset []int) ([]topk.Result, error) {
	targets := subset
	if targets == nil {
		targets = make([]int, len(r.shards))
		for i := range targets {
			targets[i] = i
		}
	}
	type shardOut struct {
		res []topk.Result
		err error
	}
	outs := make([]shardOut, len(targets))
	var wg sync.WaitGroup
	for i, si := range targets {
		wg.Add(1)
		go func(i, si int) {
			defer wg.Done()
			res, err := r.shards[si].Search(q, k, ef)
			outs[i] = shardOut{res, err}
		}(i, si)
	}
	wg.Wait()
	c := topk.NewCollector(k)
	for _, o := range outs {
		if o.err != nil {
			return nil, fmt.Errorf("dist: shard error: %w", o.err)
		}
		for _, r := range o.res {
			c.Push(r.ID, r.Dist)
		}
	}
	return c.Results(), nil
}

// FanOut reports how many shards a routed query touches (experiment
// metric for E11).
func (r *Router) FanOut(probes int) int {
	if r.centroids == nil || probes <= 0 || probes >= len(r.shards) {
		return len(r.shards)
	}
	return probes
}
