// Package dist implements distributed search (Section 2.3(2)): the
// collection is partitioned into shards, each with its own ANN index,
// and queries are answered by scatter-gather with a top-k merge.
// Partitioning is either random (uniform load) or index-guided
// (k-means cluster per shard), and index-guided routing lets a query
// probe only the shards whose centroids are closest, shrinking
// fan-out. A net/rpc transport (rpc.go) runs shards as separate
// processes.
//
// The read path is fault-tolerant: every search carries a
// context.Context deadline, each shard call can get a sub-deadline
// and retries (internal/fault), and a scatter-gather that loses some
// shards degrades to a partial result — the merged top-k over the
// shards that answered plus a Partial report naming the ones that did
// not — instead of failing the whole query.
package dist

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"vdbms/internal/fault"
	"vdbms/internal/index"
	"vdbms/internal/kmeans"
	"vdbms/internal/topk"
)

// Shard answers top-k queries over its partition, returning global
// vector ids. Implementations must honor ctx cancellation: a shard
// that cannot answer before the deadline returns ctx.Err().
type Shard interface {
	Search(ctx context.Context, q []float32, k int, ef int) ([]topk.Result, error)
	Count() int
}

// LocalShard wraps an index plus the local-to-global id mapping.
type LocalShard struct {
	idx index.Index
	ids []int64 // local row -> global id
}

// NewLocalShard builds a shard from pre-partitioned rows.
func NewLocalShard(idx index.Index, globalIDs []int64) *LocalShard {
	return &LocalShard{idx: idx, ids: globalIDs}
}

// Count implements Shard.
func (s *LocalShard) Count() int { return len(s.ids) }

// Search implements Shard. The index probe itself is CPU-bound and
// uninterruptible, so cancellation is checked at entry and before the
// results are returned.
func (s *LocalShard) Search(ctx context.Context, q []float32, k int, ef int) ([]topk.Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	res, err := s.idx.Search(q, k, index.Params{Ef: ef, NProbe: ef})
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	out := make([]topk.Result, len(res))
	for i, r := range res {
		out[i] = topk.Result{ID: s.ids[r.ID], Dist: r.Dist}
	}
	return out, nil
}

// Partition assigns each of n rows to one of p parts.
type Partition struct {
	Assign []int // row -> part
	Parts  int
	// Centroids is non-nil for index-guided partitioning: row-major
	// Parts x Dim, enabling routed search.
	Centroids *kmeans.Result
}

// PartitionRandom spreads rows uniformly at random.
func PartitionRandom(n, parts int, seed int64) Partition {
	rng := rand.New(rand.NewSource(seed))
	a := make([]int, n)
	for i := range a {
		a[i] = rng.Intn(parts)
	}
	return Partition{Assign: a, Parts: parts}
}

// PartitionClustered groups rows by k-means cluster, the index-guided
// policy ("placing all vectors in the same bucket into the same
// partition").
func PartitionClustered(data []float32, n, d, parts int, seed int64) (Partition, error) {
	res, err := kmeans.Train(data, n, d, kmeans.Config{K: parts, Seed: seed, MaxIter: 15})
	if err != nil {
		return Partition{}, err
	}
	a := make([]int, n)
	copy(a, res.Assign)
	return Partition{Assign: a, Parts: res.K, Centroids: res}, nil
}

// SplitRows materializes per-part row data and global id lists.
func SplitRows(data []float32, n, d int, p Partition) (partData [][]float32, partIDs [][]int64) {
	partData = make([][]float32, p.Parts)
	partIDs = make([][]int64, p.Parts)
	for row := 0; row < n; row++ {
		part := p.Assign[row]
		partData[part] = append(partData[part], data[row*d:(row+1)*d]...)
		partIDs[part] = append(partIDs[part], int64(row))
	}
	return partData, partIDs
}

// ShardError records one shard that failed to answer a scatter-gather
// query. Err carries the message (string, not error, so a Partial
// report serializes cleanly over JSON).
type ShardError struct {
	Shard int    `json:"shard"`
	Err   string `json:"error"`
}

// Partial reports how completely a scatter-gather query covered its
// target shards. Failed is empty for a complete answer.
type Partial struct {
	// Targeted is how many shards the query was fanned out to.
	Targeted int `json:"targeted"`
	// Answered lists the shard indices (ascending) that contributed
	// results to the merge.
	Answered []int `json:"answered"`
	// Failed lists the shards (ascending) that errored, timed out, or
	// were still pending when the query deadline hit.
	Failed []ShardError `json:"failed,omitempty"`
}

// Complete reports whether every targeted shard answered.
func (p Partial) Complete() bool { return len(p.Failed) == 0 }

// FailedShards returns the failed shard indices.
func (p Partial) FailedShards() []int {
	out := make([]int, len(p.Failed))
	for i, f := range p.Failed {
		out[i] = f.Shard
	}
	return out
}

// Router scatter-gathers across shards.
type Router struct {
	shards       []Shard
	centroids    *kmeans.Result // optional, for routed search
	shardTimeout time.Duration
	retrier      *fault.Retrier
	minAnswered  int
}

// RouterOption configures fault-tolerance knobs on a Router.
type RouterOption func(*Router)

// WithShardTimeout bounds each per-shard call with a sub-deadline (in
// addition to the query's own context deadline). Retries share the
// same per-shard budget, so one slow replica cannot consume the whole
// query deadline.
func WithShardTimeout(d time.Duration) RouterOption {
	return func(r *Router) { r.shardTimeout = d }
}

// WithRetrier retries failed shard calls with rt's backoff policy.
func WithRetrier(rt *fault.Retrier) RouterOption {
	return func(r *Router) { r.retrier = rt }
}

// WithMinAnswered sets how many shards must answer before a
// scatter-gather is considered a (possibly partial) success; below
// the floor the query errors. Default 1. Set to the shard count to
// restore fail-stop all-or-nothing behavior.
func WithMinAnswered(n int) RouterOption {
	return func(r *Router) { r.minAnswered = n }
}

// NewRouter wires shards; centroids may be nil (always full fan-out).
func NewRouter(shards []Shard, centroids *kmeans.Result, opts ...RouterOption) *Router {
	r := &Router{shards: shards, centroids: centroids, minAnswered: 1}
	for _, o := range opts {
		o(r)
	}
	if r.minAnswered < 1 {
		r.minAnswered = 1
	}
	return r
}

// NumShards returns the shard count.
func (r *Router) NumShards() int { return len(r.shards) }

// Search fans the query out to every shard and merges the top-k. When
// some shards fail or time out it degrades gracefully: the merged
// top-k over the shards that answered is returned together with a
// Partial report naming the failures. An error is returned only when
// fewer than the configured minimum of shards answered.
func (r *Router) Search(ctx context.Context, q []float32, k, ef int) ([]topk.Result, Partial, error) {
	return r.searchShards(ctx, q, k, ef, nil)
}

// RoutedSearch probes only the `probes` shards whose centroids are
// closest to the query; requires index-guided partitioning. probes <=
// 0 or missing centroids degrade to full fan-out. Partial-result
// semantics match Search.
func (r *Router) RoutedSearch(ctx context.Context, q []float32, k, ef, probes int) ([]topk.Result, Partial, error) {
	if r.centroids == nil || probes <= 0 || probes >= len(r.shards) {
		return r.Search(ctx, q, k, ef)
	}
	return r.searchShards(ctx, q, k, ef, r.centroids.NearestN(q, probes))
}

// searchOne runs a single shard call under the per-shard sub-deadline
// and retry policy.
func (r *Router) searchOne(ctx context.Context, si int, q []float32, k, ef int) ([]topk.Result, error) {
	if r.shardTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, r.shardTimeout)
		defer cancel()
	}
	if r.retrier == nil {
		return r.shards[si].Search(ctx, q, k, ef)
	}
	var res []topk.Result
	err := r.retrier.Do(ctx, func(c context.Context) error {
		rr, e := r.shards[si].Search(c, q, k, ef)
		if e == nil {
			res = rr
		}
		return e
	})
	return res, err
}

func (r *Router) searchShards(ctx context.Context, q []float32, k, ef int, subset []int) ([]topk.Result, Partial, error) {
	targets := subset
	if targets == nil {
		targets = make([]int, len(r.shards))
		for i := range targets {
			targets[i] = i
		}
	}
	type shardOut struct {
		pos int
		res []topk.Result
		err error
	}
	ch := make(chan shardOut, len(targets))
	for i, si := range targets {
		go func(pos, si int) {
			res, err := r.searchOne(ctx, si, q, k, ef)
			ch <- shardOut{pos, res, err}
		}(i, si)
	}

	c := topk.NewCollector(k)
	p := Partial{Targeted: len(targets)}
	pending := make(map[int]bool, len(targets))
	for i := range targets {
		pending[i] = true
	}
	var lastErr error
	// Gather until every shard reports or the query deadline hits.
	// Shards still pending at the deadline are charged to the Partial
	// report; their goroutines drain into the buffered channel.
	for len(pending) > 0 {
		select {
		case o := <-ch:
			delete(pending, o.pos)
			if o.err != nil {
				lastErr = o.err
				p.Failed = append(p.Failed, ShardError{Shard: targets[o.pos], Err: o.err.Error()})
				continue
			}
			p.Answered = append(p.Answered, targets[o.pos])
			for _, res := range o.res {
				c.Push(res.ID, res.Dist)
			}
		case <-ctx.Done():
			lastErr = ctx.Err()
			for pos := range pending {
				p.Failed = append(p.Failed, ShardError{Shard: targets[pos], Err: ctx.Err().Error()})
			}
			pending = nil
		}
	}
	sort.Ints(p.Answered)
	sort.Slice(p.Failed, func(i, j int) bool { return p.Failed[i].Shard < p.Failed[j].Shard })
	if len(p.Answered) < r.minAnswered {
		return nil, p, fmt.Errorf("dist: %d/%d shards answered (need %d): %w",
			len(p.Answered), p.Targeted, r.minAnswered, lastErr)
	}
	return c.Results(), p, nil
}

// FanOut reports how many shards a routed query touches (experiment
// metric for E11).
func (r *Router) FanOut(probes int) int {
	if r.centroids == nil || probes <= 0 || probes >= len(r.shards) {
		return len(r.shards)
	}
	return probes
}
