// Package dist implements distributed search (Section 2.3(2)): the
// collection is partitioned into shards, each with its own ANN index,
// and queries are answered by scatter-gather with a top-k merge.
// Partitioning is either random (uniform load) or index-guided
// (k-means cluster per shard), and index-guided routing lets a query
// probe only the shards whose centroids are closest, shrinking
// fan-out. A net/rpc transport (rpc.go) runs shards as separate
// processes.
//
// The read path is fault-tolerant: every search carries a
// context.Context deadline, each shard call can get a sub-deadline
// and retries (internal/fault), and a scatter-gather that loses some
// shards degrades to a partial result — the merged top-k over the
// shards that answered plus a Partial report naming the ones that did
// not — instead of failing the whole query.
package dist

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"time"

	"vdbms/internal/fault"
	"vdbms/internal/index"
	"vdbms/internal/kmeans"
	"vdbms/internal/obs"
	"vdbms/internal/topk"
)

// Stage-latency handles for the scatter-gather stages, bound once
// (see the matching set in internal/executor).
var (
	stageFanout = obs.SearchStageSeconds.With("shard_fanout")
	stageMerge  = obs.SearchStageSeconds.With("topk_merge")
)

// Shard answers top-k queries over its partition, returning global
// vector ids. Implementations must honor ctx cancellation: a shard
// that cannot answer before the deadline returns ctx.Err().
type Shard interface {
	Search(ctx context.Context, q []float32, k int, ef int) ([]topk.Result, error)
	Count() int
}

// LocalShard wraps an index plus the local-to-global id mapping.
type LocalShard struct {
	idx index.Index
	ids []int64 // local row -> global id
	// Parallelism is the intra-query worker count handed to the
	// wrapped index for partitioned scans (0 = GOMAXPROCS, 1 =
	// serial). Set it before serving; it is read concurrently.
	Parallelism int
}

// NewLocalShard builds a shard from pre-partitioned rows.
func NewLocalShard(idx index.Index, globalIDs []int64) *LocalShard {
	return &LocalShard{idx: idx, ids: globalIDs}
}

// Count implements Shard.
func (s *LocalShard) Count() int { return len(s.ids) }

// Search implements Shard. The index probe itself is CPU-bound and
// uninterruptible, so cancellation is checked at entry and before the
// results are returned. Probe work feeds the per-index obs counters
// (so a vdbms-shard process exposes them on its /metrics) and, when
// the context carries a trace span, annotates it.
func (s *LocalShard) Search(ctx context.Context, q []float32, k int, ef int) ([]topk.Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var st index.SearchStats
	res, err := s.idx.Search(q, k, index.Params{Ef: ef, NProbe: ef, Parallelism: s.Parallelism, Stats: &st})
	name := s.idx.Name()
	obs.IndexProbes.With(name).Inc()
	obs.IndexDistanceComps.With(name).Add(st.DistanceComps)
	obs.IndexNodesVisited.With(name).Add(st.NodesVisited)
	obs.IndexBucketsProbed.With(name).Add(st.BucketsProbed)
	obs.IndexIOReads.With(name).Add(st.IOReads)
	obs.IndexPartitions.With(name).Add(st.Partitions)
	if sp := obs.SpanFrom(ctx); sp != nil {
		sp.Tag("index", name)
		sp.Annotate("distance_comps", st.DistanceComps)
		if st.NodesVisited > 0 {
			sp.Annotate("nodes_visited", st.NodesVisited)
		}
	}
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	out := make([]topk.Result, len(res))
	for i, r := range res {
		out[i] = topk.Result{ID: s.ids[r.ID], Dist: r.Dist}
	}
	return out, nil
}

// Partition assigns each of n rows to one of p parts.
type Partition struct {
	Assign []int // row -> part
	Parts  int
	// Centroids is non-nil for index-guided partitioning: row-major
	// Parts x Dim, enabling routed search.
	Centroids *kmeans.Result
}

// PartitionRandom spreads rows uniformly at random.
func PartitionRandom(n, parts int, seed int64) Partition {
	rng := rand.New(rand.NewSource(seed))
	a := make([]int, n)
	for i := range a {
		a[i] = rng.Intn(parts)
	}
	return Partition{Assign: a, Parts: parts}
}

// PartitionClustered groups rows by k-means cluster, the index-guided
// policy ("placing all vectors in the same bucket into the same
// partition").
func PartitionClustered(data []float32, n, d, parts int, seed int64) (Partition, error) {
	res, err := kmeans.Train(data, n, d, kmeans.Config{K: parts, Seed: seed, MaxIter: 15})
	if err != nil {
		return Partition{}, err
	}
	a := make([]int, n)
	copy(a, res.Assign)
	return Partition{Assign: a, Parts: res.K, Centroids: res}, nil
}

// SplitRows materializes per-part row data and global id lists.
func SplitRows(data []float32, n, d int, p Partition) (partData [][]float32, partIDs [][]int64) {
	partData = make([][]float32, p.Parts)
	partIDs = make([][]int64, p.Parts)
	for row := 0; row < n; row++ {
		part := p.Assign[row]
		partData[part] = append(partData[part], data[row*d:(row+1)*d]...)
		partIDs[part] = append(partIDs[part], int64(row))
	}
	return partData, partIDs
}

// ShardError records one shard that failed to answer a scatter-gather
// query. Err carries the message (string, not error, so a Partial
// report serializes cleanly over JSON).
type ShardError struct {
	Shard int    `json:"shard"`
	Err   string `json:"error"`
}

// Partial reports how completely a scatter-gather query covered its
// target shards. Failed is empty for a complete answer.
type Partial struct {
	// Targeted is how many shards the query was fanned out to.
	Targeted int `json:"targeted"`
	// Answered lists the shard indices (ascending) that contributed
	// results to the merge.
	Answered []int `json:"answered"`
	// Failed lists the shards (ascending) that errored, timed out, or
	// were still pending when the query deadline hit.
	Failed []ShardError `json:"failed,omitempty"`
}

// Complete reports whether every targeted shard answered.
func (p Partial) Complete() bool { return len(p.Failed) == 0 }

// FailedShards returns the failed shard indices.
func (p Partial) FailedShards() []int {
	out := make([]int, len(p.Failed))
	for i, f := range p.Failed {
		out[i] = f.Shard
	}
	return out
}

// Router scatter-gathers across shards.
type Router struct {
	shards       []Shard
	centroids    *kmeans.Result // optional, for routed search
	shardTimeout time.Duration
	retrier      *fault.Retrier
	minAnswered  int
	breakerCfg   *fault.BreakerConfig
	breakers     []*fault.Breaker // per shard, nil without WithShardBreakers
}

// RouterOption configures fault-tolerance knobs on a Router.
type RouterOption func(*Router)

// WithShardTimeout bounds each per-shard call with a sub-deadline (in
// addition to the query's own context deadline). Retries share the
// same per-shard budget, so one slow replica cannot consume the whole
// query deadline.
func WithShardTimeout(d time.Duration) RouterOption {
	return func(r *Router) { r.shardTimeout = d }
}

// WithRetrier retries failed shard calls with rt's backoff policy.
func WithRetrier(rt *fault.Retrier) RouterOption {
	return func(r *Router) { r.retrier = rt }
}

// WithMinAnswered sets how many shards must answer before a
// scatter-gather is considered a (possibly partial) success; below
// the floor the query errors. Default 1. Set to the shard count to
// restore fail-stop all-or-nothing behavior.
func WithMinAnswered(n int) RouterOption {
	return func(r *Router) { r.minAnswered = n }
}

// WithShardBreakers guards each shard with its own circuit breaker:
// a shard whose calls keep failing (after retries) is skipped —
// charged to the Partial report as circuit-open — until the cooldown
// admits a half-open probe. Transitions feed the obs breaker counters
// and the per-shard breaker-state gauge.
func WithShardBreakers(cfg fault.BreakerConfig) RouterOption {
	return func(r *Router) { r.breakerCfg = &cfg }
}

// NewRouter wires shards; centroids may be nil (always full fan-out).
func NewRouter(shards []Shard, centroids *kmeans.Result, opts ...RouterOption) *Router {
	r := &Router{shards: shards, centroids: centroids, minAnswered: 1}
	for _, o := range opts {
		o(r)
	}
	if r.minAnswered < 1 {
		r.minAnswered = 1
	}
	if r.breakerCfg != nil {
		r.breakers = make([]*fault.Breaker, len(shards))
		for i := range r.breakers {
			cfg := *r.breakerCfg
			gauge := obs.ShardBreakerState.With(strconv.Itoa(i))
			gauge.Set(float64(fault.Closed))
			prev := cfg.OnStateChange
			cfg.OnStateChange = func(from, to fault.State) {
				gauge.Set(float64(to))
				obs.BreakerTransitions.With(to.String()).Inc()
				if prev != nil {
					prev(from, to)
				}
			}
			r.breakers[i] = fault.NewBreaker(cfg)
		}
	}
	return r
}

// NumShards returns the shard count.
func (r *Router) NumShards() int { return len(r.shards) }

// BreakerStates is implemented by shards that front their own
// breakers (ReplicaSet), letting the router and the health endpoint
// see through to replica-level state.
type BreakerStates interface {
	BreakerStates() []fault.State
}

// ShardStates reports one breaker position per shard for the health
// endpoint: the router-level breaker when WithShardBreakers is
// configured; otherwise, for shards that are themselves replica sets,
// "open" only when every replica's breaker is open; "closed" for
// shards with no breaker at all.
func (r *Router) ShardStates() []string {
	out := make([]string, len(r.shards))
	for i, s := range r.shards {
		switch {
		case r.breakers != nil:
			out[i] = r.breakers[i].State().String()
		default:
			if bs, ok := s.(BreakerStates); ok {
				allOpen := true
				for _, st := range bs.BreakerStates() {
					if st != fault.Open {
						allOpen = false
						break
					}
				}
				if allOpen {
					out[i] = fault.Open.String()
				} else {
					out[i] = fault.Closed.String()
				}
				continue
			}
			out[i] = fault.Closed.String()
		}
	}
	return out
}

// Search fans the query out to every shard and merges the top-k. When
// some shards fail or time out it degrades gracefully: the merged
// top-k over the shards that answered is returned together with a
// Partial report naming the failures. An error is returned only when
// fewer than the configured minimum of shards answered.
func (r *Router) Search(ctx context.Context, q []float32, k, ef int) ([]topk.Result, Partial, error) {
	return r.searchShards(ctx, q, k, ef, nil)
}

// RoutedSearch probes only the `probes` shards whose centroids are
// closest to the query; requires index-guided partitioning. probes <=
// 0 or missing centroids degrade to full fan-out. Partial-result
// semantics match Search.
func (r *Router) RoutedSearch(ctx context.Context, q []float32, k, ef, probes int) ([]topk.Result, Partial, error) {
	if r.centroids == nil || probes <= 0 || probes >= len(r.shards) {
		return r.Search(ctx, q, k, ef)
	}
	return r.searchShards(ctx, q, k, ef, r.centroids.NearestN(q, probes))
}

// searchOne runs a single shard call under the per-shard sub-deadline,
// retry policy, and (when configured) circuit breaker. The full call
// — retries included — is timed into the per-shard latency histogram;
// retry attempts beyond the first feed the retry counter.
func (r *Router) searchOne(ctx context.Context, si int, q []float32, k, ef int) ([]topk.Result, error) {
	var b *fault.Breaker
	if r.breakers != nil {
		b = r.breakers[si]
		if !b.Allow() {
			return nil, fault.ErrOpen
		}
	}
	start := time.Now()
	res, err := r.searchOneInner(ctx, si, q, k, ef)
	obs.DistShardLatency.With(strconv.Itoa(si)).Observe(time.Since(start).Seconds())
	if b != nil {
		switch {
		case err == nil:
			b.OnSuccess()
		case ctx.Err() != nil:
			// The query deadline hit; that says nothing about shard
			// health, so the breaker is not charged.
		default:
			b.OnFailure()
		}
	}
	return res, err
}

func (r *Router) searchOneInner(ctx context.Context, si int, q []float32, k, ef int) ([]topk.Result, error) {
	if r.shardTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, r.shardTimeout)
		defer cancel()
	}
	if r.retrier == nil {
		return r.shards[si].Search(ctx, q, k, ef)
	}
	var res []topk.Result
	attempts := 0
	err := r.retrier.Do(ctx, func(c context.Context) error {
		attempts++
		rr, e := r.shards[si].Search(c, q, k, ef)
		if e == nil {
			res = rr
		}
		return e
	})
	if attempts > 1 {
		obs.DistRetries.Add(int64(attempts - 1))
		obs.SpanFrom(ctx).Annotate("retries", int64(attempts-1))
	}
	return res, err
}

func (r *Router) searchShards(ctx context.Context, q []float32, k, ef int, subset []int) ([]topk.Result, Partial, error) {
	obs.DistSearches.Inc()
	targets := subset
	if targets == nil {
		targets = make([]int, len(r.shards))
		for i := range targets {
			targets[i] = i
		}
	}
	// When the context carries a trace span, each shard call gets its
	// own child span (the Span type is concurrency-safe, so parallel
	// fan-out can append children); the goroutine re-wraps its ctx so
	// shard-side annotations land on the right child.
	parent := obs.SpanFrom(ctx)
	fsp := parent.Start("shard_fanout")
	fanoutStart := time.Now()
	fsp.Annotate("targeted", int64(len(targets)))
	spans := make([]*obs.Span, len(targets))
	type shardOut struct {
		pos int
		res []topk.Result
		err error
	}
	ch := make(chan shardOut, len(targets))
	for i, si := range targets {
		spans[i] = fsp.Start("shard_" + strconv.Itoa(si))
		go func(pos, si int, sp *obs.Span) {
			res, err := r.searchOne(obs.WithSpan(ctx, sp), si, q, k, ef)
			sp.End()
			if err != nil {
				sp.Tag("status", "error")
			} else {
				sp.Tag("status", "ok")
				sp.Annotate("results", int64(len(res)))
			}
			ch <- shardOut{pos, res, err}
		}(i, si, spans[i])
	}

	c := topk.NewCollector(k)
	p := Partial{Targeted: len(targets)}
	pending := make(map[int]bool, len(targets))
	for i := range targets {
		pending[i] = true
	}
	var lastErr error
	// Gather until every shard reports or the query deadline hits.
	// Shards still pending at the deadline are charged to the Partial
	// report; their goroutines drain into the buffered channel.
	for len(pending) > 0 {
		select {
		case o := <-ch:
			delete(pending, o.pos)
			if o.err != nil {
				lastErr = o.err
				obs.DistShardFailures.With(strconv.Itoa(targets[o.pos])).Inc()
				p.Failed = append(p.Failed, ShardError{Shard: targets[o.pos], Err: o.err.Error()})
				continue
			}
			p.Answered = append(p.Answered, targets[o.pos])
			for _, res := range o.res {
				c.Push(res.ID, res.Dist)
			}
		case <-ctx.Done():
			lastErr = ctx.Err()
			for pos := range pending {
				obs.DistShardFailures.With(strconv.Itoa(targets[pos])).Inc()
				spans[pos].Tag("status", "deadline")
				p.Failed = append(p.Failed, ShardError{Shard: targets[pos], Err: ctx.Err().Error()})
			}
			pending = nil
		}
	}
	fsp.Annotate("answered", int64(len(p.Answered)))
	fsp.Annotate("failed", int64(len(p.Failed)))
	fsp.End()
	stageFanout.Observe(time.Since(fanoutStart).Seconds())
	msp := parent.Start("topk_merge")
	mergeStart := time.Now()
	defer func() { stageMerge.Observe(time.Since(mergeStart).Seconds()) }()
	msp.Annotate("candidates", int64(c.Pushes()))
	sort.Ints(p.Answered)
	sort.Slice(p.Failed, func(i, j int) bool { return p.Failed[i].Shard < p.Failed[j].Shard })
	if !p.Complete() {
		obs.DistPartial.Inc()
	}
	if len(p.Answered) < r.minAnswered {
		msp.End()
		return nil, p, fmt.Errorf("dist: %d/%d shards answered (need %d): %w",
			len(p.Answered), p.Targeted, r.minAnswered, lastErr)
	}
	res := c.Results()
	msp.Annotate("merged", int64(len(res)))
	msp.End()
	return res, p, nil
}

// FanOut reports how many shards a routed query touches (experiment
// metric for E11).
func (r *Router) FanOut(probes int) int {
	if r.centroids == nil || probes <= 0 || probes >= len(r.shards) {
		return len(r.shards)
	}
	return probes
}
