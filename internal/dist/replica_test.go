package dist

import (
	"errors"
	"testing"

	"vdbms/internal/dataset"
	"vdbms/internal/index"
	"vdbms/internal/topk"
)

// flakyShard errors for the first failN calls, then serves.
type flakyShard struct {
	inner Shard
	failN int
	calls int
}

func (f *flakyShard) Count() int { return f.inner.Count() }

func (f *flakyShard) Search(q []float32, k, ef int) ([]topk.Result, error) {
	f.calls++
	if f.calls <= f.failN {
		return nil, errors.New("replica down")
	}
	return f.inner.Search(q, k, ef)
}

func newLocal(t *testing.T, ds *dataset.Dataset) *LocalShard {
	t.Helper()
	idx, err := index.NewFlat(ds.Data, ds.Count, ds.Dim, nil)
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]int64, ds.Count)
	for i := range ids {
		ids[i] = int64(i)
	}
	return NewLocalShard(idx, ids)
}

func TestReplicaSetFailover(t *testing.T) {
	ds := dataset.Uniform(100, 4, 1)
	good := newLocal(t, ds)
	dead := &flakyShard{inner: good, failN: 1 << 30}
	rs, err := NewReplicaSet(dead, good)
	if err != nil {
		t.Fatal(err)
	}
	res, err := rs.Search(ds.Row(5), 1, 100)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].ID != 5 {
		t.Fatalf("failover result = %v", res)
	}
	if rs.Healthy() != 1 {
		t.Fatalf("healthy = %d, want 1 (primary marked down)", rs.Healthy())
	}
	if rs.Count() != 100 {
		t.Fatalf("Count via surviving replica = %d", rs.Count())
	}
	// Subsequent searches skip the dead primary without retrying it
	// in the main pass.
	if _, err := rs.Search(ds.Row(6), 1, 100); err != nil {
		t.Fatal(err)
	}
}

func TestReplicaSetAllDownThenRecovery(t *testing.T) {
	ds := dataset.Uniform(50, 4, 3)
	good := newLocal(t, ds)
	// Fails twice (the main pass and the first desperation retry of
	// search #1), then recovers.
	flaky := &flakyShard{inner: good, failN: 2}
	rs, err := NewReplicaSet(flaky)
	if err != nil {
		t.Fatal(err)
	}
	// First search: main pass fails (call 1), desperation pass fails
	// (call 2) -> error.
	if _, err := rs.Search(ds.Row(0), 1, 10); err == nil {
		t.Fatal("want error while replica is down")
	}
	// Second search: main pass skips (unhealthy), desperation pass
	// succeeds (call 3) and re-marks healthy.
	res, err := rs.Search(ds.Row(0), 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].ID != 0 || rs.Healthy() != 1 {
		t.Fatalf("recovery failed: %v healthy=%d", res, rs.Healthy())
	}
}

func TestReplicaSetValidationAndRouterIntegration(t *testing.T) {
	if _, err := NewReplicaSet(); err == nil {
		t.Fatal("want empty-set error")
	}
	// A router over replica sets behaves like a router over shards.
	ds := dataset.Clustered(400, 8, 4, 0.4, 5)
	p := PartitionRandom(ds.Count, 2, 7)
	partData, partIDs := SplitRows(ds.Data, ds.Count, ds.Dim, p)
	shards := make([]Shard, 2)
	for i := range shards {
		idx, err := index.NewFlat(partData[i], len(partIDs[i]), ds.Dim, nil)
		if err != nil {
			t.Fatal(err)
		}
		primary := NewLocalShard(idx, partIDs[i])
		rs, err := NewReplicaSet(&flakyShard{inner: primary, failN: 1 << 30}, primary)
		if err != nil {
			t.Fatal(err)
		}
		shards[i] = rs
	}
	router := NewRouter(shards, nil)
	res, err := router.Search(ds.Row(42), 1, 100)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].ID != 42 {
		t.Fatalf("routed replica search = %v", res)
	}
	if rs0 := shards[0].(*ReplicaSet); rs0.Healthy() != 1 {
		t.Fatalf("failover not recorded: %d", rs0.Healthy())
	}
	if shards[0].Count()+shards[1].Count() != ds.Count {
		t.Fatal("counts wrong")
	}
}

func TestReplicaSetMarkHealthyBounds(t *testing.T) {
	ds := dataset.Uniform(10, 2, 9)
	rs, err := NewReplicaSet(newLocal(t, ds))
	if err != nil {
		t.Fatal(err)
	}
	rs.MarkHealthy(-1) // no panic
	rs.MarkHealthy(99) // no panic
	if rs.Healthy() != 1 {
		t.Fatal("bounds handling wrong")
	}
}
