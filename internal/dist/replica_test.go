package dist

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"vdbms/internal/dataset"
	"vdbms/internal/fault"
	"vdbms/internal/index"
	"vdbms/internal/topk"
)

// flakyShard errors for the first failN calls, then serves. Safe for
// concurrent use (the router fans out in goroutines).
type flakyShard struct {
	inner Shard
	mu    sync.Mutex
	failN int
	calls int
}

func (f *flakyShard) Count() int { return f.inner.Count() }

func (f *flakyShard) Search(ctx context.Context, q []float32, k, ef int) ([]topk.Result, error) {
	f.mu.Lock()
	f.calls++
	fail := f.calls <= f.failN
	f.mu.Unlock()
	if fail {
		return nil, errors.New("replica down")
	}
	return f.inner.Search(ctx, q, k, ef)
}

func (f *flakyShard) callCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.calls
}

func newLocal(t *testing.T, ds *dataset.Dataset) *LocalShard {
	t.Helper()
	idx, err := index.NewFlat(ds.Data, ds.Count, ds.Dim, nil)
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]int64, ds.Count)
	for i := range ids {
		ids[i] = int64(i)
	}
	return NewLocalShard(idx, ids)
}

func TestReplicaSetFailover(t *testing.T) {
	ds := dataset.Uniform(100, 4, 1)
	good := newLocal(t, ds)
	dead := &flakyShard{inner: good, failN: 1 << 30}
	rs, err := NewReplicaSet(dead, good)
	if err != nil {
		t.Fatal(err)
	}
	res, err := rs.Search(context.Background(), ds.Row(5), 1, 100)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].ID != 5 {
		t.Fatalf("failover result = %v", res)
	}
	if rs.State(0) != fault.Open {
		t.Fatalf("primary breaker = %v, want open", rs.State(0))
	}
	if rs.Healthy() != 1 {
		t.Fatalf("healthy = %d, want 1 (primary tripped)", rs.Healthy())
	}
	if rs.Count() != 100 {
		t.Fatalf("Count via surviving replica = %d", rs.Count())
	}
	// The default policy probes the dead primary again (zero
	// cooldown) but still serves from the secondary.
	if _, err := rs.Search(context.Background(), ds.Row(6), 1, 100); err != nil {
		t.Fatal(err)
	}
}

// Satellite fix: a set whose replicas are all tripped must not report
// a count of 0 — the data still exists, its replicas are just
// unreachable. The last-known count (seeded at construction) is
// returned instead.
func TestReplicaSetCountLastKnownWhenAllTripped(t *testing.T) {
	ds := dataset.Uniform(50, 4, 3)
	dead := &flakyShard{inner: newLocal(t, ds), failN: 1 << 30}
	rs, err := NewReplicaSetWithBreaker(fault.BreakerConfig{Cooldown: time.Hour}, dead)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rs.Search(context.Background(), ds.Row(0), 1, 10); err == nil {
		t.Fatal("want error while replica is down")
	}
	if rs.Healthy() != 0 {
		t.Fatalf("healthy = %d, want 0", rs.Healthy())
	}
	if got := rs.Count(); got != 50 {
		t.Fatalf("Count with all replicas tripped = %d, want last-known 50", got)
	}
}

func TestReplicaSetBreakerHealsAutomatically(t *testing.T) {
	ds := dataset.Uniform(50, 4, 3)
	// Fails exactly once, then recovers — e.g. a restarted process.
	flaky := &flakyShard{inner: newLocal(t, ds), failN: 1}
	rs, err := NewReplicaSet(flaky)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rs.Search(context.Background(), ds.Row(0), 1, 10); err == nil {
		t.Fatal("want error while replica is down")
	}
	if rs.State(0) != fault.Open {
		t.Fatalf("breaker = %v, want open", rs.State(0))
	}
	// Zero cooldown: the next search admits a half-open probe, which
	// succeeds and closes the breaker — no MarkHealthy needed.
	res, err := rs.Search(context.Background(), ds.Row(0), 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].ID != 0 || rs.State(0) != fault.Closed || rs.Healthy() != 1 {
		t.Fatalf("auto-heal failed: %v state=%v healthy=%d", res, rs.State(0), rs.Healthy())
	}
}

func TestReplicaSetAllOpenReturnsErrOpen(t *testing.T) {
	ds := dataset.Uniform(20, 4, 5)
	dead := &flakyShard{inner: newLocal(t, ds), failN: 1 << 30}
	rs, err := NewReplicaSetWithBreaker(fault.BreakerConfig{Cooldown: time.Hour}, dead)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rs.Search(context.Background(), ds.Row(0), 1, 10); err == nil {
		t.Fatal("want failure")
	}
	// Breaker open, cooldown far away: the set rejects without
	// touching the replica.
	before := dead.callCount()
	_, err = rs.Search(context.Background(), ds.Row(0), 1, 10)
	if !errors.Is(err, fault.ErrOpen) {
		t.Fatalf("err = %v, want ErrOpen", err)
	}
	if dead.callCount() != before {
		t.Fatal("open breaker must not admit calls")
	}
}

func TestReplicaSetHonorsCancellation(t *testing.T) {
	ds := dataset.Uniform(20, 4, 7)
	rs, err := NewReplicaSet(newLocal(t, ds))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := rs.Search(ctx, ds.Row(0), 1, 10); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want canceled", err)
	}
	if rs.State(0) != fault.Closed {
		t.Fatal("caller cancellation must not trip the breaker")
	}
}

func TestReplicaSetValidationAndRouterIntegration(t *testing.T) {
	if _, err := NewReplicaSet(); err == nil {
		t.Fatal("want empty-set error")
	}
	// A router over replica sets behaves like a router over shards.
	ds := dataset.Clustered(400, 8, 4, 0.4, 5)
	p := PartitionRandom(ds.Count, 2, 7)
	partData, partIDs := SplitRows(ds.Data, ds.Count, ds.Dim, p)
	shards := make([]Shard, 2)
	for i := range shards {
		idx, err := index.NewFlat(partData[i], len(partIDs[i]), ds.Dim, nil)
		if err != nil {
			t.Fatal(err)
		}
		primary := NewLocalShard(idx, partIDs[i])
		rs, err := NewReplicaSet(&flakyShard{inner: primary, failN: 1 << 30}, primary)
		if err != nil {
			t.Fatal(err)
		}
		shards[i] = rs
	}
	router := NewRouter(shards, nil)
	res, part, err := router.Search(context.Background(), ds.Row(42), 1, 100)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].ID != 42 {
		t.Fatalf("routed replica search = %v", res)
	}
	if !part.Complete() {
		t.Fatalf("replica failover must be invisible to the router: %+v", part)
	}
	if rs0 := shards[0].(*ReplicaSet); rs0.Healthy() != 1 {
		t.Fatalf("failover not recorded: %d", rs0.Healthy())
	}
	if shards[0].Count()+shards[1].Count() != ds.Count {
		t.Fatal("counts wrong")
	}
}

func TestReplicaSetMarkHealthyBounds(t *testing.T) {
	ds := dataset.Uniform(10, 2, 9)
	rs, err := NewReplicaSet(newLocal(t, ds))
	if err != nil {
		t.Fatal(err)
	}
	rs.MarkHealthy(-1) // no panic
	rs.MarkHealthy(99) // no panic
	if rs.Healthy() != 1 || rs.State(-1) != fault.Closed {
		t.Fatal("bounds handling wrong")
	}
}
