package dist

import (
	"context"
	"errors"
	"net"
	"strings"
	"testing"
	"time"

	"vdbms/internal/dataset"
	"vdbms/internal/topk"
)

// serveOn starts a ShardServer for shard on a loopback listener and
// returns a connected client plus the server handle.
func serveOn(t *testing.T, shard Shard) (*RPCShard, *ShardServer) {
	t.Helper()
	srv, err := NewShardServer(shard)
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	srv.Serve(l)
	client, err := DialShard(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })
	return client, srv
}

// errShard always fails its searches with a fixed message.
type errShard struct{ n int }

func (e *errShard) Count() int { return e.n }
func (e *errShard) Search(context.Context, []float32, int, int) ([]topk.Result, error) {
	return nil, errors.New("shard exploded")
}

// slowShard sleeps for a fixed wall-clock delay, deliberately
// ignoring its context — a worst-case unresponsive server.
type slowShard struct {
	inner Shard
	delay time.Duration
}

func (s *slowShard) Count() int { return s.inner.Count() }
func (s *slowShard) Search(ctx context.Context, q []float32, k, ef int) ([]topk.Result, error) {
	time.Sleep(s.delay)
	return s.inner.Search(ctx, q, k, ef)
}

// deadlineCheckShard asserts the server re-derived a context deadline
// from the client's TimeoutMillis.
type deadlineCheckShard struct{ inner Shard }

func (d *deadlineCheckShard) Count() int { return d.inner.Count() }
func (d *deadlineCheckShard) Search(ctx context.Context, q []float32, k, ef int) ([]topk.Result, error) {
	if _, ok := ctx.Deadline(); !ok {
		return nil, errors.New("server context has no deadline")
	}
	return d.inner.Search(ctx, q, k, ef)
}

func TestRPCRoundTripWithDeadline(t *testing.T) {
	ds := dataset.Uniform(120, 4, 21)
	client, _ := serveOn(t, &deadlineCheckShard{inner: newLocal(t, ds)})
	if client.Count() != 120 {
		t.Fatalf("count = %d", client.Count())
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	res, err := client.Search(ctx, ds.Row(9), 1, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].ID != 9 {
		t.Fatalf("rpc search = %v", res)
	}
}

func TestRPCServerErrorPropagates(t *testing.T) {
	client, _ := serveOn(t, &errShard{n: 5})
	_, err := client.Search(context.Background(), []float32{1}, 1, 10)
	if err == nil || !strings.Contains(err.Error(), "shard exploded") {
		t.Fatalf("err = %v, want server error message", err)
	}
	// The connection survives an errored call.
	if client.Count() != 5 {
		t.Fatal("count after errored search")
	}
}

func TestRPCClientDeadlineExpiry(t *testing.T) {
	ds := dataset.Uniform(60, 4, 23)
	client, _ := serveOn(t, &slowShard{inner: newLocal(t, ds), delay: 400 * time.Millisecond})
	ctx, cancel := context.WithTimeout(context.Background(), 40*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := client.Search(ctx, ds.Row(0), 1, 50)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 300*time.Millisecond {
		t.Fatalf("client waited %v past its 40ms deadline", elapsed)
	}
	// An expired deadline short-circuits without a round trip.
	ctx2, cancel2 := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel2()
	if _, err := client.Search(ctx2, ds.Row(0), 1, 50); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired deadline: %v", err)
	}
	// The multiplexed connection is still usable after abandonment.
	if res, err := client.Search(context.Background(), ds.Row(3), 1, 50); err != nil || res[0].ID != 3 {
		t.Fatalf("connection poisoned after abandoned call: %v %v", res, err)
	}
}

func TestShardServerShutdownDrains(t *testing.T) {
	ds := dataset.Uniform(60, 4, 25)
	client, srv := serveOn(t, &slowShard{inner: newLocal(t, ds), delay: 150 * time.Millisecond})

	type out struct {
		res []topk.Result
		err error
	}
	inFlight := make(chan out, 1)
	go func() {
		res, err := client.Search(context.Background(), ds.Row(4), 1, 50)
		inFlight <- out{res, err}
	}()
	time.Sleep(50 * time.Millisecond) // let the call reach the server

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	o := <-inFlight
	if o.err != nil || len(o.res) != 1 || o.res[0].ID != 4 {
		t.Fatalf("in-flight call dropped during drain: %v %v", o.res, o.err)
	}
}

func TestShardServerShutdownTimesOutOnStuckCall(t *testing.T) {
	ds := dataset.Uniform(20, 4, 27)
	client, srv := serveOn(t, &slowShard{inner: newLocal(t, ds), delay: 2 * time.Second})
	go client.Search(context.Background(), ds.Row(0), 1, 10) //nolint:errcheck
	time.Sleep(50 * time.Millisecond)

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if err := srv.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("shutdown with stuck call = %v, want deadline exceeded", err)
	}
}
