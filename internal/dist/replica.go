package dist

import (
	"context"
	"fmt"
	"sync"

	"vdbms/internal/fault"
	"vdbms/internal/obs"
	"vdbms/internal/topk"
)

// Replication (Section 2.3(2): "the vector collection is sharded and
// replicated"): a ReplicaSet fronts several replicas of one shard and
// fails over between them. Reads prefer the lowest-index replica
// whose circuit breaker admits traffic (primary-first). A replica
// that errors trips its breaker open and is skipped until the
// breaker's cooldown admits a half-open probe; a successful probe
// closes the breaker and traffic returns — failed replicas heal
// automatically, with no operator MarkHealthy required.

// ReplicaSet is a Shard backed by interchangeable replicas, each
// guarded by its own fault.Breaker.
type ReplicaSet struct {
	replicas []Shard
	breakers []*fault.Breaker

	mu        sync.Mutex
	lastCount int // last count observed from any replica
}

// DefaultReplicaBreaker is the breaker policy NewReplicaSet applies:
// trip after one failure, probe again on the very next eligible call
// (zero cooldown), close after one probe success. This mirrors the
// old always-retry "desperation pass" while keeping probe traffic to
// one call per query.
var DefaultReplicaBreaker = fault.BreakerConfig{
	FailureThreshold: 1,
	SuccessThreshold: 1,
	Cooldown:         0,
}

// NewReplicaSet wires replicas with the default breaker policy; at
// least one replica is required.
func NewReplicaSet(replicas ...Shard) (*ReplicaSet, error) {
	return NewReplicaSetWithBreaker(DefaultReplicaBreaker, replicas...)
}

// NewReplicaSetWithBreaker wires replicas with an explicit breaker
// policy (per-replica breakers are independent instances of cfg).
// Unless the caller installs its own OnStateChange hook, transitions
// feed the obs breaker-transition counter.
func NewReplicaSetWithBreaker(cfg fault.BreakerConfig, replicas ...Shard) (*ReplicaSet, error) {
	if len(replicas) == 0 {
		return nil, fmt.Errorf("dist: replica set needs at least one replica")
	}
	if cfg.OnStateChange == nil {
		cfg.OnStateChange = func(from, to fault.State) {
			obs.BreakerTransitions.With(to.String()).Inc()
		}
	}
	breakers := make([]*fault.Breaker, len(replicas))
	for i := range breakers {
		breakers[i] = fault.NewBreaker(cfg)
	}
	return &ReplicaSet{
		replicas:  replicas,
		breakers:  breakers,
		lastCount: replicas[0].Count(),
	}, nil
}

// Count implements Shard. It returns the count from the first replica
// whose breaker is not open; when every breaker is open it returns
// the last-known count rather than a misleading 0 — the data has not
// vanished just because its replicas are briefly unreachable. The
// value is seeded from the first replica at construction, so it is
// meaningful even before any search has run.
func (r *ReplicaSet) Count() int {
	for i, rep := range r.replicas {
		if r.breakers[i].State() != fault.Open {
			n := rep.Count()
			r.mu.Lock()
			r.lastCount = n
			r.mu.Unlock()
			return n
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lastCount
}

// Healthy reports how many replicas are currently admitting traffic
// (breaker not open).
func (r *ReplicaSet) Healthy() int {
	n := 0
	for _, b := range r.breakers {
		if b.State() != fault.Open {
			n++
		}
	}
	return n
}

// State returns replica i's breaker position (fault.Closed if i is
// out of range).
func (r *ReplicaSet) State(i int) fault.State {
	if i < 0 || i >= len(r.breakers) {
		return fault.Closed
	}
	return r.breakers[i].State()
}

// BreakerStates implements the BreakerStates interface: one breaker
// position per replica, letting the router's health endpoint see
// through the set.
func (r *ReplicaSet) BreakerStates() []fault.State {
	out := make([]fault.State, len(r.breakers))
	for i, b := range r.breakers {
		out[i] = b.State()
	}
	return out
}

// MarkHealthy force-closes a replica's breaker (e.g. an operator
// restarted it and wants traffic back immediately instead of waiting
// out the cooldown).
func (r *ReplicaSet) MarkHealthy(i int) {
	if i >= 0 && i < len(r.breakers) {
		r.breakers[i].Reset()
	}
}

// Search implements Shard with failover: replicas are tried in
// breaker-admission order (primary first); an erroring replica trips
// its breaker and the next takes over. Only when every replica fails
// or is circuit-open does the set return an error. Caller
// cancellation aborts immediately and is never charged to a replica.
func (r *ReplicaSet) Search(ctx context.Context, q []float32, k, ef int) ([]topk.Result, error) {
	var lastErr error
	tried := 0
	for i := range r.replicas {
		if err := ctx.Err(); err != nil {
			if lastErr != nil {
				return nil, fmt.Errorf("%w (last replica error: %v)", err, lastErr)
			}
			return nil, err
		}
		b := r.breakers[i]
		if !b.Allow() {
			continue
		}
		tried++
		res, err := r.replicas[i].Search(ctx, q, k, ef)
		if err == nil {
			b.OnSuccess()
			if tried > 1 {
				// The primary (or an earlier replica) failed and a later
				// one answered: count the failover.
				obs.ReplicaFailovers.Add(int64(tried - 1))
				obs.SpanFrom(ctx).Annotate("replica_failovers", int64(tried-1))
			}
			return res, nil
		}
		if ctx.Err() != nil {
			// The deadline hit mid-call: the failure tells us nothing
			// about this replica, so leave its breaker alone.
			return nil, err
		}
		b.OnFailure()
		lastErr = err
	}
	if tried == 0 {
		return nil, fmt.Errorf("dist: all %d replicas rejected: %w", len(r.replicas), fault.ErrOpen)
	}
	return nil, fmt.Errorf("dist: all %d replicas failed: %w", len(r.replicas), lastErr)
}
