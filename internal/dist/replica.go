package dist

import (
	"fmt"
	"sync"

	"vdbms/internal/topk"
)

// Replication (Section 2.3(2): "the vector collection is sharded and
// replicated"): a ReplicaSet fronts several replicas of one shard and
// fails over between them. Reads prefer the lowest-index healthy
// replica (primary-first); a replica that errors is marked unhealthy
// and skipped until MarkHealthy or a successful retry of the set.

// ReplicaSet is a Shard backed by interchangeable replicas.
type ReplicaSet struct {
	mu       sync.Mutex
	replicas []Shard
	healthy  []bool
}

// NewReplicaSet wires replicas; at least one is required.
func NewReplicaSet(replicas ...Shard) (*ReplicaSet, error) {
	if len(replicas) == 0 {
		return nil, fmt.Errorf("dist: replica set needs at least one replica")
	}
	h := make([]bool, len(replicas))
	for i := range h {
		h[i] = true
	}
	return &ReplicaSet{replicas: replicas, healthy: h}, nil
}

// Count implements Shard (from the first healthy replica).
func (r *ReplicaSet) Count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i, rep := range r.replicas {
		if r.healthy[i] {
			return rep.Count()
		}
	}
	return 0
}

// Healthy reports how many replicas are currently serving.
func (r *ReplicaSet) Healthy() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, h := range r.healthy {
		if h {
			n++
		}
	}
	return n
}

// MarkHealthy re-enables a replica (e.g. after it was restarted).
func (r *ReplicaSet) MarkHealthy(i int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if i >= 0 && i < len(r.healthy) {
		r.healthy[i] = true
	}
}

// Search implements Shard with failover: replicas are tried in order;
// an erroring replica is marked unhealthy and the next one takes
// over. Only when every replica fails does the set return an error
// (wrapping the last failure).
func (r *ReplicaSet) Search(q []float32, k, ef int) ([]topk.Result, error) {
	var lastErr error
	for i := range r.replicas {
		r.mu.Lock()
		ok := r.healthy[i]
		rep := r.replicas[i]
		r.mu.Unlock()
		if !ok {
			continue
		}
		res, err := rep.Search(q, k, ef)
		if err == nil {
			return res, nil
		}
		lastErr = err
		r.mu.Lock()
		r.healthy[i] = false
		r.mu.Unlock()
	}
	// Desperation pass: retry everything once in case a replica
	// recovered since being marked down.
	for i, rep := range r.replicas {
		res, err := rep.Search(q, k, ef)
		if err == nil {
			r.MarkHealthy(i)
			return res, nil
		}
		lastErr = err
	}
	return nil, fmt.Errorf("dist: all %d replicas failed: %w", len(r.replicas), lastErr)
}
