package dist

import (
	"bufio"
	"context"
	"encoding/gob"
	"fmt"
	"io"
	"net"
	"net/rpc"
	"sync"
	"time"

	"vdbms/internal/topk"
)

// RPC transport: a shard served over net/rpc so experiments (and the
// vdbms-shard binary) can run shards as separate processes, the
// disaggregated deployment of Section 2.3(2).
//
// Deadlines propagate end to end: the client encodes its context's
// remaining budget into the request, the server re-derives a context
// from it, and the client additionally abandons the in-flight call
// the moment its own context is done (net/rpc multiplexes calls by
// sequence number, so an abandoned call does not poison the
// connection).

// SearchArgs is the RPC request.
type SearchArgs struct {
	Query []float32
	K     int
	Ef    int
	// TimeoutMillis carries the caller's remaining deadline budget so
	// the server can stop working on a query nobody is waiting for.
	// 0 means no deadline.
	TimeoutMillis int64
}

// SearchReply is the RPC response.
type SearchReply struct {
	Results []topk.Result
}

// ShardService exposes a Shard over net/rpc and tracks in-flight
// calls so a server can drain before shutting down. Counting happens
// in drainCodec, not the methods: net/rpc writes the response after
// the method returns, so a call is only "done" once its reply is
// flushed. (A WaitGroup cannot track this: rpc handlers Add from a
// zero counter while Shutdown Waits, which WaitGroup forbids — a
// condition variable does not.)
type ShardService struct {
	shard    Shard
	mu       sync.Mutex
	cond     *sync.Cond
	inflight int
}

func (s *ShardService) begin() {
	s.mu.Lock()
	if s.cond == nil {
		s.cond = sync.NewCond(&s.mu)
	}
	s.inflight++
	s.mu.Unlock()
}

func (s *ShardService) end() {
	s.mu.Lock()
	s.inflight--
	if s.inflight == 0 && s.cond != nil {
		s.cond.Broadcast()
	}
	s.mu.Unlock()
}

// waitDrained blocks until no calls are in flight.
func (s *ShardService) waitDrained() {
	s.mu.Lock()
	if s.cond == nil {
		s.cond = sync.NewCond(&s.mu)
	}
	for s.inflight > 0 {
		s.cond.Wait()
	}
	s.mu.Unlock()
}

// Search implements the RPC method.
func (s *ShardService) Search(args *SearchArgs, reply *SearchReply) error {
	ctx := context.Background()
	if args.TimeoutMillis > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(args.TimeoutMillis)*time.Millisecond)
		defer cancel()
	}
	res, err := s.shard.Search(ctx, args.Query, args.K, args.Ef)
	if err != nil {
		return err
	}
	reply.Results = res
	return nil
}

// CountArgs is the empty request for Count.
type CountArgs struct{}

// CountReply carries the shard size.
type CountReply struct{ N int }

// Count implements the RPC method.
func (s *ShardService) Count(_ *CountArgs, reply *CountReply) error {
	reply.N = s.shard.Count()
	return nil
}

// gobCodec is the standard gob-over-stream rpc.ServerCodec
// (equivalent to what rpc.ServeConn uses internally, which is not
// exported); we need our own so drainCodec can wrap it.
type gobCodec struct {
	rwc    io.ReadWriteCloser
	dec    *gob.Decoder
	enc    *gob.Encoder
	encBuf *bufio.Writer
	closed bool
}

func newGobCodec(conn io.ReadWriteCloser) *gobCodec {
	buf := bufio.NewWriter(conn)
	return &gobCodec{rwc: conn, dec: gob.NewDecoder(conn), enc: gob.NewEncoder(buf), encBuf: buf}
}

func (c *gobCodec) ReadRequestHeader(r *rpc.Request) error { return c.dec.Decode(r) }
func (c *gobCodec) ReadRequestBody(body any) error         { return c.dec.Decode(body) }

func (c *gobCodec) WriteResponse(r *rpc.Response, body any) error {
	if err := c.enc.Encode(r); err != nil {
		return err
	}
	if err := c.enc.Encode(body); err != nil {
		return err
	}
	return c.encBuf.Flush()
}

func (c *gobCodec) Close() error {
	if c.closed {
		return nil
	}
	c.closed = true
	return c.rwc.Close()
}

// drainCodec counts a call as in flight from the moment its request
// header is read until its response has been written and flushed —
// the only window in which tearing down the connection could lose a
// reply. net/rpc issues exactly one WriteResponse per successfully
// read header (even for invalid requests), so begin/end pair up.
type drainCodec struct {
	rpc.ServerCodec
	svc *ShardService
}

func (c *drainCodec) ReadRequestHeader(r *rpc.Request) error {
	err := c.ServerCodec.ReadRequestHeader(r)
	if err == nil {
		c.svc.begin()
	}
	return err
}

func (c *drainCodec) WriteResponse(r *rpc.Response, body any) error {
	err := c.ServerCodec.WriteResponse(r, body)
	c.svc.end()
	return err
}

// ShardServer serves a Shard over net/rpc with graceful shutdown:
// Shutdown stops accepting, waits for in-flight calls to drain
// (bounded by its context), then closes lingering connections.
type ShardServer struct {
	rpc *rpc.Server
	svc *ShardService

	mu        sync.Mutex
	listeners []net.Listener
	conns     map[net.Conn]struct{}
	closed    bool
}

// NewShardServer registers shard on a fresh rpc.Server.
func NewShardServer(shard Shard) (*ShardServer, error) {
	svc := &ShardService{shard: shard}
	srv := rpc.NewServer()
	if err := srv.RegisterName("Shard", svc); err != nil {
		return nil, err
	}
	return &ShardServer{rpc: srv, svc: svc, conns: map[net.Conn]struct{}{}}, nil
}

// Serve accepts connections on l until the listener closes. It
// returns immediately; callers may Serve multiple listeners.
func (s *ShardServer) Serve(l net.Listener) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		l.Close()
		return
	}
	s.listeners = append(s.listeners, l)
	s.mu.Unlock()
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return // listener closed
			}
			s.mu.Lock()
			if s.closed {
				s.mu.Unlock()
				conn.Close()
				return
			}
			s.conns[conn] = struct{}{}
			s.mu.Unlock()
			go func() {
				s.rpc.ServeCodec(&drainCodec{ServerCodec: newGobCodec(conn), svc: s.svc})
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
			}()
		}
	}()
}

// Shutdown closes the listeners, waits until in-flight calls finish
// or ctx is done (returning ctx.Err() in that case), then tears down
// remaining connections. It is safe to call once.
func (s *ShardServer) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.closed = true
	for _, l := range s.listeners {
		l.Close()
	}
	s.listeners = nil
	s.mu.Unlock()

	drained := make(chan struct{})
	go func() {
		s.svc.waitDrained()
		close(drained)
	}()
	var err error
	select {
	case <-drained:
	case <-ctx.Done():
		err = ctx.Err()
	}
	s.mu.Lock()
	for conn := range s.conns {
		conn.Close()
	}
	s.conns = map[net.Conn]struct{}{}
	s.mu.Unlock()
	return err
}

// ServeShard registers the shard on a fresh rpc.Server and serves the
// listener until it closes. It returns immediately; callers own the
// listener lifecycle. For drain-on-shutdown semantics use
// NewShardServer directly.
func ServeShard(l net.Listener, shard Shard) error {
	srv, err := NewShardServer(shard)
	if err != nil {
		return err
	}
	srv.Serve(l)
	return nil
}

// RPCShard is a Shard client backed by a net/rpc connection.
type RPCShard struct {
	client *rpc.Client
	n      int
}

// DialShard connects to a ServeShard endpoint.
func DialShard(addr string) (*RPCShard, error) {
	client, err := rpc.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("dist: dial %s: %w", addr, err)
	}
	var cr CountReply
	if err := client.Call("Shard.Count", &CountArgs{}, &cr); err != nil {
		client.Close()
		return nil, fmt.Errorf("dist: count %s: %w", addr, err)
	}
	return &RPCShard{client: client, n: cr.N}, nil
}

// Close tears down the connection.
func (s *RPCShard) Close() error { return s.client.Close() }

// Count implements Shard.
func (s *RPCShard) Count() int { return s.n }

// Search implements Shard. The context's remaining deadline is
// shipped to the server, and the call is abandoned client-side the
// moment ctx is done — a hung or slow shard cannot hold the caller
// past its deadline.
func (s *RPCShard) Search(ctx context.Context, q []float32, k, ef int) ([]topk.Result, error) {
	args := &SearchArgs{Query: q, K: k, Ef: ef}
	if dl, ok := ctx.Deadline(); ok {
		ms := time.Until(dl).Milliseconds()
		if ms <= 0 {
			return nil, context.DeadlineExceeded
		}
		args.TimeoutMillis = ms
	}
	var reply SearchReply
	call := s.client.Go("Shard.Search", args, &reply, make(chan *rpc.Call, 1))
	select {
	case <-ctx.Done():
		return nil, ctx.Err()
	case done := <-call.Done:
		if done.Error != nil {
			return nil, done.Error
		}
		return reply.Results, nil
	}
}
