package dist

import (
	"fmt"
	"net"
	"net/rpc"

	"vdbms/internal/topk"
)

// RPC transport: a shard served over net/rpc so experiments (and the
// vdbms-shard binary) can run shards as separate processes, the
// disaggregated deployment of Section 2.3(2).

// SearchArgs is the RPC request.
type SearchArgs struct {
	Query []float32
	K     int
	Ef    int
}

// SearchReply is the RPC response.
type SearchReply struct {
	Results []topk.Result
}

// ShardService exposes a Shard over net/rpc.
type ShardService struct {
	shard Shard
}

// Search implements the RPC method.
func (s *ShardService) Search(args *SearchArgs, reply *SearchReply) error {
	res, err := s.shard.Search(args.Query, args.K, args.Ef)
	if err != nil {
		return err
	}
	reply.Results = res
	return nil
}

// CountArgs is the empty request for Count.
type CountArgs struct{}

// CountReply carries the shard size.
type CountReply struct{ N int }

// Count implements the RPC method.
func (s *ShardService) Count(_ *CountArgs, reply *CountReply) error {
	reply.N = s.shard.Count()
	return nil
}

// ServeShard registers the shard on a fresh rpc.Server and serves the
// listener until it closes. It returns immediately; callers own the
// listener lifecycle.
func ServeShard(l net.Listener, shard Shard) error {
	srv := rpc.NewServer()
	if err := srv.RegisterName("Shard", &ShardService{shard: shard}); err != nil {
		return err
	}
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return // listener closed
			}
			go srv.ServeConn(conn)
		}
	}()
	return nil
}

// RPCShard is a Shard client backed by a net/rpc connection.
type RPCShard struct {
	client *rpc.Client
	n      int
}

// DialShard connects to a ServeShard endpoint.
func DialShard(addr string) (*RPCShard, error) {
	client, err := rpc.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("dist: dial %s: %w", addr, err)
	}
	var cr CountReply
	if err := client.Call("Shard.Count", &CountArgs{}, &cr); err != nil {
		client.Close()
		return nil, fmt.Errorf("dist: count %s: %w", addr, err)
	}
	return &RPCShard{client: client, n: cr.N}, nil
}

// Close tears down the connection.
func (s *RPCShard) Close() error { return s.client.Close() }

// Count implements Shard.
func (s *RPCShard) Count() int { return s.n }

// Search implements Shard.
func (s *RPCShard) Search(q []float32, k, ef int) ([]topk.Result, error) {
	var reply SearchReply
	if err := s.client.Call("Shard.Search", &SearchArgs{Query: q, K: k, Ef: ef}, &reply); err != nil {
		return nil, err
	}
	return reply.Results, nil
}
