package stats

import (
	"math/rand/v2"
	"sync"
	"sync/atomic"

	"vdbms/internal/filter"
)

// Sample is one captured live query: everything the recall auditor
// needs to replay it exactly — the query vector, the requested k, the
// predicate set, and the result ids the serving path actually
// returned. The vector and slices are owned by the sample (callers
// copy before offering) and never mutated afterwards, so snapshots
// can share them.
type Sample struct {
	Vector []float32
	K      int
	Preds  []filter.Predicate
	Served []int64
	// Epoch is an opaque staleness stamp supplied by the owner (core
	// stamps its in-place-update epoch): the auditor skips samples
	// whose stamp predates the collection's current epoch, because the
	// vector data they were ranked against has been overwritten since.
	Epoch uint64
}

// Reservoir is a concurrency-safe uniform reservoir sampler
// (Vitter's Algorithm R) over an unbounded query stream. The serving
// path pays one atomic add plus one cheap random draw per offer; the
// mutex is taken only when a sample is actually admitted, which
// happens with probability cap/n — vanishing at high query volume —
// so sampling never serializes the search hot path.
type Reservoir struct {
	capacity int
	seen     atomic.Int64
	// randN draws a uniform int64 in [0, n). The default is
	// math/rand/v2's lock-free global generator; tests inject a seeded
	// source for deterministic inclusion statistics.
	randN func(n int64) int64

	mu    sync.Mutex
	items []Sample
}

// NewReservoir creates a reservoir holding up to capacity samples.
func NewReservoir(capacity int) *Reservoir {
	if capacity <= 0 {
		capacity = 256
	}
	return &Reservoir{capacity: capacity, randN: rand.Int64N}
}

// NewReservoirRand is NewReservoir with an injected random source
// (randN must return a uniform draw in [0, n)). Tests use a seeded
// source so inclusion statistics are reproducible.
func NewReservoirRand(capacity int, randN func(n int64) int64) *Reservoir {
	r := NewReservoir(capacity)
	r.randN = randN
	return r
}

// Cap returns the reservoir capacity.
func (r *Reservoir) Cap() int { return r.capacity }

// Seen returns how many samples have been offered since the last
// Reset.
func (r *Reservoir) Seen() int64 { return r.seen.Load() }

// MaybeOffer runs Algorithm R's admission decision and calls mk only
// when the sample is admitted, so rejected offers never pay for
// copying the query vector. Under concurrency the per-item inclusion
// probability remains cap/n in expectation (admissions race only over
// which slot they overwrite).
func (r *Reservoir) MaybeOffer(mk func() Sample) {
	n := r.seen.Add(1)
	if n <= int64(r.capacity) {
		s := mk()
		r.mu.Lock()
		if len(r.items) < r.capacity {
			r.items = append(r.items, s)
		} else {
			// A racing late offer filled the reservoir first; fall back
			// to a uniform replacement so no offer is silently dropped
			// with probability above its Algorithm R share.
			r.items[r.randN(int64(r.capacity))] = s
		}
		r.mu.Unlock()
		return
	}
	j := r.randN(n)
	if j >= int64(r.capacity) {
		return
	}
	s := mk()
	r.mu.Lock()
	if int(j) < len(r.items) {
		r.items[j] = s
	}
	r.mu.Unlock()
}

// Offer is MaybeOffer for a sample that is already built.
func (r *Reservoir) Offer(s Sample) { r.MaybeOffer(func() Sample { return s }) }

// Snapshot returns a copy of the current reservoir contents. The
// sample structs are copied; their slices are shared but immutable by
// contract.
func (r *Reservoir) Snapshot() []Sample {
	r.mu.Lock()
	out := make([]Sample, len(r.items))
	copy(out, r.items)
	r.mu.Unlock()
	return out
}

// Len returns the number of samples currently held.
func (r *Reservoir) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.items)
}

// Reset empties the reservoir and zeroes the stream counter.
func (r *Reservoir) Reset() {
	r.mu.Lock()
	r.items = r.items[:0]
	r.seen.Store(0)
	r.mu.Unlock()
}
