package stats

import (
	"sync"
	"testing"
	"time"
)

func TestDistBucketsAndMean(t *testing.T) {
	d := NewDist(nil)
	for _, v := range []int64{1, 2, 3, 10, 2000} {
		d.Observe(v)
	}
	s := d.Snapshot()
	if s.Count != 5 {
		t.Fatalf("count = %d, want 5", s.Count)
	}
	if want := float64(1+2+3+10+2000) / 5; s.Mean != want {
		t.Fatalf("mean = %v, want %v", s.Mean, want)
	}
	// 1 -> edge 1; 2 -> edge 2; 3 -> edge 4; 10 -> edge 16; 2000 -> overflow (-1).
	want := map[int64]int64{1: 1, 2: 1, 4: 1, 16: 1, -1: 1}
	if len(s.Buckets) != len(want) {
		t.Fatalf("buckets = %v, want %v", s.Buckets, want)
	}
	for edge, n := range want {
		if s.Buckets[edge] != n {
			t.Fatalf("bucket %d = %d, want %d (%v)", edge, s.Buckets[edge], n, s.Buckets)
		}
	}
}

func TestSelHistClampAndMean(t *testing.T) {
	var h SelHist
	h.Observe(-0.5) // clamps to 0
	h.Observe(0.5)
	h.Observe(1.5) // clamps to 1
	mean, n := h.Mean()
	if n != 3 {
		t.Fatalf("count = %d, want 3", n)
	}
	if mean != 0.5 {
		t.Fatalf("mean = %v, want 0.5", mean)
	}
	s := h.Snapshot()
	if s.Buckets[0] != 1 || s.Buckets[10] != 1 || s.Buckets[19] != 1 {
		t.Fatalf("buckets = %v", s.Buckets)
	}
}

func TestRateWindow(t *testing.T) {
	now := time.Unix(1000, 0)
	r := NewRateClock(func() time.Time { return now })
	if got := r.PerSecond(); got != 0 {
		t.Fatalf("rate before any Mark = %v, want 0", got)
	}
	r.Mark(60)
	// Warm-up: the divisor is the elapsed portion of the window, not
	// the full 60s — a burst in the first second reads at full rate.
	if got := r.PerSecond(); got != 60 {
		t.Fatalf("rate = %v, want 60 (burst over 1 elapsed second)", got)
	}
	// 100 events/s sustained for 10s reads as 100/s mid-warm-up, not
	// diluted over the empty remainder of the window.
	for i := 0; i < 9; i++ {
		now = now.Add(time.Second)
		r.Mark(100)
	}
	if got, want := r.PerSecond(), float64(60+9*100)/10; got != want {
		t.Fatalf("warm-up rate = %v, want %v", got, want)
	}
	// Once the first Mark is a full window in the past, the divisor
	// caps at the window length.
	for i := 0; i < 60; i++ {
		now = now.Add(time.Second)
		r.Mark(10)
	}
	got := r.PerSecond()
	if got < 9 || got > 11 {
		t.Fatalf("steady-state rate = %v, want ~10 (600 events over the 60s window)", got)
	}
	// Far outside the window the events age out.
	now = now.Add(10 * time.Minute)
	if got := r.PerSecond(); got != 0 {
		t.Fatalf("rate after window = %v, want 0", got)
	}
}

func TestRecordQueryGating(t *testing.T) {
	c := New("c")
	c.RecordQuery(10, 64, 0, true)
	c.SetEnabled(false)
	c.RecordQuery(20, 0, 0, false)
	s := c.Snapshot(0, 0, 0)
	if s.Queries != 2 {
		t.Fatalf("queries = %d, want 2 (raw counter stays on)", s.Queries)
	}
	if s.K.Count != 1 {
		t.Fatalf("k observations = %d, want 1 (shape recording gated off)", s.K.Count)
	}
	if s.FilteredFraction != 0.5 {
		t.Fatalf("filtered fraction = %v, want 0.5", s.FilteredFraction)
	}
	c.RecordProbe(100)
	if _, n := c.MeanProbeComps(); n != 0 {
		t.Fatalf("probe recorded while disabled: n=%d", n)
	}
}

func TestSelectivityPrior(t *testing.T) {
	c := New("c")
	for i := 0; i < 4; i++ {
		c.RecordSelectivity("a", 0.2)
	}
	c.RecordSelectivity("b", 0.6)

	if _, _, ok := c.SelectivityPrior([]string{"a", "missing"}); ok {
		t.Fatal("prior over an unobserved column reported ok")
	}
	mean, minObs, ok := c.SelectivityPrior([]string{"a", "b"})
	if !ok {
		t.Fatal("prior not ok")
	}
	if want := (0.2 + 0.6) / 2; mean < want-1e-9 || mean > want+1e-9 {
		t.Fatalf("prior mean = %v, want %v", mean, want)
	}
	if minObs != 1 {
		t.Fatalf("minObs = %d, want 1 (column b)", minObs)
	}
}

func TestCollectionSnapshotCounters(t *testing.T) {
	c := New("c")
	c.RecordInsert(3)
	c.RecordUpdate()
	c.RecordDelete()
	s := c.Snapshot(10, 9, 8)
	if s.Rows != 10 || s.Live != 9 || s.Deleted != 1 || s.Dim != 8 {
		t.Fatalf("row section = %+v", s)
	}
	if s.Inserts != 3 || s.Updates != 1 || s.Deletes != 1 {
		t.Fatalf("counters = %+v", s)
	}
	if s.InsertsPerSec <= 0 {
		t.Fatalf("insert rate = %v, want > 0", s.InsertsPerSec)
	}
}

// TestConcurrentRecording exercises every record path from many
// goroutines; meaningful under -race.
func TestConcurrentRecording(t *testing.T) {
	c := New("c")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				c.RecordQuery(10, 64, 4, i%2 == 0)
				c.RecordProbe(100)
				c.RecordSelectivity("col", 0.3)
				c.RecordInsert(1)
				if i%50 == 0 {
					_ = c.Snapshot(100, 90, 8)
					_, _, _ = c.SelectivityPrior([]string{"col"})
				}
			}
		}(g)
	}
	wg.Wait()
	s := c.Snapshot(100, 90, 8)
	if s.Queries != 4000 || s.Inserts != 4000 {
		t.Fatalf("queries=%d inserts=%d, want 4000/4000", s.Queries, s.Inserts)
	}
	if s.ProbeCount != 4000 || s.MeanProbeComps != 100 {
		t.Fatalf("probes=%d mean=%v, want 4000/100", s.ProbeCount, s.MeanProbeComps)
	}
	if got := s.Selectivity["col"].Count; got != 4000 {
		t.Fatalf("selectivity observations = %d, want 4000", got)
	}
}

func TestCalibration(t *testing.T) {
	c := New("cal")
	if cal := c.Calibration(); cal.NsPerComp != 0 || cal.CompScans != 0 {
		t.Fatalf("fresh calibration = %+v", cal)
	}
	// 10 full-precision scans at 100ns/comp, 4 quantized at 30ns/comp,
	// 6 attr scans at 20ns/eval.
	for i := 0; i < 10; i++ {
		c.RecordCompCost(100_000, 1000, false)
	}
	for i := 0; i < 4; i++ {
		c.RecordCompCost(30_000, 1000, true)
	}
	for i := 0; i < 6; i++ {
		c.RecordAttrCost(20_000, 1000)
	}
	cal := c.Calibration()
	if cal.NsPerComp != 100 || cal.NsPerQuantComp != 30 || cal.NsPerAttrEval != 20 {
		t.Fatalf("calibration costs = %+v", cal)
	}
	if cal.CompScans != 10 || cal.QuantScans != 4 || cal.AttrScans != 6 {
		t.Fatalf("calibration scan counts = %+v", cal)
	}
	// Garbage observations are dropped, not folded in.
	c.RecordCompCost(-5, 1000, false)
	c.RecordCompCost(100, 0, false)
	c.RecordAttrCost(0, 10)
	if got := c.Calibration(); got != cal {
		t.Fatalf("garbage observation changed calibration: %+v", got)
	}
	// Disabled tracker records nothing.
	c.SetEnabled(false)
	c.RecordCompCost(100_000, 1000, false)
	c.RecordAttrCost(100_000, 1000)
	if got := c.Calibration(); got != cal {
		t.Fatalf("disabled tracker recorded calibration: %+v", got)
	}
	// Snapshot carries the calibration through.
	c.SetEnabled(true)
	if s := c.Snapshot(0, 0, 0); s.Calibration != cal {
		t.Fatalf("snapshot calibration = %+v, want %+v", s.Calibration, cal)
	}
}
