package stats

import (
	"math/rand/v2"
	"sync"
	"testing"
)

func TestReservoirFillsToCapacity(t *testing.T) {
	r := NewReservoir(8)
	for i := 0; i < 8; i++ {
		r.Offer(Sample{K: i})
	}
	if r.Len() != 8 || r.Seen() != 8 {
		t.Fatalf("len=%d seen=%d, want 8/8", r.Len(), r.Seen())
	}
	// Below capacity every offer is retained in order.
	for i, s := range r.Snapshot() {
		if s.K != i {
			t.Fatalf("slot %d holds K=%d", i, s.K)
		}
	}
	r.Offer(Sample{K: 99})
	if r.Len() != 8 {
		t.Fatalf("len grew past capacity: %d", r.Len())
	}
	r.Reset()
	if r.Len() != 0 || r.Seen() != 0 {
		t.Fatalf("reset left len=%d seen=%d", r.Len(), r.Seen())
	}
}

func TestMaybeOfferSkipsRejectedCopies(t *testing.T) {
	// Inject a random source that always rejects once the reservoir is
	// full: mk must not run for rejected offers.
	r := NewReservoirRand(2, func(n int64) int64 { return n - 1 })
	calls := 0
	for i := 0; i < 10; i++ {
		r.MaybeOffer(func() Sample { calls++; return Sample{} })
	}
	if calls != 2 {
		t.Fatalf("mk ran %d times, want 2 (only admitted offers pay the copy)", calls)
	}
}

// TestReservoirUniformInclusion checks Algorithm R's defining
// property: after a stream of N offers through a capacity-C
// reservoir, every stream position is retained with probability C/N.
// Aggregating retained positions into deciles over many seeded trials
// and chi-squared-testing against the uniform expectation catches
// both biased admission and biased eviction.
func TestReservoirUniformInclusion(t *testing.T) {
	const (
		capacity = 50
		stream   = 2000
		trials   = 200
		buckets  = 10
	)
	counts := make([]int64, buckets)
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewPCG(42, uint64(trial)))
		r := NewReservoirRand(capacity, rng.Int64N)
		for i := 0; i < stream; i++ {
			r.Offer(Sample{K: i})
		}
		for _, s := range r.Snapshot() {
			counts[s.K*buckets/stream]++
		}
	}
	expected := float64(capacity*trials) / buckets
	var chi2 float64
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	// 9 degrees of freedom; p=0.001 critical value 27.88. A uniform
	// sampler fails this with probability 0.1% per seed — and the seeds
	// are fixed, so the test is deterministic.
	if chi2 > 27.88 {
		t.Fatalf("chi-squared = %.2f > 27.88: inclusion not uniform (decile counts %v, expected %.0f each)",
			chi2, counts, expected)
	}
}

// TestReservoirConcurrentOfferSnapshot stresses concurrent offers,
// snapshots, and resets; meaningful under -race.
func TestReservoirConcurrentOfferSnapshot(t *testing.T) {
	r := NewReservoir(32)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				r.Offer(Sample{K: g*2000 + i, Vector: []float32{float32(i)}})
			}
		}(g)
	}
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				for _, s := range r.Snapshot() {
					if len(s.Vector) != 1 {
						t.Error("torn sample in snapshot")
						return
					}
				}
				_ = r.Len()
			}
		}()
	}
	wg.Wait()
	if r.Seen() != 16000 {
		t.Fatalf("seen = %d, want 16000", r.Seen())
	}
	if r.Len() != 32 {
		t.Fatalf("len = %d, want 32", r.Len())
	}
}
