// Package stats maintains per-collection online statistics: row
// counts and churn rates, query-shape distributions (k, ef, nprobe,
// filter presence), per-attribute filter selectivity histograms fed by
// measured survivor fractions from executed scans (bitmap
// cardinalities, per-row filter pass rates — never the planner's
// sampled estimate), and observed ANN probe cost. It is the
// measurement substrate of the survey's §2.4 argument that plan
// enumeration is only as good as the statistics behind it: the
// adaptive planner (planner.AdaptiveEnv, the "adaptive" policy)
// consumes these observations in place of static heuristics, and the
// recall auditor (internal/core) replays the query reservoir
// (reservoir.go) to measure recall actually served.
//
// Hot-path constraint: recording an observation is a handful of atomic
// adds, mirroring internal/obs — a query must never take a contended
// lock to be counted. The only mutexes guard the per-column
// selectivity map (read-locked after first use) and the churn-rate
// ring (mutation-path only, far off the search hot path).
package stats

import (
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// Dist is a fixed-bucket distribution over small non-negative integer
// observations (k, ef, nprobe). Bounds are inclusive upper edges;
// observations above the last edge land in the implicit overflow
// bucket. Observe is two atomic adds.
type Dist struct {
	bounds []int64
	counts []atomic.Int64 // len(bounds)+1, last is overflow
	total  atomic.Int64
	sum    atomic.Int64
}

// ShapeBounds are the default bucket edges for query-shape
// distributions, covering the practical k/ef/nprobe range.
var ShapeBounds = []int64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}

// NewDist creates a distribution with the given inclusive upper
// edges (ShapeBounds when nil). Edges must be ascending.
func NewDist(bounds []int64) *Dist {
	if bounds == nil {
		bounds = ShapeBounds
	}
	bs := make([]int64, len(bounds))
	copy(bs, bounds)
	return &Dist{bounds: bs, counts: make([]atomic.Int64, len(bs)+1)}
}

// Observe records one value.
func (d *Dist) Observe(v int64) {
	i := 0
	for i < len(d.bounds) && v > d.bounds[i] {
		i++
	}
	d.counts[i].Add(1)
	d.total.Add(1)
	d.sum.Add(v)
}

// Count returns the number of observations.
func (d *Dist) Count() int64 { return d.total.Load() }

// DistSnapshot is the JSON-friendly view of a Dist.
type DistSnapshot struct {
	Count   int64           `json:"count"`
	Mean    float64         `json:"mean"`
	Buckets map[int64]int64 `json:"buckets,omitempty"` // upper edge -> count; -1 is overflow
}

// Snapshot materializes the distribution. Zero-count buckets are
// omitted to keep /debug/stats readable.
func (d *Dist) Snapshot() DistSnapshot {
	out := DistSnapshot{Buckets: map[int64]int64{}}
	out.Count = d.total.Load()
	if out.Count > 0 {
		out.Mean = float64(d.sum.Load()) / float64(out.Count)
	}
	for i := range d.counts {
		c := d.counts[i].Load()
		if c == 0 {
			continue
		}
		edge := int64(-1) // overflow
		if i < len(d.bounds) {
			edge = d.bounds[i]
		}
		out.Buckets[edge] = c
	}
	return out
}

// selBuckets is the resolution of selectivity histograms: 20 uniform
// buckets over [0,1].
const selBuckets = 20

// SelHist is a histogram of observed predicate selectivities in [0,1]
// for one attribute column.
type SelHist struct {
	counts [selBuckets]atomic.Int64
	total  atomic.Int64
	sum    atomic.Uint64 // float64 bits of the running sum
}

// Observe records one selectivity observation (clamped to [0,1]).
func (h *SelHist) Observe(sel float64) {
	if sel < 0 {
		sel = 0
	}
	if sel > 1 {
		sel = 1
	}
	i := int(sel * selBuckets)
	if i >= selBuckets {
		i = selBuckets - 1
	}
	h.counts[i].Add(1)
	h.total.Add(1)
	for {
		old := h.sum.Load()
		nv := math.Float64frombits(old) + sel
		if h.sum.CompareAndSwap(old, math.Float64bits(nv)) {
			break
		}
	}
}

// Mean returns the mean observed selectivity and the observation
// count (0, 0 when empty).
func (h *SelHist) Mean() (float64, int64) {
	n := h.total.Load()
	if n == 0 {
		return 0, 0
	}
	return math.Float64frombits(h.sum.Load()) / float64(n), n
}

// SelSnapshot is the JSON-friendly view of a SelHist. Buckets[i]
// counts observations in [i/20, (i+1)/20).
type SelSnapshot struct {
	Count   int64   `json:"count"`
	Mean    float64 `json:"mean"`
	Buckets []int64 `json:"buckets"`
}

// Snapshot materializes the histogram.
func (h *SelHist) Snapshot() SelSnapshot {
	mean, n := h.Mean()
	out := SelSnapshot{Count: n, Mean: mean, Buckets: make([]int64, selBuckets)}
	for i := range h.counts {
		out.Buckets[i] = h.counts[i].Load()
	}
	return out
}

// rateWindow is the churn-rate horizon: events are counted in
// rateSlots buckets of rateSlotDur each, and Rate.PerSecond averages
// over however much of the window has data.
const (
	rateSlotDur = 10 * time.Second
	rateSlots   = 6
)

// Rate tracks a windowed event rate (events/second over the last
// minute). Mark sits on the mutation path, not the search hot path,
// so a short mutex is fine; now is injectable for tests.
type Rate struct {
	mu      sync.Mutex
	slots   [rateSlots]int64
	epoch   [rateSlots]int64 // slot index (unix/rateSlotDur) the count belongs to
	started bool
	first   int64 // unix second of the first Mark (warm-up divisor)
	now     func() time.Time
}

// NewRate returns a rate tracker using the real clock.
func NewRate() *Rate { return &Rate{now: time.Now} }

// NewRateClock returns a rate tracker on an injected clock (tests).
func NewRateClock(now func() time.Time) *Rate { return &Rate{now: now} }

// Mark records n events now.
func (r *Rate) Mark(n int64) {
	t := r.now().Unix()
	e := t / int64(rateSlotDur/time.Second)
	i := int(e % rateSlots)
	r.mu.Lock()
	if !r.started {
		r.started, r.first = true, t
	}
	if r.epoch[i] != e {
		r.epoch[i], r.slots[i] = e, 0
	}
	r.slots[i] += n
	r.mu.Unlock()
}

// PerSecond returns the event rate over the trailing window. Until the
// window fills, the divisor is the time elapsed since the first Mark
// (counting the first marked second as whole), so a fresh tracker
// reports its true rate instead of diluting it over empty slots.
func (r *Rate) PerSecond() float64 {
	t := r.now().Unix()
	e := t / int64(rateSlotDur/time.Second)
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.started {
		return 0
	}
	var total int64
	for i := range r.slots {
		if e-r.epoch[i] < rateSlots {
			total += r.slots[i]
		}
	}
	elapsed := float64(t-r.first) + 1
	if window := (rateSlots * rateSlotDur).Seconds(); elapsed > window {
		elapsed = window
	}
	return float64(total) / elapsed
}

// Collection tracks online statistics for one collection. All record
// methods are safe for concurrent use; the query-side ones are a few
// atomic adds. Enabled gates query-shape recording and reservoir
// sampling (the toggle the observability overhead benchmark flips);
// the mutation counters stay on regardless because they cost nothing
// and recovery/tests rely on them.
type Collection struct {
	name    string
	enabled atomic.Bool

	inserts, updates, deletes atomic.Int64
	insertRate, updateRate    *Rate
	deleteRate, queryRate     *Rate

	queries  atomic.Int64
	filtered atomic.Int64
	kDist    *Dist
	efDist   *Dist
	nprobe   *Dist

	// ANN probe cost: distance computations per non-exact index probe,
	// the observed replacement for the planner's sqrt(N) IndexComps
	// heuristic.
	probeCount atomic.Int64
	probeComps atomic.Int64

	// Timing calibration: cumulative wall nanoseconds and unit counts
	// for each cost class the planner's linear model weighs, fed by
	// the executor's stage timers. Ratios of the per-unit costs
	// replace the model's static constants (AttrCostRatio, QuantRatio)
	// once enough scans back them. Scan counts — not unit counts —
	// gate trust, because one scan contributes one (already averaged)
	// timing observation however many rows it touched.
	fullCompNanos  atomic.Int64 // full-precision distance comps
	fullComps      atomic.Int64
	fullScans      atomic.Int64
	quantCompNanos atomic.Int64 // quantized-code comparisons
	quantComps     atomic.Int64
	quantScans     atomic.Int64
	attrNanos      atomic.Int64 // attribute predicate evaluations
	attrEvals      atomic.Int64
	attrScans      atomic.Int64

	selMu sync.RWMutex
	sel   map[string]*SelHist
}

// New creates an enabled stats tracker for the named collection.
func New(name string) *Collection {
	c := &Collection{
		name:       name,
		insertRate: NewRate(),
		updateRate: NewRate(),
		deleteRate: NewRate(),
		queryRate:  NewRate(),
		kDist:      NewDist(nil),
		efDist:     NewDist(nil),
		nprobe:     NewDist(nil),
		sel:        map[string]*SelHist{},
	}
	c.enabled.Store(true)
	return c
}

// SetEnabled toggles query-shape recording and reservoir sampling.
func (c *Collection) SetEnabled(on bool) { c.enabled.Store(on) }

// Enabled reports whether query observation is on.
func (c *Collection) Enabled() bool { return c.enabled.Load() }

// RecordInsert counts n inserted rows.
func (c *Collection) RecordInsert(n int64) {
	c.inserts.Add(n)
	c.insertRate.Mark(n)
}

// RecordUpdate counts one in-place vector update.
func (c *Collection) RecordUpdate() {
	c.updates.Add(1)
	c.updateRate.Mark(1)
}

// RecordDelete counts one deletion.
func (c *Collection) RecordDelete() {
	c.deletes.Add(1)
	c.deleteRate.Mark(1)
}

// RecordQuery records one search's shape. ef/nprobe zero means "index
// default" and is recorded as such (bucket 1 counts explicit 1s;
// zeros land in the first bucket too — the distribution is about the
// knobs clients actually send).
func (c *Collection) RecordQuery(k, ef, nprobe int, hasFilter bool) {
	c.queries.Add(1)
	c.queryRate.Mark(1)
	if !c.enabled.Load() {
		return
	}
	if hasFilter {
		c.filtered.Add(1)
	}
	c.kDist.Observe(int64(k))
	c.efDist.Observe(int64(ef))
	c.nprobe.Observe(int64(nprobe))
}

// RecordProbe records one ANN index probe's distance-computation
// count. Exact (flat) scans are excluded by the caller: the statistic
// estimates the cost of an index probe, which is what the adaptive
// cost model needs.
func (c *Collection) RecordProbe(comps int64) {
	if !c.enabled.Load() {
		return
	}
	c.probeCount.Add(1)
	c.probeComps.Add(comps)
}

// MeanProbeComps returns the mean distance computations per ANN probe
// and the probe count (0, 0 before the first probe).
func (c *Collection) MeanProbeComps() (float64, int64) {
	n := c.probeCount.Load()
	if n == 0 {
		return 0, 0
	}
	return float64(c.probeComps.Load()) / float64(n), n
}

// RecordCompCost records the wall time of one scan's distance
// computations: nanos spent performing comps comparisons, quantized
// when the scan compared compressed codes instead of full-precision
// vectors. Fed by the executor's probe-stage timer (ANN probes) and
// exact-scan timer (flat probes, the cleanest full-precision
// baseline).
func (c *Collection) RecordCompCost(nanos, comps int64, quantized bool) {
	if !c.enabled.Load() || nanos <= 0 || comps <= 0 {
		return
	}
	if quantized {
		c.quantCompNanos.Add(nanos)
		c.quantComps.Add(comps)
		c.quantScans.Add(1)
	} else {
		c.fullCompNanos.Add(nanos)
		c.fullComps.Add(comps)
		c.fullScans.Add(1)
	}
}

// RecordAttrCost records the wall time of one scan's attribute
// predicate work: nanos spent performing evals predicate evaluations
// (a bitmap build evaluates every live row once).
func (c *Collection) RecordAttrCost(nanos, evals int64) {
	if !c.enabled.Load() || nanos <= 0 || evals <= 0 {
		return
	}
	c.attrNanos.Add(nanos)
	c.attrEvals.Add(evals)
	c.attrScans.Add(1)
}

// Calibration is the measured per-unit cost of each class in the
// planner's linear model, with the scan counts backing each estimate.
type Calibration struct {
	NsPerComp      float64 `json:"ns_per_comp"`       // full-precision distance comp
	NsPerQuantComp float64 `json:"ns_per_quant_comp"` // quantized-code comparison
	NsPerAttrEval  float64 `json:"ns_per_attr_eval"`  // attribute predicate evaluation
	CompScans      int64   `json:"comp_scans"`
	QuantScans     int64   `json:"quant_scans"`
	AttrScans      int64   `json:"attr_scans"`
}

// Calibration returns the current per-unit cost estimates. Zero-count
// classes report a zero cost; consumers gate on the scan counts.
func (c *Collection) Calibration() Calibration {
	cal := Calibration{
		CompScans:  c.fullScans.Load(),
		QuantScans: c.quantScans.Load(),
		AttrScans:  c.attrScans.Load(),
	}
	if n := c.fullComps.Load(); n > 0 {
		cal.NsPerComp = float64(c.fullCompNanos.Load()) / float64(n)
	}
	if n := c.quantComps.Load(); n > 0 {
		cal.NsPerQuantComp = float64(c.quantCompNanos.Load()) / float64(n)
	}
	if n := c.attrEvals.Load(); n > 0 {
		cal.NsPerAttrEval = float64(c.attrNanos.Load()) / float64(n)
	}
	return cal
}

// RecordSelectivity records one measured selectivity for column col
// (a survivor fraction observed during execution, not an estimate).
// Multi-predicate conjunctions record the conjunction's selectivity
// under each referenced column — a per-column prior, deliberately
// coarse (DESIGN.md §11).
func (c *Collection) RecordSelectivity(col string, sel float64) {
	if !c.enabled.Load() {
		return
	}
	c.selMu.RLock()
	h := c.sel[col]
	c.selMu.RUnlock()
	if h == nil {
		c.selMu.Lock()
		if h = c.sel[col]; h == nil {
			h = &SelHist{}
			c.sel[col] = h
		}
		c.selMu.Unlock()
	}
	h.Observe(sel)
}

// SelectivityPrior returns the mean observed selectivity across the
// given columns (the coarse per-column prior) and the smallest
// per-column observation count. ok is false when any column has no
// observations.
func (c *Collection) SelectivityPrior(cols []string) (mean float64, minObs int64, ok bool) {
	if len(cols) == 0 {
		return 0, 0, false
	}
	var sum float64
	minObs = -1
	c.selMu.RLock()
	defer c.selMu.RUnlock()
	for _, col := range cols {
		h := c.sel[col]
		if h == nil {
			return 0, 0, false
		}
		m, n := h.Mean()
		if n == 0 {
			return 0, 0, false
		}
		sum += m
		if minObs < 0 || n < minObs {
			minObs = n
		}
	}
	return sum / float64(len(cols)), minObs, true
}

// Snapshot is the JSON-friendly view of a collection's statistics,
// rendered into /debug/stats, collection info, and the public
// Collection.Stats API. Rows/live/dim are supplied by the caller
// (they live in the collection's epoch snapshot, not here).
type Snapshot struct {
	Rows    int `json:"rows"`
	Live    int `json:"live"`
	Deleted int `json:"deleted"`
	Dim     int `json:"dim"`

	Inserts int64 `json:"inserts"`
	Updates int64 `json:"updates"`
	Deletes int64 `json:"deletes"`
	Queries int64 `json:"queries"`

	InsertsPerSec float64 `json:"inserts_per_sec"`
	UpdatesPerSec float64 `json:"updates_per_sec"`
	DeletesPerSec float64 `json:"deletes_per_sec"`
	QueriesPerSec float64 `json:"queries_per_sec"`

	FilteredFraction float64      `json:"filtered_fraction"`
	K                DistSnapshot `json:"k"`
	Ef               DistSnapshot `json:"ef"`
	NProbe           DistSnapshot `json:"nprobe"`

	ProbeCount     int64   `json:"ann_probes"`
	MeanProbeComps float64 `json:"ann_probe_mean_comps"`

	Calibration Calibration `json:"calibration"`

	Selectivity map[string]SelSnapshot `json:"selectivity,omitempty"`
}

// Snapshot materializes the statistics alongside the caller-supplied
// row counts and dimension.
func (c *Collection) Snapshot(rows, live, dim int) Snapshot {
	s := Snapshot{
		Rows: rows, Live: live, Deleted: rows - live, Dim: dim,
		Inserts: c.inserts.Load(), Updates: c.updates.Load(),
		Deletes: c.deletes.Load(), Queries: c.queries.Load(),
		InsertsPerSec: c.insertRate.PerSecond(),
		UpdatesPerSec: c.updateRate.PerSecond(),
		DeletesPerSec: c.deleteRate.PerSecond(),
		QueriesPerSec: c.queryRate.PerSecond(),
		K:             c.kDist.Snapshot(),
		Ef:            c.efDist.Snapshot(),
		NProbe:        c.nprobe.Snapshot(),
	}
	if s.Queries > 0 {
		s.FilteredFraction = float64(c.filtered.Load()) / float64(s.Queries)
	}
	s.MeanProbeComps, s.ProbeCount = c.MeanProbeComps()
	s.Calibration = c.Calibration()
	c.selMu.RLock()
	if len(c.sel) > 0 {
		s.Selectivity = make(map[string]SelSnapshot, len(c.sel))
		for col, h := range c.sel {
			s.Selectivity[col] = h.Snapshot()
		}
	}
	c.selMu.RUnlock()
	return s
}
