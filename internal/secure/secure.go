// Package secure implements secure k-NN search over outsourced
// vectors, the open problem of Section 2.6(4) (citing secure k-NN
// [88] and secure top-k inner product retrieval [93]). The scheme is
// asymmetric scalar-product-preserving encryption (ASPE, Wong et al.):
//
//   - the data owner augments each vector x to x^ = (x, -||x||^2/2)
//     and encrypts it as Ex = M^T x^ with a secret invertible matrix M;
//   - a trusted client augments a query q to q^ = r*(q, 1) with a
//     fresh random r > 0 and encrypts it as Eq = M^{-1} q^;
//   - the untrusted server computes Ex . Eq = x^ . q^ =
//     r*(q.x - ||x||^2/2), whose descending order equals the ascending
//     order of ||x - q||^2 — so it can rank without learning either
//     the vectors or the query (the r factor re-randomizes every
//     query's scores).
//
// The server never holds M; distances *between* encrypted vectors are
// scrambled, so it cannot run k-NN among the stored points either
// (verified in the tests).
package secure

import (
	"fmt"
	"math/rand"

	"vdbms/internal/matrix"
	"vdbms/internal/topk"
)

// Key is the data owner's secret.
type Key struct {
	dim  int
	m    *matrix.Dense // (dim+1) x (dim+1)
	mInv *matrix.Dense
	rng  *rand.Rand
}

// NewKey generates a key for vectors of the given dimensionality.
func NewKey(dim int, seed int64) (*Key, error) {
	if dim <= 0 {
		return nil, fmt.Errorf("secure: dimension must be positive")
	}
	if seed == 0 {
		seed = 1
	}
	rng := rand.New(rand.NewSource(seed))
	m, inv := matrix.RandomInvertible(dim+1, rng)
	return &Key{dim: dim, m: m, mInv: inv, rng: rng}, nil
}

// Dim returns the plaintext dimensionality.
func (k *Key) Dim() int { return k.dim }

// EncryptVector produces the server-side representation of x. The
// encrypted domain is float64: the random mixing matrix amplifies
// float32 rounding enough to flip near-tied ranks, so ciphertexts
// carry double precision.
func (k *Key) EncryptVector(x []float32) ([]float64, error) {
	if len(x) != k.dim {
		return nil, fmt.Errorf("secure: vector dim %d, key dim %d", len(x), k.dim)
	}
	aug := make([]float64, k.dim+1)
	var norm2 float64
	for i, v := range x {
		aug[i] = float64(v)
		norm2 += float64(v) * float64(v)
	}
	aug[k.dim] = -norm2 / 2
	return mulVec64(k.m.T(), aug), nil
}

// EncryptQuery produces a one-time encrypted query token. A fresh
// random positive scale per call prevents the server from comparing
// scores across queries.
func (k *Key) EncryptQuery(q []float32) ([]float64, error) {
	if len(q) != k.dim {
		return nil, fmt.Errorf("secure: query dim %d, key dim %d", len(q), k.dim)
	}
	r := k.rng.Float64()*9 + 1 // r in [1, 10)
	aug := make([]float64, k.dim+1)
	for i, v := range q {
		aug[i] = r * float64(v)
	}
	aug[k.dim] = r
	return mulVec64(k.mInv, aug), nil
}

// mulVec64 computes m*v in float64.
func mulVec64(m *matrix.Dense, v []float64) []float64 {
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		var s float64
		for j, x := range v {
			s += row[j] * x
		}
		out[i] = s
	}
	return out
}

// Server stores encrypted vectors and answers encrypted queries. It
// has no access to the key; ranking uses only dot products in the
// encrypted space.
type Server struct {
	dim  int // encrypted dimensionality (plaintext dim + 1)
	data []float64
	ids  []int64
}

// NewServer creates an empty store for encrypted vectors of the given
// plaintext dimensionality.
func NewServer(plainDim int) *Server { return &Server{dim: plainDim + 1} }

// Add stores an encrypted vector under id.
func (s *Server) Add(id int64, enc []float64) error {
	if len(enc) != s.dim {
		return fmt.Errorf("secure: encrypted dim %d, server dim %d", len(enc), s.dim)
	}
	s.data = append(s.data, enc...)
	s.ids = append(s.ids, id)
	return nil
}

// Len returns the stored vector count.
func (s *Server) Len() int { return len(s.ids) }

// scoreScale compresses float64 scores into the float32 Dist field of
// topk.Result without reordering (positive constant divide).
const scoreScale = 1 << 20

// TopK ranks stored vectors by descending encrypted inner product with
// the query token — equivalently ascending true L2 distance — and
// returns the k best. Dist fields carry the *negated, scaled encrypted
// score*, which preserves order but is meaningless as a distance (by
// design: the server must not learn true distances).
func (s *Server) TopK(encQuery []float64, k int) ([]topk.Result, error) {
	if len(encQuery) != s.dim {
		return nil, fmt.Errorf("secure: query token dim %d, server dim %d", len(encQuery), s.dim)
	}
	if k <= 0 {
		return nil, fmt.Errorf("secure: k must be positive")
	}
	c := topk.NewCollector(k)
	for i, id := range s.ids {
		var score float64
		row := s.data[i*s.dim : (i+1)*s.dim]
		for j, x := range encQuery {
			score += x * row[j]
		}
		c.Push(id, float32(-score/scoreScale))
	}
	return c.Results(), nil
}
