package secure

import (
	"math"
	"testing"

	"vdbms/internal/dataset"
	"vdbms/internal/topk"
	"vdbms/internal/vec"
)

func setup(t *testing.T, n, d int) (*Key, *Server, *dataset.Dataset) {
	t.Helper()
	key, err := NewKey(d, 7)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(d)
	ds := dataset.Clustered(n, d, 5, 0.4, 1)
	for i := 0; i < n; i++ {
		enc, err := key.EncryptVector(ds.Row(i))
		if err != nil {
			t.Fatal(err)
		}
		if err := srv.Add(int64(i), enc); err != nil {
			t.Fatal(err)
		}
	}
	return key, srv, ds
}

func TestSecureTopKMatchesPlaintext(t *testing.T) {
	key, srv, ds := setup(t, 500, 16)
	truth := dataset.GroundTruth(vec.SquaredL2, ds, ds.Queries(20, 0.05, 2), 10)
	qs := ds.Queries(20, 0.05, 2)
	for qi, q := range qs {
		tok, err := key.EncryptQuery(q)
		if err != nil {
			t.Fatal(err)
		}
		got, err := srv.TopK(tok, 10)
		if err != nil {
			t.Fatal(err)
		}
		// Exact id-for-id agreement with plaintext exact k-NN.
		for i := range got {
			if got[i].ID != truth[qi][i].ID {
				t.Fatalf("query %d rank %d: secure %d, plaintext %d",
					qi, i, got[i].ID, truth[qi][i].ID)
			}
		}
	}
}

func TestEncryptionHidesVectors(t *testing.T) {
	key, _, ds := setup(t, 50, 8)
	x := ds.Row(0)
	enc, _ := key.EncryptVector(x)
	if len(enc) != 9 {
		t.Fatalf("encrypted dim = %d", len(enc))
	}
	// No coordinate passes through in the clear.
	same := 0
	for i := range x {
		if float64(x[i]) == enc[i] {
			same++
		}
	}
	if same == len(x) {
		t.Fatal("encryption is the identity")
	}
	// Pairwise distances in the encrypted space must NOT match
	// plaintext distances (the server cannot run k-NN among stored
	// points).
	a, _ := key.EncryptVector(ds.Row(1))
	b, _ := key.EncryptVector(ds.Row(2))
	plain := float64(vec.SquaredL2(ds.Row(1), ds.Row(2)))
	var encD float64
	for i := range a {
		d := a[i] - b[i]
		encD += d * d
	}
	if math.Abs(plain-encD) < 1e-3 {
		t.Fatalf("encrypted distance leaks plaintext distance: %v vs %v", encD, plain)
	}
}

func TestQueryTokensAreRandomized(t *testing.T) {
	key, srv, ds := setup(t, 100, 8)
	q := ds.Queries(1, 0.05, 3)[0]
	t1, _ := key.EncryptQuery(q)
	t2, _ := key.EncryptQuery(q)
	diff := false
	for i := range t1 {
		if t1[i] != t2[i] {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("repeated queries must produce distinct tokens")
	}
	// Yet both rank identically.
	r1, _ := srv.TopK(t1, 5)
	r2, _ := srv.TopK(t2, 5)
	for i := range r1 {
		if r1[i].ID != r2[i].ID {
			t.Fatal("re-randomized token changed the ranking")
		}
	}
	// Scores differ across tokens (server cannot compare queries).
	if r1[0].Dist == r2[0].Dist {
		t.Fatal("scores should be re-scaled per token")
	}
}

func TestValidation(t *testing.T) {
	if _, err := NewKey(0, 1); err == nil {
		t.Fatal("want dim error")
	}
	key, err := NewKey(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if key.Dim() != 4 {
		t.Fatal("Dim wrong")
	}
	if _, err := key.EncryptVector([]float32{1}); err == nil {
		t.Fatal("want vector dim error")
	}
	if _, err := key.EncryptQuery([]float32{1}); err == nil {
		t.Fatal("want query dim error")
	}
	srv := NewServer(4)
	if err := srv.Add(1, []float64{1}); err == nil {
		t.Fatal("want enc dim error")
	}
	if _, err := srv.TopK([]float64{1}, 3); err == nil {
		t.Fatal("want token dim error")
	}
	enc, _ := key.EncryptVector([]float32{1, 2, 3, 4})
	srv.Add(1, enc) //nolint:errcheck
	tok, _ := key.EncryptQuery([]float32{1, 2, 3, 4})
	if _, err := srv.TopK(tok, 0); err == nil {
		t.Fatal("want k error")
	}
	if srv.Len() != 1 {
		t.Fatal("Len wrong")
	}
}

func TestSecureRangeOfSizes(t *testing.T) {
	// Property-ish sweep: exactness holds across dims and sizes.
	for _, cfg := range []struct{ n, d int }{{50, 2}, {200, 4}, {300, 32}} {
		key, err := NewKey(cfg.d, int64(cfg.d))
		if err != nil {
			t.Fatal(err)
		}
		srv := NewServer(cfg.d)
		ds := dataset.Uniform(cfg.n, cfg.d, int64(cfg.n))
		for i := 0; i < cfg.n; i++ {
			enc, _ := key.EncryptVector(ds.Row(i))
			srv.Add(int64(i), enc) //nolint:errcheck
		}
		q := ds.Queries(1, 0.05, 9)[0]
		tok, _ := key.EncryptQuery(q)
		got, err := srv.TopK(tok, 5)
		if err != nil {
			t.Fatal(err)
		}
		truth := dataset.GroundTruth(vec.SquaredL2, ds, [][]float32{q}, 5)[0]
		if !sameIDs(got, truth) {
			t.Fatalf("n=%d d=%d: secure %v truth %v", cfg.n, cfg.d, got, truth)
		}
	}
}

func sameIDs(a, b []topk.Result) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].ID != b[i].ID {
			return false
		}
	}
	return true
}
