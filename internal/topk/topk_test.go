package topk

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestCollectorBasic(t *testing.T) {
	c := NewCollector(3)
	if c.K() != 3 || c.Len() != 0 || c.Full() {
		t.Fatal("fresh collector state wrong")
	}
	for i, d := range []float32{5, 1, 4, 2, 3} {
		c.Push(int64(i), d)
	}
	if !c.Full() || c.Len() != 3 {
		t.Fatal("collector should be full with 3")
	}
	res := c.Results()
	wantDists := []float32{1, 2, 3}
	wantIDs := []int64{1, 3, 4}
	for i := range res {
		if res[i].Dist != wantDists[i] || res[i].ID != wantIDs[i] {
			t.Fatalf("Results = %v", res)
		}
	}
	if c.Worst() != 3 {
		t.Fatalf("Worst = %v", c.Worst())
	}
}

func TestCollectorRejectsWorse(t *testing.T) {
	c := NewCollector(2)
	c.Push(1, 1)
	c.Push(2, 2)
	if c.Push(3, 5) {
		t.Fatal("Push should reject a worse candidate when full")
	}
	if !c.WouldAccept(0.5) || c.WouldAccept(2.5) {
		t.Fatal("WouldAccept wrong")
	}
	if !c.Push(4, 0.5) {
		t.Fatal("Push should accept a better candidate")
	}
	res := c.Results()
	if res[0].ID != 4 || res[1].ID != 1 {
		t.Fatalf("Results = %v", res)
	}
}

func TestCollectorTiesBrokenByID(t *testing.T) {
	c := NewCollector(3)
	c.Push(9, 1)
	c.Push(2, 1)
	c.Push(5, 1)
	res := c.Results()
	if res[0].ID != 2 || res[1].ID != 5 || res[2].ID != 9 {
		t.Fatalf("tie order = %v", res)
	}
}

func TestCollectorPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewCollector(0)
}

// Regression: Worst() used to return 0 on an empty heap, a sentinel
// that silently pruned every candidate in callers comparing
// "dist > Worst()" without a Full() guard. Until the collector is
// full nothing can be pruned, so the bound must be +Inf.
func TestWorstNotFullIsInf(t *testing.T) {
	c := NewCollector(2)
	if !math.IsInf(float64(c.Worst()), 1) {
		t.Fatalf("Worst on empty = %v, want +Inf", c.Worst())
	}
	c.Push(1, 7)
	if !math.IsInf(float64(c.Worst()), 1) {
		t.Fatalf("Worst on partially full = %v, want +Inf", c.Worst())
	}
	c.Push(2, 9)
	if c.Worst() != 9 {
		t.Fatalf("Worst on full = %v, want 9", c.Worst())
	}
}

// The kept set must be a pure function of the candidate multiset:
// equal-distance candidates at the k boundary are resolved by id, not
// by arrival order. This is the property parallel partition+merge
// relies on.
func TestPushTiesSelectedByID(t *testing.T) {
	perms := [][]int64{{3, 1, 2}, {1, 2, 3}, {2, 3, 1}, {3, 2, 1}}
	for _, ids := range perms {
		c := NewCollector(2)
		for _, id := range ids {
			c.Push(id, 1)
		}
		res := c.Results()
		if len(res) != 2 || res[0].ID != 1 || res[1].ID != 2 {
			t.Fatalf("push order %v kept %v, want ids 1,2", ids, res)
		}
	}
}

func TestReset(t *testing.T) {
	c := NewCollector(2)
	c.Push(1, 1)
	c.Reset()
	if c.Len() != 0 {
		t.Fatal("Reset failed")
	}
}

func TestMerge(t *testing.T) {
	a := NewCollector(3)
	b := NewCollector(3)
	a.Push(1, 1)
	a.Push(2, 9)
	b.Push(3, 2)
	b.Push(4, 3)
	a.Merge(b)
	res := a.Results()
	if len(res) != 3 || res[0].ID != 1 || res[1].ID != 3 || res[2].ID != 4 {
		t.Fatalf("Merge = %v", res)
	}
}

func TestMergeResults(t *testing.T) {
	got := MergeResults(2,
		[]Result{{ID: 1, Dist: 3}, {ID: 2, Dist: 1}},
		[]Result{{ID: 3, Dist: 2}},
	)
	if len(got) != 2 || got[0].ID != 2 || got[1].ID != 3 {
		t.Fatalf("MergeResults = %v", got)
	}
}

// Property: the collector returns exactly the k smallest distances of
// any stream, in ascending order.
func TestCollectorMatchesSort(t *testing.T) {
	f := func(seed int64, kk uint8, nn uint8) bool {
		k := int(kk%10) + 1
		n := int(nn) + 1
		rng := rand.New(rand.NewSource(seed))
		dists := make([]float32, n)
		c := NewCollector(k)
		for i := 0; i < n; i++ {
			dists[i] = rng.Float32()
			c.Push(int64(i), dists[i])
		}
		sorted := append([]float32(nil), dists...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		res := c.Results()
		want := k
		if n < k {
			want = n
		}
		if len(res) != want {
			return false
		}
		for i := range res {
			if res[i].Dist != sorted[i] {
				return false
			}
			if i > 0 && res[i].Dist < res[i-1].Dist {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMinQueueOrdering(t *testing.T) {
	var q MinQueue
	for i, d := range []float32{4, 1, 3, 2, 5} {
		q.Push(int64(i), d)
	}
	if q.Peek().Dist != 1 {
		t.Fatalf("Peek = %v", q.Peek())
	}
	prev := float32(-1)
	for q.Len() > 0 {
		r := q.Pop()
		if r.Dist < prev {
			t.Fatalf("MinQueue out of order: %v after %v", r.Dist, prev)
		}
		prev = r.Dist
	}
}

// Property: MinQueue pops in non-decreasing order.
func TestMinQueueProperty(t *testing.T) {
	f := func(ds []float32) bool {
		var q MinQueue
		for i, d := range ds {
			q.Push(int64(i), d)
		}
		prev := float32(0)
		first := true
		for q.Len() > 0 {
			r := q.Pop()
			if !first && r.Dist < prev {
				return false
			}
			prev, first = r.Dist, false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMinQueueReset(t *testing.T) {
	var q MinQueue
	q.Push(1, 1)
	q.Reset()
	if q.Len() != 0 {
		t.Fatal("Reset failed")
	}
}
