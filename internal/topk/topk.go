// Package topk implements the bounded result collectors behind the
// Sort/Top-K operator of Figure 1. A Collector keeps the k smallest
// distances seen so far using a binary max-heap, so insertion is
// O(log k) and scans can prune with Worst().
//
// The heap is ordered by the total order (Dist, ID): among
// equal-distance candidates the smaller id wins. This makes the kept
// set a pure function of the candidate multiset — independent of
// arrival order — which is what lets parallel scans partition a stream
// across per-worker collectors and Merge them with results identical
// to a single serial collector at any worker count.
package topk

import (
	"math"
	"sort"
)

// Result is one search hit: a row id and its distance to the query.
type Result struct {
	ID   int64
	Dist float32
}

// Collector accumulates the k results with the smallest distances.
// It is not safe for concurrent use.
type Collector struct {
	k      int
	heap   []Result // max-heap on Dist
	pushes int64    // candidates offered, kept or not
}

// NewCollector returns a collector for the k nearest results. k must
// be positive.
func NewCollector(k int) *Collector {
	if k <= 0 {
		panic("topk: k must be positive")
	}
	return &Collector{k: k, heap: make([]Result, 0, k)}
}

// K returns the requested result count.
func (c *Collector) K() int { return c.k }

// Len returns how many results are currently held.
func (c *Collector) Len() int { return len(c.heap) }

// Full reports whether k results are held.
func (c *Collector) Full() bool { return len(c.heap) == c.k }

// Worst returns the pruning bound: the largest kept distance when
// Full(), +Inf otherwise. A collector with room left cannot prune
// anything, so the historical empty-heap sentinel of 0 — which
// silently discarded every candidate in callers that skipped the
// Full() guard — is gone.
func (c *Collector) Worst() float32 {
	if len(c.heap) < c.k {
		return float32(math.Inf(1))
	}
	return c.heap[0].Dist
}

// Pushes returns how many candidates have been offered via Push since
// construction (or the last Reset), whether or not they were kept.
// Merge traces use it to report how many per-shard candidates fed the
// final top-k.
func (c *Collector) Pushes() int64 { return c.pushes }

// worse reports whether a ranks after b in the (Dist, ID) total
// order — i.e. a is the one to evict first.
func worse(a, b Result) bool {
	if a.Dist != b.Dist {
		return a.Dist > b.Dist
	}
	return a.ID > b.ID
}

// Push offers a candidate. It returns true if the candidate was kept
// (i.e. the heap was not full or the candidate beat the worst entry
// under the (Dist, ID) order).
func (c *Collector) Push(id int64, dist float32) bool {
	c.pushes++
	if len(c.heap) < c.k {
		c.heap = append(c.heap, Result{ID: id, Dist: dist})
		c.siftUp(len(c.heap) - 1)
		return true
	}
	if !worse(c.heap[0], Result{ID: id, Dist: dist}) {
		return false
	}
	c.heap[0] = Result{ID: id, Dist: dist}
	c.siftDown(0)
	return true
}

// WouldAccept reports whether a candidate at dist would certainly be
// kept, without inserting it. A candidate tying the worst distance is
// reported as rejected even though Push may keep it when its id wins
// the tie; callers use this only as a conservative skip test.
func (c *Collector) WouldAccept(dist float32) bool {
	return len(c.heap) < c.k || dist < c.heap[0].Dist
}

// Results returns the collected hits sorted by ascending distance
// (ties broken by id for determinism). The collector remains usable.
func (c *Collector) Results() []Result {
	out := make([]Result, len(c.heap))
	copy(out, c.heap)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dist != out[j].Dist {
			return out[i].Dist < out[j].Dist
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Reset empties the collector, keeping capacity.
func (c *Collector) Reset() {
	c.heap = c.heap[:0]
	c.pushes = 0
}

func (c *Collector) siftUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !worse(c.heap[i], c.heap[p]) {
			return
		}
		c.heap[p], c.heap[i] = c.heap[i], c.heap[p]
		i = p
	}
}

func (c *Collector) siftDown(i int) {
	n := len(c.heap)
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		if l < n && worse(c.heap[l], c.heap[largest]) {
			largest = l
		}
		if r < n && worse(c.heap[r], c.heap[largest]) {
			largest = r
		}
		if largest == i {
			return
		}
		c.heap[i], c.heap[largest] = c.heap[largest], c.heap[i]
		i = largest
	}
}

// Merge folds the other collector's results into c. Used by
// scatter-gather to combine per-shard top-k sets.
func (c *Collector) Merge(other *Collector) {
	for _, r := range other.heap {
		c.Push(r.ID, r.Dist)
	}
}

// MergeResults merges pre-sorted or unsorted result slices into a
// single ascending top-k slice.
func MergeResults(k int, lists ...[]Result) []Result {
	c := NewCollector(k)
	for _, l := range lists {
		for _, r := range l {
			c.Push(r.ID, r.Dist)
		}
	}
	return c.Results()
}

// MinQueue is a binary min-heap on distance used as the frontier of
// graph best-first search (NSW/HNSW/Vamana beam search).
type MinQueue struct {
	items []Result
}

// Len returns the queue size.
func (q *MinQueue) Len() int { return len(q.items) }

// Push inserts a candidate.
func (q *MinQueue) Push(id int64, dist float32) {
	q.items = append(q.items, Result{ID: id, Dist: dist})
	i := len(q.items) - 1
	for i > 0 {
		p := (i - 1) / 2
		if q.items[p].Dist <= q.items[i].Dist {
			break
		}
		q.items[p], q.items[i] = q.items[i], q.items[p]
		i = p
	}
}

// Pop removes and returns the smallest-distance item. It panics on an
// empty queue.
func (q *MinQueue) Pop() Result {
	top := q.items[0]
	last := len(q.items) - 1
	q.items[0] = q.items[last]
	q.items = q.items[:last]
	i := 0
	n := len(q.items)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && q.items[l].Dist < q.items[smallest].Dist {
			smallest = l
		}
		if r < n && q.items[r].Dist < q.items[smallest].Dist {
			smallest = r
		}
		if smallest == i {
			break
		}
		q.items[i], q.items[smallest] = q.items[smallest], q.items[i]
		i = smallest
	}
	return top
}

// Peek returns the smallest item without removing it.
func (q *MinQueue) Peek() Result { return q.items[0] }

// Reset empties the queue, keeping capacity.
func (q *MinQueue) Reset() { q.items = q.items[:0] }
