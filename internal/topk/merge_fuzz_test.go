package topk

import (
	"encoding/binary"
	"math"
	"math/rand"
	"testing"
)

// resultsEqual compares two sorted result slices exactly (bitwise on
// distances: the oracle demands byte-identical merges, not epsilon-
// close ones).
func resultsEqual(a, b []Result) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].ID != b[i].ID || math.Float32bits(a[i].Dist) != math.Float32bits(b[i].Dist) {
			return false
		}
	}
	return true
}

// splitMergeOracle pushes the stream into one collector, then splits
// the same stream across n collectors (round-robin) and Merges them,
// and reports whether the two top-k sets agree.
func splitMergeOracle(t *testing.T, k, n int, stream []Result) {
	t.Helper()
	single := NewCollector(k)
	for _, r := range stream {
		single.Push(r.ID, r.Dist)
	}
	parts := make([]*Collector, n)
	for i := range parts {
		parts[i] = NewCollector(k)
	}
	for i, r := range stream {
		parts[i%n].Push(r.ID, r.Dist)
	}
	merged := NewCollector(k)
	for _, p := range parts {
		merged.Merge(p)
	}
	if !resultsEqual(single.Results(), merged.Results()) {
		t.Fatalf("split(%d)+Merge diverged from serial push:\nserial: %v\nmerged: %v",
			n, single.Results(), merged.Results())
	}
	// MergeResults must agree with Merge.
	lists := make([][]Result, n)
	for i, p := range parts {
		lists[i] = p.Results()
	}
	if got := MergeResults(k, lists...); !resultsEqual(single.Results(), got) {
		t.Fatalf("MergeResults diverged from serial push:\nserial: %v\nmerged: %v",
			single.Results(), got)
	}
}

// FuzzMergeEquivalence is the metamorphic oracle for parallel top-k:
// any candidate stream split across N collectors and merged must equal
// a single-collector push of the same stream, regardless of split
// width, order, or distance ties. Ties are seeded deliberately by
// quantizing distances to a few buckets.
func FuzzMergeEquivalence(f *testing.F) {
	f.Add(int64(1), uint8(3), uint8(4), uint8(40))
	f.Add(int64(7), uint8(1), uint8(1), uint8(1))
	f.Add(int64(42), uint8(10), uint8(8), uint8(200))
	f.Fuzz(func(t *testing.T, seed int64, kk, nn, count uint8) {
		k := int(kk%16) + 1
		n := int(nn%8) + 1
		streamLen := int(count) + 1
		rng := rand.New(rand.NewSource(seed))
		stream := make([]Result, streamLen)
		for i := range stream {
			// Few distinct distances and overlapping ids force boundary
			// ties, the regime real merge bugs live in.
			stream[i] = Result{
				ID:   int64(rng.Intn(streamLen)),
				Dist: float32(rng.Intn(8)) / 4,
			}
		}
		splitMergeOracle(t, k, n, stream)
	})
}

// FuzzMergeRawBytes drives the same oracle from raw fuzz bytes, so the
// mutator can construct adversarial distance bit patterns directly
// (subnormals, infinities are excluded; NaN has no total order).
func FuzzMergeRawBytes(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, uint8(2), uint8(3))
	f.Fuzz(func(t *testing.T, raw []byte, kk, nn uint8) {
		k := int(kk%16) + 1
		n := int(nn%8) + 1
		var stream []Result
		for i := 0; i+5 <= len(raw); i += 5 {
			d := math.Float32frombits(binary.LittleEndian.Uint32(raw[i : i+4]))
			if math.IsNaN(float64(d)) || math.IsInf(float64(d), 0) {
				continue
			}
			stream = append(stream, Result{ID: int64(raw[i+4]), Dist: d})
		}
		if len(stream) == 0 {
			return
		}
		splitMergeOracle(t, k, n, stream)
	})
}

// TestMergeEquivalenceSweep runs the oracle deterministically across a
// grid of seeds so the property is checked on every `go test`, not
// only under -fuzz.
func TestMergeEquivalenceSweep(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		rng := rand.New(rand.NewSource(seed))
		k := rng.Intn(12) + 1
		n := rng.Intn(6) + 1
		stream := make([]Result, rng.Intn(300)+1)
		for i := range stream {
			stream[i] = Result{ID: int64(rng.Intn(64)), Dist: float32(rng.Intn(10)) / 8}
		}
		splitMergeOracle(t, k, n, stream)
	}
}
