package fault

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// RetryConfig tunes a Retrier. The zero value means 3 attempts,
// 5ms base delay doubling to a 250ms cap, 20% jitter, seed 1.
type RetryConfig struct {
	// MaxAttempts is the total number of tries including the first.
	// Values < 1 mean 3.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry. 0 means 5ms.
	BaseDelay time.Duration
	// MaxDelay caps the exponential growth. 0 means 250ms.
	MaxDelay time.Duration
	// Multiplier grows the delay between retries. Values <= 1 mean 2.
	Multiplier float64
	// Jitter is the fraction of each delay that is randomized
	// (0 <= Jitter <= 1): delay*(1-Jitter) + U[0, delay*Jitter).
	// Negative means 0.2; 0 keeps 0.2 too — use NoJitter for none.
	Jitter float64
	// NoJitter disables jitter entirely (fully deterministic delays).
	NoJitter bool
	// Seed makes the jitter sequence deterministic. 0 means 1.
	Seed int64
	// Sleep is injectable for tests; nil means the ctx-aware Sleep.
	Sleep func(context.Context, time.Duration) error
}

func (c RetryConfig) withDefaults() RetryConfig {
	if c.MaxAttempts < 1 {
		c.MaxAttempts = 3
	}
	if c.BaseDelay == 0 {
		c.BaseDelay = 5 * time.Millisecond
	}
	if c.MaxDelay == 0 {
		c.MaxDelay = 250 * time.Millisecond
	}
	if c.Multiplier <= 1 {
		c.Multiplier = 2
	}
	if c.Jitter <= 0 {
		c.Jitter = 0.2
	}
	if c.Jitter > 1 {
		c.Jitter = 1
	}
	if c.NoJitter {
		c.Jitter = 0
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Sleep == nil {
		c.Sleep = Sleep
	}
	return c
}

// Retrier re-runs failing calls with capped exponential backoff and
// deterministic-seedable jitter. Safe for concurrent use.
type Retrier struct {
	cfg RetryConfig
	mu  sync.Mutex
	rng *rand.Rand
}

// NewRetrier builds a retrier from cfg.
func NewRetrier(cfg RetryConfig) *Retrier {
	cfg = cfg.withDefaults()
	return &Retrier{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Backoff returns the delay before retry number attempt (attempt 1 is
// the first retry). Jitter draws from the seeded rng, so a fixed seed
// yields a reproducible delay sequence.
func (r *Retrier) Backoff(attempt int) time.Duration {
	if attempt < 1 {
		attempt = 1
	}
	d := float64(r.cfg.BaseDelay)
	for i := 1; i < attempt; i++ {
		d *= r.cfg.Multiplier
		if d >= float64(r.cfg.MaxDelay) {
			d = float64(r.cfg.MaxDelay)
			break
		}
	}
	if r.cfg.Jitter > 0 {
		r.mu.Lock()
		u := r.rng.Float64()
		r.mu.Unlock()
		d = d*(1-r.cfg.Jitter) + d*r.cfg.Jitter*u
	}
	return time.Duration(d)
}

// Do runs fn until it succeeds, MaxAttempts is exhausted, or ctx is
// done. Context errors are returned immediately without further
// retries — a caller-abandoned query must not keep hammering a shard.
func (r *Retrier) Do(ctx context.Context, fn func(context.Context) error) error {
	var lastErr error
	for attempt := 1; ; attempt++ {
		if err := ctx.Err(); err != nil {
			if lastErr != nil {
				return fmt.Errorf("%w (after %d attempts: %v)", err, attempt-1, lastErr)
			}
			return err
		}
		lastErr = fn(ctx)
		if lastErr == nil {
			return nil
		}
		if ctx.Err() != nil || attempt >= r.cfg.MaxAttempts {
			break
		}
		if err := r.cfg.Sleep(ctx, r.Backoff(attempt)); err != nil {
			break
		}
	}
	return lastErr
}
