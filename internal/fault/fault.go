// Package fault is the fault-tolerance toolkit behind the distributed
// read path (Section 2.3(2)): circuit breakers that let failed
// replicas heal automatically, capped-exponential-backoff retries with
// deterministic jitter, deadline helpers, and a chaos-injection shard
// wrapper used by the failover tests and the vdbms-shard chaos mode.
//
// The package deliberately depends only on topk so that both
// internal/dist and the command binaries can build on it without
// cycles: fault.Shard is structurally identical to dist.Shard, so a
// ChaosShard wrapping any dist.Shard is itself a dist.Shard.
package fault

import (
	"context"
	"errors"
	"time"

	"vdbms/internal/topk"
)

// Shard is the minimal search surface the fault layer wraps. It is
// structurally identical to dist.Shard.
type Shard interface {
	Search(ctx context.Context, q []float32, k int, ef int) ([]topk.Result, error)
	Count() int
}

// ErrOpen is returned when a circuit breaker rejects a call without
// attempting it.
var ErrOpen = errors.New("fault: circuit open")

// ErrInjected is the error a ChaosShard returns on an injected
// failure.
var ErrInjected = errors.New("fault: injected error")

// Sleep blocks for d or until ctx is done, returning ctx.Err() in the
// latter case. A non-positive d returns immediately.
func Sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
