package fault

import (
	"io"
	"math/rand"
	"sync"
)

// TornWriter simulates a power cut on the storage path: after a byte
// budget passes through, the write in flight is torn — only a prefix
// reaches the underlying writer — and every later write is dropped.
// Crucially it keeps REPORTING success, because that is what a real
// power failure looks like from the application: write(2) returned,
// the page cache accepted the bytes, and the platters never saw them.
// Recovery code exercised through a TornWriter must therefore treat
// the missing tail as expected loss (truncate and continue), never as
// an error — the wal package's torn-tail contract.
//
// The cut point within the torn write is drawn from the seeded source,
// so a fixed seed replays an identical tear. Safe for concurrent use.
type TornWriter struct {
	w io.Writer

	mu     sync.Mutex
	budget int
	rng    *rand.Rand
	torn   bool
}

// NewTornWriter wraps w, passing through budget bytes before tearing.
// Seed 0 means 1, matching ChaosConfig.
func NewTornWriter(w io.Writer, budget int, seed int64) *TornWriter {
	if seed == 0 {
		seed = 1
	}
	return &TornWriter{w: w, budget: budget, rng: rand.New(rand.NewSource(seed))}
}

// Write implements io.Writer per the contract above: full success is
// always reported, but once the budget is spent only a random prefix
// of the crossing write lands and everything after is dropped.
func (t *TornWriter) Write(p []byte) (int, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.torn {
		return len(p), nil
	}
	if len(p) <= t.budget {
		t.budget -= len(p)
		return t.w.Write(p)
	}
	// This write crosses the budget: tear it somewhere in [budget,
	// len(p)) so the tail of the last frame — possibly mid-record,
	// possibly mid-header — never lands.
	t.torn = true
	cut := t.budget
	if room := len(p) - t.budget; room > 0 {
		cut += t.rng.Intn(room)
	}
	if cut > 0 {
		if _, err := t.w.Write(p[:cut]); err != nil {
			return len(p), nil // the cover story holds even if the disk complains
		}
	}
	return len(p), nil
}

// Torn reports whether the tear has happened yet.
func (t *TornWriter) Torn() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.torn
}
