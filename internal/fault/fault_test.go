package fault

import (
	"context"
	"errors"
	"testing"
	"time"

	"vdbms/internal/topk"
)

// fakeClock is a manually advanced clock for breaker cooldown tests.
type fakeClock struct{ t time.Time }

func (f *fakeClock) now() time.Time          { return f.t }
func (f *fakeClock) advance(d time.Duration) { f.t = f.t.Add(d) }

// okShard answers every query with one fixed hit.
type okShard struct{ n int }

func (s *okShard) Count() int { return s.n }
func (s *okShard) Search(ctx context.Context, q []float32, k, ef int) ([]topk.Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return []topk.Result{{ID: 42, Dist: 0.5}}, nil
}

func TestBreakerLifecycle(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b := NewBreaker(BreakerConfig{
		FailureThreshold: 2,
		SuccessThreshold: 2,
		Cooldown:         time.Second,
		Now:              clk.now,
	})
	if b.State() != Closed || !b.Allow() {
		t.Fatal("new breaker should be closed and allowing")
	}
	b.OnFailure()
	if b.State() != Closed {
		t.Fatal("one failure below threshold must not trip")
	}
	b.OnFailure()
	if b.State() != Open {
		t.Fatal("threshold failures must open the breaker")
	}
	if b.Allow() {
		t.Fatal("open breaker within cooldown must reject")
	}
	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("cooldown elapsed: probe must be admitted")
	}
	if b.State() != HalfOpen {
		t.Fatalf("state after probe admission = %v, want half-open", b.State())
	}
	// Failed probe reopens and restarts the cooldown.
	b.OnFailure()
	if b.State() != Open || b.Allow() {
		t.Fatal("failed probe must reopen")
	}
	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("second probe window")
	}
	b.OnSuccess()
	if b.State() != HalfOpen {
		t.Fatal("one probe success below SuccessThreshold must stay half-open")
	}
	if !b.Allow() {
		t.Fatal("half-open admits further probes")
	}
	b.OnSuccess()
	if b.State() != Closed {
		t.Fatal("SuccessThreshold probe successes must close")
	}
	// Closed success resets the failure streak.
	b.OnFailure()
	b.OnSuccess()
	b.OnFailure()
	if b.State() != Closed {
		t.Fatal("non-consecutive failures must not trip")
	}
}

func TestBreakerDoAndReset(t *testing.T) {
	b := NewBreaker(BreakerConfig{Cooldown: time.Hour}) // threshold 1
	boom := errors.New("boom")
	if err := b.Do(context.Background(), func(context.Context) error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("Do = %v", err)
	}
	if err := b.Do(context.Background(), func(context.Context) error { return nil }); !errors.Is(err, ErrOpen) {
		t.Fatalf("open breaker Do = %v, want ErrOpen", err)
	}
	b.Reset()
	if err := b.Do(context.Background(), func(context.Context) error { return nil }); err != nil {
		t.Fatalf("after reset: %v", err)
	}
	if b.State() != Closed {
		t.Fatal("reset must close")
	}
}

func TestBreakerIgnoresCallerCancellation(t *testing.T) {
	b := NewBreaker(BreakerConfig{Cooldown: time.Hour})
	ctx, cancel := context.WithCancel(context.Background())
	err := b.Do(ctx, func(c context.Context) error {
		cancel()
		return c.Err()
	})
	if err == nil {
		t.Fatal("want ctx error")
	}
	if b.State() != Closed {
		t.Fatal("caller cancellation must not trip the breaker")
	}
}

func TestRetrierDeterministicBackoff(t *testing.T) {
	cfg := RetryConfig{BaseDelay: 10 * time.Millisecond, MaxDelay: 80 * time.Millisecond, Seed: 7}
	a, b := NewRetrier(cfg), NewRetrier(cfg)
	for i := 1; i <= 6; i++ {
		da, db := a.Backoff(i), b.Backoff(i)
		if da != db {
			t.Fatalf("attempt %d: same seed diverged: %v vs %v", i, da, db)
		}
		if da > 80*time.Millisecond {
			t.Fatalf("attempt %d: backoff %v exceeds cap", i, da)
		}
		if i == 1 && (da < 8*time.Millisecond || da > 10*time.Millisecond) {
			t.Fatalf("first backoff %v outside jittered base range", da)
		}
	}
	// Without jitter the sequence is the exact exponential ramp.
	nr := NewRetrier(RetryConfig{BaseDelay: 10 * time.Millisecond, MaxDelay: 80 * time.Millisecond, NoJitter: true})
	want := []time.Duration{10, 20, 40, 80, 80}
	for i, w := range want {
		if got := nr.Backoff(i + 1); got != w*time.Millisecond {
			t.Fatalf("no-jitter backoff(%d) = %v, want %v", i+1, got, w*time.Millisecond)
		}
	}
}

func TestRetrierDoRetriesThenSucceeds(t *testing.T) {
	var slept []time.Duration
	r := NewRetrier(RetryConfig{
		MaxAttempts: 4,
		NoJitter:    true,
		BaseDelay:   time.Millisecond,
		Sleep: func(_ context.Context, d time.Duration) error {
			slept = append(slept, d)
			return nil
		},
	})
	calls := 0
	err := r.Do(context.Background(), func(context.Context) error {
		calls++
		if calls < 3 {
			return errors.New("flaky")
		}
		return nil
	})
	if err != nil || calls != 3 || len(slept) != 2 {
		t.Fatalf("err=%v calls=%d sleeps=%v", err, calls, slept)
	}
	if slept[0] != time.Millisecond || slept[1] != 2*time.Millisecond {
		t.Fatalf("backoff ramp wrong: %v", slept)
	}
}

func TestRetrierDoExhaustsAndStopsOnCancel(t *testing.T) {
	r := NewRetrier(RetryConfig{MaxAttempts: 3, BaseDelay: time.Microsecond})
	boom := errors.New("boom")
	calls := 0
	if err := r.Do(context.Background(), func(context.Context) error { calls++; return boom }); !errors.Is(err, boom) || calls != 3 {
		t.Fatalf("err=%v calls=%d", err, calls)
	}
	// Cancelled context: no further attempts.
	ctx, cancel := context.WithCancel(context.Background())
	calls = 0
	err := r.Do(ctx, func(context.Context) error {
		calls++
		cancel()
		return boom
	})
	if !errors.Is(err, boom) || calls != 1 {
		t.Fatalf("cancel mid-attempt: err=%v calls=%d", err, calls)
	}
	if err := r.Do(ctx, func(context.Context) error { calls++; return nil }); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled ctx: err=%v", err)
	}
	if calls != 1 {
		t.Fatal("pre-cancelled ctx must not invoke fn")
	}
}

func TestChaosShardDeterministicSchedule(t *testing.T) {
	run := func() []bool {
		cs := NewChaosShard(&okShard{n: 10}, ChaosConfig{ErrorRate: 0.5, Seed: 3})
		outcomes := make([]bool, 40)
		for i := range outcomes {
			_, err := cs.Search(context.Background(), nil, 1, 0)
			outcomes[i] = err == nil
		}
		return outcomes
	}
	a, b := run(), run()
	okCount := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must replay the same fault schedule")
		}
		if a[i] {
			okCount++
		}
	}
	if okCount == 0 || okCount == len(a) {
		t.Fatalf("error rate 0.5 produced %d/%d successes", okCount, len(a))
	}
}

func TestChaosShardFailFirstThenHeals(t *testing.T) {
	cs := NewChaosShard(&okShard{n: 10}, ChaosConfig{FailFirst: 2, Seed: 1})
	for i := 0; i < 2; i++ {
		if _, err := cs.Search(context.Background(), nil, 1, 0); !errors.Is(err, ErrInjected) {
			t.Fatalf("call %d: %v, want ErrInjected", i, err)
		}
	}
	res, err := cs.Search(context.Background(), nil, 1, 0)
	if err != nil || len(res) != 1 || res[0].ID != 42 {
		t.Fatalf("after FailFirst drained: %v %v", res, err)
	}
	calls, faults := cs.Stats()
	if calls != 3 || faults != 2 {
		t.Fatalf("stats = %d calls, %d faults", calls, faults)
	}
}

func TestChaosShardHangRespectsDeadline(t *testing.T) {
	cs := NewChaosShard(&okShard{n: 1}, ChaosConfig{HangRate: 1, Seed: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := cs.Search(ctx, nil, 1, 0)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("hang returned %v, want deadline exceeded", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("hang outlived its deadline")
	}
}

func TestChaosShardLatencyAndCount(t *testing.T) {
	cs := NewChaosShard(&okShard{n: 7}, ChaosConfig{Latency: 5 * time.Millisecond, LatencyJitter: 5 * time.Millisecond, Seed: 2})
	if cs.Count() != 7 {
		t.Fatal("count must delegate")
	}
	start := time.Now()
	if _, err := cs.Search(context.Background(), nil, 1, 0); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) < 5*time.Millisecond {
		t.Fatal("latency injection missing")
	}
	// A deadline shorter than the injected latency cuts the call off.
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	if _, err := cs.Search(ctx, nil, 1, 0); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("latency sleep ignored deadline: %v", err)
	}
}

func TestSleep(t *testing.T) {
	if err := Sleep(context.Background(), -time.Second); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := Sleep(ctx, time.Hour); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled sleep = %v", err)
	}
}
