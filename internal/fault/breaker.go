package fault

import (
	"context"
	"sync"
	"time"
)

// State is a circuit breaker position.
type State int

const (
	// Closed admits every call (normal operation).
	Closed State = iota
	// Open rejects calls until the cooldown elapses.
	Open
	// HalfOpen admits probe calls to test recovery.
	HalfOpen
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// BreakerConfig tunes a Breaker. The zero value is usable: trip after
// one failure, probe immediately, close after one success.
type BreakerConfig struct {
	// FailureThreshold is how many consecutive failures trip the
	// breaker open. Values < 1 mean 1.
	FailureThreshold int
	// SuccessThreshold is how many half-open probe successes close the
	// breaker again. Values < 1 mean 1.
	SuccessThreshold int
	// Cooldown is how long an open breaker rejects calls before
	// admitting a half-open probe. 0 probes on the next call.
	Cooldown time.Duration
	// Now is the clock, injectable for tests. Nil means time.Now.
	Now func() time.Time
	// OnStateChange, when non-nil, observes every transition (e.g. to
	// feed a metrics counter). It is invoked with the breaker's lock
	// held and must not call back into the breaker.
	OnStateChange func(from, to State)
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.FailureThreshold < 1 {
		c.FailureThreshold = 1
	}
	if c.SuccessThreshold < 1 {
		c.SuccessThreshold = 1
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Breaker is a closed → open → half-open circuit breaker. Unlike a
// one-way "healthy" flag, an open breaker re-admits probe traffic
// after its cooldown, so a replica that comes back heals without
// operator intervention. All methods are safe for concurrent use.
type Breaker struct {
	mu        sync.Mutex
	cfg       BreakerConfig
	state     State
	failures  int
	successes int
	openedAt  time.Time
}

// NewBreaker builds a breaker in the Closed state.
func NewBreaker(cfg BreakerConfig) *Breaker {
	return &Breaker{cfg: cfg.withDefaults()}
}

// setState transitions to the new state, firing the OnStateChange
// hook. Called with b.mu held.
func (b *Breaker) setState(to State) {
	from := b.state
	if from == to {
		return
	}
	b.state = to
	if b.cfg.OnStateChange != nil {
		b.cfg.OnStateChange(from, to)
	}
}

// State reports the current position without advancing it.
func (b *Breaker) State() State {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Allow reports whether a call may proceed now. An open breaker whose
// cooldown has elapsed transitions to half-open and admits the call
// as a probe.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed, HalfOpen:
		return true
	default: // Open
		if b.cfg.Now().Sub(b.openedAt) >= b.cfg.Cooldown {
			b.setState(HalfOpen)
			b.successes = 0
			return true
		}
		return false
	}
}

// OnSuccess records a successful call.
func (b *Breaker) OnSuccess() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		b.failures = 0
	case HalfOpen:
		b.successes++
		if b.successes >= b.cfg.SuccessThreshold {
			b.setState(Closed)
			b.failures = 0
		}
	}
	// A success observed while Open (e.g. an abandoned call that
	// eventually returned) is ignored; the probe path decides recovery.
}

// OnFailure records a failed call.
func (b *Breaker) OnFailure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		b.failures++
		if b.failures >= b.cfg.FailureThreshold {
			b.setState(Open)
			b.openedAt = b.cfg.Now()
		}
	case HalfOpen:
		// Failed probe: back to open, restart the cooldown.
		b.setState(Open)
		b.openedAt = b.cfg.Now()
	}
}

// Reset forces the breaker closed (e.g. an operator marked the
// backend healthy).
func (b *Breaker) Reset() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.setState(Closed)
	b.failures = 0
	b.successes = 0
}

// Do runs fn under the breaker: ErrOpen without calling fn when the
// breaker rejects, otherwise fn's error recorded as success/failure.
// Context cancellation is not charged to the backend.
func (b *Breaker) Do(ctx context.Context, fn func(context.Context) error) error {
	if !b.Allow() {
		return ErrOpen
	}
	err := fn(ctx)
	if err == nil {
		b.OnSuccess()
		return nil
	}
	if ctx.Err() != nil {
		// The caller gave up; that says nothing about backend health.
		return err
	}
	b.OnFailure()
	return err
}
