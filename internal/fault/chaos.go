package fault

import (
	"context"
	"math/rand"
	"sync"
	"time"

	"vdbms/internal/topk"
)

// ChaosConfig describes the faults a ChaosShard injects. All
// randomness comes from one seeded source, so a fixed seed replays an
// identical fault schedule.
type ChaosConfig struct {
	// ErrorRate is the probability ([0,1]) a call fails with
	// ErrInjected before reaching the wrapped shard.
	ErrorRate float64
	// HangRate is the probability ([0,1]) a call blocks until its
	// context is done (a stuck replica). Checked before ErrorRate.
	HangRate float64
	// FailFirst deterministically fails the first N calls regardless
	// of ErrorRate — scripted outages for recovery tests.
	FailFirst int
	// Latency is added to every call before it is served.
	Latency time.Duration
	// LatencyJitter adds U[0, LatencyJitter) on top of Latency.
	LatencyJitter time.Duration
	// Seed drives the fault schedule. 0 means 1.
	Seed int64
}

// ChaosShard wraps a Shard and injects faults per its config: extra
// latency, random errors, and hangs that only a context deadline can
// bound. It satisfies dist.Shard (same method set), so it can stand
// in anywhere a real shard or replica does — including in front of an
// RPC client, which is how cmd/vdbms-shard's chaos mode and the
// failover tests exercise the full distributed path. Safe for
// concurrent use.
type ChaosShard struct {
	inner Shard

	mu     sync.Mutex
	cfg    ChaosConfig
	rng    *rand.Rand
	calls  int64
	faults int64
}

// NewChaosShard wraps inner with seeded fault injection.
func NewChaosShard(inner Shard, cfg ChaosConfig) *ChaosShard {
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	return &ChaosShard{inner: inner, cfg: cfg, rng: rand.New(rand.NewSource(seed))}
}

// SetErrorRate adjusts the error probability at runtime (recovery
// scenarios: outage, then heal).
func (c *ChaosShard) SetErrorRate(p float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.cfg.ErrorRate = p
}

// SetHangRate adjusts the hang probability at runtime.
func (c *ChaosShard) SetHangRate(p float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.cfg.HangRate = p
}

// Stats reports total calls and how many had a fault injected.
func (c *ChaosShard) Stats() (calls, faults int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.calls, c.faults
}

// Count implements Shard, delegating to the wrapped shard.
func (c *ChaosShard) Count() int { return c.inner.Count() }

// Search implements Shard with fault injection. The fault decision
// for each call is drawn under the lock so concurrent callers still
// observe a deterministic aggregate schedule for a given seed.
func (c *ChaosShard) Search(ctx context.Context, q []float32, k, ef int) ([]topk.Result, error) {
	c.mu.Lock()
	c.calls++
	delay := c.cfg.Latency
	if c.cfg.LatencyJitter > 0 {
		delay += time.Duration(c.rng.Int63n(int64(c.cfg.LatencyJitter)))
	}
	hang := c.cfg.HangRate > 0 && c.rng.Float64() < c.cfg.HangRate
	fail := c.cfg.FailFirst > 0 || (c.cfg.ErrorRate > 0 && c.rng.Float64() < c.cfg.ErrorRate)
	if c.cfg.FailFirst > 0 {
		c.cfg.FailFirst--
	}
	if hang || fail {
		c.faults++
	}
	c.mu.Unlock()

	if hang {
		// A stuck replica: never answers, only the caller's deadline
		// ends the wait.
		<-ctx.Done()
		return nil, ctx.Err()
	}
	if delay > 0 {
		if err := Sleep(ctx, delay); err != nil {
			return nil, err
		}
	}
	if fail {
		return nil, ErrInjected
	}
	return c.inner.Search(ctx, q, k, ef)
}
