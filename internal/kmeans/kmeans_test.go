package kmeans

import (
	"math"
	"math/rand"
	"testing"

	"vdbms/internal/vec"
)

// threeBlobs builds n points around three well-separated centers in 2D.
func threeBlobs(n int, seed int64) ([]float32, []int) {
	centers := [][]float32{{0, 0}, {20, 0}, {0, 20}}
	rng := rand.New(rand.NewSource(seed))
	data := make([]float32, n*2)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		c := i % 3
		labels[i] = c
		data[i*2] = centers[c][0] + float32(rng.NormFloat64())*0.5
		data[i*2+1] = centers[c][1] + float32(rng.NormFloat64())*0.5
	}
	return data, labels
}

func TestTrainRecoversBlobs(t *testing.T) {
	data, labels := threeBlobs(300, 1)
	res, err := Train(data, 300, 2, Config{K: 3, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if res.K != 3 || res.Dim != 2 {
		t.Fatalf("K=%d Dim=%d", res.K, res.Dim)
	}
	// All points of the same blob must share an assignment, and blobs
	// must map to distinct centroids.
	blobToCluster := map[int]int{}
	for i, lab := range labels {
		c := res.Assign[i]
		if prev, ok := blobToCluster[lab]; ok {
			if prev != c {
				t.Fatalf("blob %d split across clusters %d and %d", lab, prev, c)
			}
		} else {
			blobToCluster[lab] = c
		}
	}
	if len(blobToCluster) != 3 {
		t.Fatalf("blobs collapsed: %v", blobToCluster)
	}
	// Centroids must be near the true centers.
	for lab, c := range blobToCluster {
		truth := [][]float32{{0, 0}, {20, 0}, {0, 20}}[lab]
		if d := vec.SquaredL2(truth, res.Centroid(c)); d > 1 {
			t.Fatalf("centroid for blob %d off by %v", lab, d)
		}
	}
	if res.Inertia <= 0 || math.IsNaN(res.Inertia) {
		t.Fatalf("inertia = %v", res.Inertia)
	}
}

func TestNearestAndNearestN(t *testing.T) {
	res := &Result{K: 3, Dim: 1, Centroids: []float32{0, 10, 20}}
	c, d := res.Nearest([]float32{11})
	if c != 1 || d != 1 {
		t.Fatalf("Nearest = %d,%v", c, d)
	}
	order := res.NearestN([]float32{11}, 3)
	if order[0] != 1 || order[1] != 2 || order[2] != 0 {
		t.Fatalf("NearestN = %v", order)
	}
	if got := res.NearestN([]float32{11}, 99); len(got) != 3 {
		t.Fatalf("NearestN clamps to K, got %d", len(got))
	}
}

func TestTrainErrors(t *testing.T) {
	if _, err := Train([]float32{1}, 1, 1, Config{K: 0}); err == nil {
		t.Fatal("want error for K=0")
	}
	if _, err := Train(nil, 0, 2, Config{K: 2}); err == nil {
		t.Fatal("want error for empty data")
	}
	if _, err := Train([]float32{1, 2, 3}, 2, 2, Config{K: 1}); err == nil {
		t.Fatal("want error for bad length")
	}
}

func TestKClampedToN(t *testing.T) {
	data := []float32{0, 0, 10, 10}
	res, err := Train(data, 2, 2, Config{K: 5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.K != 2 {
		t.Fatalf("K should clamp to n: %d", res.K)
	}
	if res.Inertia > 1e-9 {
		t.Fatalf("each point should own a centroid, inertia=%v", res.Inertia)
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	data, _ := threeBlobs(90, 2)
	a, err := Train(data, 90, 2, Config{K: 3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Train(data, 90, 2, Config{K: 3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Centroids {
		if a.Centroids[i] != b.Centroids[i] {
			t.Fatal("same seed must give identical centroids")
		}
	}
}

func TestMiniBatchApproximatesBlobs(t *testing.T) {
	data, _ := threeBlobs(600, 4)
	res, err := Train(data, 600, 2, Config{K: 3, Seed: 9, MaxIter: 40, MiniBatch: 64})
	if err != nil {
		t.Fatal(err)
	}
	// Every true center must have some centroid within distance 2.
	for _, truth := range [][]float32{{0, 0}, {20, 0}, {0, 20}} {
		_, d := res.Nearest(truth)
		if d > 4 {
			t.Fatalf("mini-batch centroid far from %v: %v", truth, d)
		}
	}
	if res.Assign != nil {
		t.Fatal("mini-batch should not populate Assign")
	}
}

func TestInertiaDecreasesVsRandomCentroids(t *testing.T) {
	data, _ := threeBlobs(300, 5)
	trained, err := Train(data, 300, 2, Config{K: 3, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	// Inertia of a deliberately bad clustering (all centroids at
	// origin-ish) must exceed the trained inertia.
	bad := &Result{K: 3, Dim: 2, Centroids: []float32{0, 0, 1, 1, 2, 2}}
	var badInertia float64
	for i := 0; i < 300; i++ {
		_, d := bad.Nearest(data[i*2 : (i+1)*2])
		badInertia += float64(d)
	}
	if trained.Inertia >= badInertia {
		t.Fatalf("trained inertia %v not better than bad %v", trained.Inertia, badInertia)
	}
}
